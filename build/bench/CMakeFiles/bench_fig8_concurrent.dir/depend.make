# Empty dependencies file for bench_fig8_concurrent.
# This may be replaced when dependencies are built.
