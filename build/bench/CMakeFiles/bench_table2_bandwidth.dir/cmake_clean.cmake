file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_bandwidth.dir/bench_table2_bandwidth.cpp.o"
  "CMakeFiles/bench_table2_bandwidth.dir/bench_table2_bandwidth.cpp.o.d"
  "bench_table2_bandwidth"
  "bench_table2_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
