# Empty dependencies file for bench_fig5_overview.
# This may be replaced when dependencies are built.
