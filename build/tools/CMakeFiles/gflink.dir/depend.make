# Empty dependencies file for gflink.
# This may be replaced when dependencies are built.
