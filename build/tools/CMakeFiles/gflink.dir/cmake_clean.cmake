file(REMOVE_RECURSE
  "CMakeFiles/gflink.dir/gflink_sim.cpp.o"
  "CMakeFiles/gflink.dir/gflink_sim.cpp.o.d"
  "gflink"
  "gflink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gflink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
