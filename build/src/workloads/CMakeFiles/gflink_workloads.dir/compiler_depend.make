# Empty compiler generated dependencies file for gflink_workloads.
# This may be replaced when dependencies are built.
