
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/common.cpp" "src/workloads/CMakeFiles/gflink_workloads.dir/common.cpp.o" "gcc" "src/workloads/CMakeFiles/gflink_workloads.dir/common.cpp.o.d"
  "/root/repo/src/workloads/concomp.cpp" "src/workloads/CMakeFiles/gflink_workloads.dir/concomp.cpp.o" "gcc" "src/workloads/CMakeFiles/gflink_workloads.dir/concomp.cpp.o.d"
  "/root/repo/src/workloads/kmeans.cpp" "src/workloads/CMakeFiles/gflink_workloads.dir/kmeans.cpp.o" "gcc" "src/workloads/CMakeFiles/gflink_workloads.dir/kmeans.cpp.o.d"
  "/root/repo/src/workloads/linreg.cpp" "src/workloads/CMakeFiles/gflink_workloads.dir/linreg.cpp.o" "gcc" "src/workloads/CMakeFiles/gflink_workloads.dir/linreg.cpp.o.d"
  "/root/repo/src/workloads/pagerank.cpp" "src/workloads/CMakeFiles/gflink_workloads.dir/pagerank.cpp.o" "gcc" "src/workloads/CMakeFiles/gflink_workloads.dir/pagerank.cpp.o.d"
  "/root/repo/src/workloads/pointadd.cpp" "src/workloads/CMakeFiles/gflink_workloads.dir/pointadd.cpp.o" "gcc" "src/workloads/CMakeFiles/gflink_workloads.dir/pointadd.cpp.o.d"
  "/root/repo/src/workloads/records.cpp" "src/workloads/CMakeFiles/gflink_workloads.dir/records.cpp.o" "gcc" "src/workloads/CMakeFiles/gflink_workloads.dir/records.cpp.o.d"
  "/root/repo/src/workloads/spmv.cpp" "src/workloads/CMakeFiles/gflink_workloads.dir/spmv.cpp.o" "gcc" "src/workloads/CMakeFiles/gflink_workloads.dir/spmv.cpp.o.d"
  "/root/repo/src/workloads/wordcount.cpp" "src/workloads/CMakeFiles/gflink_workloads.dir/wordcount.cpp.o" "gcc" "src/workloads/CMakeFiles/gflink_workloads.dir/wordcount.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gflink_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gflink_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gflink_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gflink_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gflink_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/gflink_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gflink_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
