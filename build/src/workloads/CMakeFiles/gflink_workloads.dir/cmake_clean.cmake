file(REMOVE_RECURSE
  "CMakeFiles/gflink_workloads.dir/common.cpp.o"
  "CMakeFiles/gflink_workloads.dir/common.cpp.o.d"
  "CMakeFiles/gflink_workloads.dir/concomp.cpp.o"
  "CMakeFiles/gflink_workloads.dir/concomp.cpp.o.d"
  "CMakeFiles/gflink_workloads.dir/kmeans.cpp.o"
  "CMakeFiles/gflink_workloads.dir/kmeans.cpp.o.d"
  "CMakeFiles/gflink_workloads.dir/linreg.cpp.o"
  "CMakeFiles/gflink_workloads.dir/linreg.cpp.o.d"
  "CMakeFiles/gflink_workloads.dir/pagerank.cpp.o"
  "CMakeFiles/gflink_workloads.dir/pagerank.cpp.o.d"
  "CMakeFiles/gflink_workloads.dir/pointadd.cpp.o"
  "CMakeFiles/gflink_workloads.dir/pointadd.cpp.o.d"
  "CMakeFiles/gflink_workloads.dir/records.cpp.o"
  "CMakeFiles/gflink_workloads.dir/records.cpp.o.d"
  "CMakeFiles/gflink_workloads.dir/spmv.cpp.o"
  "CMakeFiles/gflink_workloads.dir/spmv.cpp.o.d"
  "CMakeFiles/gflink_workloads.dir/wordcount.cpp.o"
  "CMakeFiles/gflink_workloads.dir/wordcount.cpp.o.d"
  "libgflink_workloads.a"
  "libgflink_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gflink_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
