file(REMOVE_RECURSE
  "libgflink_workloads.a"
)
