# Empty dependencies file for gflink_dfs.
# This may be replaced when dependencies are built.
