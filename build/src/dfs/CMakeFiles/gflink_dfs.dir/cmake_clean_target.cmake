file(REMOVE_RECURSE
  "libgflink_dfs.a"
)
