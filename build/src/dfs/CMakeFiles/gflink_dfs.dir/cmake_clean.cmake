file(REMOVE_RECURSE
  "CMakeFiles/gflink_dfs.dir/gdfs.cpp.o"
  "CMakeFiles/gflink_dfs.dir/gdfs.cpp.o.d"
  "libgflink_dfs.a"
  "libgflink_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gflink_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
