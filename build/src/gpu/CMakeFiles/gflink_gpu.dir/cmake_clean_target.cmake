file(REMOVE_RECURSE
  "libgflink_gpu.a"
)
