# Empty compiler generated dependencies file for gflink_gpu.
# This may be replaced when dependencies are built.
