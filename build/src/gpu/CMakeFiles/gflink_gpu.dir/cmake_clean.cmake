file(REMOVE_RECURSE
  "CMakeFiles/gflink_gpu.dir/device.cpp.o"
  "CMakeFiles/gflink_gpu.dir/device.cpp.o.d"
  "CMakeFiles/gflink_gpu.dir/device_memory.cpp.o"
  "CMakeFiles/gflink_gpu.dir/device_memory.cpp.o.d"
  "CMakeFiles/gflink_gpu.dir/device_spec.cpp.o"
  "CMakeFiles/gflink_gpu.dir/device_spec.cpp.o.d"
  "CMakeFiles/gflink_gpu.dir/kernel.cpp.o"
  "CMakeFiles/gflink_gpu.dir/kernel.cpp.o.d"
  "libgflink_gpu.a"
  "libgflink_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gflink_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
