# Empty dependencies file for gflink_mem.
# This may be replaced when dependencies are built.
