file(REMOVE_RECURSE
  "libgflink_mem.a"
)
