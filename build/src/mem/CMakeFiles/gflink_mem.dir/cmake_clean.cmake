file(REMOVE_RECURSE
  "CMakeFiles/gflink_mem.dir/gstruct.cpp.o"
  "CMakeFiles/gflink_mem.dir/gstruct.cpp.o.d"
  "CMakeFiles/gflink_mem.dir/record_batch.cpp.o"
  "CMakeFiles/gflink_mem.dir/record_batch.cpp.o.d"
  "libgflink_mem.a"
  "libgflink_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gflink_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
