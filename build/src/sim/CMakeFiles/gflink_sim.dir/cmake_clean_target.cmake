file(REMOVE_RECURSE
  "libgflink_sim.a"
)
