# Empty compiler generated dependencies file for gflink_sim.
# This may be replaced when dependencies are built.
