file(REMOVE_RECURSE
  "CMakeFiles/gflink_sim.dir/simulation.cpp.o"
  "CMakeFiles/gflink_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/gflink_sim.dir/stats.cpp.o"
  "CMakeFiles/gflink_sim.dir/stats.cpp.o.d"
  "CMakeFiles/gflink_sim.dir/time.cpp.o"
  "CMakeFiles/gflink_sim.dir/time.cpp.o.d"
  "CMakeFiles/gflink_sim.dir/trace.cpp.o"
  "CMakeFiles/gflink_sim.dir/trace.cpp.o.d"
  "libgflink_sim.a"
  "libgflink_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gflink_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
