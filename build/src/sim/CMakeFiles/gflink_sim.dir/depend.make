# Empty dependencies file for gflink_sim.
# This may be replaced when dependencies are built.
