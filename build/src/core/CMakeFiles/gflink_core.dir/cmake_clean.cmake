file(REMOVE_RECURSE
  "CMakeFiles/gflink_core.dir/gdst.cpp.o"
  "CMakeFiles/gflink_core.dir/gdst.cpp.o.d"
  "CMakeFiles/gflink_core.dir/gmemory_manager.cpp.o"
  "CMakeFiles/gflink_core.dir/gmemory_manager.cpp.o.d"
  "CMakeFiles/gflink_core.dir/gpu_manager.cpp.o"
  "CMakeFiles/gflink_core.dir/gpu_manager.cpp.o.d"
  "CMakeFiles/gflink_core.dir/gstream_manager.cpp.o"
  "CMakeFiles/gflink_core.dir/gstream_manager.cpp.o.d"
  "CMakeFiles/gflink_core.dir/streaming.cpp.o"
  "CMakeFiles/gflink_core.dir/streaming.cpp.o.d"
  "libgflink_core.a"
  "libgflink_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gflink_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
