file(REMOVE_RECURSE
  "libgflink_core.a"
)
