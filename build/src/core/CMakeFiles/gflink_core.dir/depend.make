# Empty dependencies file for gflink_core.
# This may be replaced when dependencies are built.
