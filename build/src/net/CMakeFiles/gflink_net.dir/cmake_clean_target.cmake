file(REMOVE_RECURSE
  "libgflink_net.a"
)
