file(REMOVE_RECURSE
  "CMakeFiles/gflink_net.dir/cluster.cpp.o"
  "CMakeFiles/gflink_net.dir/cluster.cpp.o.d"
  "libgflink_net.a"
  "libgflink_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gflink_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
