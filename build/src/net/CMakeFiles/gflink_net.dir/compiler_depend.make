# Empty compiler generated dependencies file for gflink_net.
# This may be replaced when dependencies are built.
