file(REMOVE_RECURSE
  "CMakeFiles/gflink_dataflow.dir/engine.cpp.o"
  "CMakeFiles/gflink_dataflow.dir/engine.cpp.o.d"
  "libgflink_dataflow.a"
  "libgflink_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gflink_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
