file(REMOVE_RECURSE
  "libgflink_dataflow.a"
)
