# Empty compiler generated dependencies file for gflink_dataflow.
# This may be replaced when dependencies are built.
