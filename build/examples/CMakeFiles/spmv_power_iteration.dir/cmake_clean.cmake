file(REMOVE_RECURSE
  "CMakeFiles/spmv_power_iteration.dir/spmv_power_iteration.cpp.o"
  "CMakeFiles/spmv_power_iteration.dir/spmv_power_iteration.cpp.o.d"
  "spmv_power_iteration"
  "spmv_power_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_power_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
