# Empty dependencies file for spmv_power_iteration.
# This may be replaced when dependencies are built.
