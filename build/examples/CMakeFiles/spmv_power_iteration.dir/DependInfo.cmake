
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/spmv_power_iteration.cpp" "examples/CMakeFiles/spmv_power_iteration.dir/spmv_power_iteration.cpp.o" "gcc" "examples/CMakeFiles/spmv_power_iteration.dir/spmv_power_iteration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/gflink_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gflink_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gflink_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/gflink_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gflink_net.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gflink_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gflink_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gflink_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
