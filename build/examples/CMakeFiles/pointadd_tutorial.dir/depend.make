# Empty dependencies file for pointadd_tutorial.
# This may be replaced when dependencies are built.
