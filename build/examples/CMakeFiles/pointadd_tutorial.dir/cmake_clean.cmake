file(REMOVE_RECURSE
  "CMakeFiles/pointadd_tutorial.dir/pointadd_tutorial.cpp.o"
  "CMakeFiles/pointadd_tutorial.dir/pointadd_tutorial.cpp.o.d"
  "pointadd_tutorial"
  "pointadd_tutorial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointadd_tutorial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
