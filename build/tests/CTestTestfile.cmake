# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_dfs[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_dataflow[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_streaming[1]_include.cmake")
include("/root/repo/build/tests/test_operators[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_dataflow[1]_include.cmake")
