file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_dataflow.dir/test_fuzz_dataflow.cpp.o"
  "CMakeFiles/test_fuzz_dataflow.dir/test_fuzz_dataflow.cpp.o.d"
  "test_fuzz_dataflow"
  "test_fuzz_dataflow.pdb"
  "test_fuzz_dataflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
