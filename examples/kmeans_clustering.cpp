// KMeans clustering on GFlink — the paper's flagship iterative workload.
//
// Demonstrates:
//  * iterative in-memory computing: the point dataset is read once and
//    stays resident (cluster memory + GPU cache) across supersteps;
//  * broadcast variables (the current centers) fed to GPU kernels as
//    auxiliary GWork buffers;
//  * CPU-vs-GFlink comparison on the same data with per-iteration timing.
//
// Build & run:  ./build/examples/kmeans_clustering
#include <cstdio>

#include "workloads/kmeans.hpp"

namespace df = gflink::dataflow;
namespace core = gflink::core;
namespace sim = gflink::sim;
namespace wl = gflink::workloads;

namespace {

wl::kmeans::Result run(wl::Mode mode, const wl::Testbed& tb, const wl::kmeans::Config& cfg) {
  df::Engine engine(wl::make_engine_config(tb));
  std::unique_ptr<core::GFlinkRuntime> runtime;
  if (mode == wl::Mode::Gpu) {
    wl::ensure_kernels_registered();
    runtime = std::make_unique<core::GFlinkRuntime>(engine, wl::make_gpu_config(tb));
  }
  wl::kmeans::Result result;
  engine.run([&](df::Engine& eng) -> sim::Co<void> {
    result = co_await wl::kmeans::run(eng, runtime.get(), tb, mode, cfg);
  });
  return result;
}

}  // namespace

int main() {
  wl::Testbed tb;  // the paper's testbed: 10 slaves, 2x Tesla C2050 each
  wl::kmeans::Config cfg;
  cfg.points = 210'000'000;  // Table 1 mid size (scaled by tb.scale)
  cfg.iterations = 10;

  std::printf("KMeans: %llu points (full-scale), k=%d, d=%d, %d iterations\n",
              static_cast<unsigned long long>(cfg.points), wl::kClusters, wl::kDim,
              cfg.iterations);
  std::printf("testbed: %d slaves x (4 CPU cores + %d x %s), scale %.0e\n\n", tb.workers,
              tb.gpus_per_worker, tb.gpu_spec.name.c_str(), tb.scale);

  auto cpu = run(wl::Mode::Cpu, tb, cfg);
  auto gpu = run(wl::Mode::Gpu, tb, cfg);

  auto fs = [&](sim::Duration d) { return sim::to_seconds(d) / tb.scale; };
  std::printf("%-10s %12s %12s\n", "iteration", "Flink (s)", "GFlink (s)");
  for (std::size_t i = 0; i < cpu.run.iterations.size(); ++i) {
    std::printf("%-10zu %12.2f %12.2f\n", i, fs(cpu.run.iterations[i]),
                fs(gpu.run.iterations[i]));
  }
  std::printf("%-10s %12.2f %12.2f   speedup %.2fx\n\n", "total", fs(cpu.run.total),
              fs(gpu.run.total), fs(cpu.run.total) / fs(gpu.run.total));

  std::printf("recovered centers (first 4 dims), identical on both paths:\n");
  for (std::size_t c = 0; c < gpu.centers.size(); ++c) {
    std::printf("  center %zu: %7.2f %7.2f %7.2f %7.2f\n", c, gpu.centers[c].x[0],
                gpu.centers[c].x[1], gpu.centers[c].x[2], gpu.centers[c].x[3]);
  }
  return 0;
}
