// Event-level streaming with GPU micro-batching — the extension the paper
// motivates choosing Flink for (§1.1).
//
// A stream of sensor-style events flows through a GPU scoring operator
// (micro-batched GWork submissions) into tumbling per-key windows. The
// program prints the throughput/latency trade-off for three micro-batch
// sizes.
//
// Build & run:  ./build/examples/streaming_pipeline
#include <cstdio>
#include <cstring>

#include "core/streaming.hpp"
#include "gpu/kernel.hpp"

namespace df = gflink::dataflow;
namespace core = gflink::core;
namespace gpu = gflink::gpu;
namespace mem = gflink::mem;
namespace sim = gflink::sim;

namespace {

struct Reading {
  std::uint64_t sensor;
  std::int64_t value;
};

const mem::StructDesc& reading_desc() {
  static const mem::StructDesc d =
      mem::StructDescBuilder("Reading", 8)
          .field("sensor", mem::FieldType::U64, 1, offsetof(Reading, sensor))
          .field("value", mem::FieldType::I64, 1, offsetof(Reading, value))
          .build();
  return d;
}

void register_scoring_kernel() {
  gpu::Kernel k;
  k.name = "scoreReading";
  k.cost.flops_per_item = 600.0;  // a small per-event model
  k.cost.dram_bytes_per_item = 2.0 * sizeof(Reading);
  k.fn = [](gpu::KernelLaunch& launch) {
    const auto* in = reinterpret_cast<const Reading*>(launch.buffers[0].data());
    auto* out = reinterpret_cast<Reading*>(launch.buffers.back().data());
    for (std::size_t i = 0; i < launch.items; ++i) {
      out[i] = Reading{in[i].sensor, (in[i].value * 7 + 3) % 1000};
    }
  };
  gpu::KernelRegistry::global().register_kernel(k);
}

core::StreamingResult run_with_batch(std::size_t batch_size) {
  df::EngineConfig config;
  config.cluster.num_workers = 2;
  config.job_submit_overhead = 0;
  config.job_schedule_overhead = 0;
  df::Engine engine(config);
  core::GFlinkRuntime runtime(engine, core::GpuManagerConfig{});

  core::StreamOp score;
  score.kind = core::StreamOp::Kind::GpuBatch;
  score.name = "gpuScore";
  score.out_desc = &reading_desc();
  score.kernel = "scoreReading";
  score.batch_size = batch_size;

  core::StreamOp window;
  window.kind = core::StreamOp::Kind::WindowSum;
  window.name = "windowSum";
  window.out_desc = &reading_desc();
  window.cost = df::OpCost{8.0, 2.0 * sizeof(Reading)};
  window.key_fn = [](const std::byte* rec) {
    return reinterpret_cast<const Reading*>(rec)->sensor;
  };
  window.combine_fn = [](std::byte* acc, const std::byte* rec) {
    reinterpret_cast<Reading*>(acc)->value += reinterpret_cast<const Reading*>(rec)->value;
  };
  window.window = 256;  // one output per 256 readings per sensor

  core::StreamingConfig cfg;
  cfg.total_events = 120'000;
  cfg.events_per_second = 1.0e6;
  cfg.parallelism = 2;

  std::vector<core::StreamOp> ops{score, window};
  core::StreamingResult result;
  engine.run([&](df::Engine& eng) -> sim::Co<void> {
    df::Job job(eng, "stream");
    co_await job.submit();
    result = co_await core::run_streaming(
        eng, job, &reading_desc(),
        [](std::uint64_t i, std::byte* rec) {
          Reading r{i % 32, static_cast<std::int64_t>(i * 31 % 997)};
          std::memcpy(rec, &r, sizeof(r));
        },
        ops, cfg);
    job.finish();
  });
  return result;
}

}  // namespace

int main() {
  register_scoring_kernel();
  std::printf("streaming: 120k events at 1M events/s, GPU scoring + 256-event windows\n\n");
  std::printf("%-12s %16s %14s %14s %12s\n", "micro-batch", "throughput(ev/s)", "p50 lat(us)",
              "p99 lat(us)", "GWorks");
  for (std::size_t batch : {32UL, 256UL, 2048UL}) {
    auto r = run_with_batch(batch);
    // Ingest rate: the windows collapse 256 events into one sink record,
    // so sink-side throughput would undercount by that factor.
    const double ingest_eps =
        static_cast<double>(r.events_in) / gflink::sim::to_seconds(r.makespan);
    std::printf("%-12zu %16.0f %14.1f %14.1f %12llu\n", batch, ingest_eps,
                r.latency_p50 / 1e3, r.latency_p99 / 1e3,
                static_cast<unsigned long long>(r.gpu_batches));
  }
  std::printf("\nsmall batches: per-GWork overheads dominate (low throughput, queueing);\n");
  std::printf("large batches: full throughput but events wait for their batch to fill.\n");
  return 0;
}
