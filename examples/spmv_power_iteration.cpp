// Iterative SpMV on a single heterogeneous machine — the paper's Fig. 7b
// scenario, and the clearest demonstration of the GPU cache scheme.
//
// A 1.0 GB CSR matrix is multiplied against a dense vector repeatedly.
// The first iteration pays the DFS read and the PCIe transfer of the
// matrix; every later iteration finds the matrix (and vector) already in
// device memory, so only the kernels run. Watch the per-iteration times
// collapse after iteration 0 — and compare against the same run with the
// cache disabled.
//
// Build & run:  ./build/examples/spmv_power_iteration
#include <cstdio>

#include "workloads/spmv.hpp"

namespace df = gflink::dataflow;
namespace core = gflink::core;
namespace sim = gflink::sim;
namespace wl = gflink::workloads;

namespace {

wl::spmv::Result run(wl::Mode mode, bool gpu_cache, const wl::Testbed& tb) {
  wl::spmv::Config cfg;
  cfg.matrix_bytes = 1ULL << 30;
  cfg.iterations = 8;
  cfg.gpu_cache = gpu_cache;
  df::Engine engine(wl::make_engine_config(tb));
  std::unique_ptr<core::GFlinkRuntime> runtime;
  if (mode == wl::Mode::Gpu) {
    wl::ensure_kernels_registered();
    runtime = std::make_unique<core::GFlinkRuntime>(engine, wl::make_gpu_config(tb));
  }
  wl::spmv::Result result;
  engine.run([&](df::Engine& eng) -> sim::Co<void> {
    result = co_await wl::spmv::run(eng, runtime.get(), tb, mode, cfg);
  });
  return result;
}

}  // namespace

int main() {
  wl::Testbed tb;
  tb.workers = 1;  // single machine: JobManager colocated with the worker

  auto cpu = run(wl::Mode::Cpu, true, tb);
  auto cached = run(wl::Mode::Gpu, true, tb);
  auto uncached = run(wl::Mode::Gpu, false, tb);

  std::printf("SpMV, 1.0 GB matrix (%llu rows x %llu cols full-scale), single machine\n\n",
              static_cast<unsigned long long>(cpu.rows * 1000),
              static_cast<unsigned long long>(cpu.cols * 1000));
  auto fs = [&](sim::Duration d) { return sim::to_seconds(d) / tb.scale; };
  std::printf("%-10s %14s %18s %18s\n", "iteration", "Flink CPU (s)", "GFlink cached (s)",
              "GFlink no-cache (s)");
  for (std::size_t i = 0; i < cpu.run.iterations.size(); ++i) {
    std::printf("%-10zu %14.2f %18.3f %18.3f\n", i, fs(cpu.run.iterations[i]),
                fs(cached.run.iterations[i]), fs(uncached.run.iterations[i]));
  }
  std::printf("\nfirst-iteration speedup: %.1fx; steady-state speedup: %.1fx\n",
              fs(cpu.run.iterations[0]) / fs(cached.run.iterations[0]),
              fs(cpu.run.iterations[3]) / fs(cached.run.iterations[3]));
  std::printf("the cache saves %.1fx per steady-state iteration\n",
              fs(uncached.run.iterations[3]) / fs(cached.run.iterations[3]));
  return 0;
}
