// Quickstart: WordCount on GFlink, end to end.
//
// This example shows the whole public API surface on the simplest job:
//   1. describe a record type as a GStruct (zero-serialization layout),
//   2. stand up a simulated heterogeneous cluster (engine + GPU runtime),
//   3. build a DataSet pipeline with a GPU-based operator,
//   4. run it and read results + timing off the virtual clock.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/gdst.hpp"
#include "dataflow/dataset.hpp"
#include "gpu/kernel.hpp"
#include "obs/run_report.hpp"
#include "sim/random.hpp"

namespace df = gflink::dataflow;
namespace core = gflink::core;
namespace gpu = gflink::gpu;
namespace mem = gflink::mem;
namespace obs = gflink::obs;
namespace sim = gflink::sim;

namespace {

// 1. The record: a word occurrence. The descriptor mirrors the struct
//    exactly, so records move through the engine (and onto GPUs) as raw
//    bytes — the paper's GStruct idea.
struct Word {
  std::uint64_t id;     // hashed token
  std::uint64_t count;  // always 1 at the source
};

const mem::StructDesc& word_desc() {
  static const mem::StructDesc d =
      mem::StructDescBuilder("Word", 8)
          .field("id", mem::FieldType::U64, 1, offsetof(Word, id))
          .field("count", mem::FieldType::U64, 1, offsetof(Word, count))
          .build();
  return d;
}

// 2. A CUDA-style kernel: combine word counts within one block. Registered
//    by name, exactly like GFlink resolves PTX functions (GWork.executeName).
void register_kernel() {
  gpu::Kernel k;
  k.name = "quickstartCombine";
  k.cost.flops_per_item = 12.0;                       // hash + probe
  k.cost.dram_bytes_per_item = 2.0 * sizeof(Word);    // read + write
  k.fn = [](gpu::KernelLaunch& launch) {
    const auto* in = reinterpret_cast<const Word*>(launch.buffers[0].data());
    auto* out = reinterpret_cast<Word*>(launch.buffers.back().data());
    std::map<std::uint64_t, std::uint64_t> counts;
    for (std::size_t i = 0; i < launch.items; ++i) counts[in[i].id] += in[i].count;
    std::size_t o = 0;
    for (const auto& [id, count] : counts) out[o++] = Word{id, count};
    for (; o < launch.items; ++o) out[o] = Word{~0ULL, 0};  // padding
  };
  gpu::KernelRegistry::global().register_kernel(k);
}

}  // namespace

int main() {
  register_kernel();

  // 3. The cluster: 4 workers, each with 4 CPU cores and 2 Tesla C2050s.
  df::EngineConfig config;
  config.cluster.num_workers = 4;
  df::Engine engine(config);
  core::GpuManagerConfig gpu_config;  // defaults: 2x C2050 per worker
  core::GFlinkRuntime runtime(engine, gpu_config);

  // 4. The driver program — a coroutine over the virtual clock.
  engine.run([&runtime](df::Engine& eng) -> sim::Co<void> {
    df::Job job(eng, "quickstart");
    co_await job.submit();

    // Source: 200k Zipf-distributed words, generated deterministically.
    constexpr std::uint64_t kWords = 200'000;
    auto zipf = std::make_shared<sim::ZipfTable>(10'000, 1.0);
    auto words = df::DataSet<Word>::from_generator(
        eng, &word_desc(), eng.default_parallelism(),
        [zipf](int part, std::vector<Word>& out) {
          for (std::uint64_t i = static_cast<std::uint64_t>(part); i < kWords; i += 16) {
            std::uint64_t h = i * 1000003 + 7;
            const double u = static_cast<double>(sim::splitmix64(h) >> 11) * 0x1.0p-53;
            out.push_back(Word{static_cast<std::uint64_t>(zipf->sample_u(u)), 1});
          }
        });

    // GPU-based pre-combine (gpuMapPartition), then the final reduce.
    core::GpuOpSpec spec;
    spec.kernel = "quickstartCombine";
    spec.ptx_path = "/kernels/quickstart.ptx";
    auto counted =
        core::gpu_dataset_op<Word, Word>(words, &word_desc(), "gpuCombine", spec)
            .filter("dropPadding", df::OpCost{2.0, sizeof(Word)},
                    [](const Word& w) { return w.id != ~0ULL; })
            .reduce_by_key("countWords", df::OpCost{60.0, 2.0 * sizeof(Word)},
                           [](const Word& w) { return w.id; },
                           [](Word& acc, const Word& w) { acc.count += w.count; });

    auto counts = co_await counted.collect(job);
    job.finish();

    std::uint64_t total = 0;
    Word top{0, 0};
    for (const auto& w : counts) {
      total += w.count;
      if (w.count > top.count) top = w;
    }
    std::printf("counted %llu words, %zu distinct\n",
                static_cast<unsigned long long>(total), counts.size());
    std::printf("most frequent word id=%llu appeared %llu times\n",
                static_cast<unsigned long long>(top.id),
                static_cast<unsigned long long>(top.count));
    std::printf("job wall time (virtual): %s\n",
                sim::format_duration(job.stats().total()).c_str());
    std::printf("shuffle volume: %llu bytes over %zu stages\n",
                static_cast<unsigned long long>(job.stats().shuffle_bytes),
                job.stats().stages.size());
  });

  // 5. Observability: snapshot the run's metrics (obs subsystem) and print
  //    the headline numbers every GFlink run is judged by.
  obs::MetricsRegistry snapshot;
  engine.export_metrics(snapshot);
  runtime.export_metrics(snapshot);
  obs::add_derived_gflink_metrics(snapshot);
  std::printf("\n-- metrics summary --\n");
  std::printf("kernels launched:      %.0f\n", snapshot.counter_sum("gpu_kernels_total"));
  std::printf("H2D bytes:             %.0f\n", snapshot.counter_sum("gpu_bytes_h2d_total"));
  std::printf("GPU cache hit ratio:   %.2f\n", snapshot.gauge_value("cache_hit_ratio"));
  std::printf("locality hit ratio:    %.2f\n", snapshot.gauge_value("locality_hit_ratio"));
  std::printf("stage busy (h2d/kernel/d2h): %.2f / %.2f / %.2f ms\n",
              snapshot.counter_value("gpu_stage_busy_ns", {{"stage", "h2d"}}) / 1e6,
              snapshot.counter_value("gpu_stage_busy_ns", {{"stage", "kernel"}}) / 1e6,
              snapshot.counter_value("gpu_stage_busy_ns", {{"stage", "d2h"}}) / 1e6);
  std::printf("network bytes:         %.0f\n", snapshot.counter_value("net.bytes"));
  return 0;
}
