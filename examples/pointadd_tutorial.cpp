// The paper's Algorithm 3.1, line by line: define a GStruct-backed record,
// register a CUDA kernel ("addPoint.ptx" / cudaAddPoint), and drive
// gpuMapPartition over a GDST — but at the level below the typed facade,
// assembling and submitting GWork objects by hand, the way the paper's
// pseudo-code does.
//
// Build & run:  ./build/examples/pointadd_tutorial
#include <cstdio>

#include "core/gpu_manager.hpp"
#include "dataflow/dataset.hpp"
#include "gpu/kernel.hpp"
#include "workloads/records.hpp"

namespace df = gflink::dataflow;
namespace core = gflink::core;
namespace gpu = gflink::gpu;
namespace mem = gflink::mem;
namespace sim = gflink::sim;
namespace wl = gflink::workloads;

namespace {

// Algorithm 3.1's kernel: cudaAddPoint, out.x = in.x + in.y.
void register_add_point() {
  if (gpu::KernelRegistry::global().contains("tutorialAddPoint")) return;
  gpu::Kernel k;
  k.name = "tutorialAddPoint";
  k.preferred_layout = mem::Layout::AoS;
  k.cost.flops_per_item = 2.0;
  k.cost.dram_bytes_per_item = 2.0 * sizeof(wl::Pt);
  k.fn = [](gpu::KernelLaunch& launch) {
    const auto* in = reinterpret_cast<const wl::Pt*>(launch.buffers[0].data());
    auto* out = reinterpret_cast<wl::Pt*>(launch.buffers.back().data());
    for (std::size_t i = 0; i < launch.items; ++i) out[i] = wl::Pt{in[i].x + in[i].y, in[i].y};
  };
  gpu::KernelRegistry::global().register_kernel(k);
}

// The paper's addPoint GMapper (Algorithm 3.1, lines 7-19): build a GWork
// per block, set its buffers/geometry/cache fields, submit it to the
// GStreamManager, and await completion.
sim::Co<void> add_point_mapper(df::TaskContext& ctx, const mem::RecordBatch& in,
                               mem::RecordBatch& out) {
  core::GpuManager& manager = core::GpuManager::of(ctx);
  mem::MemoryManager& memory = ctx.worker_state().memory();
  const std::size_t stride = sizeof(wl::Pt);
  const std::size_t per_block = ctx.engine().config().page_size / stride;

  for (std::size_t first = 0; first < in.count(); first += per_block) {
    const std::size_t n = std::min(per_block, in.count() - first);

    mem::HBufferPtr in_buf = co_await memory.allocate(n * stride);   // HBuffer in
    in_buf->set_pinned(true);
    in_buf->write(0, in.record_ptr(first), n * stride);
    mem::HBufferPtr out_buf = co_await memory.allocate(n * stride);  // HBuffer out
    out_buf->set_pinned(true);

    auto work = std::make_shared<core::GWork>();                     // GWork sWork
    work->ptx_path = "/addPoint.ptx";                                // sWork.ptxPath
    work->size = n;                                                  // sWork.size
    work->block_size = 256;                                          // sWork.blockSize
    work->grid_size = static_cast<int>((n + 255) / 256);             // sWork.gridSize
    core::GBuffer input;                                             // sWork.inBuffer
    input.host = in_buf;
    input.bytes = n * stride;
    input.cache = true;                                              // sWork.cache
    input.cache_key = core::make_cache_key(                          // sWork.cacheKey
        1, static_cast<std::uint32_t>(ctx.partition()),
        static_cast<std::uint32_t>(first / per_block));
    work->inputs.push_back(input);
    core::GBuffer output;                                            // sWork.outBuffer
    output.host = out_buf;
    output.bytes = n * stride;
    work->outputs.push_back(output);
    work->execute_name = "tutorialAddPoint";                         // sWork.executeName
    work->job_id = ctx.job().id();

    co_await manager.run(work);  // submit to GStreamManager + await

    for (std::size_t i = 0; i < n; ++i) {
      out.append_raw(out_buf->data() + i * stride);
    }
  }
}

}  // namespace

int main() {
  register_add_point();

  df::EngineConfig config;
  config.cluster.num_workers = 2;
  df::Engine engine(config);
  core::GFlinkRuntime runtime(engine, core::GpuManagerConfig{});

  engine.run([](df::Engine& eng) -> sim::Co<void> {
    df::Job job(eng, "pointadd-tutorial");
    co_await job.submit();

    constexpr std::uint64_t kPoints = 100'000;
    auto points = df::DataSet<wl::Pt>::from_generator(
        eng, &wl::pt_desc(), 4, [](int part, std::vector<wl::Pt>& out) {
          for (std::uint64_t i = static_cast<std::uint64_t>(part); i < kPoints; i += 4) {
            out.push_back(wl::Pt{static_cast<float>(i), 1.0f});
          }
        });

    // The driver's loop (Algorithm 3.1, lines 3-5): M.gpuMapPartition(...)
    // three times over the cached dataset.
    auto handle = co_await points.materialize(job);
    for (int iter = 0; iter < 3; ++iter) {
      auto ds = df::DataSet<wl::Pt>::from_handle(eng, handle)
                    .async_map_partition<wl::Pt>(&wl::pt_desc(), "addPoint", &add_point_mapper);
      handle = co_await ds.materialize(job);
    }

    auto rows = co_await df::DataSet<wl::Pt>::from_handle(eng, handle).collect(job);
    job.finish();

    // After 3 iterations: x = x0 + 3*y = i + 3.
    bool ok = rows.size() == kPoints;
    for (const auto& p : rows) {
      if (p.x != p.y * 3.0f + (p.x - 3.0f * p.y)) ok = false;  // structural sanity
    }
    double sum = 0;
    for (const auto& p : rows) sum += p.x;
    std::printf("%zu points through 3 gpuMapPartition rounds, sum(x)=%.0f %s\n", rows.size(),
                sum, ok ? "(OK)" : "(MISMATCH)");
    std::printf("virtual job time: %s\n", sim::format_duration(job.stats().total()).c_str());
  });
  return 0;
}
