// Machine-readable reporting for bench binaries.
//
// Each bench binary accumulates one obs::RunReport across all of its cases
// (run_workload in bench_common.hpp feeds it) and writes BENCH_<name>.json
// on exit via GFLINK_BENCH_MAIN. The output directory is $GFLINK_BENCH_OUT
// when set, else the current directory.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/run_report.hpp"

namespace gflink::bench {

/// The binary-wide accumulating report.
inline obs::RunReport& bench_report() {
  static obs::RunReport report;
  return report;
}

inline std::string bench_report_path(const std::string& name) {
  const char* dir = std::getenv("GFLINK_BENCH_OUT");
  std::string base = (dir != nullptr && *dir != '\0') ? dir : ".";
  if (base.back() != '/') base += '/';
  return base + "BENCH_" + name + ".json";
}

/// Replacement for BENCHMARK_MAIN(): run the benchmarks, then write the
/// accumulated run report. A failed report write warns but does not fail
/// the bench.
inline int bench_main(int argc, char** argv, const char* name) {
  const auto wall_begin = std::chrono::steady_clock::now();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  obs::RunReport& rep = bench_report();
  rep.name = name;
  rep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin).count();
  obs::add_derived_gflink_metrics(rep.metrics);
  const std::string path = bench_report_path(name);
  if (rep.write(path)) {
    std::printf("run report: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write run report %s\n", path.c_str());
  }
  return 0;
}

}  // namespace gflink::bench

#define GFLINK_BENCH_MAIN(name) \
  int main(int argc, char** argv) { return gflink::bench::bench_main(argc, argv, #name); }
