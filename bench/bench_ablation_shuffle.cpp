// Ablation — the three exchange transports of the ShuffleService on the
// shuffle-dominated workload (PageRank, paper Fig. 5b), under both a
// uniform and a Zipf-skewed key distribution:
//
//  * barrier    — each task ships its buckets serially and holds its slot
//    until the last byte lands (the pre-ShuffleService behaviour);
//  * pipelined  — bucket sends detach: the slot frees while the NIC drains
//    and credit-bounded block sends toward distinct receivers overlap
//    (GFlink's compute/transfer overlap applied to the shuffle path);
//  * one_sided  — the RDMA-style transport: histogram exchange, remote
//    fetch-add offset reservations into pre-sized receive regions, bulk
//    one-sided writes over the HCA pipes, and a fetch-add completion
//    counter as the barrier (no credits, no per-block ACKs).
//
// Distributions: "uniform" draws link targets uniformly; "skewed" uses the
// Zipf-like hot-page generator (pagerank::Config::zipf_shift), which piles
// messages onto few hot keys — map-side combine then collapses them, so
// the skewed exchange moves fewer but more unbalanced buckets.
//
// Expected ordering (total job seconds, both distributions):
// one_sided < pipelined < barrier. tools/gen_shuffle_table.py turns the
// gauges recorded here into the EXPERIMENTS.md ablation table.
#include "bench_common.hpp"
#include "shuffle/shuffle_service.hpp"
#include "workloads/pagerank.hpp"

namespace {

using namespace gflink::bench;
namespace sh = gflink::shuffle;

constexpr sh::ShuffleMode kModes[] = {sh::ShuffleMode::Barrier, sh::ShuffleMode::Pipelined,
                                      sh::ShuffleMode::OneSided};
constexpr const char* kDists[] = {"uniform", "skewed"};

double measure(sh::ShuffleMode mode, bool skewed) {
  wl::Testbed tb;  // 10 workers, CPU path: the shuffle is the bottleneck
  tb.shuffle_mode = mode;
  df::EngineConfig cfg = wl::make_engine_config(tb);
  cfg.shuffle.spill_enabled = false;  // isolate the transport, not the budget

  df::Engine engine(cfg);
  wl::pagerank::Config pcfg;  // defaults: 10 M pages, 5 iterations
  if (skewed) pcfg.zipf_shift = 2;
  wl::pagerank::Result result;
  engine.run([&](df::Engine& eng) -> gflink::sim::Co<void> {
    result = co_await wl::pagerank::run(eng, nullptr, tb, wl::Mode::Cpu, pcfg);
  });

  const char* dist = kDists[skewed ? 1 : 0];
  gflink::obs::RunReport& rep = bench_report();
  rep.virtual_ns += engine.now();
  engine.export_metrics(rep.metrics);
  rep.metrics.inc("bench_cases_total");
  const double secs = full_seconds(result.run.total, tb);
  const gflink::obs::Labels labels{{"mode", sh::shuffle_mode_name(mode)}, {"dist", dist}};
  rep.metrics.gauge("ablation_shuffle_seconds", labels).set(secs);
  rep.metrics.gauge("ablation_shuffle_checksum", labels).set(result.run.checksum);
  return secs;
}

void Ablation_Shuffle(benchmark::State& state) {
  const auto mode = kModes[state.range(0)];
  const bool skewed = state.range(1) != 0;
  for (auto _ : state) {
    const double secs = measure(mode, skewed);
    wl::Testbed tb;
    state.SetIterationTime(secs * tb.scale);  // simulated seconds
    state.counters["full_s"] = secs;
  }
  state.SetLabel(std::string(sh::shuffle_mode_name(mode)) + "/" + kDists[skewed ? 1 : 0]);
}
BENCHMARK(Ablation_Shuffle)
    ->Args({0, 0})->Args({1, 0})->Args({2, 0})
    ->Args({0, 1})->Args({1, 1})->Args({2, 1})
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(ablation_shuffle);
