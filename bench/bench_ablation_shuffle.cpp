// Ablation — exchange modes of the block-granular ShuffleService on the
// shuffle-dominated workload (PageRank, paper Fig. 5b):
//
//  * barrier          — each task ships its buckets serially and holds its
//    slot until the last byte lands (the pre-ShuffleService behaviour);
//  * pipelined        — bucket sends detach: the slot frees while the NIC
//    drains and sends toward distinct receivers overlap (GFlink's
//    compute/transfer overlap applied to the shuffle path);
//  * pipelined+spill  — pipelined, plus a deliberately tight receiver
//    budget so part of every exchange spills to the DFS and is read back
//    at merge time (the memory-constrained configuration).
//
// Expected ordering (total job seconds): pipelined < barrier, and
// pipelined+spill slower than pipelined (spill I/O) but still exchanging
// under a bounded receiver footprint. tools/gen_shuffle_table.py turns the
// gauges recorded here into the EXPERIMENTS.md ablation table.
#include "bench_common.hpp"
#include "workloads/pagerank.hpp"

namespace {

using namespace gflink::bench;

enum class ShuffleMode : int { Barrier, Pipelined, PipelinedSpill };

const char* mode_key(ShuffleMode m) {
  switch (m) {
    case ShuffleMode::Barrier: return "barrier";
    case ShuffleMode::Pipelined: return "pipelined";
    case ShuffleMode::PipelinedSpill: return "pipelined+spill";
  }
  return "?";
}

double measure(ShuffleMode mode) {
  wl::Testbed tb;  // 10 workers, CPU path: the shuffle is the bottleneck
  df::EngineConfig cfg = wl::make_engine_config(tb);
  switch (mode) {
    case ShuffleMode::Barrier:
      cfg.shuffle.pipelined = false;
      cfg.shuffle.spill_enabled = false;
      break;
    case ShuffleMode::Pipelined:
      cfg.shuffle.spill_enabled = false;
      break;
    case ShuffleMode::PipelinedSpill:
      // ~16 MB full-scale per receiver: far below PageRank's per-iteration
      // message volume, so every exchange spills part of its deposits.
      cfg.shuffle.receiver_budget_bytes = std::max<std::uint64_t>(
          1024, static_cast<std::uint64_t>((16.0 * (1 << 20)) * tb.scale));
      break;
  }

  df::Engine engine(cfg);
  wl::pagerank::Config pcfg;  // defaults: 10 M pages, 5 iterations
  wl::pagerank::Result result;
  engine.run([&](df::Engine& eng) -> gflink::sim::Co<void> {
    result = co_await wl::pagerank::run(eng, nullptr, tb, wl::Mode::Cpu, pcfg);
  });

  gflink::obs::RunReport& rep = bench_report();
  rep.virtual_ns += engine.now();
  engine.export_metrics(rep.metrics);
  rep.metrics.inc("bench_cases_total");
  const double secs = full_seconds(result.run.total, tb);
  rep.metrics.gauge("ablation_shuffle_seconds", {{"mode", mode_key(mode)}}).set(secs);
  rep.metrics.gauge("ablation_shuffle_checksum", {{"mode", mode_key(mode)}})
      .set(result.run.checksum);
  return secs;
}

void Ablation_Shuffle(benchmark::State& state) {
  const auto mode = static_cast<ShuffleMode>(state.range(0));
  for (auto _ : state) {
    const double secs = measure(mode);
    wl::Testbed tb;
    state.SetIterationTime(secs * tb.scale);  // simulated seconds
    state.counters["full_s"] = secs;
  }
  state.SetLabel(mode_key(mode));
}
BENCHMARK(Ablation_Shuffle)
    ->Arg(0)->Arg(1)->Arg(2)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(ablation_shuffle);
