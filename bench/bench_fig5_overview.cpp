// Figure 5 — average running time and speedup on the 10-slave cluster for
// KMeans (a), PageRank (b) and WordCount (c) over the five Table-1 input
// sizes, original Flink (CPU) vs GFlink.
//
// Paper shapes to reproduce: KMeans ~5x, PageRank ~3.5x, WordCount ~1.1x;
// speedup grows with input size (Observation 3).
#include "bench_common.hpp"
#include "workloads/kmeans.hpp"
#include "workloads/pagerank.hpp"
#include "workloads/wordcount.hpp"

namespace {

using namespace gflink::bench;

void Fig5a_KMeans(benchmark::State& state) {
  wl::Testbed tb;  // 10 workers x 2 C2050
  wl::kmeans::Config cfg;
  cfg.points = static_cast<std::uint64_t>(state.range(0)) * 1'000'000ULL;
  for (auto _ : state) {
    auto cpu = run_workload(&wl::kmeans::run, tb, wl::Mode::Cpu, cfg);
    auto gpu = run_workload(&wl::kmeans::run, tb, wl::Mode::Gpu, cfg);
    report_pair(state, full_seconds(cpu.run.total, tb), full_seconds(gpu.run.total, tb), tb);
  }
  state.SetLabel("Fig5a points(M)=" + std::to_string(state.range(0)));
}
BENCHMARK(Fig5a_KMeans)
    ->Arg(150)->Arg(180)->Arg(210)->Arg(240)->Arg(270)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

void Fig5b_PageRank(benchmark::State& state) {
  wl::Testbed tb;
  wl::pagerank::Config cfg;
  cfg.pages = static_cast<std::uint64_t>(state.range(0)) * 1'000'000ULL;
  for (auto _ : state) {
    auto cpu = run_workload(&wl::pagerank::run, tb, wl::Mode::Cpu, cfg);
    auto gpu = run_workload(&wl::pagerank::run, tb, wl::Mode::Gpu, cfg);
    report_pair(state, full_seconds(cpu.run.total, tb), full_seconds(gpu.run.total, tb), tb);
  }
  state.SetLabel("Fig5b pages(M)=" + std::to_string(state.range(0)));
}
BENCHMARK(Fig5b_PageRank)
    ->Arg(5)->Arg(10)->Arg(15)->Arg(20)->Arg(25)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

void Fig5c_WordCount(benchmark::State& state) {
  wl::Testbed tb;
  wl::wordcount::Config cfg;
  cfg.text_bytes = static_cast<std::uint64_t>(state.range(0)) << 30;
  for (auto _ : state) {
    auto cpu = run_workload(&wl::wordcount::run, tb, wl::Mode::Cpu, cfg);
    auto gpu = run_workload(&wl::wordcount::run, tb, wl::Mode::Gpu, cfg);
    report_pair(state, full_seconds(cpu.run.total, tb), full_seconds(gpu.run.total, tb), tb);
  }
  state.SetLabel("Fig5c text(GB)=" + std::to_string(state.range(0)));
}
BENCHMARK(Fig5c_WordCount)
    ->Arg(24)->Arg(32)->Arg(40)->Arg(48)->Arg(56)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(fig5_overview);
