// Figure 7(c)/(d) — average running time as the number of slave nodes
// varies, for a fixed data size (10 GB class).
//
// Paper shape: the CPU line falls steeply with more slaves (compute
// bound); the GFlink line is already low and flattens quickly because
// non-compute overheads (I/O, network, scheduling, job submission)
// dominate once the GPUs absorb the computation.
#include "bench_common.hpp"
#include "workloads/kmeans.hpp"
#include "workloads/spmv.hpp"

namespace {

using namespace gflink::bench;

void Fig7c_KMeansScalability(benchmark::State& state) {
  wl::Testbed tb;
  tb.workers = static_cast<int>(state.range(0));
  wl::kmeans::Config cfg;
  cfg.points = 150'000'000;  // ~10 GB of Point records
  for (auto _ : state) {
    auto cpu = run_workload(&wl::kmeans::run, tb, wl::Mode::Cpu, cfg);
    auto gpu = run_workload(&wl::kmeans::run, tb, wl::Mode::Gpu, cfg);
    report_pair(state, full_seconds(cpu.run.total, tb), full_seconds(gpu.run.total, tb), tb);
  }
  state.SetLabel("Fig7c slaves=" + std::to_string(state.range(0)));
}
BENCHMARK(Fig7c_KMeansScalability)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

void Fig7d_SpmvScalability(benchmark::State& state) {
  wl::Testbed tb;
  tb.workers = static_cast<int>(state.range(0));
  wl::spmv::Config cfg;
  cfg.matrix_bytes = 10ULL << 30;  // the paper's 10 GB matrix
  for (auto _ : state) {
    auto cpu = run_workload(&wl::spmv::run, tb, wl::Mode::Cpu, cfg);
    auto gpu = run_workload(&wl::spmv::run, tb, wl::Mode::Gpu, cfg);
    report_pair(state, full_seconds(cpu.run.total, tb), full_seconds(gpu.run.total, tb), tb);
  }
  state.SetLabel("Fig7d slaves=" + std::to_string(state.range(0)));
}
BENCHMARK(Fig7d_SpmvScalability)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(fig7_scalability);
