// Figure 7(a)/(b) — per-iteration running time.
//
//  (a) KMeans, 210 M points, a 3-slave cluster: CPU vs GFlink with 1 and
//      2 GPUs per node. First iteration includes the DFS read (and the
//      first H2D transfers on GPUs); middle iterations run from memory /
//      GPU cache; the last iteration adds the DFS write.
//  (b) SpMV, 1.0 GB matrix, a single machine: the paper's headline shape —
//      ~2.5x speedup in the first iteration, ~10x afterwards (matrix
//      cached on the GPU), and 2 GPUs beating 1 on the middle iterations.
//
// Each case's manual time is the *middle* (steady-state) iteration; the
// full per-iteration series is printed to stdout.
#include "bench_common.hpp"
#include "workloads/kmeans.hpp"
#include "workloads/spmv.hpp"

namespace {

using namespace gflink::bench;

void print_series(const char* name, const std::vector<gflink::sim::Duration>& iters,
                  const wl::Testbed& tb) {
  std::printf("%-28s per-iteration full-scale seconds:", name);
  for (auto d : iters) std::printf(" %8.2f", full_seconds(d, tb));
  std::printf("\n");
}

double middle_iteration(const std::vector<gflink::sim::Duration>& iters, const wl::Testbed& tb) {
  return full_seconds(iters[iters.size() / 2], tb);
}

void Fig7a_KMeansIterations(benchmark::State& state) {
  wl::Testbed tb;
  tb.workers = 3;
  tb.gpus_per_worker = static_cast<int>(state.range(0));  // 0 = CPU
  wl::kmeans::Config cfg;
  cfg.points = 210'000'000;
  cfg.iterations = 8;
  const bool gpu = state.range(0) > 0;
  if (!gpu) tb.gpus_per_worker = 2;  // unused
  for (auto _ : state) {
    auto r = run_workload(&wl::kmeans::run, tb, gpu ? wl::Mode::Gpu : wl::Mode::Cpu, cfg);
    state.SetIterationTime(middle_iteration(r.run.iterations, tb) * tb.scale);
    state.counters["first_iter_s"] = full_seconds(r.run.iterations.front(), tb);
    state.counters["middle_iter_s"] = middle_iteration(r.run.iterations, tb);
    state.counters["last_iter_s"] = full_seconds(r.run.iterations.back(), tb);
    print_series(gpu ? (state.range(0) == 1 ? "Fig7a GFlink 1 GPU/node" : "Fig7a GFlink 2 GPU/node")
                     : "Fig7a Flink CPU",
                 r.run.iterations, tb);
  }
}
BENCHMARK(Fig7a_KMeansIterations)
    ->Arg(0)->Arg(1)->Arg(2)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

void Fig7b_SpmvIterations(benchmark::State& state) {
  wl::Testbed tb;
  tb.workers = 1;  // single machine, colocated master
  tb.gpus_per_worker = state.range(0) > 0 ? static_cast<int>(state.range(0)) : 2;
  wl::spmv::Config cfg;
  cfg.matrix_bytes = 1ULL << 30;  // 1.0 GB matrix, 123 MB-class vector
  cfg.iterations = 8;
  const bool gpu = state.range(0) > 0;
  for (auto _ : state) {
    auto r = run_workload(&wl::spmv::run, tb, gpu ? wl::Mode::Gpu : wl::Mode::Cpu, cfg);
    state.SetIterationTime(middle_iteration(r.run.iterations, tb) * tb.scale);
    state.counters["first_iter_s"] = full_seconds(r.run.iterations.front(), tb);
    state.counters["middle_iter_s"] = middle_iteration(r.run.iterations, tb);
    state.counters["last_iter_s"] = full_seconds(r.run.iterations.back(), tb);
    print_series(gpu ? (state.range(0) == 1 ? "Fig7b GFlink 1 GPU" : "Fig7b GFlink 2 GPUs")
                     : "Fig7b Flink CPU",
                 r.run.iterations, tb);
  }
}
BENCHMARK(Fig7b_SpmvIterations)
    ->Arg(0)->Arg(1)->Arg(2)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(fig7_iterations);
