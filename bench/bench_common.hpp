// Shared scaffolding for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one of the paper's tables or figures: it
// builds a fresh simulated testbed per case, runs the workload driver(s)
// to completion on the virtual clock, and reports *extrapolated full-scale
// seconds* (simulated seconds divided by the scale factor; see
// workloads/common.hpp for the scaling model). Benchmarks use
// google-benchmark's manual-time mode: the time column is virtual, not
// wall-clock, and runs are deterministic so a single iteration is exact.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_report.hpp"
#include "core/gdst.hpp"
#include "workloads/common.hpp"

namespace gflink::bench {

namespace df = gflink::dataflow;
namespace core = gflink::core;
namespace gpu = gflink::gpu;
namespace sim = gflink::sim;
namespace wl = gflink::workloads;

/// Run one workload driver on a fresh testbed; returns the full result.
template <typename ConfigT, typename ResultT>
ResultT run_workload(sim::Co<ResultT> (*driver)(df::Engine&, core::GFlinkRuntime*,
                                                const wl::Testbed&, wl::Mode, const ConfigT&),
                     const wl::Testbed& tb, wl::Mode mode, const ConfigT& config) {
  df::Engine engine(wl::make_engine_config(tb));
  std::unique_ptr<core::GFlinkRuntime> runtime;
  if (mode == wl::Mode::Gpu) {
    wl::ensure_kernels_registered();
    runtime = std::make_unique<core::GFlinkRuntime>(engine, wl::make_gpu_config(tb));
  }
  ResultT result{};
  engine.run([&](df::Engine& eng) -> sim::Co<void> {
    result = co_await driver(eng, runtime.get(), tb, mode, config);
  });
  // Feed the binary-wide run report before the engine (and its registry)
  // is torn down. Counters add across cases; gauges keep the last case.
  obs::RunReport& rep = bench_report();
  rep.virtual_ns += engine.now();
  engine.export_metrics(rep.metrics);
  if (runtime) runtime->export_metrics(rep.metrics);
  rep.metrics.inc("bench_cases_total");
  return result;
}

/// Full-scale seconds of a run (the number the paper's figures plot).
inline double full_seconds(sim::Duration d, const wl::Testbed& tb) {
  return sim::to_seconds(d) / tb.scale;
}

/// Report one CPU-vs-GFlink pair through google-benchmark: the manual time
/// is the GFlink run; counters carry both times and the speedup.
inline void report_pair(benchmark::State& state, double cpu_seconds, double gflink_seconds,
                        const wl::Testbed& tb) {
  state.SetIterationTime(gflink_seconds * tb.scale);  // simulated seconds
  state.counters["cpu_s"] = cpu_seconds;
  state.counters["gflink_s"] = gflink_seconds;
  state.counters["speedup"] = cpu_seconds / gflink_seconds;
}

}  // namespace gflink::bench
