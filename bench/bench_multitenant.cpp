// Multi-tenant JobService under a closed-loop serving workload.
//
// Three tenants weighted 2:1:1 (gold, silver, bronze) each drive K
// closed-loop clients submitting identical PointAdd-style GPU jobs through
// the JobService until a virtual deadline. The service's total in-flight
// cap keeps the cluster saturated with a standing backlog, so dispatch
// order — the deficit-round-robin fairness policy — decides who runs.
// With equal job sizes, each tenant's achieved throughput share and GPU
// cache share must converge to its weight share (2:1:1 within 10%), while
// the per-tenant p99 latency splits into queue wait vs. run.
//
// Gauges gate the aggregate jobs/sec in the CI perf guard and feed
// tools/gen_tenant_table.py; the per-tenant fairness section lands in the
// run report's `tenants` object (schema gflink.run_report/v3).
#include "bench_common.hpp"
#include "service/job_service.hpp"
#include "sim/closed_loop.hpp"
#include "workloads/pointadd.hpp"
#include "workloads/records.hpp"

namespace {

using namespace gflink::bench;
namespace svc = gflink::service;
using gflink::sim::Co;
using gflink::workloads::Pt;

struct TenantLoad {
  svc::TenantConfig config;
  int clients = 2;
};

struct CaseResult {
  double virtual_seconds = 0.0;  // simulated, unscaled
  std::uint64_t completed = 0;
  std::vector<svc::JobService::TenantSnapshot> tenants;
  gflink::obs::Json fairness;
};

CaseResult run_case(const wl::Testbed& tb, const std::vector<TenantLoad>& loads,
                    gflink::sim::Time deadline) {
  df::Engine engine(wl::make_engine_config(tb));
  wl::ensure_kernels_registered();
  core::GFlinkRuntime runtime(engine, wl::make_gpu_config(tb));

  svc::ServiceConfig scfg;
  scfg.max_pending = 64;
  // Two jobs run at a time: enough to keep both GPUs busy, few enough that
  // every tenant always has a pending backlog and DRR decides who is next.
  scfg.max_total_in_flight = 2;
  svc::JobService service(engine, &runtime, scfg);
  for (const auto& load : loads) service.add_tenant(load.config);

  // ~400 KB of points per job at testbed scale: the GPU map caches its
  // input, so every completed job adds to its tenant's cache footprint.
  const std::uint64_t points_per_job = 50'000;
  const int partitions = 2;

  CaseResult out;
  engine.run([&](df::Engine& eng) -> Co<void> {
    gflink::sim::WaitGroup wg(eng.sim());
    wg.add(static_cast<int>(loads.size()));
    for (const auto& load : loads) {
      eng.sim().spawn([](df::Engine& e, svc::JobService& s, const TenantLoad& ld,
                         std::uint64_t n, int parts, gflink::sim::Time stop_at,
                         gflink::sim::WaitGroup& join) -> Co<void> {
        co_await gflink::sim::run_closed_loop(
            e.sim(), ld.clients, 1'000'000, 0,
            [&](const gflink::sim::ClosedLoopClient& c) -> Co<void> {
              auto ticket = s.submit(
                  ld.config.name,
                  ld.config.name + "-" + std::to_string(c.client) + "-" +
                      std::to_string(c.request),
                  1.0, [&e, n, parts](df::Job& job) -> Co<void> {
                    auto src = df::DataSet<Pt>::from_generator(
                        e, &wl::pt_desc(), parts,
                        [n, parts](int part, std::vector<Pt>& rows) {
                          for (std::uint64_t i = static_cast<std::uint64_t>(part); i < n;
                               i += static_cast<std::uint64_t>(parts)) {
                            rows.push_back(wl::pointadd::pt_at(i, 7));
                          }
                        });
                    auto added = wl::pointadd::mapper(src, wl::Mode::Gpu, 0);
                    co_await added.count(job);
                  });
              co_await ticket->wait();
            },
            stop_at);
        join.done();
      }(eng, service, load, points_per_job, partitions, deadline, wg));
    }
    co_await wg.wait();
    co_await service.drain();
  });

  out.virtual_seconds = sim::to_seconds(engine.now());
  out.completed = service.completed();
  out.tenants = service.snapshot();
  out.fairness = service.fairness_json();

  gflink::obs::RunReport& rep = bench_report();
  rep.virtual_ns += engine.now();
  engine.export_metrics(rep.metrics);
  runtime.export_metrics(rep.metrics);
  rep.tenants = service.fairness_json();
  rep.metrics.inc("bench_cases_total");
  return out;
}

void Multitenant_WeightedFairService(benchmark::State& state) {
  wl::Testbed tb;
  tb.workers = 2;
  // Gold pays for twice the share: double DRR weight, double GPU cache
  // quota, and stream priority over the best-effort tenants.
  const std::uint64_t quota = 4ULL << 20;
  std::vector<TenantLoad> loads{
      {svc::TenantConfig{"gold", 2.0, 0, 2 * quota, 1}, 2},
      {svc::TenantConfig{"silver", 1.0, 0, quota, 0}, 2},
      {svc::TenantConfig{"bronze", 1.0, 0, quota, 0}, 2},
  };

  for (auto _ : state) {
    CaseResult r = run_case(tb, loads, sim::millis(40));
    state.SetIterationTime(r.virtual_seconds);
    const double jobs_per_second =
        r.virtual_seconds > 0 ? static_cast<double>(r.completed) / r.virtual_seconds : 0.0;
    state.counters["jobs_total"] = static_cast<double>(r.completed);
    state.counters["jobs_per_second"] = jobs_per_second;

    double total_weight = 0.0, total_completed = 0.0, total_cache = 0.0;
    for (const auto& t : r.tenants) {
      total_weight += t.weight;
      total_completed += static_cast<double>(t.completed);
      total_cache += static_cast<double>(t.cache_inserted_bytes);
    }
    auto& rep = bench_report();
    rep.metrics.gauge("multitenant_jobs_per_second").set(jobs_per_second);
    // The perf guard's gauge check is bigger-is-worse (durations), so gate
    // aggregate throughput through its inverse.
    rep.metrics.gauge("multitenant_seconds_per_job")
        .set(jobs_per_second > 0 ? 1.0 / jobs_per_second : 0.0);
    for (const auto& t : r.tenants) {
      const double weight_share = t.weight / total_weight;
      const double throughput_share =
          total_completed > 0 ? static_cast<double>(t.completed) / total_completed : 0.0;
      const double cache_share =
          total_cache > 0 ? static_cast<double>(t.cache_inserted_bytes) / total_cache : 0.0;
      const double p99_s = t.latency_ns.p99 / 1e9;
      rep.metrics.gauge("multitenant_weight_share", {{"tenant", t.name}}).set(weight_share);
      rep.metrics.gauge("multitenant_throughput_share", {{"tenant", t.name}})
          .set(throughput_share);
      rep.metrics.gauge("multitenant_cache_share", {{"tenant", t.name}}).set(cache_share);
      rep.metrics.gauge("multitenant_p99_latency_s", {{"tenant", t.name}}).set(p99_s);
      state.counters["share_" + t.name] = throughput_share;
      std::printf(
          "%-6s weight=%.0f completed=%llu share=%.3f (want %.3f) cache=%.3f p99=%.4fs\n",
          t.name.c_str(), t.weight, static_cast<unsigned long long>(t.completed),
          throughput_share, weight_share, cache_share, p99_s);
    }
    std::printf("aggregate: %llu jobs in %.3f simulated s (%.1f jobs/s)\n",
                static_cast<unsigned long long>(r.completed), r.virtual_seconds,
                jobs_per_second);
  }
  state.SetLabel("multi-tenant weighted fair service");
}
BENCHMARK(Multitenant_WeightedFairService)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(multitenant);
