// Figure 8(c)/(d) — concurrent multi-application execution.
//
// Three applications (KMeans, SpMV, PointAdd) are submitted to GFlink
// simultaneously and compared against running each exclusively:
//  (c) a single node with parallelism 1 per application (one producer
//      task, two GPUs consuming);
//  (d) the 10-slave cluster with parallelism 10 per application.
//
// Paper shapes: on one node the concurrent makespan is slightly more than
// the sum of the exclusive runtimes (GPU sharing works; extra cost from
// contention); on the cluster the per-application speedup under
// concurrency drops to roughly a quarter of the exclusive speedup (I/O,
// network and HDFS contention).
#include "bench_common.hpp"
#include "workloads/kmeans.hpp"
#include "workloads/pointadd.hpp"
#include "workloads/spmv.hpp"

namespace {

using namespace gflink::bench;
using gflink::sim::Co;

struct Apps {
  wl::kmeans::Config kmeans;
  wl::spmv::Config spmv;
  wl::pointadd::Config pointadd;
};

Apps make_apps(int parallelism) {
  Apps a;
  a.kmeans.points = 60'000'000;
  a.kmeans.iterations = 5;
  a.kmeans.partitions = parallelism;
  a.kmeans.write_output = false;
  a.spmv.matrix_bytes = 2ULL << 30;
  a.spmv.iterations = 5;
  a.spmv.partitions = parallelism;
  a.spmv.write_output = false;
  a.pointadd.points = 200'000'000;
  a.pointadd.iterations = 3;
  a.pointadd.partitions = parallelism;
  return a;
}

/// Exclusive: each app in its own fresh engine; returns the three times.
std::array<double, 3> run_exclusive(const wl::Testbed& tb, const Apps& apps) {
  std::array<double, 3> out{};
  out[0] = full_seconds(run_workload(&wl::kmeans::run, tb, wl::Mode::Gpu, apps.kmeans).run.total,
                        tb);
  out[1] =
      full_seconds(run_workload(&wl::spmv::run, tb, wl::Mode::Gpu, apps.spmv).run.total, tb);
  out[2] = full_seconds(
      run_workload(&wl::pointadd::run, tb, wl::Mode::Gpu, apps.pointadd).run.total, tb);
  return out;
}

/// Concurrent: all three drivers in one engine, sharing slots, network,
/// DFS and GPUs. Returns the three app times plus the makespan.
std::array<double, 4> run_concurrent(const wl::Testbed& tb, const Apps& apps) {
  df::Engine engine(wl::make_engine_config(tb));
  wl::ensure_kernels_registered();
  core::GFlinkRuntime runtime(engine, wl::make_gpu_config(tb));
  std::array<double, 4> out{};
  engine.run([&](df::Engine& eng) -> Co<void> {
    gflink::sim::WaitGroup wg(eng.sim());
    wg.add(3);
    eng.sim().spawn([](df::Engine& e, core::GFlinkRuntime& rt, const wl::Testbed& t,
                       const Apps& a, double& slot, gflink::sim::WaitGroup& w,
                       double scale) -> Co<void> {
      auto r = co_await wl::kmeans::run(e, &rt, t, wl::Mode::Gpu, a.kmeans);
      slot = gflink::sim::to_seconds(r.run.total) / scale;
      w.done();
    }(eng, runtime, tb, apps, out[0], wg, tb.scale));
    eng.sim().spawn([](df::Engine& e, core::GFlinkRuntime& rt, const wl::Testbed& t,
                       const Apps& a, double& slot, gflink::sim::WaitGroup& w,
                       double scale) -> Co<void> {
      auto r = co_await wl::spmv::run(e, &rt, t, wl::Mode::Gpu, a.spmv);
      slot = gflink::sim::to_seconds(r.run.total) / scale;
      w.done();
    }(eng, runtime, tb, apps, out[1], wg, tb.scale));
    eng.sim().spawn([](df::Engine& e, core::GFlinkRuntime& rt, const wl::Testbed& t,
                       const Apps& a, double& slot, gflink::sim::WaitGroup& w,
                       double scale) -> Co<void> {
      auto r = co_await wl::pointadd::run(e, &rt, t, wl::Mode::Gpu, a.pointadd);
      slot = gflink::sim::to_seconds(r.run.total) / scale;
      w.done();
    }(eng, runtime, tb, apps, out[2], wg, tb.scale));
    co_await wg.wait();
    out[3] = full_seconds(eng.now(), tb);
  });
  return out;
}

void run_case(benchmark::State& state, const wl::Testbed& tb, int parallelism,
              const char* figure) {
  const Apps apps = make_apps(parallelism);
  for (auto _ : state) {
    auto exclusive = run_exclusive(tb, apps);
    auto concurrent = run_concurrent(tb, apps);
    const double exclusive_sum = exclusive[0] + exclusive[1] + exclusive[2];
    state.SetIterationTime(concurrent[3] * tb.scale);
    state.counters["excl_kmeans_s"] = exclusive[0];
    state.counters["excl_spmv_s"] = exclusive[1];
    state.counters["excl_pointadd_s"] = exclusive[2];
    state.counters["conc_kmeans_s"] = concurrent[0];
    state.counters["conc_spmv_s"] = concurrent[1];
    state.counters["conc_pointadd_s"] = concurrent[2];
    state.counters["exclusive_sum_s"] = exclusive_sum;
    state.counters["concurrent_makespan_s"] = concurrent[3];
    state.counters["makespan_vs_sum"] = concurrent[3] / exclusive_sum;
    std::printf(
        "%s exclusive: kmeans=%.1f spmv=%.1f pointadd=%.1f (sum %.1f) | "
        "concurrent: kmeans=%.1f spmv=%.1f pointadd=%.1f (makespan %.1f)\n",
        figure, exclusive[0], exclusive[1], exclusive[2], exclusive_sum, concurrent[0],
        concurrent[1], concurrent[2], concurrent[3]);
  }
  state.SetLabel(figure);
}

void Fig8c_ConcurrentSingleNode(benchmark::State& state) {
  wl::Testbed tb;
  tb.workers = 1;
  run_case(state, tb, 1, "Fig8c single-node");
}
BENCHMARK(Fig8c_ConcurrentSingleNode)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

void Fig8d_ConcurrentCluster(benchmark::State& state) {
  wl::Testbed tb;  // 10 workers
  run_case(state, tb, 10, "Fig8d cluster");
}
BENCHMARK(Fig8d_ConcurrentCluster)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(fig8_concurrent);
