// Figure 6 — average running time and speedup on the 10-slave cluster for
// SpMV (a), LinearRegression (b) and ConnectedComponents (c) over the
// Table-1 input sizes, original Flink (CPU) vs GFlink.
//
// Paper shapes: SpMV ~6.3x (matrix cached on GPUs), LinearRegression ~9.2x
// (compute-bound), ConnectedComponents ~4.8x.
#include "bench_common.hpp"
#include "workloads/concomp.hpp"
#include "workloads/linreg.hpp"
#include "workloads/spmv.hpp"

namespace {

using namespace gflink::bench;

void Fig6a_SpMV(benchmark::State& state) {
  wl::Testbed tb;
  wl::spmv::Config cfg;
  cfg.matrix_bytes = static_cast<std::uint64_t>(state.range(0)) << 30;
  for (auto _ : state) {
    auto cpu = run_workload(&wl::spmv::run, tb, wl::Mode::Cpu, cfg);
    auto gpu = run_workload(&wl::spmv::run, tb, wl::Mode::Gpu, cfg);
    report_pair(state, full_seconds(cpu.run.total, tb), full_seconds(gpu.run.total, tb), tb);
  }
  state.SetLabel("Fig6a matrix(GB)=" + std::to_string(state.range(0)));
}
BENCHMARK(Fig6a_SpMV)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

void Fig6b_LinearRegression(benchmark::State& state) {
  wl::Testbed tb;
  wl::linreg::Config cfg;
  cfg.samples = static_cast<std::uint64_t>(state.range(0)) * 1'000'000ULL;
  for (auto _ : state) {
    auto cpu = run_workload(&wl::linreg::run, tb, wl::Mode::Cpu, cfg);
    auto gpu = run_workload(&wl::linreg::run, tb, wl::Mode::Gpu, cfg);
    report_pair(state, full_seconds(cpu.run.total, tb), full_seconds(gpu.run.total, tb), tb);
  }
  state.SetLabel("Fig6b samples(M)=" + std::to_string(state.range(0)));
}
BENCHMARK(Fig6b_LinearRegression)
    ->Arg(150)->Arg(180)->Arg(210)->Arg(240)->Arg(270)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

void Fig6c_ConnectedComponents(benchmark::State& state) {
  wl::Testbed tb;
  wl::concomp::Config cfg;
  cfg.vertices = static_cast<std::uint64_t>(state.range(0)) * 1'000'000ULL;
  for (auto _ : state) {
    auto cpu = run_workload(&wl::concomp::run, tb, wl::Mode::Cpu, cfg);
    auto gpu = run_workload(&wl::concomp::run, tb, wl::Mode::Gpu, cfg);
    report_pair(state, full_seconds(cpu.run.total, tb), full_seconds(gpu.run.total, tb), tb);
  }
  state.SetLabel("Fig6c pages(M)=" + std::to_string(state.range(0)));
}
BENCHMARK(Fig6c_ConnectedComponents)
    ->Arg(5)->Arg(10)->Arg(15)->Arg(20)->Arg(25)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(fig6_overview);
