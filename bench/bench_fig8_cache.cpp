// Figure 8(a) — effect of the GPU cache scheme on SpMV.
//
// The same iterative SpMV run twice on GFlink: with the per-job GPU cache
// region enabled (matrix + vector cached after the first touch) and with
// it disabled (every block re-transferred over PCIe each iteration).
// Paper shape: without the cache, per-iteration time rises markedly.
#include "bench_common.hpp"
#include "workloads/spmv.hpp"

namespace {

using namespace gflink::bench;

void Fig8a_CacheScheme(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  wl::Testbed tb;
  tb.workers = 1;
  wl::spmv::Config cfg;
  cfg.matrix_bytes = 1ULL << 30;
  cfg.iterations = 8;
  cfg.gpu_cache = cached;
  for (auto _ : state) {
    auto r = run_workload(&wl::spmv::run, tb, wl::Mode::Gpu, cfg);
    const double middle = full_seconds(r.run.iterations[cfg.iterations / 2], tb);
    state.SetIterationTime(middle * tb.scale);
    state.counters["middle_iter_s"] = middle;
    state.counters["total_s"] = full_seconds(r.run.total, tb);
    std::printf("%-24s per-iteration seconds:", cached ? "Fig8a cache ON" : "Fig8a cache OFF");
    for (auto d : r.run.iterations) std::printf(" %7.2f", full_seconds(d, tb));
    std::printf("\n");
  }
  state.SetLabel(cached ? "cache=on" : "cache=off");
}
BENCHMARK(Fig8a_CacheScheme)
    ->Arg(1)->Arg(0)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(fig8_cache);
