// Ablation — data layout (paper §2.1 / §3.2): AoS vs SoA vs AoP.
//
// Two measurements:
//  1. Kernel-level: the roofline duration of the memory-bound SpMV and
//     compute-bound KMeans kernels under each declared layout on a C2050.
//     Expected: the memory-bound kernel suffers most under AoS (poor
//     coalescing); the compute-bound kernel barely notices.
//  2. Batch-level: the real CPU cost of transforming a RecordBatch between
//     layouts (what a system pays to present SoA to the device when the
//     host holds AoS pages).
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <chrono>

#include "gpu/device_spec.hpp"
#include "gpu/kernel.hpp"
#include "mem/record_batch.hpp"
#include "workloads/common.hpp"
#include "workloads/records.hpp"

namespace {

namespace sim = gflink::sim;
namespace gpu = gflink::gpu;
namespace mem = gflink::mem;
namespace wl = gflink::workloads;

void Ablation_KernelLayout(benchmark::State& state) {
  wl::ensure_kernels_registered();
  const auto layout = static_cast<mem::Layout>(state.range(1));
  const bool memory_bound = state.range(0) == 0;
  const auto& kernel = gpu::KernelRegistry::global().lookup(
      memory_bound ? "cudaSpmvRow" : "cudaKmeansAssign");
  const auto spec = gpu::DeviceSpec::c2050();
  constexpr std::size_t kItems = 1'000'000;
  for (auto _ : state) {
    const sim::Duration d = gpu::kernel_duration(kernel, spec, kItems, layout);
    state.SetIterationTime(sim::to_seconds(d));
    state.counters["kernel_ms"] = sim::to_millis(d);
  }
  state.SetLabel(std::string(memory_bound ? "SpMV(memory-bound) " : "KMeans(compute-bound) ") +
                 mem::layout_name(layout));
}
BENCHMARK(Ablation_KernelLayout)
    ->ArgsProduct({{0, 1}, {0, 1, 2}})
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

void Ablation_LayoutTransformCost(benchmark::State& state) {
  // Real (wall-clock) cost of the AoS -> target transform for 64k points.
  const auto target = static_cast<mem::Layout>(state.range(0));
  mem::RecordBatch batch(&wl::point_desc(), 65536, mem::Layout::AoS);
  for (std::size_t r = 0; r < batch.count(); ++r) {
    for (int j = 0; j < wl::kDim; ++j) {
      batch.set<float>(0, r, static_cast<float>(r + static_cast<std::size_t>(j)),
                       static_cast<std::size_t>(j));
    }
  }
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    auto transformed = batch.to_layout(target);
    benchmark::DoNotOptimize(transformed);
    auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    state.SetIterationTime(dt);
  }
  state.SetLabel(std::string("AoS->") + mem::layout_name(target));
}
BENCHMARK(Ablation_LayoutTransformCost)
    ->Arg(1)->Arg(2)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

}  // namespace

GFLINK_BENCH_MAIN(ablation_layout);
