// Ablation — the JVM-GPU communication strategies of paper §4:
//
//  * off-heap + pinned  — GFlink's design: direct buffers page-locked via
//    cudaHostRegister, DMA'd at full PCIe bandwidth;
//  * off-heap pageable  — no page-locking: the DMA engine staggers through
//    driver bounce buffers (reduced bandwidth, no async overlap);
//  * JVM-heap staging   — the naive scheme ([12], [13]): objects are
//    accumulated into heap buffers, then copied to native memory before
//    each DMA (an extra host memcpy each way);
//  * RPC-style          — HeteroSpark's socket path: the payload traverses
//    the local TCP/IP stack with serialization on both sides.
//
// Expected ordering (effective H2D bandwidth, 4 MiB blocks):
//   off-heap+pinned > off-heap pageable > heap staging >> RPC.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "gpu/api.hpp"
#include "sim/simulation.hpp"

namespace {

namespace sim = gflink::sim;
namespace gpu = gflink::gpu;
namespace mem = gflink::mem;

constexpr std::uint64_t kBlockBytes = 4ULL << 20;

enum class Strategy : int { OffHeapPinned, OffHeapPageable, HeapStaging, Rpc };

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::OffHeapPinned: return "off-heap+pinned (GFlink)";
    case Strategy::OffHeapPageable: return "off-heap pageable";
    case Strategy::HeapStaging: return "JVM-heap staging";
    case Strategy::Rpc: return "RPC/socket (HeteroSpark-style)";
  }
  return "?";
}

// Costs of the RPC path, per transfer: serialization at ~0.8 GB/s on each
// side plus the loopback TCP round trip.
constexpr double kRpcSerializationBw = 0.8e9;
constexpr sim::Duration kRpcLatency = sim::micros(60);

double measure(Strategy strategy) {
  sim::Simulation s;
  gpu::GpuDevice device(s, "gpu0", gpu::DeviceSpec::c2050());
  gpu::CudaStub stub(device);
  gpu::CudaWrapper wrapper(stub);
  mem::AddressSpace addresses;

  const bool off_heap =
      strategy == Strategy::OffHeapPinned || strategy == Strategy::OffHeapPageable;
  mem::HBuffer host(kBlockBytes, addresses.allocate(kBlockBytes), off_heap);
  host.set_pinned(strategy == Strategy::OffHeapPinned);

  sim::Duration elapsed = 0;
  s.spawn([](sim::Simulation& sm, gpu::CudaWrapper& w, mem::HBuffer& h, Strategy st,
             sim::Duration& out) -> sim::Co<void> {
    gpu::DevicePtr p = w.device().memory().allocate(kBlockBytes);
    const sim::Time t0 = sm.now();
    if (st == Strategy::Rpc) {
      // Serialize, cross the loopback socket, deserialize — then DMA.
      co_await sm.delay(2 * kRpcLatency +
                        2 * sim::transfer_time(kBlockBytes, kRpcSerializationBw));
    }
    co_await w.memcpy_h2d(p, h, 0, kBlockBytes);
    out = sm.now() - t0;
    w.device().memory().free(p);
  }(s, wrapper, host, strategy, elapsed));
  s.run();
  return static_cast<double>(kBlockBytes) / sim::to_seconds(elapsed);
}

void Ablation_Communication(benchmark::State& state) {
  const auto strategy = static_cast<Strategy>(state.range(0));
  for (auto _ : state) {
    const double bw = measure(strategy);
    state.SetIterationTime(static_cast<double>(kBlockBytes) / bw);
    state.counters["MBps"] = bw / 1e6;
  }
  state.SetLabel(strategy_name(strategy));
}
BENCHMARK(Ablation_Communication)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->UseManualTime()->Unit(benchmark::kMicrosecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(ablation_comm);
