// Extension bench — fault-tolerance overheads (the paper names Flink's
// reliability as the main reason GFlink builds on it, §1.1).
//
// Runs the KMeans job on the 10-slave GFlink cluster and kills one worker
// at different points of the run. Reports the makespan inflation and the
// retry counts. Expected shape: a failure costs roughly (detection delay +
// re-execution of the in-flight wave); later failures cost less absolute
// work but the detection delay floor remains.
#include "bench_common.hpp"
#include "workloads/kmeans.hpp"

namespace {

using namespace gflink::bench;
using gflink::sim::Co;

double run_with_failure(const wl::Testbed& tb, gflink::sim::Time kill_at,
                        std::uint64_t* retried) {
  df::Engine engine(wl::make_engine_config(tb));
  wl::ensure_kernels_registered();
  core::GFlinkRuntime runtime(engine, wl::make_gpu_config(tb));
  if (kill_at > 0) {
    engine.schedule_worker_failure(3, kill_at);
  }
  wl::kmeans::Config cfg;
  cfg.points = 210'000'000;
  cfg.iterations = 10;
  wl::kmeans::Result result;
  engine.run([&](df::Engine& eng) -> Co<void> {
    result = co_await wl::kmeans::run(eng, &runtime, tb, wl::Mode::Gpu, cfg);
  });
  if (retried != nullptr) *retried = engine.tasks_retried();
  return full_seconds(result.run.total, tb);
}

void Fault_RecoveryOverhead(benchmark::State& state) {
  wl::Testbed tb;
  const auto kill_ms = state.range(0);  // virtual ms; 0 = no failure
  static double baseline = 0;
  for (auto _ : state) {
    std::uint64_t retried = 0;
    const double seconds =
        run_with_failure(tb, gflink::sim::millis(static_cast<double>(kill_ms)), &retried);
    if (kill_ms == 0) baseline = seconds;
    state.SetIterationTime(seconds * tb.scale);
    state.counters["total_s"] = seconds;
    state.counters["tasks_retried"] = static_cast<double>(retried);
    if (baseline > 0) state.counters["overhead_pct"] = 100.0 * (seconds / baseline - 1.0);
  }
  state.SetLabel(kill_ms == 0 ? "no failure"
                              : "worker killed at t=" + std::to_string(kill_ms) + "ms(sim)");
}
BENCHMARK(Fault_RecoveryOverhead)
    ->Arg(0)->Arg(3)->Arg(10)->Arg(20)->Arg(30)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(fault_recovery);
