// Extension bench — event-level streaming with GPU micro-batching (the
// paper's stated future direction, §1.1).
//
// Sweeps the micro-batch size of a GPU operator under a fixed offered
// load and reports sustained throughput, p50/p99 event latency, and the
// number of GWork submissions. Shapes to expect:
//  * tiny batches cannot amortize per-GWork overheads (cudaMalloc, JNI,
//    kernel launch): the pipeline saturates below the offered rate and
//    latency explodes (back-pressure);
//  * large batches sustain the load but pay batch-fill latency;
//  * the sweet spot sits between — the classic streaming micro-batch
//    trade-off.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/streaming.hpp"

namespace {

using namespace gflink::bench;
namespace mem = gflink::mem;
using gflink::sim::Co;

struct Ev {
  std::uint64_t key;
  std::int64_t value;
};

const mem::StructDesc& ev_desc() {
  static const mem::StructDesc d = mem::StructDescBuilder("Ev", 8)
                                       .field("key", mem::FieldType::U64, 1, offsetof(Ev, key))
                                       .field("value", mem::FieldType::I64, 1, offsetof(Ev, value))
                                       .build();
  return d;
}

void register_kernel() {
  static const bool once = [] {
    gpu::Kernel k;
    k.name = "benchStreamScore";
    k.cost.flops_per_item = 400.0;  // a small per-event model evaluation
    k.cost.dram_bytes_per_item = 2.0 * sizeof(Ev);
    k.fn = [](gpu::KernelLaunch& launch) {
      const auto* in = reinterpret_cast<const Ev*>(launch.buffers[0].data());
      auto* out = reinterpret_cast<Ev*>(launch.buffers.back().data());
      for (std::size_t i = 0; i < launch.items; ++i) {
        out[i] = Ev{in[i].key, in[i].value * 3 + 1};
      }
    };
    gpu::KernelRegistry::global().register_kernel(k);
    return true;
  }();
  (void)once;
}

void Streaming_GpuMicroBatch(benchmark::State& state) {
  register_kernel();
  const auto batch = static_cast<std::size_t>(state.range(0));
  df::EngineConfig ecfg;
  ecfg.cluster.num_workers = 2;
  ecfg.job_submit_overhead = 0;
  ecfg.job_schedule_overhead = 0;
  df::Engine engine(ecfg);
  core::GFlinkRuntime runtime(engine, core::GpuManagerConfig{});

  core::StreamOp op;
  op.kind = core::StreamOp::Kind::GpuBatch;
  op.name = "score";
  op.out_desc = &ev_desc();
  op.kernel = "benchStreamScore";
  op.batch_size = batch;

  core::StreamingConfig cfg;
  cfg.total_events = 100'000;
  cfg.events_per_second = 1.2e6;  // offered load
  cfg.parallelism = 2;

  core::StreamingResult result;
  std::vector<core::StreamOp> ops{op};
  for (auto _ : state) {
    engine.run([&](df::Engine& eng) -> Co<void> {
      df::Job job(eng, "stream");
      co_await job.submit();
      result = co_await core::run_streaming(eng, job, &ev_desc(),
                                            [](std::uint64_t i, std::byte* rec) {
                                              Ev ev{i % 64, static_cast<std::int64_t>(i)};
                                              std::memcpy(rec, &ev, sizeof(ev));
                                            },
                                            ops, cfg);
      job.finish();
    });
    state.SetIterationTime(gflink::sim::to_seconds(result.makespan));
    state.counters["throughput_keps"] = result.throughput_eps / 1e3;
    state.counters["p50_latency_us"] = result.latency_p50 / 1e3;
    state.counters["p99_latency_us"] = result.latency_p99 / 1e3;
    state.counters["gwork_batches"] = static_cast<double>(result.gpu_batches);
  }
  state.SetLabel("batch=" + std::to_string(batch));
}
BENCHMARK(Streaming_GpuMicroBatch)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(streaming);
