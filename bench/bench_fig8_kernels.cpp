// Figure 8(b) — operator-level speedup of GMappers and the GReducer for
// different GPU models (C2050, GTX 750, K20, P100), single node.
//
// The measurement isolates the mapper/reducer stage (input already
// materialized in cluster memory; no DFS, no job submission) and compares
// the stage's wall time on original Flink vs GFlink — the paper's "we omit
// other phases" methodology.
//
// Paper shapes: P100 > K20 > GTX750 ~= C2050; mapper speedups far above
// the end-to-end application speedups; KMeans's mapper above SpMV's;
// PointAdd's below both; the GReducer gains little (not compute-bound).
#include "bench_common.hpp"
#include "workloads/kmeans.hpp"
#include "workloads/pointadd.hpp"
#include "workloads/records.hpp"
#include "workloads/spmv.hpp"

namespace {

using namespace gflink::bench;
using gflink::sim::Co;

gpu::DeviceSpec preset(int index) {
  switch (index) {
    case 0: return gpu::DeviceSpec::c2050();
    case 1: return gpu::DeviceSpec::gtx750();
    case 2: return gpu::DeviceSpec::k20();
    default: return gpu::DeviceSpec::p100();
  }
}

/// Find the wall time of the stage whose name contains `needle`.
double stage_seconds(const df::JobStats& stats, const std::string& needle,
                     const wl::Testbed& tb) {
  for (const auto& st : stats.stages) {
    if (st.name.find(needle) != std::string::npos) {
      return full_seconds(st.end - st.begin, tb);
    }
  }
  return 0.0;
}

enum class Op { KmeansMapper, SpmvMapper, PointAddMapper, SumReducer };

const char* op_name(Op op) {
  switch (op) {
    case Op::KmeansMapper: return "GMapper/KMeans";
    case Op::SpmvMapper: return "GMapper/SpMV";
    case Op::PointAddMapper: return "GMapper/PointAdd";
    case Op::SumReducer: return "GReducer/Sum";
  }
  return "?";
}

/// Run just the operator under test on a materialized input; return the
/// stage time.
double measure(Op op, wl::Mode mode, const wl::Testbed& tb) {
  df::Engine engine(wl::make_engine_config(tb));
  std::unique_ptr<core::GFlinkRuntime> runtime;
  wl::ensure_kernels_registered();
  if (mode == wl::Mode::Gpu) {
    runtime = std::make_unique<core::GFlinkRuntime>(engine, wl::make_gpu_config(tb));
  }
  double seconds = 0.0;
  engine.run([&](df::Engine& eng) -> Co<void> {
    df::Job job(eng, "fig8b");
    co_await job.submit();
    const std::uint64_t n = static_cast<std::uint64_t>(80e6 * tb.scale);  // 80 M records
    const int parts = mode == wl::Mode::Cpu ? eng.default_parallelism() : tb.gpus_per_worker;
    switch (op) {
      case Op::KmeansMapper: {
        auto src = df::DataSet<wl::Point>::from_generator(
            eng, &wl::point_desc(), parts, [n, parts](int p, std::vector<wl::Point>& out) {
              for (std::uint64_t i = static_cast<std::uint64_t>(p); i < n;
                   i += static_cast<std::uint64_t>(parts)) {
                out.push_back(wl::kmeans::point_at(i, 1));
              }
            });
        auto handle = co_await src.materialize(job);
        auto centers = std::make_shared<std::vector<wl::Point>>(wl::kClusters);
        for (int c = 0; c < wl::kClusters; ++c) {
          (*centers)[static_cast<std::size_t>(c)] = wl::kmeans::point_at(
              static_cast<std::uint64_t>(c), 1);
        }
        auto mapped = wl::kmeans::mapper(df::DataSet<wl::Point>::from_handle(eng, handle), mode,
                                         centers, 0);
        (void)co_await mapped.count(job);
        seconds = stage_seconds(job.stats(), "KmeansAssign", tb) +
                  stage_seconds(job.stats(), "kmeansAssign", tb);
        break;
      }
      case Op::SpmvMapper: {
        const std::uint64_t rows = n / 8;  // CsrRow records are heavy
        auto src = df::DataSet<wl::CsrRow>::from_generator(
            eng, &wl::csr_row_desc(), parts, [rows, parts](int p, std::vector<wl::CsrRow>& out) {
              for (std::uint64_t i = static_cast<std::uint64_t>(p); i < rows;
                   i += static_cast<std::uint64_t>(parts)) {
                out.push_back(wl::spmv::row_at(i, 65536, 1));
              }
            });
        auto handle = co_await src.materialize(job);
        auto x = std::make_shared<std::vector<float>>(65536, 1.0f);
        auto mapped = wl::spmv::mapper(df::DataSet<wl::CsrRow>::from_handle(eng, handle), mode,
                                       x, 0);
        (void)co_await mapped.count(job);
        seconds = stage_seconds(job.stats(), "SpmvRow", tb) +
                  stage_seconds(job.stats(), "spmvRow", tb);
        break;
      }
      case Op::PointAddMapper: {
        auto src = df::DataSet<wl::Pt>::from_generator(
            eng, &wl::pt_desc(), parts, [n, parts](int p, std::vector<wl::Pt>& out) {
              for (std::uint64_t i = static_cast<std::uint64_t>(p); i < n;
                   i += static_cast<std::uint64_t>(parts)) {
                out.push_back(wl::pointadd::pt_at(i, 1));
              }
            });
        auto handle = co_await src.materialize(job);
        auto mapped = wl::pointadd::mapper(df::DataSet<wl::Pt>::from_handle(eng, handle), mode, 0);
        (void)co_await mapped.count(job);
        seconds = stage_seconds(job.stats(), "addPoint", tb) +
                  stage_seconds(job.stats(), "AddPoint", tb);
        break;
      }
      case Op::SumReducer: {
        auto src = df::DataSet<wl::VecEntry>::from_generator(
            eng, &wl::vec_entry_desc(), parts, [n, parts](int p, std::vector<wl::VecEntry>& out) {
              for (std::uint64_t i = static_cast<std::uint64_t>(p); i < n;
                   i += static_cast<std::uint64_t>(parts)) {
                out.push_back(wl::VecEntry{i, 1.0f});
              }
            });
        auto handle = co_await src.materialize(job);
        auto ds = df::DataSet<wl::VecEntry>::from_handle(eng, handle);
        if (mode == wl::Mode::Cpu) {
          auto reduced = ds.reduce("sumReduce", df::OpCost{8.0, 2.0 * sizeof(wl::VecEntry)},
                                   [](wl::VecEntry& acc, const wl::VecEntry& e) {
                                     acc.value += e.value;
                                   });
          (void)co_await reduced.count(job);
          seconds = stage_seconds(job.stats(), "sumReduce", tb);
        } else {
          core::GpuOpSpec spec;
          spec.kernel = "cudaSumVec";
          spec.out_items = [](std::size_t) { return std::size_t{1}; };
          auto partial = core::gpu_dataset_op<wl::VecEntry, wl::VecEntry>(
              ds, &wl::vec_entry_desc(), "gpuSumVec", spec);
          auto reduced = partial.reduce("sumReduce", df::OpCost{8.0, 2.0 * sizeof(wl::VecEntry)},
                                        [](wl::VecEntry& acc, const wl::VecEntry& e) {
                                          acc.value += e.value;
                                        });
          (void)co_await reduced.count(job);
          seconds = stage_seconds(job.stats(), "gpuSumVec", tb) +
                    stage_seconds(job.stats(), "sumReduce", tb);
        }
        break;
      }
    }
    job.finish();
    if (runtime) runtime->release_job(job.id());
  });
  return seconds;
}

void Fig8b_OperatorSpeedup(benchmark::State& state) {
  const Op op = static_cast<Op>(state.range(0));
  wl::Testbed tb;
  tb.workers = 1;
  tb.gpus_per_worker = 1;
  tb.gpu_spec = preset(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const double cpu_s = measure(op, wl::Mode::Cpu, tb);
    const double gpu_s = measure(op, wl::Mode::Gpu, tb);
    report_pair(state, cpu_s, gpu_s, tb);
  }
  state.SetLabel(std::string(op_name(op)) + " on " + tb.gpu_spec.name);
}
BENCHMARK(Fig8b_OperatorSpeedup)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2, 3}})
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(fig8_kernels);
