// Critical-path breakdown — where the makespan of the GFlink PageRank run
// actually goes, by span category (control, H2D, kernel, D2H, shuffle,
// spill, wait).
//
// Unlike the figure benches this one runs with tracing on: the engine's
// SpanStore retains the causal span DAG, and capture_spans() extracts the
// last-finisher critical path whose per-category breakdown sums to the
// makespan exactly (the deterministic invariant tools/trace_critical_path.py
// re-checks in CI). The trace_critical_path_seconds gauges recorded here
// feed both the EXPERIMENTS.md breakdown table and the perf guard.
#include "bench_common.hpp"
#include "workloads/pagerank.hpp"

namespace {

using namespace gflink::bench;

void CriticalPath_PageRank(benchmark::State& state) {
  for (auto _ : state) {
    wl::Testbed tb;
    tb.trace = true;  // retain the span DAG for the critical-path walk
    df::Engine engine(wl::make_engine_config(tb));
    wl::ensure_kernels_registered();
    core::GFlinkRuntime runtime(engine, wl::make_gpu_config(tb));
    wl::pagerank::Config pcfg;  // defaults: 10 M pages, 5 iterations
    wl::pagerank::Result result;
    engine.run([&](df::Engine& eng) -> gflink::sim::Co<void> {
      result = co_await wl::pagerank::run(eng, &runtime, tb, wl::Mode::Gpu, pcfg);
    });

    gflink::obs::RunReport& rep = bench_report();
    rep.virtual_ns += engine.now();
    engine.export_metrics(rep.metrics);
    runtime.export_metrics(rep.metrics);
    rep.metrics.inc("bench_cases_total");
    rep.capture_spans(engine.cluster().spans());
    // The table generator extrapolates breakdown_ns to full-scale seconds.
    rep.set_config("scale", tb.scale);

    const double secs = full_seconds(result.run.total, tb);
    state.SetIterationTime(secs * tb.scale);  // simulated seconds
    state.counters["full_s"] = secs;
  }
}
BENCHMARK(CriticalPath_PageRank)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(critical_path);
