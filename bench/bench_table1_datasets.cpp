// Table 1 — the benchmark datasets. The paper's Table 1 lists the five
// input sizes per workload; this binary regenerates the inventory and
// verifies each generator's record counts and byte volumes at simulation
// scale (the numbers every other bench consumes).
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <cstdio>

#include "workloads/common.hpp"
#include "workloads/kmeans.hpp"
#include "workloads/records.hpp"
#include "workloads/spmv.hpp"

namespace {

using namespace gflink::workloads;

struct Row {
  const char* workload;
  const char* sizes;
  const char* unit;
  std::size_t record_bytes;
};

constexpr Row kTable1[] = {
    {"KMeans", "150, 180, 210, 240, 270", "million points", sizeof(Point)},
    {"PageRank", "5, 10, 15, 20, 25", "million pages", sizeof(Page)},
    {"WordCount", "24, 32, 40, 48, 56", "GB", sizeof(WordCount)},
    {"ComponentConnect", "5, 10, 15, 20, 25", "million pages", sizeof(Vertex)},
    {"LinearRegression", "150, 180, 210, 240, 270", "million points", sizeof(Sample)},
    {"SpMV", "2, 4, 8, 16, 32", "GB", sizeof(CsrRow)},
};

void Table1_Datasets(benchmark::State& state) {
  const Row& row = kTable1[state.range(0)];
  for (auto _ : state) {
    state.SetIterationTime(1e-9);  // inventory only; no simulated work
    state.counters["record_bytes"] = static_cast<double>(row.record_bytes);
  }
  std::printf("Table1 %-18s sizes: %-24s (%s), record = %zu B\n", row.workload, row.sizes,
              row.unit, row.record_bytes);
  state.SetLabel(row.workload);
}
BENCHMARK(Table1_Datasets)
    ->DenseRange(0, 5)
    ->UseManualTime()->Unit(benchmark::kNanosecond)->Iterations(1);

// Generator spot-checks: the scaled record counts that feed the other
// benches must match the Table-1 sizes under the scaling model.
void Table1_GeneratorCounts(benchmark::State& state) {
  Testbed tb;
  for (auto _ : state) {
    state.SetIterationTime(1e-9);
  }
  const auto kmeans_points =
      static_cast<std::uint64_t>(210e6 * tb.scale);
  const auto spmv_rows = spmv::rows_for(8ULL << 30, tb.scale);
  std::printf(
      "Table1 at scale %.0e: kmeans 210M -> %llu points, spmv 8GB -> %llu CSR rows "
      "(x%zu B = %.1f MB simulated)\n",
      tb.scale, static_cast<unsigned long long>(kmeans_points),
      static_cast<unsigned long long>(spmv_rows), sizeof(CsrRow),
      static_cast<double>(spmv_rows * sizeof(CsrRow)) / 1e6);
  state.SetLabel("scaled-counts");
}
BENCHMARK(Table1_GeneratorCounts)->UseManualTime()->Unit(benchmark::kNanosecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(table1_datasets);
