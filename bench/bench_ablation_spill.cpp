// Ablation — the spill path of the exchange, sync vs. async offload and
// codec none vs. LZ, under a spill-heavy PageRank configuration.
//
// The receiver budget is squeezed until most exchange buckets overflow
// it, so every iteration's rank exchange spills. The four cells vary the
// two spill-path design choices independently:
//
//  * path=sync  — the pre-refactor behaviour: the depositing coroutine
//    holds through the full DFS spill round trip (spill I/O sits on the
//    exchange's critical path);
//  * path=async — the src/spill tiered store: deposits enqueue to the
//    node's bounded-queue spill workers and continue; blocks land on the
//    memory → disk → DFS ladder in the background and take() awaits any
//    block still in flight;
//  * codec=none / codec=lz — the block codec applied before a block hits
//    a storage tier (LZ-style over GStruct's fixed column layouts:
//    deterministic ratio, bandwidth-shaped cost).
//
// Tier budgets are also squeezed so the ladder's disk and DFS rungs both
// carry real I/O. Runs are traced: the critical-path walk quantifies the
// producer-visible spill stall (ablation_spill_stall_seconds), which is
// the thing the async offload is designed to remove. Expected orderings
// (tools/gen_spill_table.py re-checks in CI): async < sync within each
// codec, and async+lz is the fastest cell overall.
#include "bench_common.hpp"
#include "workloads/pagerank.hpp"

namespace {

using namespace gflink::bench;
namespace sp = gflink::spill;
namespace obs = gflink::obs;

constexpr const char* kPaths[] = {"sync", "async"};
constexpr sp::SpillCodec kCodecs[] = {sp::SpillCodec::None, sp::SpillCodec::Lz};

double measure(bool async_path, sp::SpillCodec codec) {
  wl::Testbed tb;  // 10 workers, CPU plan: the exchange is the bottleneck
  tb.trace = true;
  tb.spill_async = async_path;
  tb.spill_codec = codec;
  df::EngineConfig cfg = wl::make_engine_config(tb);
  // Spill-heavy: the receiver budget admits almost nothing, so nearly
  // every deposited bucket spills; the memory/disk tier budgets are small
  // enough that the ladder's disk and DFS rungs both see traffic.
  cfg.shuffle.receiver_budget_bytes = 4 * 1024;
  cfg.shuffle.spill.memory_tier_bytes = 4 * 1024;
  cfg.shuffle.spill.disk_tier_bytes = 12 * 1024;

  df::Engine engine(cfg);
  wl::pagerank::Config pcfg;  // defaults: 10 M pages, 5 iterations
  wl::pagerank::Result result;
  engine.run([&](df::Engine& eng) -> gflink::sim::Co<void> {
    result = co_await wl::pagerank::run(eng, nullptr, tb, wl::Mode::Cpu, pcfg);
  });

  // Producer-visible spill time: the Spill category of the last-finisher
  // critical path. Async offload moves tier writes off that path, so this
  // is the number the refactor shrinks.
  const obs::CriticalPath cp = obs::extract_critical_path(engine.cluster().spans());
  const double spill_stall_s =
      full_seconds(cp.by_category[static_cast<std::size_t>(obs::SpanCategory::Spill)], tb);

  gflink::obs::RunReport& rep = bench_report();
  rep.virtual_ns += engine.now();
  engine.export_metrics(rep.metrics);
  rep.metrics.inc("bench_cases_total");
  const double secs = full_seconds(result.run.total, tb);
  const gflink::obs::Labels labels{{"path", kPaths[async_path ? 1 : 0]},
                                   {"codec", sp::spill_codec_name(codec)}};
  rep.metrics.gauge("ablation_spill_seconds", labels).set(secs);
  rep.metrics.gauge("ablation_spill_stall_seconds", labels).set(spill_stall_s);
  rep.metrics.gauge("ablation_spill_checksum", labels).set(result.run.checksum);
  return secs;
}

void Ablation_Spill(benchmark::State& state) {
  const bool async_path = state.range(0) != 0;
  const auto codec = kCodecs[state.range(1)];
  for (auto _ : state) {
    const double secs = measure(async_path, codec);
    wl::Testbed tb;
    state.SetIterationTime(secs * tb.scale);  // simulated seconds
    state.counters["full_s"] = secs;
  }
  state.SetLabel(std::string(kPaths[async_path ? 1 : 0]) + "/" +
                 sp::spill_codec_name(codec));
}
BENCHMARK(Ablation_Spill)
    ->Args({0, 0})->Args({0, 1})->Args({1, 0})->Args({1, 1})
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(ablation_spill);
