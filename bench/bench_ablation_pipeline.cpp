// Ablation — the three-stage pipelining execution model (paper §5).
//
// A GStreamManager-level microbenchmark: a batch of identical GWorks whose
// kernel time roughly equals their H2D transfer time (the regime where
// overlap matters most) is pushed through 1..8 streams per GPU on one
// C2050. With a single stream the three stages serialize
// (H2D -> K -> D2H per block); with multiple streams block i+1's transfer
// overlaps block i's kernel, approaching max(total H2D, total K) instead
// of their sum.
//
// Expected: ~1.6-1.9x gain from 1 -> 4 streams, flat beyond that (the
// copy engine saturates).
//
// A second sweep ablates the *intra-GWork* chunked pipeline on a single
// stream (so cross-stream overlap cannot help): each GWork is split into
// chunks driven through the device staging ring, H2D(i+1) ‖ kernel(i) ‖
// D2H(i-1). tools/gen_pipeline_table.py renders the recorded gauges into
// the EXPERIMENTS.md chunk-size table.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "core/gmemory_manager.hpp"
#include "core/gstream_manager.hpp"
#include "gpu/api.hpp"
#include "sim/simulation.hpp"

namespace {

namespace sim = gflink::sim;
namespace gpu = gflink::gpu;
namespace mem = gflink::mem;
namespace core = gflink::core;

constexpr std::uint64_t kBlockBytes = 4ULL << 20;
constexpr int kBlocks = 64;

void ensure_balanced_kernel() {
  static const bool once = [] {
    gpu::Kernel k;
    k.name = "ablation_balanced";
    // Tuned so kernel time ~= H2D time on a C2050 (2.97 GB/s PCIe,
    // ~227 GFLOP/s sustained): flops/byte ~= 227/2.97 ~= 76.
    k.cost.flops_per_item = 76.0;
    k.cost.dram_bytes_per_item = 1.0;
    k.fn = [](gpu::KernelLaunch&) {};
    gpu::KernelRegistry::global().register_kernel(k);
    return true;
  }();
  (void)once;
}

double run_with_streams(int streams) {
  ensure_balanced_kernel();
  sim::Simulation s;
  gpu::GpuDevice device(s, "gpu0", gpu::DeviceSpec::c2050());
  gpu::CudaStub stub(device);
  gpu::CudaWrapper wrapper(stub);
  core::GMemoryManager memory({&device}, 1 << 20, core::CachePolicy::Fifo);
  core::GStreamConfig cfg;
  cfg.streams_per_gpu = streams;
  core::GStreamManager manager(s, {&wrapper}, memory, cfg);
  mem::AddressSpace addresses;

  sim::WaitGroup wg(s);
  std::vector<core::GWorkPtr> works;
  for (int b = 0; b < kBlocks; ++b) {
    auto in = std::make_shared<mem::HBuffer>(kBlockBytes, addresses.allocate(kBlockBytes));
    in->set_pinned(true);
    auto out = std::make_shared<mem::HBuffer>(64, addresses.allocate(64));
    out->set_pinned(true);
    auto work = std::make_shared<core::GWork>();
    work->execute_name = "ablation_balanced";
    work->size = kBlockBytes;  // one "item" per byte, matching the cost model
    core::GBuffer ib;
    ib.host = in;
    ib.bytes = kBlockBytes;
    work->inputs.push_back(ib);
    core::GBuffer ob;
    ob.host = out;
    ob.bytes = 64;
    work->outputs.push_back(ob);
    works.push_back(work);
    wg.add();
    s.spawn([](core::GStreamManager& gs, core::GWorkPtr w, sim::WaitGroup& join) -> sim::Co<void> {
      co_await gs.run(w);
      join.done();
    }(manager, work, wg));
  }
  sim::Time end = 0;
  s.spawn([](sim::WaitGroup& join, sim::Simulation& sm, sim::Time& out) -> sim::Co<void> {
    co_await join.wait();
    out = sm.now();
  }(wg, s, end));
  s.run();
  return sim::to_seconds(end);
}

struct ChunkRun {
  double seconds = 0;
  double overlap_efficiency = 0;
  std::size_t chunks_per_work = 1;
};

// Same balanced workload, one stream per GPU, symmetric input/output volume
// (both copy engines active) — the regime the staging ring targets.
ChunkRun run_with_chunks(std::uint64_t chunk_bytes) {
  ensure_balanced_kernel();
  sim::Simulation s;
  gpu::GpuDevice device(s, "gpu0", gpu::DeviceSpec::c2050());
  gpu::CudaStub stub(device);
  gpu::CudaWrapper wrapper(stub);
  core::GMemoryManager memory({&device}, 1 << 20, core::CachePolicy::Fifo);
  core::GStreamConfig cfg;
  cfg.streams_per_gpu = 1;  // isolate intra-GWork overlap from cross-stream overlap
  cfg.chunk_bytes = chunk_bytes;
  core::GStreamManager manager(s, {&wrapper}, memory, cfg);
  mem::AddressSpace addresses;

  sim::WaitGroup wg(s);
  std::vector<core::GWorkPtr> works;
  for (int b = 0; b < kBlocks; ++b) {
    auto in = std::make_shared<mem::HBuffer>(kBlockBytes, addresses.allocate(kBlockBytes));
    in->set_pinned(true);
    auto out = std::make_shared<mem::HBuffer>(kBlockBytes, addresses.allocate(kBlockBytes));
    out->set_pinned(true);
    auto work = std::make_shared<core::GWork>();
    work->execute_name = "ablation_balanced";
    work->size = kBlockBytes;  // one "item" per byte, matching the cost model
    work->chunkable = true;
    core::GBuffer ib;
    ib.host = in;
    ib.bytes = kBlockBytes;
    ib.item_stride = 1;
    work->inputs.push_back(ib);
    core::GBuffer ob;
    ob.host = out;
    ob.bytes = kBlockBytes;
    ob.item_stride = 1;
    work->outputs.push_back(ob);
    works.push_back(work);
    wg.add();
    s.spawn([](core::GStreamManager& gs, core::GWorkPtr w, sim::WaitGroup& join) -> sim::Co<void> {
      co_await gs.run(w);
      join.done();
    }(manager, work, wg));
  }
  sim::Time end = 0;
  s.spawn([](sim::WaitGroup& join, sim::Simulation& sm, sim::Time& out) -> sim::Co<void> {
    co_await join.wait();
    out = sm.now();
  }(wg, s, end));
  s.run();

  ChunkRun r;
  r.seconds = sim::to_seconds(end);
  r.overlap_efficiency = device.overlap_efficiency();
  r.chunks_per_work = works.front()->executed_chunks;
  return r;
}

std::string chunk_key(std::uint64_t chunk_bytes) {
  if (chunk_bytes == 0) return "monolithic";
  if (chunk_bytes >= 1 << 20) return std::to_string(chunk_bytes >> 20) + "MB";
  return std::to_string(chunk_bytes >> 10) + "KB";
}

void Ablation_ChunkedPipeline(benchmark::State& state) {
  const auto chunk_bytes = static_cast<std::uint64_t>(state.range(0));
  static double monolithic_baseline = 0;
  for (auto _ : state) {
    const ChunkRun r = run_with_chunks(chunk_bytes);
    if (chunk_bytes == 0) monolithic_baseline = r.seconds;
    state.SetIterationTime(r.seconds);
    state.counters["makespan_s"] = r.seconds;
    state.counters["overlap_eff"] = r.overlap_efficiency;
    if (monolithic_baseline > 0) {
      state.counters["gain_vs_monolithic"] = monolithic_baseline / r.seconds;
    }
    const std::string key = chunk_key(chunk_bytes);
    auto& rep = gflink::bench::bench_report();
    rep.metrics.gauge("ablation_pipeline_seconds", {{"chunk", key}}).set(r.seconds);
    rep.metrics.gauge("ablation_pipeline_overlap_efficiency", {{"chunk", key}})
        .set(r.overlap_efficiency);
    rep.metrics.gauge("ablation_pipeline_chunks_per_work", {{"chunk", key}})
        .set(static_cast<double>(r.chunks_per_work));
    if (monolithic_baseline > 0) {
      rep.metrics.gauge("ablation_pipeline_gain", {{"chunk", key}})
          .set(monolithic_baseline / r.seconds);
    }
  }
  state.SetLabel("chunk=" + chunk_key(chunk_bytes));
}
BENCHMARK(Ablation_ChunkedPipeline)
    ->Arg(0)                 // monolithic baseline
    ->Arg(256 << 10)
    ->Arg(1 << 20)
    ->Arg(4 << 20)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

void Ablation_Pipeline(benchmark::State& state) {
  const int streams = static_cast<int>(state.range(0));
  static double serial_baseline = 0;
  for (auto _ : state) {
    const double seconds = run_with_streams(streams);
    if (streams == 1) serial_baseline = seconds;
    state.SetIterationTime(seconds);
    state.counters["makespan_s"] = seconds;
    if (serial_baseline > 0) state.counters["gain_vs_serial"] = serial_baseline / seconds;
  }
  state.SetLabel("streams/gpu=" + std::to_string(streams));
}
BENCHMARK(Ablation_Pipeline)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(ablation_pipeline);
