// Live telemetry plane: deterministic health-detector scenario + overhead.
//
// Case 1 (HealthScenario) drives a 6-worker engine plus a two-tenant
// JobService with two injected faults and asserts the online detectors
// call both at the *exact* golden sim-time (the run is deterministic, so
// equality is the right check — any drift in sampling cadence, detector
// math or event ordering moves these timestamps):
//
//   * a straggler: every worker is saturated with tasks until 10 ms, then
//     the peers go idle while worker 4 keeps grinding until 40 ms. The
//     live straggler score (busy-ratio EWMA vs. peer p95) must flag
//     worker 4 a few periods after the peers decay.
//   * a tenant SLO breach: tenant "prod" submits a steady stream of small
//     jobs comfortably inside a 1 ms latency objective until a "batch"
//     burst at 15 ms occupies both in-flight slots with 4 ms jobs; the
//     queued prod jobs blow the objective and the burn-rate detector
//     must fire for "prod".
//
// The scenario also streams the gflink.telemetry/v1 JSONL timeline to
// telemetry_timeline.jsonl (uploaded as a CI artifact) and feeds
// tools/gen_health_table.py through the health_* gauges below.
//
// Case 2 (PagerankOverhead) runs the default Fig. 5b PageRank twice —
// with and without the plane sampling every worker each millisecond —
// and asserts the telemetry-induced slowdown (snapshot shipping rides
// the same simulated HCA pipes as the shuffle) stays under the 2%
// budget documented in docs/ARCHITECTURE.md.
#include <fstream>

#include "bench_common.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry/probes.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "service/job_service.hpp"
#include "sim/util.hpp"
#include "workloads/pagerank.hpp"

namespace {

using namespace gflink::bench;
namespace svc = gflink::service;
namespace tel = gflink::obs::telemetry;
using gflink::sim::Co;

struct ScenarioResult {
  std::vector<tel::HealthEvent> events;
  std::uint64_t periods = 0;
  std::uint64_t jobs_completed = 0;
  double virtual_seconds = 0.0;
};

ScenarioResult run_health_scenario() {
  // Testbed-scaled engine: at full scale a bare Job::submit() costs 1.3 s
  // (jar upload + plan scheduling), which would dwarf the millisecond-scale
  // fault injection below; the workload scale factor shrinks it the same
  // way the paper-figure benches do.
  wl::Testbed tb;
  tb.workers = 6;
  df::Engine engine(wl::make_engine_config(tb));

  svc::ServiceConfig scfg;
  scfg.max_total_in_flight = 2;  // the burst must be able to monopolize
  svc::JobService service(engine, nullptr, scfg);
  svc::TenantConfig prod;
  prod.name = "prod";
  svc::TenantConfig batch;
  batch.name = "batch";
  service.add_tenant(prod);
  service.add_tenant(batch);

  tel::TelemetryConfig tcfg;
  tcfg.period = sim::millis(1);
  // prod's declared latency objective: a scaled submit costs ~1.3 ms and
  // the body 200 us, so healthy latency sits near 1.7 ms — 5 ms passes
  // comfortably until the burst queues prod for tens of milliseconds.
  tcfg.slo_ms = 5.0;
  tel::TelemetryPlane plane(engine.sim(), engine.cluster(), tcfg);
  tel::install_engine_probes(plane, engine);
  tel::install_service_probes(plane, service);

  gflink::obs::FlightRecorder flight;
  plane.attach_flight(&flight);
  std::ofstream timeline("telemetry_timeline.jsonl");
  plane.set_timeline_sink(&timeline);

  engine.run([&](df::Engine& eng) -> Co<void> {
    plane.start();
    gflink::sim::WaitGroup wg(eng.sim());

    // Injected straggler: peers are busy until 10 ms, worker 4 until 40 ms.
    wg.add(eng.num_workers());
    for (int w = 1; w <= eng.num_workers(); ++w) {
      eng.sim().spawn([](df::Engine& e, int worker, gflink::sim::WaitGroup& join) -> Co<void> {
        const sim::Time busy_until = worker == 4 ? sim::millis(40) : sim::millis(10);
        while (e.now() < busy_until) co_await e.work_delay(worker, sim::micros(200));
        join.done();
      }(eng, w, wg));
    }

    // Steady prod load: a job every 2 ms at ~1.7 ms service time over two
    // in-flight slots — far from saturation, so pre-burst latency sits
    // well inside the 5 ms objective.
    wg.add(1);
    eng.sim().spawn([](df::Engine& e, svc::JobService& s, gflink::sim::WaitGroup& join) -> Co<void> {
      for (int i = 0; i < 20; ++i) {
        s.submit("prod", "probe-" + std::to_string(i), 1.0, [](df::Job& job) -> Co<void> {
          co_await job.engine().sim().delay(sim::micros(200));
        });
        co_await e.sim().delay(sim::millis(2));
      }
      join.done();
    }(eng, service, wg));

    // Injected SLO breach: at 15 ms, batch bursts four 8 ms jobs that
    // occupy both in-flight slots and queue the prod stream behind them.
    wg.add(1);
    eng.sim().spawn([](df::Engine& e, svc::JobService& s, gflink::sim::WaitGroup& join) -> Co<void> {
      co_await e.sim().delay(sim::millis(15));
      for (int i = 0; i < 4; ++i) {
        s.submit("batch", "burst-" + std::to_string(i), 4.0, [](df::Job& job) -> Co<void> {
          co_await job.engine().sim().delay(sim::millis(8));
        });
      }
      join.done();
    }(eng, service, wg));

    co_await wg.wait();
    co_await service.drain();
    co_await eng.sim().delay(sim::millis(2));
    plane.stop();
  });

  ScenarioResult out;
  out.events = plane.aggregator().events();
  out.periods = plane.aggregator().periods();
  out.jobs_completed = service.completed();
  out.virtual_seconds = sim::to_seconds(engine.now());

  gflink::obs::RunReport& rep = bench_report();
  rep.virtual_ns += engine.now();
  engine.export_metrics(rep.metrics);
  rep.metrics.inc("bench_cases_total");
  return out;
}

const tel::HealthEvent* first_event(const ScenarioResult& r, const std::string& detector) {
  for (const auto& ev : r.events) {
    if (ev.detector == detector) return &ev;
  }
  return nullptr;
}

void Telemetry_HealthScenario(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioResult r = run_health_scenario();
    state.SetIterationTime(r.virtual_seconds);

    for (const auto& ev : r.events) {
      std::printf("health event @%8.3f ms  %-14s node=%d %s%s value=%.2f (threshold %.2f)\n",
                  static_cast<double>(ev.at) / 1e6, ev.detector.c_str(), ev.node,
                  ev.series.c_str(), ev.tenant.empty() ? "" : (" tenant=" + ev.tenant).c_str(),
                  ev.value, ev.threshold);
    }

    const tel::HealthEvent* straggler = first_event(r, "straggler");
    const tel::HealthEvent* burn = first_event(r, "slo_burn");
    GFLINK_CHECK_MSG(straggler != nullptr, "straggler detector never fired");
    GFLINK_CHECK_MSG(burn != nullptr, "slo_burn detector never fired");
    // Golden sim-times: the run is bit-deterministic, so the detectors
    // must call the injected faults at exactly these instants.
    GFLINK_CHECK_MSG(straggler->node == 4, "straggler flagged the wrong node");
    GFLINK_CHECK_MSG(straggler->at == sim::millis(14), "straggler detection time drifted");
    GFLINK_CHECK_MSG(burn->tenant == "prod", "slo_burn flagged the wrong tenant");
    GFLINK_CHECK_MSG(burn->at == sim::millis(26), "slo_burn detection time drifted");

    auto& rep = bench_report();
    rep.metrics.gauge("health_straggler_detect_ms")
        .set(static_cast<double>(straggler->at) / 1e6);
    rep.metrics.gauge("health_straggler_node").set(static_cast<double>(straggler->node));
    rep.metrics.gauge("health_straggler_score").set(straggler->value);
    rep.metrics.gauge("health_slo_detect_ms").set(static_cast<double>(burn->at) / 1e6);
    rep.metrics.gauge("health_slo_burn_rate").set(burn->value);
    rep.metrics.gauge("health_events_emitted").set(static_cast<double>(r.events.size()));
    rep.metrics.gauge("telemetry_scenario_periods").set(static_cast<double>(r.periods));

    state.counters["events"] = static_cast<double>(r.events.size());
    state.counters["straggler_ms"] = static_cast<double>(straggler->at) / 1e6;
    state.counters["slo_ms"] = static_cast<double>(burn->at) / 1e6;
    state.counters["jobs"] = static_cast<double>(r.jobs_completed);
  }
  state.SetLabel("injected straggler + tenant SLO breach");
}
BENCHMARK(Telemetry_HealthScenario)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

// ---- Sampling overhead on the default PageRank -----------------------------

double run_pagerank(bool telemetry) {
  wl::Testbed tb;
  wl::pagerank::Config cfg;  // Fig. 5b default: 10 M pages, 5 iterations
  df::Engine engine(wl::make_engine_config(tb));
  wl::ensure_kernels_registered();
  core::GFlinkRuntime runtime(engine, wl::make_gpu_config(tb));

  tel::TelemetryConfig tcfg;
  tcfg.period = sim::millis(1);
  tel::TelemetryPlane plane(engine.sim(), engine.cluster(), tcfg);
  if (telemetry) {
    tel::install_engine_probes(plane, engine);
    tel::install_runtime_probes(plane, runtime);
  }

  sim::Time done_at = 0;
  engine.run([&](df::Engine& eng) -> Co<void> {
    if (telemetry) plane.start();
    (void)co_await wl::pagerank::run(eng, &runtime, tb, wl::Mode::Gpu, cfg);
    // The workload's own completion time is the overhead measure; the
    // sampler loops tick once more after stop() before draining, which
    // would otherwise round engine.now() up to the next period boundary.
    done_at = eng.now();
    if (telemetry) plane.stop();
  });

  gflink::obs::RunReport& rep = bench_report();
  rep.virtual_ns += engine.now();
  engine.export_metrics(rep.metrics);
  runtime.export_metrics(rep.metrics);
  rep.metrics.inc("bench_cases_total");
  return sim::to_seconds(done_at);
}

void Telemetry_PagerankOverhead(benchmark::State& state) {
  for (auto _ : state) {
    const double base_s = run_pagerank(false);
    const double sampled_s = run_pagerank(true);
    state.SetIterationTime(sampled_s);
    const double ratio = base_s > 0 ? (sampled_s - base_s) / base_s : 0.0;
    std::printf("pagerank: base %.6f s, sampled %.6f s, overhead %.4f%%\n", base_s, sampled_s,
                ratio * 100.0);
    std::fflush(stdout);
    // The documented overhead budget: snapshot shipping over the shared
    // HCA pipes must not slow the default PageRank by 2% or more.
    GFLINK_CHECK_MSG(ratio < 0.02, "telemetry sampling overhead exceeded the 2% budget");

    auto& rep = bench_report();
    rep.metrics.gauge("telemetry_pagerank_base_s").set(base_s);
    rep.metrics.gauge("telemetry_pagerank_sampled_s").set(sampled_s);
    rep.metrics.gauge("telemetry_overhead_ratio").set(ratio);
    state.counters["base_s"] = base_s;
    state.counters["sampled_s"] = sampled_s;
    state.counters["overhead_ratio"] = ratio;
  }
  state.SetLabel("sampling overhead vs. default PageRank");
}
BENCHMARK(Telemetry_PagerankOverhead)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(telemetry);
