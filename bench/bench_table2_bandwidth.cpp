// Table 2 — transfer-channel bandwidth, GFlink (CUDAWrapper over the JNI
// control channel) vs native (CUDAStub), host-to-device, pinned buffers.
//
// This microbenchmark runs UNscaled (scale = 1): it exercises the raw GPU
// communication layer on a C2050-class device, exactly like the paper's
// measurement. Expected shape: identical asymptotes near 2.97 GB/s, the
// native path slightly ahead for small transfers (the JNI redirect is a
// fixed per-call cost), and both saturating by 256 KiB.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <cstdio>

#include "gpu/api.hpp"
#include "sim/simulation.hpp"

namespace {

namespace sim = gflink::sim;
namespace gpu = gflink::gpu;
namespace mem = gflink::mem;

/// The paper's measured values (MB/s) for reference printing.
struct PaperRow {
  std::uint64_t bytes;
  double gflink;
  double native;
};
constexpr PaperRow kPaperRows[] = {
    {2048, 776.398, 814.425},       {4096, 1241.311, 1348.418},
    {16384, 2195.872, 2245.351},    {32768, 2556.237, 2646.721},
    {131072, 2858.368, 2878.373},   {262144, 2968.151, 2945.243},
    {524288, 2960.003, 2931.513},   {1048576, 2973.701, 2963.532},
};

double measure_bandwidth(std::uint64_t bytes, bool native) {
  sim::Simulation s;
  gpu::GpuDevice device(s, "gpu0", gpu::DeviceSpec::c2050());
  gpu::CudaStub stub(device);
  gpu::CudaWrapper wrapper(stub);
  mem::AddressSpace addresses;
  mem::HBuffer host(bytes, addresses.allocate(bytes));
  host.set_pinned(true);

  sim::Duration elapsed = 0;
  s.spawn([](sim::Simulation& sm, gpu::CudaStub& st, gpu::CudaWrapper& w, mem::HBuffer& h,
             std::uint64_t n, bool nat, sim::Duration& out) -> sim::Co<void> {
    gpu::DevicePtr p = st.device().memory().allocate(n);
    const sim::Time t0 = sm.now();
    if (nat) {
      co_await st.memcpy_h2d(p, h, 0, n);
    } else {
      co_await w.memcpy_h2d(p, h, 0, n);
    }
    out = sm.now() - t0;
    st.device().memory().free(p);
  }(s, stub, wrapper, host, bytes, native, elapsed));
  s.run();
  return static_cast<double>(bytes) / sim::to_seconds(elapsed);  // bytes/s
}

void Table2_TransferChannel(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  double gflink_mbps = 0, native_mbps = 0;
  for (auto _ : state) {
    gflink_mbps = measure_bandwidth(bytes, false) / 1e6;
    native_mbps = measure_bandwidth(bytes, true) / 1e6;
    state.SetIterationTime(static_cast<double>(bytes) / (gflink_mbps * 1e6));
    state.counters["gflink_MBps"] = gflink_mbps;
    state.counters["native_MBps"] = native_mbps;
  }
  for (const auto& row : kPaperRows) {
    if (row.bytes == bytes) {
      std::printf(
          "Table2 %8llu B  measured: GFlink %7.1f MB/s, native %7.1f MB/s | "
          "paper: GFlink %7.1f, native %7.1f\n",
          static_cast<unsigned long long>(bytes), gflink_mbps, native_mbps, row.gflink,
          row.native);
    }
  }
  state.SetLabel(std::to_string(bytes) + " bytes");
}
BENCHMARK(Table2_TransferChannel)
    ->Arg(2048)->Arg(4096)->Arg(16384)->Arg(32768)
    ->Arg(131072)->Arg(262144)->Arg(524288)->Arg(1048576)
    ->UseManualTime()->Unit(benchmark::kMicrosecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(table2_bandwidth);
