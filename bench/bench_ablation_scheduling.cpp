// Ablation — the adaptive locality-aware scheduling scheme (Algorithms
// 5.1/5.2) against round-robin and random GWork placement, on workers with
// *heterogeneous* GPUs (one C2050 + one K20 each), the environment the
// scheme was designed for.
//
// Expected shape: locality-aware wins on iterative workloads (cached
// blocks keep returning to the device that holds them, and work stealing
// balances the faster K20 against the slower C2050); round-robin loses
// cache locality (a block bounces between devices, re-transferring over
// PCIe); random is worst on both counts.
#include "bench_common.hpp"
#include "workloads/kmeans.hpp"

namespace {

using namespace gflink::bench;
using gflink::sim::Co;

const char* policy_name(core::SchedulingPolicy p) {
  switch (p) {
    case core::SchedulingPolicy::LocalityAware: return "locality-aware";
    case core::SchedulingPolicy::RoundRobin: return "round-robin";
    case core::SchedulingPolicy::Random: return "random";
  }
  return "?";
}

struct Outcome {
  double seconds = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t steals = 0;
};

Outcome run_with_policy(core::SchedulingPolicy policy) {
  wl::Testbed tb;
  tb.workers = 4;
  tb.scheduling = policy;
  df::Engine engine(wl::make_engine_config(tb));
  wl::ensure_kernels_registered();
  // Strongly heterogeneous bulks: one C2050 and one P100 per worker (the
  // "computational power of GPUs is different from each other" setting the
  // scheme targets). Scaled platform constants copied from the base config.
  auto gcfg = wl::make_gpu_config(tb);
  auto p100 = gpu::DeviceSpec::p100();
  p100.device_memory = gcfg.devices[0].device_memory;
  p100.pcie_latency = gcfg.devices[0].pcie_latency;
  p100.kernel_launch_overhead = gcfg.devices[0].kernel_launch_overhead;
  gcfg.devices[1] = p100;
  core::GFlinkRuntime runtime(engine, gcfg);

  wl::kmeans::Config cfg;
  cfg.points = 210'000'000;
  cfg.iterations = 10;
  cfg.write_output = false;

  Outcome out;
  engine.run([&](df::Engine& eng) -> Co<void> {
    auto r = co_await wl::kmeans::run(eng, &runtime, tb, wl::Mode::Gpu, cfg);
    out.seconds = full_seconds(r.run.total, tb);
  });
  out.cache_hits = runtime.total_cache_hits();
  out.h2d_bytes = runtime.total_bytes_h2d();
  for (int w = 1; w <= tb.workers; ++w) {
    out.steals += runtime.manager(w).streams().steals();
  }
  return out;
}

void Ablation_Scheduling(benchmark::State& state) {
  const auto policy = static_cast<core::SchedulingPolicy>(state.range(0));
  wl::Testbed tb;
  for (auto _ : state) {
    Outcome out = run_with_policy(policy);
    state.SetIterationTime(out.seconds * tb.scale);
    state.counters["total_s"] = out.seconds;
    state.counters["cache_hits"] = static_cast<double>(out.cache_hits);
    state.counters["h2d_MB"] = static_cast<double>(out.h2d_bytes) / 1e6;
    state.counters["steals"] = static_cast<double>(out.steals);
  }
  state.SetLabel(policy_name(policy));
}
BENCHMARK(Ablation_Scheduling)
    ->Arg(0)->Arg(1)->Arg(2)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

GFLINK_BENCH_MAIN(ablation_scheduling);
