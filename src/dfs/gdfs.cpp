// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "dfs/gdfs.hpp"

#include <algorithm>

namespace gflink::dfs {

Gdfs::Gdfs(net::Cluster& cluster, const GdfsConfig& config)
    : cluster_(&cluster), config_(config), rng_(config.placement_seed) {
  GFLINK_CHECK(config_.replication >= 1);
  GFLINK_CHECK_MSG(config_.replication <= cluster.num_workers(),
                   "replication exceeds worker count");
}

std::vector<int> Gdfs::place_block() {
  const int workers = cluster_->num_workers();
  std::vector<int> replicas;
  int primary = 1 + next_primary_;  // worker ids start at 1
  next_primary_ = (next_primary_ + 1) % workers;
  replicas.push_back(primary);
  while (static_cast<int>(replicas.size()) < config_.replication) {
    int candidate = 1 + static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(workers)));
    if (std::find(replicas.begin(), replicas.end(), candidate) == replicas.end()) {
      replicas.push_back(candidate);
    }
  }
  return replicas;
}

const FileInfo& Gdfs::create_file(const std::string& path, std::uint64_t size) {
  core::MutexLock lock(mu_);
  return create_file_locked(path, size);
}

const FileInfo& Gdfs::create_file_locked(const std::string& path, std::uint64_t size) {
  GFLINK_CHECK_MSG(files_.find(path) == files_.end(), "file exists: " + path);
  FileInfo f;
  f.path = path;
  f.id = next_file_id_++;
  f.size = size;
  f.block_size = config_.block_size;
  std::uint64_t remaining = size;
  int index = 0;
  while (remaining > 0) {
    BlockInfo b;
    b.file_id = f.id;
    b.index = index++;
    b.bytes = std::min(remaining, config_.block_size);
    b.replicas = place_block();
    remaining -= b.bytes;
    f.blocks.push_back(std::move(b));
  }
  auto [it, inserted] = files_.emplace(path, std::move(f));
  GFLINK_CHECK(inserted);
  return it->second;
}

const FileInfo* Gdfs::stat(const std::string& path) const {
  core::MutexLock lock(mu_);
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

bool Gdfs::is_local(int node, const BlockInfo& block) {
  return std::find(block.replicas.begin(), block.replicas.end(), node) != block.replicas.end();
}

int Gdfs::preferred_replica(int reader, const BlockInfo& block) const {
  if (is_local(reader, block) && node_alive(reader)) return reader;
  GFLINK_CHECK(!block.replicas.empty());
  for (int replica : block.replicas) {
    if (node_alive(replica)) return replica;
  }
  // All replicas down: fall back to the primary (the read will be charged;
  // a real system would error — we model the timeout as a normal read).
  return block.replicas.front();
}

sim::Co<void> Gdfs::read_block(int reader, const BlockInfo& block, obs::SpanLink link) {
  auto& metrics = cluster_->metrics();
  int source = preferred_replica(reader, block);
  metrics.inc("dfs.blocks_read");
  metrics.inc("dfs.bytes_read", static_cast<double>(block.bytes));
  if (source == reader) {
    metrics.inc("dfs.local_reads");
  } else {
    metrics.inc("dfs.remote_reads");
  }
  co_await cluster_->node(source).disk_read().transfer(block.bytes, "dfs-read", link);
  if (source != reader) {
    co_await cluster_->transfer(source, reader, block.bytes, "dfs-read", link);
  }
}

sim::Co<void> Gdfs::read_file(int reader, const std::string& path, obs::SpanLink link) {
  const FileInfo* f = stat(path);
  GFLINK_CHECK_MSG(f != nullptr, "no such file: " + path);
  co_await cluster_->sim().delay(config_.namenode_latency);
  for (const auto& b : f->blocks) {
    co_await read_block(reader, b, link);
  }
}

sim::Co<void> Gdfs::write(int writer, const std::string& path, std::uint64_t bytes,
                          obs::SpanLink link) {
  co_await cluster_->sim().delay(config_.namenode_latency);
  // Metadata phase under the namenode lock, released before any simulated
  // I/O below. Snapshot the newly appended spans BY VALUE meanwhile:
  // concurrent appends to the same file may reallocate `blocks` while this
  // coroutine is suspended mid-transfer.
  struct Span {
    std::vector<int> replicas;
    std::uint64_t bytes;
  };
  std::vector<Span> spans;
  {
    core::MutexLock lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      // Creating charges metadata latency only; block placement is immediate.
      create_file_locked(path, bytes);
      it = files_.find(path);
    } else {
      // Append: extend metadata.
      FileInfo& f = it->second;
      std::uint64_t remaining = bytes;
      int index = static_cast<int>(f.blocks.size());
      while (remaining > 0) {
        BlockInfo b;
        b.file_id = f.id;
        b.index = index++;
        b.bytes = std::min(remaining, config_.block_size);
        b.replicas = place_block();
        remaining -= b.bytes;
        f.blocks.push_back(std::move(b));
      }
      f.size += bytes;
    }
    const FileInfo& f = it->second;
    std::uint64_t remaining = bytes;
    for (auto rit = f.blocks.rbegin(); rit != f.blocks.rend() && remaining > 0; ++rit) {
      const std::uint64_t span = std::min<std::uint64_t>(rit->bytes, remaining);
      remaining -= span;
      spans.push_back(Span{rit->replicas, span});
    }
  }
  auto& metrics = cluster_->metrics();
  metrics.inc("dfs.bytes_written", static_cast<double>(bytes));
  // Pipelined replica writes: the writer streams to the primary (network if
  // remote), each replica persists to disk and forwards to the next.
  for (const Span& s : spans) {
    int prev = writer;
    for (int replica : s.replicas) {
      if (replica != prev) {
        co_await cluster_->transfer(prev, replica, s.bytes, "dfs-write", link);
      }
      co_await cluster_->node(replica).disk_write().transfer(s.bytes, "dfs-write", link);
      prev = replica;
    }
  }
}

}  // namespace gflink::dfs
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
