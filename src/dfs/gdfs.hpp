// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// GDFS: an HDFS-like distributed file system model.
//
// Files are split into fixed-size blocks, each replicated on `replication`
// worker nodes. Reads prefer a local replica (data locality — the property
// Flink's scheduler exploits); remote reads pay the replica's disk plus a
// network transfer. Writes pipeline through all replicas.
//
// GDFS stores no payload bytes: datasets are regenerated deterministically
// by sources. The file system charges virtual I/O time for the byte counts
// it is told about, which is all the evaluation needs (the paper's TIO term
// in Eq. 1).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/thread_annotations.hpp"
#include "net/cluster.hpp"
#include "sim/random.hpp"

namespace gflink::dfs {

struct BlockInfo {
  std::uint64_t file_id = 0;
  int index = 0;
  std::uint64_t bytes = 0;
  std::vector<int> replicas;  // node ids; replicas.front() is the primary
};

struct FileInfo {
  std::string path;
  std::uint64_t id = 0;
  std::uint64_t size = 0;
  std::uint64_t block_size = 0;
  std::vector<BlockInfo> blocks;
};

struct GdfsConfig {
  std::uint64_t block_size = 64ULL << 20;  // 64 MB
  int replication = 2;
  std::uint64_t placement_seed = 17;
  sim::Duration namenode_latency = sim::micros(200);
};

class Gdfs {
 public:
  Gdfs(net::Cluster& cluster, const GdfsConfig& config = {});

  /// Create a file of `size` bytes; blocks are placed round-robin (primary)
  /// with additional replicas drawn deterministically. Metadata only. The
  /// returned reference is node-stable: later creates never invalidate it.
  const FileInfo& create_file(const std::string& path, std::uint64_t size);

  /// Look up file metadata; nullptr if absent. The pointer is node-stable,
  /// but the FileInfo's block list may grow under a concurrent append —
  /// iterate it only while no writer is active on the same path.
  const FileInfo* stat(const std::string& path) const;

  bool exists(const std::string& path) const { return stat(path) != nullptr; }

  /// True if `node` holds a replica of `block`.
  static bool is_local(int node, const BlockInfo& block);

  /// The replica `reader` should fetch from: itself when local, otherwise
  /// the first *live* replica (replication is what lets reads route around
  /// datanode failures).
  int preferred_replica(int reader, const BlockInfo& block) const;

  /// Install a liveness oracle (the engine's worker-failure state). When
  /// unset every node is assumed alive.
  void set_liveness(std::function<bool(int)> alive) { alive_ = std::move(alive); }

  bool node_alive(int node) const { return !alive_ || alive_(node); }

  /// Read one block into memory at `reader`: replica disk + (if remote) a
  /// network transfer. `link` parents the disk/NIC causal spans.
  sim::Co<void> read_block(int reader, const BlockInfo& block, obs::SpanLink link = {});

  /// Read a whole file serially at one node (used by single-reader
  /// drivers; parallel readers issue per-block reads themselves).
  sim::Co<void> read_file(int reader, const std::string& path, obs::SpanLink link = {});

  /// Append `bytes` to a (possibly new) file from `writer`: pipelined
  /// replica writes — local disk write plus transfer+disk at each remote
  /// replica. `link` parents the disk/NIC causal spans.
  sim::Co<void> write(int writer, const std::string& path, std::uint64_t bytes,
                      obs::SpanLink link = {});

  net::Cluster& cluster() { return *cluster_; }

 private:
  std::vector<int> place_block() GFLINK_REQUIRES(mu_);
  const FileInfo& create_file_locked(const std::string& path, std::uint64_t size)
      GFLINK_REQUIRES(mu_);

  net::Cluster* cluster_;
  GdfsConfig config_;
  std::function<bool(int)> alive_;
  /// Guards the namenode metadata (file table, id/placement cursors, the
  /// placement RNG). Leaf lock; write()/read paths lock only around their
  /// metadata phases, never across the simulated I/O awaits.
  mutable core::Mutex mu_;
  sim::Rng rng_ GFLINK_GUARDED_BY(mu_);
  std::map<std::string, FileInfo> files_ GFLINK_GUARDED_BY(mu_);
  std::uint64_t next_file_id_ GFLINK_GUARDED_BY(mu_) = 1;
  int next_primary_ GFLINK_GUARDED_BY(mu_) = 0;  // round-robin cursor over workers
};

}  // namespace gflink::dfs
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
