// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "dataflow/engine.hpp"

#include <map>
#include <unordered_map>

namespace gflink::dataflow {

namespace {

/// Rounds of a binomial distribution/combining tree over `receivers` nodes.
int tree_rounds(int receivers) {
  int rounds = 0;
  int covered = 1;
  while (covered < receivers + 1) {
    covered *= 2;
    ++rounds;
  }
  return rounds;
}

}  // namespace

// ---- TaskContext -----------------------------------------------------------

sim::Simulation& TaskContext::sim() { return engine_->sim(); }
net::Node& TaskContext::node() { return engine_->cluster().node(worker_node_); }
Worker& TaskContext::worker_state() { return engine_->worker_state(worker_node_); }
void* TaskContext::extension() { return engine_->worker_state(worker_node_).extension(); }

// ---- Job -------------------------------------------------------------------

Job::Job(Engine& engine, std::string name) : engine_(&engine), id_(engine.next_job_id_++) {
  stats_.name = std::move(name);
  stats_.job_id = id_;
}

sim::Co<void> Job::submit() {
  GFLINK_CHECK_MSG(!submitted_, "job submitted twice");
  stats_.submitted_at = engine_->now();
  obs::SpanStore& spans = engine_->cluster().spans();
  // The trace root: everything the job does hangs off this span, and its
  // duration is the makespan the critical-path breakdown must sum to.
  span_ = spans.open("job", obs::SpanCategory::Control, 0, stats_.submitted_at, "master/job", 0,
                     id_);
  spans.annotate(span_, "name", stats_.name);
  if (!stats_.tenant.empty()) spans.annotate(span_, "tenant", stats_.tenant);
  // Client -> JobManager: ship the program, translate and optimize the
  // plan, acquire slots. Tsubmit + Tschedule in the paper's Eq. (1).
  co_await engine_->sim().delay(engine_->config().job_submit_overhead);
  co_await engine_->sim().delay(engine_->config().job_schedule_overhead);
  stats_.running_at = engine_->now();
  stats_.state = JobState::Running;
  spans.record("submit", obs::SpanCategory::Control, span_, stats_.submitted_at,
               stats_.running_at, "master/job", 0);
  submitted_ = true;
}

void Job::finish() {
  stats_.finished_at = engine_->now();
  stats_.state = JobState::Finished;
  engine_->cluster().spans().close(span_, stats_.finished_at);
  span_ = 0;
}

void Job::cancel() {
  GFLINK_CHECK_MSG(!submitted_, "cannot cancel a job that already submitted");
  stats_.state = JobState::Cancelled;
}

// ---- Engine ----------------------------------------------------------------

Engine::Engine(const EngineConfig& config)
    : config_(config), cluster_(sim_, config.cluster), dfs_(cluster_, config.dfs),
      shuffle_(sim_, cluster_, dfs_, config.shuffle,
               [this](int t) { return owner_of_partition(t); }),
      default_parallelism_(0) {
  cluster_.tracer().set_enabled(config.trace);
  // Causal spans are retained for DAG analysis only on traced runs; the
  // flight-recorder rings stay on regardless (they are bounded).
  cluster_.spans().set_retain(config.trace);
  const int slots = config_.slots_per_worker > 0 ? config_.slots_per_worker
                                                 : config_.cluster.worker.cpu.cores;
  workers_.push_back(nullptr);  // node 0 is the master
  for (int w = 1; w <= cluster_.num_workers(); ++w) {
    workers_.push_back(std::make_unique<Worker>(sim_, w, slots, config_.page_size,
                                                config_.memory_pages_per_worker));
  }
  default_parallelism_ = cluster_.num_workers() * slots;
  task_busy_ns_.push_back(nullptr);  // node 0 is the master
  for (int w = 1; w <= cluster_.num_workers(); ++w) {
    task_busy_ns_.push_back(
        &cluster_.metrics().counter("engine.task_busy_ns", {{"node", std::to_string(w)}}));
  }
  alive_.assign(static_cast<std::size_t>(cluster_.num_workers()) + 1, true);
  dfs_.set_liveness([this](int node) { return worker_alive(node); });
}

void Engine::schedule_worker_failure(int worker, sim::Time at, sim::Duration down_for) {
  GFLINK_CHECK(worker >= 1 && worker <= num_workers());
  sim_.schedule_at(at, [this, worker] {
    alive_[static_cast<std::size_t>(worker)] = false;
    cluster_.metrics().inc("fault.worker_failures");
    cluster_.flight().note_fault(sim_.now(), worker, "worker_failure",
                                 "node" + std::to_string(worker) + " lost");
  });
  if (down_for > 0) {
    sim_.schedule_at(at + down_for, [this, worker] {
      alive_[static_cast<std::size_t>(worker)] = true;  // rejoins, memory empty
    });
  }
}

int Engine::alive_workers() const {
  int n = 0;
  for (int w = 1; w <= num_workers(); ++w) {
    if (alive_[static_cast<std::size_t>(w)]) ++n;
  }
  return n;
}

int Engine::pick_alive_worker(int preferred) const {
  GFLINK_CHECK_MSG(alive_workers() > 0, "every worker is dead; job cannot make progress");
  for (int step = 0; step < num_workers(); ++step) {
    const int candidate = 1 + (preferred - 1 + step) % num_workers();
    if (alive_[static_cast<std::size_t>(candidate)]) return candidate;
  }
  GFLINK_CHECK(false);
}

sim::Co<void> Engine::work_delay(int worker, sim::Duration d) {
  if (!worker_alive(worker)) throw TaskFailed{worker};
  if (d <= 0) co_return;
  // Chunked so a mid-delay death is observed with bounded latency.
  constexpr int kChunks = 16;
  const sim::Duration chunk = std::max<sim::Duration>(1, d / kChunks);
  sim::Duration remaining = d;
  while (remaining > 0) {
    const sim::Duration step = std::min(chunk, remaining);
    co_await sim_.delay(step);
    remaining -= step;
    // Per-chunk (not per-task) so a telemetry sample mid-task still sees
    // the node's busy time advance — tasks can outlive a sample period.
    task_busy_ns_[static_cast<std::size_t>(worker)]->inc(static_cast<double>(step));
    if (!worker_alive(worker)) throw TaskFailed{worker};
  }
}

Worker& Engine::worker_state(int node_id) {
  GFLINK_CHECK_MSG(node_id >= 1 && node_id <= cluster_.num_workers(), "not a worker node");
  return *workers_[static_cast<std::size_t>(node_id)];
}

void Engine::note_stage(const StageStat& stat) {
  obs::MetricsRegistry& m = cluster_.metrics();
  m.inc("engine.stages");
  m.inc("engine.stage_tasks", static_cast<double>(stat.tasks));
  m.inc("engine.records_in", static_cast<double>(stat.records_in));
  m.inc("engine.records_out", static_cast<double>(stat.records_out));
  m.inc("engine.shuffle_bytes", static_cast<double>(stat.shuffle_bytes));
  // 0..10 s of virtual time per stage, 100 buckets; the summary keeps exact
  // bounds for outliers.
  m.histogram("engine_stage_duration_ns", 0.0, 1.0e10, 100)
      .add(static_cast<double>(stat.end - stat.begin));
}

void Engine::export_metrics(obs::MetricsRegistry& out) const {
  cluster_.export_metrics(out);
  out.counter("engine_tasks_failed_total").inc(static_cast<double>(tasks_failed_));
  out.counter("engine_tasks_retried_total").inc(static_cast<double>(tasks_retried_));
}

sim::Time Engine::run(std::function<sim::Co<void>(Engine&)> driver) {
  sim_.spawn(driver(*this));
  const sim::Time end = sim_.run();
  // The event queue drained with processes still parked: a deadlock in the
  // model (e.g. resource starvation). Fail loudly rather than return
  // nonsense timings.
  GFLINK_CHECK_MSG(sim_.live_processes() == 0, "driver deadlocked: processes still parked");
  return end;
}

// ---- Plan execution --------------------------------------------------------

sim::Co<DataHandle> Engine::run_plan(Job& job, const PlanNodePtr& sink) {
  GFLINK_CHECK_MSG(job.submitted(), "action on a job that was never submitted");
  auto chain = linearize(sink.get());
  DataHandle data = co_await run_source(job, chain.front()->source);
  auto stages = split_stages(chain);
  for (const Stage& stage : stages) {
    data = co_await run_stage(job, stage, data);
  }
  co_return data;
}

sim::Co<DataHandle> Engine::run_source(Job& job, const SourceSpec& source) {
  if (source.handle) co_return source.handle;  // cached in cluster memory
  GFLINK_CHECK_MSG(source.desc != nullptr, "source needs a record descriptor");
  GFLINK_CHECK_MSG(source.generate != nullptr, "source needs a generator");

  const int partitions = source.partitions > 0 ? source.partitions : default_parallelism_;
  auto out = std::make_shared<MaterializedDataSet>();
  out->desc = source.desc;
  out->parts.resize(static_cast<std::size_t>(partitions));

  const dfs::FileInfo* file = nullptr;
  if (!source.dfs_path.empty()) {
    file = dfs_.stat(source.dfs_path);
    GFLINK_CHECK_MSG(file != nullptr, "source file missing: " + source.dfs_path);
  }

  StageStat stat;
  stat.name = "source";
  stat.begin = now();
  stat.tasks = partitions;

  const obs::SpanId stage_span = cluster_.spans().open(
      "stage:source", obs::SpanCategory::Control, job.span(), stat.begin, "master/stages", 0);

  co_await sim_.delay(config_.stage_schedule_overhead);
  std::vector<std::pair<int, int>> pending;  // (partition, assigned worker)
  for (int p = 0; p < partitions; ++p) {
    // Input-split locality: a partition is scheduled on the worker holding
    // the primary replica of its first block.
    int owner = owner_of_partition(p);
    if (file != nullptr && static_cast<std::size_t>(p) < file->blocks.size()) {
      owner = file->blocks[static_cast<std::size_t>(p)].replicas.front();
    }
    pending.emplace_back(p, owner);
  }
  while (!pending.empty()) {
    sim::WaitGroup wg(sim_);
    auto failed = std::make_shared<std::vector<int>>();
    for (auto& [part, owner] : pending) {
      wg.add();
      sim_.spawn([](Engine& eng, Job& jb, const SourceSpec& src, const dfs::FileInfo* fi,
                    MaterializedDataSet& result, int part_idx, int node, int nparts,
                    obs::SpanId st_span, std::shared_ptr<std::vector<int>> fails,
                    sim::WaitGroup& join) -> sim::Co<void> {
        obs::SpanStore& sp = eng.cluster().spans();
        const obs::SpanId task_span =
            sp.open("task:source", obs::SpanCategory::Control, st_span, eng.now(),
                    "node" + std::to_string(node) + "/tasks", node);
        try {
          if (!eng.worker_alive(node)) throw TaskFailed{node};
          co_await eng.cluster().message(0, node);
          co_await eng.sim().delay(eng.config().task_deploy_overhead);
          Worker& w = eng.worker_state(node);
          const sim::Time slot_wait = eng.now();
          co_await w.slots().acquire();
          if (eng.now() > slot_wait) {
            sp.record("wait:slot", obs::SpanCategory::Wait, task_span, slot_wait, eng.now(),
                      "node" + std::to_string(node) + "/slots", node);
          }
          try {
            // Read this partition's share of blocks (round-robin).
            if (fi != nullptr) {
              for (std::size_t b = static_cast<std::size_t>(part_idx); b < fi->blocks.size();
                   b += static_cast<std::size_t>(nparts)) {
                co_await eng.dfs().read_block(node, fi->blocks[b],
                                              {task_span, obs::SpanCategory::Control});
                jb.stats().io_bytes_read += fi->blocks[b].bytes;
              }
            }
            auto batch = std::make_shared<mem::RecordBatch>(src.desc);
            src.generate(part_idx, *batch);
            const auto n = static_cast<sim::Duration>(batch->count());
            co_await eng.work_delay(
                node, n * eng.cluster().node(node).record_time(src.parse_cost.flops,
                                                               src.parse_cost.bytes));
            result.parts[static_cast<std::size_t>(part_idx)] = {node, std::move(batch)};
          } catch (const TaskFailed&) {
            w.slots().release();
            throw;
          }
          w.slots().release();
          sp.close(task_span, eng.now());
        } catch (const TaskFailed&) {
          sp.annotate(task_span, "failed", "worker_lost");
          sp.close(task_span, eng.now());
          eng.cluster().flight().note_event(eng.now(), node, "task_failed",
                                            "source partition " + std::to_string(part_idx));
          ++eng.tasks_failed_;
          ++jb.stats().tasks_failed;
          fails->push_back(part_idx);
        }
        join.done();
      }(*this, job, source, file, *out, part, owner, partitions, stage_span, failed, wg));
    }
    co_await wg.wait();
    pending.clear();
    if (!failed->empty()) {
      co_await sim_.delay(config_.failure_detection_delay);
      for (int idx : *failed) {
        pending.emplace_back(idx, pick_alive_worker(owner_of_partition(idx)));
        ++tasks_retried_;
        ++job.stats().tasks_retried;
      }
    }
  }

  stat.end = now();
  stat.records_out = out->total_records();
  cluster_.spans().close(stage_span, stat.end);
  note_stage(stat);
  job.stats().stages.push_back(std::move(stat));
  co_return out;
}

sim::Co<std::shared_ptr<mem::RecordBatch>> Engine::apply_record_ops(
    Job& job, const Stage& stage, int worker, std::shared_ptr<mem::RecordBatch> batch) {
  (void)job;
  if (stage.record_ops.empty()) co_return batch;
  const net::Node& node = cluster_.node(worker);
  sim::Duration total = 0;
  std::shared_ptr<mem::RecordBatch> cur = std::move(batch);
  for (const OpNode* op : stage.record_ops) {
    auto next = std::make_shared<mem::RecordBatch>(op->out_desc);
    Emitter emitter(*next);
    const std::size_t n = cur->count();
    for (std::size_t i = 0; i < n; ++i) {
      op->record_fn(cur->record_ptr(i), emitter);
    }
    total += static_cast<sim::Duration>(n) * node.record_time(op->cost.flops, op->cost.bytes);
    cur = std::move(next);
  }
  co_await work_delay(worker, total);
  co_return cur;
}

mem::RecordBatch Engine::combine_by_key(const OpNode& reduce, const mem::RecordBatch& in) {
  mem::RecordBatch acc(reduce.out_desc);
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(in.count());
  for (std::size_t i = 0; i < in.count(); ++i) {
    const std::byte* rec = in.record_ptr(i);
    const std::uint64_t key = reduce.key_fn(rec);
    auto [it, inserted] = index.try_emplace(key, acc.count());
    if (inserted) {
      acc.append_raw(rec);
    } else {
      reduce.combine_fn(acc.record_ptr(it->second), rec);
    }
  }
  return acc;
}

sim::Co<void> Engine::stage_task(Job& job, const Stage& stage, int part_index,
                                 const MaterializedDataSet::Part& in, MaterializedDataSet& out,
                                 shuffle::ShuffleSession* exchange, int out_partitions,
                                 StageStat& stat, obs::SpanId stage_span) {
  const int worker = in.worker;
  obs::SpanStore& sp = cluster_.spans();
  const obs::SpanId task_span =
      sp.open("task:" + stat.name, obs::SpanCategory::Control, stage_span, now(),
              "node" + std::to_string(worker) + "/tasks", worker);
  try {
  if (!worker_alive(worker)) throw TaskFailed{worker};
  co_await cluster_.message(0, worker);  // task deployment RPC
  co_await sim_.delay(config_.task_deploy_overhead);
  Worker& w = worker_state(worker);
  const sim::Time slot_wait = now();
  co_await w.slots().acquire();
  if (now() > slot_wait) {
    sp.record("wait:slot", obs::SpanCategory::Wait, task_span, slot_wait, now(),
              "node" + std::to_string(worker) + "/slots", worker);
  }

  const std::uint64_t records_in = in.batch ? in.batch->count() : 0;
  stat.records_in += records_in;

  std::shared_ptr<mem::RecordBatch> batch;
  try {
    batch = co_await apply_record_ops(job, stage, worker, in.batch);
  } catch (const TaskFailed&) {
    w.slots().release();  // the physical slot is gone with the node, but
    throw;                // keep the accounting balanced for a rejoin
  }
  const net::Node& node = cluster_.node(worker);

  const OpNode* terminal = stage.terminal;
  try {
  if (terminal == nullptr) {
    out.parts[static_cast<std::size_t>(part_index)] = {worker, std::move(batch)};
  } else if (terminal->kind == OpKind::MapPartition) {
    auto result = std::make_shared<mem::RecordBatch>(terminal->out_desc);
    terminal->partition_fn(*batch, *result);
    co_await work_delay(worker, static_cast<sim::Duration>(batch->count()) *
                                    node.record_time(terminal->cost.flops,
                                                     terminal->cost.bytes));
    out.parts[static_cast<std::size_t>(part_index)] = {worker, std::move(result)};
  } else if (terminal->kind == OpKind::AsyncPartition) {
    auto result = std::make_shared<mem::RecordBatch>(terminal->out_desc);
    TaskContext ctx(*this, job, worker, part_index, task_span);
    co_await terminal->async_fn(ctx, *batch, *result);
    out.parts[static_cast<std::size_t>(part_index)] = {worker, std::move(result)};
  } else if (terminal->kind == OpKind::ReduceByKey) {
    // Map-side combine + bucketing in one pass over the input records.
    std::vector<mem::RecordBatch> buckets = exchange->partition(
        *batch, terminal->out_desc, terminal->key_fn, &terminal->combine_fn);
    // Failure point: nothing has been sent through the exchange yet, so
    // a retry of this task is idempotent.
    co_await work_delay(worker, static_cast<sim::Duration>(batch->count()) *
                                    node.record_time(terminal->cost.flops,
                                                     terminal->cost.bytes));
    co_await exchange->send(worker, std::move(buckets));
  } else if (terminal->kind == OpKind::GroupReduce) {
    // No map-side combine (the group function need not be associative):
    // ship raw records, keyed. Cost: key extraction + serialization-free
    // bucketing per record.
    co_await work_delay(worker, static_cast<sim::Duration>(batch->count()) *
                                    node.record_time(terminal->cost.flops,
                                                     static_cast<double>(
                                                         batch->desc().stride())));
    std::vector<mem::RecordBatch> buckets =
        exchange->partition(*batch, &batch->desc(), terminal->key_fn, nullptr);
    co_await exchange->send(worker, std::move(buckets));
  } else if (terminal->kind == OpKind::Rebalance) {
    co_await sim_.delay(static_cast<sim::Duration>(batch->count()) *
                        node.record_time(2.0, static_cast<double>(batch->desc().stride())));
    std::vector<mem::RecordBatch> buckets;
    buckets.reserve(static_cast<std::size_t>(out_partitions));
    for (int t = 0; t < out_partitions; ++t) buckets.emplace_back(terminal->out_desc);
    for (std::size_t i = 0; i < batch->count(); ++i) {
      buckets[i % static_cast<std::size_t>(out_partitions)].append_raw(batch->record_ptr(i));
    }
    for (int t = 0; t < out_partitions; ++t) {
      auto& bucket = buckets[static_cast<std::size_t>(t)];
      if (!bucket.empty()) exchange->deposit_local(t, std::move(bucket));
    }
    // Rebalance transfers are charged in the merge step (receiver side
    // cannot know sizes until all tasks deposited).
  } else {
    GFLINK_CHECK_MSG(false, "unexpected terminal operator");
  }
  } catch (const TaskFailed&) {
    w.slots().release();
    throw;
  }

  w.slots().release();
  sp.close(task_span, now());
  } catch (const TaskFailed&) {
    sp.annotate(task_span, "failed", "worker_lost");
    sp.close(task_span, now());
    cluster_.flight().note_event(now(), worker, "task_failed",
                                 stat.name + " partition " + std::to_string(part_index));
    throw;
  }
}

sim::Co<void> Engine::scatter_partition(const MaterializedDataSet::Part& part, const KeyFn& key,
                                        shuffle::ShuffleSession& session,
                                        obs::SpanId stage_span) {
  obs::SpanStore& sp = cluster_.spans();
  const obs::SpanId task_span =
      sp.open("task:scatter", obs::SpanCategory::Control, stage_span, now(),
              "node" + std::to_string(part.worker) + "/tasks", part.worker);
  Worker& w = worker_state(part.worker);
  const sim::Time slot_wait = now();
  co_await w.slots().acquire();
  if (now() > slot_wait) {
    sp.record("wait:slot", obs::SpanCategory::Wait, task_span, slot_wait, now(),
              "node" + std::to_string(part.worker) + "/slots", part.worker);
  }
  std::vector<mem::RecordBatch> buckets =
      session.partition(*part.batch, &part.batch->desc(), key, nullptr);
  // Cost: key extraction + serialization-free bucketing per record.
  co_await sim_.delay(static_cast<sim::Duration>(part.batch->count()) *
                      cluster_.node(part.worker).record_time(
                          16.0, static_cast<double>(part.batch->desc().stride())));
  co_await session.send(part.worker, std::move(buckets));
  w.slots().release();
  sp.close(task_span, now());
}

sim::Co<DataHandle> Engine::run_stage(Job& job, const Stage& stage, DataHandle input) {
  if (stage.record_ops.empty() && stage.terminal == nullptr) co_return input;

  const OpNode* terminal = stage.terminal;
  const bool shuffles =
      terminal != nullptr &&
      (terminal->kind == OpKind::ReduceByKey || terminal->kind == OpKind::GroupReduce ||
       terminal->kind == OpKind::Rebalance);

  StageStat stat;
  stat.name = terminal != nullptr
                  ? terminal->name
                  : (stage.record_ops.empty() ? "identity" : stage.record_ops.back()->name);
  stat.begin = now();
  stat.tasks = static_cast<int>(input->parts.size());

  const obs::SpanId stage_span = cluster_.spans().open(
      "stage:" + stat.name, obs::SpanCategory::Control, job.span(), stat.begin, "master/stages",
      0);

  const int out_partitions = static_cast<int>(input->parts.size());
  auto out = std::make_shared<MaterializedDataSet>();
  out->desc = stage.out_desc != nullptr ? stage.out_desc : input->desc;
  out->parts.resize(static_cast<std::size_t>(out_partitions));

  std::unique_ptr<shuffle::ShuffleSession> exchange;
  if (shuffles) {
    exchange = std::make_unique<shuffle::ShuffleSession>(shuffle_, out_partitions, "shuffle",
                                                         stage_span);
  }

  co_await sim_.delay(config_.stage_schedule_overhead);
  // Run a wave of tasks; workers that die mid-task surface as failed
  // partitions, which are retried on healthy nodes after the JobManager's
  // detection delay (Flink's restart-from-failure behaviour).
  std::vector<std::pair<int, MaterializedDataSet::Part>> pending;
  pending.reserve(input->parts.size());
  for (std::size_t p = 0; p < input->parts.size(); ++p) {
    pending.emplace_back(static_cast<int>(p), input->parts[p]);
  }
  while (!pending.empty()) {
    sim::WaitGroup wg(sim_);
    auto failed = std::make_shared<std::vector<int>>();
    for (auto& [index, part] : pending) {
      wg.add();
      sim_.spawn([](Engine& eng, Job& jb, const Stage& st, int idx,
                    MaterializedDataSet::Part part_in, MaterializedDataSet& result,
                    shuffle::ShuffleSession* ex, int nparts, StageStat& ss, obs::SpanId st_span,
                    std::shared_ptr<std::vector<int>> fails,
                    sim::WaitGroup& join) -> sim::Co<void> {
        try {
          co_await eng.stage_task(jb, st, idx, part_in, result, ex, nparts, ss, st_span);
        } catch (const TaskFailed&) {
          ++eng.tasks_failed_;
          ++jb.stats().tasks_failed;
          fails->push_back(idx);
        }
        join.done();
      }(*this, job, stage, index, part, *out, exchange.get(), out_partitions,
        stat, stage_span, failed, wg));
    }
    co_await wg.wait();
    pending.clear();
    if (!failed->empty()) {
      // Heartbeat timeout before the JobManager reacts, then reassignment.
      co_await sim_.delay(config_.failure_detection_delay);
      for (int idx : *failed) {
        MaterializedDataSet::Part retry = input->parts[static_cast<std::size_t>(idx)];
        retry.worker = pick_alive_worker(retry.worker);
        ++tasks_retried_;
        ++job.stats().tasks_retried;
        pending.emplace_back(idx, retry);
      }
    }
  }

  if (shuffles) {
    // Drain in-flight pipelined sends before any receiver starts merging,
    // then account the stage's network traffic in one place (the session).
    co_await exchange->finish();
    stat.shuffle_bytes = exchange->network_bytes();
    // Merge deposited buckets on their target workers.
    sim::WaitGroup merge_wg(sim_);
    for (int t = 0; t < out_partitions; ++t) {
      merge_wg.add();
      sim_.spawn([](Engine& eng, const Stage& st, shuffle::ShuffleSession& ex,
                    MaterializedDataSet& result, int t_index, StageStat& ss,
                    obs::SpanId st_span, sim::WaitGroup& join) -> sim::Co<void> {
        const int node = eng.owner_of_partition(t_index);
        obs::SpanStore& sp = eng.cluster().spans();
        const obs::SpanId task_span =
            sp.open("task:merge", obs::SpanCategory::Control, st_span, eng.now(),
                    "node" + std::to_string(node) + "/tasks", node);
        Worker& w = eng.worker_state(node);
        const sim::Time slot_wait = eng.now();
        co_await w.slots().acquire();
        if (eng.now() > slot_wait) {
          sp.record("wait:slot", obs::SpanCategory::Wait, task_span, slot_wait, eng.now(),
                    "node" + std::to_string(node) + "/slots", node);
        }
        const OpNode* term = st.terminal;
        // Reads spilled deposits back from the DFS before merging.
        std::vector<mem::RecordBatch> deposited =
            co_await ex.take(t_index, node, {task_span, obs::SpanCategory::Spill});
        std::uint64_t n = 0;
        for (const auto& b : deposited) n += b.count();
        auto merged = std::make_shared<mem::RecordBatch>(term->out_desc);
        if (term->kind == OpKind::GroupReduce) {
          std::map<std::uint64_t, std::vector<const std::byte*>> groups;
          std::uint64_t n_in = 0;
          for (const auto& b : deposited) {
            for (std::size_t i = 0; i < b.count(); ++i) {
              groups[term->key_fn(b.record_ptr(i))].push_back(b.record_ptr(i));
              ++n_in;
            }
          }
          Emitter emitter(*merged);
          for (const auto& [key, group] : groups) {
            term->group_fn(group, emitter);
          }
          co_await eng.sim().delay(
              static_cast<sim::Duration>(n_in + emitter.emitted()) *
              eng.cluster().node(node).record_time(term->cost.flops, term->cost.bytes));
        } else if (term->kind == OpKind::ReduceByKey) {
          mem::RecordBatch all(term->out_desc);
          for (const auto& b : deposited) {
            for (std::size_t i = 0; i < b.count(); ++i) all.append_raw(b.record_ptr(i));
          }
          *merged = Engine::combine_by_key(*term, all);
          co_await eng.sim().delay(
              static_cast<sim::Duration>(n) *
              eng.cluster().node(node).record_time(term->cost.flops, term->cost.bytes));
        } else {  // Rebalance: concatenation plus the deferred transfers
          for (auto& b : deposited) {
            for (std::size_t i = 0; i < b.count(); ++i) merged->append_raw(b.record_ptr(i));
          }
          co_await eng.sim().delay(
              static_cast<sim::Duration>(n) *
              eng.cluster().node(node).record_time(1.0, static_cast<double>(
                                                            term->out_desc->stride())));
        }
        result.parts[static_cast<std::size_t>(t_index)] = {node, std::move(merged)};
        w.slots().release();
        sp.close(task_span, eng.now());
        (void)ss;
        join.done();
      }(*this, stage, *exchange, *out, t, stat, stage_span, merge_wg));
    }
    co_await merge_wg.wait();
  }

  stat.end = now();
  stat.records_out = out->total_records();
  cluster_.spans().close(stage_span, stat.end);
  job.stats().shuffle_bytes += stat.shuffle_bytes;
  note_stage(stat);
  job.stats().stages.push_back(std::move(stat));
  co_return out;
}

// ---- Actions ----------------------------------------------------------------

sim::Co<DataHandle> Engine::materialize(Job& job, PlanNodePtr sink) {
  co_return co_await run_plan(job, sink);
}

sim::Co<std::shared_ptr<mem::RecordBatch>> Engine::collect(Job& job, PlanNodePtr sink) {
  DataHandle data = co_await run_plan(job, sink);
  // Gather partitions to the master through a combining tree (how Flink
  // funnels accumulator-style results): latency is bounded below by the
  // master actually receiving all bytes, and by tree depth otherwise.
  std::uint64_t total = 0, max_part = 0;
  for (const auto& part : data->parts) {
    if (!part.batch) continue;
    total += part.batch->byte_size();
    max_part = std::max<std::uint64_t>(max_part, part.batch->byte_size());
  }
  if (total > 0 && !config_.cluster.colocated_master) {
    const net::NicSpec& nic = config_.cluster.worker.nic;
    const int rounds = tree_rounds(num_workers());
    const sim::Duration tree_time =
        static_cast<sim::Duration>(rounds) *
        (nic.latency * 2 + sim::transfer_time(max_part, nic.bandwidth));
    const sim::Duration funnel_time =
        nic.latency + sim::transfer_time(total, config_.cluster.master.nic.bandwidth);
    cluster_.metrics().inc("net.bytes", static_cast<double>(total));
    co_await sim_.delay(std::max(tree_time, funnel_time));
  }
  auto merged = std::make_shared<mem::RecordBatch>(data->desc);
  for (const auto& part : data->parts) {
    if (!part.batch) continue;
    for (std::size_t i = 0; i < part.batch->count(); ++i) {
      merged->append_raw(part.batch->record_ptr(i));
    }
  }
  co_return merged;
}

sim::Co<std::uint64_t> Engine::count(Job& job, PlanNodePtr sink) {
  DataHandle data = co_await run_plan(job, sink);
  // Count is metadata-only: one message per worker that owns partitions.
  std::vector<bool> seen(static_cast<std::size_t>(num_workers()) + 1, false);
  for (const auto& part : data->parts) {
    if (part.batch && !seen[static_cast<std::size_t>(part.worker)]) {
      seen[static_cast<std::size_t>(part.worker)] = true;
      co_await cluster_.message(part.worker, 0);
    }
  }
  co_return data->total_records();
}

sim::Co<void> Engine::write_dfs(Job& job, PlanNodePtr sink, const std::string& path) {
  DataHandle data = co_await run_plan(job, sink);
  sim::WaitGroup wg(sim_);
  for (const auto& part : data->parts) {
    if (!part.batch || part.batch->empty()) continue;
    wg.add();
    job.stats().io_bytes_written += part.batch->byte_size();
    sim_.spawn([](Engine& eng, const MaterializedDataSet::Part& p, std::string file,
                  obs::SpanId job_span, sim::WaitGroup& join) -> sim::Co<void> {
      co_await eng.dfs().write(p.worker, file + ".part" + std::to_string(p.worker),
                               p.batch->byte_size(), {job_span, obs::SpanCategory::Control});
      join.done();
    }(*this, part, path, job.span(), wg));
  }
  co_await wg.wait();
}

// ---- Handle-level operations -------------------------------------------------

sim::Co<DataHandle> Engine::join(Job& job, const DataHandle& left, const DataHandle& right,
                                 KeyFn left_key, KeyFn right_key, JoinFn join_fn,
                                 const mem::StructDesc* out_desc, OpCost cost, int partitions,
                                 const std::string& name) {
  GFLINK_CHECK(job.submitted());
  const int nparts = partitions > 0 ? partitions : default_parallelism_;

  StageStat stat;
  stat.name = name;
  stat.begin = now();
  stat.tasks = static_cast<int>(left->parts.size() + right->parts.size());

  const obs::SpanId stage_span = cluster_.spans().open(
      "stage:" + stat.name, obs::SpanCategory::Control, job.span(), stat.begin, "master/stages",
      0);

  co_await sim_.delay(config_.stage_schedule_overhead);

  // Phase 1: co-partition both inputs by key hash.
  shuffle::ShuffleSession lex(shuffle_, nparts, "join-shuffle", stage_span);
  shuffle::ShuffleSession rex(shuffle_, nparts, "join-shuffle", stage_span);
  sim::WaitGroup wg(sim_);
  auto scatter = [&](const DataHandle& side, const KeyFn& key, shuffle::ShuffleSession& ex) {
    for (const auto& part : side->parts) {
      if (!part.batch) continue;
      wg.add();
      sim_.spawn([](Engine& eng, const MaterializedDataSet::Part& p, const KeyFn& kf,
                    shuffle::ShuffleSession& e, obs::SpanId st_span,
                    sim::WaitGroup& join) -> sim::Co<void> {
        co_await eng.scatter_partition(p, kf, e, st_span);
        join.done();
      }(*this, part, key, ex, stage_span, wg));
    }
  };
  scatter(left, left_key, lex);
  scatter(right, right_key, rex);
  co_await wg.wait();
  co_await lex.finish();
  co_await rex.finish();
  stat.shuffle_bytes = lex.network_bytes() + rex.network_bytes();

  // Phase 2: per-partition hash join (build on left, probe with right).
  auto out = std::make_shared<MaterializedDataSet>();
  out->desc = out_desc;
  out->parts.resize(static_cast<std::size_t>(nparts));
  sim::WaitGroup jg(sim_);
  for (int t = 0; t < nparts; ++t) {
    jg.add();
    sim_.spawn([](Engine& eng, shuffle::ShuffleSession& le, shuffle::ShuffleSession& re,
                  MaterializedDataSet& result, const KeyFn& lk, const KeyFn& rk,
                  const JoinFn& jf, OpCost c, int t_index, obs::SpanId st_span,
                  sim::WaitGroup& join) -> sim::Co<void> {
      const int node = eng.owner_of_partition(t_index);
      obs::SpanStore& sp = eng.cluster().spans();
      const obs::SpanId task_span =
          sp.open("task:join", obs::SpanCategory::Control, st_span, eng.now(),
                  "node" + std::to_string(node) + "/tasks", node);
      Worker& w = eng.worker_state(node);
      const sim::Time slot_wait = eng.now();
      co_await w.slots().acquire();
      if (eng.now() > slot_wait) {
        sp.record("wait:slot", obs::SpanCategory::Wait, task_span, slot_wait, eng.now(),
                  "node" + std::to_string(node) + "/slots", node);
      }
      std::vector<mem::RecordBatch> lbs =
          co_await le.take(t_index, node, {task_span, obs::SpanCategory::Spill});
      std::vector<mem::RecordBatch> rbs =
          co_await re.take(t_index, node, {task_span, obs::SpanCategory::Spill});
      std::unordered_multimap<std::uint64_t, const std::byte*> table;
      std::uint64_t nl = 0, nr = 0;
      for (const auto& b : lbs) {
        for (std::size_t i = 0; i < b.count(); ++i) {
          table.emplace(lk(b.record_ptr(i)), b.record_ptr(i));
          ++nl;
        }
      }
      auto merged = std::make_shared<mem::RecordBatch>(result.desc);
      Emitter emitter(*merged);
      for (const auto& b : rbs) {
        for (std::size_t i = 0; i < b.count(); ++i) {
          const std::byte* rec = b.record_ptr(i);
          auto [lo, hi] = table.equal_range(rk(rec));
          for (auto it = lo; it != hi; ++it) jf(it->second, rec, emitter);
          ++nr;
        }
      }
      co_await eng.sim().delay(
          static_cast<sim::Duration>(nl + nr + emitter.emitted()) *
          eng.cluster().node(node).record_time(c.flops, c.bytes));
      result.parts[static_cast<std::size_t>(t_index)] = {node, std::move(merged)};
      w.slots().release();
      sp.close(task_span, eng.now());
      join.done();
    }(*this, lex, rex, *out, left_key, right_key, join_fn, cost, t, stage_span, jg));
  }
  co_await jg.wait();

  stat.end = now();
  stat.records_out = out->total_records();
  cluster_.spans().close(stage_span, stat.end);
  job.stats().shuffle_bytes += stat.shuffle_bytes;
  note_stage(stat);
  job.stats().stages.push_back(std::move(stat));
  co_return out;
}

sim::Co<void> Engine::checkpoint(Job& job, const std::string& name, std::uint64_t bytes) {
  // Keyed by job id, not just name: concurrent jobs running the same
  // program (multi-tenant service) must not clobber each other's snapshots.
  co_await dfs_.write(0, "/checkpoints/" + job.stats().name + "-" +
                             std::to_string(job.id()) + "/" + name, bytes);
  job.stats().io_bytes_written += bytes;
  cluster_.metrics().inc("fault.checkpoints");
}

sim::Co<DataHandle> Engine::co_group(Job& job, const DataHandle& left,
                                     const DataHandle& right, KeyFn left_key, KeyFn right_key,
                                     CoGroupFn group_fn, const mem::StructDesc* out_desc,
                                     OpCost cost, int partitions, const std::string& name) {
  GFLINK_CHECK(job.submitted());
  const int nparts = partitions > 0 ? partitions : default_parallelism_;

  StageStat stat;
  stat.name = name;
  stat.begin = now();
  stat.tasks = static_cast<int>(left->parts.size() + right->parts.size());

  const obs::SpanId stage_span = cluster_.spans().open(
      "stage:" + stat.name, obs::SpanCategory::Control, job.span(), stat.begin, "master/stages",
      0);

  co_await sim_.delay(config_.stage_schedule_overhead);

  // Phase 1: co-partition both sides by key hash (same as join).
  shuffle::ShuffleSession lex(shuffle_, nparts, "cogroup-shuffle", stage_span);
  shuffle::ShuffleSession rex(shuffle_, nparts, "cogroup-shuffle", stage_span);
  sim::WaitGroup wg(sim_);
  auto scatter = [&](const DataHandle& side, const KeyFn& key, shuffle::ShuffleSession& ex) {
    for (const auto& part : side->parts) {
      if (!part.batch) continue;
      wg.add();
      sim_.spawn([](Engine& eng, const MaterializedDataSet::Part& p, const KeyFn& kf,
                    shuffle::ShuffleSession& e, obs::SpanId st_span,
                    sim::WaitGroup& join) -> sim::Co<void> {
        co_await eng.scatter_partition(p, kf, e, st_span);
        join.done();
      }(*this, part, key, ex, stage_span, wg));
    }
  };
  scatter(left, left_key, lex);
  scatter(right, right_key, rex);
  co_await wg.wait();
  co_await lex.finish();
  co_await rex.finish();
  stat.shuffle_bytes = lex.network_bytes() + rex.network_bytes();

  // Phase 2: per-partition grouping, then one group_fn call per key.
  auto out = std::make_shared<MaterializedDataSet>();
  out->desc = out_desc;
  out->parts.resize(static_cast<std::size_t>(nparts));
  sim::WaitGroup gg(sim_);
  for (int t = 0; t < nparts; ++t) {
    gg.add();
    sim_.spawn([](Engine& eng, shuffle::ShuffleSession& le, shuffle::ShuffleSession& re,
                  MaterializedDataSet& result, const KeyFn& lk, const KeyFn& rk,
                  const CoGroupFn& gf, OpCost c, int t_index, obs::SpanId st_span,
                  sim::WaitGroup& join) -> sim::Co<void> {
      const int node = eng.owner_of_partition(t_index);
      obs::SpanStore& sp = eng.cluster().spans();
      const obs::SpanId task_span =
          sp.open("task:cogroup", obs::SpanCategory::Control, st_span, eng.now(),
                  "node" + std::to_string(node) + "/tasks", node);
      Worker& w = eng.worker_state(node);
      const sim::Time slot_wait = eng.now();
      co_await w.slots().acquire();
      if (eng.now() > slot_wait) {
        sp.record("wait:slot", obs::SpanCategory::Wait, task_span, slot_wait, eng.now(),
                  "node" + std::to_string(node) + "/slots", node);
      }
      std::vector<mem::RecordBatch> lbs =
          co_await le.take(t_index, node, {task_span, obs::SpanCategory::Spill});
      std::vector<mem::RecordBatch> rbs =
          co_await re.take(t_index, node, {task_span, obs::SpanCategory::Spill});
      std::map<std::uint64_t, std::pair<std::vector<const std::byte*>,
                                        std::vector<const std::byte*>>>
          groups;
      std::uint64_t n = 0;
      for (const auto& b : lbs) {
        for (std::size_t i = 0; i < b.count(); ++i) {
          groups[lk(b.record_ptr(i))].first.push_back(b.record_ptr(i));
          ++n;
        }
      }
      for (const auto& b : rbs) {
        for (std::size_t i = 0; i < b.count(); ++i) {
          groups[rk(b.record_ptr(i))].second.push_back(b.record_ptr(i));
          ++n;
        }
      }
      auto merged = std::make_shared<mem::RecordBatch>(result.desc);
      Emitter emitter(*merged);
      for (const auto& [key, group] : groups) {
        gf(group.first, group.second, emitter);
      }
      co_await eng.sim().delay(static_cast<sim::Duration>(n + emitter.emitted()) *
                               eng.cluster().node(node).record_time(c.flops, c.bytes));
      result.parts[static_cast<std::size_t>(t_index)] = {node, std::move(merged)};
      w.slots().release();
      sp.close(task_span, eng.now());
      join.done();
    }(*this, lex, rex, *out, left_key, right_key, group_fn, cost, t, stage_span, gg));
  }
  co_await gg.wait();

  stat.end = now();
  stat.records_out = out->total_records();
  cluster_.spans().close(stage_span, stat.end);
  job.stats().shuffle_bytes += stat.shuffle_bytes;
  note_stage(stat);
  job.stats().stages.push_back(std::move(stat));
  co_return out;
}

DataHandle Engine::union_of(const DataHandle& a, const DataHandle& b) const {
  GFLINK_CHECK_MSG(a->desc == b->desc, "union of different record types");
  auto out = std::make_shared<MaterializedDataSet>();
  out->desc = a->desc;
  out->parts = a->parts;
  out->parts.insert(out->parts.end(), b->parts.begin(), b->parts.end());
  return out;
}

sim::Co<void> Engine::broadcast(Job& job, std::uint64_t bytes) {
  // Flink distributes broadcast variables worker-to-worker (a binomial
  // tree), not through the master's single NIC: each round every holder
  // forwards to one new node, so latency is ceil(log2(W+1)) transfer times.
  (void)job;
  if (config_.cluster.colocated_master) co_return;
  const net::NicSpec& nic = config_.cluster.worker.nic;
  const int rounds = tree_rounds(num_workers());
  const sim::Duration per_round = nic.latency * 2 + sim::transfer_time(bytes, nic.bandwidth);
  cluster_.metrics().inc("net.bytes",
                         static_cast<double>(bytes) * static_cast<double>(num_workers()));
  co_await sim_.delay(static_cast<sim::Duration>(rounds) * per_round);
}

sim::Co<void> Engine::gather(Job& job, std::uint64_t bytes_per_worker) {
  // Mirror of broadcast: a binomial combining tree toward the master.
  (void)job;
  if (config_.cluster.colocated_master) co_return;
  const net::NicSpec& nic = config_.cluster.worker.nic;
  const int rounds = tree_rounds(num_workers());
  const sim::Duration per_round =
      nic.latency * 2 + sim::transfer_time(bytes_per_worker, nic.bandwidth);
  cluster_.metrics().inc("net.bytes", static_cast<double>(bytes_per_worker) *
                                          static_cast<double>(num_workers()));
  co_await sim_.delay(static_cast<sim::Duration>(rounds) * per_round);
}

}  // namespace gflink::dataflow
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
