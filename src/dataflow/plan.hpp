// Logical plan nodes. A plan is a linear chain of operators rooted at a
// source; actions (collect/count/materialize/write) hand the chain to the
// engine, which splits it into stages at shuffle / partition-op boundaries.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/types.hpp"

namespace gflink::dataflow {

enum class OpKind : std::uint8_t {
  Source,
  Record,          // map / flatMap / filter (chained within a stage)
  MapPartition,    // CPU block processing (ends a stage)
  AsyncPartition,  // GPU / external block processing (ends a stage)
  ReduceByKey,     // local combine + hash shuffle + merge (ends a stage)
  GroupReduce,     // hash shuffle of raw records + per-group function
  Rebalance,       // round-robin repartition (ends a stage)
};

/// How a source obtains its records.
struct SourceSpec {
  const mem::StructDesc* desc = nullptr;
  int partitions = 0;  // 0 = engine default parallelism
  GeneratorFn generate;
  /// CPU cost of producing one record (parsing / deserialization).
  OpCost parse_cost{8.0, 0.0};
  /// Optional DFS backing: reading the file is charged before generation.
  std::string dfs_path;
  /// Optional in-memory backing: reuse a materialized dataset (no I/O).
  DataHandle handle;
};

struct OpNode {
  OpKind kind = OpKind::Record;
  std::string name;
  const mem::StructDesc* out_desc = nullptr;
  OpCost cost;
  std::shared_ptr<OpNode> input;  // null for sources

  // Kind-specific payloads (only the relevant ones are set).
  SourceSpec source;           // Source
  RecordFn record_fn;          // Record
  PartitionFn partition_fn;    // MapPartition
  AsyncPartitionFn async_fn;   // AsyncPartition
  KeyFn key_fn;                // ReduceByKey / GroupReduce
  CombineFn combine_fn;        // ReduceByKey
  GroupFn group_fn;            // GroupReduce
  /// Output size hint for partition ops: expected output records per input
  /// record (used to pre-reserve; purely an optimization hint).
  double output_ratio = 1.0;
};

using PlanNodePtr = std::shared_ptr<OpNode>;

/// The chain from source to sink, in execution order.
inline std::vector<const OpNode*> linearize(const OpNode* sink) {
  std::vector<const OpNode*> chain;
  for (const OpNode* n = sink; n != nullptr; n = n->input.get()) chain.push_back(n);
  std::reverse(chain.begin(), chain.end());
  GFLINK_CHECK_MSG(!chain.empty() && chain.front()->kind == OpKind::Source,
                   "plan must start at a source");
  return chain;
}

/// One executable stage: a run of record ops optionally terminated by a
/// stage-breaking operator.
struct Stage {
  std::vector<const OpNode*> record_ops;  // applied in order
  const OpNode* terminal = nullptr;       // MapPartition/Async/Reduce/Rebalance or null
  /// Descriptor of this stage's output records.
  const mem::StructDesc* out_desc = nullptr;
};

/// Split a linearized chain (excluding the source) into stages.
inline std::vector<Stage> split_stages(const std::vector<const OpNode*>& chain) {
  std::vector<Stage> stages;
  Stage current;
  const mem::StructDesc* desc = chain.front()->out_desc;  // source descriptor
  current.out_desc = desc;
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const OpNode* op = chain[i];
    if (op->kind == OpKind::Record) {
      current.record_ops.push_back(op);
      current.out_desc = op->out_desc;
    } else {
      current.terminal = op;
      current.out_desc = op->out_desc;
      stages.push_back(std::move(current));
      current = Stage{};
      current.out_desc = op->out_desc;
    }
  }
  if (!current.record_ops.empty() || stages.empty()) {
    stages.push_back(std::move(current));
  }
  return stages;
}

}  // namespace gflink::dataflow
