// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// Typed DataSet facade — the user-facing API of the engine, mirroring
// Flink's DataSet (and GFlink's GDST once the GPU operators from src/core
// are applied to it).
//
// T must be a trivially-copyable mirror of its GStruct descriptor
// (StructDesc::matches_host_layout<T>() must hold); records then move
// through the engine as raw GStruct bytes with zero serialization — the
// paper's central data-representation idea.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "dataflow/engine.hpp"

namespace gflink::dataflow {

/// Typed emit-collector handed to flatMap user functions.
template <typename U>
class FlatCollector {
 public:
  explicit FlatCollector(Emitter& emitter) : emitter_(&emitter) {}
  void add(const U& record) { emitter_->emit(record); }

 private:
  Emitter* emitter_;
};

template <typename T>
class DataSet {
 public:
  DataSet() = default;
  DataSet(Engine* engine, PlanNodePtr node) : engine_(engine), node_(std::move(node)) {}

  /// A synthetic source: `generate(partition, out)` fills each partition
  /// deterministically. If `dfs_path` names an existing GDFS file, reading
  /// it is charged before generation (locality-aware splits).
  static DataSet from_generator(Engine& engine, const mem::StructDesc* desc, int partitions,
                                std::function<void(int, std::vector<T>&)> generate,
                                OpCost parse_cost = OpCost{8.0, 0.0},
                                std::string dfs_path = {}) {
    auto node = std::make_shared<OpNode>();
    node->kind = OpKind::Source;
    node->name = "source";
    node->out_desc = desc;
    node->source.desc = desc;
    node->source.partitions = partitions;
    node->source.parse_cost = parse_cost;
    node->source.dfs_path = std::move(dfs_path);
    node->source.generate = [generate = std::move(generate)](int part, mem::RecordBatch& out) {
      std::vector<T> rows;
      generate(part, rows);
      for (const T& r : rows) out.append(r);
    };
    return DataSet(&engine, std::move(node));
  }

  /// Wrap an already-materialized distributed dataset (iteration feedback).
  static DataSet from_handle(Engine& engine, DataHandle handle) {
    auto node = std::make_shared<OpNode>();
    node->kind = OpKind::Source;
    node->name = "cached";
    node->out_desc = handle->desc;
    node->source.desc = handle->desc;
    node->source.handle = std::move(handle);
    return DataSet(&engine, std::move(node));
  }

  Engine& engine() const { return *engine_; }
  const PlanNodePtr& node() const { return node_; }
  const mem::StructDesc* desc() const { return node_->out_desc; }

  // ---- Transformations --------------------------------------------------

  template <typename U>
  DataSet<U> map(const mem::StructDesc* out_desc, std::string name, OpCost cost,
                 std::function<U(const T&)> fn) const {
    auto n = record_node(out_desc, std::move(name), cost);
    n->record_fn = [fn = std::move(fn)](const std::byte* rec, Emitter& out) {
      out.emit(fn(*reinterpret_cast<const T*>(rec)));
    };
    return DataSet<U>(engine_, std::move(n));
  }

  template <typename U>
  DataSet<U> flat_map(const mem::StructDesc* out_desc, std::string name, OpCost cost,
                      std::function<void(const T&, FlatCollector<U>&)> fn) const {
    auto n = record_node(out_desc, std::move(name), cost);
    n->record_fn = [fn = std::move(fn)](const std::byte* rec, Emitter& out) {
      FlatCollector<U> collector(out);
      fn(*reinterpret_cast<const T*>(rec), collector);
    };
    return DataSet<U>(engine_, std::move(n));
  }

  DataSet filter(std::string name, OpCost cost, std::function<bool(const T&)> pred) const {
    auto n = record_node(node_->out_desc, std::move(name), cost);
    n->record_fn = [pred = std::move(pred)](const std::byte* rec, Emitter& out) {
      if (pred(*reinterpret_cast<const T*>(rec))) out.emit_raw(rec);
    };
    return DataSet(engine_, std::move(n));
  }

  /// Combine records sharing a key (map-side combine + hash shuffle +
  /// reduce-side merge). `combine` folds the right record into the left.
  DataSet reduce_by_key(std::string name, OpCost cost, std::function<std::uint64_t(const T&)> key,
                        std::function<void(T&, const T&)> combine) const {
    auto n = std::make_shared<OpNode>();
    n->kind = OpKind::ReduceByKey;
    n->name = std::move(name);
    n->out_desc = node_->out_desc;
    n->cost = cost;
    n->input = node_;
    n->key_fn = [key = std::move(key)](const std::byte* rec) {
      return key(*reinterpret_cast<const T*>(rec));
    };
    n->combine_fn = [combine = std::move(combine)](std::byte* acc, const std::byte* rec) {
      combine(*reinterpret_cast<T*>(acc), *reinterpret_cast<const T*>(rec));
    };
    return DataSet(engine_, std::move(n));
  }

  /// General group transformation (Flink's groupReduce): the function sees
  /// every record of one key and may emit any number of records of a new
  /// type. No map-side combine runs (the function need not be associative),
  /// so the full keyed records are shuffled.
  template <typename U>
  DataSet<U> group_reduce(const mem::StructDesc* out_desc, std::string name, OpCost cost,
                          std::function<std::uint64_t(const T&)> key,
                          std::function<void(const std::vector<const T*>&, FlatCollector<U>&)>
                              group_fn) const {
    auto n = std::make_shared<OpNode>();
    n->kind = OpKind::GroupReduce;
    n->name = std::move(name);
    n->out_desc = out_desc;
    n->cost = cost;
    n->input = node_;
    n->key_fn = [key = std::move(key)](const std::byte* rec) {
      return key(*reinterpret_cast<const T*>(rec));
    };
    n->group_fn = [group_fn = std::move(group_fn)](const std::vector<const std::byte*>& group,
                                                   Emitter& out) {
      std::vector<const T*> typed;
      typed.reserve(group.size());
      for (const std::byte* p : group) typed.push_back(reinterpret_cast<const T*>(p));
      FlatCollector<U> collector(out);
      group_fn(typed, collector);
    };
    return DataSet<U>(engine_, std::move(n));
  }

  /// Reduce everything to one record (key = constant).
  DataSet reduce(std::string name, OpCost cost, std::function<void(T&, const T&)> combine) const {
    return reduce_by_key(std::move(name), cost, [](const T&) { return std::uint64_t{0}; },
                         std::move(combine));
  }

  /// CPU block processing of a whole partition.
  template <typename U>
  DataSet<U> map_partition(const mem::StructDesc* out_desc, std::string name, OpCost cost,
                           std::function<void(std::span<const T>, std::vector<U>&)> fn) const {
    auto n = std::make_shared<OpNode>();
    n->kind = OpKind::MapPartition;
    n->name = std::move(name);
    n->out_desc = out_desc;
    n->cost = cost;
    n->input = node_;
    n->partition_fn = [fn = std::move(fn)](const mem::RecordBatch& in, mem::RecordBatch& out) {
      std::span<const T> rows(in.count() ? in.template aos_view<T>() : nullptr, in.count());
      std::vector<U> result;
      fn(rows, result);
      for (const U& r : result) out.append(r);
    };
    return DataSet<U>(engine_, std::move(n));
  }

  /// Asynchronous block processing — the GFlink GPU extension point. The
  /// function receives the task context (whose extension() is the worker's
  /// GpuManager) and must fill `out`.
  template <typename U>
  DataSet<U> async_map_partition(const mem::StructDesc* out_desc, std::string name,
                                 AsyncPartitionFn fn) const {
    auto n = std::make_shared<OpNode>();
    n->kind = OpKind::AsyncPartition;
    n->name = std::move(name);
    n->out_desc = out_desc;
    n->input = node_;
    n->async_fn = std::move(fn);
    return DataSet<U>(engine_, std::move(n));
  }

  /// Keep one record per key (Flink's distinct). The kept record is the
  /// first seen in partition order.
  DataSet distinct(std::string name, OpCost cost,
                   std::function<std::uint64_t(const T&)> key) const {
    return reduce_by_key(std::move(name), cost, std::move(key),
                         [](T&, const T&) { /* keep the first */ });
  }

  /// Deterministic Bernoulli sample: keeps `fraction` of records, selected
  /// by a hash of the record's key (stable across partitionings and runs).
  DataSet sample(std::string name, double fraction,
                 std::function<std::uint64_t(const T&)> key) const {
    GFLINK_CHECK(fraction >= 0.0 && fraction <= 1.0);
    // 2^64-1 is not representable as a double (it rounds to 2^64, whose
    // cast is UB), so saturate explicitly at the top.
    const std::uint64_t threshold =
        fraction >= 1.0 ? ~0ULL : static_cast<std::uint64_t>(fraction * 0x1.0p64);
    return filter(std::move(name), OpCost{8.0, static_cast<double>(node_->out_desc->stride())},
                  [key = std::move(key), threshold](const T& record) {
                    std::uint64_t h = key(record);
                    return sim::splitmix64(h) <= threshold;
                  });
  }

  /// First `n` records (by partition order) gathered to the driver.
  sim::Co<std::vector<T>> take(Job& job, std::size_t n) const {
    // Each partition contributes at most n records; the driver trims.
    auto limited = this->template map_partition<T>(
        node_->out_desc, "take", OpCost{1.0, static_cast<double>(node_->out_desc->stride())},
        [n](std::span<const T> rows, std::vector<T>& out) {
          for (std::size_t i = 0; i < std::min(n, rows.size()); ++i) out.push_back(rows[i]);
        });
    auto rows = co_await limited.collect(job);
    if (rows.size() > n) rows.resize(n);
    co_return rows;
  }

  /// Round-robin repartition.
  DataSet rebalance(std::string name = "rebalance") const {
    auto n = std::make_shared<OpNode>();
    n->kind = OpKind::Rebalance;
    n->name = std::move(name);
    n->out_desc = node_->out_desc;
    n->input = node_;
    return DataSet(engine_, std::move(n));
  }

  // ---- Actions ------------------------------------------------------------

  sim::Co<DataHandle> materialize(Job& job) const {
    return engine_->materialize(job, node_);
  }

  sim::Co<std::vector<T>> collect(Job& job) const {
    auto batch = co_await engine_->collect(job, node_);
    std::vector<T> rows;
    rows.reserve(batch->count());
    if (batch->count() > 0) {
      const T* view = batch->template aos_view<T>();
      rows.assign(view, view + batch->count());
    }
    co_return rows;
  }

  sim::Co<std::uint64_t> count(Job& job) const { return engine_->count(job, node_); }

  sim::Co<void> write_dfs(Job& job, const std::string& path) const {
    return engine_->write_dfs(job, node_, path);
  }

 private:
  PlanNodePtr record_node(const mem::StructDesc* out_desc, std::string name, OpCost cost) const {
    auto n = std::make_shared<OpNode>();
    n->kind = OpKind::Record;
    n->name = std::move(name);
    n->out_desc = out_desc;
    n->cost = cost;
    n->input = node_;
    return n;
  }

  Engine* engine_ = nullptr;
  PlanNodePtr node_;
};

/// Typed coGroup of two materialized datasets: for every key, `group_fn`
/// receives all left and all right records with that key.
template <typename L, typename R, typename O>
sim::Co<DataHandle> co_group(
    Job& job, const DataHandle& left, const DataHandle& right,
    std::function<std::uint64_t(const L&)> left_key,
    std::function<std::uint64_t(const R&)> right_key,
    std::function<void(const std::vector<const L*>&, const std::vector<const R*>&,
                       FlatCollector<O>&)>
        group_fn,
    const mem::StructDesc* out_desc, OpCost cost, int partitions = 0,
    const std::string& name = "coGroup") {
  return job.engine().co_group(
      job, left, right,
      [left_key = std::move(left_key)](const std::byte* rec) {
        return left_key(*reinterpret_cast<const L*>(rec));
      },
      [right_key = std::move(right_key)](const std::byte* rec) {
        return right_key(*reinterpret_cast<const R*>(rec));
      },
      [group_fn = std::move(group_fn)](const std::vector<const std::byte*>& l,
                                       const std::vector<const std::byte*>& r, Emitter& out) {
        std::vector<const L*> lv;
        lv.reserve(l.size());
        for (const std::byte* p : l) lv.push_back(reinterpret_cast<const L*>(p));
        std::vector<const R*> rv;
        rv.reserve(r.size());
        for (const std::byte* p : r) rv.push_back(reinterpret_cast<const R*>(p));
        FlatCollector<O> collector(out);
        group_fn(lv, rv, collector);
      },
      out_desc, cost, partitions, name);
}

/// Hash join of two typed datasets.
template <typename L, typename R, typename O>
sim::Co<DataHandle> join(Job& job, const DataHandle& left, const DataHandle& right,
                         std::function<std::uint64_t(const L&)> left_key,
                         std::function<std::uint64_t(const R&)> right_key,
                         std::function<void(const L&, const R&, FlatCollector<O>&)> join_fn,
                         const mem::StructDesc* out_desc, OpCost cost, int partitions = 0,
                         const std::string& name = "join") {
  return job.engine().join(
      job, left, right,
      [left_key = std::move(left_key)](const std::byte* rec) {
        return left_key(*reinterpret_cast<const L*>(rec));
      },
      [right_key = std::move(right_key)](const std::byte* rec) {
        return right_key(*reinterpret_cast<const R*>(rec));
      },
      [join_fn = std::move(join_fn)](const std::byte* l, const std::byte* r, Emitter& out) {
        FlatCollector<O> collector(out);
        join_fn(*reinterpret_cast<const L*>(l), *reinterpret_cast<const R*>(r), collector);
      },
      out_desc, cost, partitions, name);
}

}  // namespace gflink::dataflow
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
