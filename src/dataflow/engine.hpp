// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// The dataflow engine: an in-memory, master/worker MapReduce runtime that
// stands in for Apache Flink (see DESIGN.md substitution table).
//
// Responsibilities mirrored from Flink:
//  * JobManager on the master: job submission, stage scheduling, barriers;
//  * TaskManager per worker: task slots (one per CPU core by default),
//    paged memory budget, per-record iterator execution of operator chains;
//  * hash shuffles routed through the shuffle::ShuffleService: map-side
//    combine into per-target buckets, block-granular pipelined sends with
//    per-partition credits (backpressure), spill-to-DFS over budget, and
//    retry-with-backoff on injected transfer faults (see src/shuffle);
//  * materialized in-memory datasets that persist across jobs (the
//    "in-memory computing" substrate iterative workloads rely on);
//  * DFS sources/sinks with locality-aware split assignment.
//
// The GFlink GPU layer plugs in through two extension points: the per-node
// `extension` pointer on Worker (a GpuManager) and the AsyncPartition
// operator kind (a GPU-based mapper/reducer submitting GWork).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dataflow/plan.hpp"
#include "dataflow/types.hpp"
#include "dfs/gdfs.hpp"
#include "mem/memory_manager.hpp"
#include "net/cluster.hpp"
#include "shuffle/shuffle_service.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace gflink::dataflow {

class Engine;
class Job;

struct EngineConfig {
  net::ClusterConfig cluster;
  dfs::GdfsConfig dfs;
  /// Task slots per worker; 0 means one per CPU core (Flink's default).
  int slots_per_worker = 0;
  /// Flink-style memory pages (also the GPU block size in GFlink).
  std::size_t page_size = 32 * 1024;
  std::size_t memory_pages_per_worker = 1 << 18;  // 8 GB at 32 KB pages
  /// Client -> JobManager submission (jar upload, plan translation).
  sim::Duration job_submit_overhead = sim::millis(900);
  /// JobManager plan optimization + initial resource assignment.
  sim::Duration job_schedule_overhead = sim::millis(400);
  /// Per-stage scheduling work at the JobManager.
  sim::Duration stage_schedule_overhead = sim::millis(8);
  /// Per-task deployment (serialize task descriptor, RPC to the worker).
  sim::Duration task_deploy_overhead = sim::micros(300);
  /// Time from a worker dying to the JobManager detecting it (heartbeat
  /// interval x missed-beat threshold — Flink's akka.watch defaults).
  sim::Duration failure_detection_delay = sim::millis(500);
  /// The block-exchange layer behind every hash shuffle (pipelining,
  /// credits, spill, retry) — see shuffle::ShuffleConfig.
  shuffle::ShuffleConfig shuffle;
  bool trace = false;
};

/// Thrown inside a task when its worker dies mid-execution; caught by the
/// stage runner, which retries the partition on a healthy worker.
struct TaskFailed {
  int worker = 0;
};

struct StageStat {
  std::string name;
  sim::Time begin = 0;
  sim::Time end = 0;
  int tasks = 0;
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t shuffle_bytes = 0;
};

/// Lifecycle of a job under the JobService. Jobs driven directly (the
/// single-job pattern every test/bench used before the service existed) go
/// Created -> Running -> Finished; the service adds the Queued state while
/// a submission waits for admission, and Cancelled for jobs withdrawn
/// before dispatch.
enum class JobState : std::uint8_t { Created, Queued, Running, Finished, Cancelled };

struct JobStats {
  std::string name;
  /// Cluster-unique id (mirrors Job::id()) — keys everything per-job:
  /// GPU cache regions, trace ids, checkpoint paths.
  std::uint64_t job_id = 0;
  /// Owning tenant ("" = default); set through Job::set_tenant().
  std::string tenant;
  JobState state = JobState::Created;
  sim::Time submitted_at = 0;
  sim::Time running_at = 0;   // submission + scheduling done
  sim::Time finished_at = 0;  // set by Job::finish()
  std::vector<StageStat> stages;
  std::uint64_t io_bytes_read = 0;
  std::uint64_t io_bytes_written = 0;
  std::uint64_t shuffle_bytes = 0;
  // Per-job fault accounting (the engine-wide totals sum these across
  // concurrent jobs; a job must not observe its neighbors' failures).
  std::uint64_t tasks_failed = 0;
  std::uint64_t tasks_retried = 0;

  /// End-to-end latency. Well-defined for every state: 0 until the job
  /// actually finished (a queued or cancelled job has no total, and must
  /// not underflow into a huge unsigned duration downstream).
  sim::Duration total() const {
    return state == JobState::Finished ? finished_at - submitted_at : 0;
  }
};

/// Per-worker runtime state (the TaskManager).
class Worker {
 public:
  Worker(sim::Simulation& sim, int node_id, int slots, std::size_t page_size,
         std::size_t pages)
      : node_id_(node_id), slots_(sim, slots), memory_(sim, page_size, pages) {}

  int node_id() const { return node_id_; }
  sim::Semaphore& slots() { return slots_; }
  mem::MemoryManager& memory() { return memory_; }

  /// Opaque extension installed by the GFlink layer (core::GpuManager).
  void* extension() const { return extension_; }
  void set_extension(void* ext) { extension_ = ext; }

 private:
  int node_id_;
  sim::Semaphore slots_;
  mem::MemoryManager memory_;
  void* extension_ = nullptr;
};

/// What a running task sees: its worker, the engine services, and the
/// GFlink extension point.
class TaskContext {
 public:
  TaskContext(Engine& engine, Job& job, int worker_node, int partition_index,
              obs::SpanId span = 0)
      : engine_(&engine), job_(&job), worker_node_(worker_node),
        partition_index_(partition_index), span_(span) {}

  Engine& engine() { return *engine_; }
  Job& job() { return *job_; }
  int worker() const { return worker_node_; }
  /// Index of the partition this task processes — stable across iterations,
  /// which is what GPU cache keys are derived from.
  int partition() const { return partition_index_; }
  /// The task's causal span — the parent for GPU-side GWork spans.
  obs::SpanId span() const { return span_; }
  sim::Simulation& sim();
  net::Node& node();
  Worker& worker_state();
  void* extension();

 private:
  Engine* engine_;
  Job* job_;
  int worker_node_;
  int partition_index_;
  obs::SpanId span_;
};

/// A submitted job: the accounting scope for Eq. (1)'s terms. Drivers
/// typically submit one job per application and run many actions
/// (iterations) inside it, matching Flink's single-job iterative plans.
class Job {
 public:
  Job(Engine& engine, std::string name);

  /// Client -> master submission + plan scheduling. Must be awaited before
  /// any action.
  sim::Co<void> submit();

  /// Mark the job finished (records the completion time).
  void finish();

  /// Withdraw a job that never ran (JobService admission rejection or
  /// explicit cancel while queued). Illegal on a submitted job.
  void cancel();

  /// Tag the job with its owning tenant (must precede submit(): the tag
  /// flows into the root span and every GWork the job produces).
  void set_tenant(std::string tenant) { stats_.tenant = std::move(tenant); }
  const std::string& tenant() const { return stats_.tenant; }

  bool submitted() const { return submitted_; }
  JobStats& stats() { return stats_; }
  const JobStats& stats() const { return stats_; }
  Engine& engine() { return *engine_; }
  /// Cluster-unique job id (scopes GPU cache regions and trace ids).
  std::uint64_t id() const { return id_; }
  /// Root causal span of the job's trace (0 before submit()).
  obs::SpanId span() const { return span_; }

 private:
  Engine* engine_;
  JobStats stats_;
  std::uint64_t id_;
  obs::SpanId span_ = 0;
  bool submitted_ = false;
};

class Engine {
 public:
  explicit Engine(const EngineConfig& config);

  sim::Simulation& sim() { return sim_; }
  net::Cluster& cluster() { return cluster_; }
  dfs::Gdfs& dfs() { return dfs_; }
  /// The block-exchange service every shuffle in this engine runs through
  /// (also the injection point for shuffle transfer faults in tests).
  shuffle::ShuffleService& shuffle_service() { return shuffle_; }
  const EngineConfig& config() const { return config_; }
  sim::Time now() const { return sim_.now(); }

  int num_workers() const { return cluster_.num_workers(); }
  int default_parallelism() const { return default_parallelism_; }
  Worker& worker_state(int node_id);

  /// The cluster-wide labeled metrics registry (obs subsystem).
  obs::MetricsRegistry& metrics() { return cluster_.metrics(); }
  const obs::MetricsRegistry& metrics() const { return cluster_.metrics(); }

  /// Publish the engine's view of the run into `out`: the cluster registry
  /// (incl. per-pipe totals), stage/shuffle counters and task retries.
  void export_metrics(obs::MetricsRegistry& out) const;

  /// Install the GFlink extension on a worker node.
  void set_extension(int node_id, void* ext) { worker_state(node_id).set_extension(ext); }

  // ---- Fault tolerance ---------------------------------------------------

  /// Inject a worker failure at absolute virtual time `at`. A zero
  /// `down_for` means the node never rejoins; otherwise it comes back (with
  /// empty memory) after that long. Tasks executing there fail once the
  /// JobManager detects the death and are retried on healthy workers.
  void schedule_worker_failure(int worker, sim::Time at, sim::Duration down_for = 0);

  bool worker_alive(int worker) const {
    return alive_.at(static_cast<std::size_t>(worker));
  }
  int alive_workers() const;
  std::uint64_t tasks_failed() const { return tasks_failed_; }
  std::uint64_t tasks_retried() const { return tasks_retried_; }

  /// A modeled-work delay on `worker` that aborts (throws TaskFailed) if
  /// the worker dies while it elapses. All task processing time goes
  /// through this.
  sim::Co<void> work_delay(int worker, sim::Duration d);

  /// Run a driver program to completion (spawns it and drains the event
  /// loop). Returns the final virtual time.
  sim::Time run(std::function<sim::Co<void>(Engine&)> driver);

  // ---- Actions on plans -------------------------------------------------

  /// Execute the plan and leave the result distributed in cluster memory.
  sim::Co<DataHandle> materialize(Job& job, PlanNodePtr sink);

  /// Execute and gather all records to the master (driver).
  sim::Co<std::shared_ptr<mem::RecordBatch>> collect(Job& job, PlanNodePtr sink);

  /// Execute and return only the record count.
  sim::Co<std::uint64_t> count(Job& job, PlanNodePtr sink);

  /// Execute and write the result to a DFS file (replicated).
  sim::Co<void> write_dfs(Job& job, PlanNodePtr sink, const std::string& path);

  // ---- Handle-level operations ------------------------------------------

  /// Repartitioning hash join of two materialized datasets.
  sim::Co<DataHandle> join(Job& job, const DataHandle& left, const DataHandle& right,
                           KeyFn left_key, KeyFn right_key, JoinFn join_fn,
                           const mem::StructDesc* out_desc, OpCost cost, int partitions = 0,
                           const std::string& name = "join");

  /// Group records sharing a key from both sides and hand the full groups
  /// to `group_fn` (Flink's coGroup). Same co-partitioning machinery as
  /// join; the function sees all left then all right records of one key.
  using CoGroupFn = std::function<void(const std::vector<const std::byte*>& left,
                                       const std::vector<const std::byte*>& right,
                                       Emitter& out)>;
  sim::Co<DataHandle> co_group(Job& job, const DataHandle& left, const DataHandle& right,
                               KeyFn left_key, KeyFn right_key, CoGroupFn group_fn,
                               const mem::StructDesc* out_desc, OpCost cost, int partitions = 0,
                               const std::string& name = "coGroup");

  /// Union of two materialized datasets with the same record type: pure
  /// metadata (partitions stay where they are; Flink's union is also free).
  DataHandle union_of(const DataHandle& a, const DataHandle& b) const;

  /// Send `bytes` from the master to every worker (broadcast variables,
  /// e.g. the KMeans centers each superstep).
  sim::Co<void> broadcast(Job& job, std::uint64_t bytes);

  /// Gather `bytes_per_worker` from every worker to the master.
  sim::Co<void> gather(Job& job, std::uint64_t bytes_per_worker);

  /// Persist a driver-side snapshot of iterative state to the DFS
  /// (replicated) — the lightweight-checkpoint hook of Flink's fault
  /// tolerance (paper ref. [9]). Recovery is driver logic: re-read the
  /// last snapshot and resume from its iteration.
  sim::Co<void> checkpoint(Job& job, const std::string& name, std::uint64_t bytes);

 private:
  friend class TaskContext;

  sim::Co<DataHandle> run_plan(Job& job, const PlanNodePtr& sink);
  sim::Co<DataHandle> run_source(Job& job, const SourceSpec& source);
  sim::Co<DataHandle> run_stage(Job& job, const Stage& stage, DataHandle input);

  // One stage task over one partition. If the stage ends in a shuffle, the
  // task's buckets are sent through `exchange`; else it writes its output
  // part directly.
  sim::Co<void> stage_task(Job& job, const Stage& stage, int part_index,
                           const MaterializedDataSet::Part& in,
                           MaterializedDataSet& out, shuffle::ShuffleSession* exchange,
                           int out_partitions, StageStat& stat, obs::SpanId stage_span);

  // Apply the record-op chain; returns the resulting batch and charges CPU.
  sim::Co<std::shared_ptr<mem::RecordBatch>> apply_record_ops(
      Job& job, const Stage& stage, int worker, std::shared_ptr<mem::RecordBatch> batch);

  // Map side of join/coGroup co-partitioning: bucket one partition by key
  // hash (charging the bucketing CPU) and ship the buckets through
  // `session` — the single copy of the per-bucket send loop.
  sim::Co<void> scatter_partition(const MaterializedDataSet::Part& part, const KeyFn& key,
                                  shuffle::ShuffleSession& session, obs::SpanId stage_span);

  // Local combine of `batch` into per-key accumulators.
  static mem::RecordBatch combine_by_key(const OpNode& reduce, const mem::RecordBatch& batch);

  int owner_of_partition(int index) const { return 1 + index % num_workers(); }

  /// Fold one completed stage's stats into the registry (duration
  /// histogram plus stage/record/shuffle counters).
  void note_stage(const StageStat& stat);

  /// A healthy worker to retry a failed partition on (round-robin from the
  /// failed node). Aborts if the whole cluster is dead.
  int pick_alive_worker(int preferred) const;

  EngineConfig config_;
  sim::Simulation sim_;
  net::Cluster cluster_;
  dfs::Gdfs dfs_;
  shuffle::ShuffleService shuffle_;  // must follow sim_/cluster_/dfs_ (ctor order)
  std::vector<std::unique_ptr<Worker>> workers_;  // index 0 unused (master)
  /// Per-worker `engine.task_busy_ns` counter handles (index 0 unused),
  /// cached at construction so work_delay() pays one atomic add per chunk
  /// instead of a keyed registry lookup. The per-period *delta* of this
  /// counter is the live telemetry plane's straggler signal: a node whose
  /// busy time stays high while its peers go idle is behind.
  std::vector<obs::Counter*> task_busy_ns_;
  int default_parallelism_;
  std::uint64_t next_job_id_ = 1;
  std::vector<bool> alive_;
  std::uint64_t tasks_failed_ = 0;
  std::uint64_t tasks_retried_ = 0;
  friend class Job;
};

}  // namespace gflink::dataflow
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
