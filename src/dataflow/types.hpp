// Common types for the dataflow engine: per-record cost model, the record
// emitter, and the type-erased user-function signatures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "mem/record_batch.hpp"
#include "sim/coro.hpp"

namespace gflink::dataflow {

class TaskContext;

/// CPU cost of applying one operator to one record (roofline inputs; see
/// net::Node::record_time). The iterator-model per-record overhead is added
/// by the node spec, not here.
struct OpCost {
  double flops = 0.0;
  double bytes = 0.0;
};

/// Collects records an operator emits. FlatMap-style operators may emit
/// zero or many records per input.
class Emitter {
 public:
  explicit Emitter(mem::RecordBatch& out) : out_(&out) {}

  /// Emit a raw record laid out per the output descriptor (stride bytes).
  void emit_raw(const void* record) {
    out_->append_raw(record);
    ++count_;
  }

  /// Emit a typed record through the zero-copy path.
  template <typename U>
  void emit(const U& record) {
    out_->append(record);
    ++count_;
  }

  std::uint64_t emitted() const { return count_; }

 private:
  mem::RecordBatch* out_;
  std::uint64_t count_ = 0;
};

/// Record-at-a-time operator: map / flatMap / filter all reduce to this.
using RecordFn = std::function<void(const std::byte* record, Emitter& out)>;

/// Key extraction for shuffles (reduceByKey, join).
using KeyFn = std::function<std::uint64_t(const std::byte* record)>;

/// In-place associative combine: fold `record` into `accumulator`.
/// Both sides use the operator's record descriptor.
using CombineFn = std::function<void(std::byte* accumulator, const std::byte* record)>;

/// General (non-associative) group function: receives every record of one
/// key and emits any number of output records (Flink's groupReduce).
using GroupFn = std::function<void(const std::vector<const std::byte*>& group, Emitter& out)>;

/// Whole-partition operator (block processing on the CPU).
using PartitionFn = std::function<void(const mem::RecordBatch& in, mem::RecordBatch& out)>;

/// Whole-partition asynchronous operator: the extension point the GFlink
/// GPU layer plugs into (a GPU mapper submits GWork and awaits results).
using AsyncPartitionFn = std::function<sim::Co<void>(TaskContext& ctx, const mem::RecordBatch& in,
                                                     mem::RecordBatch& out)>;

/// Deterministic partition generator for synthetic sources.
using GeneratorFn = std::function<void(int partition, mem::RecordBatch& out)>;

/// Join record constructor: build output records from a (left, right) pair.
using JoinFn = std::function<void(const std::byte* left, const std::byte* right, Emitter& out)>;

/// A materialized distributed dataset: partitions pinned to workers.
/// This is what Flink calls an intermediate result; handles staying alive
/// across jobs are the "in-memory computing" the paper builds on.
struct MaterializedDataSet {
  const mem::StructDesc* desc = nullptr;
  struct Part {
    int worker = 0;
    std::shared_ptr<mem::RecordBatch> batch;
  };
  std::vector<Part> parts;

  std::uint64_t total_records() const {
    std::uint64_t n = 0;
    for (const auto& p : parts) n += p.batch ? p.batch->count() : 0;
    return n;
  }
  std::uint64_t total_bytes() const {
    std::uint64_t n = 0;
    for (const auto& p : parts) n += p.batch ? p.batch->byte_size() : 0;
    return n;
  }
};

using DataHandle = std::shared_ptr<MaterializedDataSet>;

}  // namespace gflink::dataflow
