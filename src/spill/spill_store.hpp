// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// The tiered, asynchronously-offloaded spill store (ROADMAP item 4).
//
// DShuffle's core observation (and the GC-vs-serialization paper's
// quantified complaint) is that spill I/O and serde on the producing
// task's critical path kill throughput: the task stalls for a full disk
// or DFS round trip every time the exchange buffer overflows. The
// SpillStore moves that work off the hot path:
//
//  * offload() is an *enqueue*: the producing coroutine hands the block
//    to its node's bounded spill queue and continues immediately. The
//    only way a producer blocks is backpressure — the queue is full —
//    which is measured (spill_producer_stall_ns_total) and spanned.
//  * Dedicated per-node spill workers drain the queue: they compress the
//    block (SpillCodec::Lz models an LZ-class scheme over GStruct's
//    fixed column layouts — deterministic ratio, bandwidth-shaped cost)
//    and write it to the chosen tier. Workers are spawned on demand and
//    exit when the queue drains, so no coroutine frame parks forever.
//  * Blocks land on a memory → local-disk → DFS tier ladder. The tier is
//    chosen at enqueue time (stored size is a deterministic function of
//    the raw size, so capacity can be reserved up front): the memory
//    tier is a raw side buffer beyond the exchange budget; the disk tier
//    pays the node's disk pipes for the *compressed* bytes; the DFS tier
//    is the unbounded backstop (the pre-refactor behaviour). fetch()
//    promotes a re-read disk/DFS block back into the memory tier when
//    room exists, so the second read is a memory hit.
//
// Consistency: fetch() waits for a still-in-flight block to land before
// reading it (write-behind with read-your-writes), so callers never
// observe a torn block. Accounting hooks (`on_landed`) run exactly once,
// on the worker, when the block lands — the single-point-accounting rule
// the shuffle layer's spill-byte counters rely on.
//
// Thread-safety: the store is simulation-plane state (queues, tier
// cursors, block flags), mutated only between suspension points of the
// single simulation thread — same discipline as sim::Tracer and the
// ShuffleSession bucket table. Metrics go through the thread-safe
// registry. Every metric and span emitted here carries a tier
// attribution (gflint rule R6).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dfs/gdfs.hpp"
#include "net/cluster.hpp"
#include "sim/sync.hpp"

namespace gflink::spill {

/// Block compression codec applied by the spill worker before a block
/// hits a storage tier (the memory tier keeps blocks raw — it is a side
/// buffer, not a storage format).
enum class SpillCodec { None, Lz };

/// Stable string keys ("none", "lz") shared by the CLI, the ablation
/// bench and bench/baselines.json.
const char* spill_codec_name(SpillCodec codec);
bool parse_spill_codec(const std::string& text, SpillCodec* out);

/// The tier ladder, cheapest first.
enum class SpillTier { Memory, Disk, Dfs };
inline constexpr std::size_t kSpillTiers = 3;

/// Stable string keys ("memory", "disk", "dfs") used as the `tier` metric
/// label and in span names.
const char* spill_tier_name(SpillTier tier);

struct SpillConfig {
  SpillCodec codec = SpillCodec::Lz;
  /// Spill workers per node: how many tier writes drain concurrently.
  int workers_per_node = 2;
  /// Bounded queue depth per node. A producer whose enqueue finds the
  /// queue full parks until a worker drains a slot (the only producer-
  /// visible stall in the async path).
  std::size_t queue_capacity = 16;
  /// Memory-tier budget per node (raw bytes): spill side buffer beyond
  /// the exchange receiver budget. 0 disables the tier.
  std::uint64_t memory_tier_bytes = 256ULL << 20;
  /// Disk-tier budget per node (stored/compressed bytes). 0 disables.
  std::uint64_t disk_tier_bytes = 4ULL << 30;
  /// Modeled LZ-class codec: stored = max(1, raw * lz_ratio). GStruct's
  /// fixed column layouts make block-wise LZ effective and the ratio
  /// stable across blocks of one dataset.
  double lz_ratio = 0.45;
  /// Codec throughput (bytes/s, unscaled like all bandwidths): the
  /// worker pays raw/compress_bandwidth to compress, the reader pays
  /// raw/decompress_bandwidth to decompress. LZ4-class defaults.
  double compress_bandwidth = 1.8e9;
  double decompress_bandwidth = 4.2e9;
  /// DFS directory for DFS-tier blocks.
  std::string dfs_dir = "/spill/tier";
};

/// One offloaded block. Returned by offload() as a shared handle: the
/// worker and the caller both hold it, so accounting survives either
/// side going away first. Treat as opaque outside src/spill and tests.
struct SpillBlock {
  std::uint64_t id = 0;
  int node = -1;             // owning node (queue, tiers, disk pipes)
  SpillTier tier = SpillTier::Dfs;
  std::uint64_t raw_bytes = 0;
  std::uint64_t stored_bytes = 0;  // post-codec bytes on disk/DFS tiers
  std::string label;               // diagnostic label for pipes/tracer
  std::string dfs_path;            // DFS-tier blocks only
  bool landed = false;
  bool released = false;
  /// The caller's accounting hook; lives on the block (a stable heap
  /// object both sides share) rather than travelling through coroutine
  /// parameters or channel awaiters, so no capturing closure is ever
  /// moved across a suspension boundary. Run once and cleared when the
  /// block lands.
  std::function<void()> on_landed;
  /// Created lazily by the first fetch() that arrives before landing.
  std::unique_ptr<sim::Trigger> land_trigger;
};

using BlockHandle = std::shared_ptr<SpillBlock>;

/// Per-node async spill service: bounded queues, on-demand drain workers,
/// the tier ladder, and the codec. One per ShuffleService (or standalone
/// in tests/benches).
class SpillStore {
 public:
  SpillStore(sim::Simulation& sim, net::Cluster& cluster, dfs::Gdfs& dfs, SpillConfig config);

  const SpillConfig& config() const { return config_; }

  /// Enqueue `raw_bytes` for asynchronous offload at `node`. Picks and
  /// reserves the tier, then hands the block to the node's spill queue —
  /// returns as soon as the block is queued (parking only on a full
  /// queue). `on_landed` runs exactly once, on the worker, after the
  /// block lands on its tier (the caller's single accounting point).
  /// `link` parents the worker-side write span.
  sim::Co<BlockHandle> offload(int node, std::uint64_t raw_bytes, std::string label,
                               obs::SpanLink link, std::function<void()> on_landed = {});

  /// Read a block back at `reader`: waits for the block to land if it is
  /// still in flight (write-behind consistency), pays the tier read plus
  /// decompression, counts the tier hit, and promotes a disk/DFS block
  /// into the memory tier when room exists (so a re-read is a memory
  /// hit). Non-consuming: call release() when the block is done.
  sim::Co<void> fetch(const BlockHandle& block, int reader, obs::SpanLink link = {});

  /// Return the block's tier capacity. Idempotent.
  void release(const BlockHandle& block);

  /// Charge the codec's compression cost for `raw` bytes stored on
  /// `tier` at `node` and emit the codec_* metrics; returns the stored
  /// size. Shared with the synchronous shuffle spill path so the codec
  /// ablation holds the codec constant across sync/async.
  sim::Co<std::uint64_t> compress(int node, std::uint64_t raw, SpillTier tier);
  /// Charge the decompression cost (no-op under SpillCodec::None).
  sim::Co<void> decompress(int node, std::uint64_t raw, SpillTier tier);

  /// Post-codec stored size for `raw` bytes on `tier` (deterministic —
  /// what lets offload() reserve capacity at enqueue time).
  std::uint64_t stored_size(std::uint64_t raw, SpillTier tier) const;

  /// Diagnostics for tests: bytes currently reserved on a tier.
  std::uint64_t tier_used_bytes(int node, SpillTier tier) const;
  /// Diagnostics for tests: blocks queued but not yet picked up.
  std::size_t queued_blocks(int node) const;

 private:
  /// Queue entries are a shared handle plus a POD link. The user-declared
  /// constructor is load-bearing: GCC 12 miscompiles *aggregate* types
  /// with non-trivial members when they cross a coroutine boundary (as a
  /// by-value parameter or a braced temporary inside a co_await
  /// expression, the frame copy is elided but both destructors still
  /// run), corrupting the shared_ptr's refcount. Coroutines additionally
  /// take the fields as separate parameters rather than a QueueItem.
  struct QueueItem {
    QueueItem(BlockHandle b, obs::SpanLink l) : block(std::move(b)), link(l) {}
    BlockHandle block;
    obs::SpanLink link;
  };
  /// Per-node simulation-plane state. The queue is the backpressure
  /// primitive: senders park when it is full.
  struct NodeState {
    explicit NodeState(sim::Simulation& sim, std::size_t capacity) : queue(sim, capacity) {}
    sim::Channel<QueueItem> queue;
    int live_workers = 0;
    std::uint64_t tier_used[kSpillTiers] = {0, 0, 0};
  };

  NodeState& state(int node) { return *nodes_.at(static_cast<std::size_t>(node)); }
  const NodeState& state(int node) const { return *nodes_.at(static_cast<std::size_t>(node)); }
  obs::MetricsRegistry& metrics() { return cluster_->metrics(); }

  /// Pick the cheapest tier with room and reserve the block's footprint
  /// (raw bytes on the memory tier, stored bytes on disk; DFS is the
  /// unbounded backstop).
  SpillTier reserve_tier(int node, std::uint64_t raw_bytes, std::uint64_t* stored_out);

  /// The suspendable half of offload(): the bounded-queue enqueue.
  /// Deliberately a separate coroutine whose parameters are a shared
  /// handle and a POD link — offload() itself stays a plain function so
  /// the caller's std::function hook never crosses a coroutine frame.
  sim::Co<BlockHandle> enqueue(BlockHandle block, obs::SpanLink link);
  /// Ensure a drain worker is running at `node` (up to workers_per_node).
  void ensure_worker(int node);
  /// Drain loop: write queued blocks until the queue is empty, then exit
  /// (no parked-forever coroutine frames; ensure_worker respawns).
  sim::Co<void> worker_loop(int node);
  /// Compress (storage tiers) + write one block to its tier, then mark it
  /// landed, fire waiters and run the accounting hook.
  sim::Co<void> write_block(int node, BlockHandle block, obs::SpanLink link);

  sim::Simulation* sim_;
  net::Cluster* cluster_;
  dfs::Gdfs* dfs_;
  SpillConfig config_;
  std::uint64_t next_block_id_ = 1;
  std::vector<std::unique_ptr<NodeState>> nodes_;  // indexed by node id
};

}  // namespace gflink::spill
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
