// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "spill/spill_store.hpp"

#include <algorithm>

#include "sim/util.hpp"

namespace gflink::spill {

namespace {

std::string spill_lane(int node) { return "node" + std::to_string(node) + "/spill"; }

}  // namespace

const char* spill_codec_name(SpillCodec codec) {
  switch (codec) {
    case SpillCodec::None: return "none";
    case SpillCodec::Lz: return "lz";
  }
  return "unknown";
}

bool parse_spill_codec(const std::string& text, SpillCodec* out) {
  if (text == "none") {
    *out = SpillCodec::None;
  } else if (text == "lz") {
    *out = SpillCodec::Lz;
  } else {
    return false;
  }
  return true;
}

const char* spill_tier_name(SpillTier tier) {
  switch (tier) {
    case SpillTier::Memory: return "memory";
    case SpillTier::Disk: return "disk";
    case SpillTier::Dfs: return "dfs";
  }
  return "unknown";
}

SpillStore::SpillStore(sim::Simulation& sim, net::Cluster& cluster, dfs::Gdfs& dfs,
                       SpillConfig config)
    : sim_(&sim), cluster_(&cluster), dfs_(&dfs), config_(std::move(config)) {
  GFLINK_CHECK(config_.workers_per_node >= 1);
  GFLINK_CHECK(config_.queue_capacity >= 1);
  GFLINK_CHECK(config_.lz_ratio > 0.0 && config_.lz_ratio <= 1.0);
  const std::size_t n = static_cast<std::size_t>(cluster.num_workers()) + 1;
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<NodeState>(sim, config_.queue_capacity));
  }
}

std::uint64_t SpillStore::stored_size(std::uint64_t raw, SpillTier tier) const {
  if (raw == 0) return 0;
  // The memory tier is a raw side buffer, not a storage format: blocks
  // stay uncompressed so a memory hit costs only the copy.
  if (tier == SpillTier::Memory || config_.codec == SpillCodec::None) return raw;
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(raw) * config_.lz_ratio));
}

std::uint64_t SpillStore::tier_used_bytes(int node, SpillTier tier) const {
  return state(node).tier_used[static_cast<std::size_t>(tier)];
}

std::size_t SpillStore::queued_blocks(int node) const { return state(node).queue.size(); }

SpillTier SpillStore::reserve_tier(int node, std::uint64_t raw_bytes,
                                   std::uint64_t* stored_out) {
  NodeState& st = state(node);
  auto used = [&st](SpillTier t) -> std::uint64_t& {
    return st.tier_used[static_cast<std::size_t>(t)];
  };
  if (config_.memory_tier_bytes > 0 &&
      used(SpillTier::Memory) + raw_bytes <= config_.memory_tier_bytes) {
    used(SpillTier::Memory) += raw_bytes;
    *stored_out = raw_bytes;
    return SpillTier::Memory;
  }
  const std::uint64_t disk_stored = stored_size(raw_bytes, SpillTier::Disk);
  if (config_.disk_tier_bytes > 0 &&
      used(SpillTier::Disk) + disk_stored <= config_.disk_tier_bytes) {
    used(SpillTier::Disk) += disk_stored;
    *stored_out = disk_stored;
    return SpillTier::Disk;
  }
  // DFS is the unbounded backstop (the pre-refactor behaviour); usage is
  // tracked for diagnostics only.
  const std::uint64_t dfs_stored = stored_size(raw_bytes, SpillTier::Dfs);
  used(SpillTier::Dfs) += dfs_stored;
  *stored_out = dfs_stored;
  return SpillTier::Dfs;
}

sim::Co<BlockHandle> SpillStore::offload(int node, std::uint64_t raw_bytes, std::string label,
                                         obs::SpanLink link, std::function<void()> on_landed) {
  // Plain function, not a coroutine: the capturing hook is parked on the
  // shared block (a stable heap object) before any suspension machinery
  // gets involved, and only the handle + POD link travel through the
  // enqueue coroutine and the channel awaiter.
  auto block = std::make_shared<SpillBlock>();
  block->id = next_block_id_++;
  block->node = node;
  block->raw_bytes = raw_bytes;
  block->label = std::move(label);
  block->on_landed = std::move(on_landed);
  // The tier is chosen (and its capacity reserved) at enqueue time: the
  // stored size is a deterministic function of the raw size, so there is
  // nothing the worker could learn that would change the choice.
  block->tier = reserve_tier(node, raw_bytes, &block->stored_bytes);
  if (block->tier == SpillTier::Dfs) {
    block->dfs_path = config_.dfs_dir + "/b" + std::to_string(block->id);
  }
  const char* tier = spill_tier_name(block->tier);
  metrics().counter("spill_offload_blocks_total", {{"tier", tier}}).inc();
  metrics().counter("spill_offload_bytes_total", {{"tier", tier}}).inc(
      static_cast<double>(raw_bytes));
  return enqueue(std::move(block), link);
}

sim::Co<BlockHandle> SpillStore::enqueue(BlockHandle block, obs::SpanLink link) {
  const int node = block->node;
  const char* tier = spill_tier_name(block->tier);
  // The enqueue itself: the only producer-visible stall in the async
  // path is this send parking on a full queue (backpressure).
  NodeState& st = state(node);
  const sim::Time enqueue_begin = sim_->now();
  co_await st.queue.send(QueueItem{block, link});
  if (sim_->now() > enqueue_begin) {
    metrics().counter("spill_producer_stalls_total", {{"tier", tier}}).inc();
    metrics().counter("spill_producer_stall_ns_total", {{"tier", tier}}).inc(
        static_cast<double>(sim_->now() - enqueue_begin));
    cluster_->spans().record(std::string("wait:spill_enqueue:") + tier,
                             obs::SpanCategory::Wait, link.parent, enqueue_begin, sim_->now(),
                             spill_lane(node), node);
  }
  ensure_worker(node);
  co_return block;
}

void SpillStore::ensure_worker(int node) {
  NodeState& st = state(node);
  if (st.live_workers >= config_.workers_per_node) return;
  if (st.queue.empty() && st.queue.parked_senders() == 0) return;
  ++st.live_workers;
  // gflint: allow(C3): the SpillStore lives for the whole simulation and the
  // worker drains its queue then exits; no frame survives `this`.
  sim_->spawn(worker_loop(node));
}

sim::Co<void> SpillStore::worker_loop(int node) {
  NodeState& st = state(node);
  for (;;) {
    std::optional<QueueItem> item = st.queue.try_recv();
    // Drain-and-exit: an empty queue ends the worker (ensure_worker
    // respawns on the next enqueue), so no coroutine frame parks forever
    // on a recv that never comes.
    if (!item) break;
    co_await write_block(node, std::move(item->block), item->link);
  }
  // No suspension point since the empty check above, so no item can have
  // slipped in between the check and this decrement.
  --st.live_workers;
}

sim::Co<void> SpillStore::write_block(int node, BlockHandle handle, obs::SpanLink link) {
  SpillBlock& block = *handle;
  const char* tier = spill_tier_name(block.tier);
  const sim::Time begin = sim_->now();
  const obs::SpanId span =
      cluster_->spans().open(std::string("spill:write:") + tier, obs::SpanCategory::Spill,
                             link.parent, begin, spill_lane(node), node);
  if (block.tier != SpillTier::Memory) {
    const std::uint64_t stored = co_await compress(node, block.raw_bytes, block.tier);
    GFLINK_CHECK_MSG(stored == block.stored_bytes,
                     "stored size disagrees with the enqueue-time reservation");
  }
  switch (block.tier) {
    case SpillTier::Memory:
      // A memory-tier land is a copy into the node's spill side buffer.
      co_await sim_->delay(
          sim::transfer_time(block.raw_bytes, cluster_->node(node).spec().cpu.mem_bandwidth));
      break;
    case SpillTier::Disk:
      co_await cluster_->node(node).disk_write().transfer(
          block.stored_bytes, block.label, {span, obs::SpanCategory::Spill});
      break;
    case SpillTier::Dfs:
      co_await dfs_->write(node, block.dfs_path, block.stored_bytes,
                           {span, obs::SpanCategory::Spill});
      break;
  }
  cluster_->spans().close(span, sim_->now());
  metrics().counter("spill_landed_blocks_total", {{"tier", tier}}).inc();
  metrics().counter("spill_stored_bytes_total", {{"tier", tier}}).inc(
      static_cast<double>(block.stored_bytes));
  block.landed = true;
  if (block.land_trigger) block.land_trigger->fire();
  // The single accounting point: the caller's hook runs exactly once,
  // here, when the block has landed on its tier. Invoked in place on the
  // shared block and cleared — never moved through a coroutine frame.
  if (block.on_landed) {
    block.on_landed();
    block.on_landed = nullptr;
  }
}

sim::Co<std::uint64_t> SpillStore::compress(int node, std::uint64_t raw, SpillTier t) {
  const std::uint64_t stored = stored_size(raw, t);
  if (config_.codec == SpillCodec::Lz && t != SpillTier::Memory && raw > 0) {
    const char* tier = spill_tier_name(t);
    const sim::Duration cost = sim::transfer_time(raw, config_.compress_bandwidth);
    co_await sim_->delay(cost);
    metrics().counter("codec_compress_ns_total", {{"tier", tier}}).inc(
        static_cast<double>(cost));
    metrics().counter("codec_saved_bytes_total", {{"tier", tier}}).inc(
        static_cast<double>(raw - stored));
  }
  (void)node;
  co_return stored;
}

sim::Co<void> SpillStore::decompress(int node, std::uint64_t raw, SpillTier t) {
  if (config_.codec == SpillCodec::Lz && t != SpillTier::Memory && raw > 0) {
    const char* tier = spill_tier_name(t);
    const sim::Duration cost = sim::transfer_time(raw, config_.decompress_bandwidth);
    co_await sim_->delay(cost);
    metrics().counter("codec_decompress_ns_total", {{"tier", tier}}).inc(
        static_cast<double>(cost));
  }
  (void)node;
}

sim::Co<void> SpillStore::fetch(const BlockHandle& handle, int reader, obs::SpanLink link) {
  GFLINK_CHECK(handle != nullptr);
  SpillBlock& block = *handle;
  if (!block.landed) {
    // Write-behind consistency: a reader that outruns the spill worker
    // waits for the land instead of observing a torn block.
    const char* tier = spill_tier_name(block.tier);
    if (!block.land_trigger) block.land_trigger = std::make_unique<sim::Trigger>(*sim_);
    const sim::Time wait_begin = sim_->now();
    co_await block.land_trigger->wait();
    if (sim_->now() > wait_begin) {
      metrics().counter("spill_fetch_wait_ns_total", {{"tier", tier}}).inc(
          static_cast<double>(sim_->now() - wait_begin));
      cluster_->spans().record(std::string("wait:spill_land:") + tier,
                               obs::SpanCategory::Wait, link.parent, wait_begin, sim_->now(),
                               spill_lane(reader), reader);
    }
  }
  const char* tier = spill_tier_name(block.tier);
  const sim::Time begin = sim_->now();
  const obs::SpanId span =
      cluster_->spans().open(std::string("spill:fetch:") + tier, obs::SpanCategory::Spill,
                             link.parent, begin, spill_lane(reader), reader);
  switch (block.tier) {
    case SpillTier::Memory:
      if (reader != block.node) {
        co_await cluster_->transfer(block.node, reader, block.raw_bytes, block.label,
                                    {span, obs::SpanCategory::Spill});
      } else {
        co_await sim_->delay(sim::transfer_time(
            block.raw_bytes, cluster_->node(reader).spec().cpu.mem_bandwidth));
      }
      break;
    case SpillTier::Disk:
      co_await cluster_->node(block.node).disk_read().transfer(
          block.stored_bytes, block.label, {span, obs::SpanCategory::Spill});
      if (reader != block.node) {
        co_await cluster_->transfer(block.node, reader, block.stored_bytes, block.label,
                                    {span, obs::SpanCategory::Spill});
      }
      co_await decompress(reader, block.raw_bytes, block.tier);
      break;
    case SpillTier::Dfs:
      co_await dfs_->read_file(reader, block.dfs_path, {span, obs::SpanCategory::Spill});
      co_await decompress(reader, block.raw_bytes, block.tier);
      break;
  }
  metrics().counter("spill_tier_hits_total", {{"tier", tier}}).inc();
  cluster_->spans().close(span, sim_->now());
  // Promotion: a re-read disk/DFS block moves back up into the memory
  // tier when room exists, so the next fetch is a memory hit.
  if (block.tier != SpillTier::Memory && !block.released && config_.memory_tier_bytes > 0) {
    NodeState& st = state(block.node);
    auto& mem_used = st.tier_used[static_cast<std::size_t>(SpillTier::Memory)];
    if (mem_used + block.raw_bytes <= config_.memory_tier_bytes) {
      const char* to_tier = spill_tier_name(SpillTier::Memory);
      const sim::Time promote_begin = sim_->now();
      co_await sim_->delay(sim::transfer_time(
          block.raw_bytes, cluster_->node(block.node).spec().cpu.mem_bandwidth));
      cluster_->spans().record(std::string("spill:promote:") + to_tier,
                               obs::SpanCategory::Spill, link.parent, promote_begin,
                               sim_->now(), spill_lane(block.node), block.node);
      auto& old_used = st.tier_used[static_cast<std::size_t>(block.tier)];
      GFLINK_CHECK_MSG(old_used >= block.stored_bytes,
                       "spill tier accounting went negative on promotion");
      old_used -= block.stored_bytes;
      mem_used += block.raw_bytes;
      block.tier = SpillTier::Memory;
      block.stored_bytes = block.raw_bytes;
      metrics().counter("spill_promotions_total", {{"tier", to_tier}}).inc();
    }
  }
}

void SpillStore::release(const BlockHandle& handle) {
  if (!handle || handle->released) return;
  SpillBlock& block = *handle;
  block.released = true;
  NodeState& st = state(block.node);
  auto& used = st.tier_used[static_cast<std::size_t>(block.tier)];
  const std::uint64_t footprint =
      block.tier == SpillTier::Memory ? block.raw_bytes : block.stored_bytes;
  GFLINK_CHECK_MSG(used >= footprint, "spill tier accounting went negative on release");
  used -= footprint;
}

}  // namespace gflink::spill
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
