// Off-heap buffers (the paper's HBuffer / Java direct buffers).
//
// GFlink stores record bytes in off-heap memory so the GPU DMA engine can
// read them at a stable virtual address without JVM garbage-collection
// interference and without the JVM-heap -> native-memory staging copy.
// We model both worlds: off-heap buffers DMA directly; heap buffers (used
// only by the "naive" baseline in the communication ablation) pay an extra
// staging copy at main-memory bandwidth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "sim/util.hpp"

namespace gflink::mem {

/// Simulated virtual address allocator: returns unique, page-aligned,
/// monotonically increasing addresses. Addresses exist so the GPU layer and
/// the cache hash tables can key buffers the way the real system keys
/// direct-buffer addresses.
class AddressSpace {
 public:
  explicit AddressSpace(std::uint64_t base = 0x7f00'0000'0000ULL) : next_(base) {}

  std::uint64_t allocate(std::size_t bytes) {
    constexpr std::uint64_t kAlign = 4096;
    std::uint64_t addr = next_;
    next_ += (bytes + kAlign - 1) / kAlign * kAlign;
    return addr;
  }

 private:
  std::uint64_t next_;
};

/// A contiguous byte buffer with a simulated virtual address.
class HBuffer {
 public:
  HBuffer(std::size_t size, std::uint64_t address, bool off_heap = true)
      : data_(size), address_(address), off_heap_(off_heap) {}

  std::byte* data() { return data_.data(); }
  const std::byte* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }
  std::uint64_t address() const { return address_; }

  /// Off-heap buffers can be DMA'd directly; heap buffers need staging.
  bool off_heap() const { return off_heap_; }

  /// Page-locked (cudaHostRegister'd) buffers are eligible for async copies
  /// and reach full PCIe bandwidth; pageable ones pay a staging penalty.
  bool pinned() const { return pinned_; }
  void set_pinned(bool pinned) { pinned_ = pinned; }

  void fill(std::uint8_t byte) { std::memset(data_.data(), byte, data_.size()); }

  /// Copy helpers with bounds checks.
  void write(std::size_t offset, const void* src, std::size_t n) {
    GFLINK_CHECK(offset + n <= data_.size());
    std::memcpy(data_.data() + offset, src, n);
  }
  void read(std::size_t offset, void* dst, std::size_t n) const {
    GFLINK_CHECK(offset + n <= data_.size());
    std::memcpy(dst, data_.data() + offset, n);
  }

 private:
  std::vector<std::byte> data_;
  std::uint64_t address_;
  bool off_heap_;
  bool pinned_ = false;
};

using HBufferPtr = std::shared_ptr<HBuffer>;

}  // namespace gflink::mem
