// GStruct: the user-defined data layout scheme of GFlink (paper §3.5.1).
//
// A GStruct describes a C-style record: ordered primitive fields (optionally
// small arrays) with an explicit alignment cap (GStruct_4/8/16 in the
// paper's Java API). The descriptor computes byte offsets with C struct
// layout rules so the raw bytes cached in off-heap memory match the layout
// of the struct a CUDA kernel would declare — the property that lets GFlink
// skip serialization/deserialization entirely.
//
// Three physical layouts are supported for a batch of records (§2.1):
//   * AoS — array of structures (default; record-contiguous),
//   * SoA — structure of arrays (column-contiguous; coalesced GPU access),
//   * AoP — array of primitives (each field a fully separate array).
// SoA and AoP differ in *where* the arrays live: SoA keeps all columns in
// one buffer, AoP splits them into independent buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/util.hpp"

namespace gflink::mem {

enum class FieldType : std::uint8_t { U8, I8, U16, I16, U32, I32, U64, I64, F32, F64 };

constexpr std::size_t field_size(FieldType t) {
  switch (t) {
    case FieldType::U8:
    case FieldType::I8:
      return 1;
    case FieldType::U16:
    case FieldType::I16:
      return 2;
    case FieldType::U32:
    case FieldType::I32:
    case FieldType::F32:
      return 4;
    case FieldType::U64:
    case FieldType::I64:
    case FieldType::F64:
      return 8;
  }
  return 0;
}

const char* field_type_name(FieldType t);

struct FieldDesc {
  std::string name;
  FieldType type = FieldType::U8;
  std::size_t array_len = 1;  // >1 makes this field an inline array (SoA style)
  std::size_t offset = 0;     // computed byte offset within the AoS record

  std::size_t byte_size() const { return field_size(type) * array_len; }
};

/// Describes one record type. Build with StructDescBuilder.
class StructDesc {
 public:
  const std::string& name() const { return name_; }
  std::size_t alignment() const { return alignment_; }
  /// Byte size of one record in AoS layout, including tail padding.
  std::size_t stride() const { return stride_; }
  const std::vector<FieldDesc>& fields() const { return fields_; }
  const FieldDesc& field(std::size_t i) const { return fields_.at(i); }
  std::size_t field_count() const { return fields_.size(); }

  /// Index of the field with the given name; aborts if absent.
  std::size_t field_index(const std::string& name) const;

  /// Sum of raw field bytes (no padding) — the payload a kernel touches.
  std::size_t payload_bytes() const;

  /// True if this descriptor's computed offsets and stride equal the host
  /// C++ struct layout of T, given the host offsets recorded at build time.
  /// When true, AoS batches can be reinterpreted as T* directly (the
  /// "no serialization" fast path).
  template <typename T>
  bool matches_host_layout() const {
    if (sizeof(T) != stride_) return false;
    for (const auto& f : fields_) {
      if (f.offset != host_offsets_.at(&f - fields_.data())) return false;
    }
    return true;
  }

 private:
  friend class StructDescBuilder;
  std::string name_;
  std::size_t alignment_ = 8;
  std::size_t stride_ = 0;
  std::vector<FieldDesc> fields_;
  std::vector<std::size_t> host_offsets_;
};

/// Builds a StructDesc with C layout rules capped at the GStruct alignment
/// (GStruct_8 == alignment cap 8, mirroring the paper's example where
/// `Point extends GStruct_8`). Field order is declaration order, like the
/// @StructField(order = n) annotations.
class StructDescBuilder {
 public:
  StructDescBuilder(std::string name, std::size_t alignment_cap = 8);

  /// Append a field. `host_offset` is offsetof(T, field) in the mirror C++
  /// struct; pass SIZE_MAX when there is no host mirror.
  StructDescBuilder& field(std::string name, FieldType type, std::size_t array_len = 1,
                           std::size_t host_offset = static_cast<std::size_t>(-1));

  StructDesc build() const;

 private:
  std::string name_;
  std::size_t alignment_cap_;
  std::vector<FieldDesc> fields_;
  std::vector<std::size_t> host_offsets_;
};

enum class Layout : std::uint8_t { AoS, SoA, AoP };

const char* layout_name(Layout l);

namespace detail {

/// Backing check of GSTRUCT_MIRROR_CHECK: runs during static
/// initialization and aborts loudly (before any test or workload executes)
/// when the descriptor disagrees with the host mirror struct's layout.
template <typename T>
bool check_mirror(const StructDesc& (*desc_fn)(), const char* what) {
  const StructDesc& d = desc_fn();
  GFLINK_CHECK_MSG(d.matches_host_layout<T>(),
                   std::string("GStruct mirror/descriptor layout mismatch: ") + what);
  return true;
}

}  // namespace detail

}  // namespace gflink::mem

/// Declares, at namespace scope of a .cpp file, that mirror struct `T` and
/// descriptor accessor `desc_fn` (a `const StructDesc& (*)()`) must agree:
///  * compile time — T must be standard-layout and trivially copyable (the
///    preconditions for reinterpreting raw GStruct bytes as T);
///  * static-initialization time — the descriptor's computed offsets and
///    stride must equal the host layout (matches_host_layout<T>).
/// Every workload translation unit that reinterprets batch bytes as a
/// mirror struct must carry one of these per (T, desc) pair; tools/gflint.py
/// enforces that (rule R4). The anonymous namespace keeps the check's
/// linkage TU-local, so the same pair may be checked in several files.
#define GSTRUCT_MIRROR_CHECK(T, desc_fn)                                                     \
  static_assert(std::is_standard_layout_v<T>, #T " must be standard-layout");                \
  static_assert(std::is_trivially_copyable_v<T>, #T " must be trivially copyable");          \
  namespace {                                                                                \
  [[maybe_unused]] const bool gflink_mirror_check_##T =                                      \
      ::gflink::mem::detail::check_mirror<T>(&desc_fn, #T " vs " #desc_fn "()");             \
  }                                                                                          \
  static_assert(true, "require a trailing semicolon")
