#include "mem/gstruct.hpp"

#include <algorithm>

namespace gflink::mem {

const char* field_type_name(FieldType t) {
  switch (t) {
    case FieldType::U8: return "u8";
    case FieldType::I8: return "i8";
    case FieldType::U16: return "u16";
    case FieldType::I16: return "i16";
    case FieldType::U32: return "u32";
    case FieldType::I32: return "i32";
    case FieldType::U64: return "u64";
    case FieldType::I64: return "i64";
    case FieldType::F32: return "f32";
    case FieldType::F64: return "f64";
  }
  return "?";
}

const char* layout_name(Layout l) {
  switch (l) {
    case Layout::AoS: return "AoS";
    case Layout::SoA: return "SoA";
    case Layout::AoP: return "AoP";
  }
  return "?";
}

std::size_t StructDesc::field_index(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  GFLINK_CHECK_MSG(false, "no such field: " + name);
}

std::size_t StructDesc::payload_bytes() const {
  std::size_t total = 0;
  for (const auto& f : fields_) total += f.byte_size();
  return total;
}

StructDescBuilder::StructDescBuilder(std::string name, std::size_t alignment_cap)
    : name_(std::move(name)), alignment_cap_(alignment_cap) {
  GFLINK_CHECK_MSG(alignment_cap == 1 || alignment_cap == 2 || alignment_cap == 4 ||
                       alignment_cap == 8 || alignment_cap == 16,
                   "GStruct alignment must be a power of two in [1,16]");
}

StructDescBuilder& StructDescBuilder::field(std::string name, FieldType type,
                                            std::size_t array_len, std::size_t host_offset) {
  GFLINK_CHECK(array_len >= 1);
  FieldDesc f;
  f.name = std::move(name);
  f.type = type;
  f.array_len = array_len;
  fields_.push_back(std::move(f));
  host_offsets_.push_back(host_offset);
  return *this;
}

namespace {
std::size_t align_up(std::size_t x, std::size_t a) { return (x + a - 1) / a * a; }
}  // namespace

StructDesc StructDescBuilder::build() const {
  GFLINK_CHECK_MSG(!fields_.empty(), "GStruct needs at least one field");
  StructDesc d;
  d.name_ = name_;
  d.alignment_ = alignment_cap_;
  d.fields_ = fields_;
  d.host_offsets_ = host_offsets_;

  std::size_t offset = 0;
  std::size_t max_align = 1;
  for (auto& f : d.fields_) {
    // C layout: each field aligns to min(natural alignment, pack cap).
    std::size_t natural = field_size(f.type);
    std::size_t align = std::min(natural, alignment_cap_);
    max_align = std::max(max_align, align);
    offset = align_up(offset, align);
    f.offset = offset;
    offset += f.byte_size();
  }
  d.stride_ = align_up(offset, max_align);
  return d;
}

}  // namespace gflink::mem
