#include "mem/record_batch.hpp"

namespace gflink::mem {

RecordBatch::RecordBatch(const StructDesc* desc) : desc_(desc), layout_(Layout::AoS) {
  GFLINK_CHECK(desc != nullptr);
}

RecordBatch::RecordBatch(const StructDesc* desc, std::size_t count, Layout layout)
    : desc_(desc), layout_(layout), count_(count) {
  GFLINK_CHECK(desc != nullptr);
  switch (layout) {
    case Layout::AoS:
      bytes_.assign(count * desc_->stride(), std::byte{0});
      break;
    case Layout::SoA: {
      std::size_t offset = 0;
      column_offsets_.reserve(desc_->field_count());
      for (const auto& f : desc_->fields()) {
        column_offsets_.push_back(offset);
        offset += f.byte_size() * count;
      }
      bytes_.assign(offset, std::byte{0});
      break;
    }
    case Layout::AoP:
      field_bytes_.reserve(desc_->field_count());
      for (const auto& f : desc_->fields()) {
        field_bytes_.emplace_back(f.byte_size() * count, std::byte{0});
      }
      break;
  }
}

std::size_t RecordBatch::byte_size() const {
  if (layout_ == Layout::AoP) {
    std::size_t total = 0;
    for (const auto& fb : field_bytes_) total += fb.size();
    return total;
  }
  return bytes_.size();
}

void RecordBatch::append_raw(const void* record_bytes) {
  GFLINK_CHECK_MSG(layout_ == Layout::AoS, "append requires AoS layout");
  const auto* src = static_cast<const std::byte*>(record_bytes);
  bytes_.insert(bytes_.end(), src, src + desc_->stride());
  ++count_;
}

const std::byte* RecordBatch::record_ptr(std::size_t i) const {
  GFLINK_CHECK(layout_ == Layout::AoS);
  GFLINK_CHECK(i < count_);
  return bytes_.data() + i * desc_->stride();
}

std::byte* RecordBatch::record_ptr(std::size_t i) {
  GFLINK_CHECK(layout_ == Layout::AoS);
  GFLINK_CHECK(i < count_);
  return bytes_.data() + i * desc_->stride();
}

std::size_t RecordBatch::column_offset(std::size_t field) const {
  GFLINK_CHECK(layout_ == Layout::SoA);
  return column_offsets_.at(field);
}

const std::byte* RecordBatch::element_ptr(std::size_t field, std::size_t record,
                                          std::size_t elem, std::size_t value_size) const {
  const FieldDesc& f = desc_->field(field);
  GFLINK_CHECK_MSG(value_size == field_size(f.type), "value type size mismatch");
  GFLINK_CHECK(record < count_);
  GFLINK_CHECK(elem < f.array_len);
  switch (layout_) {
    case Layout::AoS:
      return bytes_.data() + record * desc_->stride() + f.offset + elem * field_size(f.type);
    case Layout::SoA:
      return bytes_.data() + column_offsets_[field] +
             (record * f.array_len + elem) * field_size(f.type);
    case Layout::AoP:
      return field_bytes_[field].data() + (record * f.array_len + elem) * field_size(f.type);
  }
  GFLINK_CHECK(false);
}

RecordBatch RecordBatch::to_layout(Layout target) const {
  if (target == layout_) {
    RecordBatch copy(desc_, count_, target);
    copy.bytes_ = bytes_;
    copy.field_bytes_ = field_bytes_;
    return copy;
  }
  RecordBatch out(desc_, count_, target);
  // Element-wise shuffle through the accessor machinery: correctness first;
  // the simulated cost of a transform is charged by the caller.
  for (std::size_t fi = 0; fi < desc_->field_count(); ++fi) {
    const FieldDesc& f = desc_->field(fi);
    const std::size_t esz = field_size(f.type);
    for (std::size_t r = 0; r < count_; ++r) {
      for (std::size_t e = 0; e < f.array_len; ++e) {
        const std::byte* src = element_ptr(fi, r, e, esz);
        std::byte* dst = out.element_ptr(fi, r, e, esz);
        std::memcpy(dst, src, esz);
      }
    }
  }
  return out;
}

}  // namespace gflink::mem
