// RecordBatch: a block of records in one of the three GStruct layouts.
//
// The dataflow engine processes batches record-at-a-time (Flink's iterator
// model); the GFlink layer ships whole batches to GPUs. Layout transforms
// (AoS <-> SoA <-> AoP) are explicit so the layout ablation bench can
// measure their cost and kernels can declare their preferred layout.
#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

#include "mem/gstruct.hpp"
#include "sim/util.hpp"

namespace gflink::mem {

class RecordBatch {
 public:
  /// An empty AoS batch that can grow by append.
  explicit RecordBatch(const StructDesc* desc);

  /// A zero-filled batch with `count` records in the given layout.
  RecordBatch(const StructDesc* desc, std::size_t count, Layout layout);

  const StructDesc& desc() const { return *desc_; }
  Layout layout() const { return layout_; }
  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Total bytes of the batch payload (what a PCIe transfer would move).
  std::size_t byte_size() const;

  /// Append one record given its AoS-layout bytes (desc().stride() long).
  /// Only valid for AoS batches.
  void append_raw(const void* record_bytes);

  /// Pointer to record i (AoS only).
  const std::byte* record_ptr(std::size_t i) const;
  std::byte* record_ptr(std::size_t i);

  /// Typed element access in any layout. V must match the field's primitive
  /// size. `elem` indexes into array fields.
  template <typename V>
  V get(std::size_t field, std::size_t record, std::size_t elem = 0) const {
    V v;
    std::memcpy(&v, element_ptr(field, record, elem, sizeof(V)), sizeof(V));
    return v;
  }
  template <typename V>
  void set(std::size_t field, std::size_t record, V value, std::size_t elem = 0) {
    std::memcpy(element_ptr(field, record, elem, sizeof(V)), &value, sizeof(V));
  }

  /// Reinterpret an AoS batch as T records; requires the descriptor to
  /// match T's host layout (the zero-copy path).
  template <typename T>
  const T* aos_view() const {
    GFLINK_CHECK(layout_ == Layout::AoS);
    GFLINK_CHECK_MSG(desc_->matches_host_layout<T>(), "descriptor does not match host layout");
    return reinterpret_cast<const T*>(bytes_.data());
  }
  template <typename T>
  T* aos_view() {
    GFLINK_CHECK(layout_ == Layout::AoS);
    GFLINK_CHECK_MSG(desc_->matches_host_layout<T>(), "descriptor does not match host layout");
    return reinterpret_cast<T*>(bytes_.data());
  }

  /// Append a typed record through the zero-copy path.
  template <typename T>
  void append(const T& record) {
    GFLINK_CHECK_MSG(desc_->matches_host_layout<T>(), "descriptor does not match host layout");
    append_raw(&record);
  }

  /// Convert to another layout (returns a new batch; self if same layout).
  RecordBatch to_layout(Layout target) const;

  /// Raw backing bytes. AoS/SoA: one contiguous buffer. For AoP use
  /// field_bytes().
  const std::vector<std::byte>& bytes() const { return bytes_; }
  std::vector<std::byte>& bytes() { return bytes_; }

  /// AoP per-field arrays.
  const std::vector<std::vector<std::byte>>& field_bytes() const { return field_bytes_; }

  /// Start offset of field f's column within bytes() (SoA only).
  std::size_t column_offset(std::size_t field) const;

 private:
  const std::byte* element_ptr(std::size_t field, std::size_t record, std::size_t elem,
                               std::size_t value_size) const;
  std::byte* element_ptr(std::size_t field, std::size_t record, std::size_t elem,
                         std::size_t value_size) {
    return const_cast<std::byte*>(
        static_cast<const RecordBatch*>(this)->element_ptr(field, record, elem, value_size));
  }

  const StructDesc* desc_;
  Layout layout_;
  std::size_t count_ = 0;
  std::vector<std::byte> bytes_;                   // AoS or SoA storage
  std::vector<std::size_t> column_offsets_;        // SoA only
  std::vector<std::vector<std::byte>> field_bytes_;  // AoP only
};

}  // namespace gflink::mem
