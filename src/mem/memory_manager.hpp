// Flink-style paged memory management for one worker.
//
// Flink manages its memory as fixed-size pages ("memory segments"); GFlink
// inherits this and additionally sizes GPU blocks to one page so that a
// block can be DMA'd without straddling page boundaries (paper §5.1). The
// page budget gives natural backpressure: tasks that want more memory wait
// until previous batches are released.
#pragma once

#include <cstddef>

#include "mem/buffer.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace gflink::mem {

class MemoryManager {
 public:
  static constexpr std::size_t kDefaultPageSize = 32 * 1024;

  MemoryManager(sim::Simulation& sim, std::size_t page_size, std::size_t total_pages)
      : sim_(&sim), page_size_(page_size), total_pages_(total_pages), pages_(sim, total_pages) {}

  std::size_t page_size() const { return page_size_; }
  std::size_t total_pages() const { return total_pages_; }
  std::size_t pages_available() const { return static_cast<std::size_t>(pages_.available()); }

  std::size_t pages_for(std::size_t bytes) const {
    return (bytes + page_size_ - 1) / page_size_;
  }

  /// Allocate an off-heap buffer, waiting for page budget if necessary.
  /// The buffer returns its pages to the pool when the last reference drops.
  sim::Co<HBufferPtr> allocate(std::size_t bytes, bool off_heap = true) {
    const std::size_t pages = pages_for(bytes);
    co_await pages_.acquire(static_cast<std::int64_t>(pages));
    co_return wrap(bytes, pages, off_heap);
  }

  /// Non-blocking allocation: nullptr if the budget does not cover it now.
  HBufferPtr try_allocate(std::size_t bytes, bool off_heap = true) {
    const std::size_t pages = pages_for(bytes);
    if (!pages_.try_acquire(static_cast<std::int64_t>(pages))) return nullptr;
    return wrap(bytes, pages, off_heap);
  }

  /// Allocation that ignores the page budget — used for tiny metadata
  /// buffers where modelling backpressure adds nothing.
  HBufferPtr allocate_unbudgeted(std::size_t bytes, bool off_heap = true) {
    auto buf = std::make_shared<HBuffer>(bytes, addresses_.allocate(bytes), off_heap);
    if (off_heap) buf->set_pinned(true);
    return buf;
  }

 private:
  HBufferPtr wrap(std::size_t bytes, std::size_t pages, bool off_heap) {
    auto* raw = new HBuffer(bytes, addresses_.allocate(bytes), off_heap);
    // Off-heap segments are allocated page-locked (Flink's off-heap memory
    // is malloc'd outside the GC heap; GFlink registers it with the driver
    // at allocation so DMA always runs at full PCIe bandwidth instead of
    // paying the pageable-copy penalty).
    if (off_heap) raw->set_pinned(true);
    // Custom deleter returns the page budget; MemoryManager must outlive
    // all buffers it vends (owned by the worker, which owns the tasks).
    return HBufferPtr(raw, [this, pages](HBuffer* p) {
      delete p;
      pages_.release(static_cast<std::int64_t>(pages));
    });
  }

  sim::Simulation* sim_;
  std::size_t page_size_;
  std::size_t total_pages_;
  sim::Semaphore pages_;
  AddressSpace addresses_;
};

}  // namespace gflink::mem
