#include "obs/metrics.hpp"

#include "sim/util.hpp"

namespace gflink::obs {

std::string MetricId::to_string() const {
  if (labels.empty()) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + v + "\"";
  }
  out += "}";
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  core::MutexLock lock(mu_);
  // Map nodes are stable, so the reference stays valid after unlock; the
  // Counter itself is atomic, so callers may inc() without the registry lock.
  return counters_[MetricId{name, std::move(labels)}];
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  core::MutexLock lock(mu_);
  return gauges_[MetricId{name, std::move(labels)}];
}

sim::Histogram& MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                           std::size_t buckets, Labels labels) {
  core::MutexLock lock(mu_);
  MetricId id{name, std::move(labels)};
  auto it = histograms_.find(id);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::move(id), sim::Histogram(lo, hi, buckets)).first;
  } else {
    // Re-registration with a different layout would silently hand back a
    // histogram whose buckets mean something else — fail loudly instead.
    // (Histogram::buckets() counts the under/overflow slots, hence + 2.)
    GFLINK_CHECK_MSG(it->second.lo() == lo && it->second.hi() == hi &&
                         it->second.buckets() == buckets + 2,
                     "MetricsRegistry::histogram re-registered with a different "
                     "lo/hi/buckets layout");
  }
  return it->second;
}

double MetricsRegistry::counter_value(const std::string& name, const Labels& labels) const {
  core::MutexLock lock(mu_);
  auto it = counters_.find(MetricId{name, labels});
  return it == counters_.end() ? 0.0 : it->second.value();
}

double MetricsRegistry::gauge_value(const std::string& name, const Labels& labels) const {
  core::MutexLock lock(mu_);
  auto it = gauges_.find(MetricId{name, labels});
  return it == gauges_.end() ? 0.0 : it->second.value();
}

double MetricsRegistry::counter_sum(const std::string& name) const {
  core::MutexLock lock(mu_);
  double total = 0.0;
  // Counters with one name sort adjacently (name is the major key).
  for (auto it = counters_.lower_bound(MetricId{name, {}});
       it != counters_.end() && it->first.name == name; ++it) {
    total += it->second.value();
  }
  return total;
}

const sim::Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                      const Labels& labels) const {
  core::MutexLock lock(mu_);
  auto it = histograms_.find(MetricId{name, labels});
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  if (&other == this) return;
  // Never hold both registries' locks at once: mu_ is a leaf lock, and two
  // concurrent merges in opposite directions would deadlock on the inverted
  // pair (gflint L1). Snapshot `other` under its lock alone, release, then
  // fold the copies under ours.
  std::map<MetricId, Counter> counters;
  std::map<MetricId, Gauge> gauges;
  std::map<MetricId, sim::Histogram> histograms;
  {
    core::MutexLock theirs(other.mu_);
    counters = other.counters_;
    gauges = other.gauges_;
    histograms = other.histograms_;
  }
  core::MutexLock self(mu_);
  for (const auto& [id, c] : counters) counters_[id].inc(c.value());
  for (const auto& [id, g] : gauges) gauges_[id].set(g.value());
  for (const auto& [id, h] : histograms) {
    auto it = histograms_.find(id);
    if (it == histograms_.end()) {
      histograms_.emplace(id, h);
    } else {
      it->second.merge(h);
    }
  }
}

Json MetricsRegistry::to_json() const {
  core::MutexLock lock(mu_);
  Json root = Json::object();
  Json counters = Json::array();
  for (const auto& [id, c] : counters_) {
    Json entry = Json::object();
    entry["name"] = id.name;
    Json labels = Json::object();
    for (const auto& [k, v] : id.labels) labels[k] = v;
    entry["labels"] = std::move(labels);
    entry["value"] = c.value();
    counters.push_back(std::move(entry));
  }
  root["counters"] = std::move(counters);

  Json gauges = Json::array();
  for (const auto& [id, g] : gauges_) {
    Json entry = Json::object();
    entry["name"] = id.name;
    Json labels = Json::object();
    for (const auto& [k, v] : id.labels) labels[k] = v;
    entry["labels"] = std::move(labels);
    entry["value"] = g.value();
    gauges.push_back(std::move(entry));
  }
  root["gauges"] = std::move(gauges);

  Json histograms = Json::array();
  for (const auto& [id, h] : histograms_) {
    Json entry = Json::object();
    entry["name"] = id.name;
    Json labels = Json::object();
    for (const auto& [k, v] : id.labels) labels[k] = v;
    entry["labels"] = std::move(labels);
    const sim::Summary& s = h.summary();
    entry["count"] = s.count();
    entry["sum"] = s.sum();
    entry["mean"] = s.mean();
    entry["min"] = s.min();
    entry["max"] = s.max();
    entry["p50"] = h.quantile(0.50);
    entry["p95"] = h.quantile(0.95);
    entry["p99"] = h.quantile(0.99);
    histograms.push_back(std::move(entry));
  }
  root["histograms"] = std::move(histograms);
  return root;
}

void MetricsRegistry::clear() {
  core::MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace gflink::obs
