// Machine-readable run reports: one JSON document per bench/sim run.
//
// A RunReport collects the run's configuration, wall and virtual time, a
// metrics snapshot and per-lane utilization rollups, and serializes them
// as the `BENCH_<name>.json` documents that populate the perf trajectory.
#pragma once

#include <map>
#include <string>

#include "sim/time.hpp"
#include "sim/trace.hpp"

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace gflink::obs {

struct RunReport {
  std::string name;                // e.g. "fig5_overview"
  Json config = Json::object();    // free-form run configuration
  double wall_seconds = 0.0;       // host wall-clock of the whole run
  sim::Time virtual_ns = 0;        // simulated time (summed across cases)
  MetricsRegistry metrics;         // accumulated metric snapshot
  std::map<std::string, LaneUtilization> lanes;  // from the last traced run
  Json critical_path;              // CriticalPath::to_json(); Null when untraced
  Json stragglers;                 // array of Straggler::to_json(); Null when untraced
  /// Per-tenant fairness section (schema v3): filled from
  /// service::JobService::fairness_json() on multi-tenant runs, Null
  /// otherwise (single-tenant reports simply omit the key).
  Json tenants;

  /// Record one configuration entry (string/number/bool via Json ctors).
  void set_config(const std::string& key, Json value) { config[key] = std::move(value); }

  /// Capture per-lane utilization rollups from a tracer.
  void capture_lanes(const sim::Tracer& tracer, sim::Time horizon = 0) {
    lanes = lane_utilization(tracer, horizon);
  }

  /// Run the DAG analyses over a retaining span store: fills the
  /// critical_path and stragglers sections and the matching trace_* gauges.
  void capture_spans(const SpanStore& spans);

  Json to_json() const;

  /// Write the pretty-printed JSON document; false on I/O failure.
  bool write(const std::string& path) const;
};

/// Derive the headline GFlink ratios from the raw counters and make sure
/// the keys every report is expected to carry exist even when a run never
/// touched the GPU layer: gpu_stage_busy_ns{stage=h2d|kernel|d2h}, the
/// cache_hit_ratio and locality_hit_ratio gauges.
void add_derived_gflink_metrics(MetricsRegistry& m);

}  // namespace gflink::obs
