// The unified metrics registry of the observability subsystem.
//
// Components register labeled counters, gauges and histograms by name and
// hold on to the returned handle (node-stable across inserts), so the hot
// path is a single pointer write. The registry snapshots to JSON for run
// reports and merges across runs (bench binaries accumulate one registry
// over many simulated testbeds).
//
// Conventions:
//  * counters are monotonically increasing totals, named `*_total` or with
//    a unit suffix (`*_ns`, `*_bytes`);
//  * gauges are last-write-wins instantaneous values (occupancy, ratios);
//  * histograms are sim::Histogram (fixed linear buckets + under/overflow)
//    reported with p50/p95/p99.
#pragma once

#include <map>
#include <string>
#include <utility>

#include "sim/stats.hpp"

#include "obs/json.hpp"

namespace gflink::obs {

/// Metric labels, e.g. {{"gpu", "node1.gpu0"}, {"stage", "h2d"}}.
/// std::map keeps the key canonical regardless of insertion order.
using Labels = std::map<std::string, std::string>;

/// A metric's identity: name plus labels.
struct MetricId {
  std::string name;
  Labels labels;

  bool operator<(const MetricId& other) const {
    if (name != other.name) return name < other.name;
    return labels < other.labels;
  }
  /// Render as `name{k="v",...}` (plain `name` when unlabeled).
  std::string to_string() const;
};

class Counter {
 public:
  void inc(double v = 1.0) { value_ += v; }
  double value() const { return value_; }
  operator double() const { return value_; }  // ergonomic reads in tests/tools

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }
  operator double() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Get-or-create. References stay valid for the registry's lifetime
  /// (map nodes are stable), so components may cache them.
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  /// The bucket layout is fixed by the first registration of an id;
  /// later calls return the existing histogram regardless of lo/hi/buckets.
  sim::Histogram& histogram(const std::string& name, double lo, double hi, std::size_t buckets,
                            Labels labels = {});

  /// Convenience increment (creates the counter if needed).
  void inc(const std::string& name, double v = 1.0) { counter(name).inc(v); }

  // ---- Read-side -----------------------------------------------------------

  /// Value of a counter/gauge, or 0 when absent.
  double counter_value(const std::string& name, const Labels& labels = {}) const;
  double gauge_value(const std::string& name, const Labels& labels = {}) const;
  /// Sum of every counter series with this name, across all label sets.
  double counter_sum(const std::string& name) const;
  const sim::Histogram* find_histogram(const std::string& name, const Labels& labels = {}) const;

  const std::map<MetricId, Counter>& counters() const { return counters_; }
  const std::map<MetricId, Gauge>& gauges() const { return gauges_; }
  const std::map<MetricId, sim::Histogram>& histograms() const { return histograms_; }

  /// Fold another registry in: counters add, gauges overwrite (latest
  /// wins), histograms merge bucket-wise (shapes must match).
  void merge_from(const MetricsRegistry& other);

  /// Snapshot: {"counters": [...], "gauges": [...], "histograms": [...]},
  /// histograms carrying count/mean/min/max and p50/p95/p99.
  Json to_json() const;

  void clear();

 private:
  std::map<MetricId, Counter> counters_;
  std::map<MetricId, Gauge> gauges_;
  std::map<MetricId, sim::Histogram> histograms_;
};

}  // namespace gflink::obs
