// The unified metrics registry of the observability subsystem.
//
// Components register labeled counters, gauges and histograms by name and
// hold on to the returned handle (node-stable across inserts), so the hot
// path is a single pointer write. The registry snapshots to JSON for run
// reports and merges across runs (bench binaries accumulate one registry
// over many simulated testbeds).
//
// Conventions:
//  * counters are monotonically increasing totals, named `*_total` or with
//    a unit suffix (`*_ns`, `*_bytes`);
//  * gauges are last-write-wins instantaneous values (occupancy, ratios);
//  * histograms are sim::Histogram (fixed linear buckets + under/overflow)
//    reported with p50/p95/p99.
//
// Thread-safety: the registry is a host-plane object (see
// docs/ARCHITECTURE.md, "Concurrency invariants & lock hierarchy").
// Get-or-create and the keyed read methods lock `mu_`; Counter and Gauge
// handles are lock-free atomics, so hot-path increments from any thread are
// race-free. Histogram *contents* (sim::Histogram::add) are
// simulation-thread-confined — only registration is locked. The raw map
// accessors are quiescent-state snapshots: call them only after concurrent
// writers are done (end of run / after sim.run() returns).
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <utility>

#include "core/thread_annotations.hpp"
#include "sim/stats.hpp"

#include "obs/json.hpp"

namespace gflink::obs {

/// Metric labels, e.g. {{"gpu", "node1.gpu0"}, {"stage", "h2d"}}.
/// std::map keeps the key canonical regardless of insertion order.
using Labels = std::map<std::string, std::string>;

/// A metric's identity: name plus labels.
struct MetricId {
  std::string name;
  Labels labels;

  bool operator<(const MetricId& other) const {
    if (name != other.name) return name < other.name;
    return labels < other.labels;
  }
  /// Render as `name{k="v",...}` (plain `name` when unlabeled).
  std::string to_string() const;
};

/// Monotonic counter. Increments are lock-free (CAS loop — atomic<double>
/// fetch_add is C++20 and this stays portable), so components may cache a
/// Counter& and bump it from any thread.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void inc(double v = 1.0) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  operator double() const { return value(); }  // ergonomic reads in tests/tools

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins gauge; atomic for the same reason as Counter.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other) : value_(other.value()) {}
  Gauge& operator=(const Gauge& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  operator double() const { return value(); }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  /// Get-or-create. References stay valid for the registry's lifetime
  /// (map nodes are stable), so components may cache them.
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  /// The bucket layout is fixed by the first registration of an id; later
  /// calls must pass the same lo/hi/buckets — a mismatched re-registration
  /// is a GFLINK_CHECK failure (a histogram with a surprising layout is
  /// worse than a crash).
  sim::Histogram& histogram(const std::string& name, double lo, double hi, std::size_t buckets,
                            Labels labels = {});

  /// Convenience increment (creates the counter if needed).
  void inc(const std::string& name, double v = 1.0) { counter(name).inc(v); }

  // ---- Read-side -----------------------------------------------------------

  /// Value of a counter/gauge, or 0 when absent.
  double counter_value(const std::string& name, const Labels& labels = {}) const;
  double gauge_value(const std::string& name, const Labels& labels = {}) const;
  /// Sum of every counter series with this name, across all label sets.
  double counter_sum(const std::string& name) const;
  const sim::Histogram* find_histogram(const std::string& name, const Labels& labels = {}) const;

  // Quiescent-state snapshots: these hand out the guarded maps by reference,
  // so they are only safe once concurrent registration has stopped (report
  // writing, test assertions after sim.run()). Excluded from the analysis on
  // purpose — locking here would only pretend to help, as the lock would be
  // dropped before the caller iterates.
  const std::map<MetricId, Counter>& counters() const GFLINK_NO_THREAD_SAFETY_ANALYSIS {
    return counters_;
  }
  const std::map<MetricId, Gauge>& gauges() const GFLINK_NO_THREAD_SAFETY_ANALYSIS {
    return gauges_;
  }
  const std::map<MetricId, sim::Histogram>& histograms() const GFLINK_NO_THREAD_SAFETY_ANALYSIS {
    return histograms_;
  }

  /// Fold another registry in: counters add, gauges overwrite (latest
  /// wins), histograms merge bucket-wise (shapes must match).
  void merge_from(const MetricsRegistry& other);

  /// Snapshot: {"counters": [...], "gauges": [...], "histograms": [...]},
  /// histograms carrying count/mean/min/max and p50/p95/p99.
  Json to_json() const;

  void clear();

 private:
  /// Guards registration and keyed lookups. Leaf lock: nothing is called
  /// while it is held (docs/ARCHITECTURE.md lock hierarchy).
  mutable core::Mutex mu_;
  std::map<MetricId, Counter> counters_ GFLINK_GUARDED_BY(mu_);
  std::map<MetricId, Gauge> gauges_ GFLINK_GUARDED_BY(mu_);
  std::map<MetricId, sim::Histogram> histograms_ GFLINK_GUARDED_BY(mu_);
};

}  // namespace gflink::obs
