// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// The live telemetry plane: in-run sampling, master-side aggregation,
// online health detectors, and streaming export.
//
// Everything the rest of src/obs produces (run reports, span DAGs,
// critical paths, flight dumps) is post-hoc: nothing is visible until the
// run finishes. GFlink's evaluation reasons about per-node utilization and
// load *over time*, and the ROADMAP's speculative re-execution item needs
// live straggler/health signals, not an autopsy. The plane has three
// layers:
//
//  * Sampling — one `NodeSampler` per node, driven by a per-node coroutine
//    on a configurable sim-time period. Probes are registered at wiring
//    time (closures over cached gauge accessors and registry counter
//    handles; see probes.hpp); the sample path itself never allocates:
//    each probe's value lands in a fixed-capacity `TimeSeriesRing` that
//    downsamples in place when it wraps (pairwise merge, stride doubling)
//    instead of growing.
//  * Aggregation + detection — the master-side `TelemetryAggregator`
//    collects each node's snapshot (workers ship theirs over the cluster's
//    HCA pipes via remote_write, paying real one-sided-verb latency and
//    bandwidth; the master's own snapshot is a local write), merges them
//    into cluster-wide series, and runs the online detectors each period:
//    EWMA+z-score anomaly flags on queue depths, a per-tenant SLO
//    burn-rate against a declared latency objective, and a live straggler
//    score that reuses the span layer's peer-group semantics
//    (obs::nearest_rank_p95 — an offline straggler and a live straggler
//    agree on what "slower than the peers" means). Every firing emits a
//    structured `HealthEvent`, appended to the flight recorder so a fault
//    dump includes the health timeline leading up to it. The HealthEvent
//    stream is the designed hook for speculative execution (ROADMAP 3).
//  * Export — a Prometheus-text renderer of the latest snapshot, and a
//    JSONL timeline sink (`gflink.telemetry/v1`, one record per sample
//    period). The CLI exposes --telemetry-out / --telemetry-prom /
//    --telemetry-period / --slo-ms.
//
// Overhead budget: a sample is O(probes) closure calls plus one bounded
// ring append per series, and the per-node snapshot ships ~(64 + 12 *
// series) bytes over the HCA once per period — small enough that a
// telemetry-enabled PageRank run stays within 2% of the bare run (guarded
// by bench_telemetry and bench/baselines.json).
//
// Thread-safety: the plane is simulation-plane state (sampler rings,
// aggregator series, detector state), mutated only between suspension
// points of the single simulation thread — the SpanStore discipline. It
// takes no lock; metrics go through the thread-safe registry and health
// events through the leaf-locked flight recorder.
//
// gflint rule R7 applies to this directory: every metric registered here
// carries a units suffix (_ns, _bytes, _total, _ratio) and every
// HealthEvent emission carries a node label.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/cluster.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace gflink::obs::telemetry {

/// Fixed-capacity time series. Appends never allocate: the backing vector
/// is reserved once at construction, and when it fills the ring halves
/// itself in place (adjacent samples merge into their mean, keeping the
/// later timestamp) and doubles its accept stride, so a ring holds the
/// whole run at progressively coarser resolution instead of dropping the
/// head or growing without bound. While the stride is s, every s offered
/// samples collapse into one stored sample (their mean), so long-run
/// averages survive downsampling exactly.
class TimeSeriesRing {
 public:
  struct Sample {
    sim::Time at = 0;
    double value = 0.0;
  };

  explicit TimeSeriesRing(std::size_t capacity);

  /// Offer one sample. Never allocates (the one-time reserve happened in
  /// the constructor).
  void append(sim::Time at, double value);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }
  const Sample& back() const { return samples_.back(); }
  /// Samples offered via append() (>= size() once downsampling kicks in).
  std::uint64_t offered() const { return offered_; }
  /// Offered samples currently collapsed into one stored sample.
  std::size_t stride() const { return stride_; }
  /// How many times the ring halved itself.
  std::uint64_t downsamples() const { return downsamples_; }

 private:
  void compact();

  std::size_t capacity_;
  std::vector<Sample> samples_;
  std::size_t stride_ = 1;
  std::uint64_t offered_ = 0;
  std::uint64_t downsamples_ = 0;
  // Partial accept window: mean of the samples offered since the last
  // stored one.
  double acc_ = 0.0;
  std::size_t acc_n_ = 0;
};

/// One detector firing. `detector` is "straggler", "slo_burn" or
/// "queue_anomaly"; `node` is the node the signal points at (0 = master
/// for cluster-level detections such as SLO burn). Every emission site
/// must set the node label (gflint rule R7).
struct HealthEvent {
  sim::Time at = 0;
  int node = -1;
  std::string detector;
  std::string series;  // triggering series name ("" for slo_burn)
  std::string tenant;  // slo_burn only
  double value = 0.0;  // z-score / straggler score / burn rate
  double threshold = 0.0;

  Json to_json() const;
};

struct TelemetryConfig {
  /// Sim-time sampling period, shared by every node's sampler.
  sim::Duration period = sim::millis(1);
  /// Per-series ring depth (halved in place on wrap).
  std::size_t ring_capacity = 256;
  /// Modeled size of one node snapshot on the wire: base + per-series
  /// bytes (a timestamp plus one packed value per series).
  std::uint64_t snapshot_base_bytes = 64;
  std::uint64_t snapshot_series_bytes = 12;

  // ---- EWMA+z-score anomaly detector ------------------------------------
  /// Smoothing factor for the EWMA mean/variance detector state.
  double ewma_alpha = 0.2;
  /// Fire when (x - mean) / max(sigma, z_min_sigma) exceeds this.
  double z_threshold = 4.0;
  /// Absolute sigma floor so a flat series (variance ~0) needs a jump of
  /// at least z_threshold * z_min_sigma units to fire, not an epsilon.
  double z_min_sigma = 1.0;
  /// Periods of state warm-up before a detector may fire.
  int warmup_periods = 8;
  /// Periods a (series, node) detector stays quiet after firing.
  int cooldown_periods = 16;
  /// Series names the anomaly detector watches (queue depths by default).
  std::vector<std::string> anomaly_series = {
      "telemetry_gstream_queue_depth_total",
      "telemetry_spill_queue_depth_total",
      "telemetry_shuffle_in_flight_total",
      "telemetry_service_pending_total",
  };

  // ---- Live straggler score ---------------------------------------------
  /// Counter series whose per-period delta is the per-node busy signal.
  std::string straggler_series = "telemetry_task_busy_ns";
  /// Fire when a node's EWMA busy ratio exceeds the peer group's
  /// nearest-rank p95 by this factor...
  double straggler_score = 1.5;
  /// ...for this many consecutive periods...
  int straggler_consecutive = 3;
  /// ...while the node is actually busy (EWMA busy ratio floor).
  double straggler_min_ratio = 0.5;

  // ---- Per-tenant SLO burn rate -----------------------------------------
  /// Declared end-to-end latency objective (enqueue -> completion) for
  /// every tenant, in milliseconds. 0 disables the detector.
  double slo_ms = 0.0;
  /// Error budget: tolerated fraction of completions over the objective.
  double slo_budget = 0.1;
  /// Fire when EWMA(breach fraction) / budget reaches this burn rate.
  double slo_burn_threshold = 2.0;
  /// Completions a tenant must have before its burn rate is trusted.
  std::uint64_t slo_min_completions = 3;
};

/// Per-node sample state: the registered probes and their rings. Probe
/// registration is wiring-time (allocates freely); sample() is the hot
/// path and never allocates.
class NodeSampler {
 public:
  using Probe = std::function<double()>;
  using Labels = std::vector<std::pair<std::string, std::string>>;

  NodeSampler(int node, std::size_t ring_capacity);

  /// Register a gauge probe: sampled as-is each period.
  void add_gauge(std::string name, Labels labels, Probe probe);
  /// Register a counter probe: sampled as the per-period *delta* of a
  /// monotonic counter (the probe returns the cumulative value).
  void add_counter(std::string name, Labels labels, Probe probe);

  /// Snapshot every probe into its ring and the last-values buffer.
  void sample(sim::Time at);

  struct Series {
    std::string name;
    Labels labels;
    bool counter = false;
    double prev = 0.0;  // counter probes: last cumulative value
    Probe probe;
    TimeSeriesRing ring;

    Series(std::string n, Labels l, bool c, Probe p, std::size_t ring_capacity)
        : name(std::move(n)), labels(std::move(l)), counter(c), probe(std::move(p)),
          ring(ring_capacity) {}
  };

  int node() const { return node_; }
  const std::vector<Series>& series() const { return series_; }
  /// Values of the most recent sample(), parallel to series().
  const std::vector<double>& last_values() const { return values_; }
  std::uint64_t samples() const { return samples_; }
  /// Modeled wire size of one snapshot under `config`.
  std::uint64_t snapshot_bytes(const TelemetryConfig& config) const {
    return config.snapshot_base_bytes + config.snapshot_series_bytes * series_.size();
  }

 private:
  int node_;
  std::size_t ring_capacity_;
  std::vector<Series> series_;
  std::vector<double> values_;
  std::uint64_t samples_ = 0;
};

/// Master-side merge + detection. Nodes are registered once (at plane
/// start); each period every sampler ingests its snapshot, and the last
/// arrival finalizes the period: cluster-wide sums append to the merged
/// rings, the detectors run, and the optional JSONL sink gets one
/// `gflink.telemetry/v1` record.
class TelemetryAggregator {
 public:
  TelemetryAggregator(net::Cluster& cluster, const TelemetryConfig& config);

  /// Health events additionally land in this recorder's event rings
  /// (kind "health_<detector>"), so fault dumps carry the health timeline.
  void attach_flight(FlightRecorder* flight) { flight_ = flight; }
  /// One JSON record per finalized period is written here when set.
  void set_timeline_sink(std::ostream* out) { timeline_ = out; }

  /// Declare a node's series set (called once per sampler by
  /// TelemetryPlane::start(), before any ingest).
  void register_node(const NodeSampler& sampler);

  /// Deliver one node's snapshot for the period sampled at `at`. The last
  /// registered node to arrive finalizes the period.
  void ingest(const NodeSampler& sampler, sim::Time at);

  /// SLO feed: one job completion (JobService::set_completion_observer).
  void observe_completion(const std::string& tenant, sim::Duration latency);

  /// Cluster-wide view of one series: per-period sums across nodes plus
  /// the latest per-node values and detector state.
  struct ClusterSeries {
    std::string name;
    NodeSampler::Labels labels;
    bool counter = false;
    bool anomaly = false;    // watched by the EWMA+z detector
    bool straggler = false;  // the straggler signal series
    TimeSeriesRing ring;     // per-period cluster-wide sums
    std::vector<int> nodes;  // reporting nodes, registration order
    std::vector<double> last;     // latest value per reporting node
    std::vector<double> mean;     // EWMA mean per reporting node
    std::vector<double> var;      // EWMA variance per reporting node
    std::vector<int> observed;    // detector warm-up count per node
    std::vector<int> streak;      // straggler: consecutive over-score periods
    std::vector<int> cooldown;    // periods left before the detector re-arms
    double pending_sum = 0.0;     // accumulating this period's cluster sum
    int pending_count = 0;

    ClusterSeries(std::string n, NodeSampler::Labels l, std::size_t ring_capacity)
        : name(std::move(n)), labels(std::move(l)), ring(ring_capacity) {}
  };

  const std::vector<ClusterSeries>& series() const { return series_; }
  const ClusterSeries* find_series(const std::string& name, const NodeSampler::Labels& labels = {}) const;
  const std::vector<HealthEvent>& events() const { return events_; }
  std::uint64_t periods() const { return periods_; }

 private:
  struct TenantSlo {
    std::uint64_t total = 0;          // completions ever
    std::uint64_t window_total = 0;   // completions since last finalize
    std::uint64_t window_breach = 0;  // of which over the objective
    double burn_ewma = 0.0;           // EWMA of the per-period breach fraction
    int observed = 0;
    int cooldown = 0;
  };

  std::string series_key(const std::string& name, const NodeSampler::Labels& labels) const;
  void finalize(sim::Time at);
  void detect_anomaly(sim::Time at, ClusterSeries& s);
  void detect_straggler(sim::Time at, ClusterSeries& s);
  void detect_slo_burn(sim::Time at);
  void emit(HealthEvent event);
  void write_timeline_record(sim::Time at, std::size_t first_event);

  net::Cluster* cluster_;
  const TelemetryConfig* config_;
  FlightRecorder* flight_ = nullptr;
  std::ostream* timeline_ = nullptr;
  std::vector<ClusterSeries> series_;  // registration order (deterministic)
  std::map<std::string, std::size_t> index_;
  /// Per node: (series index, node slot) for each sampler series, cached at
  /// registration so ingest() is allocation- and lookup-free.
  std::map<int, std::vector<std::pair<std::size_t, std::size_t>>> node_slots_;
  std::vector<double> scratch_;  // straggler p95 peer buffer
  std::map<std::string, TenantSlo> slo_;  // ordered: deterministic detection
  std::vector<HealthEvent> events_;
  int registered_nodes_ = 0;
  int arrived_ = 0;
  std::uint64_t periods_ = 0;
};

/// The whole plane: per-node samplers, their driving coroutines, the
/// master-side aggregator, and the exporters. Wiring order: construct,
/// register probes (probes.hpp or add_gauge/add_counter on sampler()),
/// optionally attach a flight recorder and a timeline sink, start()
/// inside the driver, stop() before the driver returns — each sampler
/// loop observes the stop flag at its next tick and exits, so a drained
/// simulation holds no telemetry processes (Engine::run's
/// live_processes() == 0 check stays valid; virtual time runs at most one
/// period past stop()).
class TelemetryPlane {
 public:
  TelemetryPlane(sim::Simulation& sim, net::Cluster& cluster, TelemetryConfig config);

  const TelemetryConfig& config() const { return config_; }
  net::Cluster& cluster() { return *cluster_; }

  /// The node's sampler (created on first use; wiring-time only).
  NodeSampler& sampler(int node);
  TelemetryAggregator& aggregator() { return aggregator_; }
  const TelemetryAggregator& aggregator() const { return aggregator_; }

  void attach_flight(FlightRecorder* flight) { aggregator_.attach_flight(flight); }
  void set_timeline_sink(std::ostream* out) { aggregator_.set_timeline_sink(out); }

  /// Register every sampler with the aggregator and spawn the per-node
  /// sampling loops (first tick one period from now).
  void start();
  /// Ask the sampling loops to exit at their next tick.
  void stop();
  bool started() const { return started_; }
  bool stopping() const { return stopping_; }

  /// Prometheus text exposition of the latest snapshot: every series as a
  /// per-node gauge (counters as their last per-period delta) plus the
  /// plane's own health/period counters.
  std::string prometheus_text() const;

 private:
  struct PerNode {
    std::unique_ptr<NodeSampler> sampler;
    Counter* samples = nullptr;         // telemetry_samples_total{node}
    Counter* snapshot_bytes = nullptr;  // telemetry_snapshot_bytes_total{node}
    std::string ship_label;             // pipe/span label for the snapshot write
  };

  sim::Co<void> sample_loop(int node);

  sim::Simulation* sim_;
  net::Cluster* cluster_;
  TelemetryConfig config_;
  TelemetryAggregator aggregator_;
  std::map<int, PerNode> nodes_;  // ordered: deterministic start order
  bool started_ = false;
  bool stopping_ = false;
};

}  // namespace gflink::obs::telemetry
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
