// Probe wiring: connects the telemetry plane's samplers to the gauges the
// rest of the system already exposes. Header-only on purpose — the
// telemetry library proper depends only on net/obs/sim, while these
// helpers reach up into dataflow, shuffle, spill, gpu and service; the
// consumers that call them (CLI, benches, tests) already link those
// layers.
//
// All registration happens at wiring time (closures capture cached
// references, pre-built strings and cached registry counter handles), so
// the per-period sample path stays allocation-free. Every series name
// carries a units suffix (gflint rule R7): _ns and _bytes mean what they
// say, _total is a count of things, _ratio is a 0..1 fraction.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/gpu_manager.hpp"
#include "dataflow/engine.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "service/job_service.hpp"
#include "shuffle/shuffle_service.hpp"
#include "spill/spill_store.hpp"

namespace gflink::obs::telemetry {

/// Dataflow-layer probes, per worker: the per-period task-busy delta (the
/// straggler signal), shuffle exchange-buffer residency and spill queue
/// depth; on the master, the cluster-wide count of shuffle blocks in
/// flight.
inline void install_engine_probes(TelemetryPlane& plane, dataflow::Engine& engine) {
  shuffle::ShuffleService& shuffle = engine.shuffle_service();
  spill::SpillStore& spill = shuffle.spill_store();
  for (int w = 1; w <= engine.num_workers(); ++w) {
    NodeSampler& s = plane.sampler(w);
    Counter& busy =
        engine.metrics().counter("engine.task_busy_ns", {{"node", std::to_string(w)}});
    s.add_counter("telemetry_task_busy_ns", {}, [&busy] { return busy.value(); });
    s.add_gauge("telemetry_shuffle_resident_bytes", {},
                [&shuffle, w] { return static_cast<double>(shuffle.resident_bytes(w)); });
    s.add_gauge("telemetry_spill_queue_depth_total", {},
                [&spill, w] { return static_cast<double>(spill.queued_blocks(w)); });
  }
  plane.sampler(0).add_gauge(
      "telemetry_shuffle_in_flight_total", {},
      [&shuffle] { return static_cast<double>(shuffle.blocks_in_flight()); });
}

/// GPU-layer probes, per worker: cache region occupancy and staging-ring
/// bytes from the GMemoryManager, GWork queue depth from the
/// GStreamManager, and — for each tenant with a cache quota — the
/// fraction of that quota in use.
inline void install_runtime_probes(TelemetryPlane& plane, core::GFlinkRuntime& runtime,
                                   const std::vector<service::TenantConfig>& tenants = {}) {
  for (int w = 1; w <= runtime.num_workers(); ++w) {
    NodeSampler& s = plane.sampler(w);
    core::GpuManager& gm = runtime.manager(w);
    s.add_gauge("telemetry_gpu_cache_used_bytes", {}, [&gm] {
      double used = 0.0;
      for (int d = 0; d < gm.num_devices(); ++d) {
        used += static_cast<double>(gm.memory().region_used(d));
      }
      return used;
    });
    s.add_gauge("telemetry_gpu_staging_bytes", {}, [&gm] {
      double staged = 0.0;
      for (int d = 0; d < gm.num_devices(); ++d) {
        staged += static_cast<double>(gm.memory().staging_bytes(d));
      }
      return staged;
    });
    s.add_gauge("telemetry_gstream_queue_depth_total", {}, [&gm] {
      double depth = 0.0;
      for (int d = 0; d < gm.num_devices(); ++d) {
        depth += static_cast<double>(gm.streams().queue_depth(d));
      }
      return depth;
    });
    for (const auto& tenant : tenants) {
      if (tenant.cache_quota_bytes == 0) continue;
      const std::string name = tenant.name;
      const double quota =
          static_cast<double>(tenant.cache_quota_bytes) * gm.num_devices();
      s.add_gauge("telemetry_tenant_quota_used_ratio", {{"tenant", name}},
                  [&gm, name, quota] {
                    double used = 0.0;
                    for (int d = 0; d < gm.num_devices(); ++d) {
                      used += static_cast<double>(gm.memory().tenant_cached_bytes(d, name));
                    }
                    return used / quota;
                  });
    }
  }
}

/// Service-layer probes on the master: per-tenant admission-queue depth,
/// plus the completion feed the SLO burn-rate detector runs on.
inline void install_service_probes(TelemetryPlane& plane, service::JobService& service) {
  NodeSampler& master = plane.sampler(0);
  for (const std::string& tenant : service.tenant_names()) {
    master.add_gauge("telemetry_service_pending_total", {{"tenant", tenant}},
                     [&service, tenant] {
                       return static_cast<double>(service.tenant_pending(tenant));
                     });
  }
  TelemetryAggregator& aggregator = plane.aggregator();
  service.set_completion_observer(
      [&aggregator](const std::string& tenant, sim::Duration latency) {
        aggregator.observe_completion(tenant, latency);
      });
}

}  // namespace gflink::obs::telemetry
