#include "obs/telemetry/telemetry.hpp"

#include <cmath>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/span.hpp"
#include "sim/util.hpp"

namespace gflink::obs::telemetry {

// ---- TimeSeriesRing --------------------------------------------------------

TimeSeriesRing::TimeSeriesRing(std::size_t capacity) : capacity_(capacity < 2 ? 2 : capacity) {
  samples_.reserve(capacity_);
}

void TimeSeriesRing::append(sim::Time at, double value) {
  ++offered_;
  acc_ += value;
  ++acc_n_;
  if (acc_n_ < stride_) return;
  const double stored = acc_ / static_cast<double>(acc_n_);
  acc_ = 0.0;
  acc_n_ = 0;
  if (samples_.size() == capacity_) compact();
  samples_.push_back(Sample{at, stored});
}

void TimeSeriesRing::compact() {
  // In-place pairwise merge: adjacent samples collapse into their mean and
  // keep the later timestamp, so the ring spans the whole run at half the
  // resolution. resize() shrinks; push_back() stays within the original
  // reserve — no allocation ever.
  const std::size_t n = samples_.size();
  const std::size_t pairs = n / 2;
  for (std::size_t i = 0; i < pairs; ++i) {
    samples_[i] = Sample{samples_[2 * i + 1].at,
                         (samples_[2 * i].value + samples_[2 * i + 1].value) / 2.0};
  }
  std::size_t kept = pairs;
  if (n % 2 != 0) samples_[kept++] = samples_[n - 1];
  samples_.resize(kept);
  stride_ *= 2;
  ++downsamples_;
}

// ---- HealthEvent -----------------------------------------------------------

Json HealthEvent::to_json() const {
  Json j = Json::object();
  j["at_ns"] = static_cast<std::int64_t>(at);
  j["node"] = node;
  j["detector"] = detector;
  if (!series.empty()) j["series"] = series;
  if (!tenant.empty()) j["tenant"] = tenant;
  j["value"] = value;
  j["threshold"] = threshold;
  return j;
}

// ---- NodeSampler -----------------------------------------------------------

NodeSampler::NodeSampler(int node, std::size_t ring_capacity)
    : node_(node), ring_capacity_(ring_capacity) {}

void NodeSampler::add_gauge(std::string name, Labels labels, Probe probe) {
  series_.emplace_back(std::move(name), std::move(labels), false, std::move(probe),
                       ring_capacity_);
  values_.resize(series_.size(), 0.0);
}

void NodeSampler::add_counter(std::string name, Labels labels, Probe probe) {
  series_.emplace_back(std::move(name), std::move(labels), true, std::move(probe),
                       ring_capacity_);
  values_.resize(series_.size(), 0.0);
}

void NodeSampler::sample(sim::Time at) {
  ++samples_;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    Series& s = series_[i];
    const double raw = s.probe();
    double v = raw;
    if (s.counter) {
      v = raw - s.prev;
      s.prev = raw;
    }
    s.ring.append(at, v);
    values_[i] = v;
  }
}

// ---- TelemetryAggregator ---------------------------------------------------

TelemetryAggregator::TelemetryAggregator(net::Cluster& cluster, const TelemetryConfig& config)
    : cluster_(&cluster), config_(&config) {}

std::string TelemetryAggregator::series_key(const std::string& name,
                                            const NodeSampler::Labels& labels) const {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

void TelemetryAggregator::register_node(const NodeSampler& sampler) {
  ++registered_nodes_;
  auto& slots = node_slots_[sampler.node()];
  slots.clear();
  slots.reserve(sampler.series().size());
  for (const auto& series : sampler.series()) {
    const std::string key = series_key(series.name, series.labels);
    auto it = index_.find(key);
    std::size_t si = 0;
    if (it == index_.end()) {
      si = series_.size();
      index_.emplace(key, si);
      series_.emplace_back(series.name, series.labels, config_->ring_capacity);
      ClusterSeries& s = series_.back();
      s.counter = series.counter;
      for (const auto& watched : config_->anomaly_series) {
        if (watched == series.name) s.anomaly = true;
      }
      s.straggler = series.name == config_->straggler_series;
    } else {
      si = it->second;
    }
    ClusterSeries& s = series_[si];
    s.nodes.push_back(sampler.node());
    s.last.push_back(0.0);
    s.mean.push_back(0.0);
    s.var.push_back(0.0);
    s.observed.push_back(0);
    s.streak.push_back(0);
    s.cooldown.push_back(0);
    slots.emplace_back(si, s.nodes.size() - 1);
  }
}

void TelemetryAggregator::ingest(const NodeSampler& sampler, sim::Time at) {
  const auto& slots = node_slots_.at(sampler.node());
  const auto& values = sampler.last_values();
  GFLINK_CHECK(slots.size() == values.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    ClusterSeries& s = series_[slots[i].first];
    s.last[slots[i].second] = values[i];
    s.pending_sum += values[i];
    ++s.pending_count;
  }
  ++arrived_;
  if (arrived_ == registered_nodes_) {
    arrived_ = 0;
    finalize(at);
  }
}

void TelemetryAggregator::observe_completion(const std::string& tenant, sim::Duration latency) {
  if (config_->slo_ms <= 0.0) return;
  TenantSlo& t = slo_[tenant];
  ++t.total;
  ++t.window_total;
  const double objective_ns = config_->slo_ms * 1.0e6;
  if (static_cast<double>(latency) > objective_ns) ++t.window_breach;
}

void TelemetryAggregator::finalize(sim::Time at) {
  ++periods_;
  cluster_->metrics().counter("telemetry_periods_total").inc();
  const std::size_t first_event = events_.size();
  for (ClusterSeries& s : series_) {
    s.ring.append(at, s.pending_sum);
    if (s.anomaly) detect_anomaly(at, s);
    if (s.straggler) detect_straggler(at, s);
    s.pending_sum = 0.0;
    s.pending_count = 0;
  }
  detect_slo_burn(at);
  if (timeline_ != nullptr) write_timeline_record(at, first_event);
}

void TelemetryAggregator::detect_anomaly(sim::Time at, ClusterSeries& s) {
  const double alpha = config_->ewma_alpha;
  for (std::size_t n = 0; n < s.nodes.size(); ++n) {
    const double x = s.last[n];
    if (s.cooldown[n] > 0) --s.cooldown[n];
    if (s.observed[n] == 0) {
      s.mean[n] = x;
      s.var[n] = 0.0;
      s.observed[n] = 1;
      continue;
    }
    // Test against the state *before* this observation folds in, so a
    // spike cannot mask itself.
    const double sigma = std::max(std::sqrt(s.var[n]), config_->z_min_sigma);
    const double z = (x - s.mean[n]) / sigma;
    if (s.observed[n] >= config_->warmup_periods && s.cooldown[n] == 0 &&
        z > config_->z_threshold) {
      emit(HealthEvent{.at = at,
                       .node = s.nodes[n],
                       .detector = "queue_anomaly",
                       .series = s.name,
                       .tenant = {},
                       .value = z,
                       .threshold = config_->z_threshold});
      s.cooldown[n] = config_->cooldown_periods;
    }
    const double d = x - s.mean[n];
    s.mean[n] += alpha * d;
    s.var[n] = (1.0 - alpha) * (s.var[n] + alpha * d * d);
    ++s.observed[n];
  }
}

void TelemetryAggregator::detect_straggler(sim::Time at, ClusterSeries& s) {
  const double alpha = config_->ewma_alpha;
  const double period = static_cast<double>(config_->period);
  // Fold this period's busy ratio into each node's EWMA first, so the peer
  // comparison below sees every node at the same age.
  for (std::size_t n = 0; n < s.nodes.size(); ++n) {
    const double ratio = s.last[n] / period;
    if (s.observed[n] == 0) {
      s.mean[n] = ratio;
      s.observed[n] = 1;
    } else {
      s.mean[n] += alpha * (ratio - s.mean[n]);
      ++s.observed[n];
    }
  }
  if (s.nodes.size() < 2) return;
  // The same peer-group p95 the post-hoc span report uses: an offline
  // straggler and a live straggler agree on "slower than the peers".
  scratch_.assign(s.mean.begin(), s.mean.end());
  const double p95 = nearest_rank_p95(scratch_);
  for (std::size_t n = 0; n < s.nodes.size(); ++n) {
    if (s.cooldown[n] > 0) --s.cooldown[n];
    const double score = s.mean[n] / std::max(p95, 1.0e-9);
    const bool over = s.mean[n] >= config_->straggler_min_ratio &&
                      score >= config_->straggler_score;
    s.streak[n] = over ? s.streak[n] + 1 : 0;
    if (over && s.streak[n] >= config_->straggler_consecutive && s.cooldown[n] == 0 &&
        s.observed[n] >= config_->warmup_periods) {
      emit(HealthEvent{.at = at,
                       .node = s.nodes[n],
                       .detector = "straggler",
                       .series = s.name,
                       .tenant = {},
                       .value = score,
                       .threshold = config_->straggler_score});
      s.cooldown[n] = config_->cooldown_periods;
      s.streak[n] = 0;
    }
  }
}

void TelemetryAggregator::detect_slo_burn(sim::Time at) {
  if (config_->slo_ms <= 0.0) return;
  const double alpha = config_->ewma_alpha;
  for (auto& [tenant, t] : slo_) {
    if (t.cooldown > 0) --t.cooldown;
    // Periods with no completions carry no evidence either way: skip the
    // EWMA update rather than letting silence decay a real burn.
    if (t.window_total == 0) continue;
    const double frac =
        static_cast<double>(t.window_breach) / static_cast<double>(t.window_total);
    if (t.observed == 0) {
      t.burn_ewma = frac;
    } else {
      t.burn_ewma += alpha * (frac - t.burn_ewma);
    }
    ++t.observed;
    t.window_total = 0;
    t.window_breach = 0;
    const double burn = t.burn_ewma / std::max(config_->slo_budget, 1.0e-9);
    if (t.total >= config_->slo_min_completions && t.cooldown == 0 &&
        burn >= config_->slo_burn_threshold) {
      emit(HealthEvent{.at = at,
                       .node = 0,
                       .detector = "slo_burn",
                       .series = {},
                       .tenant = tenant,
                       .value = burn,
                       .threshold = config_->slo_burn_threshold});
      t.cooldown = config_->cooldown_periods;
    }
  }
}

void TelemetryAggregator::emit(HealthEvent event) {
  cluster_->metrics()
      .counter("health_events_total",
               {{"detector", event.detector}, {"node", std::to_string(event.node)}})
      .inc();
  if (flight_ != nullptr) {
    std::string detail = event.series.empty() ? event.tenant : event.series;
    detail += " value=";
    detail += std::to_string(event.value);
    flight_->note_event(event.at, event.node, "health_" + event.detector, std::move(detail));
  }
  events_.push_back(std::move(event));
}

void TelemetryAggregator::write_timeline_record(sim::Time at, std::size_t first_event) {
  Json j = Json::object();
  j["schema"] = "gflink.telemetry/v1";
  j["period"] = periods_;
  j["at_ns"] = static_cast<std::int64_t>(at);
  Json series = Json::array();
  for (const ClusterSeries& s : series_) {
    Json entry = Json::object();
    entry["name"] = s.name;
    if (!s.labels.empty()) {
      Json labels = Json::object();
      for (const auto& [k, v] : s.labels) labels[k] = v;
      entry["labels"] = std::move(labels);
    }
    entry["cluster"] = s.ring.empty() ? 0.0 : s.ring.back().value;
    Json nodes = Json::array();
    for (std::size_t n = 0; n < s.nodes.size(); ++n) {
      Json pair = Json::array();
      pair.push_back(s.nodes[n]);
      pair.push_back(s.last[n]);
      nodes.push_back(std::move(pair));
    }
    entry["nodes"] = std::move(nodes);
    series.push_back(std::move(entry));
  }
  j["series"] = std::move(series);
  Json events = Json::array();
  for (std::size_t i = first_event; i < events_.size(); ++i) {
    events.push_back(events_[i].to_json());
  }
  j["events"] = std::move(events);
  *timeline_ << j.dump() << "\n";
}

const TelemetryAggregator::ClusterSeries* TelemetryAggregator::find_series(
    const std::string& name, const NodeSampler::Labels& labels) const {
  auto it = index_.find(series_key(name, labels));
  if (it == index_.end()) return nullptr;
  return &series_[it->second];
}

// ---- TelemetryPlane --------------------------------------------------------

TelemetryPlane::TelemetryPlane(sim::Simulation& sim, net::Cluster& cluster,
                               TelemetryConfig config)
    : sim_(&sim), cluster_(&cluster), config_(std::move(config)),
      aggregator_(cluster, config_) {
  GFLINK_CHECK_MSG(config_.period > 0, "telemetry period must be positive");
}

NodeSampler& TelemetryPlane::sampler(int node) {
  PerNode& pn = nodes_[node];
  if (!pn.sampler) pn.sampler = std::make_unique<NodeSampler>(node, config_.ring_capacity);
  return *pn.sampler;
}

void TelemetryPlane::start() {
  GFLINK_CHECK_MSG(!started_, "telemetry plane started twice");
  started_ = true;
  obs::MetricsRegistry& m = cluster_->metrics();
  for (auto& [node, pn] : nodes_) {
    aggregator_.register_node(*pn.sampler);
    pn.samples = &m.counter("telemetry_samples_total", {{"node", std::to_string(node)}});
    pn.snapshot_bytes =
        &m.counter("telemetry_snapshot_bytes_total", {{"node", std::to_string(node)}});
    pn.ship_label = "telemetry/snapshot";
  }
  for (auto& [node, pn] : nodes_) {
    // gflint: allow(C3): the plane outlives the drained simulation (it is
    // owned by the harness that owns the Engine), and the loop exits at its
    // first tick after stop(), so no frame parks past Engine::run.
    sim_->spawn(sample_loop(node));
  }
}

void TelemetryPlane::stop() {
  if (!started_ || stopping_) return;
  stopping_ = true;
  // Ring-health accounting, flushed once: how often each node's rings had
  // to halve themselves (0 means full resolution end to end).
  obs::MetricsRegistry& m = cluster_->metrics();
  for (const auto& [node, pn] : nodes_) {
    std::uint64_t downsamples = 0;
    for (const auto& s : pn.sampler->series()) downsamples += s.ring.downsamples();
    if (downsamples > 0) {
      m.counter("telemetry_ring_downsamples_total", {{"node", std::to_string(node)}})
          .inc(static_cast<double>(downsamples));
    }
  }
}

sim::Co<void> TelemetryPlane::sample_loop(int node) {
  PerNode& pn = nodes_.at(node);
  NodeSampler& sampler = *pn.sampler;
  const std::uint64_t ship_bytes = sampler.snapshot_bytes(config_);
  // Absolute schedule: tick k fires at start + k*period even though the
  // snapshot ship below consumes sim time, so ticks never drift and every
  // node samples the same instants (detector firings are comparable across
  // nodes and reproducible down to the nanosecond).
  sim::Time next = sim_->now() + config_.period;
  while (!stopping_) {
    if (next > sim_->now()) co_await sim_->delay(next - sim_->now());
    if (stopping_) break;
    const sim::Time at = next;
    next += config_.period;
    sampler.sample(at);
    pn.samples->inc();
    pn.snapshot_bytes->inc(static_cast<double>(ship_bytes));
    // Workers ship their snapshot to the master over the one-sided HCA
    // path (remote_write is free when src == dst, so the master's own
    // snapshot is a local write).
    if (node != 0) co_await cluster_->remote_write(node, 0, 0, ship_bytes, pn.ship_label);
    // `at` (the tick time), not now(): every node's snapshot of one period
    // carries the same timestamp regardless of shipping latency, so
    // detector firings land exactly on period boundaries.
    aggregator_.ingest(sampler, at);
  }
}

namespace {

std::string prometheus_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string TelemetryPlane::prometheus_text() const {
  std::ostringstream out;
  std::set<std::string> typed;
  for (const auto& s : aggregator_.series()) {
    if (typed.insert(s.name).second) out << "# TYPE " << s.name << " gauge\n";
    for (std::size_t n = 0; n < s.nodes.size(); ++n) {
      out << s.name << "{node=\"" << s.nodes[n] << "\"";
      for (const auto& [k, v] : s.labels) out << "," << k << "=\"" << prometheus_escape(v) << "\"";
      out << "} " << s.last[n] << "\n";
    }
  }
  out << "# TYPE telemetry_periods_total counter\n";
  out << "telemetry_periods_total " << aggregator_.periods() << "\n";
  std::map<std::string, std::map<int, int>> tally;
  for (const auto& ev : aggregator_.events()) ++tally[ev.detector][ev.node];
  if (!tally.empty()) out << "# TYPE health_events_total counter\n";
  for (const auto& [detector, nodes] : tally) {
    for (const auto& [node, count] : nodes) {
      out << "health_events_total{detector=\"" << prometheus_escape(detector) << "\",node=\""
          << node << "\"} " << count << "\n";
    }
  }
  return out.str();
}

}  // namespace gflink::obs::telemetry
