// Chrome-trace / Perfetto export of sim::Tracer spans.
//
// Lanes ("node1.gpu0/h2d", "node3/egress") become trace threads grouped
// into processes by their prefix before the first '/', so Perfetto and
// chrome://tracing render one swimlane per simulated resource. Counter
// snapshots from a MetricsRegistry are appended as Chrome counter events,
// and per-lane utilization rollups ride along in a top-level
// "laneUtilization" section (ignored by the viewers, consumed by tools).
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "sim/time.hpp"
#include "sim/trace.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace gflink::obs {

struct LaneUtilization {
  sim::Duration busy_ns = 0;  // union of the lane's spans
  std::uint64_t spans = 0;
  double utilization = 0.0;  // busy / horizon
};

/// Busy-time rollup per lane. `horizon` is the run's end time; 0 means
/// "use the latest span end seen on any lane".
std::map<std::string, LaneUtilization> lane_utilization(const sim::Tracer& tracer,
                                                        sim::Time horizon = 0);

/// Write the full Chrome-trace JSON object ({"traceEvents": [...], ...}).
/// Virtual nanoseconds map to trace microseconds. `metrics`, when given,
/// contributes one counter event per registered counter at the trace end.
/// `spans`, when given and retaining, contributes the causal spans as
/// complete events on their own lanes plus flow events (ph "s"/"f") along
/// every parent/child link, so Perfetto draws causality arrows between
/// lanes instead of visually disconnected swimlanes.
void write_chrome_trace(std::ostream& os, const sim::Tracer& tracer,
                        const MetricsRegistry* metrics = nullptr, sim::Time horizon = 0,
                        const SpanStore* spans = nullptr);

/// Same document as a string (tests, small traces).
std::string chrome_trace_json(const sim::Tracer& tracer, const MetricsRegistry* metrics = nullptr,
                              sim::Time horizon = 0, const SpanStore* spans = nullptr);

}  // namespace gflink::obs
