#include "obs/flight_recorder.hpp"

#include <fstream>

namespace gflink::obs {

Json FlightEvent::to_json() const {
  Json j = Json::object();
  j["at_ns"] = static_cast<std::int64_t>(at);
  j["node"] = node;
  j["kind"] = kind;
  if (!detail.empty()) j["detail"] = detail;
  return j;
}

void FlightRecorder::set_dump_path(std::string path) {
  core::MutexLock lock(mu_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  core::MutexLock lock(mu_);
  return dump_path_;
}

void FlightRecorder::on_span_closed(const CausalSpan& span) {
  core::MutexLock lock(mu_);
  ++spans_seen_;
  auto& ring = spans_[span.node];
  ring.push_back(span);
  while (ring.size() > capacity_) ring.pop_front();
}

void FlightRecorder::note_event(sim::Time at, int node, std::string kind, std::string detail) {
  core::MutexLock lock(mu_);
  ++events_seen_;
  auto& ring = events_[node];
  ring.push_back(FlightEvent{at, node, std::move(kind), std::move(detail)});
  while (ring.size() > capacity_) ring.pop_front();
}

void FlightRecorder::note_fault(sim::Time at, int node, std::string kind, std::string detail) {
  // Decide about the auto-dump inside the critical section (so exactly one
  // of any concurrent first faults elects itself), but run it outside: the
  // mutex is not recursive and file I/O has no business under a leaf lock.
  std::string dump_to;
  {
    core::MutexLock lock(mu_);
    ++events_seen_;
    auto& ring = events_[node];
    ring.push_back(FlightEvent{at, node, std::move(kind), std::move(detail)});
    while (ring.size() > capacity_) ring.pop_front();
    ++faults_;
    if (faults_ == 1 && !dump_path_.empty()) dump_to = dump_path_;
  }
  if (!dump_to.empty()) dump_now(dump_to);
}

bool FlightRecorder::dump_now(const std::string& path) {
  // Serialize the rings under the lock; write the file outside it.
  std::string payload;
  {
    core::MutexLock lock(mu_);
    payload = to_json_locked().dump(2);
  }
  std::ofstream out(path);
  if (!out) return false;
  out << payload << "\n";
  if (!out) return false;
  core::MutexLock lock(mu_);
  ++dumps_;
  return true;
}

std::uint64_t FlightRecorder::faults() const {
  core::MutexLock lock(mu_);
  return faults_;
}

std::uint64_t FlightRecorder::dumps() const {
  core::MutexLock lock(mu_);
  return dumps_;
}

std::uint64_t FlightRecorder::events_seen() const {
  core::MutexLock lock(mu_);
  return events_seen_;
}

Json FlightRecorder::to_json() const {
  core::MutexLock lock(mu_);
  return to_json_locked();
}

Json FlightRecorder::to_json_locked() const {
  Json root = Json::object();
  root["schema"] = "gflink.flight_dump/v1";
  root["ring_capacity"] = static_cast<std::uint64_t>(capacity_);
  root["spans_seen"] = spans_seen_;
  root["events_seen"] = events_seen_;
  root["faults"] = faults_;
  Json nodes = Json::array();
  // Walk the union of node ids in order (spans_ and events_ are std::map).
  auto si = spans_.begin();
  auto ei = events_.begin();
  while (si != spans_.end() || ei != events_.end()) {
    int node;
    if (si == spans_.end()) node = ei->first;
    else if (ei == events_.end()) node = si->first;
    else node = std::min(si->first, ei->first);
    Json entry = Json::object();
    entry["node"] = node;
    Json spans = Json::array();
    if (si != spans_.end() && si->first == node) {
      for (const auto& s : si->second) spans.push_back(s.to_json());
      ++si;
    }
    entry["spans"] = std::move(spans);
    Json events = Json::array();
    if (ei != events_.end() && ei->first == node) {
      for (const auto& e : ei->second) events.push_back(e.to_json());
      ++ei;
    }
    entry["events"] = std::move(events);
    nodes.push_back(std::move(entry));
  }
  root["nodes"] = std::move(nodes);
  return root;
}

void FlightRecorder::export_metrics(MetricsRegistry& m) const {
  std::uint64_t spans_seen = 0, events_seen = 0, faults = 0, dumps = 0;
  {
    core::MutexLock lock(mu_);
    spans_seen = spans_seen_;
    events_seen = events_seen_;
    faults = faults_;
    dumps = dumps_;
  }
  m.counter("flight_spans_total").inc(static_cast<double>(spans_seen));
  m.counter("flight_events_total").inc(static_cast<double>(events_seen));
  m.counter("flight_faults_total").inc(static_cast<double>(faults));
  m.counter("flight_dumps_total").inc(static_cast<double>(dumps));
}

void FlightRecorder::clear() {
  core::MutexLock lock(mu_);
  spans_.clear();
  events_.clear();
  spans_seen_ = events_seen_ = faults_ = dumps_ = 0;
}

}  // namespace gflink::obs
