#include "obs/flight_recorder.hpp"

#include <fstream>

namespace gflink::obs {

Json FlightEvent::to_json() const {
  Json j = Json::object();
  j["at_ns"] = static_cast<std::int64_t>(at);
  j["node"] = node;
  j["kind"] = kind;
  if (!detail.empty()) j["detail"] = detail;
  return j;
}

void FlightRecorder::on_span_closed(const CausalSpan& span) {
  ++spans_seen_;
  auto& ring = spans_[span.node];
  ring.push_back(span);
  while (ring.size() > capacity_) ring.pop_front();
}

void FlightRecorder::note_event(sim::Time at, int node, std::string kind, std::string detail) {
  ++events_seen_;
  auto& ring = events_[node];
  ring.push_back(FlightEvent{at, node, std::move(kind), std::move(detail)});
  while (ring.size() > capacity_) ring.pop_front();
}

void FlightRecorder::note_fault(sim::Time at, int node, std::string kind, std::string detail) {
  note_event(at, node, std::move(kind), std::move(detail));
  ++faults_;
  if (faults_ == 1 && !dump_path_.empty()) dump_now(dump_path_);
}

bool FlightRecorder::dump_now(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json().dump(2) << "\n";
  if (!out) return false;
  ++dumps_;
  return true;
}

Json FlightRecorder::to_json() const {
  Json root = Json::object();
  root["schema"] = "gflink.flight_dump/v1";
  root["ring_capacity"] = static_cast<std::uint64_t>(capacity_);
  root["spans_seen"] = spans_seen_;
  root["events_seen"] = events_seen_;
  root["faults"] = faults_;
  Json nodes = Json::array();
  // Walk the union of node ids in order (spans_ and events_ are std::map).
  auto si = spans_.begin();
  auto ei = events_.begin();
  while (si != spans_.end() || ei != events_.end()) {
    int node;
    if (si == spans_.end()) node = ei->first;
    else if (ei == events_.end()) node = si->first;
    else node = std::min(si->first, ei->first);
    Json entry = Json::object();
    entry["node"] = node;
    Json spans = Json::array();
    if (si != spans_.end() && si->first == node) {
      for (const auto& s : si->second) spans.push_back(s.to_json());
      ++si;
    }
    entry["spans"] = std::move(spans);
    Json events = Json::array();
    if (ei != events_.end() && ei->first == node) {
      for (const auto& e : ei->second) events.push_back(e.to_json());
      ++ei;
    }
    entry["events"] = std::move(events);
    nodes.push_back(std::move(entry));
  }
  root["nodes"] = std::move(nodes);
  return root;
}

void FlightRecorder::export_metrics(MetricsRegistry& m) const {
  m.counter("flight_spans_total").inc(static_cast<double>(spans_seen_));
  m.counter("flight_events_total").inc(static_cast<double>(events_seen_));
  m.counter("flight_faults_total").inc(static_cast<double>(faults_));
  m.counter("flight_dumps_total").inc(static_cast<double>(dumps_));
}

void FlightRecorder::clear() {
  spans_.clear();
  events_.clear();
  spans_seen_ = events_seen_ = faults_ = dumps_ = 0;
}

}  // namespace gflink::obs
