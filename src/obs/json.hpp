// Minimal JSON value tree for the observability layer: building run
// reports and Chrome traces, and parsing them back in tests/tools.
//
// Deliberately small: objects preserve insertion order (reports stay
// readable), numbers are doubles with an integer tag (so counters print
// as integers), and parse() is a strict recursive-descent parser used to
// validate emitted documents.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gflink::obs {

/// Escape a string for embedding in a JSON document (quotes not included).
std::string json_escape(std::string_view s);

class Json {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double d) : type_(Type::Number), num_(d) {}
  Json(std::int64_t i) : type_(Type::Number), num_(static_cast<double>(i)), is_int_(true) {}
  Json(std::uint64_t u) : type_(Type::Number), num_(static_cast<double>(u)), is_int_(true) {}
  Json(int i) : Json(static_cast<std::int64_t>(i)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  std::int64_t as_int() const { return static_cast<std::int64_t>(num_); }
  const std::string& as_string() const { return str_; }
  const Array& items() const { return array_; }
  const Object& members() const { return object_; }

  /// Array append (converts a Null value into an empty array first).
  void push_back(Json v) {
    if (type_ == Type::Null) type_ = Type::Array;
    array_.push_back(std::move(v));
  }

  /// Object member access, inserting a Null member if absent (converts a
  /// Null value into an empty object first).
  Json& operator[](const std::string& key) {
    if (type_ == Type::Null) type_ = Type::Object;
    for (auto& [k, v] : object_) {
      if (k == key) return v;
    }
    object_.emplace_back(key, Json());
    return object_.back().second;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const {
    if (type_ != Type::Object) return nullptr;
    for (const auto& [k, v] : object_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  std::size_t size() const {
    if (type_ == Type::Array) return array_.size();
    if (type_ == Type::Object) return object_.size();
    return 0;
  }

  /// Serialize. indent < 0 is compact; otherwise pretty-print with that
  /// many spaces per level.
  std::string dump(int indent = -1) const;

  /// Strict parse of a complete JSON document; nullopt on any error
  /// (including trailing garbage).
  static std::optional<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  bool is_int_ = false;
  std::string str_;
  Array array_;
  Object object_;
};

}  // namespace gflink::obs
