#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/json.hpp"

namespace gflink::obs {

namespace {

sim::Time latest_span_end(const sim::Tracer& tracer) {
  sim::Time end = 0;
  for (const auto& s : tracer.spans()) end = std::max(end, s.end);
  return end;
}

/// "node1.gpu0/h2d" -> process "node1.gpu0", thread "h2d". Lanes without a
/// '/' become a thread of the catch-all process "sim".
std::pair<std::string, std::string> split_lane(const std::string& lane) {
  auto slash = lane.rfind('/');
  if (slash == std::string::npos) return {"sim", lane};
  return {lane.substr(0, slash), lane.substr(slash + 1)};
}

void write_event_prefix(std::ostream& os, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "    ";
}

/// Display lane for a causal span: its own lane if set, otherwise a
/// per-node catch-all so every span lands on some swimlane.
std::string causal_lane(const CausalSpan& s) {
  if (!s.lane.empty()) return s.lane;
  if (s.node >= 0) return "node" + std::to_string(s.node) + "/causal";
  return "master/causal";
}

}  // namespace

std::map<std::string, LaneUtilization> lane_utilization(const sim::Tracer& tracer,
                                                        sim::Time horizon) {
  if (horizon <= 0) horizon = latest_span_end(tracer);
  std::map<std::string, LaneUtilization> out;
  for (const auto& s : tracer.spans()) ++out[s.lane].spans;
  for (auto& [lane, u] : out) {
    u.busy_ns = tracer.busy_time(lane);
    u.utilization = horizon > 0 ? static_cast<double>(u.busy_ns) / static_cast<double>(horizon)
                                : 0.0;
  }
  return out;
}

void write_chrome_trace(std::ostream& os, const sim::Tracer& tracer,
                        const MetricsRegistry* metrics, sim::Time horizon,
                        const SpanStore* spans) {
  if (horizon <= 0) horizon = latest_span_end(tracer);
  if (spans != nullptr && spans->spans().empty()) spans = nullptr;

  // Stable pid/tid assignment: processes and threads numbered in first-seen
  // order over the (deterministic) span sequence.
  std::map<std::string, int> pids;   // process name -> pid
  std::map<std::string, int> tids;   // full lane -> tid
  std::vector<std::pair<std::string, std::string>> lane_split;  // tid order
  auto intern_lane = [&](const std::string& lane) {
    if (tids.count(lane)) return;
    auto [proc, thread] = split_lane(lane);
    if (!pids.count(proc)) pids.emplace(proc, static_cast<int>(pids.size()) + 1);
    tids.emplace(lane, static_cast<int>(tids.size()) + 1);
    lane_split.emplace_back(proc, thread);
  };
  for (const auto& s : tracer.spans()) intern_lane(s.lane);
  if (spans != nullptr) {
    for (const auto& s : spans->spans()) intern_lane(causal_lane(s));
  }

  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;

  // Metadata: process and thread names.
  for (const auto& [proc, pid] : pids) {
    write_event_prefix(os, first);
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(proc) << "\"}}";
  }
  for (const auto& [lane, tid] : tids) {
    // tids were assigned in first-seen order, so tid-1 indexes lane_split.
    const auto& [proc, thread] = lane_split[static_cast<std::size_t>(tid) - 1];
    write_event_prefix(os, first);
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pids.at(proc)
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << json_escape(thread) << "\"}}";
  }

  // Spans: complete ("X") events, timestamps in microseconds.
  for (const auto& s : tracer.spans()) {
    const auto [proc, thread] = split_lane(s.lane);
    write_event_prefix(os, first);
    os << "{\"ph\":\"X\",\"name\":\"" << json_escape(s.label.empty() ? thread : s.label)
       << "\",\"cat\":\"" << json_escape(proc) << "\",\"pid\":" << pids.at(proc)
       << ",\"tid\":" << tids.at(s.lane) << ",\"ts\":" << sim::to_micros(s.begin)
       << ",\"dur\":" << sim::to_micros(s.duration()) << "}";
  }

  // Causal spans: their own complete events, plus flow events along every
  // parent/child link so viewers draw causality arrows between lanes. The
  // flow start ("s") binds to the parent's slice (ts clamped inside it) and
  // the finish ("f") binds to the child's slice at its begin; the shared id
  // is the child span id (unique per link).
  if (spans != nullptr) {
    std::map<SpanId, const CausalSpan*> by_id;
    for (const auto& s : spans->spans()) by_id.emplace(s.id, &s);
    for (const auto& s : spans->spans()) {
      const std::string lane = causal_lane(s);
      const auto [proc, thread] = split_lane(lane);
      write_event_prefix(os, first);
      os << "{\"ph\":\"X\",\"name\":\"" << json_escape(s.name) << "\",\"cat\":\"causal\",\"pid\":"
         << pids.at(proc) << ",\"tid\":" << tids.at(lane) << ",\"ts\":" << sim::to_micros(s.begin)
         << ",\"dur\":" << sim::to_micros(s.duration()) << ",\"args\":{\"trace\":" << s.trace_id
         << ",\"span\":" << s.id << ",\"parent\":" << s.parent << "}}";
    }
    for (const auto& s : spans->spans()) {
      auto parent = by_id.find(s.parent);
      if (s.parent == 0 || parent == by_id.end()) continue;
      const CausalSpan& p = *parent->second;
      const std::string plane = causal_lane(p);
      const std::string clane = causal_lane(s);
      const auto [pproc, pthread] = split_lane(plane);
      const auto [cproc, cthread] = split_lane(clane);
      const sim::Time start = std::min(std::max(s.begin, p.begin), p.end);
      write_event_prefix(os, first);
      os << "{\"ph\":\"s\",\"name\":\"causal\",\"cat\":\"causal\",\"id\":" << s.id
         << ",\"pid\":" << pids.at(pproc) << ",\"tid\":" << tids.at(plane)
         << ",\"ts\":" << sim::to_micros(start) << "}";
      write_event_prefix(os, first);
      os << "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"causal\",\"cat\":\"causal\",\"id\":" << s.id
         << ",\"pid\":" << pids.at(cproc) << ",\"tid\":" << tids.at(clane)
         << ",\"ts\":" << sim::to_micros(s.begin) << "}";
    }
  }

  // Counter snapshots at the end of the trace.
  if (metrics != nullptr) {
    for (const auto& [id, c] : metrics->counters()) {
      write_event_prefix(os, first);
      os << "{\"ph\":\"C\",\"name\":\"" << json_escape(id.to_string())
         << "\",\"pid\":0,\"tid\":0,\"ts\":" << sim::to_micros(horizon)
         << ",\"args\":{\"value\":" << c.value() << "}}";
    }
  }

  os << "\n  ],\n  \"laneUtilization\": {";
  {
    bool first_lane = true;
    for (const auto& [lane, u] : lane_utilization(tracer, horizon)) {
      if (!first_lane) os << ",";
      first_lane = false;
      os << "\n    \"" << json_escape(lane) << "\": {\"busy_ns\": " << u.busy_ns
         << ", \"spans\": " << u.spans << ", \"utilization\": " << u.utilization << "}";
    }
  }
  os << "\n  }\n}\n";
}

std::string chrome_trace_json(const sim::Tracer& tracer, const MetricsRegistry* metrics,
                              sim::Time horizon, const SpanStore* spans) {
  std::ostringstream os;
  write_chrome_trace(os, tracer, metrics, horizon, spans);
  return os.str();
}

}  // namespace gflink::obs
