#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace gflink::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double v, bool is_int) {
  if (is_int || (std::floor(v) == v && std::abs(v) < 9.0e15 && std::isfinite(v))) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  if (!std::isfinite(v)) {  // JSON has no inf/nan; report null
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: append_number(out, num_, is_int_); break;
    case Type::String:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        out += '"';
        out += json_escape(object_[i].first);
        out += pretty ? "\": " : "\":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  bool ok = true;

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                                 text[pos] == '\r')) {
      ++pos;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    return false;
  }

  Json fail() {
    ok = false;
    return Json();
  }

  Json parse_string_value() {
    // Caller consumed the opening quote.
    std::string s;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return Json(std::move(s));
      if (c == '\\') {
        if (pos >= text.size()) return fail();
        char e = text[pos++];
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail();
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return fail();
            }
            // UTF-8 encode the BMP code point (surrogate pairs kept simple:
            // each half encodes independently — fine for validation use).
            if (cp < 0x80) {
              s += static_cast<char>(cp);
            } else if (cp < 0x800) {
              s += static_cast<char>(0xC0 | (cp >> 6));
              s += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (cp >> 12));
              s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: return fail();
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail();  // control characters must be escaped
      } else {
        s += c;
      }
    }
    return fail();  // unterminated string
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    bool integral = true;
    if (pos < text.size() && text[pos] == '.') {
      integral = false;
      ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      integral = false;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    double v = 0.0;
    auto res = std::from_chars(text.data() + start, text.data() + pos, v);
    if (res.ec != std::errc() || res.ptr != text.data() + pos) return fail();
    if (integral) return Json(static_cast<std::int64_t>(v));
    return Json(v);
  }

  Json parse_value(int depth) {
    if (depth > 200) return fail();  // pathological nesting
    skip_ws();
    if (pos >= text.size()) return fail();
    char c = text[pos];
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (eat('}')) return obj;
      while (ok) {
        if (!eat('"')) return fail();
        Json key = parse_string_value();
        if (!ok) return Json();
        if (!eat(':')) return fail();
        Json value = parse_value(depth + 1);
        if (!ok) return Json();
        obj[key.as_string()] = std::move(value);
        if (eat(',')) continue;
        if (eat('}')) return obj;
        return fail();
      }
      return Json();
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (eat(']')) return arr;
      while (ok) {
        Json value = parse_value(depth + 1);
        if (!ok) return Json();
        arr.push_back(std::move(value));
        if (eat(',')) continue;
        if (eat(']')) return arr;
        return fail();
      }
      return Json();
    }
    if (c == '"') {
      ++pos;
      return parse_string_value();
    }
    if (c == 't') return literal("true") ? Json(true) : fail();
    if (c == 'f') return literal("false") ? Json(false) : fail();
    if (c == 'n') return literal("null") ? Json(nullptr) : fail();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return parse_number();
    return fail();
  }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  Parser p{text};
  Json v = p.parse_value(0);
  if (!p.ok) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;  // trailing garbage
  return v;
}

}  // namespace gflink::obs
