// Always-on bounded flight recorder: per-node ring buffers of the most
// recent completed spans and notable events, dumped to JSON when a fault
// fires or a run aborts. The rings are small and always active (unlike
// span retention, which is opt-in), so post-mortems of untraced runs still
// see the work surrounding the failure.
//
// Thread-safety: host-plane. The recorder started out simulation-plane
// (single thread, no lock), but it is now written from both planes: the
// simulation thread notes eviction/fault events and the telemetry
// aggregator appends health events, while exporters, dump writers and the
// threaded stress tests read concurrently. All state is guarded by a
// core::Mutex that is a *leaf* in the lock hierarchy
// (docs/ARCHITECTURE.md, "Concurrency invariants & lock hierarchy"), so
// callers already holding a ranked lock — GMemoryManager::mu_ notes
// eviction events under its own mutex — may call in safely, and the
// recorder never acquires another lock while holding its own (dump and
// metric export snapshot under the lock, then write/publish outside it).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "core/thread_annotations.hpp"
#include "sim/time.hpp"

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace gflink::obs {

struct FlightEvent {
  sim::Time at = 0;
  int node = -1;       // -1 = master
  std::string kind;    // e.g. "shuffle_fault", "worker_lost", "oom_retry"
  std::string detail;  // free-form context

  Json to_json() const;
};

class FlightRecorder {
 public:
  /// Per-node ring depth, for spans and events independently.
  explicit FlightRecorder(std::size_t ring_capacity = 256) : capacity_(ring_capacity) {}

  std::size_t capacity() const { return capacity_; }

  /// When set, the first note_fault() writes a dump here automatically
  /// (later faults only count — the interesting state is around the first).
  void set_dump_path(std::string path);
  std::string dump_path() const;

  /// SpanStore streams every completed span in; the ring keeps the most
  /// recent `capacity` per node.
  void on_span_closed(const CausalSpan& span);

  /// Record a notable event (kept in the node's event ring).
  void note_event(sim::Time at, int node, std::string kind, std::string detail);

  /// Record a fault event; if a dump path is configured, the first fault
  /// snapshots the rings to it. Concurrent first faults elect exactly one
  /// dumper (the ring contents are serialized under the lock; only the
  /// file write happens outside it).
  void note_fault(sim::Time at, int node, std::string kind, std::string detail);

  /// Snapshot the rings to a JSON file; false on I/O failure.
  bool dump_now(const std::string& path);

  std::uint64_t faults() const;
  std::uint64_t dumps() const;
  std::uint64_t events_seen() const;

  /// {"schema": "gflink.flight_dump/v1", "nodes": [{"node", "spans",
  ///  "events"}, ...]} — nodes in id order, rings oldest-first.
  Json to_json() const;

  /// flight_spans_total / flight_events_total / flight_faults_total /
  /// flight_dumps_total counters. Snapshot-then-publish: the recorder's
  /// leaf lock is released before the registry's leaf lock is taken.
  void export_metrics(MetricsRegistry& m) const;

  void clear();

 private:
  Json to_json_locked() const GFLINK_REQUIRES(mu_);

  const std::size_t capacity_;
  mutable core::Mutex mu_;
  std::string dump_path_ GFLINK_GUARDED_BY(mu_);
  std::map<int, std::deque<CausalSpan>> spans_ GFLINK_GUARDED_BY(mu_);  // per-node rings
  std::map<int, std::deque<FlightEvent>> events_ GFLINK_GUARDED_BY(mu_);
  std::uint64_t spans_seen_ GFLINK_GUARDED_BY(mu_) = 0;
  std::uint64_t events_seen_ GFLINK_GUARDED_BY(mu_) = 0;
  std::uint64_t faults_ GFLINK_GUARDED_BY(mu_) = 0;
  std::uint64_t dumps_ GFLINK_GUARDED_BY(mu_) = 0;
};

}  // namespace gflink::obs
