// Always-on bounded flight recorder: per-node ring buffers of the most
// recent completed spans and notable events, dumped to JSON when a fault
// fires or a run aborts. The rings are small and always active (unlike
// span retention, which is opt-in), so post-mortems of untraced runs still
// see the work surrounding the failure.
//
// Thread-safety: simulation-plane, like SpanStore — single simulation
// thread only, no lock (docs/ARCHITECTURE.md, "Concurrency invariants").
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "sim/time.hpp"

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace gflink::obs {

struct FlightEvent {
  sim::Time at = 0;
  int node = -1;       // -1 = master
  std::string kind;    // e.g. "shuffle_fault", "worker_lost", "oom_retry"
  std::string detail;  // free-form context

  Json to_json() const;
};

class FlightRecorder {
 public:
  /// Per-node ring depth, for spans and events independently.
  explicit FlightRecorder(std::size_t ring_capacity = 256) : capacity_(ring_capacity) {}

  std::size_t capacity() const { return capacity_; }

  /// When set, the first note_fault() writes a dump here automatically
  /// (later faults only count — the interesting state is around the first).
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  const std::string& dump_path() const { return dump_path_; }

  /// SpanStore streams every completed span in; the ring keeps the most
  /// recent `capacity` per node.
  void on_span_closed(const CausalSpan& span);

  /// Record a notable event (kept in the node's event ring).
  void note_event(sim::Time at, int node, std::string kind, std::string detail);

  /// Record a fault event; if a dump path is configured, the first fault
  /// snapshots the rings to it.
  void note_fault(sim::Time at, int node, std::string kind, std::string detail);

  /// Snapshot the rings to a JSON file; false on I/O failure.
  bool dump_now(const std::string& path);

  std::uint64_t faults() const { return faults_; }
  std::uint64_t dumps() const { return dumps_; }

  /// {"schema": "gflink.flight_dump/v1", "nodes": [{"node", "spans",
  ///  "events"}, ...]} — nodes in id order, rings oldest-first.
  Json to_json() const;

  /// flight_spans_total / flight_events_total / flight_faults_total /
  /// flight_dumps_total counters.
  void export_metrics(MetricsRegistry& m) const;

  void clear();

 private:
  std::size_t capacity_;
  std::string dump_path_;
  std::map<int, std::deque<CausalSpan>> spans_;   // per-node rings
  std::map<int, std::deque<FlightEvent>> events_;
  std::uint64_t spans_seen_ = 0;
  std::uint64_t events_seen_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t dumps_ = 0;
};

}  // namespace gflink::obs
