// Causal span tracing: the job-wide dependency DAG behind the flat lanes.
//
// Where sim::Tracer records independent per-lane intervals (good for
// utilization), the SpanStore records *causal* spans with parent/child
// links: every job gets a trace id, and each engine stage, task, shuffle
// session, per-block send, DFS spill and per-GWork H2D/kernel/D2H chunk
// opens a span under its causing parent, so the whole run forms one DAG.
// On top of the DAG live the analyses that explain where time went:
//
//  * extract_critical_path() walks the DAG backwards from each root span
//    ("last finisher" rule) and attributes every instant of the root's
//    duration to exactly one category, so the per-category breakdown sums
//    to the makespan exactly;
//  * find_stragglers() flags spans whose duration exceeds the p95 of their
//    name peer group and names the resource the straggler waited on.
//
// Thread-safety: the SpanStore is simulation-plane state, mutated only by
// the single simulation thread between suspension points (same discipline
// as sim::Tracer — see docs/ARCHITECTURE.md, "Concurrency invariants").
// It takes no lock; do not touch it from host-plane threads.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.hpp"

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace gflink::obs {

class FlightRecorder;

/// Span identity. 0 means "no span": APIs taking a parent treat 0 as
/// "root" and data-plane call sites treat a 0 SpanLink as "don't record".
using SpanId = std::uint64_t;

/// The fixed taxonomy every span is attributed to. Control covers
/// scheduling/deploy/CPU compute (the paper's JVM-side work); H2D/Kernel/
/// D2H are the GPU pipeline stages; Shuffle is network block movement;
/// Spill is DFS spill/unspill I/O; Wait is time blocked on a resource
/// (task slot, pipe queue, transfer credit).
enum class SpanCategory : std::uint8_t { Control, H2D, Kernel, D2H, Shuffle, Spill, Wait };
inline constexpr std::size_t kSpanCategories = 7;

/// Lower-case category name ("control", "h2d", ...), stable for reports.
const char* span_category_name(SpanCategory c);

/// Parent link handed down through data-plane call sites (Pipe::transfer,
/// Gdfs reads/writes): which span caused the transfer and what category
/// the resulting child span carries. Default (parent 0) records nothing.
struct SpanLink {
  SpanId parent = 0;
  SpanCategory category = SpanCategory::Control;
};

struct CausalSpan {
  SpanId id = 0;
  SpanId parent = 0;           // 0 = root of a trace
  std::uint64_t trace_id = 0;  // job id; inherited from the parent span
  std::string name;            // peer-group key, e.g. "task:ranks" — no per-span ids
  SpanCategory category = SpanCategory::Control;
  sim::Time begin = 0;
  sim::Time end = 0;
  std::string lane;  // display lane for trace viewers, e.g. "node3/shuffle"
  int node = -1;     // owning node (flight-recorder ring key); -1 = master
  std::vector<std::pair<std::string, std::string>> notes;  // annotations

  sim::Duration duration() const { return end - begin; }
  Json to_json() const;
};

class SpanStore {
 public:
  SpanStore() = default;

  /// When retaining, closed spans are kept for DAG analysis/export; when
  /// not (the default), they only feed the flight-recorder ring and the
  /// aggregate counters, keeping memory bounded on untraced runs.
  void set_retain(bool retain) { retain_ = retain; }
  bool retain() const { return retain_; }

  /// Completed spans always stream into `flight` (may be nullptr).
  void attach_flight_recorder(FlightRecorder* flight) { flight_ = flight; }

  /// Open a span. The trace id is inherited from the parent; for roots
  /// (parent 0) pass the job id via `trace_id`. Times are explicit so the
  /// store has no Simulation dependency (tests build DAGs by hand).
  SpanId open(std::string name, SpanCategory category, SpanId parent, sim::Time begin,
              std::string lane = {}, int node = -1, std::uint64_t trace_id = 0);

  /// Attach a key/value note to an open span (no-op on id 0 / closed ids).
  void annotate(SpanId id, std::string key, std::string value);

  void close(SpanId id, sim::Time end);

  /// One-shot open+close for spans whose extent is known at record time
  /// (block transfers, waits). Returns the id so callers may parent to it.
  SpanId record(std::string name, SpanCategory category, SpanId parent, sim::Time begin,
                sim::Time end, std::string lane = {}, int node = -1);

  /// Closed spans, in close order (deterministic). Empty unless retaining.
  const std::vector<CausalSpan>& spans() const { return closed_; }
  std::uint64_t recorded() const { return recorded_; }
  bool empty() const { return closed_.empty(); }
  void clear();

  /// Aggregate counters: trace_spans_total and per-category
  /// trace_span_ns_total{category=...}.
  void export_metrics(MetricsRegistry& m) const;

 private:
  bool retain_ = false;
  FlightRecorder* flight_ = nullptr;
  SpanId next_id_ = 1;
  std::uint64_t recorded_ = 0;
  std::array<sim::Duration, kSpanCategories> category_ns_{};
  std::unordered_map<SpanId, CausalSpan> open_;
  std::vector<CausalSpan> closed_;
};

// ---- Critical path ---------------------------------------------------------

/// One hop of the critical path: the interval [begin, end] was attributed
/// to this span's own category (its children already accounted for).
struct CriticalPathSegment {
  SpanId span = 0;
  std::string name;
  SpanCategory category = SpanCategory::Control;
  sim::Time begin = 0;
  sim::Time end = 0;
};

struct CriticalPath {
  sim::Duration total = 0;  // sum of root-span durations == category sum
  std::array<sim::Duration, kSpanCategories> by_category{};
  std::vector<CriticalPathSegment> segments;  // chronological

  Json to_json() const;
};

/// Walk the DAG of closed spans backwards from each root ("last finisher"
/// rule): at every instant the critical path follows the child that
/// finishes last; gaps not covered by any child are the parent's own time.
/// Every instant of each root's duration lands in exactly one category, so
/// by_category sums to `total` exactly.
CriticalPath extract_critical_path(const SpanStore& store);

/// Gauge export: trace_critical_path_seconds (total and per category).
void export_critical_path_metrics(const CriticalPath& cp, MetricsRegistry& m);

// ---- Straggler attribution -------------------------------------------------

/// Nearest-rank p95 over a peer group: sort ascending and take the value at
/// index floor(0.95 * (n - 1)). This is the single definition of "the peer
/// group's p95" — find_stragglers() (post-hoc span report) and the live
/// telemetry straggler detector both call it, so an offline straggler and a
/// live straggler agree on what "slower than the peers" means. Empty input
/// returns a default-constructed T.
template <typename T>
T nearest_rank_p95(std::vector<T> values) {
  if (values.empty()) return T{};
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(0.95 * static_cast<double>(values.size() - 1));
  return values[rank];
}

struct Straggler {
  SpanId span = 0;
  std::string name;  // peer group
  std::string lane;
  sim::Duration duration = 0;
  sim::Duration p95 = 0;        // peer-group p95 the span exceeded
  std::string waited_on;        // longest Wait descendant ("" if none)

  Json to_json() const;
};

/// Group closed spans by name; within groups of at least `min_group`
/// members, flag spans strictly slower than the group's p95 duration
/// (nearest-rank over the sorted peer durations). `waited_on` names the
/// straggler's longest Wait-category descendant — the resource it was
/// actually blocked on.
std::vector<Straggler> find_stragglers(const SpanStore& store, std::size_t min_group = 4);

/// Gauge export: trace_stragglers_total.
void export_straggler_metrics(const std::vector<Straggler>& stragglers, MetricsRegistry& m);

}  // namespace gflink::obs
