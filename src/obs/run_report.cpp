#include "obs/run_report.hpp"

#include <algorithm>
#include <fstream>

namespace gflink::obs {

void RunReport::capture_spans(const SpanStore& spans) {
  const CriticalPath cp = extract_critical_path(spans);
  critical_path = cp.to_json();
  export_critical_path_metrics(cp, metrics);
  const std::vector<Straggler> slow = find_stragglers(spans);
  stragglers = Json::array();
  for (const auto& s : slow) stragglers.push_back(s.to_json());
  export_straggler_metrics(slow, metrics);
}

Json RunReport::to_json() const {
  Json root = Json::object();
  root["name"] = name;
  root["schema"] = "gflink.run_report/v3";
  root["config"] = config;
  root["wall_seconds"] = wall_seconds;
  root["virtual_ns"] = static_cast<std::int64_t>(virtual_ns);
  root["virtual_seconds"] = sim::to_seconds(virtual_ns);
  root["metrics"] = metrics.to_json();
  Json lanes_json = Json::object();
  for (const auto& [lane, u] : lanes) {
    Json entry = Json::object();
    entry["busy_ns"] = static_cast<std::int64_t>(u.busy_ns);
    entry["spans"] = u.spans;
    entry["utilization"] = u.utilization;
    lanes_json[lane] = std::move(entry);
  }
  root["lane_utilization"] = std::move(lanes_json);
  if (!critical_path.is_null()) root["critical_path"] = critical_path;
  if (!stragglers.is_null()) root["stragglers"] = stragglers;
  if (!tenants.is_null()) root["tenants"] = tenants;
  return root;
}

bool RunReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json().dump(2) << "\n";
  return static_cast<bool>(out);
}

void add_derived_gflink_metrics(MetricsRegistry& m) {
  // Touch the headline keys so every report carries them, then derive.
  for (const char* stage : {"h2d", "kernel", "d2h"}) {
    m.counter("gpu_stage_busy_ns", {{"stage", stage}});
  }
  const double hits = m.counter_value("gpu_cache_hits_total");
  const double misses = m.counter_value("gpu_cache_misses_total");
  m.gauge("cache_hit_ratio").set(hits + misses > 0 ? hits / (hits + misses) : 0.0);

  const double loc_hits = m.counter_value("gstream_locality_hits_total");
  const double loc_misses = m.counter_value("gstream_locality_misses_total");
  m.gauge("locality_hit_ratio")
      .set(loc_hits + loc_misses > 0 ? loc_hits / (loc_hits + loc_misses) : 0.0);

  // Cluster-wide copy-compute overlap efficiency: how much of the hideable
  // copy time (bounded by min(copy busy, kernel busy) per GPU) actually ran
  // concurrently with a kernel. The per-GPU gauges carry the local values;
  // this rolls them up for the headline tables.
  const double overlap = m.counter_sum("gpu_copy_compute_overlap_ns_total");
  const double copy_busy =
      m.counter_sum("gpu_h2d_busy_ns_total") + m.counter_sum("gpu_d2h_busy_ns_total");
  const double kernel_busy = m.counter_sum("gpu_kernel_busy_ns_total");
  const double hideable = std::min(copy_busy, kernel_busy);
  m.gauge("copy_compute_overlap_efficiency").set(hideable > 0 ? overlap / hideable : 0.0);
}

}  // namespace gflink::obs
