#include "obs/span.hpp"

#include <algorithm>
#include <map>

#include "sim/util.hpp"

#include "obs/flight_recorder.hpp"

namespace gflink::obs {

namespace {

constexpr std::size_t idx(SpanCategory c) { return static_cast<std::size_t>(c); }

}  // namespace

const char* span_category_name(SpanCategory c) {
  switch (c) {
    case SpanCategory::Control: return "control";
    case SpanCategory::H2D: return "h2d";
    case SpanCategory::Kernel: return "kernel";
    case SpanCategory::D2H: return "d2h";
    case SpanCategory::Shuffle: return "shuffle";
    case SpanCategory::Spill: return "spill";
    case SpanCategory::Wait: return "wait";
  }
  return "unknown";
}

Json CausalSpan::to_json() const {
  Json j = Json::object();
  j["id"] = id;
  j["parent"] = parent;
  j["trace_id"] = trace_id;
  j["name"] = name;
  j["category"] = span_category_name(category);
  j["begin_ns"] = static_cast<std::int64_t>(begin);
  j["end_ns"] = static_cast<std::int64_t>(end);
  if (!lane.empty()) j["lane"] = lane;
  j["node"] = node;
  if (!notes.empty()) {
    Json n = Json::object();
    for (const auto& [k, v] : notes) n[k] = v;
    j["notes"] = std::move(n);
  }
  return j;
}

SpanId SpanStore::open(std::string name, SpanCategory category, SpanId parent, sim::Time begin,
                       std::string lane, int node, std::uint64_t trace_id) {
  CausalSpan s;
  s.id = next_id_++;
  s.parent = parent;
  s.name = std::move(name);
  s.category = category;
  s.begin = begin;
  s.lane = std::move(lane);
  s.node = node;
  if (parent != 0) {
    // Inherit the trace id from the parent if it is still open or retained;
    // a parent that was already dropped leaves the child's trace id at 0.
    auto it = open_.find(parent);
    if (it != open_.end()) {
      s.trace_id = it->second.trace_id;
    } else if (retain_) {
      for (auto rit = closed_.rbegin(); rit != closed_.rend(); ++rit) {
        if (rit->id == parent) {
          s.trace_id = rit->trace_id;
          break;
        }
      }
    }
  } else {
    s.trace_id = trace_id;
  }
  SpanId id = s.id;
  open_.emplace(id, std::move(s));
  return id;
}

void SpanStore::annotate(SpanId id, std::string key, std::string value) {
  if (id == 0) return;
  auto it = open_.find(id);
  if (it == open_.end()) return;
  it->second.notes.emplace_back(std::move(key), std::move(value));
}

void SpanStore::close(SpanId id, sim::Time end) {
  if (id == 0) return;
  auto it = open_.find(id);
  GFLINK_CHECK_MSG(it != open_.end(), "SpanStore::close on unknown/already-closed span id");
  CausalSpan s = std::move(it->second);
  open_.erase(it);
  s.end = end;
  ++recorded_;
  category_ns_[idx(s.category)] += s.duration();
  if (flight_ != nullptr) flight_->on_span_closed(s);
  if (retain_) closed_.push_back(std::move(s));
}

SpanId SpanStore::record(std::string name, SpanCategory category, SpanId parent, sim::Time begin,
                         sim::Time end, std::string lane, int node) {
  SpanId id = open(std::move(name), category, parent, begin, std::move(lane), node);
  close(id, end);
  return id;
}

void SpanStore::clear() {
  open_.clear();
  closed_.clear();
  recorded_ = 0;
  category_ns_.fill(0);
  next_id_ = 1;
}

void SpanStore::export_metrics(MetricsRegistry& m) const {
  m.counter("trace_spans_total").inc(static_cast<double>(recorded_));
  for (std::size_t i = 0; i < kSpanCategories; ++i) {
    m.counter("trace_span_ns_total", {{"category", span_category_name(static_cast<SpanCategory>(i))}})
        .inc(static_cast<double>(category_ns_[i]));
  }
}

// ---- Critical path ---------------------------------------------------------

Json CriticalPath::to_json() const {
  Json j = Json::object();
  j["total_ns"] = static_cast<std::int64_t>(total);
  Json breakdown = Json::object();
  for (std::size_t i = 0; i < kSpanCategories; ++i) {
    breakdown[span_category_name(static_cast<SpanCategory>(i))] =
        static_cast<std::int64_t>(by_category[i]);
  }
  j["breakdown_ns"] = std::move(breakdown);
  Json segs = Json::array();
  for (const auto& s : segments) {
    Json e = Json::object();
    e["span"] = s.span;
    e["name"] = s.name;
    e["category"] = span_category_name(s.category);
    e["begin_ns"] = static_cast<std::int64_t>(s.begin);
    e["end_ns"] = static_cast<std::int64_t>(s.end);
    segs.push_back(std::move(e));
  }
  j["segments"] = std::move(segs);
  return j;
}

namespace {

/// Backwards "last finisher" walk. For span S over [lo, hi]: children are
/// visited in decreasing end order, the gap between the frontier and a
/// child's end is S's own time, the child's interval recurses, and the
/// frontier jumps to the child's begin. Whatever remains in front of the
/// earliest child is S's own time too — so [lo, hi] is covered exactly once.
struct CriticalPathWalker {
  const std::unordered_map<SpanId, std::vector<const CausalSpan*>>& children;
  CriticalPath& cp;

  void attribute(const CausalSpan& s, sim::Time b, sim::Time e) {
    cp.by_category[idx(s.category)] += e - b;
    cp.segments.push_back({s.id, s.name, s.category, b, e});
  }

  void walk(const CausalSpan& s, sim::Time lo, sim::Time hi) {
    const sim::Time floor = std::max(s.begin, lo);
    sim::Time t = hi;
    auto it = children.find(s.id);
    if (it != children.end()) {
      for (const CausalSpan* c : it->second) {
        if (t <= floor) break;
        const sim::Time ce = std::min(c->end, t);
        const sim::Time cb = std::max(c->begin, floor);
        if (ce <= cb) continue;
        if (ce < t) attribute(s, ce, t);
        walk(*c, cb, ce);
        t = cb;
      }
    }
    if (t > floor) attribute(s, floor, t);
  }
};

}  // namespace

CriticalPath extract_critical_path(const SpanStore& store) {
  CriticalPath cp;
  const auto& spans = store.spans();
  if (spans.empty()) return cp;

  std::unordered_map<SpanId, const CausalSpan*> by_id;
  by_id.reserve(spans.size());
  for (const auto& s : spans) by_id.emplace(s.id, &s);

  std::unordered_map<SpanId, std::vector<const CausalSpan*>> children;
  std::vector<const CausalSpan*> roots;
  for (const auto& s : spans) {
    if (s.parent != 0 && by_id.count(s.parent) != 0) {
      children[s.parent].push_back(&s);
    } else {
      roots.push_back(&s);
    }
  }
  for (auto& [id, kids] : children) {
    std::sort(kids.begin(), kids.end(), [](const CausalSpan* a, const CausalSpan* b) {
      if (a->end != b->end) return a->end > b->end;
      return a->id > b->id;
    });
  }
  std::sort(roots.begin(), roots.end(), [](const CausalSpan* a, const CausalSpan* b) {
    if (a->begin != b->begin) return a->begin < b->begin;
    return a->id < b->id;
  });

  CriticalPathWalker walker{children, cp};
  for (const CausalSpan* root : roots) {
    cp.total += root->duration();
    walker.walk(*root, root->begin, root->end);
  }

  // The walk emits segments latest-first; restore chronological order and
  // coalesce adjacent segments of the same span.
  std::reverse(cp.segments.begin(), cp.segments.end());
  std::vector<CriticalPathSegment> merged;
  for (auto& seg : cp.segments) {
    if (!merged.empty() && merged.back().span == seg.span && merged.back().end == seg.begin) {
      merged.back().end = seg.end;
    } else {
      merged.push_back(std::move(seg));
    }
  }
  cp.segments = std::move(merged);
  return cp;
}

void export_critical_path_metrics(const CriticalPath& cp, MetricsRegistry& m) {
  m.gauge("trace_critical_path_seconds").set(sim::to_seconds(cp.total));
  for (std::size_t i = 0; i < kSpanCategories; ++i) {
    m.gauge("trace_critical_path_seconds",
            {{"category", span_category_name(static_cast<SpanCategory>(i))}})
        .set(sim::to_seconds(cp.by_category[i]));
  }
}

// ---- Straggler attribution -------------------------------------------------

Json Straggler::to_json() const {
  Json j = Json::object();
  j["span"] = span;
  j["name"] = name;
  if (!lane.empty()) j["lane"] = lane;
  j["duration_ns"] = static_cast<std::int64_t>(duration);
  j["p95_ns"] = static_cast<std::int64_t>(p95);
  if (!waited_on.empty()) j["waited_on"] = waited_on;
  return j;
}

std::vector<Straggler> find_stragglers(const SpanStore& store, std::size_t min_group) {
  const auto& spans = store.spans();
  std::map<std::string, std::vector<const CausalSpan*>> groups;  // deterministic order
  for (const auto& s : spans) groups[s.name].push_back(&s);

  std::unordered_map<SpanId, std::vector<const CausalSpan*>> children;
  for (const auto& s : spans) {
    if (s.parent != 0) children[s.parent].push_back(&s);
  }

  // The resource a straggler waited on: its longest Wait-category
  // descendant, rendered as "<name> on <lane>".
  auto waited_on = [&children](const CausalSpan& top) -> std::string {
    const CausalSpan* longest = nullptr;
    std::vector<const CausalSpan*> stack{&top};
    while (!stack.empty()) {
      const CausalSpan* s = stack.back();
      stack.pop_back();
      if (s != &top && s->category == SpanCategory::Wait &&
          (longest == nullptr || s->duration() > longest->duration())) {
        longest = s;
      }
      auto it = children.find(s->id);
      if (it != children.end()) {
        stack.insert(stack.end(), it->second.begin(), it->second.end());
      }
    }
    if (longest == nullptr) return {};
    if (longest->lane.empty()) return longest->name;
    return longest->name + " on " + longest->lane;
  };

  std::vector<Straggler> out;
  for (const auto& [name, members] : groups) {
    if (members.size() < min_group) continue;
    std::vector<sim::Duration> durations;
    durations.reserve(members.size());
    for (const CausalSpan* s : members) durations.push_back(s->duration());
    const sim::Duration p95 = nearest_rank_p95(std::move(durations));
    for (const CausalSpan* s : members) {
      if (s->duration() <= p95) continue;
      Straggler st;
      st.span = s->id;
      st.name = s->name;
      st.lane = s->lane;
      st.duration = s->duration();
      st.p95 = p95;
      st.waited_on = waited_on(*s);
      out.push_back(std::move(st));
    }
  }
  // Most egregious first; span id breaks ties deterministically.
  std::sort(out.begin(), out.end(), [](const Straggler& a, const Straggler& b) {
    const sim::Duration ea = a.duration - a.p95;
    const sim::Duration eb = b.duration - b.p95;
    if (ea != eb) return ea > eb;
    return a.span < b.span;
  });
  return out;
}

void export_straggler_metrics(const std::vector<Straggler>& stragglers, MetricsRegistry& m) {
  m.gauge("trace_stragglers_total").set(static_cast<double>(stragglers.size()));
}

}  // namespace gflink::obs
