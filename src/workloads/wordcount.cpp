// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "workloads/wordcount.hpp"

#include "core/gdst.hpp"
#include "sim/random.hpp"

namespace gflink::workloads::wordcount {

// Compile-time + static-init layout proof for every mirror this
// translation unit reinterprets batch bytes as (see mem/gstruct.hpp).
GSTRUCT_MIRROR_CHECK(WordCount, word_count_desc);

namespace {

// Tokenization cost is charged at the source. The count combine pays JVM
// string/Tuple2 handling on original Flink, raw GStruct bytes on GFlink.
const df::OpCost kCountCostCpu{400.0, 2.0 * sizeof(WordCount)};
const df::OpCost kCountCostGpu{310.0, 2.0 * sizeof(WordCount)};

}  // namespace

sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config) {
  GFLINK_CHECK_MSG(mode == Mode::Cpu || runtime != nullptr, "GPU mode needs a GFlinkRuntime");
  const auto bytes = static_cast<std::uint64_t>(static_cast<double>(config.text_bytes) * tb.scale);
  const auto n_words =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     static_cast<double>(bytes) / config.bytes_per_word));
  // Producer tasks run at full slot parallelism in both modes: GWork
  // production is cheap, and the job's CPU-side stages (reduce, labelling,
  // writes) need the slots either way.
  const int partitions =
      config.partitions > 0 ? config.partitions : engine.default_parallelism();
  const std::string path = "/data/wordcount-" + std::to_string(bytes);
  if (!engine.dfs().exists(path)) {
    engine.dfs().create_file(path, bytes);
  }

  Result result;
  df::Job job(engine, "wordcount");
  co_await job.submit();

  // Shared Zipf table (deterministic; sampling is per-partition seeded).
  auto zipf = std::make_shared<sim::ZipfTable>(config.vocabulary, config.zipf_s);

  auto source = df::DataSet<WordCount>::from_generator(
      engine, &word_count_desc(), partitions,
      [n_words, partitions, zipf, seed = config.seed](int part, std::vector<WordCount>& out) {
        for (std::uint64_t i = static_cast<std::uint64_t>(part); i < n_words;
             i += static_cast<std::uint64_t>(partitions)) {
          // Word choice depends only on the global token index, so any
          // partitioning yields the same multiset of words.
          std::uint64_t h = i * 1000003 + seed;
          const double u = static_cast<double>(sim::splitmix64(h) >> 11) * 0x1.0p-53;
          out.push_back(WordCount{static_cast<std::uint64_t>(zipf->sample_u(u)), 1});
        }
      },
      // Tokenizing ~12 bytes of text per record: split + hash (JVM string
      // handling dominates WordCount's CPU cost).
      df::OpCost{120.0, 24.0}, path);

  df::DataSet<WordCount> counted = [&] {
    if (mode == Mode::Cpu) {
      return source.reduce_by_key("wordcountReduce", kCountCostCpu,
                                  [](const WordCount& w) { return w.word; },
                                  [](WordCount& acc, const WordCount& w) { acc.count += w.count; });
    }
    ensure_kernels_registered();
    core::GpuOpSpec spec;
    spec.kernel = "cudaWordcountBlock";
    spec.ptx_path = "/kernels/wordcount.ptx";
    spec.layout = mem::Layout::SoA;
    // One pass: caching buys nothing (the paper's stated reason WordCount
    // barely speeds up).
    spec.cache_input = false;
    auto partials = core::gpu_dataset_op<WordCount, WordCount>(source, &word_count_desc(),
                                                               "gpuWordcountBlock", spec);
    return partials
        .filter("dropPadding", df::OpCost{2.0, sizeof(WordCount)},
                [](const WordCount& w) { return w.word != ~0ULL; })
        .reduce_by_key("wordcountReduce", kCountCostGpu,
                       [](const WordCount& w) { return w.word; },
                       [](WordCount& acc, const WordCount& w) { acc.count += w.count; });
  }();

  auto counts = co_await counted.collect(job);
  result.total_words = 0;
  for (const auto& w : counts) result.total_words += w.count;
  result.distinct_words = counts.size();

  if (config.write_output) {
    co_await engine.dfs().write(0, "/out/wordcount", counts.size() * sizeof(WordCount));
    job.stats().io_bytes_written += counts.size() * sizeof(WordCount);
  }

  job.finish();
  if (runtime != nullptr) runtime->release_job(job.id());
  result.run.stats = job.stats();
  result.run.total = job.stats().total();
  result.run.iterations.push_back(result.run.total);
  result.run.checksum =
      static_cast<double>(result.total_words) + static_cast<double>(result.distinct_words);
  co_return result;
}

}  // namespace gflink::workloads::wordcount
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
