// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "workloads/linreg.hpp"

#include "core/gdst.hpp"
#include "sim/random.hpp"

namespace gflink::workloads::linreg {

// Compile-time + static-init layout proof for every mirror this
// translation unit reinterprets batch bytes as (see mem/gstruct.hpp).
GSTRUCT_MIRROR_CHECK(Sample, sample_desc);
GSTRUCT_MIRROR_CHECK(Gradient, gradient_desc);
GSTRUCT_MIRROR_CHECK(VecEntry, vec_entry_desc);

namespace {

// The JVM-side gradient UDF is the slowest per-record code of the suite
// (boxed doubles, tuple wrappers): calibrated to ~4.1 us/sample, which is
// what gives LinearRegression the paper's largest overall speedup (9.2x).
const df::OpCost kGradientCost{1850.0, sizeof(Sample) + sizeof(Gradient)};
const df::OpCost kCombineCost{2.0 * (kDim + 1), 2.0 * sizeof(Gradient)};

}  // namespace

Sample sample_at(std::uint64_t i, std::uint64_t seed) {
  std::uint64_t h = i * 0x9e3779b97f4a7c15ULL + seed;
  Sample s;
  double y = 3.0;  // bias ground truth
  for (int j = 0; j < kDim; ++j) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    // Zero-centered feature in [-2, 2): gradient descent stays stable.
    s.x[j] = static_cast<float>(static_cast<std::int64_t>(h >> 40) - (1 << 23)) / (1 << 22);
    y += (j + 1) * 0.25 * s.x[j];
  }
  s.y = static_cast<float>(y);
  return s;
}

df::DataSet<Gradient> mapper(const df::DataSet<Sample>& samples, Mode mode,
                             std::shared_ptr<std::vector<double>> weights,
                             std::uint64_t iteration) {
  if (mode == Mode::Cpu) {
    return samples.map<Gradient>(
        &gradient_desc(), "linregGradient", kGradientCost, [weights](const Sample& s) {
          const auto& w = *weights;
          double pred = w[kDim];
          for (int j = 0; j < kDim; ++j) pred += w[j] * s.x[j];
          const double err = pred - s.y;
          Gradient g{};
          for (int j = 0; j < kDim; ++j) g.g[j] = err * s.x[j];
          g.g[kDim] = err;
          g.count = 1;
          return g;
        });
  }
  ensure_kernels_registered();
  core::GpuOpSpec spec;
  spec.kernel = "cudaLinregGradient";
  spec.ptx_path = "/kernels/linreg.ptx";
  spec.layout = mem::Layout::SoA;
  spec.cache_input = true;
  spec.cache_namespace = 1;
  spec.make_aux = [weights, iteration](df::TaskContext& ctx) {
    const std::uint64_t bytes = (kDim + 1) * sizeof(double);
    auto buf = ctx.worker_state().memory().allocate_unbudgeted(bytes);  // pinned off-heap
    buf->write(0, weights->data(), bytes);
    core::GBuffer aux;
    aux.host = std::move(buf);
    aux.bytes = bytes;
    aux.cache = true;
    aux.cache_key = core::make_cache_key(100, 0, static_cast<std::uint32_t>(iteration));
    aux.counts_for_locality = false;
    return std::vector<core::GBuffer>{aux};
  };
  return core::gpu_reduce_op<Sample, Gradient>(samples, &gradient_desc(), "gpuLinregGradient",
                                               std::move(spec));
}

sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config) {
  GFLINK_CHECK_MSG(mode == Mode::Cpu || runtime != nullptr, "GPU mode needs a GFlinkRuntime");
  const auto n = static_cast<std::uint64_t>(static_cast<double>(config.samples) * tb.scale);
  // Producer tasks run at full slot parallelism in both modes: GWork
  // production is cheap, and the job's CPU-side stages (reduce, labelling,
  // writes) need the slots either way.
  const int partitions =
      config.partitions > 0 ? config.partitions : engine.default_parallelism();
  const std::string path = "/data/linreg-" + std::to_string(n);
  if (!engine.dfs().exists(path)) {
    engine.dfs().create_file(path, n * sizeof(Sample));
  }

  Result result;
  auto weights = std::make_shared<std::vector<double>>(kDim + 1, 0.0);

  df::Job job(engine, "linreg");
  co_await job.submit();

  auto source = df::DataSet<Sample>::from_generator(
      engine, &sample_desc(), partitions,
      [n, partitions, seed = config.seed](int part, std::vector<Sample>& out) {
        for (std::uint64_t i = static_cast<std::uint64_t>(part); i < n;
             i += static_cast<std::uint64_t>(partitions)) {
          out.push_back(sample_at(i, seed));
        }
      },
      df::OpCost{8.0, sizeof(Sample)}, path);

  df::DataHandle samples;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const sim::Time t0 = engine.now();
    if (iter == 0) {
      samples = co_await source.materialize(job);
    }
    auto ds = df::DataSet<Sample>::from_handle(engine, samples);
    auto grads = mapper(ds, mode, weights, static_cast<std::uint64_t>(iter))
                     .reduce("linregReduce", kCombineCost,
                             [](Gradient& acc, const Gradient& g) {
                               for (int j = 0; j <= kDim; ++j) acc.g[j] += g.g[j];
                               acc.count += g.count;
                             });
    auto total = co_await grads.collect(job);
    if (!total.empty() && total[0].count > 0) {
      const auto& g = total[0];
      for (int j = 0; j <= kDim; ++j) {
        (*weights)[static_cast<std::size_t>(j)] -=
            config.learning_rate * g.g[j] / static_cast<double>(g.count);
      }
    }
    co_await engine.broadcast(job, (kDim + 1) * sizeof(double));

    if (iter == config.iterations - 1 && config.write_output) {
      // Write per-sample predictions (one VecEntry per sample).
      auto predictions = df::DataSet<Sample>::from_handle(engine, samples)
                             .map<VecEntry>(&vec_entry_desc(), "linregPredict",
                                            df::OpCost{2.0 * kDim, sizeof(Sample)},
                                            [weights](const Sample& s) {
                                              double pred = (*weights)[kDim];
                                              for (int j = 0; j < kDim; ++j) {
                                                pred += (*weights)[j] * s.x[j];
                                              }
                                              return VecEntry{0, static_cast<float>(pred)};
                                            });
      co_await predictions.write_dfs(job, "/out/linreg");
    }
    result.run.iterations.push_back(engine.now() - t0);
  }

  job.finish();
  if (runtime != nullptr) runtime->release_job(job.id());
  result.run.stats = job.stats();
  result.run.total = job.stats().total();
  result.weights = *weights;
  for (double w : result.weights) result.run.checksum += w;
  co_return result;
}

}  // namespace gflink::workloads::linreg
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
