// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// PointAdd — the paper's running example (Algorithm 3.1): map each 2-D
// point to {x + y, y}. Used by the Fig. 8 kernel-level and concurrency
// experiments as the light third application.
#pragma once

#include "workloads/common.hpp"
#include "workloads/records.hpp"

namespace gflink::workloads::pointadd {

struct Config {
  std::uint64_t points = 100'000'000;  // full-scale count
  int iterations = 1;
  int partitions = 0;
  std::uint64_t seed = 3;
};

struct Result {
  RunResult run;
};

Pt pt_at(std::uint64_t i, std::uint64_t seed);

df::DataSet<Pt> mapper(const df::DataSet<Pt>& points, Mode mode, std::uint64_t iteration);

sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config);

}  // namespace gflink::workloads::pointadd
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
