#include "workloads/records.hpp"

namespace gflink::workloads {

using mem::FieldType;
using mem::StructDescBuilder;

const mem::StructDesc& point_desc() {
  static const mem::StructDesc d =
      StructDescBuilder("Point", 8)
          .field("x", FieldType::F32, kDim, offsetof(Point, x))
          .build();
  return d;
}

const mem::StructDesc& cluster_agg_desc() {
  static const mem::StructDesc d =
      StructDescBuilder("ClusterAgg", 8)
          .field("cluster", FieldType::U64, 1, offsetof(ClusterAgg, cluster))
          .field("sum", FieldType::F32, kDim, offsetof(ClusterAgg, sum))
          .field("count", FieldType::U64, 1, offsetof(ClusterAgg, count))
          .build();
  return d;
}

const mem::StructDesc& sample_desc() {
  static const mem::StructDesc d =
      StructDescBuilder("Sample", 8)
          .field("x", FieldType::F32, kDim, offsetof(Sample, x))
          .field("y", FieldType::F32, 1, offsetof(Sample, y))
          .build();
  return d;
}

const mem::StructDesc& gradient_desc() {
  static const mem::StructDesc d =
      StructDescBuilder("Gradient", 8)
          .field("g", FieldType::F64, kDim + 1, offsetof(Gradient, g))
          .field("count", FieldType::U64, 1, offsetof(Gradient, count))
          .build();
  return d;
}

const mem::StructDesc& page_desc() {
  static const mem::StructDesc d =
      StructDescBuilder("Page", 8)
          .field("id", FieldType::U64, 1, offsetof(Page, id))
          .field("out", FieldType::U64, kOutDegree, offsetof(Page, out))
          .build();
  return d;
}

const mem::StructDesc& rank_msg_desc() {
  static const mem::StructDesc d =
      StructDescBuilder("RankMsg", 8)
          .field("page", FieldType::U32, 1, offsetof(RankMsg, page))
          .field("rank", FieldType::F32, 1, offsetof(RankMsg, rank))
          .build();
  return d;
}

const mem::StructDesc& vertex_desc() {
  static const mem::StructDesc d =
      StructDescBuilder("Vertex", 8)
          .field("id", FieldType::U64, 1, offsetof(Vertex, id))
          .field("neighbour", FieldType::U64, kOutDegree, offsetof(Vertex, neighbour))
          .build();
  return d;
}

const mem::StructDesc& label_msg_desc() {
  static const mem::StructDesc d =
      StructDescBuilder("LabelMsg", 8)
          .field("vertex", FieldType::U32, 1, offsetof(LabelMsg, vertex))
          .field("label", FieldType::U32, 1, offsetof(LabelMsg, label))
          .build();
  return d;
}

const mem::StructDesc& word_count_desc() {
  static const mem::StructDesc d =
      StructDescBuilder("WordCount", 8)
          .field("word", FieldType::U64, 1, offsetof(WordCount, word))
          .field("count", FieldType::U64, 1, offsetof(WordCount, count))
          .build();
  return d;
}

const mem::StructDesc& csr_row_desc() {
  static const mem::StructDesc d =
      StructDescBuilder("CsrRow", 8)
          .field("row", FieldType::U64, 1, offsetof(CsrRow, row))
          .field("col", FieldType::U32, kNnzPerRow, offsetof(CsrRow, col))
          .field("val", FieldType::F32, kNnzPerRow, offsetof(CsrRow, val))
          .build();
  return d;
}

const mem::StructDesc& vec_entry_desc() {
  static const mem::StructDesc d =
      StructDescBuilder("VecEntry", 8)
          .field("index", FieldType::U64, 1, offsetof(VecEntry, index))
          .field("value", FieldType::F32, 1, offsetof(VecEntry, value))
          .build();
  return d;
}

const mem::StructDesc& pt_desc() {
  static const mem::StructDesc d = StructDescBuilder("Pt", 8)
                                       .field("x", FieldType::F32, 1, offsetof(Pt, x))
                                       .field("y", FieldType::F32, 1, offsetof(Pt, y))
                                       .build();
  return d;
}

}  // namespace gflink::workloads
