// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "workloads/kmeans.hpp"

#include <cmath>

#include "core/gdst.hpp"
#include "sim/random.hpp"

namespace gflink::workloads::kmeans {

// Compile-time + static-init layout proof for every mirror this
// translation unit reinterprets batch bytes as (see mem/gstruct.hpp).
GSTRUCT_MIRROR_CHECK(Point, point_desc);
GSTRUCT_MIRROR_CHECK(ClusterAgg, cluster_agg_desc);
GSTRUCT_MIRROR_CHECK(VecEntry, vec_entry_desc);

namespace {

// CPU cost of the assignment UDF: distance to k centers per point through
// boxed floats and tuple wrappers, plus the aggregate record construction.
// Calibrated to ~2.7 us/point of JVM time (the 384 raw flops run at far
// below scalar peak in 2016-era Flink UDFs).
const df::OpCost kAssignCost{1300.0, sizeof(Point) + sizeof(ClusterAgg)};
// Combine of two aggregates.
const df::OpCost kCombineCost{2.0 * kDim, 2.0 * sizeof(ClusterAgg)};

int nearest_center(const Point& p, const std::vector<Point>& centers) {
  int best = 0;
  float best_d = 1e30f;
  for (std::size_t c = 0; c < centers.size(); ++c) {
    float d = 0;
    for (int j = 0; j < kDim; ++j) {
      const float diff = p.x[j] - centers[c].x[j];
      d += diff * diff;
    }
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::vector<Point> initial_centers(std::uint64_t seed) {
  // Standard practice (and HiBench's): seed the centers with the first k
  // input points.
  std::vector<Point> centers(kClusters);
  for (int c = 0; c < kClusters; ++c) {
    centers[static_cast<std::size_t>(c)] = point_at(static_cast<std::uint64_t>(c), seed);
  }
  return centers;
}

}  // namespace

Point point_at(std::uint64_t i, std::uint64_t seed) {
  // Cluster ground truth: k well-separated centers, Gaussian-ish noise via
  // a per-index hash (no shared RNG stream, so any partitioning of the
  // index space produces the same multiset).
  std::uint64_t h = i * 0x9e3779b97f4a7c15ULL + seed;
  Point p;
  const int truth = static_cast<int>(i % kClusters);
  for (int j = 0; j < kDim; ++j) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    // Zero-centered noise in [-2, 2).
    const float noise =
        static_cast<float>(static_cast<std::int64_t>(h >> 40) - (1 << 23)) / (1 << 22);
    p.x[j] = static_cast<float>(truth * 20 + (j % 3)) + noise;
  }
  return p;
}

df::DataSet<ClusterAgg> mapper(const df::DataSet<Point>& points, Mode mode,
                               std::shared_ptr<std::vector<Point>> centers,
                               std::uint64_t iteration) {
  if (mode == Mode::Cpu) {
    return points.map<ClusterAgg>(
        &cluster_agg_desc(), "kmeansAssign", kAssignCost,
        [centers](const Point& p) {
          const int c = nearest_center(p, *centers);
          ClusterAgg agg{};
          agg.cluster = static_cast<std::uint64_t>(c);
          for (int j = 0; j < kDim; ++j) agg.sum[j] = p.x[j];
          agg.count = 1;
          return agg;
        });
  }
  ensure_kernels_registered();
  core::GpuOpSpec spec;
  spec.kernel = "cudaKmeansAssign";
  spec.ptx_path = "/kernels/kmeans.ptx";
  spec.layout = mem::Layout::SoA;
  spec.cache_input = true;  // points are static across iterations
  spec.cache_namespace = 1;
  spec.out_items = [](std::size_t) { return static_cast<std::size_t>(kClusters); };
  spec.make_aux = [centers, iteration](df::TaskContext& ctx) {
    const std::uint64_t bytes = kClusters * sizeof(Point);
    auto buf = ctx.worker_state().memory().allocate_unbudgeted(bytes);  // pinned off-heap
    buf->write(0, centers->data(), bytes);
    core::GBuffer aux;
    aux.host = std::move(buf);
    aux.bytes = bytes;
    aux.cache = true;  // one H2D per device per iteration
    aux.cache_key = core::make_cache_key(100, 0, static_cast<std::uint32_t>(iteration));
    aux.counts_for_locality = false;
    return std::vector<core::GBuffer>{aux};
  };
  return core::gpu_dataset_op<Point, ClusterAgg>(points, &cluster_agg_desc(), "gpuKmeansAssign",
                                                 std::move(spec));
}

sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config) {
  GFLINK_CHECK_MSG(mode == Mode::Cpu || runtime != nullptr, "GPU mode needs a GFlinkRuntime");
  const auto n = static_cast<std::uint64_t>(static_cast<double>(config.points) * tb.scale);
  // Producer tasks run at full slot parallelism in both modes: GWork
  // production is cheap, and the job's CPU-side stages (reduce, labelling,
  // writes) need the slots either way.
  const int partitions =
      config.partitions > 0 ? config.partitions : engine.default_parallelism();

  const std::string path = "/data/kmeans-" + std::to_string(n);
  if (!engine.dfs().exists(path)) {
    engine.dfs().create_file(path, n * sizeof(Point));
  }

  Result result;
  auto centers = std::make_shared<std::vector<Point>>(initial_centers(config.seed));

  df::Job job(engine, "kmeans");
  co_await job.submit();

  auto source = df::DataSet<Point>::from_generator(
      engine, &point_desc(), partitions,
      [n, partitions, seed = config.seed](int part, std::vector<Point>& out) {
        for (std::uint64_t i = static_cast<std::uint64_t>(part); i < n;
             i += static_cast<std::uint64_t>(partitions)) {
          out.push_back(point_at(i, seed));
        }
      },
      df::OpCost{8.0, sizeof(Point)}, path);

  df::DataHandle points;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const sim::Time t0 = engine.now();
    if (iter == 0) {
      points = co_await source.materialize(job);  // DFS read, first iteration
    }
    auto ds = df::DataSet<Point>::from_handle(engine, points);
    auto aggs = mapper(ds, mode, centers, static_cast<std::uint64_t>(iter))
                    .reduce_by_key("kmeansReduce", kCombineCost,
                                   [](const ClusterAgg& a) { return a.cluster; },
                                   [](ClusterAgg& acc, const ClusterAgg& b) {
                                     for (int j = 0; j < kDim; ++j) acc.sum[j] += b.sum[j];
                                     acc.count += b.count;
                                   });
    auto partials = co_await aggs.collect(job);
    for (const auto& agg : partials) {
      if (agg.count == 0) continue;
      Point& c = (*centers)[agg.cluster];
      for (int j = 0; j < kDim; ++j) {
        c.x[j] = agg.sum[j] / static_cast<float>(agg.count);
      }
    }
    // Broadcast the new centers to every worker (the per-superstep shuffle
    // the paper notes is KMeans' only shuffle).
    co_await engine.broadcast(job, kClusters * sizeof(Point));

    if (config.checkpoint_interval > 0 && (iter + 1) % config.checkpoint_interval == 0) {
      co_await engine.checkpoint(job, "iter-" + std::to_string(iter),
                                 kClusters * sizeof(Point));
    }

    if (iter == config.iterations - 1 && config.write_output) {
      // Final pass: write each point's cluster assignment (point id ->
      // cluster), which is why the last iteration rises (paper Fig. 7a).
      auto labelled = df::DataSet<Point>::from_handle(engine, points)
                          .map<VecEntry>(&vec_entry_desc(), "kmeansLabel",
                                         df::OpCost{800.0, sizeof(Point)},
                                         [centers](const Point& p) {
                                           const int c = nearest_center(p, *centers);
                                           return VecEntry{static_cast<std::uint64_t>(c),
                                                           p.x[0]};
                                         });
      co_await labelled.write_dfs(job, "/out/kmeans");
    }
    result.run.iterations.push_back(engine.now() - t0);
  }

  job.finish();
  if (runtime != nullptr) runtime->release_job(job.id());
  result.run.stats = job.stats();
  result.run.total = job.stats().total();
  result.centers = *centers;
  for (const auto& c : result.centers) {
    for (int j = 0; j < kDim; ++j) result.run.checksum += c.x[j];
  }
  co_return result;
}

}  // namespace gflink::workloads::kmeans
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
