// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "workloads/concomp.hpp"

#include <set>

#include "core/gdst.hpp"

namespace gflink::workloads::concomp {

// Compile-time + static-init layout proof for every mirror this
// translation unit reinterprets batch bytes as (see mem/gstruct.hpp).
GSTRUCT_MIRROR_CHECK(Vertex, vertex_desc);
GSTRUCT_MIRROR_CHECK(LabelMsg, label_msg_desc);

namespace {

// 9 emitted tuples per vertex with JVM boxing/serialization (~26 us, Flink coGroup machinery).
const df::OpCost kScatterCost{11400.0,
                              sizeof(Vertex) + (kOutDegree + 1) * sizeof(LabelMsg)};
// min() combine: dominated by (de)serialization on original Flink; raw
// GStruct bytes under GFlink.
const df::OpCost kMinCostCpu{1350.0, 2.0 * sizeof(LabelMsg)};
const df::OpCost kMinCostGpu{60.0, 2.0 * sizeof(LabelMsg)};

}  // namespace

Vertex vertex_at(std::uint64_t id, std::uint64_t n, std::uint64_t components,
                 std::uint64_t seed) {
  // Vertices are striped over `components`; edges stay within a component
  // (vertex ids congruent modulo `components`), so the ground truth is
  // exactly `components` labels.
  Vertex v;
  v.id = id;
  const std::uint64_t comp = id % components;
  const std::uint64_t per = (n + components - 1) / components;
  std::uint64_t h = id * 0x9e3779b97f4a7c15ULL + seed;
  for (int j = 0; j < kOutDegree; ++j) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    std::uint64_t k = (h >> 16) % per;
    std::uint64_t target = comp + k * components;
    if (target >= n) target = comp;  // clamp into the component
    v.neighbour[j] = target;
  }
  return v;
}

df::DataSet<LabelMsg> mapper(const df::DataSet<Vertex>& vertices, Mode mode,
                             std::shared_ptr<std::vector<std::uint32_t>> labels,
                             std::uint64_t iteration) {
  if (mode == Mode::Cpu) {
    return vertices.flat_map<LabelMsg>(
        &label_msg_desc(), "concompScatter", kScatterCost,
        [labels](const Vertex& v, df::FlatCollector<LabelMsg>& out) {
          const std::uint32_t own = (*labels)[v.id];
          out.add(LabelMsg{static_cast<std::uint32_t>(v.id), own});
          for (int j = 0; j < kOutDegree; ++j) {
            out.add(LabelMsg{static_cast<std::uint32_t>(v.neighbour[j]), own});
          }
        });
  }
  ensure_kernels_registered();
  core::GpuOpSpec spec;
  spec.kernel = "cudaConcompMsgs";
  spec.ptx_path = "/kernels/concomp.ptx";
  spec.layout = mem::Layout::SoA;
  spec.cache_input = true;
  spec.chunkable = true;  // label messages are element-wise per vertex
  spec.cache_namespace = 1;
  spec.out_items = [](std::size_t n) { return n * (kOutDegree + 1); };
  spec.make_aux = [labels, iteration](df::TaskContext& ctx) {
    const std::uint64_t bytes = labels->size() * sizeof(std::uint32_t);
    auto buf = ctx.worker_state().memory().allocate_unbudgeted(bytes);  // pinned off-heap
    buf->write(0, labels->data(), bytes);
    core::GBuffer aux;
    aux.host = std::move(buf);
    aux.bytes = bytes;
    aux.cache = true;
    aux.cache_key = core::make_cache_key(100, 0, static_cast<std::uint32_t>(iteration));
    aux.counts_for_locality = false;
    return std::vector<core::GBuffer>{aux};
  };
  return core::gpu_dataset_op<Vertex, LabelMsg>(vertices, &label_msg_desc(), "gpuConcompScatter",
                                                std::move(spec));
}

sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config) {
  GFLINK_CHECK_MSG(mode == Mode::Cpu || runtime != nullptr, "GPU mode needs a GFlinkRuntime");
  const auto n = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(config.vertices) * tb.scale));
  const std::uint64_t components = std::min(config.components, n);
  // Producer tasks run at full slot parallelism in both modes: GWork
  // production is cheap, and the job's CPU-side stages (reduce, labelling,
  // writes) need the slots either way.
  const int partitions =
      config.partitions > 0 ? config.partitions : engine.default_parallelism();
  const std::string path = "/data/concomp-" + std::to_string(n);
  if (!engine.dfs().exists(path)) {
    engine.dfs().create_file(path, n * sizeof(Vertex));
  }

  Result result;
  auto labels = std::make_shared<std::vector<std::uint32_t>>(n);
  for (std::uint64_t i = 0; i < n; ++i) (*labels)[i] = static_cast<std::uint32_t>(i);

  df::Job job(engine, "concomp");
  co_await job.submit();

  auto source = df::DataSet<Vertex>::from_generator(
      engine, &vertex_desc(), partitions,
      [n, components, partitions, seed = config.seed](int part, std::vector<Vertex>& out) {
        for (std::uint64_t i = static_cast<std::uint64_t>(part); i < n;
             i += static_cast<std::uint64_t>(partitions)) {
          out.push_back(vertex_at(i, n, components, seed));
        }
      },
      df::OpCost{10.0, sizeof(Vertex)}, path);

  df::DataHandle vertices;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const sim::Time t0 = engine.now();
    if (iter == 0) {
      vertices = co_await source.materialize(job);
    }
    auto ds = df::DataSet<Vertex>::from_handle(engine, vertices);
    auto mins = mapper(ds, mode, labels, static_cast<std::uint64_t>(iter))
                    .reduce_by_key("concompReduce",
                                   mode == Mode::Cpu ? kMinCostCpu : kMinCostGpu,
                                   [](const LabelMsg& m) { return m.vertex; },
                                   [](LabelMsg& acc, const LabelMsg& m) {
                                     acc.label = std::min(acc.label, m.label);
                                   });
    auto updates = co_await mins.collect(job);
    for (const auto& u : updates) {
      (*labels)[u.vertex] = std::min((*labels)[u.vertex], u.label);
    }
    co_await engine.broadcast(job, n * sizeof(std::uint32_t));

    if (iter == config.iterations - 1 && config.write_output) {
      co_await engine.dfs().write(0, "/out/concomp-" + std::to_string(n),
                                  n * sizeof(std::uint32_t));
      job.stats().io_bytes_written += n * sizeof(std::uint32_t);
    }
    result.run.iterations.push_back(engine.now() - t0);
  }

  job.finish();
  if (runtime != nullptr) runtime->release_job(job.id());
  result.run.stats = job.stats();
  result.run.total = job.stats().total();
  std::set<std::uint32_t> distinct(labels->begin(), labels->end());
  result.distinct_labels = distinct.size();
  result.run.checksum = static_cast<double>(result.distinct_labels);
  co_return result;
}

}  // namespace gflink::workloads::concomp
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
