// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// LinearRegression via batch gradient descent, CPU and GFlink paths.
//
// Per iteration: every sample contributes err * x to the gradient; partial
// gradients reduce to one record; the driver updates the weights and
// broadcasts them. Samples are cached (cluster memory + GPU cache).
#pragma once

#include "workloads/common.hpp"
#include "workloads/records.hpp"

namespace gflink::workloads::linreg {

struct Config {
  std::uint64_t samples = 210'000'000;  // full-scale count (Table 1)
  int iterations = 10;  // gradient-descent epochs
  int partitions = 0;
  double learning_rate = 1e-3;
  bool write_output = true;
  std::uint64_t seed = 11;
};

struct Result {
  RunResult run;
  std::vector<double> weights;  // kDim + 1 (bias last)
};

Sample sample_at(std::uint64_t i, std::uint64_t seed);

/// The gradient mapper (one Gradient per partition block / per record).
df::DataSet<Gradient> mapper(const df::DataSet<Sample>& samples, Mode mode,
                             std::shared_ptr<std::vector<double>> weights,
                             std::uint64_t iteration);

sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config);

}  // namespace gflink::workloads::linreg
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
