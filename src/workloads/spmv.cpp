// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "workloads/spmv.hpp"

#include <cmath>

#include "core/gdst.hpp"

namespace gflink::workloads::spmv {

// Compile-time + static-init layout proof for every mirror this
// translation unit reinterprets batch bytes as (see mem/gstruct.hpp).
GSTRUCT_MIRROR_CHECK(CsrRow, csr_row_desc);
GSTRUCT_MIRROR_CHECK(VecEntry, vec_entry_desc);

namespace {

// CPU row UDF. Idiomatic Flink SpMV processes every nonzero as a Tuple3
// (row, col, value) joined with the vector and grouped by row, costing on
// the order of 1 us per nonzero (~64 us per row here) — this is the cost
// the paper's cuBLAS-backed GPU path removes. Calibrated accordingly.
const df::OpCost kRowCost{29500.0, sizeof(CsrRow) + 4.0 * kNnzPerRow};

/// Full-scale vector size: the paper pairs a 1.0 GB matrix with a 123 MB
/// vector (ratio ~1/8), capped so huge matrices keep a realistic vector.
std::uint64_t vector_bytes_for(std::uint64_t matrix_bytes) {
  return std::min<std::uint64_t>(matrix_bytes / 8, 256ULL << 20);
}

}  // namespace

std::uint64_t rows_for(std::uint64_t matrix_bytes, double scale) {
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(matrix_bytes) * scale) / sizeof(CsrRow));
}

std::uint64_t cols_for(std::uint64_t matrix_bytes, double scale) {
  return std::max<std::uint64_t>(
      kNnzPerRow,
      static_cast<std::uint64_t>(static_cast<double>(vector_bytes_for(matrix_bytes)) * scale) /
          sizeof(float));
}

CsrRow row_at(std::uint64_t r, std::uint64_t n_cols, std::uint64_t seed) {
  CsrRow row;
  row.row = r;
  std::uint64_t h = r * 0x9e3779b97f4a7c15ULL + seed;
  for (int j = 0; j < kNnzPerRow; ++j) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    row.col[j] = static_cast<std::uint32_t>((h >> 16) % n_cols);
    row.val[j] = static_cast<float>(static_cast<std::int32_t>(h & 0xffff) - 0x8000) / 0x8000;
  }
  return row;
}

df::DataSet<VecEntry> mapper(const df::DataSet<CsrRow>& rows, Mode mode,
                             std::shared_ptr<std::vector<float>> x, std::uint64_t iteration,
                             bool gpu_cache) {
  if (mode == Mode::Cpu) {
    return rows.map<VecEntry>(&vec_entry_desc(), "spmvRow", kRowCost,
                              [x](const CsrRow& row) {
                                float acc = 0;
                                for (int j = 0; j < kNnzPerRow; ++j) {
                                  acc += row.val[j] * (*x)[row.col[j]];
                                }
                                return VecEntry{row.row, acc};
                              });
  }
  ensure_kernels_registered();
  core::GpuOpSpec spec;
  spec.kernel = "cudaSpmvRow";
  spec.ptx_path = "/kernels/spmv.ptx";
  spec.layout = mem::Layout::SoA;  // cuSPARSE-style columnar access
  spec.cache_input = gpu_cache;    // the matrix is cached on first touch
  spec.chunkable = true;           // one output row per input row
  spec.cache_namespace = 1;
  spec.make_aux = [x, iteration, gpu_cache](df::TaskContext& ctx) {
    const std::uint64_t bytes = x->size() * sizeof(float);
    auto buf = ctx.worker_state().memory().allocate_unbudgeted(bytes);  // pinned off-heap
    buf->write(0, x->data(), bytes);
    core::GBuffer aux;
    aux.host = std::move(buf);
    aux.bytes = bytes;
    aux.cache = gpu_cache;  // one vector transfer per device per iteration
    aux.cache_key = core::make_cache_key(100, 0, static_cast<std::uint32_t>(iteration));
    aux.counts_for_locality = false;
    return std::vector<core::GBuffer>{aux};
  };
  return core::gpu_dataset_op<CsrRow, VecEntry>(rows, &vec_entry_desc(), "gpuSpmvRow",
                                                std::move(spec));
}

sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config) {
  GFLINK_CHECK_MSG(mode == Mode::Cpu || runtime != nullptr, "GPU mode needs a GFlinkRuntime");
  const std::uint64_t n_rows = rows_for(config.matrix_bytes, tb.scale);
  const std::uint64_t n_cols = cols_for(config.matrix_bytes, tb.scale);
  // Producer tasks run at full slot parallelism in both modes: GWork
  // production is cheap, and the job's CPU-side stages (reduce, labelling,
  // writes) need the slots either way.
  const int partitions =
      config.partitions > 0 ? config.partitions : engine.default_parallelism();
  const std::string path = "/data/spmv-" + std::to_string(n_rows);
  if (!engine.dfs().exists(path)) {
    engine.dfs().create_file(path, n_rows * sizeof(CsrRow));
  }

  Result result;
  result.rows = n_rows;
  result.cols = n_cols;
  auto x = std::make_shared<std::vector<float>>(n_cols, 1.0f);

  df::Job job(engine, "spmv");
  co_await job.submit();

  auto source = df::DataSet<CsrRow>::from_generator(
      engine, &csr_row_desc(), partitions,
      [n_rows, n_cols, partitions, seed = config.seed](int part, std::vector<CsrRow>& out) {
        for (std::uint64_t r = static_cast<std::uint64_t>(part); r < n_rows;
             r += static_cast<std::uint64_t>(partitions)) {
          out.push_back(row_at(r, n_cols, seed));
        }
      },
      df::OpCost{16.0, sizeof(CsrRow)}, path);

  // The benchmark repeatedly applies the static matrix to the static input
  // vector (the paper's setup: the matrix is cached on the GPUs after the
  // first iteration, and only the first/last iterations touch the DFS).
  df::DataHandle rows;
  std::vector<VecEntry> y_entries;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const sim::Time t0 = engine.now();
    if (iter == 0) {
      rows = co_await source.materialize(job);  // DFS read of the matrix
      // Distribute the vector to the workers once.
      co_await engine.broadcast(job, n_cols * sizeof(float));
    }
    auto ds = df::DataSet<CsrRow>::from_handle(engine, rows);
    // The vector is static: cache key 0 on every iteration (one transfer
    // per device for the whole job).
    auto y = mapper(ds, mode, x, /*iteration=*/0, config.gpu_cache);
    if (iter == config.iterations - 1) {
      // Last iteration: pull the result vector to the driver and persist it.
      y_entries = co_await y.collect(job);
      if (config.write_output) {
        co_await engine.dfs().write(0, "/out/spmv-" + std::to_string(n_rows),
                                    n_rows * sizeof(float));
        job.stats().io_bytes_written += n_rows * sizeof(float);
      }
    } else {
      (void)co_await y.count(job);  // metadata-only action per superstep
    }
    result.run.iterations.push_back(engine.now() - t0);
  }

  job.finish();
  if (runtime != nullptr) runtime->release_job(job.id());
  result.run.stats = job.stats();
  result.run.total = job.stats().total();
  for (const auto& e : y_entries) {
    if (e.index < 1024) result.run.checksum += e.value;
  }
  co_return result;
}

}  // namespace gflink::workloads::spmv
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
