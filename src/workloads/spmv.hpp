// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// Iterative sparse matrix-vector multiplication (y = A x), CPU and GFlink.
//
// The CSR matrix is static: it is read from GDFS in the first iteration,
// stays in cluster memory, and — in GPU mode — is cached in device memory
// (the paper's flagship use of the GPU cache scheme, Fig. 7b / Fig. 8a).
// The dense vector x changes per iteration and is re-broadcast; on GPUs it
// is transferred once per device per iteration through an iteration-scoped
// cache key. The final iteration writes the vector to GDFS.
#pragma once

#include "workloads/common.hpp"
#include "workloads/records.hpp"

namespace gflink::workloads::spmv {

struct Config {
  std::uint64_t matrix_bytes = 1ULL << 30;  // full-scale (Table 1: 2-32 GB)
  int iterations = 5;
  int partitions = 0;
  bool write_output = true;
  /// Disable to measure the GPU cache scheme's effect (paper Fig. 8a).
  bool gpu_cache = true;
  std::uint64_t seed = 5;
};

struct Result {
  RunResult run;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
};

/// Number of CSR rows / vector entries for a full-scale matrix size.
std::uint64_t rows_for(std::uint64_t matrix_bytes, double scale);
std::uint64_t cols_for(std::uint64_t matrix_bytes, double scale);

CsrRow row_at(std::uint64_t r, std::uint64_t n_cols, std::uint64_t seed);

df::DataSet<VecEntry> mapper(const df::DataSet<CsrRow>& rows, Mode mode,
                             std::shared_ptr<std::vector<float>> x, std::uint64_t iteration,
                             bool gpu_cache = true);

sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config);

}  // namespace gflink::workloads::spmv
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
