// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// WordCount over Zipf-distributed text, CPU and GFlink paths.
//
// One-pass batch job: tokenized words (hashed ids) reduce by word. The job
// is I/O-bound — reading tens of GB of text dwarfs the counting — which is
// why GPU acceleration barely moves the total (paper: ~1.1x, Fig. 5c).
#pragma once

#include "workloads/common.hpp"
#include "workloads/records.hpp"

namespace gflink::workloads::wordcount {

struct Config {
  std::uint64_t text_bytes = 32ULL << 30;  // full-scale (Table 1: 24-56 GB)
  int partitions = 0;
  std::size_t vocabulary = 30000;
  double zipf_s = 1.0;
  /// Average bytes of text per token (word + separator).
  double bytes_per_word = 12.0;
  bool write_output = true;
  std::uint64_t seed = 77;
};

struct Result {
  RunResult run;
  std::uint64_t total_words = 0;
  std::uint64_t distinct_words = 0;
};

sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config);

}  // namespace gflink::workloads::wordcount
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
