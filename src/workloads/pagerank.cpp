// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "workloads/pagerank.hpp"

#include <algorithm>

#include "core/gdst.hpp"

namespace gflink::workloads::pagerank {

// Compile-time + static-init layout proof for every mirror this
// translation unit reinterprets batch bytes as (see mem/gstruct.hpp).
GSTRUCT_MIRROR_CHECK(Page, page_desc);
GSTRUCT_MIRROR_CHECK(RankMsg, rank_msg_desc);

namespace {

// Scatter UDF: 8 emitted tuples per page; on the JVM every emission boxes a
// Tuple2 and serializes it toward the shuffle (~18 us/page total).
const df::OpCost kScatterCost{8300.0, sizeof(Page) + kOutDegree * sizeof(RankMsg)};
// Message combine: on original Flink each message is deserialized, keyed
// and reserialized (~1.5 us); with GFlink's GStruct representation the
// combine runs over raw off-heap bytes (paper SS4) at a fraction of that.
const df::OpCost kCombineCostCpu{900.0, 2.0 * sizeof(RankMsg)};
const df::OpCost kCombineCostGpu{60.0, 2.0 * sizeof(RankMsg)};

}  // namespace

Page page_at(std::uint64_t id, std::uint64_t n, std::uint64_t seed, int zipf_shift) {
  Page p;
  p.id = id;
  std::uint64_t h = id * 0x9e3779b97f4a7c15ULL + seed;
  for (int j = 0; j < kOutDegree; ++j) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    std::uint64_t range = n;
    if (zipf_shift > 0) {
      // Zipf-like hot-page skew in pure integer math (determinism): a
      // geometric(1/2) level drawn from the hash's low bits shrinks the
      // target range by zipf_shift bits per level, piling link mass onto
      // low page ids with power-law-ish frequencies.
      int level = 0;
      std::uint64_t g = h;
      while ((g & 1) != 0 && level < 20) {
        g >>= 1;
        ++level;
      }
      const int shift = std::min(level * zipf_shift, 48);
      range = std::max<std::uint64_t>(1, n >> shift);
    }
    p.out[j] = (h >> 16) % range;
  }
  return p;
}

df::DataSet<RankMsg> mapper(const df::DataSet<Page>& pages, Mode mode,
                            std::shared_ptr<std::vector<float>> ranks,
                            std::uint64_t iteration) {
  if (mode == Mode::Cpu) {
    return pages.flat_map<RankMsg>(
        &rank_msg_desc(), "pagerankScatter", kScatterCost,
        [ranks](const Page& p, df::FlatCollector<RankMsg>& out) {
          const float share = (*ranks)[p.id] / kOutDegree;
          for (int j = 0; j < kOutDegree; ++j) {
            out.add(RankMsg{static_cast<std::uint32_t>(p.out[j]), share});
          }
        });
  }
  ensure_kernels_registered();
  core::GpuOpSpec spec;
  spec.kernel = "cudaPagerankContrib";
  spec.ptx_path = "/kernels/pagerank.ptx";
  spec.layout = mem::Layout::SoA;
  spec.cache_input = true;  // the adjacency is static
  spec.chunkable = true;    // contributions are element-wise per page
  spec.cache_namespace = 1;
  spec.out_items = [](std::size_t n) { return n * kOutDegree; };
  spec.make_aux = [ranks, iteration](df::TaskContext& ctx) {
    const std::uint64_t bytes = ranks->size() * sizeof(float);
    auto buf = ctx.worker_state().memory().allocate_unbudgeted(bytes);  // pinned off-heap
    buf->write(0, ranks->data(), bytes);
    core::GBuffer aux;
    aux.host = std::move(buf);
    aux.bytes = bytes;
    aux.cache = true;
    aux.cache_key = core::make_cache_key(100, 0, static_cast<std::uint32_t>(iteration));
    aux.counts_for_locality = false;
    return std::vector<core::GBuffer>{aux};
  };
  return core::gpu_dataset_op<Page, RankMsg>(pages, &rank_msg_desc(), "gpuPagerankScatter",
                                             std::move(spec));
}

sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config) {
  GFLINK_CHECK_MSG(mode == Mode::Cpu || runtime != nullptr, "GPU mode needs a GFlinkRuntime");
  const auto n = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(config.pages) * tb.scale));
  // Producer tasks run at full slot parallelism in both modes: GWork
  // production is cheap, and the job's CPU-side stages (reduce, labelling,
  // writes) need the slots either way.
  const int partitions =
      config.partitions > 0 ? config.partitions : engine.default_parallelism();
  const std::string path = "/data/pagerank-" + std::to_string(n);
  if (!engine.dfs().exists(path)) {
    engine.dfs().create_file(path, n * sizeof(Page));
  }

  Result result;
  auto ranks = std::make_shared<std::vector<float>>(
      n, static_cast<float>(1.0 / static_cast<double>(n)));

  df::Job job(engine, "pagerank");
  co_await job.submit();

  auto source = df::DataSet<Page>::from_generator(
      engine, &page_desc(), partitions,
      [n, partitions, seed = config.seed, zipf = config.zipf_shift](int part,
                                                                    std::vector<Page>& out) {
        for (std::uint64_t i = static_cast<std::uint64_t>(part); i < n;
             i += static_cast<std::uint64_t>(partitions)) {
          out.push_back(page_at(i, n, seed, zipf));
        }
      },
      df::OpCost{10.0, sizeof(Page)}, path);

  df::DataHandle pages;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const sim::Time t0 = engine.now();
    if (iter == 0) {
      pages = co_await source.materialize(job);
    }
    auto ds = df::DataSet<Page>::from_handle(engine, pages);
    auto sums = mapper(ds, mode, ranks, static_cast<std::uint64_t>(iter))
                    .reduce_by_key("pagerankReduce",
                                   mode == Mode::Cpu ? kCombineCostCpu : kCombineCostGpu,
                                   [](const RankMsg& m) { return m.page; },
                                   [](RankMsg& acc, const RankMsg& m) { acc.rank += m.rank; });
    auto contributions = co_await sums.collect(job);
    const float base = static_cast<float>((1.0 - config.damping) / static_cast<double>(n));
    std::fill(ranks->begin(), ranks->end(), base);
    for (const auto& c : contributions) {
      (*ranks)[c.page] = base + static_cast<float>(config.damping) * c.rank;
    }
    co_await engine.broadcast(job, n * sizeof(float));

    if (iter == config.iterations - 1 && config.write_output) {
      co_await engine.dfs().write(0, "/out/pagerank-" + std::to_string(n), n * sizeof(float));
      job.stats().io_bytes_written += n * sizeof(float);
    }
    result.run.iterations.push_back(engine.now() - t0);
  }

  job.finish();
  if (runtime != nullptr) runtime->release_job(job.id());
  result.run.stats = job.stats();
  result.run.total = job.stats().total();
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(n, 64); ++i) {
    result.ranks.push_back((*ranks)[i]);
    result.run.checksum += (*ranks)[i];
  }
  co_return result;
}

}  // namespace gflink::workloads::pagerank
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
