// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// KMeans clustering (HiBench-style), CPU and GFlink paths.
//
// Per iteration: assign every point to its nearest of k centers and emit a
// per-cluster partial aggregate; reduce aggregates by cluster; the driver
// recomputes centers and broadcasts them. The point dataset is read from
// GDFS in the first iteration and stays in cluster memory (and — in GPU
// mode — in the GPU cache) afterwards; the final iteration writes the
// clustered output back to GDFS, matching the paper's Fig. 7 shape.
#pragma once

#include "workloads/common.hpp"
#include "workloads/records.hpp"

namespace gflink::workloads::kmeans {

struct Config {
  std::uint64_t points = 210'000'000;  // full-scale count (Table 1)
  int iterations = 10;  // HiBench KMeans default max iterations
  int partitions = 0;  // 0 = mode default
  /// Snapshot the centers to DFS every N iterations (0 = off).
  int checkpoint_interval = 0;
  bool write_output = true;
  std::uint64_t seed = 42;
};

struct Result {
  RunResult run;
  std::vector<Point> centers;
};

/// Deterministic point for global index i (identical for CPU/GPU runs).
Point point_at(std::uint64_t i, std::uint64_t seed);

/// The assignment mapper as a dataset transformation (used by the
/// operator-level benches of Fig. 8b). `centers` is read at task run time.
df::DataSet<ClusterAgg> mapper(const df::DataSet<Point>& points, Mode mode,
                               std::shared_ptr<std::vector<Point>> centers,
                               std::uint64_t iteration);

/// Run the full workload. `runtime` may be null in CPU mode.
sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config);

}  // namespace gflink::workloads::kmeans
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
