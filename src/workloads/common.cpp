#include "workloads/common.hpp"

#include <cstring>
#include <unordered_map>

#include "workloads/records.hpp"

namespace gflink::workloads {

df::EngineConfig make_engine_config(const Testbed& tb) {
  const double s = tb.scale;
  df::EngineConfig cfg;
  cfg.cluster.num_workers = tb.workers;
  // Single-machine runs (Fig. 7b, Fig. 8c, Table 2) host the JobManager on
  // the worker: master traffic is in-memory.
  cfg.cluster.colocated_master = (tb.workers == 1);

  net::NodeSpec node;
  node.cpu.cores = 4;                      // i5-4590
  node.cpu.effective_flops = 0.5e9;        // JVM UDF scalar throughput
  node.cpu.mem_bandwidth = 4.0e9;          // JVM effective copy bandwidth
  node.cpu.record_overhead = 50;           // iterator + virtual dispatch
  node.nic.bandwidth = 117.0e6;            // 1 GbE effective
  node.nic.latency = scaled(sim::micros(80), s);
  node.rdma.bandwidth = 6.0e9;             // 56 Gb/s FDR effective
  node.rdma.latency = scaled(sim::micros(2), s);
  node.disk.read_bandwidth = 150.0e6;
  node.disk.write_bandwidth = 120.0e6;
  node.disk.access_latency = scaled(sim::millis(4), s);
  cfg.cluster.worker = node;
  cfg.cluster.master = node;

  cfg.dfs.block_size =
      std::max<std::uint64_t>(4096, static_cast<std::uint64_t>((64.0 * (1 << 20)) * s));
  cfg.dfs.replication = std::min(2, tb.workers);
  cfg.dfs.namenode_latency = scaled(sim::micros(200), s);

  cfg.page_size = std::max<std::size_t>(
      1024, static_cast<std::size_t>(static_cast<double>(tb.full_block_bytes) * s));
  cfg.memory_pages_per_worker =
      std::max<std::size_t>(1024, static_cast<std::size_t>(8.0e9 * s) / cfg.page_size);

  cfg.job_submit_overhead = scaled(sim::millis(900), s);
  cfg.job_schedule_overhead = scaled(sim::millis(400), s);
  cfg.stage_schedule_overhead = scaled(sim::millis(8), s);
  cfg.task_deploy_overhead = scaled(sim::micros(300), s);
  cfg.failure_detection_delay = scaled(sim::millis(500), s);

  // Exchange blocks and the receiver spill budget shrink with the data
  // (bytes scale like record counts); retry backoff scales like latencies.
  cfg.shuffle.block_bytes = std::max<std::uint64_t>(
      1024, static_cast<std::uint64_t>((32.0 * (1 << 20)) * s));
  cfg.shuffle.receiver_budget_bytes = std::max<std::uint64_t>(
      64 * 1024, static_cast<std::uint64_t>(4.0e9 * s));
  cfg.shuffle.retry_backoff = scaled(sim::millis(100), s);
  cfg.shuffle.mode = tb.shuffle_mode;
  // Spill tiers scale like the data (byte budgets), while codec
  // bandwidths — like every bandwidth — stay unscaled.
  cfg.shuffle.spill_async = tb.spill_async;
  cfg.shuffle.spill.codec = tb.spill_codec;
  cfg.shuffle.spill.memory_tier_bytes =
      !tb.spill_memory_tier
          ? 0
          : std::max<std::uint64_t>(
                16 * 1024,
                static_cast<std::uint64_t>(static_cast<double>(tb.full_spill_memory_tier) * s));
  cfg.shuffle.spill.disk_tier_bytes =
      !tb.spill_disk_tier
          ? 0
          : std::max<std::uint64_t>(
                64 * 1024,
                static_cast<std::uint64_t>(static_cast<double>(tb.full_spill_disk_tier) * s));

  cfg.trace = tb.trace;
  return cfg;
}

core::GpuManagerConfig make_gpu_config(const Testbed& tb) {
  const double s = tb.scale;
  core::GpuManagerConfig cfg;
  gpu::DeviceSpec spec = tb.gpu_spec;
  spec.device_memory = std::max<std::uint64_t>(
      1 << 20, static_cast<std::uint64_t>(static_cast<double>(spec.device_memory) * s));
  spec.pcie_latency = scaled(spec.pcie_latency, s);
  spec.kernel_launch_overhead = scaled(spec.kernel_launch_overhead, s);
  cfg.devices.assign(static_cast<std::size_t>(tb.gpus_per_worker), spec);
  cfg.streams.streams_per_gpu = tb.streams_per_gpu;
  cfg.streams.idle_timeout = std::max<sim::Duration>(1, scaled(sim::millis(20), s));
  cfg.streams.policy = tb.scheduling;
  // Chunks scale with the blocks so every block splits into the same number
  // of chunks as at full size (0 stays 0: chunking disabled).
  cfg.streams.chunk_bytes =
      tb.full_chunk_bytes == 0
          ? 0
          : std::max<std::uint64_t>(
                256, static_cast<std::uint64_t>(static_cast<double>(tb.full_chunk_bytes) * s));
  cfg.streams.staging_slots = tb.staging_slots;
  cfg.streams.oom_retry_backoff = std::max<sim::Duration>(1, scaled(sim::micros(100), s));
  // The cache region is a user parameter but can never exceed the board:
  // leave a quarter of device memory for transient work buffers.
  cfg.cache_region_bytes = std::max<std::uint64_t>(
      1 << 16, std::min(static_cast<std::uint64_t>(
                            static_cast<double>(tb.full_cache_region) * s),
                        spec.device_memory * 3 / 4));
  cfg.cache_policy = tb.cache_policy;
  cfg.jni_overhead = scaled(sim::nanos(200), s);
  cfg.stub_overheads.malloc_cost = scaled(sim::micros(90), s);
  cfg.stub_overheads.free_cost = scaled(sim::micros(40), s);
  cfg.stub_overheads.host_register_cost_per_mb = scaled(sim::micros(200), s);
  return cfg;
}

namespace {

// Kernel parameter blocks (shared_ptr-held; see GWork::params).
struct KmeansParams {
  int k;
  int dim;
};
struct LinregParams {
  int dim;
};
struct GraphParams {
  std::uint64_t num_nodes;
  double damping;
};

void register_all_kernels() {
  auto& reg = gpu::KernelRegistry::global();

  // --- KMeans assignment + per-block partial sums ---------------------------
  // Buffers: [points, centers, out(k ClusterAgg)].
  {
    gpu::Kernel k;
    k.name = "cudaKmeansAssign";
    k.preferred_layout = mem::Layout::SoA;
    k.cost.flops_per_item = 3.0 * kClusters * kDim;  // distance to every center
    k.cost.dram_bytes_per_item = sizeof(Point);
    k.cost.fixed_flops = 2.0 * kClusters * kDim;     // block-level reduction tail
    k.fn = [](gpu::KernelLaunch& launch) {
      const auto* pts = reinterpret_cast<const Point*>(launch.buffers[0].data());
      const auto* centers = reinterpret_cast<const Point*>(launch.buffers[1].data());
      auto* out = reinterpret_cast<ClusterAgg*>(launch.buffers.back().data());
      for (int c = 0; c < kClusters; ++c) {
        out[c].cluster = static_cast<std::uint64_t>(c);
        std::memset(out[c].sum, 0, sizeof(out[c].sum));
        out[c].count = 0;
      }
      for (std::size_t i = 0; i < launch.items; ++i) {
        int best = 0;
        float best_d = 1e30f;
        for (int c = 0; c < kClusters; ++c) {
          float d = 0;
          for (int j = 0; j < kDim; ++j) {
            const float diff = pts[i].x[j] - centers[c].x[j];
            d += diff * diff;
          }
          if (d < best_d) {
            best_d = d;
            best = c;
          }
        }
        for (int j = 0; j < kDim; ++j) out[best].sum[j] += pts[i].x[j];
        ++out[best].count;
      }
    };
    reg.register_kernel(k);
  }

  // --- LinearRegression per-block gradient ----------------------------------
  // Buffers: [samples, weights(dim+1 doubles), out(1 Gradient)].
  {
    gpu::Kernel k;
    k.name = "cudaLinregGradient";
    k.preferred_layout = mem::Layout::SoA;
    k.cost.flops_per_item = 5.0 * kDim;  // fused dot + scaled accumulate
    k.cost.dram_bytes_per_item = sizeof(Sample);
    k.fn = [](gpu::KernelLaunch& launch) {
      const auto* samples = reinterpret_cast<const Sample*>(launch.buffers[0].data());
      const auto* w = reinterpret_cast<const double*>(launch.buffers[1].data());
      auto* out = reinterpret_cast<Gradient*>(launch.buffers.back().data());
      std::memset(out, 0, sizeof(Gradient));
      for (std::size_t i = 0; i < launch.items; ++i) {
        double pred = w[kDim];  // bias
        for (int j = 0; j < kDim; ++j) pred += w[j] * samples[i].x[j];
        const double err = pred - samples[i].y;
        for (int j = 0; j < kDim; ++j) out->g[j] += err * samples[i].x[j];
        out->g[kDim] += err;
        ++out->count;
      }
    };
    reg.register_kernel(k);
  }

  // --- SpMV: y_block = A_block * x ------------------------------------------
  // Buffers: [rows, x(vector of floats), out(n VecEntry)]. This is the
  // cuBLAS/cuSPARSE-quality path the paper uses, hence SoA efficiency.
  {
    gpu::Kernel k;
    k.name = "cudaSpmvRow";
    k.preferred_layout = mem::Layout::SoA;
    k.cost.flops_per_item = 2.0 * kNnzPerRow;
    k.cost.dram_bytes_per_item = sizeof(CsrRow) + 4.0 * kNnzPerRow;  // row + gathered x
    k.fn = [](gpu::KernelLaunch& launch) {
      const auto* rows = reinterpret_cast<const CsrRow*>(launch.buffers[0].data());
      const auto* x = reinterpret_cast<const float*>(launch.buffers[1].data());
      auto* out = reinterpret_cast<VecEntry*>(launch.buffers.back().data());
      for (std::size_t i = 0; i < launch.items; ++i) {
        float acc = 0;
        for (int j = 0; j < kNnzPerRow; ++j) acc += rows[i].val[j] * x[rows[i].col[j]];
        out[i] = VecEntry{rows[i].row, acc};
      }
    };
    reg.register_kernel(k);
  }

  // --- PageRank contributions ------------------------------------------------
  // Buffers: [pages, ranks(dense doubles), out(kOutDegree per page)].
  {
    gpu::Kernel k;
    k.name = "cudaPagerankContrib";
    k.preferred_layout = mem::Layout::SoA;
    k.cost.flops_per_item = 4.0 * kOutDegree;
    k.cost.dram_bytes_per_item = sizeof(Page) + sizeof(RankMsg) * kOutDegree;
    k.fn = [](gpu::KernelLaunch& launch) {
      const auto* pages = reinterpret_cast<const Page*>(launch.buffers[0].data());
      const auto* ranks = reinterpret_cast<const float*>(launch.buffers[1].data());
      auto* out = reinterpret_cast<RankMsg*>(launch.buffers.back().data());
      for (std::size_t i = 0; i < launch.items; ++i) {
        const float share = ranks[pages[i].id] / kOutDegree;
        for (int j = 0; j < kOutDegree; ++j) {
          out[i * kOutDegree + j] =
              RankMsg{static_cast<std::uint32_t>(pages[i].out[j]), share};
        }
      }
    };
    reg.register_kernel(k);
  }

  // --- ConnectedComponents label messages ------------------------------------
  // Buffers: [vertices, labels(dense u64), out((kOutDegree+1) per vertex)].
  {
    gpu::Kernel k;
    k.name = "cudaConcompMsgs";
    k.preferred_layout = mem::Layout::SoA;
    k.cost.flops_per_item = 2.0 * (kOutDegree + 1);
    k.cost.dram_bytes_per_item = sizeof(Vertex) + sizeof(LabelMsg) * (kOutDegree + 1);
    k.fn = [](gpu::KernelLaunch& launch) {
      const auto* verts = reinterpret_cast<const Vertex*>(launch.buffers[0].data());
      const auto* labels = reinterpret_cast<const std::uint32_t*>(launch.buffers[1].data());
      auto* out = reinterpret_cast<LabelMsg*>(launch.buffers.back().data());
      std::size_t o = 0;
      for (std::size_t i = 0; i < launch.items; ++i) {
        const std::uint32_t own = labels[verts[i].id];
        out[o++] = LabelMsg{static_cast<std::uint32_t>(verts[i].id), own};
        for (int j = 0; j < kOutDegree; ++j) {
          out[o++] = LabelMsg{static_cast<std::uint32_t>(verts[i].neighbour[j]), own};
        }
      }
    };
    reg.register_kernel(k);
  }

  // --- WordCount per-block combine -------------------------------------------
  // Buffers: [words, out(n WordCount, padded with word = UINT64_MAX)].
  {
    gpu::Kernel k;
    k.name = "cudaWordcountBlock";
    k.preferred_layout = mem::Layout::SoA;
    k.cost.flops_per_item = 12.0;  // hash + probe
    k.cost.dram_bytes_per_item = 2.0 * sizeof(WordCount);
    k.fn = [](gpu::KernelLaunch& launch) {
      const auto* in = reinterpret_cast<const WordCount*>(launch.buffers[0].data());
      auto* out = reinterpret_cast<WordCount*>(launch.buffers.back().data());
      std::unordered_map<std::uint64_t, std::uint64_t> counts;
      counts.reserve(launch.items);
      for (std::size_t i = 0; i < launch.items; ++i) counts[in[i].word] += in[i].count;
      std::size_t o = 0;
      for (const auto& [word, count] : counts) out[o++] = WordCount{word, count};
      for (; o < launch.items; ++o) out[o] = WordCount{~0ULL, 0};
    };
    reg.register_kernel(k);
  }

  // --- Generic block-sum reducer (the GReducer of Fig. 8b) --------------------
  // Buffers: [entries, out(1 VecEntry)]. Deliberately not compute-intensive:
  // one add per item — the paper notes GReducers gain little from GPUs.
  {
    gpu::Kernel k;
    k.name = "cudaSumVec";
    k.preferred_layout = mem::Layout::SoA;
    k.cost.flops_per_item = 1.0;
    k.cost.dram_bytes_per_item = sizeof(VecEntry);
    k.fn = [](gpu::KernelLaunch& launch) {
      const auto* in = reinterpret_cast<const VecEntry*>(launch.buffers[0].data());
      auto* out = reinterpret_cast<VecEntry*>(launch.buffers.back().data());
      VecEntry acc{0, 0.0f};
      for (std::size_t i = 0; i < launch.items; ++i) acc.value += in[i].value;
      out[0] = acc;
    };
    reg.register_kernel(k);
  }

  // --- PointAdd (the paper's Algorithm 3.1 example) ---------------------------
  // Buffers: [points, out(n Pt)].
  {
    gpu::Kernel k;
    k.name = "cudaAddPoint";
    k.preferred_layout = mem::Layout::AoS;  // the paper's example uses AoS
    k.cost.flops_per_item = 2.0;
    k.cost.dram_bytes_per_item = 2.0 * sizeof(Pt);
    k.fn = [](gpu::KernelLaunch& launch) {
      const auto* in = reinterpret_cast<const Pt*>(launch.buffers[0].data());
      auto* out = reinterpret_cast<Pt*>(launch.buffers.back().data());
      for (std::size_t i = 0; i < launch.items; ++i) {
        out[i] = Pt{in[i].x + in[i].y, in[i].y};
      }
    };
    reg.register_kernel(k);
  }
}

}  // namespace

void ensure_kernels_registered() {
  static const bool once = [] {
    register_all_kernels();
    return true;
  }();
  (void)once;
}

}  // namespace gflink::workloads
