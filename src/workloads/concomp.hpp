// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// ConnectedComponents by iterative label propagation, CPU and GFlink paths.
//
// Per iteration: every vertex sends its current label to itself and to all
// neighbours; messages reduce by vertex with min(); the driver rebuilds the
// dense label vector and broadcasts it. Labels converge to the minimum
// vertex id of each component.
#pragma once

#include "workloads/common.hpp"
#include "workloads/records.hpp"

namespace gflink::workloads::concomp {

struct Config {
  std::uint64_t vertices = 10'000'000;  // full-scale count (Table 1: 5-25 M)
  int iterations = 5;
  int partitions = 0;
  /// Number of disjoint components the generator builds.
  std::uint64_t components = 32;
  bool write_output = true;
  std::uint64_t seed = 31;
};

struct Result {
  RunResult run;
  std::uint64_t distinct_labels = 0;
};

Vertex vertex_at(std::uint64_t id, std::uint64_t n, std::uint64_t components,
                 std::uint64_t seed);

df::DataSet<LabelMsg> mapper(const df::DataSet<Vertex>& vertices, Mode mode,
                             std::shared_ptr<std::vector<std::uint32_t>> labels,
                             std::uint64_t iteration);

sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config);

}  // namespace gflink::workloads::concomp
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
