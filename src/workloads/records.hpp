// Record types (GStructs) shared by the benchmark workloads.
//
// Every struct mirrors its descriptor exactly (matches_host_layout holds),
// so records travel through the engine and onto simulated GPUs as raw
// GStruct bytes — the paper's zero-serialization representation.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mem/gstruct.hpp"

namespace gflink::workloads {

inline constexpr int kDim = 16;        // KMeans / LinearRegression dimensionality
inline constexpr int kClusters = 8;    // KMeans k
inline constexpr int kOutDegree = 8;   // PageRank / ConnectedComponents fan-out
inline constexpr int kNnzPerRow = 64;  // SpMV nonzeros per CSR row

/// A KMeans point (the paper's HiBench-style input).
struct Point {
  float x[kDim];
};

/// Per-cluster partial aggregate: sum of member coordinates + count.
struct ClusterAgg {
  std::uint64_t cluster;
  float sum[kDim];
  std::uint64_t count;
};

/// A labelled sample for LinearRegression (batch gradient descent).
struct Sample {
  float x[kDim];
  float y;
};

/// Partial gradient: per-weight sums plus the sample count.
struct Gradient {
  double g[kDim + 1];  // gradient w.r.t. weights + bias
  std::uint64_t count;
};

/// A web page with its out-links and current rank (PageRank).
struct Page {
  std::uint64_t id;
  std::uint64_t out[kOutDegree];
};

/// A rank contribution message (page <- contribution). Packed to 8 bytes:
/// page ids fit 32 bits and f32 rank precision suffices, halving shuffle
/// and gather volume (as a production implementation would).
struct RankMsg {
  std::uint32_t page;
  float rank;
};

/// A graph vertex with neighbours and its current component label.
struct Vertex {
  std::uint64_t id;
  std::uint64_t neighbour[kOutDegree];
};

/// A label propagation message (vertex <- candidate label). Packed to
/// 8 bytes like RankMsg.
struct LabelMsg {
  std::uint32_t vertex;
  std::uint32_t label;
};

/// A word occurrence (WordCount); `word` is the hashed token.
struct WordCount {
  std::uint64_t word;
  std::uint64_t count;
};

/// One CSR matrix row with fixed nonzero count (SpMV).
struct CsrRow {
  std::uint64_t row;
  std::uint32_t col[kNnzPerRow];
  float val[kNnzPerRow];
};

/// One entry of the SpMV result vector.
struct VecEntry {
  std::uint64_t index;
  float value;
};

/// A 2-D point for the paper's PointAdd example (Algorithm 3.1).
struct Pt {
  float x;
  float y;
};

// Descriptors (built once; field order mirrors the struct declarations).
const mem::StructDesc& point_desc();
const mem::StructDesc& cluster_agg_desc();
const mem::StructDesc& sample_desc();
const mem::StructDesc& gradient_desc();
const mem::StructDesc& page_desc();
const mem::StructDesc& rank_msg_desc();
const mem::StructDesc& vertex_desc();
const mem::StructDesc& label_msg_desc();
const mem::StructDesc& word_count_desc();
const mem::StructDesc& csr_row_desc();
const mem::StructDesc& vec_entry_desc();
const mem::StructDesc& pt_desc();

}  // namespace gflink::workloads
