// Shared benchmark scaffolding: the scaled testbed model, calibration
// constants, and the per-run result record.
//
// ## The scaling model
//
// The paper's datasets (150-270 M points, 24-56 GB text) cannot be
// processed record-for-record here, so benches run a uniformly *scaled*
// replica of the testbed: data sizes are multiplied by `scale` (default
// 1/1000) and — crucially — every fixed latency constant in the platform
// (job submission, scheduling, RPC/NIC/disk/namenode latencies, cudaMalloc,
// kernel launch, JNI redirect, PCIe setup) is multiplied by the same
// factor, while bandwidths and per-record costs stay untouched. Block and
// page sizes also scale, keeping block *counts* constant. Under this
// transformation every simulated duration is `scale` times the full-size
// duration, so ratios — speedups, crossovers, iteration shapes — are
// preserved exactly. Reports extrapolate to full-size seconds by dividing
// by `scale`.
//
// ## Calibration (targets in DESIGN.md)
//
// CPU: i5-4590 running JVM UDF code — 4 cores, ~0.5 GFLOP/s effective
// scalar throughput per core on boxed/iterator-heavy inner loops, ~4 GB/s
// effective copy bandwidth, 50 ns per-record iterator overhead.
// GPUs: DeviceSpec presets (see gpu/device_spec.cpp). PCIe matches the
// paper's Table 2 (2.97 GB/s plateau, ~1.8 us setup, ~0.2 us JNI).
#pragma once

#include "core/gpu_manager.hpp"
#include "dataflow/dataset.hpp"
#include "dataflow/engine.hpp"

namespace gflink::workloads {

namespace df = gflink::dataflow;
namespace core = gflink::core;

/// Testbed description for one benchmark run.
struct Testbed {
  int workers = 10;
  int gpus_per_worker = 2;
  gpu::DeviceSpec gpu_spec = gpu::DeviceSpec::c2050();
  double scale = 1e-3;
  /// GPU data-block size at full scale (scaled down like everything else).
  std::size_t full_block_bytes = 4 << 20;
  /// Per-job per-device GPU cache region at full scale (a user parameter;
  /// sized to fit a C2050's 3 GB minus working buffers).
  std::uint64_t full_cache_region = 2560ULL << 20;
  core::CachePolicy cache_policy = core::CachePolicy::Fifo;
  core::SchedulingPolicy scheduling = core::SchedulingPolicy::LocalityAware;
  int streams_per_gpu = 4;
  /// Chunk size of the intra-GWork pipeline at full scale (scaled down like
  /// the block size, so the chunks-per-block ratio is preserved). 0 turns
  /// the chunked pipeline off (monolithic three-stage execution).
  std::uint64_t full_chunk_bytes = 1 << 20;
  /// Device staging-ring depth (chunks in flight per stream).
  int staging_slots = 3;
  /// Exchange transport for every shuffled edge (barrier / pipelined /
  /// one_sided — the CLI's --shuffle-mode). One-sided is the default
  /// after its PR 7 soak: it wins on every workload cell measured.
  shuffle::ShuffleMode shuffle_mode = shuffle::ShuffleMode::OneSided;
  /// Spill-path configuration (the CLI's --spill-codec / --spill-tiers):
  /// async tiered offload with the LZ-style codec by default; the sync
  /// flag and tier switches exist for the bench_ablation_spill cells.
  spill::SpillCodec spill_codec = spill::SpillCodec::Lz;
  bool spill_async = true;
  bool spill_memory_tier = true;
  bool spill_disk_tier = true;
  /// Spill-tier budgets at full scale (scaled down like the data).
  std::uint64_t full_spill_memory_tier = 512ULL << 20;
  std::uint64_t full_spill_disk_tier = 8ULL << 30;
  bool trace = false;
};

/// Scale a duration constant (min 0; sub-ns truncates to 0, which only
/// affects constants that are negligible at full size too).
inline sim::Duration scaled(sim::Duration d, double scale) {
  return static_cast<sim::Duration>(static_cast<double>(d) * scale);
}

/// Build the dataflow engine config for a testbed.
df::EngineConfig make_engine_config(const Testbed& tb);

/// Build the GFlink GPU-layer config for a testbed.
core::GpuManagerConfig make_gpu_config(const Testbed& tb);

/// Register all workload kernels in the global registry (idempotent).
void ensure_kernels_registered();

/// Result of one workload run.
struct RunResult {
  /// Simulated wall time of the whole job, submission included.
  sim::Duration total = 0;
  /// Simulated wall time per iteration (iterative workloads). The first
  /// iteration includes the DFS read; the last includes the DFS write.
  std::vector<sim::Duration> iterations;
  df::JobStats stats;
  /// Workload-defined correctness probe (identical for CPU and GPU paths).
  double checksum = 0.0;

  /// Extrapolate a scaled duration to full-size seconds.
  static double full_seconds(sim::Duration d, double scale) {
    return sim::to_seconds(d) / scale;
  }
};

/// Execution mode of a workload run.
enum class Mode : std::uint8_t { Cpu, Gpu };

inline const char* mode_name(Mode m) { return m == Mode::Cpu ? "CPU" : "GFlink"; }

}  // namespace gflink::workloads
