// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// PageRank over a fixed-out-degree web graph, CPU and GFlink paths.
//
// Per iteration: every page scatters rank/out_degree to its targets
// (flatMap -> 8 messages), messages reduce by target page, and the driver
// rebuilds the dense rank vector with damping and broadcasts it. The
// shuffle of rank messages dominates the network — which is why PageRank's
// overall speedup is the lowest of the iterative workloads (paper Fig. 5b).
#pragma once

#include "workloads/common.hpp"
#include "workloads/records.hpp"

namespace gflink::workloads::pagerank {

struct Config {
  std::uint64_t pages = 10'000'000;  // full-scale count (Table 1: 5-25 M)
  int iterations = 5;
  int partitions = 0;
  double damping = 0.85;
  bool write_output = true;
  std::uint64_t seed = 23;
  /// Link-target skew: 0 draws targets uniformly; k > 0 concentrates links
  /// on low page ids with Zipf-like mass (each geometric(1/2) level
  /// shrinks the target range by k bits — see page_at). The shuffle-
  /// ablation bench uses this as its "skewed" key distribution.
  int zipf_shift = 0;
};

struct Result {
  RunResult run;
  std::vector<double> ranks;  // truncated probe of the final ranks
};

Page page_at(std::uint64_t id, std::uint64_t n, std::uint64_t seed, int zipf_shift = 0);

df::DataSet<RankMsg> mapper(const df::DataSet<Page>& pages, Mode mode,
                            std::shared_ptr<std::vector<float>> ranks,
                            std::uint64_t iteration);

sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config);

}  // namespace gflink::workloads::pagerank
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
