// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "workloads/pointadd.hpp"

#include "core/gdst.hpp"

namespace gflink::workloads::pointadd {

// Compile-time + static-init layout proof for every mirror this
// translation unit reinterprets batch bytes as (see mem/gstruct.hpp).
GSTRUCT_MIRROR_CHECK(Pt, pt_desc);

namespace {

const df::OpCost kAddCost{60.0, 2.0 * sizeof(Pt)};

}  // namespace

Pt pt_at(std::uint64_t i, std::uint64_t seed) {
  std::uint64_t h = i * 0x9e3779b97f4a7c15ULL + seed;
  Pt p;
  p.x = static_cast<float>(static_cast<std::int64_t>(h >> 40)) / (1 << 20);
  h = h * 6364136223846793005ULL + 1442695040888963407ULL;
  p.y = static_cast<float>(static_cast<std::int64_t>(h >> 40)) / (1 << 20);
  return p;
}

df::DataSet<Pt> mapper(const df::DataSet<Pt>& points, Mode mode, std::uint64_t iteration) {
  if (mode == Mode::Cpu) {
    return points.map<Pt>(&pt_desc(), "addPoint", kAddCost,
                          [](const Pt& p) { return Pt{p.x + p.y, p.y}; });
  }
  ensure_kernels_registered();
  core::GpuOpSpec spec;
  spec.kernel = "cudaAddPoint";
  spec.ptx_path = "/addPoint.ptx";  // the paper's Algorithm 3.1 literal
  spec.layout = mem::Layout::AoS;
  spec.cache_input = true;
  spec.chunkable = true;  // Algorithm 3.1's map is purely element-wise
  spec.cache_namespace = static_cast<std::uint32_t>(1 + iteration * 0);  // static data
  return core::gpu_dataset_op<Pt, Pt>(points, &pt_desc(), "gpuAddPoint", std::move(spec));
}

sim::Co<Result> run(df::Engine& engine, core::GFlinkRuntime* runtime, const Testbed& tb,
                    Mode mode, const Config& config) {
  GFLINK_CHECK_MSG(mode == Mode::Cpu || runtime != nullptr, "GPU mode needs a GFlinkRuntime");
  const auto n = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(config.points) * tb.scale));
  // Producer tasks run at full slot parallelism in both modes: GWork
  // production is cheap, and the job's CPU-side stages (reduce, labelling,
  // writes) need the slots either way.
  const int partitions =
      config.partitions > 0 ? config.partitions : engine.default_parallelism();
  const std::string path = "/data/pointadd-" + std::to_string(n);
  if (!engine.dfs().exists(path)) {
    engine.dfs().create_file(path, n * sizeof(Pt));
  }

  Result result;
  df::Job job(engine, "pointadd");
  co_await job.submit();

  auto source = df::DataSet<Pt>::from_generator(
      engine, &pt_desc(), partitions,
      [n, partitions, seed = config.seed](int part, std::vector<Pt>& out) {
        for (std::uint64_t i = static_cast<std::uint64_t>(part); i < n;
             i += static_cast<std::uint64_t>(partitions)) {
          out.push_back(pt_at(i, seed));
        }
      },
      df::OpCost{8.0, sizeof(Pt)}, path);

  df::DataHandle points;
  double sum = 0;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const sim::Time t0 = engine.now();
    if (iter == 0) {
      points = co_await source.materialize(job);
    }
    auto ds = df::DataSet<Pt>::from_handle(engine, points);
    auto added = co_await mapper(ds, mode, static_cast<std::uint64_t>(iter)).materialize(job);
    // Probe: count as the action (the example's driver just runs the map).
    auto handle_ds = df::DataSet<Pt>::from_handle(engine, added);
    sum += static_cast<double>(co_await handle_ds.count(job));
    result.run.iterations.push_back(engine.now() - t0);
  }

  job.finish();
  if (runtime != nullptr) runtime->release_job(job.id());
  result.run.stats = job.stats();
  result.run.total = job.stats().total();
  result.run.checksum = sum;
  co_return result;
}

}  // namespace gflink::workloads::pointadd
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
