#include "shuffle/shuffle_service.hpp"

#include <algorithm>
#include <unordered_map>

#include "sim/random.hpp"

namespace gflink::shuffle {

namespace {

/// Spread shuffle keys over target partitions. The raw key is often a small
/// integer (word id, page id), so mix it first.
int target_partition(std::uint64_t key, int partitions) {
  std::uint64_t s = key;
  return static_cast<int>(sim::splitmix64(s) % static_cast<std::uint64_t>(partitions));
}

}  // namespace

const char* shuffle_mode_name(ShuffleMode mode) {
  switch (mode) {
    case ShuffleMode::Barrier: return "barrier";
    case ShuffleMode::Pipelined: return "pipelined";
    case ShuffleMode::OneSided: return "one_sided";
  }
  return "unknown";
}

bool parse_shuffle_mode(const std::string& text, ShuffleMode* out) {
  if (text == "barrier") {
    *out = ShuffleMode::Barrier;
  } else if (text == "pipelined") {
    *out = ShuffleMode::Pipelined;
  } else if (text == "one_sided") {
    *out = ShuffleMode::OneSided;
  } else {
    return false;
  }
  return true;
}

// ---- ShuffleService --------------------------------------------------------

ShuffleService::ShuffleService(sim::Simulation& sim, net::Cluster& cluster, dfs::Gdfs& dfs,
                               ShuffleConfig config, OwnerFn owner)
    : sim_(&sim), cluster_(&cluster), dfs_(&dfs), config_(std::move(config)),
      owner_(std::move(owner)),
      spill_store_(std::make_unique<spill::SpillStore>(sim, cluster, dfs, config_.spill)),
      resident_(static_cast<std::size_t>(cluster.num_workers()) + 1, 0) {
  GFLINK_CHECK(config_.credits_per_partition >= 1);
  GFLINK_CHECK(config_.max_retries >= 0);
}

std::uint64_t ShuffleService::resident_bytes(int worker) const {
  core::MutexLock lock(mu_);
  return resident_.at(static_cast<std::size_t>(worker));
}

void ShuffleService::add_resident(int worker, std::uint64_t bytes) {
  core::MutexLock lock(mu_);
  resident_.at(static_cast<std::size_t>(worker)) += bytes;
}

void ShuffleService::sub_resident(int worker, std::uint64_t bytes) {
  core::MutexLock lock(mu_);
  auto& r = resident_.at(static_cast<std::size_t>(worker));
  GFLINK_CHECK_MSG(r >= bytes, "exchange resident-byte accounting went negative");
  r -= bytes;
}

void ShuffleService::block_started() {
  std::int64_t now_in_flight;
  {
    core::MutexLock lock(mu_);
    now_in_flight = ++in_flight_;
    max_in_flight_ = std::max(max_in_flight_, in_flight_);
  }
  // Publish after release: the registry takes its own (leaf) lock.
  metrics().gauge("shuffle_blocks_in_flight").set(static_cast<double>(now_in_flight));
}

void ShuffleService::block_finished() {
  std::int64_t now_in_flight;
  {
    core::MutexLock lock(mu_);
    now_in_flight = --in_flight_;
  }
  metrics().gauge("shuffle_blocks_in_flight").set(static_cast<double>(now_in_flight));
}

bool ShuffleService::consume_injected_fault() {
  core::MutexLock lock(mu_);
  if (injected_faults_ <= 0) return false;
  --injected_faults_;
  return true;
}

std::uint64_t ShuffleService::allocate_session_id() {
  core::MutexLock lock(mu_);
  return next_session_id_++;
}

sim::Co<bool> ShuffleService::transfer_block(int src, int dst, std::uint64_t bytes,
                                             const std::string& label, obs::SpanLink link) {
  obs::MetricsRegistry& m = metrics();
  for (int attempt = 0;; ++attempt) {
    if (consume_injected_fault()) {
      m.inc("shuffle.transfer_faults");
      // A fault trips the flight recorder: the surrounding spans in the
      // per-node rings are what a post-mortem needs.
      cluster_->flight().note_fault(sim_->now(), src, "shuffle_transfer_fault",
                                    label + " block to node" + std::to_string(dst));
      if (attempt >= config_.max_retries) {
        m.inc("shuffle.transfer_aborts");
        cluster_->flight().note_event(sim_->now(), src, "shuffle_transfer_abort",
                                      label + " retry budget exhausted");
        co_return false;
      }
      m.inc("shuffle.transfer_retries");
      // Exponential backoff, capped so the shift cannot overflow.
      const int shift = std::min(attempt, 10);
      co_await sim_->delay(config_.retry_backoff << shift);
      continue;
    }
    co_await cluster_->transfer(src, dst, bytes, label, link);
    co_return true;
  }
}

sim::Co<bool> ShuffleService::one_sided_write(int src, int dst, std::uint64_t offset,
                                              std::uint64_t bytes, const std::string& label,
                                              obs::SpanLink link) {
  obs::MetricsRegistry& m = metrics();
  for (int attempt = 0;; ++attempt) {
    if (consume_injected_fault()) {
      m.inc("shuffle.transfer_faults");
      cluster_->flight().note_fault(sim_->now(), src, "shuffle_transfer_fault",
                                    label + " one-sided write to node" + std::to_string(dst));
      if (attempt >= config_.max_retries) {
        m.inc("shuffle.transfer_aborts");
        cluster_->flight().note_event(sim_->now(), src, "shuffle_transfer_abort",
                                      label + " retry budget exhausted");
        co_return false;
      }
      m.inc("shuffle.transfer_retries");
      const int shift = std::min(attempt, 10);
      co_await sim_->delay(config_.retry_backoff << shift);
      continue;
    }
    co_await cluster_->remote_write(src, dst, offset, bytes, label, link);
    co_return true;
  }
}

// ---- ShuffleSession --------------------------------------------------------

ShuffleSession::ShuffleSession(ShuffleService& service, int out_partitions, std::string label,
                               obs::SpanId parent)
    : service_(&service), out_partitions_(out_partitions), label_(std::move(label)),
      id_(service.allocate_session_id()) {
  GFLINK_CHECK(out_partitions_ >= 1);
  buckets_.resize(static_cast<std::size_t>(out_partitions_));
  credits_.reserve(static_cast<std::size_t>(out_partitions_));
  for (int t = 0; t < out_partitions_; ++t) {
    credits_.push_back(std::make_unique<sim::Semaphore>(
        service_->sim(), service_->config().credits_per_partition));
  }
  span_ = service_->cluster().spans().open("shuffle:" + label_, obs::SpanCategory::Shuffle,
                                           parent, service_->sim().now(), "master/shuffle", 0);
  service_->metrics().inc("shuffle.sessions");
}

ShuffleSession::~ShuffleSession() {
  core::MutexLock lock(mu_);
  GFLINK_CHECK_MSG(in_flight_sends_ == 0, "shuffle session destroyed with in-flight sends");
}

void ShuffleSession::begin_send() {
  core::MutexLock lock(mu_);
  ++in_flight_sends_;
}

bool ShuffleSession::end_send() {
  core::MutexLock lock(mu_);
  return --in_flight_sends_ == 0;
}

std::vector<mem::RecordBatch> ShuffleSession::partition(const mem::RecordBatch& in,
                                                        const mem::StructDesc* out_desc,
                                                        const KeyFn& key,
                                                        const CombineFn* combiner) const {
  std::vector<mem::RecordBatch> buckets;
  buckets.reserve(static_cast<std::size_t>(out_partitions_));
  for (int t = 0; t < out_partitions_; ++t) buckets.emplace_back(out_desc);
  if (combiner != nullptr) {
    // Map-side combine: per-bucket accumulator slots keyed by the record
    // key, preserving first-occurrence order (deterministic).
    std::vector<std::unordered_map<std::uint64_t, std::size_t>> index(
        static_cast<std::size_t>(out_partitions_));
    for (std::size_t i = 0; i < in.count(); ++i) {
      const std::byte* rec = in.record_ptr(i);
      const std::uint64_t k = key(rec);
      const auto t = static_cast<std::size_t>(target_partition(k, out_partitions_));
      auto [it, inserted] = index[t].try_emplace(k, buckets[t].count());
      if (inserted) {
        buckets[t].append_raw(rec);
      } else {
        (*combiner)(buckets[t].record_ptr(it->second), rec);
      }
    }
  } else {
    for (std::size_t i = 0; i < in.count(); ++i) {
      const std::byte* rec = in.record_ptr(i);
      buckets[static_cast<std::size_t>(target_partition(key(rec), out_partitions_))]
          .append_raw(rec);
    }
  }
  return buckets;
}

sim::Co<void> ShuffleSession::send(int src_worker, std::vector<mem::RecordBatch> buckets) {
  GFLINK_CHECK(static_cast<int>(buckets.size()) == out_partitions_);
  if (service_->config().mode == ShuffleMode::OneSided) {
    co_await send_one_sided(src_worker, std::move(buckets));
    co_return;
  }
  for (int t = 0; t < out_partitions_; ++t) {
    auto& bucket = buckets[static_cast<std::size_t>(t)];
    if (bucket.empty()) continue;
    begin_send();
    if (service_->config().mode == ShuffleMode::Pipelined) {
      // Detach the bucket send: the caller's task slot frees while the NIC
      // drains, and sends toward distinct receivers overlap each other.
      service_->sim().spawn([](ShuffleSession& s, int src, int target,
                               mem::RecordBatch b) -> sim::Co<void> {
        co_await s.send_bucket(src, target, std::move(b));
      }(*this, src_worker, t, std::move(bucket)));
    } else {
      co_await send_bucket(src_worker, t, std::move(bucket));
    }
  }
}

void ShuffleSession::deposit_local(int t, mem::RecordBatch bucket) {
  buckets_[static_cast<std::size_t>(t)].push_back(Deposit{std::move(bucket)});
}

sim::Co<void> ShuffleSession::send_bucket(int src, int t, mem::RecordBatch bucket) {
  const int dst = service_->owner_of(t);
  const std::uint64_t bytes = bucket.byte_size();
  obs::MetricsRegistry& m = service_->metrics();
  const sim::Time begin = service_->sim().now();
  bool ok = true;
  if (dst != src && bytes > 0) {
    {
      core::MutexLock lock(mu_);
      network_bytes_ += bytes;
    }
    obs::SpanStore& sp = service_->cluster().spans();
    // Parented to the session span (not the sending task): pipelined sends
    // outlive their task, but the session span stays open until finish().
    const obs::SpanId send_span =
        sp.open("shuffle:send", obs::SpanCategory::Shuffle, span_, begin,
                "node" + std::to_string(src) + "/shuffle", src);
    const std::uint64_t block = std::max<std::uint64_t>(1, service_->config().block_bytes);
    sim::Semaphore& credit = *credits_[static_cast<std::size_t>(t)];
    if (service_->config().mode == ShuffleMode::Pipelined) {
      // Blocks of the bucket overlap each other (a block's egress runs
      // while its predecessor drains the receiver's ingress), bounded by
      // the credit window.
      sim::WaitGroup blocks_done(service_->sim());
      for (std::uint64_t off = 0; off < bytes; off += block) {
        const std::uint64_t n = std::min(block, bytes - off);
        if (!credit.try_acquire()) {
          m.inc("shuffle.credit_stalls");
          const sim::Time stall = service_->sim().now();
          co_await credit.acquire();
          if (service_->sim().now() > stall) {
            sp.record("wait:credit", obs::SpanCategory::Wait, send_span, stall,
                      service_->sim().now(), "node" + std::to_string(src) + "/shuffle", src);
          }
        }
        service_->block_started();
        blocks_done.add();
        service_->sim().spawn([](ShuffleSession& s, sim::Semaphore& cr, int from, int to,
                                 std::uint64_t nbytes, obs::SpanLink lk, bool& all_ok,
                                 sim::WaitGroup& join) -> sim::Co<void> {
          const bool sent = co_await s.service_->transfer_block(from, to, nbytes, s.label_, lk);
          s.service_->block_finished();
          cr.release();
          if (sent) {
            s.service_->metrics().inc("shuffle.blocks");
            s.service_->metrics().inc("shuffle.bytes", static_cast<double>(nbytes));
          } else {
            all_ok = false;
          }
          join.done();
        }(*this, credit, src, dst, n,
          obs::SpanLink{send_span, obs::SpanCategory::Shuffle}, ok, blocks_done));
      }
      co_await blocks_done.wait();
    } else {
      // Barrier mode: the sending task holds its slot and ships blocks
      // back-to-back (the pre-ShuffleService behaviour).
      std::uint64_t remaining = bytes;
      while (remaining > 0 && ok) {
        const std::uint64_t n = std::min(block, remaining);
        if (!credit.try_acquire()) {
          m.inc("shuffle.credit_stalls");
          const sim::Time stall = service_->sim().now();
          co_await credit.acquire();
          if (service_->sim().now() > stall) {
            sp.record("wait:credit", obs::SpanCategory::Wait, send_span, stall,
                      service_->sim().now(), "node" + std::to_string(src) + "/shuffle", src);
          }
        }
        service_->block_started();
        ok = co_await service_->transfer_block(src, dst, n, label_,
                                               {send_span, obs::SpanCategory::Shuffle});
        service_->block_finished();
        credit.release();
        if (ok) {
          m.inc("shuffle.blocks");
          m.inc("shuffle.bytes", static_cast<double>(n));
          remaining -= n;
        }
      }
    }
    sp.close(send_span, service_->sim().now());
    sim::Tracer& tracer = service_->cluster().tracer();
    if (tracer.enabled()) {
      tracer.record("node" + std::to_string(src) + "/shuffle",
                    label_ + " p" + std::to_string(t), begin, service_->sim().now());
    }
  }
  if (ok) {
    co_await deposit(t, dst, std::move(bucket));
  } else {
    core::MutexLock lock(mu_);
    ++aborted_blocks_;  // finish() turns this into a loud failure
  }
  if (end_send() && drained_) drained_->fire();
}

sim::Co<void> ShuffleSession::send_one_sided(int src, std::vector<mem::RecordBatch> buckets) {
  net::Cluster& cluster = service_->cluster();
  obs::SpanStore& sp = cluster.spans();
  obs::MetricsRegistry& m = service_->metrics();
  if (one_sided_.empty()) {
    one_sided_.resize(static_cast<std::size_t>(cluster.num_workers()) + 1);
  }
  // Histogram phase: announce this sender's per-partition sizes to every
  // destination it targets (one control message each), then reserve a
  // disjoint slice of each destination's receive region with a remote
  // fetch-add on the region cursor — the arrival-order prefix sum over all
  // senders' histograms. The reservations fix expected_writes before any
  // write can retire, so the counts the finish() barrier polls against are
  // exact.
  const sim::Time hist_begin = service_->sim().now();
  obs::SpanId hist_span = 0;
  std::vector<std::uint64_t> offsets(buckets.size(), 0);
  std::vector<char> announced(one_sided_.size(), 0);
  for (int t = 0; t < out_partitions_; ++t) {
    const auto& bucket = buckets[static_cast<std::size_t>(t)];
    const int dst = service_->owner_of(t);
    // Must mirror one_sided_bucket's network condition exactly: every
    // announced write signals the done counter exactly once.
    if (bucket.byte_size() == 0 || dst == src) continue;
    if (hist_span == 0) {
      hist_span = sp.open("shuffle:histogram", obs::SpanCategory::Shuffle, span_, hist_begin,
                          "node" + std::to_string(src) + "/shuffle", src);
    }
    if (!announced[static_cast<std::size_t>(dst)]) {
      announced[static_cast<std::size_t>(dst)] = 1;
      m.inc("shuffle.one_sided_histograms");
      co_await cluster.message(src, dst);
    }
    const std::uint64_t bytes = bucket.byte_size();
    offsets[static_cast<std::size_t>(t)] =
        co_await cluster.remote_fetch_add(src, dst, region_counter(), bytes);
    auto& peer = one_sided_[static_cast<std::size_t>(dst)];
    ++peer.expected_writes;
    peer.announced_bytes += bytes;
  }
  if (hist_span != 0) sp.close(hist_span, service_->sim().now());
  // Write phase: detached bulk writes straight into the reserved offsets —
  // no credits, no per-block ACKs; the task slot frees while the HCAs
  // drain. Local buckets skip the network inside one_sided_bucket.
  for (int t = 0; t < out_partitions_; ++t) {
    auto& bucket = buckets[static_cast<std::size_t>(t)];
    if (bucket.empty()) continue;
    begin_send();
    service_->sim().spawn([](ShuffleSession& s, int from, int target, std::uint64_t off,
                             mem::RecordBatch b) -> sim::Co<void> {
      co_await s.one_sided_bucket(from, target, off, std::move(b));
    }(*this, src, t, offsets[static_cast<std::size_t>(t)], std::move(bucket)));
  }
}

sim::Co<void> ShuffleSession::one_sided_bucket(int src, int t, std::uint64_t offset,
                                               mem::RecordBatch bucket) {
  const int dst = service_->owner_of(t);
  const std::uint64_t bytes = bucket.byte_size();
  obs::MetricsRegistry& m = service_->metrics();
  const sim::Time begin = service_->sim().now();
  bool ok = true;
  if (dst != src && bytes > 0) {
    {
      core::MutexLock lock(mu_);
      network_bytes_ += bytes;
    }
    obs::SpanStore& sp = service_->cluster().spans();
    const obs::SpanId write_span =
        sp.open("shuffle:one_sided_write", obs::SpanCategory::Shuffle, span_, begin,
                "node" + std::to_string(src) + "/shuffle", src);
    service_->block_started();
    ok = co_await service_->one_sided_write(src, dst, offset, bytes, label_,
                                            {write_span, obs::SpanCategory::Shuffle});
    service_->block_finished();
    if (ok) {
      m.inc("shuffle.one_sided_writes");
      m.inc("shuffle.one_sided_bytes", static_cast<double>(bytes));
    }
    // Completion signal: bump the destination's done counter whether the
    // write landed or aborted — the barrier counts retired attempts (an
    // abort is reported loudly by finish(); a barrier that never resolves
    // would hang it instead).
    co_await service_->cluster().remote_fetch_add(src, dst, done_counter(), 1);
    sp.close(write_span, service_->sim().now());
    sim::Tracer& tracer = service_->cluster().tracer();
    if (tracer.enabled()) {
      tracer.record("node" + std::to_string(src) + "/shuffle",
                    label_ + " p" + std::to_string(t), begin, service_->sim().now());
    }
  }
  if (ok) {
    co_await deposit(t, dst, std::move(bucket));
  } else {
    core::MutexLock lock(mu_);
    ++aborted_blocks_;  // finish() turns this into a loud failure
  }
  if (end_send() && drained_) drained_->fire();
}

sim::Co<void> ShuffleSession::one_sided_barrier() {
  net::Cluster& cluster = service_->cluster();
  const sim::Time begin = service_->sim().now();
  for (std::size_t n = 0; n < one_sided_.size(); ++n) {
    const OneSidedDst& peer = one_sided_[n];
    if (peer.expected_writes == 0) continue;
    const int dst = static_cast<int>(n);
    // Each receiver polls its own completion counter — local memory reads
    // are free, so the cost is purely the wait for outstanding writes.
    const sim::Duration poll =
        std::max<sim::Duration>(1, cluster.node(dst).spec().rdma.latency);
    while (cluster.rdma_counter(dst, done_counter()) < peer.expected_writes) {
      co_await service_->sim().delay(poll);
    }
    GFLINK_CHECK_MSG(cluster.rdma_counter(dst, region_counter()) == peer.announced_bytes,
                     "one-sided receive-region cursor disagrees with the announced histograms");
    const sim::Time end = service_->sim().now();
    if (end > begin) {
      cluster.spans().record("shuffle:one_sided_barrier", obs::SpanCategory::Wait, span_, begin,
                             end, "node" + std::to_string(dst) + "/shuffle", dst);
    }
  }
}

sim::Co<void> ShuffleSession::deposit(int t, int dst, mem::RecordBatch bucket) {
  const ShuffleConfig& cfg = service_->config();
  const std::uint64_t bytes = bucket.byte_size();
  Deposit d{std::move(bucket)};
  if (cfg.spill_enabled && bytes > 0 &&
      service_->resident_bytes(dst) + bytes > cfg.receiver_budget_bytes) {
    d.spilled = true;
    // Landed-side accounting shared by both spill paths: the shuffle.spill_*
    // counters and the session's spilled-byte total are bumped exactly once,
    // when the block lands on its tier — worker-side on the async path,
    // never at enqueue (the double-count hazard a detached offload invites).
    // The hook captures the service (outlives every session) and a shared
    // accounting cell, not `this`, so a worker landing a block after its
    // session died never dereferences freed session state.
    auto acct = spill_acct_;
    auto* service = service_;
    std::function<void()> on_landed = [service, acct, bytes] {
      service->metrics().inc("shuffle.spill_blocks");
      service->metrics().inc("shuffle.spill_bytes", static_cast<double>(bytes));
      acct->fetch_add(bytes, std::memory_order_relaxed);
    };
    if (cfg.spill_async) {
      // Asynchronous offload (the default): hand the bucket to dst's spill
      // workers and keep going — the depositing coroutine stalls only on
      // queue backpressure, never on tier I/O. take() awaits the landing.
      d.spill_block = co_await service_->spill_store().offload(
          dst, bytes, label_, {span_, obs::SpanCategory::Spill}, std::move(on_landed));
    } else {
      // Synchronous ablation baseline: compress inline and hold the
      // depositing coroutine through the full DFS round trip.
      std::uint64_t seq;
      {
        core::MutexLock lock(mu_);
        seq = next_spill_seq_++;
      }
      d.spill_path = cfg.spill_dir + "/s" + std::to_string(id_) + "-p" + std::to_string(t) +
                     "-" + std::to_string(seq);
      const std::uint64_t stored =
          co_await service_->spill_store().compress(dst, bytes, spill::SpillTier::Dfs);
      co_await service_->dfs().write(dst, d.spill_path, stored,
                                     {span_, obs::SpanCategory::Spill});
      on_landed();
    }
  } else {
    service_->add_resident(dst, bytes);
    d.counted_resident = true;
  }
  buckets_[static_cast<std::size_t>(t)].push_back(std::move(d));
}

sim::Co<void> ShuffleSession::finish() {
  // One-sided mode first waits on the fetch-add completion counters (the
  // transport's own barrier), then falls through to the drain trigger that
  // covers the deposit/spill tail of each write coroutine.
  if (service_->config().mode == ShuffleMode::OneSided) co_await one_sided_barrier();
  bool pending;
  {
    core::MutexLock lock(mu_);
    pending = in_flight_sends_ > 0;
  }
  // No suspension point between the check above and the trigger creation,
  // so no send can retire in between on the simulation thread.
  if (pending) {
    drained_ = std::make_unique<sim::Trigger>(service_->sim());
    co_await drained_->wait();
  }
  int aborted;
  {
    core::MutexLock lock(mu_);
    aborted = aborted_blocks_;
  }
  service_->cluster().spans().close(span_, service_->sim().now());
  span_ = 0;
  GFLINK_CHECK_MSG(aborted == 0, "shuffle block transfer permanently failed after retries");
}

sim::Co<std::vector<mem::RecordBatch>> ShuffleSession::take(int t, int reader,
                                                            obs::SpanLink link) {
  auto& deposited = buckets_[static_cast<std::size_t>(t)];
  std::vector<mem::RecordBatch> out;
  out.reserve(deposited.size());
  for (Deposit& d : deposited) {
    const std::uint64_t bytes = d.batch.byte_size();
    if (d.spilled) {
      service_->metrics().inc("shuffle.unspill_bytes", static_cast<double>(bytes));
      if (d.spill_block) {
        // Async path: the fetch waits for the block to land if the worker
        // is still writing it (write-behind consistency), pays the tier
        // read + decompression, and promotes a re-read disk/DFS block
        // back into the memory tier.
        co_await service_->spill_store().fetch(d.spill_block, reader, link);
        service_->spill_store().release(d.spill_block);
      } else {
        // Sync path: the block went straight to the DFS, compressed.
        co_await service_->dfs().read_file(reader, d.spill_path, link);
        co_await service_->spill_store().decompress(reader, bytes, spill::SpillTier::Dfs);
      }
    } else if (d.counted_resident) {
      service_->sub_resident(service_->owner_of(t), bytes);
    }
    out.push_back(std::move(d.batch));
  }
  deposited.clear();
  co_return out;
}

}  // namespace gflink::shuffle
