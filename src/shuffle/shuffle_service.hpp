// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// The shuffle subsystem (paper §4–§5: bulk block transfers that overlap
// compute).
//
// A ShuffleService turns the engine's all-to-all exchanges into transfers
// over the cluster's network model, with three transports (ShuffleMode):
//
//  * senders bucket records by key hash (with optional map-side combine,
//    performed on the raw GStruct bytes — no serialization boundary);
//  * `barrier` — buckets are cut into fixed-size blocks shipped serially
//    inside the sending task over the 1 GbE NIC pipes (the pre-refactor
//    behaviour, kept as the ablation baseline);
//  * `pipelined` — the same blocks, but every block acquires one
//    in-flight credit for its target partition before it may enter the
//    network (a slow receiver throttles its senders instead of
//    accumulating unbounded buffers), and block sends are detached
//    coroutines: the task slot is released while the NIC drains, so
//    network transfer overlaps the downstream partition compute;
//  * `one_sided` (default) — the RDMA-style transport: senders build per-destination
//    histograms, announce them with control messages, reserve disjoint
//    offsets in each receiver's pre-sized receive region via remote
//    fetch-add (the arrival-order prefix sum), then land whole buckets
//    with one-sided writes over the RdmaNicSpec HCA pipes. There are no
//    credits and no per-block ACKs; completion is a remote fetch-add
//    counter that finish() polls as the barrier;
//  * in every mode a receiver whose exchange buffer exceeds its byte
//    budget spills deposited buckets and reads them back at merge time.
//    By default the spill is *asynchronous*: the bucket is enqueued to
//    the receiving node's spill workers (src/spill — bounded queue,
//    memory → disk → DFS tier ladder, optional LZ-style codec) and the
//    depositing coroutine continues immediately; `spill_async = false`
//    keeps the pre-refactor synchronous DFS write as the ablation
//    baseline. Injected transfer faults (the hook the fault framework of
//    tests/test_fault.cpp uses) are retried with exponential backoff.
//
// One ShuffleSession is one exchange: `partition` + `send` on the map side,
// `finish` as the stage barrier, `take` on the reduce side. The service is
// long-lived (one per Engine) and owns the config, metrics and fault hooks
// shared by all sessions. docs/ARCHITECTURE.md#shuffle-transports has the
// sequence diagrams for all three modes.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_annotations.hpp"
#include "dfs/gdfs.hpp"
#include "mem/record_batch.hpp"
#include "net/cluster.hpp"
#include "sim/sync.hpp"
#include "spill/spill_store.hpp"

namespace gflink::shuffle {

/// Key extraction over raw record bytes (same signature as the dataflow
/// layer's KeyFn; duplicated here so shuffle does not depend on dataflow).
using KeyFn = std::function<std::uint64_t(const std::byte*)>;
/// In-place associative combine: fold `record` into `accumulator`.
using CombineFn = std::function<void(std::byte*, const std::byte*)>;

/// Exchange transport (see the file comment for the three designs).
enum class ShuffleMode { Barrier, Pipelined, OneSided };

/// Stable string keys ("barrier", "pipelined", "one_sided") shared by the
/// CLI, the ablation bench and bench/baselines.json.
const char* shuffle_mode_name(ShuffleMode mode);
/// Parse a stable string key; returns false (and leaves `out` alone) on an
/// unknown key.
bool parse_shuffle_mode(const std::string& text, ShuffleMode* out);

struct ShuffleConfig {
  /// Granularity of network sends. Buckets larger than this are cut into
  /// multiple blocks whose transfers pipeline through the NIC pipes.
  std::uint64_t block_bytes = 256 * 1024;
  /// In-flight blocks allowed per target partition before senders stall
  /// (the credit window).
  int credits_per_partition = 4;
  /// Per-receiver exchange-buffer budget. Deposits beyond this spill to the
  /// DFS (when `spill_enabled`) and are read back at merge time.
  std::uint64_t receiver_budget_bytes = 1ULL << 30;
  /// Which transport ships the buckets (see ShuffleMode). OneSided — the
  /// RDMA-style histogram + one-sided-write exchange — is the default;
  /// Barrier is the pre-ShuffleService ablation baseline; Pipelined is the
  /// credit-windowed NIC transport.
  ShuffleMode mode = ShuffleMode::OneSided;
  bool spill_enabled = true;
  /// Asynchronous spill offload (the default): deposits over the receiver
  /// budget are enqueued to the node's spill workers (src/spill) and the
  /// depositing coroutine continues; false keeps the synchronous DFS
  /// write on the depositing path (the ablation baseline).
  bool spill_async = true;
  /// Tier ladder / codec / worker configuration of the async spill store.
  spill::SpillConfig spill;
  /// Retry budget for injected transfer faults. A block send that faults
  /// more than `max_retries` times aborts the shuffle (checked loudly at
  /// finish()).
  int max_retries = 4;
  /// Base backoff before the first retry; doubles per attempt.
  sim::Duration retry_backoff = sim::millis(2);
  /// DFS directory spilled buckets are written under.
  std::string spill_dir = "/shuffle/spill";
};

class ShuffleService;

/// One all-to-all exchange: `out_partitions` target buckets, each owned by
/// the worker `owner(t)` says. Sessions are created per shuffling stage and
/// must outlive their in-flight sends (await finish() before destruction).
class ShuffleSession {
 public:
  /// `parent` (usually the stage span) parents the session's causal span;
  /// the session span stays open until finish(), so detached bucket sends
  /// always have a live ancestor to hang off.
  ShuffleSession(ShuffleService& service, int out_partitions, std::string label,
                 obs::SpanId parent = 0);
  ShuffleSession(const ShuffleSession&) = delete;
  ShuffleSession& operator=(const ShuffleSession&) = delete;
  ~ShuffleSession();

  int out_partitions() const { return out_partitions_; }
  const std::string& label() const { return label_; }

  /// Bucket `in` into out_partitions() batches by key hash. When `combiner`
  /// is non-null, records sharing a key are folded together first (map-side
  /// combine); the result preserves first-occurrence order, so it is
  /// deterministic for a given input order.
  std::vector<mem::RecordBatch> partition(const mem::RecordBatch& in,
                                          const mem::StructDesc* out_desc, const KeyFn& key,
                                          const CombineFn* combiner) const;

  /// Ship every non-empty bucket from `src_worker` toward its target
  /// partition's owner. Pipelined mode returns once the sends are detached;
  /// barrier mode awaits every transfer; one-sided mode awaits the
  /// histogram exchange + offset reservations and detaches the bulk
  /// writes. Bytes that cross the network are accounted here — and only
  /// here (see network_bytes()).
  sim::Co<void> send(int src_worker, std::vector<mem::RecordBatch> buckets);

  /// Deposit a bucket for partition `t` without any network or spill
  /// modeling (used by rebalance, whose transfers are charged at merge).
  void deposit_local(int t, mem::RecordBatch bucket);

  /// Stage barrier: wait until every in-flight block has been deposited.
  /// Async spill offloads are only *enqueued* by then — tier writes drain
  /// in the background and take() awaits any block still in flight — so
  /// the barrier no longer pays for spill I/O (the DShuffle-style win).
  /// Aborts loudly if a block exhausted its retry budget.
  sim::Co<void> finish();

  /// Reduce side: move partition `t`'s deposited buckets out, paying the
  /// DFS read for any that were spilled. `reader` is the merging worker.
  /// `link` parents the unspill-read causal spans (usually the merge task
  /// span, category Spill).
  sim::Co<std::vector<mem::RecordBatch>> take(int t, int reader, obs::SpanLink link = {});

  /// Bytes this session moved across the network (excludes same-worker
  /// buckets). The single source of truth for stage shuffle accounting.
  std::uint64_t network_bytes() const {
    core::MutexLock lock(mu_);
    return network_bytes_;
  }
  /// Counted when the spilled block *lands* on its tier (worker-side on
  /// the async path, inline on the sync path) — the single accounting
  /// point the spill_bytes counters share. Held behind a shared_ptr so a
  /// worker whose session already died can still account safely.
  std::uint64_t spilled_bytes() const {
    return spill_acct_->load(std::memory_order_relaxed);
  }

 private:
  struct Deposit {
    mem::RecordBatch batch;
    bool spilled = false;
    bool counted_resident = false;  // held exchange-budget bytes until taken
    std::string spill_path;              // sync spill path (DFS file)
    spill::BlockHandle spill_block;      // async spill path (tiered store)
  };

  sim::Co<void> send_bucket(int src, int t, mem::RecordBatch bucket);
  /// One-sided transport: histogram announcement + offset reservation, then
  /// detached bulk writes (no credits, no per-block ACKs).
  sim::Co<void> send_one_sided(int src, std::vector<mem::RecordBatch> buckets);
  sim::Co<void> one_sided_bucket(int src, int t, std::uint64_t offset, mem::RecordBatch bucket);
  /// finish()'s completion barrier: poll each destination's done counter
  /// until it reaches the histogram-announced write count.
  sim::Co<void> one_sided_barrier();
  sim::Co<void> deposit(int t, int dst, mem::RecordBatch bucket);

  /// Credit accounting around one detached bucket send: end_send() returns
  /// true when it retired the last in-flight send (the caller then fires
  /// `drained_` — outside the lock, since Trigger is simulation-plane).
  void begin_send() GFLINK_EXCLUDES(mu_);
  bool end_send() GFLINK_EXCLUDES(mu_);

  ShuffleService* service_;
  int out_partitions_;
  std::string label_;
  std::uint64_t id_;
  obs::SpanId span_ = 0;  // the session's causal span; closed by finish()
  // Deposited buckets, credit semaphores and the drain trigger are
  // simulation-plane structures: touched only between suspension points of
  // the simulation thread, never from exporters.
  std::vector<std::vector<Deposit>> buckets_;
  std::vector<std::unique_ptr<sim::Semaphore>> credits_;  // per target partition
  std::unique_ptr<sim::Trigger> drained_;  // created lazily by finish()
  /// Per-destination one-sided exchange state (simulation-plane, like
  /// buckets_). Histogram announcements fix expected_writes before any
  /// write can retire, so the counts finish() polls against are exact.
  struct OneSidedDst {
    std::uint64_t expected_writes = 0;  // buckets announced toward this node
    std::uint64_t announced_bytes = 0;  // histogram total = final region cursor
  };
  std::vector<OneSidedDst> one_sided_;  // indexed by destination node id
  /// Receive-region allocation cursor and completion counter in each
  /// destination's memory, namespaced by session id.
  std::uint64_t region_counter() const { return id_ * 2; }
  std::uint64_t done_counter() const { return id_ * 2 + 1; }
  /// Guards the session's byte/credit accounting (leaf lock; never held
  /// across a co_await — every mutation sits in a synchronous section).
  mutable core::Mutex mu_;
  int in_flight_sends_ GFLINK_GUARDED_BY(mu_) = 0;
  std::uint64_t network_bytes_ GFLINK_GUARDED_BY(mu_) = 0;
  /// Landed spill bytes (see spilled_bytes()); atomic + shared so the
  /// async worker's accounting hook never dangles.
  std::shared_ptr<std::atomic<std::uint64_t>> spill_acct_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  std::uint64_t next_spill_seq_ GFLINK_GUARDED_BY(mu_) = 0;
  int aborted_blocks_ GFLINK_GUARDED_BY(mu_) = 0;
};

class ShuffleService {
 public:
  /// Maps a target partition index to the worker node owning it.
  using OwnerFn = std::function<int(int)>;

  ShuffleService(sim::Simulation& sim, net::Cluster& cluster, dfs::Gdfs& dfs,
                 ShuffleConfig config, OwnerFn owner);

  const ShuffleConfig& config() const { return config_; }
  sim::Simulation& sim() { return *sim_; }
  net::Cluster& cluster() { return *cluster_; }
  dfs::Gdfs& dfs() { return *dfs_; }
  int owner_of(int partition) const { return owner_(partition); }
  obs::MetricsRegistry& metrics() { return cluster_->metrics(); }
  /// The tiered async spill store shared by every session (also serves
  /// the codec to the synchronous ablation path).
  spill::SpillStore& spill_store() { return *spill_store_; }

  /// Fault-injection hook (the shuffle arm of the fault framework): the
  /// next `n` block-transfer attempts fail before moving any bytes and are
  /// retried with exponential backoff.
  void inject_transfer_faults(int n) {
    core::MutexLock lock(mu_);
    injected_faults_ += n;
  }
  int pending_injected_faults() const {
    core::MutexLock lock(mu_);
    return injected_faults_;
  }

  /// Highest number of blocks that were simultaneously in flight — what the
  /// credit window bounds (diagnostic for tests/benches).
  std::int64_t max_blocks_in_flight() const {
    core::MutexLock lock(mu_);
    return max_in_flight_;
  }

  /// Blocks in flight right now (sent, not yet deposited) — the live
  /// telemetry plane samples this each period.
  std::int64_t blocks_in_flight() const {
    core::MutexLock lock(mu_);
    return in_flight_;
  }

  /// Bytes currently resident in `worker`'s exchange buffer (deposited, not
  /// yet taken, not spilled).
  std::uint64_t resident_bytes(int worker) const;

 private:
  friend class ShuffleSession;

  /// One block across the network, retrying injected faults with backoff.
  /// Returns false when the retry budget is exhausted. `link` parents the
  /// NIC-pipe causal spans.
  sim::Co<bool> transfer_block(int src, int dst, std::uint64_t bytes, const std::string& label,
                               obs::SpanLink link = {});

  /// One bulk one-sided write over the HCA pipes, retrying injected faults
  /// with the same backoff/abort policy as transfer_block.
  sim::Co<bool> one_sided_write(int src, int dst, std::uint64_t offset, std::uint64_t bytes,
                                const std::string& label, obs::SpanLink link = {});

  void block_started() GFLINK_EXCLUDES(mu_);
  void block_finished() GFLINK_EXCLUDES(mu_);
  void add_resident(int worker, std::uint64_t bytes) GFLINK_EXCLUDES(mu_);
  void sub_resident(int worker, std::uint64_t bytes) GFLINK_EXCLUDES(mu_);
  /// Atomically consume one injected fault; false when none are pending.
  bool consume_injected_fault() GFLINK_EXCLUDES(mu_);
  std::uint64_t allocate_session_id() GFLINK_EXCLUDES(mu_);

  sim::Simulation* sim_;
  net::Cluster* cluster_;
  dfs::Gdfs* dfs_;
  ShuffleConfig config_;
  OwnerFn owner_;
  /// Outlives every session (sessions are per-stage; the service is
  /// per-engine), so worker-side hooks may capture the service pointer.
  std::unique_ptr<spill::SpillStore> spill_store_;
  /// Guards the service-wide credit/fault/resident accounting shared by
  /// every session. Leaf lock; the in-flight gauge is published after
  /// release (the registry has its own lock).
  mutable core::Mutex mu_;
  int injected_faults_ GFLINK_GUARDED_BY(mu_) = 0;
  std::int64_t in_flight_ GFLINK_GUARDED_BY(mu_) = 0;
  std::int64_t max_in_flight_ GFLINK_GUARDED_BY(mu_) = 0;
  std::uint64_t next_session_id_ GFLINK_GUARDED_BY(mu_) = 1;
  std::vector<std::uint64_t> resident_ GFLINK_GUARDED_BY(mu_);  // exchange bytes per node id
};

}  // namespace gflink::shuffle
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
