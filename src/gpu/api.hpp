// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// Host-side GPU APIs: the paper's two communication-channel layers (§4.1).
//
//  * CudaStub — the "native" layer (C++ talking to the driver directly).
//    Calls cost only what the device model charges.
//  * CudaWrapper — the JVM-facing layer: every call is redirected over the
//    control channel (JNI), paying a small fixed overhead. Large data never
//    moves through this channel — only addresses and commands — so the
//    overhead is per *call*, not per byte. Table 2 measures exactly the
//    wrapper-vs-native difference.
#pragma once

#include "gpu/device.hpp"

namespace gflink::gpu {

/// Overheads of driver entry points (calibrated, device-independent).
struct StubOverheads {
  sim::Duration malloc_cost = sim::micros(90);
  sim::Duration free_cost = sim::micros(40);
  sim::Duration host_register_cost_per_mb = sim::micros(200);
};

/// Native host API bound to one device.
class CudaStub {
 public:
  using Overheads = StubOverheads;

  explicit CudaStub(GpuDevice& device, Overheads overheads = StubOverheads())
      : device_(&device), overheads_(overheads) {}

  GpuDevice& device() { return *device_; }
  const Overheads& overheads() const { return overheads_; }

  /// cudaMalloc: returns 0 on out-of-memory.
  sim::Co<DevicePtr> cuda_malloc(std::uint64_t bytes) {
    co_await device_->sim().delay(overheads_.malloc_cost);
    co_return device_->memory().allocate(bytes);
  }

  /// cudaFree.
  sim::Co<void> cuda_free(DevicePtr ptr) {
    co_await device_->sim().delay(overheads_.free_cost);
    device_->memory().free(ptr);
  }

  /// cudaHostRegister: page-lock a host buffer so async DMA reaches full
  /// PCIe bandwidth. Cost scales with buffer size (page-table pinning).
  sim::Co<void> cuda_host_register(mem::HBuffer& buffer) {
    if (buffer.pinned()) co_return;
    auto mb = static_cast<double>(buffer.size()) / (1 << 20);
    co_await device_->sim().delay(
        static_cast<sim::Duration>(mb * static_cast<double>(overheads_.host_register_cost_per_mb)));
    buffer.set_pinned(true);
  }

  /// cudaMemcpyH2D / cudaMemcpyH2DAsync. (A synchronous call in a
  /// coroutine world is simply an awaited one; "async" concurrency comes
  /// from issuing these from different stream workers.)
  sim::Co<void> memcpy_h2d(DevicePtr dst, const mem::HBuffer& src, std::size_t src_offset,
                           std::uint64_t bytes, const std::string& label = {}) {
    co_await device_->copy_h2d(src, src_offset, dst, bytes, label);
  }

  /// cudaMemcpyD2H / cudaMemcpyD2HAsync.
  sim::Co<void> memcpy_d2h(mem::HBuffer& dst, std::size_t dst_offset, DevicePtr src,
                           std::uint64_t bytes, const std::string& label = {}) {
    co_await device_->copy_d2h(src, dst, dst_offset, bytes, label);
  }

  /// Launch a registered kernel by name (the GWork.executeName lookup).
  sim::Co<void> launch_kernel(const std::string& name,
                              const std::vector<GpuDevice::BufferBinding>& buffers,
                              std::size_t items, mem::Layout layout, int block_size = 256,
                              int grid_size = 0, const void* params = nullptr,
                              const std::string& label = {}) {
    const Kernel& k = KernelRegistry::global().lookup(name);
    co_await device_->launch(k, buffers, items, layout, block_size, grid_size, params, label);
  }

  /// Chunk-granular launch: the caller resolved the Kernel once and issues
  /// many small launches over sub-ranges (the chunked pipeline hot path).
  sim::Co<void> launch_kernel(const Kernel& kernel,
                              const std::vector<GpuDevice::BufferBinding>& buffers,
                              std::size_t items, mem::Layout layout, int block_size = 256,
                              int grid_size = 0, const void* params = nullptr,
                              const std::string& label = {}) {
    co_await device_->launch(kernel, buffers, items, layout, block_size, grid_size, params,
                             label);
  }

 private:
  GpuDevice* device_;
  Overheads overheads_;
};

/// cudaEvent: a timestamped one-shot marker on the virtual timeline.
/// Because our streams are caller-sequential coroutines, cudaEventRecord
/// is synchronous with the issuing stream; cross-stream waiters use
/// synchronize(). cudaEventElapsedTime is `elapsed`.
class CudaEvent {
 public:
  explicit CudaEvent(sim::Simulation& sim) : sim_(&sim), trigger_(sim) {}

  /// cudaEventRecord: stamp the current virtual time and release waiters.
  void record() {
    recorded_at_ = sim_->now();
    recorded_ = true;
    trigger_.fire();
  }

  bool query() const { return recorded_; }  // cudaEventQuery
  sim::Time recorded_at() const { return recorded_at_; }

  /// cudaEventSynchronize (awaitable).
  auto synchronize() { return trigger_.wait(); }

  /// cudaEventElapsedTime, in virtual nanoseconds.
  static sim::Duration elapsed(const CudaEvent& start, const CudaEvent& stop) {
    GFLINK_CHECK_MSG(start.recorded_ && stop.recorded_, "event not recorded");
    return stop.recorded_at_ - start.recorded_at_;
  }

 private:
  sim::Simulation* sim_;
  sim::Trigger trigger_;
  bool recorded_ = false;
  sim::Time recorded_at_ = 0;
};

/// JVM-side API: same surface as CudaStub, each call paying the JNI
/// control-channel redirect first.
class CudaWrapper {
 public:
  explicit CudaWrapper(CudaStub& stub, sim::Duration jni_overhead = sim::nanos(200))
      : stub_(&stub), jni_overhead_(jni_overhead) {}

  CudaStub& stub() { return *stub_; }
  GpuDevice& device() { return stub_->device(); }
  sim::Duration jni_overhead() const { return jni_overhead_; }
  std::uint64_t calls() const { return calls_; }

  sim::Co<DevicePtr> cuda_malloc(std::uint64_t bytes) {
    co_await jni();
    co_return co_await stub_->cuda_malloc(bytes);
  }
  sim::Co<void> cuda_free(DevicePtr ptr) {
    co_await jni();
    co_await stub_->cuda_free(ptr);
  }
  sim::Co<void> cuda_host_register(mem::HBuffer& buffer) {
    co_await jni();
    co_await stub_->cuda_host_register(buffer);
  }
  sim::Co<void> memcpy_h2d(DevicePtr dst, const mem::HBuffer& src, std::size_t src_offset,
                           std::uint64_t bytes, const std::string& label = {}) {
    co_await jni();
    co_await stub_->memcpy_h2d(dst, src, src_offset, bytes, label);
  }
  sim::Co<void> memcpy_d2h(mem::HBuffer& dst, std::size_t dst_offset, DevicePtr src,
                           std::uint64_t bytes, const std::string& label = {}) {
    co_await jni();
    co_await stub_->memcpy_d2h(dst, dst_offset, src, bytes, label);
  }
  sim::Co<void> launch_kernel(const std::string& name,
                              const std::vector<GpuDevice::BufferBinding>& buffers,
                              std::size_t items, mem::Layout layout, int block_size = 256,
                              int grid_size = 0, const void* params = nullptr,
                              const std::string& label = {}) {
    co_await jni();
    co_await stub_->launch_kernel(name, buffers, items, layout, block_size, grid_size, params,
                                  label);
  }
  sim::Co<void> launch_kernel(const Kernel& kernel,
                              const std::vector<GpuDevice::BufferBinding>& buffers,
                              std::size_t items, mem::Layout layout, int block_size = 256,
                              int grid_size = 0, const void* params = nullptr,
                              const std::string& label = {}) {
    co_await jni();
    co_await stub_->launch_kernel(kernel, buffers, items, layout, block_size, grid_size, params,
                                  label);
  }

 private:
  sim::Co<void> jni() {
    ++calls_;
    co_await stub_->device().sim().delay(jni_overhead_);
  }

  CudaStub* stub_;
  sim::Duration jni_overhead_;
  std::uint64_t calls_ = 0;
};

}  // namespace gflink::gpu
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
