// GPU device specifications and presets.
//
// The presets model the four boards used in the paper's evaluation
// (GeForce GTX 750, Tesla C2050, Tesla K20, Tesla P100). Peak numbers come
// from vendor datasheets; `kernel_efficiency` is the sustained fraction of
// peak our MapReduce-style kernels achieve and is the main calibration knob
// for Fig. 8(b).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace gflink::gpu {

using sim::Duration;

struct DeviceSpec {
  std::string name = "generic";
  double peak_flops = 1.0e12;          // single-precision FLOP/s
  double kernel_efficiency = 0.25;     // sustained fraction of peak
  double mem_bandwidth = 150.0e9;      // device DRAM bytes/s
  std::uint64_t device_memory = 3ULL << 30;
  int copy_engines = 2;                // 1 = half duplex, 2 = full duplex
  double pcie_bandwidth = 2.97e9;      // bytes/s per direction (effective)
  Duration pcie_latency = sim::nanos(1800);     // DMA setup per transfer
  Duration kernel_launch_overhead = sim::micros(7);
  double pageable_penalty = 0.55;      // bandwidth fraction for non-pinned
  /// Memory-bandwidth efficiency by batch layout (coalescing model):
  /// indexed by mem::Layout {AoS, SoA, AoP}. AoS strided access wastes
  /// cache lines; SoA/AoP are fully coalesced.
  double layout_efficiency[3] = {0.40, 1.0, 1.0};

  static DeviceSpec gtx750();
  static DeviceSpec c2050();
  static DeviceSpec k20();
  static DeviceSpec p100();
};

}  // namespace gflink::gpu
