// Kernel registry: named GPU kernels with a host implementation and a
// roofline cost model.
//
// In the real GFlink, users compile CUDA C to PTX and register its path;
// GFlink resolves the function by name at submission (GWork.executeName).
// Here a kernel is a host function that computes on device-shadow memory
// (results are real and checked against the CPU path), and its *duration*
// comes from the cost model evaluated against the executing device's spec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "mem/gstruct.hpp"
#include "sim/time.hpp"
#include "sim/util.hpp"

namespace gflink::gpu {

struct DeviceSpec;

/// What one launched kernel instance sees.
struct KernelLaunch {
  /// Device buffers bound to the launch, in GWork order (inputs then
  /// outputs). Spans alias the device shadow memory.
  std::vector<std::span<std::byte>> buffers;
  /// Number of logical items (records) the launch covers.
  std::size_t items = 0;
  /// Grid geometry, carried for fidelity/reporting.
  int block_size = 256;
  int grid_size = 0;
  /// Opaque kernel parameters (small by-value argument block, like CUDA
  /// kernel arguments). May be null.
  const void* params = nullptr;
};

using KernelFn = std::function<void(KernelLaunch&)>;

/// Roofline cost model for a kernel: time = launch overhead +
/// max(flops / sustained_flops, dram_bytes / (bandwidth * layout_eff)).
struct KernelCost {
  double flops_per_item = 0.0;
  double dram_bytes_per_item = 0.0;
  /// Fixed per-launch work independent of items (e.g. reduction tails).
  double fixed_flops = 0.0;
};

struct Kernel {
  std::string name;
  KernelFn fn;
  KernelCost cost;
  /// Layout the kernel's memory accesses assume; the executing device's
  /// layout_efficiency for the *batch's actual layout* scales bandwidth.
  mem::Layout preferred_layout = mem::Layout::SoA;
};

/// Evaluate the cost model for `items` items on `spec` with data in
/// `layout`.
sim::Duration kernel_duration(const Kernel& kernel, const DeviceSpec& spec, std::size_t items,
                              mem::Layout layout);

/// Process-wide registry mapping executeName -> Kernel, mirroring the PTX
/// function lookup in the paper (§3.5.3).
class KernelRegistry {
 public:
  void register_kernel(Kernel kernel);
  const Kernel& lookup(const std::string& name) const;
  bool contains(const std::string& name) const { return kernels_.count(name) != 0; }
  std::size_t size() const { return kernels_.size(); }

  /// The registry shared by all workloads (kernels are stateless).
  static KernelRegistry& global();

 private:
  std::map<std::string, Kernel> kernels_;
};

}  // namespace gflink::gpu
