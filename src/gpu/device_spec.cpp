#include "gpu/device_spec.hpp"

namespace gflink::gpu {

DeviceSpec DeviceSpec::gtx750() {
  DeviceSpec d;
  d.name = "GTX750";
  d.peak_flops = 1.044e12;   // 512 cores @ 1.02 GHz, Maxwell GM107
  d.kernel_efficiency = 0.22;
  d.mem_bandwidth = 80.0e9;
  d.device_memory = 1ULL << 30;
  d.copy_engines = 1;        // consumer Maxwell: one copy engine
  d.pcie_bandwidth = 2.97e9;  // PCIe gen2 x16 effective
  return d;
}

DeviceSpec DeviceSpec::c2050() {
  DeviceSpec d;
  d.name = "C2050";
  d.peak_flops = 1.03e12;    // Fermi GF100, 448 cores @ 1.15 GHz
  d.kernel_efficiency = 0.22;
  d.mem_bandwidth = 144.0e9;
  d.device_memory = 3ULL << 30;
  d.copy_engines = 2;        // Tesla Fermi: dual DMA engines
  d.pcie_bandwidth = 2.97e9;  // matches the paper's Table 2 plateau
  return d;
}

DeviceSpec DeviceSpec::k20() {
  DeviceSpec d;
  d.name = "K20";
  d.peak_flops = 3.52e12;    // Kepler GK110
  d.kernel_efficiency = 0.25;
  d.mem_bandwidth = 208.0e9;
  d.device_memory = 5ULL << 30;
  d.copy_engines = 2;
  d.pcie_bandwidth = 5.0e9;  // PCIe gen2, better chipset
  return d;
}

DeviceSpec DeviceSpec::p100() {
  DeviceSpec d;
  d.name = "P100";
  d.peak_flops = 9.3e12;     // Pascal GP100
  d.kernel_efficiency = 0.30;
  d.mem_bandwidth = 732.0e9;
  d.device_memory = 16ULL << 30;
  d.copy_engines = 2;
  d.pcie_bandwidth = 11.8e9;  // PCIe gen3 x16 effective
  d.kernel_launch_overhead = sim::micros(5);
  return d;
}

}  // namespace gflink::gpu
