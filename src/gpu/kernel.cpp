#include "gpu/kernel.hpp"

#include <algorithm>

#include "gpu/device_spec.hpp"

namespace gflink::gpu {

sim::Duration kernel_duration(const Kernel& kernel, const DeviceSpec& spec, std::size_t items,
                              mem::Layout layout) {
  const double n = static_cast<double>(items);
  const double flops = kernel.cost.flops_per_item * n + kernel.cost.fixed_flops;
  const double bytes = kernel.cost.dram_bytes_per_item * n;
  const double sustained = spec.peak_flops * spec.kernel_efficiency;
  const double bw = spec.mem_bandwidth * spec.layout_efficiency[static_cast<int>(layout)];
  const double compute_s = sustained > 0 ? flops / sustained : 0.0;
  const double memory_s = bw > 0 ? bytes / bw : 0.0;
  const double busy_s = std::max(compute_s, memory_s);
  return spec.kernel_launch_overhead + static_cast<sim::Duration>(busy_s * sim::kSecond);
}

void KernelRegistry::register_kernel(Kernel kernel) {
  GFLINK_CHECK_MSG(!kernel.name.empty(), "kernel needs a name");
  GFLINK_CHECK_MSG(kernel.fn != nullptr, "kernel needs an implementation");
  kernels_[kernel.name] = std::move(kernel);
}

const Kernel& KernelRegistry::lookup(const std::string& name) const {
  auto it = kernels_.find(name);
  GFLINK_CHECK_MSG(it != kernels_.end(), "unknown kernel: " + name);
  return it->second;
}

KernelRegistry& KernelRegistry::global() {
  static KernelRegistry registry;
  return registry;
}

}  // namespace gflink::gpu
