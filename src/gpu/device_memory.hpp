// Device memory: a first-fit free-list allocator over the GPU's address
// range, with host-shadow storage for allocation contents.
//
// The simulator cannot (and need not) reserve real gigabytes: the address
// arithmetic runs over the full virtual capacity, while actual bytes are
// materialized per allocation ("shadow"), sized by what experiments really
// ship. Kernels read and write these shadows, so results are real.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "core/thread_annotations.hpp"
#include "sim/util.hpp"

namespace gflink::gpu {

/// Opaque device pointer (offset within the device's address range; 0 is
/// never returned, mirroring CUDA's non-null devptrs).
using DevicePtr = std::uint64_t;

class DeviceMemory {
 public:
  explicit DeviceMemory(std::uint64_t capacity);

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t allocated() const {
    core::MutexLock lock(mu_);
    return allocated_;
  }
  std::uint64_t free_bytes() const { return capacity_ - allocated(); }

  /// First-fit allocation; returns 0 when no hole fits (cudaMalloc OOM).
  DevicePtr allocate(std::uint64_t bytes);

  /// Whether allocate(bytes) would succeed right now: a contiguous hole of
  /// the aligned size exists (free_bytes() overstates what a fragmented
  /// heap can satisfy).
  bool can_allocate(std::uint64_t bytes) const;

  /// Free a pointer previously returned by allocate. Coalesces neighbours.
  void free(DevicePtr ptr);

  /// True if `ptr` is a live allocation base.
  bool live(DevicePtr ptr) const {
    core::MutexLock lock(mu_);
    return allocations_.count(ptr) != 0;
  }

  std::uint64_t allocation_size(DevicePtr ptr) const;

  /// Host shadow bytes of the allocation containing [ptr, ptr+len). The
  /// range must lie within a single live allocation. The *lookup* is
  /// locked; the returned bytes are the data plane — owned by whichever
  /// stream holds the allocation, written without the metadata lock.
  std::byte* shadow(DevicePtr ptr, std::uint64_t len);
  const std::byte* shadow(DevicePtr ptr, std::uint64_t len) const;

  std::size_t allocation_count() const {
    core::MutexLock lock(mu_);
    return allocations_.size();
  }

 private:
  struct Allocation {
    std::uint64_t size;
    std::vector<std::byte> bytes;
  };

  // Returns iterator to the allocation containing ptr, or aborts.
  std::map<DevicePtr, Allocation>::const_iterator containing(DevicePtr ptr, std::uint64_t len)
      const GFLINK_REQUIRES(mu_);

  /// Guards the allocator metadata (free list, allocation table, usage).
  /// Leaf lock: acquired after GMemoryManager::mu_, never calls out.
  mutable core::Mutex mu_;
  std::uint64_t capacity_;
  std::uint64_t allocated_ GFLINK_GUARDED_BY(mu_) = 0;
  std::map<DevicePtr, Allocation> allocations_ GFLINK_GUARDED_BY(mu_);   // keyed by base pointer
  std::map<DevicePtr, std::uint64_t> free_list_ GFLINK_GUARDED_BY(mu_);  // base -> size, coalesced
};

}  // namespace gflink::gpu
