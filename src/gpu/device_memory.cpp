#include "gpu/device_memory.hpp"

namespace gflink::gpu {

namespace {
// Reserve address 0 so DevicePtr 0 can mean "null".
constexpr std::uint64_t kBase = 256;
// Keep allocations aligned the way cudaMalloc does.
constexpr std::uint64_t kAlign = 256;

std::uint64_t align_up(std::uint64_t x) { return (x + kAlign - 1) / kAlign * kAlign; }
}  // namespace

DeviceMemory::DeviceMemory(std::uint64_t capacity) : capacity_(capacity) {
  core::MutexLock lock(mu_);
  free_list_[kBase] = capacity;
}

bool DeviceMemory::can_allocate(std::uint64_t bytes) const {
  core::MutexLock lock(mu_);
  const std::uint64_t need = align_up(bytes);
  for (const auto& [base, size] : free_list_) {
    if (size >= need) return true;
  }
  return false;
}

DevicePtr DeviceMemory::allocate(std::uint64_t bytes) {
  GFLINK_CHECK(bytes > 0);
  core::MutexLock lock(mu_);
  const std::uint64_t need = align_up(bytes);
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second >= need) {
      DevicePtr ptr = it->first;
      std::uint64_t hole = it->second;
      free_list_.erase(it);
      if (hole > need) free_list_[ptr + need] = hole - need;
      Allocation a;
      a.size = need;
      a.bytes.assign(bytes, std::byte{0});
      allocations_.emplace(ptr, std::move(a));
      allocated_ += need;
      return ptr;
    }
  }
  return 0;  // OOM
}

void DeviceMemory::free(DevicePtr ptr) {
  core::MutexLock lock(mu_);
  auto it = allocations_.find(ptr);
  GFLINK_CHECK_MSG(it != allocations_.end(), "free of unknown device pointer");
  std::uint64_t size = it->second.size;
  allocations_.erase(it);
  allocated_ -= size;

  // Insert into the free list and coalesce with neighbours.
  auto [fit, ok] = free_list_.emplace(ptr, size);
  GFLINK_CHECK(ok);
  // Merge with successor.
  auto next = std::next(fit);
  if (next != free_list_.end() && fit->first + fit->second == next->first) {
    fit->second += next->second;
    free_list_.erase(next);
  }
  // Merge with predecessor.
  if (fit != free_list_.begin()) {
    auto prev = std::prev(fit);
    if (prev->first + prev->second == fit->first) {
      prev->second += fit->second;
      free_list_.erase(fit);
    }
  }
}

std::uint64_t DeviceMemory::allocation_size(DevicePtr ptr) const {
  core::MutexLock lock(mu_);
  auto it = allocations_.find(ptr);
  GFLINK_CHECK_MSG(it != allocations_.end(), "unknown device pointer");
  return it->second.size;
}

std::map<DevicePtr, DeviceMemory::Allocation>::const_iterator DeviceMemory::containing(
    DevicePtr ptr, std::uint64_t len) const {
  auto it = allocations_.upper_bound(ptr);
  GFLINK_CHECK_MSG(it != allocations_.begin(), "device pointer outside any allocation");
  --it;
  GFLINK_CHECK_MSG(ptr >= it->first && ptr + len <= it->first + it->second.bytes.size(),
                   "device access out of allocation bounds");
  return it;
}

std::byte* DeviceMemory::shadow(DevicePtr ptr, std::uint64_t len) {
  core::MutexLock lock(mu_);
  auto it = containing(ptr, len);
  auto& alloc = const_cast<Allocation&>(it->second);
  return alloc.bytes.data() + (ptr - it->first);
}

const std::byte* DeviceMemory::shadow(DevicePtr ptr, std::uint64_t len) const {
  core::MutexLock lock(mu_);
  auto it = containing(ptr, len);
  return it->second.bytes.data() + (ptr - it->first);
}

}  // namespace gflink::gpu
