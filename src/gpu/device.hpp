// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// GpuDevice: one simulated GPU board — device memory, DMA copy engines and
// a compute engine, with real data movement into shadow memory and modelled
// durations.
//
// Engine model:
//  * compute engine: kernels serialize FIFO (large data-parallel kernels
//    saturate the SMs, so concurrent kernels would timeslice anyway);
//  * copy engines: boards with two DMA engines copy H2D and D2H in full
//    duplex; boards with one serialize both directions (paper §4.1.2).
// Overlap of copies with kernels — the three-stage pipeline — falls out of
// the engines being independent resources.
#pragma once

#include <atomic>
#include <string>

#include "core/thread_annotations.hpp"
#include "gpu/device_memory.hpp"
#include "gpu/device_spec.hpp"
#include "gpu/kernel.hpp"
#include "mem/buffer.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/trace.hpp"

class Threading_DeviceOverlapAccounting_Test;  // tests/test_threading.cpp

namespace gflink::gpu {

class GpuDevice {
 public:
  GpuDevice(sim::Simulation& sim, std::string id, const DeviceSpec& spec,
            sim::Tracer* tracer = nullptr);

  const std::string& id() const { return id_; }
  const DeviceSpec& spec() const { return spec_; }
  DeviceMemory& memory() { return memory_; }
  const DeviceMemory& memory() const { return memory_; }
  sim::Simulation& sim() { return *sim_; }

  /// Unloaded duration of one DMA transfer.
  sim::Duration dma_time(std::uint64_t bytes, bool pinned) const;

  /// Copy host buffer bytes to device memory (occupies the H2D engine).
  /// Non-off-heap buffers pay a host staging copy first; non-pinned buffers
  /// move at reduced bandwidth.
  sim::Co<void> copy_h2d(const mem::HBuffer& src, std::size_t src_offset, DevicePtr dst,
                         std::uint64_t bytes, const std::string& label = {});

  /// Copy device memory back to a host buffer (occupies the D2H engine).
  sim::Co<void> copy_d2h(DevicePtr src, mem::HBuffer& dst, std::size_t dst_offset,
                         std::uint64_t bytes, const std::string& label = {});

  /// Run a kernel over device buffers (occupies the compute engine).
  /// `buffers` are (ptr, len) pairs bound in order; `layout` is the actual
  /// layout of the data, which scales effective memory bandwidth.
  struct BufferBinding {
    DevicePtr ptr;
    std::uint64_t len;
  };
  sim::Co<void> launch(const Kernel& kernel, const std::vector<BufferBinding>& buffers,
                       std::size_t items, mem::Layout layout, int block_size = 256,
                       int grid_size = 0, const void* params = nullptr,
                       const std::string& label = {});

  /// Run a kernel over *device-mapped host memory* (paper §4.1.2): the SMs
  /// read the host buffers across PCIe during execution, so there is no
  /// explicit copy and no copy-engine occupancy — the price is that the
  /// kernel's memory bandwidth is capped at PCIe speed. This is how
  /// single-copy-engine boards reach full-duplex behaviour.
  sim::Co<void> launch_mapped(const Kernel& kernel, std::vector<std::span<std::byte>> host_spans,
                              std::size_t items, mem::Layout layout,
                              const std::string& label = {});

  // Statistics. Byte/kernel/busy totals are relaxed atomics: independent
  // monotonic counters bumped from concurrently-running stream coroutines.
  std::uint64_t bytes_h2d() const { return bytes_h2d_.load(std::memory_order_relaxed); }
  std::uint64_t bytes_d2h() const { return bytes_d2h_.load(std::memory_order_relaxed); }
  std::uint64_t kernels_launched() const {
    return kernels_launched_.load(std::memory_order_relaxed);
  }
  sim::Duration kernel_busy() const { return kernel_busy_.load(std::memory_order_relaxed); }
  sim::Duration h2d_busy() const { return h2d_busy_.load(std::memory_order_relaxed); }
  sim::Duration d2h_busy() const { return d2h_busy_.load(std::memory_order_relaxed); }
  /// Virtual time during which at least one copy engine and the compute
  /// engine were busy simultaneously — the time the chunked pipeline (and
  /// multi-stream execution) actually hides behind kernels.
  sim::Duration copy_compute_overlap() const {
    core::MutexLock lock(engines_mu_);
    return overlap_ns_;
  }
  /// overlap / min(copy busy, kernel busy): 1.0 means every byte moved
  /// while a kernel ran (perfect hiding); 0 means fully serialized.
  double overlap_efficiency() const;

 private:
  // The overlap stress test drives mark_engine() directly: the engines_mu_
  // snapshot is the one piece of device state read by the host plane while
  // the sim thread mutates it, and no public API reaches it off-plane.
  friend class ::Threading_DeviceOverlapAccounting_Test;

  sim::Co<void> dma(sim::Mutex& engine, const char* lane, std::uint64_t bytes, bool pinned,
                    bool off_heap, const std::string& label, std::atomic<sim::Duration>& busy);

  /// Engine-activity bookkeeping behind copy_compute_overlap(): called at
  /// every busy-state transition of a copy or compute engine. The counts,
  /// the mark time and the accrued overlap change together, so they fold
  /// under one mutex rather than individual atomics.
  void mark_engine(bool copy, int delta) GFLINK_EXCLUDES(engines_mu_);

  sim::Simulation* sim_;
  std::string id_;
  DeviceSpec spec_;
  DeviceMemory memory_;
  sim::Tracer* tracer_;

  sim::Mutex compute_;
  sim::Mutex copy_a_;  // H2D engine (and D2H when copy_engines == 1)
  sim::Mutex copy_b_;  // D2H engine (unused when copy_engines == 1)

  std::atomic<std::uint64_t> bytes_h2d_{0};
  std::atomic<std::uint64_t> bytes_d2h_{0};
  std::atomic<std::uint64_t> kernels_launched_{0};
  std::atomic<sim::Duration> kernel_busy_{0};
  std::atomic<sim::Duration> h2d_busy_{0};
  std::atomic<sim::Duration> d2h_busy_{0};

  // Copy-compute overlap accounting: between transitions the active sets
  // are constant, so overlap accrues whenever both counts are non-zero.
  // The four fields form one consistent snapshot — guarded, not atomic.
  mutable core::Mutex engines_mu_;
  int active_copies_ GFLINK_GUARDED_BY(engines_mu_) = 0;
  int active_kernels_ GFLINK_GUARDED_BY(engines_mu_) = 0;
  sim::Time last_engine_mark_ GFLINK_GUARDED_BY(engines_mu_) = 0;
  sim::Duration overlap_ns_ GFLINK_GUARDED_BY(engines_mu_) = 0;

  /// Host-side memcpy bandwidth for JVM-heap staging copies (the cost the
  /// off-heap design removes).
  static constexpr double kHeapCopyBandwidth = 4.0e9;
};

}  // namespace gflink::gpu
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
