// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "gpu/device.hpp"

#include <algorithm>

namespace gflink::gpu {

GpuDevice::GpuDevice(sim::Simulation& sim, std::string id, const DeviceSpec& spec,
                     sim::Tracer* tracer)
    : sim_(&sim),
      id_(std::move(id)),
      spec_(spec),
      memory_(spec.device_memory),
      tracer_(tracer),
      compute_(sim),
      copy_a_(sim),
      copy_b_(sim) {}

sim::Duration GpuDevice::dma_time(std::uint64_t bytes, bool pinned) const {
  const double bw = pinned ? spec_.pcie_bandwidth : spec_.pcie_bandwidth * spec_.pageable_penalty;
  return spec_.pcie_latency + sim::transfer_time(bytes, bw);
}

void GpuDevice::mark_engine(bool copy, int delta) {
  const sim::Time now = sim_->now();
  core::MutexLock lock(engines_mu_);
  if (active_copies_ > 0 && active_kernels_ > 0) overlap_ns_ += now - last_engine_mark_;
  last_engine_mark_ = now;
  (copy ? active_copies_ : active_kernels_) += delta;
}

double GpuDevice::overlap_efficiency() const {
  const sim::Duration hideable = std::min(h2d_busy() + d2h_busy(), kernel_busy());
  const sim::Duration overlap = copy_compute_overlap();
  return hideable > 0 ? static_cast<double>(overlap) / static_cast<double>(hideable) : 0.0;
}

sim::Co<void> GpuDevice::dma(sim::Mutex& engine, const char* lane, std::uint64_t bytes,
                             bool pinned, bool off_heap, const std::string& label,
                             std::atomic<sim::Duration>& busy) {
  // JVM-heap buffers must first be staged into native memory — the copy the
  // paper's off-heap design eliminates (§4.1.2). It is a CPU memcpy, so it
  // does not occupy the DMA engine.
  if (!off_heap) {
    co_await sim_->delay(sim::transfer_time(bytes, kHeapCopyBandwidth));
  }
  co_await engine.lock();
  sim::Time begin = sim_->now();
  mark_engine(/*copy=*/true, +1);
  co_await sim_->delay(dma_time(bytes, pinned));
  mark_engine(/*copy=*/true, -1);
  busy.fetch_add(sim_->now() - begin, std::memory_order_relaxed);
  if (tracer_) tracer_->record(id_ + "/" + lane, label, begin, sim_->now());
  engine.unlock();
}

sim::Co<void> GpuDevice::copy_h2d(const mem::HBuffer& src, std::size_t src_offset, DevicePtr dst,
                                  std::uint64_t bytes, const std::string& label) {
  GFLINK_CHECK(src_offset + bytes <= src.size());
  // Move the real bytes first so the shadow is coherent even though the
  // simulated duration elapses afterwards (single-threaded determinism
  // makes the distinction unobservable to well-formed programs that await
  // the copy before launching kernels on it).
  std::byte* shadow = memory_.shadow(dst, bytes);
  std::memcpy(shadow, src.data() + src_offset, bytes);
  bytes_h2d_.fetch_add(bytes, std::memory_order_relaxed);
  co_await dma(copy_a_, "h2d", bytes, src.pinned(), src.off_heap(), label, h2d_busy_);
}

sim::Co<void> GpuDevice::copy_d2h(DevicePtr src, mem::HBuffer& dst, std::size_t dst_offset,
                                  std::uint64_t bytes, const std::string& label) {
  GFLINK_CHECK(dst_offset + bytes <= dst.size());
  sim::Mutex& engine = spec_.copy_engines >= 2 ? copy_b_ : copy_a_;
  co_await dma(engine, "d2h", bytes, dst.pinned(), dst.off_heap(), label, d2h_busy_);
  // Copy bytes after the simulated transfer completes: the destination is
  // only coherent once the DMA is done, and callers may inspect it then.
  const std::byte* shadow = memory_.shadow(src, bytes);
  std::memcpy(dst.data() + dst_offset, shadow, bytes);
  bytes_d2h_.fetch_add(bytes, std::memory_order_relaxed);
}

sim::Co<void> GpuDevice::launch(const Kernel& kernel, const std::vector<BufferBinding>& buffers,
                                std::size_t items, mem::Layout layout, int block_size,
                                int grid_size, const void* params, const std::string& label) {
  co_await compute_.lock();
  sim::Time begin = sim_->now();

  KernelLaunch launch;
  launch.items = items;
  launch.block_size = block_size;
  launch.grid_size =
      grid_size > 0 ? grid_size
                    : static_cast<int>((items + static_cast<std::size_t>(block_size) - 1) /
                                       static_cast<std::size_t>(block_size));
  launch.params = params;
  launch.buffers.reserve(buffers.size());
  for (const auto& b : buffers) {
    launch.buffers.emplace_back(memory_.shadow(b.ptr, b.len), b.len);
  }

  kernel.fn(launch);  // real computation on the shadow memory

  sim::Duration dur = kernel_duration(kernel, spec_, items, layout);
  mark_engine(/*copy=*/false, +1);
  co_await sim_->delay(dur);
  mark_engine(/*copy=*/false, -1);
  kernel_busy_.fetch_add(dur, std::memory_order_relaxed);
  kernels_launched_.fetch_add(1, std::memory_order_relaxed);
  if (tracer_) {
    tracer_->record(id_ + "/kernel", label.empty() ? kernel.name : label, begin, sim_->now());
  }
  compute_.unlock();
}

sim::Co<void> GpuDevice::launch_mapped(const Kernel& kernel,
                                       std::vector<std::span<std::byte>> host_spans,
                                       std::size_t items, mem::Layout layout,
                                       const std::string& label) {
  co_await compute_.lock();
  sim::Time begin = sim_->now();

  KernelLaunch launch;
  launch.items = items;
  launch.block_size = 256;
  launch.grid_size = static_cast<int>((items + 255) / 256);
  launch.buffers = std::move(host_spans);
  kernel.fn(launch);  // reads/writes host memory directly

  // Roofline with the DRAM term replaced by the PCIe link (mapped reads
  // stream over the bus at link speed, regardless of layout coalescing).
  const double n = static_cast<double>(items);
  const double flops = kernel.cost.flops_per_item * n + kernel.cost.fixed_flops;
  const double bytes = kernel.cost.dram_bytes_per_item * n;
  const double sustained = spec_.peak_flops * spec_.kernel_efficiency;
  const double compute_s = sustained > 0 ? flops / sustained : 0.0;
  const double bus_s = bytes / spec_.pcie_bandwidth;
  sim::Duration dur = spec_.kernel_launch_overhead +
                      static_cast<sim::Duration>(std::max(compute_s, bus_s) * sim::kSecond);
  mark_engine(/*copy=*/false, +1);
  co_await sim_->delay(dur);
  mark_engine(/*copy=*/false, -1);
  kernel_busy_.fetch_add(dur, std::memory_order_relaxed);
  kernels_launched_.fetch_add(1, std::memory_order_relaxed);
  if (tracer_) {
    tracer_->record(id_ + "/kernel", label.empty() ? kernel.name + "(mapped)" : label, begin,
                    sim_->now());
  }
  (void)layout;
  compute_.unlock();
}

}  // namespace gflink::gpu
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
