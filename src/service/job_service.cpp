// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "service/job_service.hpp"

#include <algorithm>
#include <cmath>

namespace gflink::service {

namespace {

/// Nearest-rank percentile over unsorted samples (exact, small N).
double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[std::min(samples.size() - 1, rank == 0 ? 0 : rank - 1)];
}

JobService::Percentiles summarize(const std::vector<double>& samples) {
  JobService::Percentiles p;
  p.p50 = percentile(samples, 0.50);
  p.p95 = percentile(samples, 0.95);
  p.p99 = percentile(samples, 0.99);
  return p;
}

obs::Json percentiles_json(const JobService::Percentiles& p) {
  obs::Json j = obs::Json::object();
  j["p50"] = p.p50;
  j["p95"] = p.p95;
  j["p99"] = p.p99;
  return j;
}

}  // namespace

JobService::JobService(dataflow::Engine& engine, core::GFlinkRuntime* runtime,
                       ServiceConfig config)
    : engine_(&engine), runtime_(runtime), config_(config) {
  GFLINK_CHECK(config_.max_pending > 0);
  GFLINK_CHECK(config_.drr_quantum > 0.0);
}

void JobService::add_tenant(const TenantConfig& config) {
  GFLINK_CHECK_MSG(!config.name.empty(), "tenant needs a name");
  GFLINK_CHECK_MSG(tenant_index_.find(config.name) == tenant_index_.end(),
                   "tenant registered twice");
  GFLINK_CHECK(config.weight > 0.0);
  tenant_index_[config.name] = tenants_.size();
  tenants_.push_back(std::make_unique<Tenant>());
  tenants_.back()->config = config;
  if (runtime_ != nullptr) {
    if (config.cache_quota_bytes > 0) {
      runtime_->set_tenant_quota(config.name, config.cache_quota_bytes);
    }
    if (config.gwork_priority != 0) {
      runtime_->set_tenant_priority(config.name, config.gwork_priority);
    }
  }
}

JobService::Tenant& JobService::tenant_of(const std::string& name) {
  auto it = tenant_index_.find(name);
  GFLINK_CHECK_MSG(it != tenant_index_.end(), "submission from an unregistered tenant");
  return *tenants_[it->second];
}

std::size_t JobService::tenant_pending(const std::string& name) const {
  auto it = tenant_index_.find(name);
  if (it == tenant_index_.end()) return 0;
  return tenants_[it->second]->queue.size();
}

std::vector<std::string> JobService::tenant_names() const {
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) out.push_back(t->config.name);
  return out;
}

TicketPtr JobService::submit(const std::string& tenant, std::string job_name, double cost,
                             JobBody body) {
  GFLINK_CHECK(cost > 0.0);
  Tenant& t = tenant_of(tenant);
  auto ticket = std::make_shared<JobTicket>();
  ticket->tenant_ = tenant;
  ticket->cost = cost;
  ticket->body_ = std::move(body);
  ticket->done_ = std::make_shared<sim::Trigger>(engine_->sim());
  ticket->enqueued_at = engine_->now();
  ticket->job_ = std::make_unique<dataflow::Job>(*engine_, std::move(job_name));
  ticket->job_->set_tenant(tenant);
  all_.push_back(ticket);
  engine_->metrics().counter("service_submitted_total", {{"tenant", tenant}}).inc();

  if (pending_count_ >= config_.max_pending) {
    // Admission control: the queue is bounded; tell the client now.
    ticket->state_ = TicketState::Rejected;
    ticket->job_->cancel();
    ++t.rejected;
    ++rejected_;
    engine_->metrics().counter("service_rejected_total", {{"tenant", tenant}}).inc();
    ticket->done_->fire();
    return ticket;
  }

  ticket->job_->stats().state = dataflow::JobState::Queued;
  t.queue.push_back(ticket);
  ++pending_count_;
  pump();
  return ticket;
}

bool JobService::cancel(const TicketPtr& ticket) {
  if (ticket == nullptr || ticket->state_ != TicketState::Pending) return false;
  Tenant& t = tenant_of(ticket->tenant_);
  auto it = std::find(t.queue.begin(), t.queue.end(), ticket);
  GFLINK_CHECK_MSG(it != t.queue.end(), "pending ticket missing from its tenant queue");
  t.queue.erase(it);
  --pending_count_;
  ticket->state_ = TicketState::Cancelled;
  ticket->job_->cancel();
  ++t.cancelled;
  ++cancelled_;
  engine_->metrics().counter("service_cancelled_total", {{"tenant", ticket->tenant_}}).inc();
  ticket->done_->fire();
  // A freed pending slot cannot unblock dispatch (dispatch is bounded by
  // in-flight caps, not queue depth), so no pump() here.
  return true;
}

sim::Co<void> JobService::drain() {
  // all_ may grow while we await (clients keep submitting); the index loop
  // picks the newcomers up. Fired triggers resolve immediately.
  for (std::size_t i = 0; i < all_.size(); ++i) {
    co_await all_[i]->done_->wait();
  }
}

bool JobService::at_total_cap() const {
  return config_.max_total_in_flight > 0 && total_in_flight_ >= config_.max_total_in_flight;
}

bool JobService::serviceable(const Tenant& t) const {
  return !t.queue.empty() &&
         (t.config.max_in_flight == 0 || t.in_flight < t.config.max_in_flight);
}

void JobService::pump() {
  if (pumping_ || tenants_.empty()) return;
  pumping_ = true;
  // Deficit round-robin (DRR) with a rotating cursor. When the cursor
  // arrives at a serviceable tenant it is credited quantum x weight *once*
  // for this visit; the tenant then dispatches from the front of its FIFO
  // while the deficit covers the head job's cost. The visit — including an
  // unspent deficit — persists across pump() calls: when the total
  // in-flight cap stops dispatch mid-visit, the next completion resumes
  // the same tenant without a fresh credit, so shares track weights even
  // when the cap serializes dispatch. Terminates: every iteration either
  // dispatches (finite backlog) or advances the cursor, and each full
  // rotation credits every backlogged tenant toward its finite head cost.
  auto advance = [this] {
    cursor_ = (cursor_ + 1) % tenants_.size();
    accrued_current_ = false;
  };
  auto any_serviceable = [this] {
    for (const auto& tp : tenants_) {
      if (serviceable(*tp)) return true;
    }
    return false;
  };
  while (!at_total_cap() && any_serviceable()) {
    Tenant& t = *tenants_[cursor_];
    if (!serviceable(t)) {
      if (t.queue.empty()) t.deficit = 0.0;  // classic DRR: idle hoards nothing
      advance();
      continue;
    }
    if (!accrued_current_) {
      t.deficit += config_.drr_quantum * t.config.weight;
      accrued_current_ = true;
    }
    if (t.deficit >= t.queue.front()->cost) {
      TicketPtr ticket = t.queue.front();
      t.queue.pop_front();
      t.deficit -= ticket->cost;
      --pending_count_;
      dispatch(t, ticket);
    } else {
      advance();  // credit spent for this visit; next tenant's turn
    }
  }
  pumping_ = false;
}

void JobService::dispatch(Tenant& t, const TicketPtr& ticket) {
  // Leave Pending here, not in run_job(): the spawned coroutine first runs
  // after we return, and a cancel() in that window must see the ticket as
  // already dispatched (no longer in any queue).
  ticket->state_ = TicketState::Running;
  ticket->dispatched_at = engine_->now();
  ++t.in_flight;
  ++total_in_flight_;
  engine_->metrics()
      .counter("service_dispatch_cost_total", {{"tenant", t.config.name}})
      .inc(ticket->cost);
  // gflint: allow(C3): the JobService outlives the simulation it drives
  // (owned by the harness that owns the Engine), and the ticket shared_ptr
  // keeps the per-job state alive inside the frame.
  engine_->sim().spawn(run_job(t, ticket));
}

sim::Co<void> JobService::run_job(Tenant& t, TicketPtr ticket) {
  const auto queue_wait = static_cast<double>(ticket->dispatched_at - ticket->enqueued_at);
  if (ticket->dispatched_at > ticket->enqueued_at) {
    engine_->cluster().spans().record("service_queue_wait", obs::SpanCategory::Wait, 0,
                                      ticket->enqueued_at, ticket->dispatched_at,
                                      tenant_lane(t), 0);
  }
  engine_->metrics()
      .histogram("service_queue_wait_ns", 0.0, 1.0e10, 100, {{"tenant", t.config.name}})
      .add(queue_wait);

  dataflow::Job& job = *ticket->job_;
  if (runtime_ != nullptr) runtime_->set_job_tenant(job.id(), t.config.name);
  co_await job.submit();
  co_await ticket->body_(job);
  job.finish();
  if (runtime_ != nullptr) runtime_->release_job(job.id());

  ticket->completed_at = engine_->now();
  ticket->state_ = TicketState::Completed;
  const auto run_ns = static_cast<double>(ticket->completed_at - ticket->dispatched_at);
  const auto latency_ns = static_cast<double>(ticket->completed_at - ticket->enqueued_at);
  t.queue_wait_samples.push_back(queue_wait);
  t.run_samples.push_back(run_ns);
  t.latency_samples.push_back(latency_ns);
  engine_->metrics()
      .histogram("service_run_ns", 0.0, 1.0e10, 100, {{"tenant", t.config.name}})
      .add(run_ns);
  engine_->metrics()
      .histogram("service_latency_ns", 0.0, 1.0e10, 100, {{"tenant", t.config.name}})
      .add(latency_ns);
  engine_->metrics().counter("service_completed_total", {{"tenant", t.config.name}}).inc();
  ++t.completed;
  ++completed_;
  --t.in_flight;
  --total_in_flight_;
  if (observer_) observer_(t.config.name, ticket->completed_at - ticket->enqueued_at);
  ticket->done_->fire();
  pump();  // a slot freed: let the fair scheduler dispatch the next job
}

std::vector<JobService::TenantSnapshot> JobService::snapshot() const {
  std::vector<TenantSnapshot> out;
  out.reserve(tenants_.size());
  for (const auto& tp : tenants_) {
    const Tenant& t = *tp;
    TenantSnapshot s;
    s.name = t.config.name;
    s.weight = t.config.weight;
    s.completed = t.completed;
    s.rejected = t.rejected;
    s.cancelled = t.cancelled;
    s.queue_wait_ns = summarize(t.queue_wait_samples);
    s.run_ns = summarize(t.run_samples);
    s.latency_ns = summarize(t.latency_samples);
    if (runtime_ != nullptr) {
      s.cache_inserted_bytes = runtime_->tenant_inserted_bytes(t.config.name);
    }
    out.push_back(std::move(s));
  }
  return out;
}

obs::Json JobService::fairness_json() const {
  const std::vector<TenantSnapshot> snaps = snapshot();
  double total_weight = 0.0, total_completed = 0.0, total_cache = 0.0;
  for (const auto& s : snaps) {
    total_weight += s.weight;
    total_completed += static_cast<double>(s.completed);
    total_cache += static_cast<double>(s.cache_inserted_bytes);
  }
  obs::Json root = obs::Json::object();
  for (const auto& s : snaps) {
    obs::Json entry = obs::Json::object();
    entry["weight"] = s.weight;
    entry["weight_share"] = total_weight > 0 ? s.weight / total_weight : 0.0;
    entry["completed"] = static_cast<std::int64_t>(s.completed);
    entry["rejected"] = static_cast<std::int64_t>(s.rejected);
    entry["cancelled"] = static_cast<std::int64_t>(s.cancelled);
    entry["throughput_share"] =
        total_completed > 0 ? static_cast<double>(s.completed) / total_completed : 0.0;
    entry["cache_inserted_bytes"] = static_cast<std::int64_t>(s.cache_inserted_bytes);
    entry["cache_share"] =
        total_cache > 0 ? static_cast<double>(s.cache_inserted_bytes) / total_cache : 0.0;
    entry["queue_wait_ns"] = percentiles_json(s.queue_wait_ns);
    entry["run_ns"] = percentiles_json(s.run_ns);
    entry["latency_ns"] = percentiles_json(s.latency_ns);
    root[s.name] = std::move(entry);
  }
  return root;
}

}  // namespace gflink::service
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
