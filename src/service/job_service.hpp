// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// JobService: the multi-tenant front end of the JobManager.
//
// The paper's GFlink runs one job graph at a time; its north-star
// deployment — an in-memory CPU-GPU cluster serving many users — is
// multi-tenant (ROADMAP item 1). The JobService sits in front of the
// dataflow Engine and:
//  * admits a stream of job submissions from registered tenants into a
//    bounded pending queue (FIFO within each tenant), rejecting overflow;
//  * dispatches admitted jobs by weighted-fair deficit round-robin over
//    tenants (each round credits quantum x weight; a job dispatches when
//    the tenant's deficit covers its declared cost), with optional
//    per-tenant and global max-in-flight caps;
//  * tags every dispatched job with its tenant, which flows into the GPU
//    layer: per-tenant cache quotas in GMemoryManager and per-tenant GWork
//    priorities in GStreamManager (via core::GFlinkRuntime);
//  * measures per-tenant SLOs — queue wait vs. run split via the span
//    tracer (tenant-labeled lanes), service_* metrics, and the per-tenant
//    fairness section of the v3 run report.
//
// Concurrency: the service is simulation-plane state — mutated only
// between suspension points of the single simulation thread (like the
// GStreamManager scheduler), so it carries no lock. The dispatcher is the
// synchronous pump() — called from submit() and from each job completion —
// never a parked coroutine, so a drained simulation holds no service
// processes (Engine::run's live_processes()==0 check stays valid).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/gpu_manager.hpp"
#include "dataflow/engine.hpp"
#include "obs/json.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace gflink::service {

struct TenantConfig {
  std::string name;
  /// Weighted-fair share of dispatch (deficit-round-robin credit per round).
  double weight = 1.0;
  /// Max jobs of this tenant running concurrently; 0 = unlimited.
  int max_in_flight = 0;
  /// Per-device GPU cache quota in bytes (0 = none) — installed into every
  /// worker's GMemoryManager when a runtime is attached.
  std::uint64_t cache_quota_bytes = 0;
  /// GWork pool priority for this tenant's jobs (0 = default FIFO).
  int gwork_priority = 0;
};

struct ServiceConfig {
  /// Bound on the pending queue across all tenants; submissions beyond it
  /// are rejected (admission control, not backpressure: the client is told
  /// immediately).
  std::size_t max_pending = 256;
  /// Deficit credited per round is quantum x tenant weight. With quantum ==
  /// the typical job cost, a weight-2 tenant dispatches two typical jobs
  /// per round where a weight-1 tenant dispatches one.
  double drr_quantum = 1.0;
  /// Max jobs running concurrently across all tenants; 0 = unlimited.
  /// Bounding this is what makes dispatch *order* (the fairness policy)
  /// matter on a saturated cluster.
  int max_total_in_flight = 0;
};

enum class TicketState : std::uint8_t { Pending, Running, Completed, Rejected, Cancelled };

/// The body of a job: everything between submit() and finish(), written
/// against the job the service constructed (plans, actions, iterations).
using JobBody = std::function<sim::Co<void>(dataflow::Job&)>;

/// One submission's handle. The service owns the underlying dataflow::Job;
/// the client awaits wait() and then reads stats().
class JobTicket {
 public:
  TicketState state() const { return state_; }
  const std::string& tenant() const { return tenant_; }
  /// Resolves on completion, rejection, or cancellation.
  sim::Co<void> wait() { co_await done_->wait(); }
  dataflow::Job& job() { return *job_; }
  const dataflow::JobStats& stats() const { return job_->stats(); }

  sim::Time enqueued_at = 0;
  sim::Time dispatched_at = 0;
  sim::Time completed_at = 0;

 private:
  friend class JobService;
  TicketState state_ = TicketState::Pending;
  std::string tenant_;
  double cost = 1.0;
  std::unique_ptr<dataflow::Job> job_;
  JobBody body_;
  std::shared_ptr<sim::Trigger> done_;
};

using TicketPtr = std::shared_ptr<JobTicket>;

class JobService {
 public:
  /// `runtime` (nullable) receives the tenant -> quota/priority fan-out; a
  /// CPU-only service (tests) may pass nullptr.
  JobService(dataflow::Engine& engine, core::GFlinkRuntime* runtime, ServiceConfig config);

  /// Register a tenant before its first submission.
  void add_tenant(const TenantConfig& config);

  /// Submit one job on behalf of `tenant`. `cost` is the job's declared
  /// dispatch cost in deficit units (relative job size; 1.0 = typical).
  /// Returns a ticket that is already Rejected when the pending queue is
  /// full. Never blocks.
  TicketPtr submit(const std::string& tenant, std::string job_name, double cost, JobBody body);

  /// Withdraw a still-pending submission. True when the job was cancelled
  /// before dispatch; false when it already ran (or terminated).
  bool cancel(const TicketPtr& ticket);

  /// Await every submission ever made (completed, rejected, or cancelled).
  sim::Co<void> drain();

  std::size_t pending() const { return pending_count_; }
  /// Depth of one tenant's admission queue (0 for unknown tenants) — the
  /// live telemetry plane samples this each period.
  std::size_t tenant_pending(const std::string& name) const;
  /// Registered tenant names in deterministic DRR order (telemetry wiring).
  std::vector<std::string> tenant_names() const;
  int in_flight() const { return total_in_flight_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t cancelled() const { return cancelled_; }

  struct Percentiles {
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };
  struct TenantSnapshot {
    std::string name;
    double weight = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t cancelled = 0;
    Percentiles queue_wait_ns;
    Percentiles run_ns;
    Percentiles latency_ns;  // enqueue -> completion (queue wait + run)
    /// Cumulative GPU cache bytes this tenant inserted (0 without runtime).
    std::uint64_t cache_inserted_bytes = 0;
  };
  std::vector<TenantSnapshot> snapshot() const;

  /// The per-tenant fairness section of the v3 run report: per tenant the
  /// weight, configured vs. achieved shares (throughput and GPU cache), and
  /// the latency percentiles split into queue wait and run.
  obs::Json fairness_json() const;

  /// Called on every job completion with the tenant and the end-to-end
  /// latency (enqueue -> completion). The telemetry aggregator's SLO
  /// burn-rate detector feeds on this; it runs synchronously on the
  /// simulation thread, so keep it cheap.
  using CompletionObserver = std::function<void(const std::string& tenant, sim::Duration latency)>;
  void set_completion_observer(CompletionObserver observer) { observer_ = std::move(observer); }

 private:
  struct Tenant {
    TenantConfig config;
    std::deque<TicketPtr> queue;  // FIFO within the tenant
    double deficit = 0.0;
    int in_flight = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t cancelled = 0;
    // Exact per-job samples (ns) for the report's percentiles; the
    // registry histograms carry the bucketed export.
    std::vector<double> queue_wait_samples;
    std::vector<double> run_samples;
    std::vector<double> latency_samples;
  };

  Tenant& tenant_of(const std::string& name);

  /// The weighted-fair dispatcher (deficit round-robin). Synchronous:
  /// dispatches every job the policy allows right now, then returns.
  /// Re-run on every submission and every completion.
  void pump();

  bool at_total_cap() const;
  bool serviceable(const Tenant& t) const;

  void dispatch(Tenant& t, const TicketPtr& ticket);
  sim::Co<void> run_job(Tenant& t, TicketPtr ticket);

  /// Span lane a tenant's service spans render on ("service/<tenant>").
  std::string tenant_lane(const Tenant& t) const { return "service/" + t.config.name; }

  dataflow::Engine* engine_;
  core::GFlinkRuntime* runtime_;
  ServiceConfig config_;
  std::vector<std::unique_ptr<Tenant>> tenants_;  // deterministic DRR order
  std::unordered_map<std::string, std::size_t> tenant_index_;
  std::vector<TicketPtr> all_;  // every submission, for drain()
  std::size_t pending_count_ = 0;
  int total_in_flight_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t cancelled_ = 0;
  CompletionObserver observer_;
  bool pumping_ = false;
  // DRR cursor: the tenant currently being served, and whether it already
  // received this visit's credit (persists across pump() calls — see pump).
  std::size_t cursor_ = 0;
  bool accrued_current_ = false;
};

}  // namespace gflink::service
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
