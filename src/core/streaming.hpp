// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// Event-level stream processing — the paper's declared future direction
// (§1.1: Flink was chosen over Spark because it treats batch as a special
// case of streaming, and the authors planned a streaming GFlink).
//
// This module implements that extension: unbounded-style sources emit
// individual events at a configurable rate into per-partition operator
// pipelines connected by bounded channels (bounded queues give Flink-style
// back-pressure: a slow operator stalls the source instead of dropping).
// Operators are:
//   * Map        — per-event CPU processing (the iterator model, charged
//                  per event);
//   * GpuBatch   — GFlink-style micro-batching: buffer B events, submit
//                  one GWork through the worker's GStreamManager, emit the
//                  results. Trades per-event latency for throughput —
//                  exactly the batching/latency tension the paper's
//                  streaming discussion is about;
//   * WindowSum  — tumbling count-window aggregation by key.
// The sink measures per-event latency (emission to completion) and
// end-to-end throughput.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/gpu_manager.hpp"
#include "dataflow/engine.hpp"
#include "sim/stats.hpp"

namespace gflink::core {

using dataflow::CombineFn;
using dataflow::Engine;
using dataflow::Job;
using dataflow::KeyFn;
using dataflow::OpCost;
using dataflow::RecordFn;

struct StreamOp {
  enum class Kind : std::uint8_t { Map, GpuBatch, WindowSum };
  Kind kind = Kind::Map;
  std::string name;
  const mem::StructDesc* out_desc = nullptr;

  // Map: applied per event.
  RecordFn map_fn;
  OpCost cost;

  // GpuBatch: kernel over micro-batches of `batch_size` events. The kernel
  // sees buffers [in, out] with equal record counts.
  std::string kernel;
  std::size_t batch_size = 256;
  mem::Layout layout = mem::Layout::SoA;

  // WindowSum: per `window` consecutive events of a key, emit one record
  // combined with `combine_fn` (record type unchanged).
  KeyFn key_fn;
  CombineFn combine_fn;
  std::size_t window = 1024;
};

struct StreamingConfig {
  /// Aggregate source rate over all partitions (events/second of virtual
  /// time).
  double events_per_second = 1e6;
  /// Bounded experiment length.
  std::uint64_t total_events = 100'000;
  /// Pipeline instances (one per worker round-robin). 0 = one per worker.
  int parallelism = 0;
  /// Channel depth between operators (back-pressure bound).
  std::size_t queue_capacity = 1024;
};

struct StreamingResult {
  std::uint64_t events_in = 0;
  std::uint64_t events_out = 0;
  sim::Duration makespan = 0;
  double throughput_eps = 0.0;  // events_out / makespan
  sim::Summary latency;         // ns, per sink event
  double latency_p50 = 0.0;     // ns
  double latency_p99 = 0.0;     // ns
  std::uint64_t gpu_batches = 0;
};

/// Generate the i-th event's record bytes (out_desc-stride long) into
/// `record`.
using EventGenerator = std::function<void(std::uint64_t index, std::byte* record)>;

/// Run a bounded streaming job: `events` flow through `ops` on
/// `config.parallelism` pipeline instances. Requires a submitted job.
sim::Co<StreamingResult> run_streaming(Engine& engine, Job& job,
                                       const mem::StructDesc* in_desc,
                                       EventGenerator generate, std::vector<StreamOp> ops,
                                       const StreamingConfig& config);

}  // namespace gflink::core
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
