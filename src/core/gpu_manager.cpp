#include "core/gpu_manager.hpp"

namespace gflink::core {

GpuManager::GpuManager(sim::Simulation& sim, int node_id, const GpuManagerConfig& config,
                       sim::Tracer* tracer, obs::MetricsRegistry* registry,
                       obs::SpanStore* spans, obs::FlightRecorder* flight)
    : node_id_(node_id) {
  GFLINK_CHECK_MSG(!config.devices.empty(), "worker needs at least one GPU");
  std::vector<gpu::GpuDevice*> raw_devices;
  std::vector<gpu::CudaWrapper*> raw_wrappers;
  for (std::size_t i = 0; i < config.devices.size(); ++i) {
    auto id = "node" + std::to_string(node_id) + ".gpu" + std::to_string(i);
    devices_.push_back(std::make_unique<gpu::GpuDevice>(sim, id, config.devices[i], tracer));
    stubs_.push_back(std::make_unique<gpu::CudaStub>(*devices_.back(), config.stub_overheads));
    wrappers_.push_back(
        std::make_unique<gpu::CudaWrapper>(*stubs_.back(), config.jni_overhead));
    raw_devices.push_back(devices_.back().get());
    raw_wrappers.push_back(wrappers_.back().get());
  }
  memory_ = std::make_unique<GMemoryManager>(std::move(raw_devices), config.cache_region_bytes,
                                             config.cache_policy);
  memory_->attach_flight(flight, node_id, &sim);
  streams_ = std::make_unique<GStreamManager>(sim, std::move(raw_wrappers), *memory_,
                                              config.streams, registry, spans, node_id);
}

void GpuManager::export_metrics(obs::MetricsRegistry& out) const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const gpu::GpuDevice& dev = *devices_[i];
    const obs::Labels l{{"gpu", dev.id()}};
    out.counter("gpu_kernels_total", l).inc(static_cast<double>(dev.kernels_launched()));
    out.counter("gpu_kernel_busy_ns_total", l).inc(static_cast<double>(dev.kernel_busy()));
    out.counter("gpu_h2d_busy_ns_total", l).inc(static_cast<double>(dev.h2d_busy()));
    out.counter("gpu_d2h_busy_ns_total", l).inc(static_cast<double>(dev.d2h_busy()));
    out.counter("gpu_bytes_h2d_total", l).inc(static_cast<double>(dev.bytes_h2d()));
    out.counter("gpu_bytes_d2h_total", l).inc(static_cast<double>(dev.bytes_d2h()));
    out.counter("gpu_copy_compute_overlap_ns_total", l)
        .inc(static_cast<double>(dev.copy_compute_overlap()));
    out.gauge("gpu_copy_compute_overlap_efficiency", l).set(dev.overlap_efficiency());
    out.gauge("gpu_cache_region_used_bytes", l)
        .set(static_cast<double>(memory_->region_used(static_cast<int>(i))));
    out.gauge("gpu_staging_ring_bytes", l)
        .set(static_cast<double>(memory_->staging_bytes(static_cast<int>(i))));
  }
  out.counter("gpu_cache_hits_total").inc(static_cast<double>(memory_->hits()));
  out.counter("gpu_cache_misses_total").inc(static_cast<double>(memory_->misses()));
  out.counter("gpu_cache_evictions_total").inc(static_cast<double>(memory_->evictions()));
  out.counter("gpu_cache_cross_tenant_evictions_total")
      .inc(static_cast<double>(memory_->cross_tenant_evictions()));
  out.counter("gpu_cache_pins_total").inc(static_cast<double>(memory_->pins()));
  out.counter("gpu_staging_reservations_total")
      .inc(static_cast<double>(memory_->staging_reservations()));
  out.counter("gpu_staging_failures_total").inc(static_cast<double>(memory_->staging_failures()));
  streams_->export_metrics(out);
}

GFlinkRuntime::GFlinkRuntime(dataflow::Engine& engine, const GpuManagerConfig& config) {
  for (int w = 1; w <= engine.num_workers(); ++w) {
    managers_.push_back(std::make_unique<GpuManager>(engine.sim(), w, config,
                                                     &engine.cluster().tracer(),
                                                     &engine.cluster().metrics(),
                                                     &engine.cluster().spans(),
                                                     &engine.cluster().flight()));
    engine.set_extension(w, managers_.back().get());
  }
}

std::uint64_t GFlinkRuntime::total_cache_hits() const {
  std::uint64_t n = 0;
  for (const auto& m : managers_) n += m->memory().hits();
  return n;
}

std::uint64_t GFlinkRuntime::total_cache_misses() const {
  std::uint64_t n = 0;
  for (const auto& m : managers_) n += m->memory().misses();
  return n;
}

std::uint64_t GFlinkRuntime::total_kernels() const {
  std::uint64_t n = 0;
  for (const auto& m : managers_) {
    for (int d = 0; d < m->num_devices(); ++d) {
      n += const_cast<GpuManager&>(*m).device(d).kernels_launched();
    }
  }
  return n;
}

std::uint64_t GFlinkRuntime::total_bytes_h2d() const {
  std::uint64_t n = 0;
  for (const auto& m : managers_) {
    for (int d = 0; d < m->num_devices(); ++d) {
      n += const_cast<GpuManager&>(*m).device(d).bytes_h2d();
    }
  }
  return n;
}

}  // namespace gflink::core
