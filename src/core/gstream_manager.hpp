// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// GStreamManager: GFlink's producer-consumer execution engine for GPUs
// (paper §5, Fig. 4).
//
// Components, matching the paper:
//  * GWork Scheduler — Algorithm 5.1 (locality-aware scheduling): route a
//    submitted GWork to an idle stream of the GPU holding its cached
//    inputs; else to the bulk with the most idle streams; else enqueue it
//    in the GWork Pool (locality queue, or the shortest queue).
//  * GWork Pool — one FIFO queue per GPU.
//  * GStream Pool — stream workers grouped into per-GPU "bulks". Each
//    stream is driven by a coroutine (the paper's per-stream thread) that
//    executes the three-stage pipeline H2D -> kernel -> D2H. When a stream
//    finishes it steals more work via Algorithm 5.2 (own queue first, then
//    the longest queue); after `idle_timeout` without work the thread is
//    freed (and respawned when work arrives again).
//
// Scheduling-policy ablations (DESIGN.md): LocalityAware (the paper),
// RoundRobin and Random baselines.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/gmemory_manager.hpp"
#include "core/gwork.hpp"
#include "gpu/api.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace gflink::core {

enum class SchedulingPolicy : std::uint8_t { LocalityAware, RoundRobin, Random };

struct GStreamConfig {
  int streams_per_gpu = 4;
  sim::Duration idle_timeout = sim::millis(20);
  SchedulingPolicy policy = SchedulingPolicy::LocalityAware;

  // ---- Intra-GWork chunked transfer/compute pipeline ----
  /// Split chunkable GWorks into element-aligned chunks of roughly this
  /// many bytes and pipeline H2D(i+1) ‖ kernel(i) ‖ D2H(i-1) through a
  /// device staging ring. 0 disables chunking (monolithic three-stage
  /// execution for every GWork).
  std::uint64_t chunk_bytes = 1 << 20;
  /// Staging-ring depth (chunks resident on the device at once). 3 covers
  /// the classic triple-buffering: one chunk per pipeline stage.
  int staging_slots = 3;
  /// When a monolithic GWork cannot place its buffers even after cache
  /// eviction (concurrent streams hold the device), it releases everything
  /// it grabbed and retries after this backoff instead of aborting. Holding
  /// nothing while waiting keeps the scheme deadlock-free.
  sim::Duration oom_retry_backoff = sim::micros(100);
};

class GStreamManager {
 public:
  /// `registry` (optional, plumbed like the tracer) receives the hot-path
  /// distributions: queue depth at enqueue and GWork submit->done latency.
  /// `spans` (optional) records each GWork's causal spans — gwork plus
  /// per-stage H2D/kernel/D2H children, monolithic or per chunk — parented
  /// to GWork::span; `node_id` tags them with the hosting worker.
  GStreamManager(sim::Simulation& sim, std::vector<gpu::CudaWrapper*> wrappers,
                 GMemoryManager& memory, const GStreamConfig& config,
                 obs::MetricsRegistry* registry = nullptr, obs::SpanStore* spans = nullptr,
                 int node_id = -1);

  /// Submit one GWork (Algorithm 5.1). Creates work->done, routes the work,
  /// and returns immediately; await work->done->wait() for completion.
  void submit(const GWorkPtr& work);

  /// Submit and await completion (the common producer pattern).
  sim::Co<void> run(const GWorkPtr& work) {
    submit(work);
    co_await work->done->wait();
  }

  int num_gpus() const { return static_cast<int>(wrappers_.size()); }
  int streams_per_gpu() const { return config_.streams_per_gpu; }

  /// Per-tenant GWork priority (JobService multi-tenancy): queued GWork of
  /// a higher-priority tenant pops before lower-priority work, FIFO within
  /// one priority. Applied at submit time to work whose GWork::tenant
  /// matches; 0 (the default) keeps plain FIFO.
  void set_tenant_priority(const std::string& tenant, int priority) {
    tenant_priority_[tenant] = priority;
  }
  int tenant_priority(const std::string& tenant) const {
    auto it = tenant_priority_.find(tenant);
    return it == tenant_priority_.end() ? 0 : it->second;
  }

  // Statistics for load-balance and stealing tests. All counters are
  // relaxed atomics: independent monotonic totals bumped from concurrent
  // stream coroutines, read by exporters without the scheduler involved.
  std::uint64_t executed_on(int gpu) const {
    return executed_.at(static_cast<std::size_t>(gpu)).load(std::memory_order_relaxed);
  }
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }
  /// Times a queued GWork popped ahead of the queue front because its
  /// tenant priority was higher (FIFO order bypassed).
  std::uint64_t priority_bypasses() const {
    return priority_bypasses_.load(std::memory_order_relaxed);
  }
  std::uint64_t cross_bulk_assignments() const {
    return cross_bulk_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_streams() const { return freed_count_.load(std::memory_order_relaxed); }
  std::size_t queue_depth(int gpu) const {
    return pool_.at(static_cast<std::size_t>(gpu)).size();
  }
  /// GWork whose cached-input-preferred device (Algorithm 5.1's probe at
  /// submit time) matched / missed the device it actually executed on.
  /// Work with nothing cached anywhere counts as neither.
  std::uint64_t locality_hits() const { return locality_hits_.load(std::memory_order_relaxed); }
  std::uint64_t locality_misses() const {
    return locality_misses_.load(std::memory_order_relaxed);
  }
  /// GWork executed through the chunked pipeline / total chunks issued /
  /// chunk-eligible GWork that fell back to monolithic execution because
  /// the staging ring could not be reserved.
  std::uint64_t chunked_works() const { return chunked_works_.load(std::memory_order_relaxed); }
  std::uint64_t chunks_total() const { return chunks_total_.load(std::memory_order_relaxed); }
  std::uint64_t chunk_fallbacks() const {
    return chunk_fallbacks_.load(std::memory_order_relaxed);
  }
  /// Times a monolithic placement released its buffers and backed off
  /// because concurrent streams held the device (see oom_retry_backoff).
  std::uint64_t oom_retries() const { return oom_retries_.load(std::memory_order_relaxed); }
  // Per-stage elapsed time of the three-stage pipeline, summed over streams.
  sim::Duration stage_h2d_busy() const { return stage_h2d_ns_.load(std::memory_order_relaxed); }
  sim::Duration stage_kernel_busy() const {
    return stage_kernel_ns_.load(std::memory_order_relaxed);
  }
  sim::Duration stage_d2h_busy() const { return stage_d2h_ns_.load(std::memory_order_relaxed); }

  /// Publish scheduler counters (executions per GPU, steals, locality
  /// hits/misses, per-stage busy time) into `out`.
  void export_metrics(obs::MetricsRegistry& out) const;

 private:
  struct StreamWorker {
    int gpu = 0;
    int stream_id = 0;
    bool idle = false;
    bool freed = true;  // not yet started
    std::uint64_t idle_generation = 0;
    std::unique_ptr<sim::Channel<GWorkPtr>> inbox;
  };

  /// Algorithm 5.1's stream selection (given the locality-preferred GPU).
  StreamWorker* select_stream(int preferred_gpu);
  StreamWorker* idle_stream_in_bulk(int gpu);
  int bulk_with_most_idle() const;
  int shortest_queue() const;

  /// Algorithm 5.2: steal from own queue, else from the longest one.
  GWorkPtr steal(int gpu);

  /// Pop the highest-priority GWork from `q` (FIFO within one priority;
  /// plain FIFO when all priorities are equal).
  GWorkPtr pop_best(std::deque<GWorkPtr>& q);

  /// Stream thread body: execute, steal, park with timeout, free.
  sim::Co<void> worker_loop(StreamWorker* w);
  void ensure_alive(int gpu);

  /// The three-stage pipeline for one GWork on one stream.
  sim::Co<void> execute(StreamWorker* w, const GWorkPtr& work);

  /// Chunk geometry for the intra-GWork pipeline, derived up front so the
  /// staging ring can be sized before any transfer or cache interaction.
  struct ChunkPlan {
    std::size_t items_per_chunk = 0;
    std::size_t num_chunks = 0;
    /// Per-item bytes of the ring-resident buffers: every splittable output
    /// plus every *uncached* splittable input (cached inputs live in the
    /// cache region, indivisible buffers in full-size allocations).
    std::uint64_t ring_item_bytes = 0;
  };

  /// True (and `plan` filled) when `work` is eligible for chunked
  /// execution under the current configuration.
  bool chunk_plan(const GWork& work, ChunkPlan& plan) const;

  /// Chunked execution: H2D(chunk i+1) ‖ kernel(chunk i) ‖ D2H(chunk i-1)
  /// through a device staging ring. Returns false (having changed nothing)
  /// when the ring cannot be reserved; the caller falls back to execute()'s
  /// monolithic path. `gspan` is the enclosing gwork causal span.
  sim::Co<bool> execute_chunked(StreamWorker* w, const GWorkPtr& work, const ChunkPlan& plan,
                                obs::SpanId gspan);

  /// Lane causal spans of GPU `gpu` render on ("node3/gpu1").
  std::string gpu_lane(int gpu) const;

  /// Completion bookkeeping shared by the mapped and pipelined paths.
  void finish(const GWorkPtr& work, int gpu_index);

  sim::Simulation* sim_;
  std::vector<gpu::CudaWrapper*> wrappers_;
  GMemoryManager* memory_;
  GStreamConfig config_;
  obs::SpanStore* spans_ = nullptr;  // simulation-plane, like the scheduler state
  int node_id_ = -1;
  sim::Rng rng_{0xC0FFEE};
  int round_robin_cursor_ = 0;

  // Scheduler structure (queues, bulks, worker state) is simulation-plane:
  // mutated only between suspension points of the single simulation thread,
  // so it carries no lock (docs/ARCHITECTURE.md, "Concurrency invariants").
  std::vector<std::deque<GWorkPtr>> pool_;  // GWork Pool: FIFO per GPU
  std::vector<std::vector<std::unique_ptr<StreamWorker>>> bulks_;
  // Tenant priority table (JobService): simulation-plane like the queues.
  std::unordered_map<std::string, int> tenant_priority_;

  std::vector<std::atomic<std::uint64_t>> executed_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> priority_bypasses_{0};
  std::atomic<std::uint64_t> cross_bulk_{0};
  std::atomic<std::uint64_t> freed_count_{0};
  std::atomic<std::uint64_t> locality_hits_{0};
  std::atomic<std::uint64_t> locality_misses_{0};
  std::atomic<std::uint64_t> chunked_works_{0};
  std::atomic<std::uint64_t> chunks_total_{0};
  std::atomic<std::uint64_t> chunk_fallbacks_{0};
  std::atomic<std::uint64_t> oom_retries_{0};
  std::atomic<sim::Duration> stage_h2d_ns_{0};
  std::atomic<sim::Duration> stage_kernel_ns_{0};
  std::atomic<sim::Duration> stage_d2h_ns_{0};

  // Hot-path distribution sinks (owned by the registry; null when no
  // registry was attached).
  sim::Histogram* queue_depth_hist_ = nullptr;
  sim::Histogram* latency_hist_ = nullptr;
};

}  // namespace gflink::core
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
