// GWork: GFlink's abstraction for one unit of GPU computation (paper
// §3.5.3 and Algorithm 3.1).
//
// A GPU-based mapper/reducer assembles a GWork — kernel name (the PTX
// function's executeName), input/output buffers, launch geometry, cache
// flags — and submits it to the worker's GStreamManager. The producer then
// awaits the `done` trigger; a stream worker consumes the GWork through the
// three-stage pipeline (H2D, kernel, D2H).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mem/buffer.hpp"
#include "mem/gstruct.hpp"
#include "sim/sync.hpp"

namespace gflink::core {

/// One host buffer bound to a GWork. Cached inputs participate in the GPU
/// cache scheme: on a hit the H2D transfer (and allocation) is skipped.
struct GBuffer {
  mem::HBufferPtr host;
  std::uint64_t bytes = 0;
  bool cache = false;
  /// Cache key: by default the (partition id, block id) pair, packed.
  std::uint64_t cache_key = 0;
  /// Whether this buffer's cached bytes count for Algorithm 5.1's locality
  /// probe. Data blocks do; broadcast/auxiliary buffers (replicated on
  /// every device anyway) do not — they would otherwise glue all work to
  /// whichever device cached them first.
  bool counts_for_locality = true;
  /// Bytes this buffer contributes per kernel item. Non-zero marks the
  /// buffer splittable: item i occupies [i*item_stride, (i+1)*item_stride),
  /// so the chunked pipeline can transfer it in element-aligned chunks
  /// (records are never split). 0 = indivisible (broadcast/aux buffers,
  /// block-level reducer outputs): transferred whole, before the first
  /// chunk kernel.
  std::uint64_t item_stride = 0;
};

/// Pack the paper's default cache key: partition ID + block ID (plus a
/// namespace so different datasets of one job do not collide).
constexpr std::uint64_t make_cache_key(std::uint32_t name_space, std::uint32_t partition,
                                       std::uint32_t block) {
  return (static_cast<std::uint64_t>(name_space) << 48) |
         (static_cast<std::uint64_t>(partition) << 24) | block;
}

struct GWork {
  std::string execute_name;  // CUDA function name looked up in the registry
  std::string ptx_path;      // carried for fidelity with the paper's API

  std::vector<GBuffer> inputs;
  std::vector<GBuffer> outputs;

  std::size_t size = 0;  // number of items the kernel covers
  int block_size = 256;
  int grid_size = 0;  // 0 = derived from size/block_size

  std::uint64_t job_id = 0;  // scopes the GPU cache region
  /// Tenant that owns the producing job (empty = the default tenant).
  /// Drives the per-tenant GWork priority in the GStream Pool and the
  /// per-tenant cache-quota accounting in GMemoryManager.
  std::string tenant;
  /// Dispatch priority within the GWork Pool (higher pops first, FIFO
  /// within one priority). Filled by the scheduler from the tenant's
  /// configured priority at submit time; 0 = default.
  int priority = 0;
  mem::Layout layout = mem::Layout::SoA;

  /// Execute over device-mapped host memory (paper §4.1.2): no explicit
  /// H2D/D2H transfers and no copy-engine use; the kernel streams the host
  /// buffers over PCIe. Useful on single-copy-engine boards. Mutually
  /// exclusive with input caching.
  bool use_mapped_memory = false;

  /// The kernel is element-wise: output items for chunk [a, b) depend only
  /// on input items [a, b) (plus indivisible aux buffers, which may be
  /// indexed absolutely). Such GWorks are eligible for the intra-GWork
  /// chunked pipeline: H2D(chunk i+1) ‖ kernel(chunk i) ‖ D2H(chunk i-1)
  /// through the device staging ring. Block-level reducers (KMeans partial
  /// sums, gradients, per-block combines) must leave this false — their
  /// output depends on the whole block.
  bool chunkable = false;
  /// Per-GWork chunk size override; 0 = GStreamConfig::chunk_bytes.
  std::uint64_t chunk_bytes = 0;

  /// Causal parent for the GWork's spans (usually the producing task's
  /// span; 0 = untraced). Plain id, not a pointer: the span may close
  /// before detached pipeline stages retire.
  std::uint64_t span = 0;

  /// Small by-value kernel argument block (kept alive by shared ownership).
  std::shared_ptr<void> params;

  /// Fired by the stream worker once outputs are back in host memory.
  std::shared_ptr<sim::Trigger> done;

  // ---- filled in by the runtime (diagnostics) ----
  sim::Time submitted_at = 0;
  sim::Time finished_at = 0;
  int executed_on_gpu = -1;
  int executed_on_stream = -1;
  bool was_stolen = false;
  /// Chunks the pipeline split this GWork into (1 = monolithic execution).
  std::size_t executed_chunks = 1;
  /// Device Algorithm 5.1's locality probe preferred at submit time (-1
  /// when nothing was cached anywhere); compared against executed_on_gpu
  /// for the scheduler's locality hit/miss metric.
  int preferred_gpu = -1;

  std::uint64_t input_bytes() const {
    std::uint64_t n = 0;
    for (const auto& b : inputs) n += b.bytes;
    return n;
  }
  std::uint64_t output_bytes() const {
    std::uint64_t n = 0;
    for (const auto& b : outputs) n += b.bytes;
    return n;
  }
};

using GWorkPtr = std::shared_ptr<GWork>;

}  // namespace gflink::core
