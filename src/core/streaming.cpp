// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "core/streaming.hpp"

#include <algorithm>
#include <unordered_map>


namespace gflink::core {

namespace {

/// One in-flight event: its event time plus the record bytes.
struct Event {
  sim::Time emitted = 0;
  std::vector<std::byte> bytes;
};

using EventChannel = sim::Channel<Event>;

/// All state of one pipeline instance (kept alive until its sink ends).
struct Pipeline {
  int worker = 0;
  std::vector<std::unique_ptr<EventChannel>> channels;  // ops.size() + 1
  std::uint64_t events_in = 0;
  std::uint64_t events_out = 0;
  std::uint64_t gpu_batches = 0;
  std::vector<double> latencies_ns;
};

sim::Co<void> source_loop(Engine& engine, Pipeline& pl, EventGenerator generate,
                          const mem::StructDesc* desc, std::uint64_t first, std::uint64_t count,
                          std::uint64_t stride_events, sim::Duration interval,
                          sim::Time start) {
  EventChannel& out = *pl.channels.front();
  const std::size_t record_bytes = desc->stride();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t index = first + i * stride_events;
    const sim::Time target = start + static_cast<sim::Duration>(i) * interval;
    if (engine.now() < target) {
      co_await engine.sim().delay(target - engine.now());
    }
    Event ev;
    ev.emitted = target;  // event time: when the event occurred at the edge
    ev.bytes.resize(record_bytes);
    generate(index, ev.bytes.data());
    ++pl.events_in;
    co_await out.send(std::move(ev));  // bounded: back-pressure stalls here
  }
  out.close();
}

sim::Co<void> map_loop(Engine& engine, Pipeline& pl, const StreamOp& op, EventChannel& in,
                       EventChannel& out) {
  const net::Node& node = engine.cluster().node(pl.worker);
  const sim::Duration per_event = node.record_time(op.cost.flops, op.cost.bytes);
  const std::size_t out_stride = op.out_desc->stride();
  while (true) {
    auto ev = co_await in.recv();
    if (!ev) break;
    co_await engine.sim().delay(per_event);
    mem::RecordBatch scratch(op.out_desc);
    dataflow::Emitter emitter(scratch);
    op.map_fn(ev->bytes.data(), emitter);
    for (std::size_t r = 0; r < scratch.count(); ++r) {
      Event next;
      next.emitted = ev->emitted;
      next.bytes.assign(scratch.record_ptr(r), scratch.record_ptr(r) + out_stride);
      co_await out.send(std::move(next));
    }
  }
  out.close();
}

/// Flush the accumulated batch through one GWork. A named coroutine (not a
/// capturing lambda, gflint C1): it is awaited in the caller's scope, and
/// every reference parameter outlives the await.
sim::Co<void> flush_gpu_batch(Job& job, Pipeline& pl, const StreamOp& op,
                              mem::MemoryManager& memory, GpuManager& manager,
                              EventChannel& out, std::vector<Event>& batch,
                              std::size_t stride) {
  if (batch.empty()) co_return;
  const std::size_t n = batch.size();
  auto in_buf = memory.allocate_unbudgeted(n * stride);  // pinned off-heap
  for (std::size_t i = 0; i < n; ++i) {
    in_buf->write(i * stride, batch[i].bytes.data(), stride);
  }
  auto out_buf = memory.allocate_unbudgeted(n * stride);

  auto work = std::make_shared<GWork>();
  work->execute_name = op.kernel;
  work->layout = op.layout;
  work->size = n;
  work->job_id = job.id();
  work->span = job.span();
  GBuffer ib;
  ib.host = in_buf;
  ib.bytes = n * stride;
  work->inputs.push_back(ib);
  GBuffer ob;
  ob.host = out_buf;
  ob.bytes = n * stride;
  work->outputs.push_back(ob);
  co_await manager.run(work);
  ++pl.gpu_batches;

  for (std::size_t i = 0; i < n; ++i) {
    Event next;
    next.emitted = batch[i].emitted;
    next.bytes.assign(out_buf->data() + i * stride, out_buf->data() + (i + 1) * stride);
    co_await out.send(std::move(next));
  }
  batch.clear();
}

sim::Co<void> gpu_batch_loop(Engine& engine, Job& job, Pipeline& pl, const StreamOp& op,
                             EventChannel& in, EventChannel& out) {
  auto* manager = static_cast<GpuManager*>(engine.worker_state(pl.worker).extension());
  GFLINK_CHECK_MSG(manager != nullptr, "GpuBatch operator needs a GFlinkRuntime on the worker");
  const std::size_t stride = op.out_desc->stride();
  mem::MemoryManager& memory = engine.worker_state(pl.worker).memory();

  std::vector<Event> batch;
  batch.reserve(op.batch_size);

  while (true) {
    auto ev = co_await in.recv();
    if (!ev) break;
    batch.push_back(std::move(*ev));
    if (batch.size() >= op.batch_size) {
      co_await flush_gpu_batch(job, pl, op, memory, *manager, out, batch, stride);
    }
  }
  // Partial tail batch at end of stream.
  co_await flush_gpu_batch(job, pl, op, memory, *manager, out, batch, stride);
  out.close();
}

/// One keyed window's accumulator.
struct WindowState {
  std::vector<std::byte> accumulator;
  std::size_t count = 0;
  sim::Time last_emitted = 0;
};

/// Emit one full (or end-of-stream partial) window downstream. Named
/// coroutine instead of a capturing lambda (gflint C1); awaited in-scope.
sim::Co<void> emit_window(EventChannel& out, WindowState& w) {
  Event next;
  next.emitted = w.last_emitted;
  next.bytes = w.accumulator;
  w.count = 0;
  co_await out.send(std::move(next));
}

sim::Co<void> window_loop(Engine& engine, Pipeline& pl, const StreamOp& op, EventChannel& in,
                          EventChannel& out) {
  const net::Node& node = engine.cluster().node(pl.worker);
  const sim::Duration per_event = node.record_time(op.cost.flops, op.cost.bytes);
  const std::size_t stride = op.out_desc->stride();
  std::unordered_map<std::uint64_t, WindowState> windows;

  while (true) {
    auto ev = co_await in.recv();
    if (!ev) break;
    co_await engine.sim().delay(per_event);
    const std::uint64_t key = op.key_fn(ev->bytes.data());
    WindowState& w = windows[key];
    if (w.count == 0) {
      w.accumulator.assign(ev->bytes.begin(), ev->bytes.end());
      w.count = 1;
    } else {
      op.combine_fn(w.accumulator.data(), ev->bytes.data());
      ++w.count;
    }
    w.last_emitted = ev->emitted;
    if (w.count >= op.window) {
      co_await emit_window(out, w);
    }
  }
  // End of stream: flush partial windows.
  for (auto& [key, w] : windows) {
    if (w.count > 0) co_await emit_window(out, w);
  }
  (void)stride;
  out.close();
}

sim::Co<void> sink_loop(Engine& engine, Pipeline& pl, EventChannel& in) {
  while (true) {
    auto ev = co_await in.recv();
    if (!ev) break;
    ++pl.events_out;
    pl.latencies_ns.push_back(static_cast<double>(engine.now() - ev->emitted));
  }
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

sim::Co<StreamingResult> run_streaming(Engine& engine, Job& job, const mem::StructDesc* in_desc,
                                       EventGenerator generate, std::vector<StreamOp> ops,
                                       const StreamingConfig& config) {
  GFLINK_CHECK_MSG(job.submitted(), "streaming job not submitted");
  GFLINK_CHECK(config.events_per_second > 0);
  const int parallelism = config.parallelism > 0 ? config.parallelism : engine.num_workers();
  const auto interval = static_cast<sim::Duration>(
      1e9 * static_cast<double>(parallelism) / config.events_per_second);

  const sim::Time start = engine.now();
  std::vector<std::unique_ptr<Pipeline>> pipelines;
  sim::WaitGroup done(engine.sim());

  for (int p = 0; p < parallelism; ++p) {
    auto pl = std::make_unique<Pipeline>();
    pl->worker = 1 + p % engine.num_workers();
    for (std::size_t c = 0; c <= ops.size(); ++c) {
      pl->channels.push_back(
          std::make_unique<EventChannel>(engine.sim(), config.queue_capacity));
    }
    // Per-partition share of the event stream (strided global indices so
    // the multiset is independent of parallelism).
    const std::uint64_t count =
        config.total_events / static_cast<std::uint64_t>(parallelism) +
        (static_cast<std::uint64_t>(p) <
                 config.total_events % static_cast<std::uint64_t>(parallelism)
             ? 1
             : 0);

    engine.sim().spawn(source_loop(engine, *pl, generate, in_desc,
                                   static_cast<std::uint64_t>(p), count,
                                   static_cast<std::uint64_t>(parallelism), interval, start));
    for (std::size_t o = 0; o < ops.size(); ++o) {
      EventChannel& in = *pl->channels[o];
      EventChannel& out = *pl->channels[o + 1];
      switch (ops[o].kind) {
        case StreamOp::Kind::Map:
          engine.sim().spawn(map_loop(engine, *pl, ops[o], in, out));
          break;
        case StreamOp::Kind::GpuBatch:
          engine.sim().spawn(gpu_batch_loop(engine, job, *pl, ops[o], in, out));
          break;
        case StreamOp::Kind::WindowSum:
          engine.sim().spawn(window_loop(engine, *pl, ops[o], in, out));
          break;
      }
    }
    done.add();
    engine.sim().spawn([](Engine& eng, Pipeline& pipe, sim::WaitGroup& join) -> sim::Co<void> {
      co_await sink_loop(eng, pipe, *pipe.channels.back());
      join.done();
    }(engine, *pl, done));
    pipelines.push_back(std::move(pl));
  }
  co_await done.wait();

  StreamingResult result;
  std::vector<double> all_latencies;
  for (const auto& pl : pipelines) {
    result.events_in += pl->events_in;
    result.events_out += pl->events_out;
    result.gpu_batches += pl->gpu_batches;
    for (double l : pl->latencies_ns) {
      result.latency.add(l);
      all_latencies.push_back(l);
    }
  }
  result.makespan = engine.now() - start;
  result.throughput_eps = result.makespan > 0
                              ? static_cast<double>(result.events_out) /
                                    sim::to_seconds(result.makespan)
                              : 0.0;
  std::sort(all_latencies.begin(), all_latencies.end());
  result.latency_p50 = percentile(all_latencies, 0.50);
  result.latency_p99 = percentile(all_latencies, 0.99);
  co_return result;
}

}  // namespace gflink::core
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
