#include "core/gmemory_manager.hpp"

#include <algorithm>

namespace gflink::core {

GMemoryManager::Region* GMemoryManager::find_region(int device, std::uint64_t job) {
  auto& jobs = regions_.at(static_cast<std::size_t>(device));
  auto it = jobs.find(job);
  return it == jobs.end() ? nullptr : &it->second;
}

const GMemoryManager::Region* GMemoryManager::find_region(int device, std::uint64_t job) const {
  const auto& jobs = regions_.at(static_cast<std::size_t>(device));
  auto it = jobs.find(job);
  return it == jobs.end() ? nullptr : &it->second;
}

std::optional<GMemoryManager::CacheEntry> GMemoryManager::lookup(int device, std::uint64_t job,
                                                                 std::uint64_t key) const {
  core::MutexLock lock(mu_);
  const Region* r = find_region(device, job);
  if (r == nullptr) return std::nullopt;
  auto it = r->table.find(key);
  if (it == r->table.end()) return std::nullopt;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

std::optional<GMemoryManager::CacheEntry> GMemoryManager::lookup_pinned(int device,
                                                                        std::uint64_t job,
                                                                        std::uint64_t key) {
  core::MutexLock lock(mu_);
  Region* r = find_region(device, job);
  if (r == nullptr) return std::nullopt;
  auto it = r->table.find(key);
  if (it == r->table.end()) return std::nullopt;
  hits_.fetch_add(1, std::memory_order_relaxed);
  ++it->second.pins;
  pins_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

std::optional<GMemoryManager::CacheEntry> GMemoryManager::insert(int device, std::uint64_t job,
                                                                 std::uint64_t key,
                                                                 std::uint64_t bytes) {
  core::MutexLock lock(mu_);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (bytes > region_capacity_) return std::nullopt;  // can never fit
  auto& jobs = regions_.at(static_cast<std::size_t>(device));
  Region& r = jobs[job];  // region lazily "reserved" on first touch
  gpu::GpuDevice& dev = *devices_.at(static_cast<std::size_t>(device));

  // Replacing an existing (e.g. undersized) entry: drop the old one first.
  if (auto old = r.table.find(key); old != r.table.end()) {
    if (old->second.pins > 0) return std::nullopt;  // in use; do not thrash
    dev.memory().free(old->second.entry.ptr);
    r.used -= old->second.entry.bytes;
    r.table.erase(old);
    std::erase(r.fifo, key);
  }

  if (r.used + bytes > region_capacity_) {
    if (policy_ == CachePolicy::NoEvict) return std::nullopt;
    // FIFO policy (paper §4.2.2, Fig. 3): walk the FIFO list from the
    // oldest entry, collecting unpinned victims until the new object fits.
    std::uint64_t reclaimable = 0;
    std::vector<std::uint64_t> victims;
    for (std::uint64_t candidate : r.fifo) {
      if (r.used - reclaimable + bytes <= region_capacity_) break;
      auto it = r.table.find(candidate);
      GFLINK_CHECK(it != r.table.end());
      if (it->second.pins > 0) continue;  // in-flight: skip
      reclaimable += it->second.entry.bytes;
      victims.push_back(candidate);
    }
    if (r.used - reclaimable + bytes > region_capacity_) return std::nullopt;
    for (std::uint64_t victim : victims) {
      auto it = r.table.find(victim);
      note_flight("cache_evict", device, it->second.entry.bytes);
      dev.memory().free(it->second.entry.ptr);
      r.used -= it->second.entry.bytes;
      r.table.erase(it);
      std::erase(r.fifo, victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const gpu::DevicePtr ptr = dev.memory().allocate(bytes);
  if (ptr == 0) return std::nullopt;  // device OOM outside the region model
  Slot slot;
  slot.entry = CacheEntry{ptr, bytes};
  slot.pins = 1;  // returned pinned for the inserting GWork
  pins_.fetch_add(1, std::memory_order_relaxed);
  r.table.emplace(key, slot);
  r.fifo.push_back(key);
  r.used += bytes;
  return slot.entry;
}

void GMemoryManager::unpin(int device, std::uint64_t job, std::uint64_t key) {
  core::MutexLock lock(mu_);
  Region* r = find_region(device, job);
  if (r == nullptr) return;  // job already released
  auto it = r->table.find(key);
  if (it == r->table.end()) return;  // entry replaced meanwhile
  GFLINK_CHECK_MSG(it->second.pins > 0, "unpin without matching pin");
  --it->second.pins;
}

bool GMemoryManager::erase(int device, std::uint64_t job, std::uint64_t key) {
  core::MutexLock lock(mu_);
  Region* r = find_region(device, job);
  if (r == nullptr) return false;
  auto it = r->table.find(key);
  if (it == r->table.end()) return false;
  GFLINK_CHECK_MSG(it->second.pins > 0, "erase without matching pin");
  --it->second.pins;
  if (it->second.pins > 0) return false;  // another stream is using it
  devices_.at(static_cast<std::size_t>(device))->memory().free(it->second.entry.ptr);
  r->used -= it->second.entry.bytes;
  r->table.erase(it);
  std::erase(r->fifo, key);
  return true;
}

bool GMemoryManager::evict_for_space(int device, std::uint64_t job, std::uint64_t bytes) {
  core::MutexLock lock(mu_);
  return evict_for_space_locked(device, job, bytes);
}

bool GMemoryManager::evict_for_space_locked(int device, std::uint64_t job, std::uint64_t bytes) {
  // Contiguity-aware: free_bytes() can exceed `bytes` while no single hole
  // fits (the fragmented-heap case); keep evicting until a hole does.
  gpu::GpuDevice& dev = *devices_.at(static_cast<std::size_t>(device));
  Region* r = find_region(device, job);
  if (r == nullptr) return dev.memory().can_allocate(bytes);
  while (!dev.memory().can_allocate(bytes)) {
    // Find the oldest unpinned entry.
    auto victim = r->fifo.end();
    for (auto it = r->fifo.begin(); it != r->fifo.end(); ++it) {
      auto slot = r->table.find(*it);
      GFLINK_CHECK(slot != r->table.end());
      if (slot->second.pins == 0) {
        victim = it;
        break;
      }
    }
    if (victim == r->fifo.end()) break;  // everything pinned
    auto slot = r->table.find(*victim);
    note_flight("cache_evict", device, slot->second.entry.bytes);
    dev.memory().free(slot->second.entry.ptr);
    r->used -= slot->second.entry.bytes;
    r->table.erase(slot);
    r->fifo.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return dev.memory().can_allocate(bytes);
}

gpu::DevicePtr GMemoryManager::reserve_staging(int device, std::uint64_t job,
                                               std::uint64_t bytes) {
  core::MutexLock lock(mu_);
  gpu::GpuDevice& dev = *devices_.at(static_cast<std::size_t>(device));
  gpu::DevicePtr ptr = dev.memory().allocate(bytes);
  if (ptr == 0 && evict_for_space_locked(device, job, bytes)) {
    ptr = dev.memory().allocate(bytes);
  }
  if (ptr == 0) {
    staging_failures_.fetch_add(1, std::memory_order_relaxed);
    note_flight("staging_failure", device, bytes);
    return 0;
  }
  staging_reservations_.fetch_add(1, std::memory_order_relaxed);
  staging_bytes_.at(static_cast<std::size_t>(device)) += dev.memory().allocation_size(ptr);
  return ptr;
}

void GMemoryManager::release_staging(int device, gpu::DevicePtr ptr) {
  core::MutexLock lock(mu_);
  gpu::GpuDevice& dev = *devices_.at(static_cast<std::size_t>(device));
  staging_bytes_.at(static_cast<std::size_t>(device)) -= dev.memory().allocation_size(ptr);
  dev.memory().free(ptr);
}

void GMemoryManager::release_job(std::uint64_t job) {
  core::MutexLock lock(mu_);
  for (std::size_t d = 0; d < regions_.size(); ++d) {
    auto it = regions_[d].find(job);
    if (it == regions_[d].end()) continue;
    for (auto& [key, slot] : it->second.table) {
      devices_[d]->memory().free(slot.entry.ptr);
    }
    regions_[d].erase(it);
  }
}

std::uint64_t GMemoryManager::cached_input_bytes(int device, const GWork& work) const {
  core::MutexLock lock(mu_);
  return cached_input_bytes_locked(device, work);
}

std::uint64_t GMemoryManager::cached_input_bytes_locked(int device, const GWork& work) const {
  const Region* r = find_region(device, work.job_id);
  if (r == nullptr) return 0;
  std::uint64_t total = 0;
  for (const auto& in : work.inputs) {
    if (!in.cache || !in.counts_for_locality) continue;
    auto it = r->table.find(in.cache_key);
    if (it != r->table.end()) total += it->second.entry.bytes;
  }
  return total;
}

int GMemoryManager::best_device_for(const GWork& work) const {
  // One lock for the whole scan so the answer is a consistent snapshot
  // across devices.
  core::MutexLock lock(mu_);
  int best = -1;
  std::uint64_t best_bytes = 0;
  for (int d = 0; d < num_devices(); ++d) {
    const std::uint64_t bytes = cached_input_bytes_locked(d, work);
    if (bytes > best_bytes) {
      best_bytes = bytes;
      best = d;
    }
  }
  return best;
}

std::uint64_t GMemoryManager::cached_bytes(int device, std::uint64_t job) const {
  core::MutexLock lock(mu_);
  const Region* r = find_region(device, job);
  return r == nullptr ? 0 : r->used;
}

}  // namespace gflink::core
