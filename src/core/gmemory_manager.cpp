#include "core/gmemory_manager.hpp"

#include <algorithm>

namespace gflink::core {

GMemoryManager::Region* GMemoryManager::find_region(int device, std::uint64_t job) {
  auto& jobs = regions_.at(static_cast<std::size_t>(device));
  auto it = jobs.find(job);
  return it == jobs.end() ? nullptr : &it->second;
}

const GMemoryManager::Region* GMemoryManager::find_region(int device, std::uint64_t job) const {
  const auto& jobs = regions_.at(static_cast<std::size_t>(device));
  auto it = jobs.find(job);
  return it == jobs.end() ? nullptr : &it->second;
}

std::optional<GMemoryManager::CacheEntry> GMemoryManager::lookup(int device, std::uint64_t job,
                                                                 std::uint64_t key) const {
  core::MutexLock lock(mu_);
  const Region* r = find_region(device, job);
  if (r == nullptr) return std::nullopt;
  auto it = r->table.find(key);
  if (it == r->table.end()) return std::nullopt;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

std::optional<GMemoryManager::CacheEntry> GMemoryManager::lookup_pinned(int device,
                                                                        std::uint64_t job,
                                                                        std::uint64_t key) {
  core::MutexLock lock(mu_);
  Region* r = find_region(device, job);
  if (r == nullptr) return std::nullopt;
  auto it = r->table.find(key);
  if (it == r->table.end()) return std::nullopt;
  hits_.fetch_add(1, std::memory_order_relaxed);
  ++it->second.pins;
  pins_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

std::optional<GMemoryManager::CacheEntry> GMemoryManager::insert(int device, std::uint64_t job,
                                                                 std::uint64_t key,
                                                                 std::uint64_t bytes) {
  core::MutexLock lock(mu_);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (bytes > region_capacity_) return std::nullopt;  // can never fit
  auto& jobs = regions_.at(static_cast<std::size_t>(device));
  Region& r = jobs[job];  // region lazily "reserved" on first touch
  gpu::GpuDevice& dev = *devices_.at(static_cast<std::size_t>(device));

  // Replacing an existing (e.g. undersized) entry: drop the old one first.
  if (auto old = r.table.find(key); old != r.table.end()) {
    if (old->second.pins > 0) return std::nullopt;  // in use; do not thrash
    dev.memory().free(old->second.entry.ptr);
    r.used -= old->second.entry.bytes;
    r.table.erase(old);
    std::erase(r.fifo, key);
  }

  if (r.used + bytes > region_capacity_) {
    if (policy_ == CachePolicy::NoEvict) return std::nullopt;
    // FIFO policy (paper §4.2.2, Fig. 3): walk the FIFO list from the
    // oldest entry, collecting unpinned victims until the new object fits.
    std::uint64_t reclaimable = 0;
    std::vector<std::uint64_t> victims;
    for (std::uint64_t candidate : r.fifo) {
      if (r.used - reclaimable + bytes <= region_capacity_) break;
      auto it = r.table.find(candidate);
      GFLINK_CHECK(it != r.table.end());
      if (it->second.pins > 0) continue;  // in-flight: skip
      reclaimable += it->second.entry.bytes;
      victims.push_back(candidate);
    }
    if (r.used - reclaimable + bytes > region_capacity_) return std::nullopt;
    for (std::uint64_t victim : victims) {
      evict_slot_locked(device, r, victim);
    }
  }

  // Tenant quota: keep the inserting tenant at or under its per-device
  // quota by first shrinking that tenant's own cache (globally-oldest
  // unpinned entry across its jobs). Declines when the tenant's pinned
  // working set already fills the quota.
  const std::string tenant = tenant_of_locked(job);
  if (auto q = tenant_quota_.find(tenant); q != tenant_quota_.end() && q->second > 0) {
    if (bytes > q->second) return std::nullopt;  // can never fit in quota
    while (tenant_used_locked(device, tenant) + bytes > q->second) {
      if (!evict_tenant_oldest_locked(device, tenant)) return std::nullopt;
    }
  }

  gpu::DevicePtr ptr = dev.memory().allocate(bytes);
  while (ptr == 0) {
    // Device OOM outside the region model: prefer over-quota tenants'
    // entries, then the requester's own tenant; an under-quota peer is
    // never the victim while either of those can give space back.
    if (!evict_over_quota_locked(device) && !evict_tenant_oldest_locked(device, tenant)) {
      return std::nullopt;
    }
    ptr = dev.memory().allocate(bytes);
  }
  Slot slot;
  slot.entry = CacheEntry{ptr, bytes};
  slot.pins = 1;  // returned pinned for the inserting GWork
  slot.seq = next_seq_++;
  pins_.fetch_add(1, std::memory_order_relaxed);
  r.table.emplace(key, slot);
  r.fifo.push_back(key);
  r.used += bytes;
  tenant_inserted_[tenant] += bytes;
  return slot.entry;
}

void GMemoryManager::unpin(int device, std::uint64_t job, std::uint64_t key) {
  core::MutexLock lock(mu_);
  Region* r = find_region(device, job);
  if (r == nullptr) return;  // job already released
  auto it = r->table.find(key);
  if (it == r->table.end()) return;  // entry replaced meanwhile
  GFLINK_CHECK_MSG(it->second.pins > 0, "unpin without matching pin");
  --it->second.pins;
}

bool GMemoryManager::erase(int device, std::uint64_t job, std::uint64_t key) {
  core::MutexLock lock(mu_);
  Region* r = find_region(device, job);
  if (r == nullptr) return false;
  auto it = r->table.find(key);
  if (it == r->table.end()) return false;
  GFLINK_CHECK_MSG(it->second.pins > 0, "erase without matching pin");
  --it->second.pins;
  if (it->second.pins > 0) return false;  // another stream is using it
  devices_.at(static_cast<std::size_t>(device))->memory().free(it->second.entry.ptr);
  r->used -= it->second.entry.bytes;
  r->table.erase(it);
  std::erase(r->fifo, key);
  return true;
}

bool GMemoryManager::evict_for_space(int device, std::uint64_t job, std::uint64_t bytes) {
  core::MutexLock lock(mu_);
  return evict_for_space_locked(device, job, bytes);
}

bool GMemoryManager::evict_for_space_locked(int device, std::uint64_t job, std::uint64_t bytes) {
  // Contiguity-aware: free_bytes() can exceed `bytes` while no single hole
  // fits (the fragmented-heap case); keep evicting until a hole does.
  // Victim order: the requesting job's own FIFO-oldest unpinned entries
  // first (single-job behavior, and what the staging ring leans on), then
  // over-quota tenants. Under-quota peers are never touched.
  gpu::GpuDevice& dev = *devices_.at(static_cast<std::size_t>(device));
  Region* r = find_region(device, job);
  while (!dev.memory().can_allocate(bytes)) {
    bool evicted = false;
    if (r != nullptr) {
      for (auto it = r->fifo.begin(); it != r->fifo.end(); ++it) {
        auto slot = r->table.find(*it);
        GFLINK_CHECK(slot != r->table.end());
        if (slot->second.pins == 0) {
          evict_slot_locked(device, *r, *it);
          evicted = true;
          break;
        }
      }
    }
    if (!evicted && !evict_over_quota_locked(device)) break;  // nothing evictable
  }
  return dev.memory().can_allocate(bytes);
}

void GMemoryManager::evict_slot_locked(int device, Region& r, std::uint64_t key) {
  auto it = r.table.find(key);
  GFLINK_CHECK(it != r.table.end());
  GFLINK_CHECK_MSG(it->second.pins == 0, "evicting a pinned cache entry");
  note_flight("cache_evict", device, it->second.entry.bytes);
  devices_.at(static_cast<std::size_t>(device))->memory().free(it->second.entry.ptr);
  r.used -= it->second.entry.bytes;
  r.table.erase(it);
  std::erase(r.fifo, key);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

std::string GMemoryManager::tenant_of_locked(std::uint64_t job) const {
  auto it = job_tenant_.find(job);
  return it == job_tenant_.end() ? std::string() : it->second;
}

std::uint64_t GMemoryManager::tenant_used_locked(int device, const std::string& tenant) const {
  std::uint64_t used = 0;
  for (const auto& [job, region] : regions_.at(static_cast<std::size_t>(device))) {
    if (tenant_of_locked(job) == tenant) used += region.used;
  }
  return used;
}

bool GMemoryManager::evict_tenant_oldest_locked(int device, const std::string& tenant) {
  auto& jobs = regions_.at(static_cast<std::size_t>(device));
  Region* victim_region = nullptr;
  std::uint64_t victim_key = 0;
  std::uint64_t victim_seq = ~0ULL;
  for (auto& [job, region] : jobs) {
    if (tenant_of_locked(job) != tenant) continue;
    for (const auto& [key, slot] : region.table) {
      if (slot.pins > 0) continue;
      if (slot.seq < victim_seq) {
        victim_seq = slot.seq;
        victim_region = &region;
        victim_key = key;
      }
    }
  }
  if (victim_region == nullptr) return false;
  evict_slot_locked(device, *victim_region, victim_key);
  return true;
}

bool GMemoryManager::evict_over_quota_locked(int device) {
  // Victim tenant: the one furthest over its quota that still has an
  // unpinned entry on this device. Tenants without a quota (including the
  // default "") are never cross-tenant victims.
  std::string victim;
  bool found = false;
  std::uint64_t best_overage = 0;
  for (const auto& [tenant, quota] : tenant_quota_) {
    if (quota == 0) continue;
    const std::uint64_t used = tenant_used_locked(device, tenant);
    if (used <= quota) continue;
    const std::uint64_t overage = used - quota;
    if ((!found || overage > best_overage) && has_unpinned_locked(device, tenant)) {
      found = true;
      best_overage = overage;
      victim = tenant;
    }
  }
  if (!found) return false;
  const bool evicted = evict_tenant_oldest_locked(device, victim);
  GFLINK_CHECK(evicted);
  cross_tenant_evictions_.fetch_add(1, std::memory_order_relaxed);
  note_flight("cross_tenant_evict", device, 0);
  return true;
}

gpu::DevicePtr GMemoryManager::reserve_staging(int device, std::uint64_t job,
                                               std::uint64_t bytes) {
  core::MutexLock lock(mu_);
  gpu::GpuDevice& dev = *devices_.at(static_cast<std::size_t>(device));
  gpu::DevicePtr ptr = dev.memory().allocate(bytes);
  if (ptr == 0 && evict_for_space_locked(device, job, bytes)) {
    ptr = dev.memory().allocate(bytes);
  }
  if (ptr == 0) {
    staging_failures_.fetch_add(1, std::memory_order_relaxed);
    note_flight("staging_failure", device, bytes);
    return 0;
  }
  staging_reservations_.fetch_add(1, std::memory_order_relaxed);
  staging_bytes_.at(static_cast<std::size_t>(device)) += dev.memory().allocation_size(ptr);
  return ptr;
}

void GMemoryManager::release_staging(int device, gpu::DevicePtr ptr) {
  core::MutexLock lock(mu_);
  gpu::GpuDevice& dev = *devices_.at(static_cast<std::size_t>(device));
  staging_bytes_.at(static_cast<std::size_t>(device)) -= dev.memory().allocation_size(ptr);
  dev.memory().free(ptr);
}

void GMemoryManager::release_job(std::uint64_t job) {
  core::MutexLock lock(mu_);
  for (std::size_t d = 0; d < regions_.size(); ++d) {
    auto it = regions_[d].find(job);
    if (it == regions_[d].end()) continue;
    for (auto& [key, slot] : it->second.table) {
      devices_[d]->memory().free(slot.entry.ptr);
    }
    regions_[d].erase(it);
  }
  job_tenant_.erase(job);
}

bool GMemoryManager::has_unpinned_locked(int device, const std::string& tenant) const {
  for (const auto& [job, region] : regions_.at(static_cast<std::size_t>(device))) {
    if (tenant_of_locked(job) != tenant) continue;
    for (const auto& [key, slot] : region.table) {
      if (slot.pins == 0) return true;
    }
  }
  return false;
}

void GMemoryManager::set_job_tenant(std::uint64_t job, const std::string& tenant) {
  core::MutexLock lock(mu_);
  job_tenant_[job] = tenant;
}

void GMemoryManager::set_tenant_quota(const std::string& tenant, std::uint64_t bytes) {
  core::MutexLock lock(mu_);
  if (bytes == 0) {
    tenant_quota_.erase(tenant);
  } else {
    tenant_quota_[tenant] = bytes;
  }
}

std::uint64_t GMemoryManager::tenant_cached_bytes(int device, const std::string& tenant) const {
  core::MutexLock lock(mu_);
  return tenant_used_locked(device, tenant);
}

std::uint64_t GMemoryManager::tenant_inserted_bytes(const std::string& tenant) const {
  core::MutexLock lock(mu_);
  auto it = tenant_inserted_.find(tenant);
  return it == tenant_inserted_.end() ? 0 : it->second;
}

std::uint64_t GMemoryManager::cached_input_bytes(int device, const GWork& work) const {
  core::MutexLock lock(mu_);
  return cached_input_bytes_locked(device, work);
}

std::uint64_t GMemoryManager::cached_input_bytes_locked(int device, const GWork& work) const {
  const Region* r = find_region(device, work.job_id);
  if (r == nullptr) return 0;
  std::uint64_t total = 0;
  for (const auto& in : work.inputs) {
    if (!in.cache || !in.counts_for_locality) continue;
    auto it = r->table.find(in.cache_key);
    if (it != r->table.end()) total += it->second.entry.bytes;
  }
  return total;
}

int GMemoryManager::best_device_for(const GWork& work) const {
  // One lock for the whole scan so the answer is a consistent snapshot
  // across devices.
  core::MutexLock lock(mu_);
  int best = -1;
  std::uint64_t best_bytes = 0;
  for (int d = 0; d < num_devices(); ++d) {
    const std::uint64_t bytes = cached_input_bytes_locked(d, work);
    if (bytes > best_bytes) {
      best_bytes = bytes;
      best = d;
    }
  }
  return best;
}

std::uint64_t GMemoryManager::cached_bytes(int device, std::uint64_t job) const {
  core::MutexLock lock(mu_);
  const Region* r = find_region(device, job);
  return r == nullptr ? 0 : r->used;
}

}  // namespace gflink::core
