// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "core/gdst.hpp"

#include <cstring>
#include <deque>

namespace gflink::core {

namespace {

/// One submitted-but-unretired GPU block of a mapPartition task.
struct BlockResult {
  GWorkPtr work;
  std::size_t out_records = 0;
  mem::HBufferPtr out_buffer;
};

/// Retire the oldest in-flight block: await completion, append its output
/// records in block order, and release its host buffers back to the page
/// budget. Bounding the in-flight window keeps the task's footprint
/// independent of partition size (and free of budget deadlocks). A named
/// coroutine instead of a capturing lambda (gflint C1); awaited in-scope.
sim::Co<void> retire_oldest_block(std::deque<BlockResult>& in_flight, mem::RecordBatch& out,
                                  std::size_t out_stride) {
  BlockResult r = std::move(in_flight.front());
  in_flight.pop_front();
  co_await r.work->done->wait();
  for (std::size_t i = 0; i < r.out_records; ++i) {
    out.append_raw(r.out_buffer->data() + i * out_stride);
  }
}

}  // namespace

sim::Co<void> gpu_map_partition_run(dataflow::TaskContext& ctx, const GpuOpSpec& spec,
                                    const mem::RecordBatch& in, mem::RecordBatch& out) {
  GpuManager& mgr = GpuManager::of(ctx);
  if (in.count() == 0) co_return;
  GFLINK_CHECK_MSG(in.layout() == mem::Layout::AoS, "GDST blocks are built from AoS pages");

  const std::size_t stride = in.desc().stride();
  const std::size_t out_stride = out.desc().stride();
  const std::size_t block_bytes =
      spec.block_bytes > 0 ? spec.block_bytes : ctx.engine().config().page_size;
  // A GStruct must not straddle a page (paper §5.1).
  const std::size_t records_per_block = std::max<std::size_t>(1, block_bytes / stride);
  const std::size_t blocks = (in.count() + records_per_block - 1) / records_per_block;

  // Task-level shared pieces: broadcast buffers and kernel parameters.
  std::vector<GBuffer> aux =
      spec.make_aux ? spec.make_aux(ctx) : std::vector<GBuffer>{};
  std::shared_ptr<void> params = spec.make_params ? spec.make_params(ctx) : nullptr;

  mem::MemoryManager& memory = ctx.worker_state().memory();

  std::deque<BlockResult> in_flight;
  const std::size_t window = std::max<std::size_t>(
      16, 4 * static_cast<std::size_t>(mgr.num_devices() * mgr.streams().streams_per_gpu()));

  // Producer: assemble and submit one GWork per block. Submission does not
  // wait, so blocks pipeline through the GStreamManager's streams.
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t first = b * records_per_block;
    const std::size_t n = std::min(records_per_block, in.count() - first);
    const std::size_t in_bytes = n * stride;
    const std::size_t out_records = spec.out_items ? spec.out_items(n) : n;
    const std::size_t out_bytes = out_records * out_stride;

    // The input block aliases the partition's off-heap page: zero copy in
    // the modeled system; here we materialize the block buffer to give the
    // kernel a concrete span.
    mem::HBufferPtr in_buf = co_await memory.allocate(in_bytes);  // pinned off-heap
    in_buf->write(0, in.record_ptr(first), in_bytes);

    mem::HBufferPtr out_buf = co_await memory.allocate(std::max<std::size_t>(out_bytes, 1));

    auto work = std::make_shared<GWork>();
    work->execute_name = spec.kernel;
    work->ptx_path = spec.ptx_path;
    work->layout = spec.layout;
    work->size = n;
    work->block_size = spec.block_size;
    work->job_id = ctx.job().id();
    work->tenant = ctx.job().tenant();
    work->span = ctx.span();
    work->params = params;
    work->chunkable = spec.chunkable;
    work->chunk_bytes = spec.chunk_bytes;
    GBuffer in_binding;
    in_binding.host = in_buf;
    in_binding.bytes = in_bytes;
    in_binding.cache = spec.cache_input;
    in_binding.cache_key = make_cache_key(spec.cache_namespace,
                                          static_cast<std::uint32_t>(ctx.partition()),
                                          static_cast<std::uint32_t>(b));
    in_binding.item_stride = stride;  // records never split across chunks
    work->inputs.push_back(std::move(in_binding));
    // Broadcast buffers stay indivisible (item_stride 0 as built by
    // make_aux): kernels index them absolutely.
    for (const GBuffer& a : aux) work->inputs.push_back(a);
    GBuffer out_binding;
    out_binding.host = out_buf;
    out_binding.bytes = out_bytes;
    // Element-wise ops produce a fixed number of output records per input
    // item; expose that as the output stride so chunks stay element-aligned.
    if (spec.chunkable && out_records >= n && out_records % n == 0) {
      out_binding.item_stride = (out_records / n) * out_stride;
    }
    work->outputs.push_back(std::move(out_binding));

    mgr.streams().submit(work);
    in_flight.push_back(BlockResult{std::move(work), out_records, std::move(out_buf)});
    if (in_flight.size() >= window) {
      co_await retire_oldest_block(in_flight, out, out_stride);
    }
  }
  while (!in_flight.empty()) {
    co_await retire_oldest_block(in_flight, out, out_stride);
  }
}

}  // namespace gflink::core
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
