// GMemoryManager: GFlink's automatic device-memory management and GPU cache
// scheme (paper §4.2).
//
// Responsibilities:
//  * automatic allocation/release of device buffers around each GWork (no
//    user-visible cudaMalloc/cudaFree);
//  * per-job cache regions on each GPU: a budget reserved when the job
//    first touches the device and released when the job ends. Within a
//    region, cached objects are tracked in a hash table keyed by the
//    (partition, block) cache key, with a FIFO list for eviction;
//  * two policies (paper §4.2.2): FIFO eviction, and NoEvict — once the
//    region is full nothing more is cached (useful when one iteration's
//    working set exceeds the region);
//  * the locality query behind Algorithm 5.1: which GPU holds the most
//    cached bytes of a GWork's inputs.
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/gwork.hpp"
#include "gpu/device.hpp"

namespace gflink::core {

enum class CachePolicy : std::uint8_t { Fifo, NoEvict };

class GMemoryManager {
 public:
  struct CacheEntry {
    gpu::DevicePtr ptr = 0;
    std::uint64_t bytes = 0;
  };

  GMemoryManager(std::vector<gpu::GpuDevice*> devices, std::uint64_t region_capacity,
                 CachePolicy policy)
      : devices_(std::move(devices)), region_capacity_(region_capacity), policy_(policy),
        regions_(devices_.size()) {}

  int num_devices() const { return static_cast<int>(devices_.size()); }
  CachePolicy policy() const { return policy_; }
  std::uint64_t region_capacity() const { return region_capacity_; }

  /// Cache lookup on one device. A hit refreshes nothing (FIFO, not LRU —
  /// matching the paper).
  std::optional<CacheEntry> lookup(int device, std::uint64_t job, std::uint64_t key) const;

  /// Lookup that also pins the entry against eviction (used by in-flight
  /// GWork; must be paired with unpin()).
  std::optional<CacheEntry> lookup_pinned(int device, std::uint64_t job, std::uint64_t key);

  /// Try to cache `bytes` under `key`: evicts FIFO-oldest *unpinned*
  /// entries when the region is full (Fifo policy) or declines (NoEvict /
  /// oversized). Returns the device allocation to fill — pinned; the caller
  /// must unpin() once its GWork is done with it.
  std::optional<CacheEntry> insert(int device, std::uint64_t job, std::uint64_t key,
                                   std::uint64_t bytes);

  /// Release a pin taken by lookup_pinned()/insert().
  void unpin(int device, std::uint64_t job, std::uint64_t key);

  /// Relieve device-memory pressure: evict unpinned cached entries of `job`
  /// (FIFO order) until at least `bytes` are free on the device or nothing
  /// evictable remains. Returns true if the space is now available. Used
  /// when a transient cudaMalloc fails because the cache grew into all of
  /// the device memory.
  bool evict_for_space(int device, std::uint64_t job, std::uint64_t bytes);

  /// Release a job's region on every device (job end / GFlink stop).
  void release_job(std::uint64_t job);

  /// Algorithm 5.1's locality probe: the device holding the most cached
  /// input bytes for this work, or -1 when nothing is cached anywhere.
  int best_device_for(const GWork& work) const;

  /// Bytes of `work`'s inputs already cached on `device`.
  std::uint64_t cached_input_bytes(int device, const GWork& work) const;

  // Statistics.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t pins() const { return pins_; }
  std::uint64_t cached_bytes(int device, std::uint64_t job) const;
  /// Bytes currently occupied by cache regions on `device`, across jobs.
  std::uint64_t region_used(int device) const {
    std::uint64_t used = 0;
    for (const auto& [job, region] : regions_.at(static_cast<std::size_t>(device))) {
      used += region.used;
    }
    return used;
  }

 private:
  struct Slot {
    CacheEntry entry;
    int pins = 0;  // in-flight GWork references; pinned slots never evict
  };
  struct Region {
    std::uint64_t used = 0;
    std::unordered_map<std::uint64_t, Slot> table;
    std::deque<std::uint64_t> fifo;  // insertion order of keys
  };

  // Per-device map: job id -> region.
  using JobRegions = std::unordered_map<std::uint64_t, Region>;

  Region* find_region(int device, std::uint64_t job);
  const Region* find_region(int device, std::uint64_t job) const;

  std::vector<gpu::GpuDevice*> devices_;
  std::uint64_t region_capacity_;
  CachePolicy policy_;
  std::vector<JobRegions> regions_;
  mutable std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t pins_ = 0;
};

}  // namespace gflink::core
