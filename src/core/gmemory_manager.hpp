// GMemoryManager: GFlink's automatic device-memory management and GPU cache
// scheme (paper §4.2).
//
// Responsibilities:
//  * automatic allocation/release of device buffers around each GWork (no
//    user-visible cudaMalloc/cudaFree);
//  * per-job cache regions on each GPU: a budget reserved when the job
//    first touches the device and released when the job ends. Within a
//    region, cached objects are tracked in a hash table keyed by the
//    (partition, block) cache key, with a FIFO list for eviction;
//  * two policies (paper §4.2.2): FIFO eviction, and NoEvict — once the
//    region is full nothing more is cached (useful when one iteration's
//    working set exceeds the region);
//  * the locality query behind Algorithm 5.1: which GPU holds the most
//    cached bytes of a GWork's inputs.
#pragma once

#include <atomic>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/gwork.hpp"
#include "core/thread_annotations.hpp"
#include "gpu/device.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/simulation.hpp"

namespace gflink::core {

enum class CachePolicy : std::uint8_t { Fifo, NoEvict };

class GMemoryManager {
 public:
  struct CacheEntry {
    gpu::DevicePtr ptr = 0;
    std::uint64_t bytes = 0;
  };

  GMemoryManager(std::vector<gpu::GpuDevice*> devices, std::uint64_t region_capacity,
                 CachePolicy policy)
      : devices_(std::move(devices)), region_capacity_(region_capacity), policy_(policy),
        regions_(devices_.size()), staging_bytes_(devices_.size(), 0) {}

  /// Attach the node's flight recorder: cache evictions and staging-ring
  /// failures become flight events (memory pressure is the usual suspect
  /// when a fault dump is being read). `sim` supplies the clock; the
  /// recorder's mutex is a leaf in the lock hierarchy (and the recorder
  /// acquires nothing else while holding it), so noting events under mu_
  /// (rank 1) is safe.
  void attach_flight(obs::FlightRecorder* flight, int node, sim::Simulation* sim) {
    flight_ = flight;
    flight_node_ = node;
    flight_sim_ = sim;
  }

  int num_devices() const { return static_cast<int>(devices_.size()); }
  CachePolicy policy() const { return policy_; }
  std::uint64_t region_capacity() const { return region_capacity_; }

  /// Cache lookup on one device. A hit refreshes nothing (FIFO, not LRU —
  /// matching the paper).
  std::optional<CacheEntry> lookup(int device, std::uint64_t job, std::uint64_t key) const;

  /// Lookup that also pins the entry against eviction (used by in-flight
  /// GWork; must be paired with unpin()).
  std::optional<CacheEntry> lookup_pinned(int device, std::uint64_t job, std::uint64_t key);

  /// Try to cache `bytes` under `key`: evicts FIFO-oldest *unpinned*
  /// entries when the region is full (Fifo policy) or declines (NoEvict /
  /// oversized). Returns the device allocation to fill — pinned; the caller
  /// must unpin() once its GWork is done with it.
  std::optional<CacheEntry> insert(int device, std::uint64_t job, std::uint64_t key,
                                   std::uint64_t bytes);

  /// Release a pin taken by lookup_pinned()/insert().
  void unpin(int device, std::uint64_t job, std::uint64_t key);

  /// Undo of insert(): drop an entry the caller just inserted (and still
  /// holds the pin of) before any data was transferred into it — used when
  /// a chunked execution aborts during placement. If another stream pinned
  /// the entry meanwhile it is left in place (only this caller's pin is
  /// released). Returns true when the entry was removed.
  bool erase(int device, std::uint64_t job, std::uint64_t key);

  /// Relieve device-memory pressure: evict unpinned cached entries of `job`
  /// (FIFO order) until at least `bytes` are free on the device or nothing
  /// evictable remains. Returns true if the space is now available. Used
  /// when a transient cudaMalloc fails because the cache grew into all of
  /// the device memory.
  bool evict_for_space(int device, std::uint64_t job, std::uint64_t bytes);

  /// Release a job's region on every device (job end / GFlink stop). Also
  /// forgets the job's tenant mapping.
  void release_job(std::uint64_t job);

  // ---- Multi-tenant quota accounting (JobService) --------------------------
  //
  // Jobs are mapped to tenants; a tenant may carry a per-device byte quota
  // over the *sum* of its jobs' cache regions. Quotas change two things:
  //  * insert() keeps the inserting tenant at or under its quota by first
  //    evicting that tenant's own globally-oldest unpinned entries;
  //  * under device pressure (failed allocation, staging reservation), the
  //    eviction order prefers *over-quota* tenants — an under-quota tenant's
  //    entry is never evicted cross-tenant while an over-quota victim with
  //    an unpinned entry exists (self-eviction by the requester is always
  //    allowed).
  // Unmapped jobs belong to the default tenant "" which has no quota; with
  // no tenants configured every path below reduces to the single-job
  // behavior.

  /// Tag `job` as belonging to `tenant` (idempotent; call before caching).
  void set_job_tenant(std::uint64_t job, const std::string& tenant);

  /// Set `tenant`'s per-device cache quota in bytes (0 removes the quota).
  void set_tenant_quota(const std::string& tenant, std::uint64_t bytes);

  /// Bytes of cache currently held by `tenant` on `device` across its jobs.
  std::uint64_t tenant_cached_bytes(int device, const std::string& tenant) const;

  /// Cumulative bytes `tenant` has inserted into this manager's caches —
  /// the achieved-cache-share numerator for fairness reporting (current
  /// occupancy is ~0 once jobs release their regions).
  std::uint64_t tenant_inserted_bytes(const std::string& tenant) const;

  /// Entries evicted from one tenant to relieve another's device pressure.
  std::uint64_t cross_tenant_evictions() const {
    return cross_tenant_evictions_.load(std::memory_order_relaxed);
  }

  /// Reserve a device staging ring for the chunked transfer/compute
  /// pipeline: a transient allocation that coexists with the cache regions
  /// and, under pressure, evicts `job`'s unpinned cached entries to make
  /// room (never pinned ones — reservation *fails* rather than waits, so a
  /// fully pinned cache can never deadlock the pipeline; callers fall back
  /// to monolithic execution). Returns 0 on failure. Pair with
  /// release_staging().
  gpu::DevicePtr reserve_staging(int device, std::uint64_t job, std::uint64_t bytes);
  void release_staging(int device, gpu::DevicePtr ptr);

  /// Bytes currently reserved as staging rings on `device`.
  std::uint64_t staging_bytes(int device) const {
    core::MutexLock lock(mu_);
    return staging_bytes_.empty() ? 0 : staging_bytes_.at(static_cast<std::size_t>(device));
  }

  /// Algorithm 5.1's locality probe: the device holding the most cached
  /// input bytes for this work, or -1 when nothing is cached anywhere.
  int best_device_for(const GWork& work) const;

  /// Bytes of `work`'s inputs already cached on `device`.
  std::uint64_t cached_input_bytes(int device, const GWork& work) const;

  // Statistics. Monotonic counters are relaxed atomics so readers (metric
  // export) never contend with the table mutex.
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  std::uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  std::uint64_t pins() const { return pins_.load(std::memory_order_relaxed); }
  std::uint64_t staging_reservations() const {
    return staging_reservations_.load(std::memory_order_relaxed);
  }
  std::uint64_t staging_failures() const {
    return staging_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t cached_bytes(int device, std::uint64_t job) const;
  /// Bytes currently occupied by cache regions on `device`, across jobs.
  std::uint64_t region_used(int device) const {
    core::MutexLock lock(mu_);
    std::uint64_t used = 0;
    for (const auto& [job, region] : regions_.at(static_cast<std::size_t>(device))) {
      used += region.used;
    }
    return used;
  }

 private:
  struct Slot {
    CacheEntry entry;
    int pins = 0;  // in-flight GWork references; pinned slots never evict
    /// Global insertion sequence: the cross-job/cross-tenant FIFO order
    /// (a per-region FIFO cannot order victims across regions).
    std::uint64_t seq = 0;
  };
  struct Region {
    std::uint64_t used = 0;
    std::unordered_map<std::uint64_t, Slot> table;
    std::deque<std::uint64_t> fifo;  // insertion order of keys
  };

  // Per-device map: job id -> region.
  using JobRegions = std::unordered_map<std::uint64_t, Region>;

  Region* find_region(int device, std::uint64_t job) GFLINK_REQUIRES(mu_);
  const Region* find_region(int device, std::uint64_t job) const GFLINK_REQUIRES(mu_);
  bool evict_for_space_locked(int device, std::uint64_t job, std::uint64_t bytes)
      GFLINK_REQUIRES(mu_);
  std::uint64_t cached_input_bytes_locked(int device, const GWork& work) const
      GFLINK_REQUIRES(mu_);
  std::string tenant_of_locked(std::uint64_t job) const GFLINK_REQUIRES(mu_);
  std::uint64_t tenant_used_locked(int device, const std::string& tenant) const
      GFLINK_REQUIRES(mu_);
  /// Evict `tenant`'s globally-oldest unpinned entry on `device` (any of
  /// its jobs). False when the tenant has nothing evictable there.
  bool evict_tenant_oldest_locked(int device, const std::string& tenant) GFLINK_REQUIRES(mu_);
  bool has_unpinned_locked(int device, const std::string& tenant) const GFLINK_REQUIRES(mu_);
  /// Cross-tenant relief: evict the oldest unpinned entry of the *most
  /// over-quota* tenant on `device`. False when no over-quota tenant has an
  /// evictable entry — callers must then fall back to self-eviction or give
  /// up, never take an under-quota tenant's entry.
  bool evict_over_quota_locked(int device) GFLINK_REQUIRES(mu_);
  void evict_slot_locked(int device, Region& r, std::uint64_t key) GFLINK_REQUIRES(mu_);

  void note_flight(const char* what, int device, std::uint64_t bytes) const {
    if (flight_ == nullptr || flight_sim_ == nullptr) return;
    flight_->note_event(flight_sim_->now(), flight_node_,
                        what, "gpu" + std::to_string(device) + " " + std::to_string(bytes) +
                                  " bytes");
  }

  std::vector<gpu::GpuDevice*> devices_;
  std::uint64_t region_capacity_;
  CachePolicy policy_;
  // Flight hook (host-plane, leaf-locked; see attach_flight()).
  obs::FlightRecorder* flight_ = nullptr;
  int flight_node_ = -1;
  sim::Simulation* flight_sim_ = nullptr;
  /// Guards the region tables and the staging accounting. Lock order:
  /// GMemoryManager::mu_ is acquired *before* DeviceMemory::mu_ —
  /// insert/evict/staging call dev.memory().allocate/free while held.
  mutable core::Mutex mu_;
  std::vector<JobRegions> regions_ GFLINK_GUARDED_BY(mu_);
  std::vector<std::uint64_t> staging_bytes_ GFLINK_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::string> job_tenant_ GFLINK_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::uint64_t> tenant_quota_ GFLINK_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::uint64_t> tenant_inserted_ GFLINK_GUARDED_BY(mu_);
  std::uint64_t next_seq_ GFLINK_GUARDED_BY(mu_) = 0;
  mutable std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> pins_{0};
  std::atomic<std::uint64_t> staging_reservations_{0};
  std::atomic<std::uint64_t> staging_failures_{0};
  std::atomic<std::uint64_t> cross_tenant_evictions_{0};
};

}  // namespace gflink::core
