// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "core/gstream_manager.hpp"

#include <algorithm>
#include <cstring>

namespace gflink::core {

namespace {

/// One GWork buffer as seen by the chunked pipeline.
struct ChunkBuf {
  mem::HBuffer* host = nullptr;
  std::uint64_t bytes = 0;   // full buffer size
  std::uint64_t stride = 0;  // per-item bytes; 0 = indivisible (bound whole)
  /// Full-size device allocation (cache slot, aux buffer, or temporary).
  /// 0 = ring resident: each chunk lives at ring_offset within its slot.
  gpu::DevicePtr device_base = 0;
  std::uint64_t ring_offset = 0;
  bool is_output = false;
  bool h2d = false;          // chunk-wise H2D required (uncached or cache-fill)
  bool upfront_h2d = false;  // indivisible: one whole transfer before the pipeline
  bool prefill_shadow = false;  // cache fill: make the entry's bytes coherent now
};

/// Shared state of one chunked execution; owned by execute_chunked's frame,
/// which outlives every chunk coroutine (it joins them via the WaitGroup).
struct ChunkCtx {
  sim::Simulation* sim = nullptr;
  gpu::CudaWrapper* api = nullptr;
  const gpu::Kernel* kernel = nullptr;
  GWork* work = nullptr;
  std::size_t items_per_chunk = 0;
  gpu::DevicePtr ring_base = 0;
  std::uint64_t slot_stride = 0;  // bytes per ring slot
  std::vector<ChunkBuf> buffers;  // binding order: inputs then outputs
  sim::Channel<int>* free_slots = nullptr;
  sim::WaitGroup* wg = nullptr;
  std::string label;
  sim::Duration h2d_ns = 0;
  sim::Duration kernel_ns = 0;
  sim::Duration d2h_ns = 0;
  // Causal tracing (null/0 when the manager has no span store attached).
  obs::SpanStore* spans = nullptr;
  obs::SpanId gspan = 0;
  std::string lane;
  int node = -1;
};

/// One chunk's pass through the three stages. Backpressure comes from the
/// free-slot channel: at most `staging_slots` chunks are in flight, so chunk
/// i+1's H2D overlaps chunk i's kernel overlaps chunk i-1's D2H (the copy
/// engines and the compute engine are independent FIFO resources).
sim::Co<void> run_chunk(ChunkCtx& ctx, std::size_t c) {
  const auto slot = co_await ctx.free_slots->recv();
  GFLINK_CHECK(slot.has_value());
  const std::size_t first = c * ctx.items_per_chunk;
  const std::size_t n = std::min(ctx.items_per_chunk, ctx.work->size - first);
  const gpu::DevicePtr slot_base =
      ctx.ring_base + static_cast<gpu::DevicePtr>(*slot) * ctx.slot_stride;

  std::vector<gpu::GpuDevice::BufferBinding> bindings;
  bindings.reserve(ctx.buffers.size());
  const sim::Time h2d_begin = ctx.sim->now();
  for (const ChunkBuf& b : ctx.buffers) {
    gpu::DevicePtr dptr = 0;
    std::uint64_t len = 0;
    if (b.stride == 0) {
      dptr = b.device_base;  // indivisible: transferred upfront, bound whole
      len = b.bytes;
    } else {
      const std::uint64_t off = static_cast<std::uint64_t>(first) * b.stride;
      dptr = b.device_base != 0 ? b.device_base + off : slot_base + b.ring_offset;
      len = static_cast<std::uint64_t>(n) * b.stride;
    }
    if (b.h2d) {
      co_await ctx.api->memcpy_h2d(dptr, *b.host, static_cast<std::size_t>(first) * b.stride,
                                   len, ctx.label);
    }
    bindings.push_back({dptr, len});
  }

  const sim::Time kernel_begin = ctx.sim->now();
  ctx.h2d_ns += kernel_begin - h2d_begin;
  if (ctx.spans != nullptr && kernel_begin > h2d_begin) {
    ctx.spans->record("h2d", obs::SpanCategory::H2D, ctx.gspan, h2d_begin, kernel_begin,
                      ctx.lane, ctx.node);
  }
  co_await ctx.api->launch_kernel(*ctx.kernel, bindings, n, ctx.work->layout,
                                  ctx.work->block_size, /*grid_size=*/0, ctx.work->params.get(),
                                  ctx.label);

  const sim::Time d2h_begin = ctx.sim->now();
  ctx.kernel_ns += d2h_begin - kernel_begin;
  if (ctx.spans != nullptr && d2h_begin > kernel_begin) {
    ctx.spans->record("kernel", obs::SpanCategory::Kernel, ctx.gspan, kernel_begin, d2h_begin,
                      ctx.lane, ctx.node);
  }
  for (std::size_t i = 0; i < ctx.buffers.size(); ++i) {
    const ChunkBuf& b = ctx.buffers[i];
    if (!b.is_output) continue;
    co_await ctx.api->memcpy_d2h(*b.host, static_cast<std::size_t>(first) * b.stride,
                                 bindings[i].ptr, bindings[i].len, ctx.label);
  }
  ctx.d2h_ns += ctx.sim->now() - d2h_begin;
  if (ctx.spans != nullptr && ctx.sim->now() > d2h_begin) {
    ctx.spans->record("d2h", obs::SpanCategory::D2H, ctx.gspan, d2h_begin, ctx.sim->now(),
                      ctx.lane, ctx.node);
  }

  const bool returned = ctx.free_slots->try_send(*slot);
  GFLINK_CHECK(returned);
  ctx.wg->done();
}

}  // namespace

GStreamManager::GStreamManager(sim::Simulation& sim, std::vector<gpu::CudaWrapper*> wrappers,
                               GMemoryManager& memory, const GStreamConfig& config,
                               obs::MetricsRegistry* registry, obs::SpanStore* spans,
                               int node_id)
    : sim_(&sim), wrappers_(std::move(wrappers)), memory_(&memory), config_(config),
      spans_(spans), node_id_(node_id) {
  GFLINK_CHECK(!wrappers_.empty());
  GFLINK_CHECK(config_.streams_per_gpu >= 1);
  if (registry != nullptr) {
    queue_depth_hist_ = &registry->histogram("gstream_queue_depth", 0.0, 256.0, 64);
    latency_hist_ = &registry->histogram("gwork_latency_ns", 0.0, 5.0e7, 100);
  }
  pool_.resize(wrappers_.size());
  executed_ = std::vector<std::atomic<std::uint64_t>>(wrappers_.size());
  bulks_.resize(wrappers_.size());
  for (std::size_t g = 0; g < wrappers_.size(); ++g) {
    for (int s = 0; s < config_.streams_per_gpu; ++s) {
      auto w = std::make_unique<StreamWorker>();
      w->gpu = static_cast<int>(g);
      w->stream_id = s;
      w->inbox = std::make_unique<sim::Channel<GWorkPtr>>(sim, 1);
      // The GStream Pool starts with live stream threads (paper Fig. 4);
      // they idle-timeout into the freed state and are revived on demand.
      w->freed = false;
      bulks_[g].push_back(std::move(w));
      // gflint: allow(C3): the manager owns its StreamWorkers and is itself
      // owned by the GpuManager for the whole simulation; worker_loop frames
      // never outlive `this`.
      sim_->spawn(worker_loop(bulks_[g].back().get()));
    }
  }
}

GStreamManager::StreamWorker* GStreamManager::idle_stream_in_bulk(int gpu) {
  for (auto& w : bulks_.at(static_cast<std::size_t>(gpu))) {
    if (w->idle && !w->freed) return w.get();
  }
  return nullptr;
}

int GStreamManager::bulk_with_most_idle() const {
  int best = -1, best_count = 0;
  for (std::size_t g = 0; g < bulks_.size(); ++g) {
    int count = 0;
    for (const auto& w : bulks_[g]) {
      if (w->idle && !w->freed) ++count;
    }
    if (count > best_count) {
      best_count = count;
      best = static_cast<int>(g);
    }
  }
  return best;
}

int GStreamManager::shortest_queue() const {
  int best = 0;
  std::size_t best_depth = pool_[0].size();
  for (std::size_t g = 1; g < pool_.size(); ++g) {
    if (pool_[g].size() < best_depth) {
      best_depth = pool_[g].size();
      best = static_cast<int>(g);
    }
  }
  return best;
}

GStreamManager::StreamWorker* GStreamManager::select_stream(int preferred_gpu) {
  // Algorithm 5.1, lines 2-10.
  if (preferred_gpu >= 0) {
    if (StreamWorker* w = idle_stream_in_bulk(preferred_gpu)) return w;
    const int most_idle = bulk_with_most_idle();
    if (most_idle >= 0) {
      cross_bulk_.fetch_add(1, std::memory_order_relaxed);
      return idle_stream_in_bulk(most_idle);
    }
    return nullptr;
  }
  const int most_idle = bulk_with_most_idle();
  return most_idle >= 0 ? idle_stream_in_bulk(most_idle) : nullptr;
}

void GStreamManager::submit(const GWorkPtr& work) {
  GFLINK_CHECK_MSG(work->done == nullptr, "GWork submitted twice");
  work->done = std::make_shared<sim::Trigger>(*sim_);
  work->submitted_at = sim_->now();
  work->priority = tenant_priority(work->tenant);
  // Record what Algorithm 5.1's probe would prefer regardless of the active
  // policy, so the locality hit/miss metric is comparable across ablations.
  work->preferred_gpu = memory_->best_device_for(*work);

  int preferred = -1;
  switch (config_.policy) {
    case SchedulingPolicy::LocalityAware:
      preferred = work->preferred_gpu;
      break;
    case SchedulingPolicy::RoundRobin:
      preferred = round_robin_cursor_;
      round_robin_cursor_ = (round_robin_cursor_ + 1) % num_gpus();
      break;
    case SchedulingPolicy::Random:
      preferred = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(num_gpus())));
      break;
  }

  if (StreamWorker* w = select_stream(preferred)) {
    w->idle = false;
    ++w->idle_generation;  // invalidate any pending idle-timeout
    const bool sent = w->inbox->try_send(work);
    GFLINK_CHECK(sent);
    return;
  }

  // Algorithm 5.1, lines 11-18: no idle stream anywhere — queue the work.
  const int queue = preferred >= 0 ? preferred : shortest_queue();
  pool_[static_cast<std::size_t>(queue)].push_back(work);
  if (queue_depth_hist_ != nullptr) {
    queue_depth_hist_->add(static_cast<double>(pool_[static_cast<std::size_t>(queue)].size()));
  }
  ensure_alive(queue);
}

GWorkPtr GStreamManager::pop_best(std::deque<GWorkPtr>& q) {
  auto best = q.begin();
  for (auto it = std::next(q.begin()); it != q.end(); ++it) {
    if ((*it)->priority > (*best)->priority) best = it;  // FIFO within one priority
  }
  if (best != q.begin()) priority_bypasses_.fetch_add(1, std::memory_order_relaxed);
  GWorkPtr w = *best;
  q.erase(best);
  return w;
}

GWorkPtr GStreamManager::steal(int gpu) {
  // Algorithm 5.2 (pop order is tenant-priority-aware, FIFO within one
  // priority; with no tenant priorities configured this is plain FIFO).
  auto& own = pool_[static_cast<std::size_t>(gpu)];
  if (!own.empty()) return pop_best(own);
  std::size_t longest = 0, depth = 0;
  for (std::size_t g = 0; g < pool_.size(); ++g) {
    if (pool_[g].size() > depth) {
      depth = pool_[g].size();
      longest = g;
    }
  }
  if (depth == 0) return nullptr;
  GWorkPtr w = pop_best(pool_[longest]);
  steals_.fetch_add(1, std::memory_order_relaxed);
  w->was_stolen = true;
  return w;
}

void GStreamManager::ensure_alive(int gpu) {
  for (auto& w : bulks_.at(static_cast<std::size_t>(gpu))) {
    if (w->freed) {
      w->freed = false;
      w->idle = false;
      // gflint: allow(C3): revived worker frame is bounded by the manager's
      // lifetime, same as the pool-construction spawn above.
      sim_->spawn(worker_loop(w.get()));
      return;  // one revived stream will drain the queue (and steal more)
    }
  }
}

sim::Co<void> GStreamManager::worker_loop(StreamWorker* w) {
  while (true) {
    // Drain work: own queue first, then steal (Algorithm 5.2).
    while (GWorkPtr work = steal(w->gpu)) {
      co_await execute(w, work);
    }
    // Nothing queued: park until the scheduler assigns work directly, or
    // the idle timeout frees this stream's thread (paper §5.3).
    w->idle = true;
    const std::uint64_t my_generation = ++w->idle_generation;
    sim_->schedule_in(config_.idle_timeout, [this, w, my_generation] {
      if (w->idle && !w->freed && w->idle_generation == my_generation) {
        w->inbox->try_send(nullptr);  // timeout sentinel
      }
    });
    auto assigned = co_await w->inbox->recv();
    if (!assigned.has_value() || *assigned == nullptr) {
      // Timed out: free the thread.
      w->idle = false;
      w->freed = true;
      freed_count_.fetch_add(1, std::memory_order_relaxed);
      co_return;
    }
    w->idle = false;
    co_await execute(w, *assigned);
  }
}

std::string GStreamManager::gpu_lane(int gpu) const {
  return (node_id_ >= 0 ? "node" + std::to_string(node_id_) + "/" : std::string()) + "gpu" +
         std::to_string(gpu);
}

bool GStreamManager::chunk_plan(const GWork& work, ChunkPlan& plan) const {
  if (!work.chunkable || work.use_mapped_memory) return false;
  if (work.grid_size != 0) return false;  // explicit grid covers the whole GWork
  if (work.size < 2 || work.outputs.empty()) return false;
  const std::uint64_t chunk_bytes = work.chunk_bytes != 0 ? work.chunk_bytes : config_.chunk_bytes;
  if (chunk_bytes == 0 || config_.staging_slots < 2) return false;

  std::uint64_t per_item = 0;
  plan.ring_item_bytes = 0;
  for (const auto& in : work.inputs) {
    if (in.item_stride == 0) continue;
    if (in.item_stride * work.size != in.bytes) return false;  // misdeclared stride
    per_item += in.item_stride;
    if (!in.cache) plan.ring_item_bytes += in.item_stride;
  }
  for (const auto& out : work.outputs) {
    // Chunkable work needs element-aligned outputs: an indivisible output
    // (block-level reduction) depends on the whole input.
    if (out.item_stride == 0 || out.item_stride * work.size != out.bytes) return false;
    per_item += out.item_stride;
    plan.ring_item_bytes += out.item_stride;
  }
  if (per_item == 0) return false;

  plan.items_per_chunk = std::max<std::size_t>(1, static_cast<std::size_t>(chunk_bytes / per_item));
  if (plan.items_per_chunk >= work.size) return false;  // single chunk: use monolithic
  plan.num_chunks = (work.size + plan.items_per_chunk - 1) / plan.items_per_chunk;
  return true;
}

sim::Co<bool> GStreamManager::execute_chunked(StreamWorker* w, const GWorkPtr& work,
                                              const ChunkPlan& plan, obs::SpanId gspan) {
  gpu::CudaWrapper& api = *wrappers_.at(static_cast<std::size_t>(w->gpu));
  const int gpu_index = w->gpu;
  const std::string label = work->execute_name;
  const sim::Time stage1_begin = sim_->now();

  // Reserve the staging ring before touching the cache or moving any bytes,
  // so a failed reservation falls back with no side effects (and, crucially,
  // without having pre-paid transfers the monolithic path would re-run).
  const std::size_t depth =
      std::min(static_cast<std::size_t>(config_.staging_slots), plan.num_chunks);
  const std::uint64_t slot_stride = plan.ring_item_bytes * plan.items_per_chunk;
  co_await sim_->delay(api.jni_overhead() + api.stub().overheads().malloc_cost);
  const gpu::DevicePtr ring =
      memory_->reserve_staging(gpu_index, work->job_id, slot_stride * depth);
  if (ring == 0) {
    stage_h2d_ns_.fetch_add(sim_->now() - stage1_begin, std::memory_order_relaxed);
    co_return false;
  }

  ChunkCtx ctx;
  ctx.sim = sim_;
  ctx.api = &api;
  ctx.kernel = &gpu::KernelRegistry::global().lookup(work->execute_name);
  ctx.work = work.get();
  ctx.items_per_chunk = plan.items_per_chunk;
  ctx.ring_base = ring;
  ctx.slot_stride = slot_stride;
  ctx.label = label;
  ctx.spans = spans_;
  ctx.gspan = gspan;
  ctx.lane = gpu_lane(gpu_index);
  ctx.node = node_id_;

  std::vector<gpu::DevicePtr> temporaries;
  std::vector<std::uint64_t> pinned_keys;    // hits + fills: unpinned at teardown
  std::vector<std::uint64_t> inserted_keys;  // fills only: erased on abort

  // Placement pass — allocations only, no data movement yet, so an OOM can
  // abort cleanly into the monolithic fallback (cache untouched, nothing
  // pre-paid). Indivisible inputs (aux/broadcast) get full-size device
  // buffers; splittable ones either fill a cache slot chunk-by-chunk or
  // ride the staging ring.
  bool placed = true;
  for (auto& in : work->inputs) {
    ChunkBuf b;
    b.host = in.host.get();
    b.bytes = in.bytes;
    b.stride = in.item_stride;
    bool cache_hit = false;
    bool cache_fill = false;
    if (in.cache) {
      auto hit = memory_->lookup_pinned(gpu_index, work->job_id, in.cache_key);
      if (hit && hit->bytes >= in.bytes) {
        b.device_base = hit->ptr;
        cache_hit = true;  // the paper's avoided PCIe transfer
        pinned_keys.push_back(in.cache_key);
      } else {
        if (hit) memory_->unpin(gpu_index, work->job_id, in.cache_key);  // undersized hit
        if (auto slot = memory_->insert(gpu_index, work->job_id, in.cache_key, in.bytes)) {
          b.device_base = slot->ptr;
          cache_fill = true;
          pinned_keys.push_back(in.cache_key);
          inserted_keys.push_back(in.cache_key);
        }
      }
    }
    if (b.device_base == 0 && (b.stride == 0 || in.cache)) {
      // Indivisible uncached input, or a cacheable one the region declined:
      // full-size transient allocation. (Uncached *splittable* inputs ride
      // the staging ring and need no allocation here.)
      gpu::DevicePtr dptr = co_await api.cuda_malloc(in.bytes);
      if (dptr == 0 && memory_->evict_for_space(gpu_index, work->job_id, in.bytes)) {
        dptr = co_await api.cuda_malloc(in.bytes);
      }
      if (dptr == 0) {
        placed = false;  // ring + full-size buffers exceed the device
        break;
      }
      temporaries.push_back(dptr);
      b.device_base = dptr;
    }
    if (!cache_hit) {
      b.upfront_h2d = b.stride == 0;
      b.h2d = b.stride != 0;  // chunk-wise H2D (into ring, cache slot, or temporary)
      b.prefill_shadow = cache_fill && b.stride != 0;
    }
    ctx.buffers.push_back(b);
  }
  if (!placed) {
    for (gpu::DevicePtr t : temporaries) {
      co_await api.cuda_free(t);
    }
    for (std::uint64_t key : inserted_keys) {
      memory_->erase(gpu_index, work->job_id, key);  // releases this pin too
    }
    for (std::uint64_t key : pinned_keys) {
      if (std::find(inserted_keys.begin(), inserted_keys.end(), key) == inserted_keys.end()) {
        memory_->unpin(gpu_index, work->job_id, key);
      }
    }
    co_await sim_->delay(api.jni_overhead() + api.stub().overheads().free_cost);
    memory_->release_staging(gpu_index, ring);
    stage_h2d_ns_.fetch_add(sim_->now() - stage1_begin, std::memory_order_relaxed);
    co_return false;
  }

  // Transfer pass: now that every placement is secured, move the upfront
  // data.
  for (ChunkBuf& b : ctx.buffers) {
    if (b.upfront_h2d) {
      // Indivisible (aux/broadcast): one whole transfer before the
      // pipeline starts; every chunk kernel binds the full buffer.
      co_await api.memcpy_h2d(b.device_base, *b.host, 0, b.bytes, label);
    } else if (b.prefill_shadow) {
      // The entry is visible to concurrent streams from the moment
      // insert() returned; make its real bytes coherent now — the chunk
      // DMAs below model the transfer *time* and rewrite the same bytes.
      std::memcpy(api.device().memory().shadow(b.device_base, b.bytes), b.host->data(), b.bytes);
    }
  }
  for (auto& out : work->outputs) {
    ChunkBuf b;
    b.host = out.host.get();
    b.bytes = out.bytes;
    b.stride = out.item_stride;
    b.is_output = true;
    ctx.buffers.push_back(b);
  }

  // Ring sub-layout: consecutive per-buffer lanes inside each slot.
  std::uint64_t lane = 0;
  for (ChunkBuf& b : ctx.buffers) {
    if (b.device_base != 0 || b.stride == 0) continue;
    b.ring_offset = lane;
    lane += b.stride * plan.items_per_chunk;
  }
  GFLINK_CHECK(lane <= slot_stride);
  stage_h2d_ns_.fetch_add(sim_->now() - stage1_begin, std::memory_order_relaxed);

  // The pipeline: one coroutine per chunk, admitted by the free-slot channel
  // (depth = staging slots). Engine mutexes are FIFO, so chunks proceed in
  // issue order through each stage.
  sim::Channel<int> free_slots(*sim_, depth);
  sim::WaitGroup wg(*sim_);
  ctx.free_slots = &free_slots;
  ctx.wg = &wg;
  for (std::size_t s = 0; s < depth; ++s) {
    const bool ok = free_slots.try_send(static_cast<int>(s));
    GFLINK_CHECK(ok);
  }
  wg.add(static_cast<int>(plan.num_chunks));
  for (std::size_t c = 0; c < plan.num_chunks; ++c) {
    sim_->spawn(run_chunk(ctx, c));
  }
  co_await wg.wait();
  stage_h2d_ns_.fetch_add(ctx.h2d_ns, std::memory_order_relaxed);
  stage_kernel_ns_.fetch_add(ctx.kernel_ns, std::memory_order_relaxed);
  stage_d2h_ns_.fetch_add(ctx.d2h_ns, std::memory_order_relaxed);

  const sim::Time teardown_begin = sim_->now();
  co_await sim_->delay(api.jni_overhead() + api.stub().overheads().free_cost);
  memory_->release_staging(gpu_index, ring);
  for (gpu::DevicePtr t : temporaries) {
    co_await api.cuda_free(t);
  }
  for (std::uint64_t key : pinned_keys) {
    memory_->unpin(gpu_index, work->job_id, key);
  }
  stage_d2h_ns_.fetch_add(sim_->now() - teardown_begin, std::memory_order_relaxed);

  chunked_works_.fetch_add(1, std::memory_order_relaxed);
  chunks_total_.fetch_add(plan.num_chunks, std::memory_order_relaxed);
  work->executed_chunks = plan.num_chunks;
  if (spans_ != nullptr) {
    spans_->annotate(gspan, "chunks", std::to_string(plan.num_chunks));
    spans_->annotate(gspan, "cache_hits",
                     std::to_string(pinned_keys.size() - inserted_keys.size()));
    spans_->annotate(gspan, "cache_misses", std::to_string(inserted_keys.size()));
  }
  finish(work, gpu_index);
  co_return true;
}

sim::Co<void> GStreamManager::execute(StreamWorker* w, const GWorkPtr& work) {
  gpu::CudaWrapper& api = *wrappers_.at(static_cast<std::size_t>(w->gpu));
  const int gpu_index = w->gpu;
  work->executed_on_gpu = gpu_index;
  work->executed_on_stream = w->stream_id;

  obs::SpanId gspan = 0;
  if (spans_ != nullptr) {
    gspan = spans_->open("gwork:" + work->execute_name, obs::SpanCategory::Control, work->span,
                        sim_->now(), gpu_lane(gpu_index), node_id_);
  }

  if (ChunkPlan plan; chunk_plan(*work, plan)) {
    if (co_await execute_chunked(w, work, plan, gspan)) {
      if (spans_ != nullptr) spans_->close(gspan, sim_->now());
      co_return;
    }
    chunk_fallbacks_.fetch_add(1, std::memory_order_relaxed);  // ring unavailable: monolithic fallback below
    if (spans_ != nullptr) spans_->annotate(gspan, "chunk_fallback", "staging ring unavailable");
  }

  if (work->use_mapped_memory) {
    // Zero-copy path: bind the host buffers directly; the kernel streams
    // them across PCIe (§4.1.2). No allocations, no copy engines.
    GFLINK_CHECK_MSG(!work->inputs.empty(), "mapped GWork needs buffers");
    std::vector<std::span<std::byte>> spans;
    spans.reserve(work->inputs.size() + work->outputs.size());
    for (auto& in : work->inputs) {
      GFLINK_CHECK_MSG(!in.cache, "mapped memory and GPU caching are exclusive");
      spans.emplace_back(in.host->data(), in.bytes);
    }
    for (auto& out : work->outputs) {
      spans.emplace_back(out.host->data(), out.bytes);
    }
    const gpu::Kernel& kernel = gpu::KernelRegistry::global().lookup(work->execute_name);
    const sim::Time kernel_begin = sim_->now();
    co_await api.device().launch_mapped(kernel, std::move(spans), work->size, work->layout,
                                        work->execute_name);
    stage_kernel_ns_.fetch_add(sim_->now() - kernel_begin, std::memory_order_relaxed);
    if (spans_ != nullptr) {
      spans_->record("kernel", obs::SpanCategory::Kernel, gspan, kernel_begin, sim_->now(),
                     gpu_lane(gpu_index), node_id_);
      spans_->annotate(gspan, "mapped_memory", "1");
      spans_->close(gspan, sim_->now());
    }
    finish(work, gpu_index);
    co_return;
  }

  const std::string label = work->execute_name;
  const sim::Time stage1_begin = sim_->now();
  std::vector<gpu::GpuDevice::BufferBinding> bindings;
  bindings.reserve(work->inputs.size() + work->outputs.size());
  std::vector<gpu::DevicePtr> temporaries;
  std::vector<std::uint64_t> pinned_keys;    // cache entries in use by this GWork
  std::vector<std::uint64_t> inserted_keys;  // subset of pinned_keys we created
  std::vector<bool> input_needs_transfer;    // parallel to work->inputs

  // Stage 1a: place every buffer (inputs honouring the GPU cache, then
  // outputs) before moving any data. Cached entries are pinned for the
  // duration of the GWork so a concurrent stream cannot evict (and the
  // allocator reuse) device memory we are still reading. If placement
  // fails even after cache eviction — concurrent streams hold the rest of
  // the device — release everything we grabbed and retry after a backoff:
  // holding nothing while waiting means no hold-and-wait, so streams can
  // never deadlock on each other, and the work proceeds once the device
  // drains.
  int oom_backoffs = 0;
  for (int attempt = 0;; ++attempt) {
    bool placed = true;
    for (auto& in : work->inputs) {
      gpu::DevicePtr dptr = 0;
      bool need_transfer = true;
      if (in.cache) {
        auto hit = memory_->lookup_pinned(gpu_index, work->job_id, in.cache_key);
        if (hit && hit->bytes >= in.bytes) {
          dptr = hit->ptr;
          pinned_keys.push_back(in.cache_key);
          need_transfer = false;  // the paper's avoided PCIe transfer
        } else {
          if (hit) memory_->unpin(gpu_index, work->job_id, in.cache_key);  // undersized hit
          if (auto slot = memory_->insert(gpu_index, work->job_id, in.cache_key, in.bytes)) {
            dptr = slot->ptr;  // region allocation: no cudaMalloc on the hot path
            pinned_keys.push_back(in.cache_key);
            inserted_keys.push_back(in.cache_key);
          }
        }
      }
      if (dptr == 0) {
        dptr = co_await api.cuda_malloc(in.bytes);
        if (dptr == 0 && memory_->evict_for_space(gpu_index, work->job_id, in.bytes)) {
          dptr = co_await api.cuda_malloc(in.bytes);  // retry after cache relief
        }
        if (dptr == 0) {
          placed = false;
          break;
        }
        temporaries.push_back(dptr);
      }
      bindings.push_back({dptr, in.bytes});
      input_needs_transfer.push_back(need_transfer);
    }
    if (placed) {
      // Output allocations (released automatically after D2H).
      for (auto& out : work->outputs) {
        gpu::DevicePtr dptr = co_await api.cuda_malloc(out.bytes);
        if (dptr == 0 && memory_->evict_for_space(gpu_index, work->job_id, out.bytes)) {
          dptr = co_await api.cuda_malloc(out.bytes);
        }
        if (dptr == 0) {
          placed = false;
          break;
        }
        temporaries.push_back(dptr);
        bindings.push_back({dptr, out.bytes});
      }
    }
    if (placed) break;

    // Undo this attempt completely before sleeping.
    for (gpu::DevicePtr t : temporaries) {
      co_await api.cuda_free(t);
    }
    temporaries.clear();
    for (std::uint64_t key : inserted_keys) {
      memory_->erase(gpu_index, work->job_id, key);
    }
    for (std::uint64_t key : pinned_keys) {
      if (std::find(inserted_keys.begin(), inserted_keys.end(), key) == inserted_keys.end()) {
        memory_->unpin(gpu_index, work->job_id, key);
      }
    }
    pinned_keys.clear();
    inserted_keys.clear();
    bindings.clear();
    input_needs_transfer.clear();
    GFLINK_CHECK_MSG(attempt < 1000, "device OOM: GWork buffers never fit");
    oom_retries_.fetch_add(1, std::memory_order_relaxed);
    ++oom_backoffs;
    // Exponential growth (capped at 1024x): the base is a config-scale
    // latency, but how long until concurrent works release their buffers
    // is set by transfer/kernel durations, which the scale knob does not
    // shrink the same way — growing the backoff adapts to either regime.
    co_await sim_->delay(config_.oom_retry_backoff << std::min(attempt, 10));
  }

  // Stage 1b: H2D input transfers into the placed buffers.
  for (std::size_t i = 0; i < work->inputs.size(); ++i) {
    if (!input_needs_transfer[i]) continue;
    auto& in = work->inputs[i];
    co_await api.memcpy_h2d(bindings[i].ptr, *in.host, 0, in.bytes, label);
  }

  // Stage 2: kernel execution.
  const sim::Time stage2_begin = sim_->now();
  stage_h2d_ns_.fetch_add(stage2_begin - stage1_begin, std::memory_order_relaxed);
  co_await api.launch_kernel(work->execute_name, bindings, work->size, work->layout,
                             work->block_size, work->grid_size, work->params.get(), label);

  // Stage 3: D2H result transfers.
  const sim::Time stage3_begin = sim_->now();
  stage_kernel_ns_.fetch_add(stage3_begin - stage2_begin, std::memory_order_relaxed);
  std::size_t binding_index = work->inputs.size();
  for (auto& out : work->outputs) {
    co_await api.memcpy_d2h(*out.host, 0, bindings[binding_index].ptr, out.bytes, label);
    ++binding_index;
  }

  for (gpu::DevicePtr t : temporaries) {
    co_await api.cuda_free(t);
  }
  for (std::uint64_t key : pinned_keys) {
    memory_->unpin(gpu_index, work->job_id, key);
  }
  stage_d2h_ns_.fetch_add(sim_->now() - stage3_begin, std::memory_order_relaxed);

  if (spans_ != nullptr) {
    const std::string lane = gpu_lane(gpu_index);
    if (stage2_begin > stage1_begin) {
      spans_->record("h2d", obs::SpanCategory::H2D, gspan, stage1_begin, stage2_begin, lane,
                     node_id_);
    }
    if (stage3_begin > stage2_begin) {
      spans_->record("kernel", obs::SpanCategory::Kernel, gspan, stage2_begin, stage3_begin,
                     lane, node_id_);
    }
    if (sim_->now() > stage3_begin) {
      spans_->record("d2h", obs::SpanCategory::D2H, gspan, stage3_begin, sim_->now(), lane,
                     node_id_);
    }
    spans_->annotate(gspan, "cache_hits",
                     std::to_string(pinned_keys.size() - inserted_keys.size()));
    spans_->annotate(gspan, "cache_misses", std::to_string(inserted_keys.size()));
    if (oom_backoffs > 0) {
      spans_->annotate(gspan, "oom_retries", std::to_string(oom_backoffs));
    }
    spans_->close(gspan, sim_->now());
  }

  finish(work, gpu_index);
}

void GStreamManager::finish(const GWorkPtr& work, int gpu_index) {
  executed_[static_cast<std::size_t>(gpu_index)].fetch_add(1, std::memory_order_relaxed);
  work->finished_at = sim_->now();
  if (work->preferred_gpu >= 0) {
    if (work->executed_on_gpu == work->preferred_gpu) {
      locality_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      locality_misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (latency_hist_ != nullptr) {
    latency_hist_->add(static_cast<double>(work->finished_at - work->submitted_at));
  }
  work->done->fire();
}

void GStreamManager::export_metrics(obs::MetricsRegistry& out) const {
  for (std::size_t g = 0; g < executed_.size(); ++g) {
    out.counter("gstream_executed_total", {{"gpu", std::to_string(g)}})
        .inc(static_cast<double>(executed_[g]));
  }
  out.counter("gstream_steals_total").inc(static_cast<double>(steals_));
  out.counter("gstream_priority_bypass_total").inc(static_cast<double>(priority_bypasses_));
  out.counter("gstream_cross_bulk_total").inc(static_cast<double>(cross_bulk_));
  out.counter("gstream_freed_streams_total").inc(static_cast<double>(freed_count_));
  out.counter("gstream_locality_hits_total").inc(static_cast<double>(locality_hits_));
  out.counter("gstream_locality_misses_total").inc(static_cast<double>(locality_misses_));
  out.counter("gstream_chunked_works_total").inc(static_cast<double>(chunked_works_));
  out.counter("gstream_chunks_total").inc(static_cast<double>(chunks_total_));
  out.counter("gstream_chunk_fallbacks_total").inc(static_cast<double>(chunk_fallbacks_));
  out.counter("gstream_oom_retries_total").inc(static_cast<double>(oom_retries_));
  out.counter("gpu_stage_busy_ns", {{"stage", "h2d"}}).inc(static_cast<double>(stage_h2d_ns_));
  out.counter("gpu_stage_busy_ns", {{"stage", "kernel"}})
      .inc(static_cast<double>(stage_kernel_ns_));
  out.counter("gpu_stage_busy_ns", {{"stage", "d2h"}}).inc(static_cast<double>(stage_d2h_ns_));
}

}  // namespace gflink::core
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
