#include "core/gstream_manager.hpp"

#include <algorithm>

namespace gflink::core {

GStreamManager::GStreamManager(sim::Simulation& sim, std::vector<gpu::CudaWrapper*> wrappers,
                               GMemoryManager& memory, const GStreamConfig& config,
                               obs::MetricsRegistry* registry)
    : sim_(&sim), wrappers_(std::move(wrappers)), memory_(&memory), config_(config) {
  GFLINK_CHECK(!wrappers_.empty());
  GFLINK_CHECK(config_.streams_per_gpu >= 1);
  if (registry != nullptr) {
    queue_depth_hist_ = &registry->histogram("gstream_queue_depth", 0.0, 256.0, 64);
    latency_hist_ = &registry->histogram("gwork_latency_ns", 0.0, 5.0e7, 100);
  }
  pool_.resize(wrappers_.size());
  executed_.assign(wrappers_.size(), 0);
  bulks_.resize(wrappers_.size());
  for (std::size_t g = 0; g < wrappers_.size(); ++g) {
    for (int s = 0; s < config_.streams_per_gpu; ++s) {
      auto w = std::make_unique<StreamWorker>();
      w->gpu = static_cast<int>(g);
      w->stream_id = s;
      w->inbox = std::make_unique<sim::Channel<GWorkPtr>>(sim, 1);
      // The GStream Pool starts with live stream threads (paper Fig. 4);
      // they idle-timeout into the freed state and are revived on demand.
      w->freed = false;
      bulks_[g].push_back(std::move(w));
      sim_->spawn(worker_loop(bulks_[g].back().get()));
    }
  }
}

GStreamManager::StreamWorker* GStreamManager::idle_stream_in_bulk(int gpu) {
  for (auto& w : bulks_.at(static_cast<std::size_t>(gpu))) {
    if (w->idle && !w->freed) return w.get();
  }
  return nullptr;
}

int GStreamManager::bulk_with_most_idle() const {
  int best = -1, best_count = 0;
  for (std::size_t g = 0; g < bulks_.size(); ++g) {
    int count = 0;
    for (const auto& w : bulks_[g]) {
      if (w->idle && !w->freed) ++count;
    }
    if (count > best_count) {
      best_count = count;
      best = static_cast<int>(g);
    }
  }
  return best;
}

int GStreamManager::shortest_queue() const {
  int best = 0;
  std::size_t best_depth = pool_[0].size();
  for (std::size_t g = 1; g < pool_.size(); ++g) {
    if (pool_[g].size() < best_depth) {
      best_depth = pool_[g].size();
      best = static_cast<int>(g);
    }
  }
  return best;
}

GStreamManager::StreamWorker* GStreamManager::select_stream(int preferred_gpu) {
  // Algorithm 5.1, lines 2-10.
  if (preferred_gpu >= 0) {
    if (StreamWorker* w = idle_stream_in_bulk(preferred_gpu)) return w;
    const int most_idle = bulk_with_most_idle();
    if (most_idle >= 0) {
      ++cross_bulk_;
      return idle_stream_in_bulk(most_idle);
    }
    return nullptr;
  }
  const int most_idle = bulk_with_most_idle();
  return most_idle >= 0 ? idle_stream_in_bulk(most_idle) : nullptr;
}

void GStreamManager::submit(const GWorkPtr& work) {
  GFLINK_CHECK_MSG(work->done == nullptr, "GWork submitted twice");
  work->done = std::make_shared<sim::Trigger>(*sim_);
  work->submitted_at = sim_->now();
  // Record what Algorithm 5.1's probe would prefer regardless of the active
  // policy, so the locality hit/miss metric is comparable across ablations.
  work->preferred_gpu = memory_->best_device_for(*work);

  int preferred = -1;
  switch (config_.policy) {
    case SchedulingPolicy::LocalityAware:
      preferred = work->preferred_gpu;
      break;
    case SchedulingPolicy::RoundRobin:
      preferred = round_robin_cursor_;
      round_robin_cursor_ = (round_robin_cursor_ + 1) % num_gpus();
      break;
    case SchedulingPolicy::Random:
      preferred = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(num_gpus())));
      break;
  }

  if (StreamWorker* w = select_stream(preferred)) {
    w->idle = false;
    ++w->idle_generation;  // invalidate any pending idle-timeout
    const bool sent = w->inbox->try_send(work);
    GFLINK_CHECK(sent);
    return;
  }

  // Algorithm 5.1, lines 11-18: no idle stream anywhere — queue the work.
  const int queue = preferred >= 0 ? preferred : shortest_queue();
  pool_[static_cast<std::size_t>(queue)].push_back(work);
  if (queue_depth_hist_ != nullptr) {
    queue_depth_hist_->add(static_cast<double>(pool_[static_cast<std::size_t>(queue)].size()));
  }
  ensure_alive(queue);
}

GWorkPtr GStreamManager::steal(int gpu) {
  // Algorithm 5.2.
  auto& own = pool_[static_cast<std::size_t>(gpu)];
  if (!own.empty()) {
    GWorkPtr w = own.front();
    own.pop_front();
    return w;
  }
  std::size_t longest = 0, depth = 0;
  for (std::size_t g = 0; g < pool_.size(); ++g) {
    if (pool_[g].size() > depth) {
      depth = pool_[g].size();
      longest = g;
    }
  }
  if (depth == 0) return nullptr;
  GWorkPtr w = pool_[longest].front();
  pool_[longest].pop_front();
  ++steals_;
  w->was_stolen = true;
  return w;
}

void GStreamManager::ensure_alive(int gpu) {
  for (auto& w : bulks_.at(static_cast<std::size_t>(gpu))) {
    if (w->freed) {
      w->freed = false;
      w->idle = false;
      sim_->spawn(worker_loop(w.get()));
      return;  // one revived stream will drain the queue (and steal more)
    }
  }
}

sim::Co<void> GStreamManager::worker_loop(StreamWorker* w) {
  while (true) {
    // Drain work: own queue first, then steal (Algorithm 5.2).
    while (GWorkPtr work = steal(w->gpu)) {
      co_await execute(w, work);
    }
    // Nothing queued: park until the scheduler assigns work directly, or
    // the idle timeout frees this stream's thread (paper §5.3).
    w->idle = true;
    const std::uint64_t my_generation = ++w->idle_generation;
    sim_->schedule_in(config_.idle_timeout, [this, w, my_generation] {
      if (w->idle && !w->freed && w->idle_generation == my_generation) {
        w->inbox->try_send(nullptr);  // timeout sentinel
      }
    });
    auto assigned = co_await w->inbox->recv();
    if (!assigned.has_value() || *assigned == nullptr) {
      // Timed out: free the thread.
      w->idle = false;
      w->freed = true;
      ++freed_count_;
      co_return;
    }
    w->idle = false;
    co_await execute(w, *assigned);
  }
}

sim::Co<void> GStreamManager::execute(StreamWorker* w, const GWorkPtr& work) {
  gpu::CudaWrapper& api = *wrappers_.at(static_cast<std::size_t>(w->gpu));
  const int gpu_index = w->gpu;
  work->executed_on_gpu = gpu_index;
  work->executed_on_stream = w->stream_id;

  if (work->use_mapped_memory) {
    // Zero-copy path: bind the host buffers directly; the kernel streams
    // them across PCIe (§4.1.2). No allocations, no copy engines.
    GFLINK_CHECK_MSG(!work->inputs.empty(), "mapped GWork needs buffers");
    std::vector<std::span<std::byte>> spans;
    spans.reserve(work->inputs.size() + work->outputs.size());
    for (auto& in : work->inputs) {
      GFLINK_CHECK_MSG(!in.cache, "mapped memory and GPU caching are exclusive");
      spans.emplace_back(in.host->data(), in.bytes);
    }
    for (auto& out : work->outputs) {
      spans.emplace_back(out.host->data(), out.bytes);
    }
    const gpu::Kernel& kernel = gpu::KernelRegistry::global().lookup(work->execute_name);
    const sim::Time kernel_begin = sim_->now();
    co_await api.device().launch_mapped(kernel, std::move(spans), work->size, work->layout,
                                        work->execute_name);
    stage_kernel_ns_ += sim_->now() - kernel_begin;
    finish(work, gpu_index);
    co_return;
  }

  const std::string label = work->execute_name;
  const sim::Time stage1_begin = sim_->now();
  std::vector<gpu::GpuDevice::BufferBinding> bindings;
  bindings.reserve(work->inputs.size() + work->outputs.size());
  std::vector<gpu::DevicePtr> temporaries;
  std::vector<std::uint64_t> pinned_keys;  // cache entries in use by this GWork

  // Stage 1: H2D input transfers, honouring the GPU cache. Cached entries
  // are pinned for the duration of the GWork so a concurrent stream cannot
  // evict (and the allocator reuse) device memory we are still reading.
  for (auto& in : work->inputs) {
    gpu::DevicePtr dptr = 0;
    bool need_transfer = true;
    if (in.cache) {
      auto hit = memory_->lookup_pinned(gpu_index, work->job_id, in.cache_key);
      if (hit && hit->bytes >= in.bytes) {
        dptr = hit->ptr;
        pinned_keys.push_back(in.cache_key);
        need_transfer = false;  // the paper's avoided PCIe transfer
      } else {
        if (hit) memory_->unpin(gpu_index, work->job_id, in.cache_key);  // undersized hit
        if (auto slot = memory_->insert(gpu_index, work->job_id, in.cache_key, in.bytes)) {
          dptr = slot->ptr;  // region allocation: no cudaMalloc on the hot path
          pinned_keys.push_back(in.cache_key);
        }
      }
    }
    if (dptr == 0) {
      dptr = co_await api.cuda_malloc(in.bytes);
      if (dptr == 0 && memory_->evict_for_space(gpu_index, work->job_id, in.bytes)) {
        dptr = co_await api.cuda_malloc(in.bytes);  // retry after cache relief
      }
      GFLINK_CHECK_MSG(dptr != 0, "device OOM for GWork input");
      temporaries.push_back(dptr);
    }
    if (need_transfer) {
      co_await api.memcpy_h2d(dptr, *in.host, 0, in.bytes, label);
    }
    bindings.push_back({dptr, in.bytes});
  }

  // Output allocations (released automatically after D2H).
  for (auto& out : work->outputs) {
    gpu::DevicePtr dptr = co_await api.cuda_malloc(out.bytes);
    if (dptr == 0 && memory_->evict_for_space(gpu_index, work->job_id, out.bytes)) {
      dptr = co_await api.cuda_malloc(out.bytes);
    }
    GFLINK_CHECK_MSG(dptr != 0, "device OOM for GWork output");
    temporaries.push_back(dptr);
    bindings.push_back({dptr, out.bytes});
  }

  // Stage 2: kernel execution.
  const sim::Time stage2_begin = sim_->now();
  stage_h2d_ns_ += stage2_begin - stage1_begin;
  co_await api.launch_kernel(work->execute_name, bindings, work->size, work->layout,
                             work->block_size, work->grid_size, work->params.get(), label);

  // Stage 3: D2H result transfers.
  const sim::Time stage3_begin = sim_->now();
  stage_kernel_ns_ += stage3_begin - stage2_begin;
  std::size_t binding_index = work->inputs.size();
  for (auto& out : work->outputs) {
    co_await api.memcpy_d2h(*out.host, 0, bindings[binding_index].ptr, out.bytes, label);
    ++binding_index;
  }

  for (gpu::DevicePtr t : temporaries) {
    co_await api.cuda_free(t);
  }
  for (std::uint64_t key : pinned_keys) {
    memory_->unpin(gpu_index, work->job_id, key);
  }
  stage_d2h_ns_ += sim_->now() - stage3_begin;

  finish(work, gpu_index);
}

void GStreamManager::finish(const GWorkPtr& work, int gpu_index) {
  ++executed_[static_cast<std::size_t>(gpu_index)];
  work->finished_at = sim_->now();
  if (work->preferred_gpu >= 0) {
    if (work->executed_on_gpu == work->preferred_gpu) {
      ++locality_hits_;
    } else {
      ++locality_misses_;
    }
  }
  if (latency_hist_ != nullptr) {
    latency_hist_->add(static_cast<double>(work->finished_at - work->submitted_at));
  }
  work->done->fire();
}

void GStreamManager::export_metrics(obs::MetricsRegistry& out) const {
  for (std::size_t g = 0; g < executed_.size(); ++g) {
    out.counter("gstream_executed_total", {{"gpu", std::to_string(g)}})
        .inc(static_cast<double>(executed_[g]));
  }
  out.counter("gstream_steals_total").inc(static_cast<double>(steals_));
  out.counter("gstream_cross_bulk_total").inc(static_cast<double>(cross_bulk_));
  out.counter("gstream_freed_streams_total").inc(static_cast<double>(freed_count_));
  out.counter("gstream_locality_hits_total").inc(static_cast<double>(locality_hits_));
  out.counter("gstream_locality_misses_total").inc(static_cast<double>(locality_misses_));
  out.counter("gpu_stage_busy_ns", {{"stage", "h2d"}}).inc(static_cast<double>(stage_h2d_ns_));
  out.counter("gpu_stage_busy_ns", {{"stage", "kernel"}})
      .inc(static_cast<double>(stage_kernel_ns_));
  out.counter("gpu_stage_busy_ns", {{"stage", "d2h"}}).inc(static_cast<double>(stage_d2h_ns_));
}

}  // namespace gflink::core
