// Clang thread-safety annotations and the annotated host-plane mutex.
//
// GFlink has two concurrency planes (docs/ARCHITECTURE.md, "Concurrency
// invariants & lock hierarchy"):
//  * the simulation plane — coroutines multiplexed on one thread by
//    sim::Simulation; its state (sim::*, GWork queues, stream bulks) is
//    simulation-thread-confined and needs no locks;
//  * the host plane — objects that outlive or sit beside the event loop
//    (metric registries, cache/region tables, DFS metadata, shuffle
//    accounting) and are touched by constructors, exporters, report
//    writers and external driver threads.
// Host-plane shared state is guarded by core::Mutex and annotated with the
// macros below so `clang++ -Wthread-safety -Werror=thread-safety` proves
// the lock discipline at compile time. GCC compiles the macros away.
//
// Rules enforced by tools/gflint.py:
//  * never declare a raw std::mutex member — use core::Mutex so the
//    capability attributes exist on every toolchain;
//  * every core::Mutex member must be referenced by at least one
//    GFLINK_GUARDED_BY / GFLINK_PT_GUARDED_BY / GFLINK_REQUIRES /
//    GFLINK_ACQUIRE / GFLINK_EXCLUDES annotation in the same file.
//
// Never hold a core::Mutex across a co_await: suspension can resume the
// coroutine after arbitrary other work, and std::mutex is not recursive.
// Lock, mutate, unlock — then await.
#pragma once

#include <mutex>

#if defined(__clang__)
#define GFLINK_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define GFLINK_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability (clang: `capability("mutex")`).
#define GFLINK_CAPABILITY(x) GFLINK_THREAD_ANNOTATION__(capability(x))
/// Marks an RAII type whose lifetime equals a critical section.
#define GFLINK_SCOPED_CAPABILITY GFLINK_THREAD_ANNOTATION__(scoped_lockable)
/// Data member readable/writable only while holding the given mutex.
#define GFLINK_GUARDED_BY(x) GFLINK_THREAD_ANNOTATION__(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the given mutex.
#define GFLINK_PT_GUARDED_BY(x) GFLINK_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Function requires the given mutex(es) to be held by the caller.
#define GFLINK_REQUIRES(...) GFLINK_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
/// Function acquires the mutex(es) and holds them on return.
#define GFLINK_ACQUIRE(...) GFLINK_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
/// Function releases the mutex(es).
#define GFLINK_RELEASE(...) GFLINK_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
/// Function acquires the mutex iff it returns the given value.
#define GFLINK_TRY_ACQUIRE(...) GFLINK_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
/// Function must be called WITHOUT the mutex(es) held (deadlock guard).
#define GFLINK_EXCLUDES(...) GFLINK_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Declares lock-ordering: this mutex is acquired before the listed ones.
#define GFLINK_ACQUIRED_BEFORE(...) GFLINK_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
/// Declares lock-ordering: this mutex is acquired after the listed ones.
#define GFLINK_ACQUIRED_AFTER(...) GFLINK_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
/// Escape hatch for quiescent-state accessors (document why at each use).
#define GFLINK_NO_THREAD_SAFETY_ANALYSIS GFLINK_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace gflink::core {

/// Host-plane mutex: std::mutex with the capability attributes clang's
/// analysis needs (libstdc++ ships std::mutex without them). Use this —
/// never raw std::mutex — for any member guarding host-plane shared state.
class GFLINK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GFLINK_ACQUIRE() { mu_.lock(); }
  void unlock() GFLINK_RELEASE() { mu_.unlock(); }
  bool try_lock() GFLINK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII critical section over core::Mutex (the std::lock_guard shape, but
/// visible to the analysis as a scoped capability).
class GFLINK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GFLINK_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GFLINK_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace gflink::core
