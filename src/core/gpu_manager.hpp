// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// GpuManager: the per-worker component that owns everything GPU-side
// (paper §3.4, Fig. 1b) — the devices, the JNI communication layers
// (CUDAWrapper/CUDAStub), GMemoryManager and GStreamManager.
//
// One GpuManager is installed as the `extension` of each dataflow Worker;
// GPU-based mappers/reducers retrieve it from their TaskContext.
#pragma once

#include <memory>
#include <vector>

#include "core/gmemory_manager.hpp"
#include "core/gstream_manager.hpp"
#include "dataflow/engine.hpp"
#include "gpu/api.hpp"
#include "gpu/device.hpp"
#include "gpu/device_spec.hpp"

namespace gflink::core {

struct GpuManagerConfig {
  /// One entry per GPU on the worker (the paper's testbed: 2x Tesla C2050).
  std::vector<gpu::DeviceSpec> devices = {gpu::DeviceSpec::c2050(), gpu::DeviceSpec::c2050()};
  GStreamConfig streams;
  /// Per-job, per-device cache region capacity (a user parameter in GFlink).
  std::uint64_t cache_region_bytes = 512ULL << 20;
  CachePolicy cache_policy = CachePolicy::Fifo;
  /// JNI control-channel overhead per wrapped call.
  sim::Duration jni_overhead = sim::nanos(200);
  gpu::StubOverheads stub_overheads;
};

class GpuManager {
 public:
  /// `registry` (optional) is the observability sink for scheduler
  /// distributions; the tracer covers per-lane timelines. `spans`
  /// (optional) records per-GWork causal spans; `flight` (optional)
  /// receives cache-eviction and staging-failure flight events.
  GpuManager(sim::Simulation& sim, int node_id, const GpuManagerConfig& config,
             sim::Tracer* tracer, obs::MetricsRegistry* registry = nullptr,
             obs::SpanStore* spans = nullptr, obs::FlightRecorder* flight = nullptr);

  int node_id() const { return node_id_; }
  int num_devices() const { return static_cast<int>(devices_.size()); }
  gpu::GpuDevice& device(int i) { return *devices_.at(static_cast<std::size_t>(i)); }
  const gpu::GpuDevice& device(int i) const { return *devices_.at(static_cast<std::size_t>(i)); }
  gpu::CudaWrapper& wrapper(int i) { return *wrappers_.at(static_cast<std::size_t>(i)); }
  GMemoryManager& memory() { return *memory_; }
  const GMemoryManager& memory() const { return *memory_; }
  GStreamManager& streams() { return *streams_; }
  const GStreamManager& streams() const { return *streams_; }

  /// Publish this worker's GPU-side state: per-device engine busy time and
  /// byte counts, cache totals, and the scheduler's counters.
  void export_metrics(obs::MetricsRegistry& out) const;

  /// Submit a GWork and await its completion (the producer side of the
  /// producer-consumer scheme).
  sim::Co<void> run(const GWorkPtr& work) { return streams_->run(work); }

  /// Release all cache regions of a finished job on this worker.
  void release_job(std::uint64_t job_id) { memory_->release_job(job_id); }

  /// Retrieve the GpuManager from a GPU-based operator's task context.
  static GpuManager& of(dataflow::TaskContext& ctx) {
    auto* mgr = static_cast<GpuManager*>(ctx.extension());
    GFLINK_CHECK_MSG(mgr != nullptr, "no GpuManager installed on this worker");
    return *mgr;
  }

 private:
  int node_id_;
  std::vector<std::unique_ptr<gpu::GpuDevice>> devices_;
  std::vector<std::unique_ptr<gpu::CudaStub>> stubs_;
  std::vector<std::unique_ptr<gpu::CudaWrapper>> wrappers_;
  std::unique_ptr<GMemoryManager> memory_;
  std::unique_ptr<GStreamManager> streams_;
};

/// The heterogeneous-cluster runtime: attaches a GpuManager to every worker
/// of a dataflow engine, turning it into GFlink.
class GFlinkRuntime {
 public:
  GFlinkRuntime(dataflow::Engine& engine, const GpuManagerConfig& config);

  GpuManager& manager(int worker_node) {
    return *managers_.at(static_cast<std::size_t>(worker_node) - 1);
  }
  int num_workers() const { return static_cast<int>(managers_.size()); }

  /// Release a finished job's cache regions cluster-wide.
  void release_job(std::uint64_t job_id) {
    for (auto& m : managers_) m->release_job(job_id);
  }

  // ---- Multi-tenant configuration (JobService) ----------------------------
  // Fan the tenant mapping/quota/priority out to every worker's
  // GMemoryManager / GStreamManager.
  void set_job_tenant(std::uint64_t job_id, const std::string& tenant) {
    for (auto& m : managers_) m->memory().set_job_tenant(job_id, tenant);
  }
  void set_tenant_quota(const std::string& tenant, std::uint64_t bytes) {
    for (auto& m : managers_) m->memory().set_tenant_quota(tenant, bytes);
  }
  void set_tenant_priority(const std::string& tenant, int priority) {
    for (auto& m : managers_) m->streams().set_tenant_priority(tenant, priority);
  }
  /// Cluster-wide cumulative cache bytes inserted by `tenant` (the
  /// achieved-cache-share numerator for fairness reporting).
  std::uint64_t tenant_inserted_bytes(const std::string& tenant) const {
    std::uint64_t n = 0;
    for (const auto& m : managers_) n += m->memory().tenant_inserted_bytes(tenant);
    return n;
  }

  // Cluster-wide statistics.
  std::uint64_t total_cache_hits() const;
  std::uint64_t total_cache_misses() const;
  std::uint64_t total_kernels() const;
  std::uint64_t total_bytes_h2d() const;

  /// Publish every worker's GPU-side metrics into `out`.
  void export_metrics(obs::MetricsRegistry& out) const {
    for (const auto& m : managers_) m->export_metrics(out);
  }

 private:
  std::vector<std::unique_ptr<GpuManager>> managers_;
};

}  // namespace gflink::core
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
