// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// GDST: the GPU-based DataSet programming framework (paper §3.5).
//
// A GPU-based mapper/reducer is expressed as a GpuOpSpec: which kernel to
// invoke, how the data is laid out, whether input blocks should be cached
// on the device, which broadcast (auxiliary) buffers accompany every block,
// and how many output items a block produces. `gpu_map_partition` turns the
// spec into the engine's AsyncPartitionFn: at run time the partition is
// split into page-sized blocks (§5.1 — a GStruct never straddles a page),
// one GWork per block is submitted to the worker's GStreamManager, and the
// per-block outputs are reassembled in order.
//
// Note on layouts: block buffers physically hold AoS GStruct bytes (the
// zero-copy representation); GWork.layout declares the access pattern the
// kernel was written for and drives the coalescing term of the device cost
// model. Real layout transforms are available in mem::RecordBatch and are
// exercised by the layout ablation at the batch level.
#pragma once

#include <functional>

#include "core/gpu_manager.hpp"
#include "dataflow/dataset.hpp"

namespace gflink::core {

struct GpuOpSpec {
  std::string kernel;    // executeName registered in the KernelRegistry
  std::string ptx_path;  // carried for fidelity ("/addPoint.ptx")
  mem::Layout layout = mem::Layout::SoA;

  /// Cache input blocks in the per-job GPU cache region (iterative jobs).
  bool cache_input = false;
  /// Distinguishes datasets of one job in cache keys.
  std::uint32_t cache_namespace = 1;

  /// The kernel is element-wise (output items [a,b) depend only on input
  /// items [a,b) plus broadcast buffers): blocks become chunkable GWork and
  /// flow through the intra-GWork chunked pipeline. Block-level reducers
  /// must leave this false.
  bool chunkable = false;
  /// Per-op chunk size override; 0 = GStreamConfig::chunk_bytes.
  std::uint64_t chunk_bytes = 0;

  /// Output items produced by a block of n input items (identity for pure
  /// maps; constant k for block-level reducers).
  std::function<std::size_t(std::size_t)> out_items;

  /// Broadcast buffers shared by all blocks of a task (e.g. the current
  /// KMeans centers). Built once per task. Entries may set `cache`.
  std::function<std::vector<GBuffer>(dataflow::TaskContext&)> make_aux;

  /// Kernel argument block, built once per task.
  std::function<std::shared_ptr<void>(dataflow::TaskContext&)> make_params;

  int block_size = 256;      // CUDA threads per block
  std::size_t block_bytes = 0;  // data block size; 0 = the engine page size
};

/// Execute a GPU-based mapPartition over one partition: split into blocks,
/// submit one GWork per block (they pipeline across streams), await all,
/// and assemble the output batch in block order.
sim::Co<void> gpu_map_partition_run(dataflow::TaskContext& ctx, const GpuOpSpec& spec,
                                    const mem::RecordBatch& in, mem::RecordBatch& out);

/// Typed facade: build the AsyncPartitionFn for DataSet::async_map_partition.
inline dataflow::AsyncPartitionFn gpu_map_partition(GpuOpSpec spec) {
  auto shared = std::make_shared<GpuOpSpec>(std::move(spec));
  return [shared](dataflow::TaskContext& ctx, const mem::RecordBatch& in,
                  mem::RecordBatch& out) -> sim::Co<void> {
    return gpu_map_partition_run(ctx, *shared, in, out);
  };
}

/// Convenience: apply a GPU mapper to a typed dataset (the gpuMapPartition
/// of the paper's programming framework).
template <typename T, typename U>
dataflow::DataSet<U> gpu_dataset_op(const dataflow::DataSet<T>& in,
                                    const mem::StructDesc* out_desc, std::string name,
                                    GpuOpSpec spec) {
  return in.template async_map_partition<U>(out_desc, std::move(name),
                                            gpu_map_partition(std::move(spec)));
}

/// gpuReduce (paper §3.5.2): a block-level GPU reducer — the kernel folds
/// each data block into a single output record; chain a cheap CPU
/// reduce/reduce_by_key after it to combine the per-block partials.
template <typename T, typename U>
dataflow::DataSet<U> gpu_reduce_op(const dataflow::DataSet<T>& in,
                                   const mem::StructDesc* out_desc, std::string name,
                                   GpuOpSpec spec) {
  spec.out_items = [](std::size_t) { return std::size_t{1}; };
  return gpu_dataset_op<T, U>(in, out_desc, std::move(name), std::move(spec));
}

}  // namespace gflink::core
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
