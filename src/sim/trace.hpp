// Span tracer: records named intervals on named lanes of the virtual
// timeline. Tests use it to assert pipeline structure (e.g. that H2D copies
// of block i+1 overlap the kernel of block i), and benches use it to report
// utilization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace gflink::sim {

struct Span {
  std::string lane;   // e.g. "gpu0/copyH2D", "gpu0/kernel", "node3/nic"
  std::string label;  // e.g. "block 17"
  Time begin = 0;
  Time end = 0;

  Duration duration() const { return end - begin; }
  bool overlaps(const Span& other) const { return begin < other.end && other.begin < end; }
};

class Tracer {
 public:
  /// Enabled tracers store spans; disabled tracers are no-ops (default).
  explicit Tracer(bool enabled = false) : enabled_(enabled) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void record(std::string lane, std::string label, Time begin, Time end) {
    if (!enabled_) return;
    spans_.push_back(Span{std::move(lane), std::move(label), begin, end});
  }

  const std::vector<Span>& spans() const { return spans_; }
  void clear() { spans_.clear(); }

  /// All spans on one lane, in recording order.
  std::vector<Span> lane(const std::string& name) const;

  /// Total busy time on a lane (union of spans; spans on one physical lane
  /// should not overlap, but the union is computed defensively).
  Duration busy_time(const std::string& lane) const;

  /// True if any span on lane `a` overlaps any span on lane `b` in virtual
  /// time — the pipeline-overlap predicate.
  bool lanes_overlap(const std::string& a, const std::string& b) const;

 private:
  bool enabled_;
  std::vector<Span> spans_;
};

}  // namespace gflink::sim
