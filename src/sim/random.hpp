// Deterministic random number generation for workload synthesis.
//
// std::mt19937 + std::distributions are not bit-stable across standard
// library implementations; we ship our own xoshiro256** generator and
// distribution helpers so generated datasets (and therefore every simulated
// timing) are identical on every platform.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/util.hpp"

namespace gflink::sim {

/// splitmix64: used to seed xoshiro from a single 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), public domain reference algorithm.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's method-free
  /// simple modulo (bias is negligible for our n << 2^64 use-cases, and we
  /// value reproducibility over perfect uniformity).
  std::uint64_t next_below(std::uint64_t n) {
    GFLINK_CHECK(n > 0);
    return next_u64() % n;
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform float in [lo, hi).
  float uniformf(float lo, float hi) { return static_cast<float>(uniform(lo, hi)); }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Exponential with the given mean.
  double exponential(double mean) {
    double u = next_double();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

  /// Sample an index from a Zipf(s) distribution over [0, n) using the
  /// precomputed CDF in ZipfTable (see below) — kept here as a convenience
  /// for one-off draws; bulk generation should build a ZipfTable.
  std::uint64_t next_u64_in(std::uint64_t lo, std::uint64_t hi) {
    GFLINK_CHECK(hi > lo);
    return lo + next_below(hi - lo);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

/// Precomputed inverse-CDF sampler for a Zipf(s) distribution over n items.
/// Word frequencies in the WordCount generator follow this, matching the
/// heavy-tailed vocabulary of HiBench's text generator.
class ZipfTable {
 public:
  ZipfTable(std::size_t n, double s) : cdf_(n) {
    GFLINK_CHECK(n > 0);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  std::size_t sample(Rng& rng) const { return sample_u(rng.next_double()); }

  /// Inverse-CDF sample from a uniform in [0,1). Lets callers derive the
  /// uniform from a per-index hash so the draw is independent of any RNG
  /// stream (and therefore of data partitioning).
  std::size_t sample_u(double u) const {
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace gflink::sim
