#include "sim/simulation.hpp"

#include <cinttypes>
#include <cstdio>

namespace gflink::sim {

void Simulation::schedule_at(Time t, UniqueFunction fn) {
  GFLINK_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

Simulation::DetachedTask Simulation::drive(Co<void> co) {
  ++live_processes_;
  co_await std::move(co);
  --live_processes_;
}

void Simulation::spawn(Co<void> co) {
  schedule_in(0, [this, c = std::move(co)]() mutable { drive(std::move(c)); });
}

Time Simulation::run() {
  while (!queue_.empty()) {
    // priority_queue::top() returns const&; the event function is move-only,
    // so we const_cast to move it out before popping. This is safe because
    // the element is removed immediately afterwards.
    auto& top = const_cast<Event&>(queue_.top());
    GFLINK_CHECK(top.t >= now_);
    now_ = top.t;
    UniqueFunction fn = std::move(top.fn);
    queue_.pop();
    ++events_processed_;
    fn();
  }
  return now_;
}

std::uint64_t Simulation::run_until(Time t) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().t <= t) {
    auto& top = const_cast<Event&>(queue_.top());
    now_ = top.t;
    UniqueFunction fn = std::move(top.fn);
    queue_.pop();
    ++events_processed_;
    ++n;
    fn();
  }
  now_ = t;
  return n;
}

}  // namespace gflink::sim
