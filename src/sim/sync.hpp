// Synchronization primitives for simulation coroutines.
//
// All primitives resume waiters through the owning Simulation's event queue
// (at the current virtual time), never synchronously. This gives a single
// well-defined interleaving rule: a woken process runs after all events
// already queued for the current time slot.
//
// Invariants relied on below (single-threaded event loop):
//  * awaiter methods run synchronously inside the awaiting process;
//  * between await_ready() and await_suspend()/await_resume() nothing else
//    runs, so state checked in await_ready cannot change underneath.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>

#include "sim/simulation.hpp"

namespace gflink::sim {

/// One-shot event. Processes `co_await t.wait()`; once `fire()` is called
/// every current and future waiter proceeds immediately.
class Trigger {
 public:
  explicit Trigger(Simulation& sim) : sim_(&sim) {}

  bool fired() const { return fired_; }

  void fire() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) sim_->schedule_in(0, [h] { h.resume(); });
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Trigger* t;
      bool await_ready() const noexcept { return t->fired_; }
      void await_suspend(std::coroutine_handle<> h) { t->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  bool fired_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO waiters. Supports weighted acquire, which
/// models capacity-style resources (memory budgets, slot pools).
class Semaphore {
 public:
  Semaphore(Simulation& sim, std::int64_t initial) : sim_(&sim), count_(initial) {}

  std::int64_t available() const { return count_; }
  std::size_t waiters() const { return waiters_.size(); }

  /// Awaitable: wait until `n` units are available, then take them.
  /// FIFO-fair: a request never overtakes an earlier, larger one.
  auto acquire(std::int64_t n = 1) {
    GFLINK_CHECK(n >= 0);
    return AcquireAwaiter{this, n};
  }

  /// Non-blocking attempt; returns true on success.
  bool try_acquire(std::int64_t n = 1) {
    if (waiters_.empty() && count_ >= n) {
      count_ -= n;
      return true;
    }
    return false;
  }

  /// Return `n` units and wake as many FIFO waiters as now fit.
  void release(std::int64_t n = 1) {
    count_ += n;
    wake_ready();
  }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    std::int64_t n;
  };

  struct AcquireAwaiter {
    Semaphore* s;
    std::int64_t n;
    // Non-const on purpose: the fast path takes the units here.
    bool await_ready() noexcept {
      if (s->waiters_.empty() && s->count_ >= n) {
        s->count_ -= n;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { s->waiters_.push_back({h, n}); }
    // Parked path: wake_ready() already deducted the units before resuming.
    void await_resume() const noexcept {}
  };

  void wake_ready() {
    while (!waiters_.empty() && count_ >= waiters_.front().n) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      count_ -= w.n;
      sim_->schedule_in(0, [h = w.h] { h.resume(); });
    }
  }

  Simulation* sim_;
  std::int64_t count_;
  std::deque<Waiter> waiters_;
};

/// FIFO mutex built for coroutines. `co_await m.lock();` ... `m.unlock();`
class Mutex {
 public:
  explicit Mutex(Simulation& sim) : sem_(sim, 1) {}
  auto lock() { return sem_.acquire(1); }
  bool try_lock() { return sem_.try_acquire(1); }
  void unlock() { sem_.release(1); }
  bool locked() const { return sem_.available() == 0; }

 private:
  Semaphore sem_;
};

/// Wait for a group of processes: add(n) before spawning, done() in each,
/// `co_await wg.wait()` to join.
class WaitGroup {
 public:
  explicit WaitGroup(Simulation& sim) : trigger_(sim) {}

  void add(int n = 1) {
    GFLINK_CHECK_MSG(!trigger_.fired(), "WaitGroup reused after completion");
    count_ += n;
  }
  void done() {
    GFLINK_CHECK_MSG(count_ > 0, "WaitGroup::done without matching add");
    if (--count_ == 0) trigger_.fire();
  }
  auto wait() { return trigger_.wait(); }
  int pending() const { return count_; }

 private:
  Trigger trigger_;
  int count_ = 0;
};

/// FIFO channel of T with optional capacity bound.
///
///   co_await ch.send(v);                       // blocks while full
///   std::optional<T> v = co_await ch.recv();   // nullopt once closed+empty
///
/// Values pushed while a receiver is parked are handed to it directly, so a
/// woken receiver can never lose its value to a concurrent try_recv.
///
/// Structural invariants: receivers park only when the queue is empty, and
/// senders park only when it is full; hence both sides are never parked at
/// once.
template <typename T>
class Channel {
 public:
  static constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);

  explicit Channel(Simulation& sim, std::size_t capacity = kUnbounded)
      : sim_(&sim), capacity_(capacity) {}

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool closed() const { return closed_; }
  std::size_t parked_receivers() const { return recv_waiters_.size(); }
  std::size_t parked_senders() const { return send_waiters_.size(); }

  /// Awaitable send. For unbounded channels this never suspends.
  auto send(T value) {
    GFLINK_CHECK_MSG(!closed_, "send on closed channel");
    return SendAwaiter{this, std::move(value), false};
  }

  /// Non-suspending send; returns false if the channel is full.
  bool try_send(T value) {
    GFLINK_CHECK_MSG(!closed_, "send on closed channel");
    if (!can_push() || !send_waiters_.empty()) return false;
    push(std::move(value));
    return true;
  }

  /// Awaitable receive: a value, or nullopt when the channel is closed and
  /// drained.
  auto recv() { return RecvAwaiter{this}; }

  /// Non-suspending receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    admit_parked_sender();
    return v;
  }

  /// Close: wakes all parked receivers (they observe nullopt after drain).
  /// Items already queued can still be received.
  void close() {
    closed_ = true;
    for (auto& w : recv_waiters_) {
      sim_->schedule_in(0, [h = w->h] { h.resume(); });
    }
    recv_waiters_.clear();
  }

 private:
  struct RecvAwaiter {
    Channel* ch;
    std::optional<T> value{};
    std::coroutine_handle<> h{};

    bool await_ready() noexcept {
      if (!ch->items_.empty()) {
        value = std::move(ch->items_.front());
        ch->items_.pop_front();
        ch->admit_parked_sender();
        return true;
      }
      return ch->closed_;  // closed + empty: resume with nullopt
    }
    void await_suspend(std::coroutine_handle<> handle) {
      h = handle;
      ch->recv_waiters_.push_back(this);
    }
    std::optional<T> await_resume() noexcept { return std::move(value); }
  };

  struct SendAwaiter {
    Channel* ch;
    T value;
    bool parked;

    bool await_ready() noexcept { return ch->send_waiters_.empty() && ch->can_push(); }
    void await_suspend(std::coroutine_handle<> h) {
      parked = true;
      ch->send_waiters_.push_back({h, std::move(value)});
    }
    void await_resume() {
      // Fast path pushes here; a parked sender's value was moved into the
      // queue by admit_parked_sender before it was resumed.
      if (!parked) ch->push(std::move(value));
    }
  };

  struct SendWaiter {
    std::coroutine_handle<> h;
    T value;
  };

  bool can_push() const { return capacity_ == kUnbounded || items_.size() < capacity_; }

  void push(T value) {
    if (!recv_waiters_.empty()) {
      RecvAwaiter* w = recv_waiters_.front();
      recv_waiters_.pop_front();
      w->value = std::move(value);  // direct handoff, bypasses the queue
      sim_->schedule_in(0, [h = w->h] { h.resume(); });
      return;
    }
    items_.push_back(std::move(value));
  }

  void admit_parked_sender() {
    if (!send_waiters_.empty() && can_push()) {
      SendWaiter w = std::move(send_waiters_.front());
      send_waiters_.pop_front();
      push(std::move(w.value));
      sim_->schedule_in(0, [h = w.h] { h.resume(); });
    }
  }

  Simulation* sim_;
  std::size_t capacity_;
  bool closed_ = false;
  std::deque<T> items_;
  std::deque<SendWaiter> send_waiters_;
  std::deque<RecvAwaiter*> recv_waiters_;
};

}  // namespace gflink::sim
