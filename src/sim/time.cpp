#include "sim/time.hpp"

#include <cstdio>

namespace gflink::sim {

std::string format_duration(Duration d) {
  char buf[64];
  double ad = static_cast<double>(d < 0 ? -d : d);
  const char* sign = d < 0 ? "-" : "";
  if (ad >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3f s", sign, ad / kSecond);
  } else if (ad >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3f ms", sign, ad / kMillisecond);
  } else if (ad >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3f us", sign, ad / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%lld ns", sign, static_cast<long long>(d < 0 ? -d : d));
  }
  return buf;
}

}  // namespace gflink::sim
