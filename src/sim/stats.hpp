// Lightweight metrics for simulation components.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace gflink::sim {

/// Streaming summary of a sequence of samples (count/sum/min/max/mean).
class Summary {
 public:
  void add(double x) {
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi) with linear buckets plus
/// under/overflow. Enough for latency distributions in tests and reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets + 2, 0) {}

  void add(double x) {
    summary_.add(x);
    if (x < lo_) {
      ++counts_.front();
    } else if (x >= hi_) {
      ++counts_.back();
    } else {
      auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                          static_cast<double>(counts_.size() - 2));
      ++counts_[1 + idx];
    }
  }

  const Summary& summary() const { return summary_; }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::size_t buckets() const { return counts_.size(); }

  /// Approximate quantile from bucket midpoints.
  double quantile(double q) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  Summary summary_;
};

/// Named counters/summaries shared by a simulation's components.
/// Plain map keyed by string; simulations are single-threaded.
class MetricRegistry {
 public:
  void inc(const std::string& name, double v = 1.0) { counters_[name] += v; }
  double counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
  }
  void observe(const std::string& name, double v) { summaries_[name].add(v); }
  const Summary* summary(const std::string& name) const {
    auto it = summaries_.find(name);
    return it == summaries_.end() ? nullptr : &it->second;
  }
  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, Summary>& summaries() const { return summaries_; }
  void clear() {
    counters_.clear();
    summaries_.clear();
  }

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace gflink::sim
