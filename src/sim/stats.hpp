// Lightweight metrics for simulation components.
//
// Summary and Histogram are the raw statistics primitives; the labeled
// registry that components publish them through lives one layer up in
// obs/metrics.hpp (the observability subsystem).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "sim/util.hpp"

namespace gflink::sim {

/// Streaming summary of a sequence of samples (count/sum/min/max/mean).
class Summary {
 public:
  void add(double x) {
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  /// Fold another summary in (bench accumulation across runs).
  void merge(const Summary& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi) with linear buckets plus
/// under/overflow. Enough for latency distributions in tests and reports.
/// The exact min/max/mean of the samples are kept in the Summary, so they
/// stay correct even when every sample lands in under/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets + 2, 0) {
    GFLINK_CHECK(buckets >= 1 && hi > lo);
  }

  void add(double x) {
    summary_.add(x);
    if (x < lo_) {
      ++counts_.front();
    } else if (x >= hi_) {
      ++counts_.back();  // samples exactly at hi land in overflow
    } else {
      const std::size_t inner = counts_.size() - 2;
      auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                          static_cast<double>(inner));
      // Floating-point rounding can push x just below hi into bucket
      // `inner`; clamp so only x >= hi reaches the overflow bucket.
      if (idx >= inner) idx = inner - 1;
      ++counts_[1 + idx];
    }
  }

  /// Fold another histogram in; bucket layouts must match.
  void merge(const Histogram& other) {
    GFLINK_CHECK_MSG(lo_ == other.lo_ && hi_ == other.hi_ &&
                         counts_.size() == other.counts_.size(),
                     "merging histograms with different bucket layouts");
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    summary_.merge(other.summary_);
  }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  const Summary& summary() const { return summary_; }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::size_t buckets() const { return counts_.size(); }

  /// Approximate quantile (q in [0,1]): linear interpolation inside the
  /// covering bucket, clamped to the observed [min, max]. Under/overflow
  /// samples resolve to min/max respectively, so a histogram whose samples
  /// all fall outside [lo, hi) still reports exact quantile bounds.
  double quantile(double q) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  Summary summary_;
};

}  // namespace gflink::sim
