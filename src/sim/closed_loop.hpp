// Closed-loop multi-client driver: K concurrent clients, each issuing its
// next request only after the previous one completed (plus think time).
// This is the serving-style load model behind the multi-tenant JobService
// benchmarks — offered load adapts to service capacity, so the system runs
// saturated without unbounded queue growth.
#pragma once

#include <functional>

#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace gflink::sim {

/// One client's identity within a closed-loop run.
struct ClosedLoopClient {
  int client = 0;   // 0-based client index
  int request = 0;  // 0-based request index within this client
};

/// Run `clients` concurrent closed loops of `requests_per_client` requests
/// each. `request` is awaited to completion before the client's next issue;
/// `think_time` separates completion from the next request (0 = back to
/// back). A client also stops issuing once the virtual clock passes
/// `deadline` (0 = no deadline) — time-bounded runs measure steady-state
/// shares instead of everyone eventually finishing a fixed quota.
/// Completes when every client has drained.
inline Co<void> run_closed_loop(Simulation& sim, int clients, int requests_per_client,
                                Duration think_time,
                                std::function<Co<void>(const ClosedLoopClient&)> request,
                                Time deadline = 0) {
  WaitGroup wg(sim);
  wg.add(clients);
  for (int c = 0; c < clients; ++c) {
    sim.spawn([](Simulation& s, int client, int requests, Duration think,
                 std::function<Co<void>(const ClosedLoopClient&)> fn, Time stop_at,
                 WaitGroup& join) -> Co<void> {
      for (int r = 0; r < requests; ++r) {
        if (stop_at > 0 && s.now() >= stop_at) break;
        co_await fn(ClosedLoopClient{client, r});
        if (think > 0 && r + 1 < requests) co_await s.delay(think);
      }
      join.done();
    }(sim, c, requests_per_client, think_time, request, deadline, wg));
  }
  co_await wg.wait();
}

}  // namespace gflink::sim
