// The discrete-event simulation engine.
//
// A Simulation owns a virtual clock and an event queue. Everything in the
// GFlink reproduction — network transfers, disk reads, PCIe DMA, kernel
// execution, CPU task processing — advances this clock; no wall-clock time
// is ever consulted, so runs are deterministic and bit-reproducible.
//
// Processes are C++20 coroutines (`Co<void>`) detached with `spawn()`.
// Awaiting `sim.delay(d)` suspends the process for `d` nanoseconds of
// virtual time. Synchronization primitives (Channel, Semaphore, ...) live
// in sync.hpp and resume waiters through the same event queue.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/coro.hpp"
#include "sim/time.hpp"
#include "sim/util.hpp"

namespace gflink::sim {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedule `fn` to run at absolute virtual time `t` (must be >= now()).
  void schedule_at(Time t, UniqueFunction fn);

  /// Schedule `fn` to run `d` nanoseconds from now.
  void schedule_in(Duration d, UniqueFunction fn) { schedule_at(now_ + d, std::move(fn)); }

  /// Detach a coroutine process into the simulation. The coroutine starts
  /// when the event queue reaches the current time slot (not synchronously),
  /// keeping spawn order deterministic and independent of call context.
  void spawn(Co<void> co);

  /// Run until the event queue is empty. Returns the final virtual time.
  Time run();

  /// Run events with timestamp <= t. The clock ends at exactly `t` even if
  /// the queue empties earlier. Returns the number of events processed.
  std::uint64_t run_until(Time t);

  /// True if no events are pending.
  bool idle() const { return queue_.empty(); }

  /// Number of events executed so far (diagnostic).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Number of detached processes that have been spawned but not finished.
  /// After run() this should normally be zero; a nonzero value means some
  /// process is parked forever (usually a bug in the model).
  int live_processes() const { return live_processes_; }

  /// Awaitable: suspend the current coroutine for `d` virtual nanoseconds.
  auto delay(Duration d) {
    struct Awaiter {
      Simulation* sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->schedule_in(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    GFLINK_CHECK_MSG(d >= 0, "negative delay");
    return Awaiter{this, d};
  }

  /// Awaitable: yield to the event loop (resume in the same time slot,
  /// after already-queued events).
  auto yield() { return delay(0); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;  // tie-break: FIFO within a time slot
    UniqueFunction fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  // Runs one Co<void> to completion, maintaining the live-process count.
  struct DetachedTask {
    struct promise_type {
      DetachedTask get_return_object() { return {}; }
      std::suspend_never initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception() {
        // A simulation process must not leak exceptions: there is nobody
        // above it to catch them. Treat as fatal.
        std::fprintf(stderr, "uncaught exception escaped a simulation process\n");
        std::terminate();
      }
    };
  };
  DetachedTask drive(Co<void> co);

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  int live_processes_ = 0;
};

}  // namespace gflink::sim
