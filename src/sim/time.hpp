// Virtual time for the discrete-event simulation.
//
// All timing in the simulator is expressed as signed 64-bit nanoseconds.
// Using integers (not doubles) keeps event ordering exact and runs
// bit-reproducible across platforms.
#pragma once

#include <cstdint>
#include <string>

namespace gflink::sim {

/// Absolute simulation time in nanoseconds since simulation start.
using Time = std::int64_t;
/// A span of simulation time in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

/// Construct durations from scalar quantities. Fractional inputs are
/// rounded to the nearest nanosecond.
constexpr Duration nanos(std::int64_t n) { return n; }
constexpr Duration micros(double us) { return static_cast<Duration>(us * kMicrosecond + 0.5); }
constexpr Duration millis(double ms) { return static_cast<Duration>(ms * kMillisecond + 0.5); }
constexpr Duration seconds(double s) { return static_cast<Duration>(s * kSecond + 0.5); }

/// Convert a duration back to floating-point seconds (for reporting only).
constexpr double to_seconds(Duration d) { return static_cast<double>(d) / kSecond; }
constexpr double to_millis(Duration d) { return static_cast<double>(d) / kMillisecond; }
constexpr double to_micros(Duration d) { return static_cast<double>(d) / kMicrosecond; }

/// Time needed to move `bytes` at `bytes_per_second`, rounded up to 1 ns.
constexpr Duration transfer_time(std::uint64_t bytes, double bytes_per_second) {
  if (bytes == 0) return 0;
  double s = static_cast<double>(bytes) / bytes_per_second;
  auto d = static_cast<Duration>(s * kSecond);
  return d > 0 ? d : 1;
}

/// Human-readable rendering, e.g. "1.234 s", "56.7 ms", "890 ns".
std::string format_duration(Duration d);

}  // namespace gflink::sim
