#include "sim/trace.hpp"

#include <algorithm>

namespace gflink::sim {

std::vector<Span> Tracer::lane(const std::string& name) const {
  std::vector<Span> out;
  for (const auto& s : spans_) {
    if (s.lane == name) out.push_back(s);
  }
  return out;
}

Duration Tracer::busy_time(const std::string& lane_name) const {
  auto spans = lane(lane_name);
  if (spans.empty()) return 0;
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.begin < b.begin; });
  Duration total = 0;
  Time cur_begin = spans.front().begin;
  Time cur_end = spans.front().end;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].begin <= cur_end) {
      cur_end = std::max(cur_end, spans[i].end);
    } else {
      total += cur_end - cur_begin;
      cur_begin = spans[i].begin;
      cur_end = spans[i].end;
    }
  }
  total += cur_end - cur_begin;
  return total;
}

bool Tracer::lanes_overlap(const std::string& a, const std::string& b) const {
  auto sa = lane(a);
  auto sb = lane(b);
  for (const auto& x : sa) {
    for (const auto& y : sb) {
      if (x.overlaps(y)) return true;
    }
  }
  return false;
}

}  // namespace gflink::sim
