// Coroutine task type for simulation processes.
//
// `Co<T>` is a lazy, awaitable coroutine: calling an async function builds
// the coroutine frame suspended; `co_await`-ing it starts it and resumes the
// awaiter when it completes (via symmetric transfer, so arbitrarily deep
// await chains do not grow the native stack). Top-level processes are
// detached into a Simulation with `Simulation::spawn`.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/util.hpp"

namespace gflink::sim {

template <typename T>
class Co;

namespace detail {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    // Hand control back to whoever awaited us; if nobody did (detached
    // wrapper always awaits, so this is just defensive) return to the
    // scheduler loop.
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct CoPromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// Lazy awaitable coroutine returning T. Move-only; owns its frame.
template <typename T>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::CoPromiseBase {
    std::optional<T> value{};

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Co() = default;
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() {
    if (handle_) handle_.destroy();
  }

  bool valid() const { return static_cast<bool>(handle_); }

  // Awaitable interface.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    handle_.promise().continuation = parent;
    return handle_;  // start the child coroutine (symmetric transfer)
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    GFLINK_CHECK_MSG(p.value.has_value(), "coroutine finished without a value");
    return std::move(*p.value);
  }

 private:
  std::coroutine_handle<promise_type> handle_{};
};

/// Co<void>: same contract, no value.
template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::CoPromiseBase {
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Co() = default;
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() {
    if (handle_) handle_.destroy();
  }

  bool valid() const { return static_cast<bool>(handle_); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
  }

 private:
  std::coroutine_handle<promise_type> handle_{};
};

}  // namespace gflink::sim
