// Small shared utilities for the simulation substrate.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>

namespace gflink::sim {

/// Abort with a message when an internal invariant is violated.
/// Used for programmer errors, never for data-dependent conditions.
[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const std::string& msg = {}) {
  std::fprintf(stderr, "GFLINK_CHECK failed: %s at %s:%d %s\n", cond, file, line, msg.c_str());
  std::abort();
}

#define GFLINK_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) ::gflink::sim::check_failed(#cond, __FILE__, __LINE__); \
  } while (0)

#define GFLINK_CHECK_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) ::gflink::sim::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

/// A move-only type-erased callable with signature void().
///
/// The standard std::function requires copy-constructible targets, which
/// rules out lambdas that capture coroutine task objects or other move-only
/// state. Event queues in the simulator store UniqueFunction instead.
class UniqueFunction {
 public:
  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, UniqueFunction>>>
  UniqueFunction(F&& f) : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  explicit operator bool() const { return impl_ != nullptr; }

  void operator()() {
    GFLINK_CHECK(impl_ != nullptr);
    impl_->call();
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void call() = 0;
  };
  template <typename F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    void call() override { fn(); }
    F fn;
  };
  std::unique_ptr<Concept> impl_;
};

}  // namespace gflink::sim
