#include "sim/stats.hpp"

namespace gflink::sim {

double Histogram::quantile(double q) const {
  if (summary_.count() == 0) return 0.0;
  auto target = static_cast<std::uint64_t>(q * static_cast<double>(summary_.count()));
  std::uint64_t seen = 0;
  const std::size_t inner = counts_.size() - 2;
  const double width = (hi_ - lo_) / static_cast<double>(inner);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) {
      if (i == 0) return lo_;
      if (i == counts_.size() - 1) return hi_;
      return lo_ + (static_cast<double>(i - 1) + 0.5) * width;
    }
  }
  return hi_;
}

}  // namespace gflink::sim
