#include "sim/stats.hpp"

#include <cmath>

namespace gflink::sim {

double Histogram::quantile(double q) const {
  const std::uint64_t n = summary_.count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample we want: the smallest value v such that at least
  // ceil(q * n) samples are <= v (nearest-rank definition).
  auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  target = std::max<std::uint64_t>(target, 1);

  const std::size_t inner = counts_.size() - 2;
  const double width = (hi_ - lo_) / static_cast<double>(inner);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    seen += counts_[i];
    if (seen < target) continue;
    if (i == 0) return summary_.min();                    // underflow: < lo
    if (i == counts_.size() - 1) return summary_.max();   // overflow: >= hi
    // Interpolate inside the covering bucket, then clamp to the observed
    // range so quantiles never exceed what was actually sampled.
    const std::uint64_t before = seen - counts_[i];
    const double frac =
        static_cast<double>(target - before) / static_cast<double>(counts_[i]);
    const double bucket_lo = lo_ + static_cast<double>(i - 1) * width;
    return std::clamp(bucket_lo + frac * width, summary_.min(), summary_.max());
  }
  return summary_.max();
}

}  // namespace gflink::sim
