// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
// Cluster topology and hardware specifications.
//
// A Cluster is a master node plus N worker nodes, each with a CPU model, a
// NIC, and a disk. These specs are the calibration surface of the whole
// reproduction: the defaults model the paper's testbed (Intel i5-4590,
// 16 GB RAM, 1 GbE, commodity SATA disks; GPUs are attached separately by
// the gpu/core layers).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/thread_annotations.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/trace.hpp"

namespace gflink::net {

using sim::Duration;
using sim::Time;

/// CPU execution model for dataflow tasks.
///
/// A task processing records through Flink's one-element-a-time iterator
/// chain pays `record_overhead` per record (iterator advance, virtual
/// dispatch, (de)serialization bookkeeping — the JVM-side costs the paper
/// calls out) plus a roofline term: max(flops / effective_gflops, bytes /
/// mem_bandwidth) for the user function itself.
struct CpuSpec {
  int cores = 4;
  double effective_flops = 4.0e9;   // per-core sustained scalar FLOP/s
  double mem_bandwidth = 10.0e9;    // per-core streaming bytes/s
  Duration record_overhead = 25;    // ns per record through the iterator
};

struct NicSpec {
  double bandwidth = 117.0e6;       // bytes/s (1 GbE effective)
  Duration latency = sim::micros(80);
};

/// RDMA-capable HCA, distinct from the commodity Ethernet NIC: one-sided
/// verbs (remote write, remote fetch-add) bypass the remote CPU entirely
/// and run at InfiniBand-class latency/bandwidth. Defaults model FDR-era
/// hardware (56 Gb/s links, ~2 us one-way verb latency).
struct RdmaNicSpec {
  double bandwidth = 6.0e9;         // bytes/s (56 Gb/s FDR effective)
  Duration latency = sim::micros(2);
};

struct DiskSpec {
  double read_bandwidth = 150.0e6;  // bytes/s
  double write_bandwidth = 120.0e6;
  Duration access_latency = sim::millis(4);
};

struct NodeSpec {
  CpuSpec cpu;
  NicSpec nic;
  RdmaNicSpec rdma;
  DiskSpec disk;
};

/// A serially-drained resource (NIC direction, disk): requests queue FIFO
/// and each occupies the pipe for latency + bytes/bandwidth.
class Pipe {
 public:
  Pipe(sim::Simulation& sim, std::string name, double bandwidth, Duration latency,
       sim::Tracer* tracer = nullptr, obs::SpanStore* spans = nullptr, int node = -1)
      : sim_(&sim),
        name_(std::move(name)),
        bandwidth_(bandwidth),
        latency_(latency),
        mutex_(sim),
        tracer_(tracer),
        spans_(spans),
        node_(node) {
    // Causal spans on one pipe share a peer-group name derived from the
    // pipe kind ("net:egress", "net:disk_write", ...).
    auto slash = name_.rfind('/');
    kind_ = "net:" + (slash == std::string::npos ? name_ : name_.substr(slash + 1));
  }

  /// Occupy the pipe for the duration of the transfer. When `link` carries
  /// a parent span, the transfer is recorded as a causal child span (from
  /// request to completion, with the time queued behind earlier transfers
  /// as a nested Wait span).
  sim::Co<void> transfer(std::uint64_t bytes, const std::string& label = {},
                         obs::SpanLink link = {}) {
    const Time requested = sim_->now();
    co_await mutex_.lock();
    Time begin = sim_->now();
    {
      // Synchronous section: stats_mu_ is never held across a co_await.
      core::MutexLock lock(stats_mu_);
      queue_wait_ns_ += begin - requested;  // time spent behind earlier transfers
    }
    co_await sim_->delay(latency_ + sim::transfer_time(bytes, bandwidth_));
    {
      core::MutexLock lock(stats_mu_);
      bytes_moved_ += bytes;
      ++transfers_;
      busy_ns_ += sim_->now() - begin;
    }
    if (tracer_) tracer_->record(name_, label, begin, sim_->now());
    if (spans_ != nullptr && link.parent != 0) {
      const obs::SpanId xfer =
          spans_->open(kind_, link.category, link.parent, requested, name_, node_);
      if (begin > requested) {
        spans_->record("wait:queue", obs::SpanCategory::Wait, xfer, requested, begin, name_,
                       node_);
      }
      spans_->close(xfer, sim_->now());
    }
    mutex_.unlock();
  }

  /// Time the pipe would take for `bytes` with no queueing.
  Duration unloaded_time(std::uint64_t bytes) const {
    return latency_ + sim::transfer_time(bytes, bandwidth_);
  }

  const std::string& name() const { return name_; }
  double bandwidth() const { return bandwidth_; }
  std::uint64_t bytes_moved() const {
    core::MutexLock lock(stats_mu_);
    return bytes_moved_;
  }
  std::uint64_t transfers() const {
    core::MutexLock lock(stats_mu_);
    return transfers_;
  }
  bool busy() const { return mutex_.locked(); }
  /// Total time the pipe was occupied by transfers.
  Duration busy_time() const {
    core::MutexLock lock(stats_mu_);
    return busy_ns_;
  }
  /// Total time transfers spent queued behind earlier ones.
  Duration queue_wait() const {
    core::MutexLock lock(stats_mu_);
    return queue_wait_ns_;
  }
  /// Fraction of [0, horizon] the pipe was busy.
  double utilization(Time horizon) const {
    return horizon > 0 ? static_cast<double>(busy_time()) / static_cast<double>(horizon) : 0.0;
  }

  /// Publish this pipe's totals into a metrics registry, labeled by pipe
  /// name (counters add, so repeated exports accumulate — export once per
  /// run into a fresh or accumulating registry).
  void export_metrics(obs::MetricsRegistry& out) const {
    const obs::Labels l{{"pipe", name_}};
    // stats_mu_ is a leaf lock, so it must not be held while calling into the
    // registry (which takes its own mu_; gflint L1). Snapshot the tuple under
    // the lock, publish after release.
    std::uint64_t bytes_moved = 0;
    std::uint64_t transfers = 0;
    Duration busy_ns = 0;
    Duration queue_wait_ns = 0;
    {
      core::MutexLock lock(stats_mu_);
      bytes_moved = bytes_moved_;
      transfers = transfers_;
      busy_ns = busy_ns_;
      queue_wait_ns = queue_wait_ns_;
    }
    out.counter("net_pipe_bytes_total", l).inc(static_cast<double>(bytes_moved));
    out.counter("net_pipe_transfers_total", l).inc(static_cast<double>(transfers));
    out.counter("net_pipe_busy_ns_total", l).inc(static_cast<double>(busy_ns));
    out.counter("net_pipe_queue_wait_ns_total", l).inc(static_cast<double>(queue_wait_ns));
  }

 private:
  sim::Simulation* sim_;
  std::string name_;
  double bandwidth_;
  Duration latency_;
  sim::Mutex mutex_;  // the simulated resource itself (FIFO occupancy)
  sim::Tracer* tracer_;
  obs::SpanStore* spans_;  // simulation-plane, like tracer_
  int node_;               // owning node id for causal spans
  std::string kind_;       // peer-group span name, e.g. "net:egress"
  /// Guards the stats below as one consistent tuple (bytes+count+durations
  /// move together, so individual atomics would tear the snapshot). Leaf
  /// lock; never held across a co_await.
  mutable core::Mutex stats_mu_;
  std::uint64_t bytes_moved_ GFLINK_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t transfers_ GFLINK_GUARDED_BY(stats_mu_) = 0;
  Duration busy_ns_ GFLINK_GUARDED_BY(stats_mu_) = 0;
  Duration queue_wait_ns_ GFLINK_GUARDED_BY(stats_mu_) = 0;
};

/// One machine in the cluster.
class Node {
 public:
  Node(sim::Simulation& sim, int id, const NodeSpec& spec, sim::Tracer* tracer,
       obs::SpanStore* spans = nullptr);

  int id() const { return id_; }
  const NodeSpec& spec() const { return spec_; }

  Pipe& egress() { return egress_; }
  Pipe& ingress() { return ingress_; }
  Pipe& rdma_tx() { return rdma_tx_; }
  Pipe& rdma_rx() { return rdma_rx_; }
  Pipe& disk_read() { return disk_read_; }
  Pipe& disk_write() { return disk_write_; }
  const Pipe& egress() const { return egress_; }
  const Pipe& ingress() const { return ingress_; }
  const Pipe& rdma_tx() const { return rdma_tx_; }
  const Pipe& rdma_rx() const { return rdma_rx_; }
  const Pipe& disk_read() const { return disk_read_; }
  const Pipe& disk_write() const { return disk_write_; }

  /// CPU time for one record through an operator chain with the given
  /// per-record work (roofline over flops and bytes) — excluding the pipe
  /// resources above.
  Duration record_time(double flops, double bytes) const;

 private:
  int id_;
  NodeSpec spec_;
  Pipe egress_;
  Pipe ingress_;
  Pipe rdma_tx_;  // one-sided verb initiator side (HCA send engine)
  Pipe rdma_rx_;  // one-sided verb target side (remote HCA, no remote CPU)
  Pipe disk_read_;
  Pipe disk_write_;
};

struct ClusterConfig {
  int num_workers = 10;
  NodeSpec worker;
  NodeSpec master;
  /// Single-machine deployments run the JobManager on the worker host, so
  /// master<->worker traffic is in-memory (the paper's Fig. 7b setup).
  bool colocated_master = false;
};

/// Master (node 0) + workers (nodes 1..num_workers). Also hosts shared
/// metrics and the tracer.
class Cluster {
 public:
  Cluster(sim::Simulation& sim, const ClusterConfig& config);

  sim::Simulation& sim() { return *sim_; }
  int num_workers() const { return static_cast<int>(nodes_.size()) - 1; }
  Node& master() { return *nodes_.front(); }
  Node& node(int id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  const Node& node(int id) const { return *nodes_.at(static_cast<std::size_t>(id)); }
  Node& worker(int index) { return *nodes_.at(static_cast<std::size_t>(index) + 1); }

  sim::Tracer& tracer() { return tracer_; }
  const sim::Tracer& tracer() const { return tracer_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::SpanStore& spans() { return spans_; }
  const obs::SpanStore& spans() const { return spans_; }
  obs::FlightRecorder& flight() { return flight_; }
  const obs::FlightRecorder& flight() const { return flight_; }

  /// Publish the cluster's registry plus every node's pipe totals (and the
  /// trace_*/flight_* rollups) into `out` (the run-report capture path).
  void export_metrics(obs::MetricsRegistry& out) const;

  /// Bulk data transfer src -> dst through both NICs (store-and-forward at
  /// the bottleneck rate). Local "transfers" are free. `link` parents the
  /// per-NIC causal spans.
  sim::Co<void> transfer(int src, int dst, std::uint64_t bytes, const std::string& label = {},
                         obs::SpanLink link = {});

  /// Small control message (RPC): latency only, no bandwidth occupation.
  sim::Co<void> message(int src, int dst);

  /// One-sided RDMA-style write of `bytes` from `src` into `dst`'s memory
  /// at `offset` (a registered-region address; modelling-only — the bytes
  /// themselves travel through the shuffle deposit path). Occupies both
  /// HCAs (tx then rx, same deadlock-free order as transfer) but involves
  /// no remote CPU. Local writes are free.
  sim::Co<void> remote_write(int src, int dst, std::uint64_t offset, std::uint64_t bytes,
                             const std::string& label = {}, obs::SpanLink link = {});

  /// One-sided atomic fetch-add on counter `counter` in `dst`'s memory.
  /// Pays one RDMA round trip (request + response latency, no bandwidth);
  /// the read-modify-write itself is atomic — concurrent initiators are
  /// serialized by the target HCA, so the returned pre-add values are
  /// unique reservations. Local fetch-adds are free.
  sim::Co<std::uint64_t> remote_fetch_add(int src, int dst, std::uint64_t counter,
                                          std::uint64_t delta);

  /// Read a remote-atomics counter in `node`'s own memory (the owner
  /// polling local memory is free; remote pollers pay message latency
  /// themselves). Unwritten counters read as zero.
  std::uint64_t rdma_counter(int node, std::uint64_t counter) const;

 private:
  sim::Simulation* sim_;
  bool colocated_master_ = false;
  sim::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  obs::SpanStore spans_;        // causal span DAG (simulation-plane)
  obs::FlightRecorder flight_;  // always-on bounded post-mortem rings
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Per-node named fetch-add counters (remote_fetch_add targets).
  /// Simulation-plane state like spans_: mutated only between suspension
  /// points of the one simulation thread, so it carries no lock.
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> rdma_counters_;
};

}  // namespace gflink::net
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
