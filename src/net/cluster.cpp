// NOLINTBEGIN(cppcoreguidelines-avoid-reference-coroutine-parameters)
// Coroutines in this file are co_awaited in the caller's scope, so every
// reference parameter outlives each suspension; detached launches are
// separately policed by gflint rules C2/C3.
#include "net/cluster.hpp"

#include <algorithm>

namespace gflink::net {

Node::Node(sim::Simulation& sim, int id, const NodeSpec& spec, sim::Tracer* tracer,
           obs::SpanStore* spans)
    : id_(id),
      spec_(spec),
      egress_(sim, "node" + std::to_string(id) + "/egress", spec.nic.bandwidth, spec.nic.latency,
              tracer, spans, id),
      ingress_(sim, "node" + std::to_string(id) + "/ingress", spec.nic.bandwidth, spec.nic.latency,
               tracer, spans, id),
      rdma_tx_(sim, "node" + std::to_string(id) + "/rdma_tx", spec.rdma.bandwidth,
               spec.rdma.latency, tracer, spans, id),
      rdma_rx_(sim, "node" + std::to_string(id) + "/rdma_rx", spec.rdma.bandwidth,
               spec.rdma.latency, tracer, spans, id),
      disk_read_(sim, "node" + std::to_string(id) + "/disk_read", spec.disk.read_bandwidth,
                 spec.disk.access_latency, tracer, spans, id),
      disk_write_(sim, "node" + std::to_string(id) + "/disk_write", spec.disk.write_bandwidth,
                  spec.disk.access_latency, tracer, spans, id) {}

Duration Node::record_time(double flops, double bytes) const {
  double compute_s = flops / spec_.cpu.effective_flops;
  double memory_s = bytes / spec_.cpu.mem_bandwidth;
  auto work = static_cast<Duration>(std::max(compute_s, memory_s) * sim::kSecond);
  return spec_.cpu.record_overhead + work;
}

Cluster::Cluster(sim::Simulation& sim, const ClusterConfig& config)
    : sim_(&sim), colocated_master_(config.colocated_master) {
  GFLINK_CHECK(config.num_workers >= 1);
  GFLINK_CHECK_MSG(!config.colocated_master || config.num_workers == 1,
                   "colocated master requires a single worker");
  spans_.attach_flight_recorder(&flight_);
  nodes_.push_back(std::make_unique<Node>(sim, 0, config.master, &tracer_, &spans_));
  for (int i = 1; i <= config.num_workers; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim, i, config.worker, &tracer_, &spans_));
  }
  rdma_counters_.resize(nodes_.size());
}

void Cluster::export_metrics(obs::MetricsRegistry& out) const {
  out.merge_from(metrics_);
  for (const auto& node : nodes_) {
    node->egress().export_metrics(out);
    node->ingress().export_metrics(out);
    node->rdma_tx().export_metrics(out);
    node->rdma_rx().export_metrics(out);
    node->disk_read().export_metrics(out);
    node->disk_write().export_metrics(out);
  }
  spans_.export_metrics(out);
  flight_.export_metrics(out);
}

sim::Co<void> Cluster::transfer(int src, int dst, std::uint64_t bytes, const std::string& label,
                                obs::SpanLink link) {
  if (src == dst) co_return;  // in-memory, no NIC involvement
  if (colocated_master_ && (src == 0 || dst == 0)) co_return;
  metrics_.inc("net.bytes", static_cast<double>(bytes));
  metrics_.inc("net.transfers");
  // Egress first, then ingress: the acquisition order (always egress before
  // ingress, never the reverse) is deadlock-free by construction.
  co_await node(src).egress().transfer(bytes, label, link);
  co_await node(dst).ingress().transfer(bytes, label, link);
}

sim::Co<void> Cluster::message(int src, int dst) {
  if (src == dst) co_return;
  if (colocated_master_ && (src == 0 || dst == 0)) co_return;
  metrics_.inc("net.messages");
  co_await sim_->delay(node(src).spec().nic.latency + node(dst).spec().nic.latency);
}

sim::Co<void> Cluster::remote_write(int src, int dst, std::uint64_t offset, std::uint64_t bytes,
                                    const std::string& label, obs::SpanLink link) {
  (void)offset;  // addressing fidelity only; payload rides the deposit path
  if (src == dst) co_return;  // registered region is local memory
  if (colocated_master_ && (src == 0 || dst == 0)) co_return;
  metrics_.inc("net.rdma_bytes", static_cast<double>(bytes));
  metrics_.inc("net.rdma_writes");
  // Initiator HCA first, then target HCA: same fixed acquisition order as
  // transfer(), deadlock-free by construction. The target's CPU is never
  // involved — only its HCA's DMA engine (rdma_rx) is occupied.
  co_await node(src).rdma_tx().transfer(bytes, label, link);
  co_await node(dst).rdma_rx().transfer(bytes, label, link);
}

sim::Co<std::uint64_t> Cluster::remote_fetch_add(int src, int dst, std::uint64_t counter,
                                                 std::uint64_t delta) {
  auto& slot = rdma_counters_[static_cast<std::size_t>(dst)][counter];
  const bool local = src == dst || (colocated_master_ && (src == 0 || dst == 0));
  if (!local) {
    metrics_.inc("net.rdma_atomics");
    // Request leg: initiator latency + target latency.
    co_await sim_->delay(node(src).spec().rdma.latency + node(dst).spec().rdma.latency);
  }
  // The RMW happens atomically at the target HCA: no suspension point
  // between the read and the write, so concurrent initiators observe
  // unique pre-add values (FIFO-serialized by the event queue).
  const std::uint64_t old = slot;
  slot = old + delta;
  if (!local) {
    // Response leg carrying the pre-add value back to the initiator.
    co_await sim_->delay(node(dst).spec().rdma.latency + node(src).spec().rdma.latency);
  }
  co_return old;
}

std::uint64_t Cluster::rdma_counter(int node, std::uint64_t counter) const {
  const auto& counters = rdma_counters_.at(static_cast<std::size_t>(node));
  auto it = counters.find(counter);
  return it == counters.end() ? 0 : it->second;
}

}  // namespace gflink::net
// NOLINTEND(cppcoreguidelines-avoid-reference-coroutine-parameters)
