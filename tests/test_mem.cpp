// Tests for GStruct descriptors, layout transforms, buffers and the paged
// memory manager.
#include <gtest/gtest.h>

#include <cstddef>

#include "mem/buffer.hpp"
#include "mem/gstruct.hpp"
#include "mem/memory_manager.hpp"
#include "mem/record_batch.hpp"
#include "sim/simulation.hpp"

namespace sim = gflink::sim;
namespace mem = gflink::mem;
using mem::FieldType;
using mem::Layout;
using sim::Co;
using sim::Simulation;

namespace {

// Mirror of the paper's §3.5.1 example:
//   class Point extends GStruct_8 { Unsigned32 x; Double64 y; Float32 z; }
struct PaperPoint {
  std::uint32_t x;
  double y;
  float z;
};

mem::StructDesc paper_point_desc() {
  return mem::StructDescBuilder("Point", 8)
      .field("x", FieldType::U32, 1, offsetof(PaperPoint, x))
      .field("y", FieldType::F64, 1, offsetof(PaperPoint, y))
      .field("z", FieldType::F32, 1, offsetof(PaperPoint, z))
      .build();
}

}  // namespace

TEST(GStruct, FieldSizes) {
  EXPECT_EQ(mem::field_size(FieldType::U8), 1u);
  EXPECT_EQ(mem::field_size(FieldType::I16), 2u);
  EXPECT_EQ(mem::field_size(FieldType::F32), 4u);
  EXPECT_EQ(mem::field_size(FieldType::F64), 8u);
}

TEST(GStruct, PaperPointLayoutMatchesC) {
  auto d = paper_point_desc();
  // C layout: x @ 0, pad to 8, y @ 8, z @ 16, stride 24 (align 8).
  EXPECT_EQ(d.field(0).offset, 0u);
  EXPECT_EQ(d.field(1).offset, 8u);
  EXPECT_EQ(d.field(2).offset, 16u);
  EXPECT_EQ(d.stride(), 24u);
  EXPECT_EQ(d.stride(), sizeof(PaperPoint));
  EXPECT_TRUE(d.matches_host_layout<PaperPoint>());
}

TEST(GStruct, AlignmentCapPacksTighter) {
  // GStruct_4 caps the double at 4-byte alignment: x @ 0, y @ 4, z @ 12.
  auto d = mem::StructDescBuilder("PackedPoint", 4)
               .field("x", FieldType::U32)
               .field("y", FieldType::F64)
               .field("z", FieldType::F32)
               .build();
  EXPECT_EQ(d.field(1).offset, 4u);
  EXPECT_EQ(d.field(2).offset, 12u);
  EXPECT_EQ(d.stride(), 16u);
}

TEST(GStruct, ArrayFields) {
  auto d = mem::StructDescBuilder("Vec", 8).field("v", FieldType::F32, 16).build();
  EXPECT_EQ(d.stride(), 64u);
  EXPECT_EQ(d.payload_bytes(), 64u);
}

TEST(GStruct, FieldIndexLookup) {
  auto d = paper_point_desc();
  EXPECT_EQ(d.field_index("x"), 0u);
  EXPECT_EQ(d.field_index("z"), 2u);
}

TEST(GStruct, HostLayoutMismatchDetected) {
  // Same fields but no host offsets recorded: matches_host_layout is false
  // unless the offsets happen to line up, which they cannot with SIZE_MAX.
  auto d = mem::StructDescBuilder("P", 8)
               .field("x", FieldType::U32)
               .field("y", FieldType::F64)
               .field("z", FieldType::F32)
               .build();
  EXPECT_FALSE(d.matches_host_layout<PaperPoint>());
}

TEST(RecordBatch, AppendAndTypedAccess) {
  auto d = paper_point_desc();
  mem::RecordBatch b(&d);
  for (int i = 0; i < 10; ++i) {
    PaperPoint p{static_cast<std::uint32_t>(i), i * 1.5, i * 0.5f};
    b.append(p);
  }
  EXPECT_EQ(b.count(), 10u);
  EXPECT_EQ(b.byte_size(), 240u);
  EXPECT_EQ(b.get<std::uint32_t>(0, 7), 7u);
  EXPECT_DOUBLE_EQ(b.get<double>(1, 7), 10.5);
  EXPECT_FLOAT_EQ(b.get<float>(2, 7), 3.5f);
  const PaperPoint* view = b.aos_view<PaperPoint>();
  EXPECT_EQ(view[3].x, 3u);
}

TEST(RecordBatch, SetMutates) {
  auto d = paper_point_desc();
  mem::RecordBatch b(&d, 4, Layout::AoS);
  b.set<double>(1, 2, 99.0);
  EXPECT_DOUBLE_EQ(b.get<double>(1, 2), 99.0);
  EXPECT_DOUBLE_EQ(b.get<double>(1, 1), 0.0);
}

TEST(RecordBatch, LayoutRoundTripsPreserveValues) {
  auto d = mem::StructDescBuilder("Mix", 8)
               .field("id", FieldType::U64)
               .field("vals", FieldType::F32, 4)
               .field("tag", FieldType::U8)
               .build();
  mem::RecordBatch aos(&d, 6, Layout::AoS);
  for (std::size_t r = 0; r < 6; ++r) {
    aos.set<std::uint64_t>(0, r, 1000 + r);
    for (std::size_t e = 0; e < 4; ++e) {
      aos.set<float>(1, r, static_cast<float>(r * 10 + e), e);
    }
    aos.set<std::uint8_t>(2, r, static_cast<std::uint8_t>(r));
  }
  for (Layout target : {Layout::SoA, Layout::AoP}) {
    auto t = aos.to_layout(target);
    EXPECT_EQ(t.layout(), target);
    auto back = t.to_layout(Layout::AoS);
    ASSERT_EQ(back.count(), aos.count());
    EXPECT_EQ(back.bytes(), aos.bytes()) << mem::layout_name(target);
  }
}

TEST(RecordBatch, SoAColumnsAreContiguous) {
  auto d = mem::StructDescBuilder("XY", 8)
               .field("x", FieldType::F32)
               .field("y", FieldType::F32)
               .build();
  mem::RecordBatch aos(&d, 3, Layout::AoS);
  for (std::size_t r = 0; r < 3; ++r) {
    aos.set<float>(0, r, static_cast<float>(r));
    aos.set<float>(1, r, static_cast<float>(100 + r));
  }
  auto soa = aos.to_layout(Layout::SoA);
  // Column 0 = [0,1,2], column 1 = [100,101,102], back to back.
  const float* data = reinterpret_cast<const float*>(soa.bytes().data());
  EXPECT_EQ(soa.column_offset(0), 0u);
  EXPECT_EQ(soa.column_offset(1), 12u);
  EXPECT_FLOAT_EQ(data[0], 0.f);
  EXPECT_FLOAT_EQ(data[2], 2.f);
  EXPECT_FLOAT_EQ(data[3], 100.f);
  EXPECT_FLOAT_EQ(data[5], 102.f);
}

TEST(RecordBatch, AoPFieldsSeparateBuffers) {
  auto d = mem::StructDescBuilder("XY", 8)
               .field("x", FieldType::F32)
               .field("y", FieldType::F64)
               .build();
  mem::RecordBatch aos(&d, 5, Layout::AoS);
  auto aop = aos.to_layout(Layout::AoP);
  ASSERT_EQ(aop.field_bytes().size(), 2u);
  EXPECT_EQ(aop.field_bytes()[0].size(), 20u);
  EXPECT_EQ(aop.field_bytes()[1].size(), 40u);
  // AoP drops AoS padding: payload only.
  EXPECT_EQ(aop.byte_size(), 60u);
}

TEST(HBuffer, ReadWriteAndFlags) {
  mem::AddressSpace as;
  mem::HBuffer b(128, as.allocate(128));
  EXPECT_TRUE(b.off_heap());
  EXPECT_FALSE(b.pinned());
  b.set_pinned(true);
  EXPECT_TRUE(b.pinned());
  std::uint64_t v = 0xdeadbeef;
  b.write(16, &v, sizeof(v));
  std::uint64_t r = 0;
  b.read(16, &r, sizeof(r));
  EXPECT_EQ(r, v);
}

TEST(AddressSpace, UniquePageAlignedAddresses) {
  mem::AddressSpace as;
  auto a = as.allocate(100);
  auto b = as.allocate(5000);
  auto c = as.allocate(1);
  EXPECT_EQ(a % 4096, 0u);
  EXPECT_EQ(b % 4096, 0u);
  EXPECT_GT(b, a);
  EXPECT_GT(c, b);
  EXPECT_GE(c - b, 4096u * 2);  // 5000 bytes spans two pages
}

TEST(MemoryManager, PagesForRoundsUp) {
  Simulation s;
  mem::MemoryManager mm(s, 1024, 16);
  EXPECT_EQ(mm.pages_for(1), 1u);
  EXPECT_EQ(mm.pages_for(1024), 1u);
  EXPECT_EQ(mm.pages_for(1025), 2u);
}

TEST(MemoryManager, BudgetBackpressure) {
  Simulation s;
  mem::MemoryManager mm(s, 1024, 4);
  std::vector<sim::Time> alloc_times;
  s.spawn([](Simulation& sm, mem::MemoryManager& m, std::vector<sim::Time>& at) -> Co<void> {
    auto b1 = co_await m.allocate(4 * 1024);  // takes the whole budget
    at.push_back(sm.now());
    co_await sm.delay(100);
    b1.reset();  // release pages at t=100
    co_await sm.delay(1000);
  }(s, mm, alloc_times));
  s.spawn([](Simulation& sm, mem::MemoryManager& m, std::vector<sim::Time>& at) -> Co<void> {
    co_await sm.delay(1);
    auto b2 = co_await m.allocate(1024);  // must wait for the release
    at.push_back(sm.now());
  }(s, mm, alloc_times));
  s.run();
  ASSERT_EQ(alloc_times.size(), 2u);
  EXPECT_EQ(alloc_times[0], 0);
  EXPECT_EQ(alloc_times[1], 100);
  EXPECT_EQ(mm.pages_available(), 4u);
}

TEST(MemoryManager, TryAllocateRespectsBudget) {
  Simulation s;
  mem::MemoryManager mm(s, 1024, 2);
  auto a = mm.try_allocate(2048);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(mm.try_allocate(1), nullptr);
  a.reset();
  EXPECT_NE(mm.try_allocate(1), nullptr);
}

// Property sweep: every (alignment cap, field mix) produces offsets that
// are within stride, properly aligned, and non-overlapping.
class GStructLayoutProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GStructLayoutProperty, OffsetsAlignedAndDisjoint) {
  const std::size_t cap = GetParam();
  auto d = mem::StructDescBuilder("P", cap)
               .field("a", FieldType::U8)
               .field("b", FieldType::F64)
               .field("c", FieldType::U16)
               .field("d", FieldType::F32, 3)
               .field("e", FieldType::U8)
               .field("f", FieldType::I64, 2)
               .build();
  std::size_t prev_end = 0;
  for (const auto& f : d.fields()) {
    std::size_t align = std::min(mem::field_size(f.type), cap);
    EXPECT_EQ(f.offset % align, 0u) << f.name;
    EXPECT_GE(f.offset, prev_end) << f.name;
    prev_end = f.offset + f.byte_size();
  }
  EXPECT_LE(prev_end, d.stride());
  EXPECT_EQ(d.stride() % std::min<std::size_t>(8, cap), 0u);
}

INSTANTIATE_TEST_SUITE_P(AlignmentCaps, GStructLayoutProperty,
                         ::testing::Values(1, 2, 4, 8, 16));
