// Randomized property tests across the substrates. All RNG is the
// deterministic xoshiro from sim/random.hpp, so "random" here means
// pseudo-random and perfectly reproducible.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/gmemory_manager.hpp"
#include "gpu/device.hpp"
#include "gpu/device_memory.hpp"
#include "mem/gstruct.hpp"
#include "mem/record_batch.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace sim = gflink::sim;
namespace mem = gflink::mem;
namespace gpu = gflink::gpu;
namespace core = gflink::core;
using sim::Co;
using sim::Simulation;

// ---- GStruct / RecordBatch fuzz ----------------------------------------------

namespace {

mem::FieldType random_type(sim::Rng& rng) {
  constexpr mem::FieldType kTypes[] = {
      mem::FieldType::U8,  mem::FieldType::I8,  mem::FieldType::U16, mem::FieldType::I16,
      mem::FieldType::U32, mem::FieldType::I32, mem::FieldType::U64, mem::FieldType::I64,
      mem::FieldType::F32, mem::FieldType::F64};
  return kTypes[rng.next_below(10)];
}

mem::StructDesc random_desc(sim::Rng& rng) {
  constexpr std::size_t kCaps[] = {1, 2, 4, 8, 16};
  mem::StructDescBuilder builder("Fuzz", kCaps[rng.next_below(5)]);
  const int fields = 1 + static_cast<int>(rng.next_below(7));
  for (int f = 0; f < fields; ++f) {
    const std::size_t array_len = 1 + rng.next_below(5);
    builder.field("f" + std::to_string(f), random_type(rng), array_len);
  }
  return builder.build();
}

}  // namespace

class LayoutFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LayoutFuzz, RandomDescriptorsRoundTripAllLayouts) {
  sim::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const mem::StructDesc desc = random_desc(rng);
  const std::size_t count = 1 + rng.next_below(50);

  // Fill an AoS batch with random bytes via the accessor API (per element,
  // so padding stays zero and equality is meaningful).
  mem::RecordBatch aos(&desc, count, mem::Layout::AoS);
  for (std::size_t fi = 0; fi < desc.field_count(); ++fi) {
    const auto& f = desc.field(fi);
    for (std::size_t r = 0; r < count; ++r) {
      for (std::size_t e = 0; e < f.array_len; ++e) {
        switch (mem::field_size(f.type)) {
          case 1: aos.set<std::uint8_t>(fi, r, static_cast<std::uint8_t>(rng.next_u64()), e); break;
          case 2: aos.set<std::uint16_t>(fi, r, static_cast<std::uint16_t>(rng.next_u64()), e); break;
          case 4: aos.set<std::uint32_t>(fi, r, static_cast<std::uint32_t>(rng.next_u64()), e); break;
          default: aos.set<std::uint64_t>(fi, r, rng.next_u64(), e); break;
        }
      }
    }
  }
  for (mem::Layout target : {mem::Layout::SoA, mem::Layout::AoP}) {
    auto transformed = aos.to_layout(target);
    auto back = transformed.to_layout(mem::Layout::AoS);
    ASSERT_EQ(back.count(), aos.count());
    EXPECT_EQ(back.bytes(), aos.bytes()) << "layout " << mem::layout_name(target);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutFuzz, ::testing::Range(0, 24));

// ---- DeviceMemory allocator fuzz ----------------------------------------------

class AllocatorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorFuzz, RandomAllocFreeKeepsInvariants) {
  sim::Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  constexpr std::uint64_t kCapacity = 1 << 20;
  gpu::DeviceMemory memory(kCapacity);
  struct Live {
    gpu::DevicePtr ptr;
    std::uint64_t bytes;
  };
  std::vector<Live> live;
  std::uint64_t accounted = 0;

  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.next_below(100) < 60) {
      const std::uint64_t bytes = 1 + rng.next_below(32 * 1024);
      gpu::DevicePtr p = memory.allocate(bytes);
      if (p != 0) {
        // No overlap with any live allocation.
        const std::uint64_t aligned = (bytes + 255) / 256 * 256;
        for (const auto& l : live) {
          const std::uint64_t l_aligned = (l.bytes + 255) / 256 * 256;
          EXPECT_TRUE(p + aligned <= l.ptr || l.ptr + l_aligned <= p)
              << "overlapping allocations";
        }
        // Shadow is writable over the whole requested range.
        memory.shadow(p, bytes)[bytes - 1] = std::byte{0x5A};
        live.push_back({p, bytes});
        accounted += aligned;
      } else {
        // OOM must imply the request genuinely cannot be an easy fit.
        EXPECT_GT(accounted + bytes, kCapacity / 4);
      }
    } else {
      const std::size_t victim = rng.next_below(live.size());
      const std::uint64_t aligned = (live[victim].bytes + 255) / 256 * 256;
      memory.free(live[victim].ptr);
      accounted -= aligned;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    EXPECT_EQ(memory.allocated(), accounted);
    EXPECT_EQ(memory.allocation_count(), live.size());
  }
  for (const auto& l : live) memory.free(l.ptr);
  EXPECT_EQ(memory.allocated(), 0u);
  // After freeing everything, the full capacity must be allocatable again
  // (free-list coalescing worked).
  EXPECT_NE(memory.allocate(kCapacity - 4096), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorFuzz, ::testing::Range(0, 8));

// ---- GMemoryManager (GPU cache) fuzz --------------------------------------------

class CacheFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CacheFuzz, RandomCacheTrafficKeepsInvariants) {
  sim::Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  Simulation s;
  gpu::DeviceSpec spec;
  spec.device_memory = 1 << 22;
  gpu::GpuDevice d0(s, "g0", spec), d1(s, "g1", spec);
  constexpr std::uint64_t kRegion = 1 << 18;
  const auto policy =
      GetParam() % 2 == 0 ? core::CachePolicy::Fifo : core::CachePolicy::NoEvict;
  core::GMemoryManager cache({&d0, &d1}, kRegion, policy);

  // Reference model: per (device, job) -> set of keys believed cached.
  std::map<std::pair<int, std::uint64_t>, std::set<std::uint64_t>> model;
  std::vector<std::tuple<int, std::uint64_t, std::uint64_t>> pinned;  // (dev, job, key)

  for (int step = 0; step < 3000; ++step) {
    const int device = static_cast<int>(rng.next_below(2));
    const std::uint64_t job = 1 + rng.next_below(3);
    const std::uint64_t key = rng.next_below(40);
    const std::uint64_t bytes = 256 * (1 + rng.next_below(64));
    switch (rng.next_below(5)) {
      case 0:
      case 1: {  // insert (pinned) then unpin immediately
        auto slot = cache.insert(device, job, key, bytes);
        if (slot) {
          cache.unpin(device, job, key);
          model[{device, job}].insert(key);
        }
        break;
      }
      case 2: {  // lookup: a hit must be a modeled key... but eviction may
                 // have removed modeled keys, so only the reverse holds:
                 // a key the cache reports must once have been inserted.
        auto hit = cache.lookup(device, job, key);
        if (hit) {
          const bool modeled = model[{device, job}].count(key) > 0;
          EXPECT_TRUE(modeled);
        }
        break;
      }
      case 3: {  // pin a key if present
        auto hit = cache.lookup_pinned(device, job, key);
        if (hit) pinned.emplace_back(device, job, key);
        break;
      }
      case 4: {  // unpin something
        if (!pinned.empty()) {
          auto [pd, pj, pk] = pinned.back();
          pinned.pop_back();
          cache.unpin(pd, pj, pk);
        }
        break;
      }
    }
    // Invariant: the region accounting never exceeds its capacity.
    for (int dev = 0; dev < 2; ++dev) {
      for (std::uint64_t j = 1; j <= 3; ++j) {
        EXPECT_LE(cache.cached_bytes(dev, j), kRegion);
      }
    }
  }
  // Cleanup releases all device memory.
  while (!pinned.empty()) {
    auto [pd, pj, pk] = pinned.back();
    pinned.pop_back();
    cache.unpin(pd, pj, pk);
  }
  for (std::uint64_t j = 1; j <= 3; ++j) cache.release_job(j);
  EXPECT_EQ(d0.memory().allocated(), 0u);
  EXPECT_EQ(d1.memory().allocated(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzz, ::testing::Range(0, 8));

// ---- Synchronization-primitive stress -------------------------------------------

class SyncStress : public ::testing::TestWithParam<int> {};

TEST_P(SyncStress, SemaphoreNeverOversubscribed) {
  sim::Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  Simulation s;
  const std::int64_t capacity = 1 + static_cast<std::int64_t>(rng.next_below(4));
  sim::Semaphore sem(s, capacity);
  auto in_use = std::make_shared<std::int64_t>(0);
  auto peak = std::make_shared<std::int64_t>(0);
  int finished = 0;
  for (int i = 0; i < 60; ++i) {
    const std::int64_t want = 1 + static_cast<std::int64_t>(rng.next_below(
                                      static_cast<std::uint64_t>(capacity)));
    const auto hold = static_cast<sim::Duration>(1 + rng.next_below(500));
    const auto start = static_cast<sim::Duration>(rng.next_below(2000));
    s.spawn([](Simulation& sm, sim::Semaphore& se, std::shared_ptr<std::int64_t> use,
               std::shared_ptr<std::int64_t> pk, std::int64_t n, sim::Duration st,
               sim::Duration hd, int& done) -> Co<void> {
      co_await sm.delay(st);
      co_await se.acquire(n);
      *use += n;
      *pk = std::max(*pk, *use);
      co_await sm.delay(hd);
      *use -= n;
      se.release(n);
      ++done;
    }(s, sem, in_use, peak, want, start, hold, finished));
  }
  s.run();
  EXPECT_EQ(finished, 60);
  EXPECT_LE(*peak, capacity);
  EXPECT_EQ(sem.available(), capacity);
  EXPECT_EQ(s.live_processes(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyncStress, ::testing::Range(0, 10));
