// Tests for the one-sided RDMA-style primitives and shuffle transport:
// remote fetch-add atomicity under concurrent senders, receive-region
// offset disjointness from the histogram prefix-sum, remote-write timing
// over the HCA pipes, counter-barrier completion under injected transfer
// faults, and the traced phase spans of the one-sided exchange.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "dataflow/dataset.hpp"
#include "dataflow/engine.hpp"
#include "shuffle/shuffle_service.hpp"
#include "sim/random.hpp"

namespace sim = gflink::sim;
namespace mem = gflink::mem;
namespace net = gflink::net;
namespace dfs = gflink::dfs;
namespace df = gflink::dataflow;
namespace sh = gflink::shuffle;
namespace obs = gflink::obs;
using sim::Co;

namespace {

net::ClusterConfig small_cluster(int workers) {
  net::ClusterConfig c;
  c.num_workers = workers;
  return c;
}

// ---- One-sided verb primitives ---------------------------------------------

TEST(OneSidedNet, RemoteFetchAddIsAtomicUnderConcurrentSenders) {
  sim::Simulation s;
  net::Cluster c(s, small_cluster(4));

  // Four initiators on distinct nodes race fetch-adds at the same target
  // counter, all issued at t=0. The target HCA serializes the RMWs, so the
  // pre-add values must be a permutation of {0..3} — no duplicates, no
  // gaps — and the final counter equals the sum of the deltas.
  std::vector<std::uint64_t> observed;
  for (int src = 1; src <= 4; ++src) {
    s.spawn([](net::Cluster& cl, int from, std::vector<std::uint64_t>& out) -> Co<void> {
      out.push_back(co_await cl.remote_fetch_add(from, 2, /*counter=*/7, 1));
    }(c, src, observed));
  }
  s.run();

  ASSERT_EQ(observed.size(), 4u);
  std::sort(observed.begin(), observed.end());
  EXPECT_EQ(observed, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(c.rdma_counter(2, 7), 4u);
  EXPECT_EQ(c.rdma_counter(2, 8), 0u);  // unwritten counters read as zero
  EXPECT_EQ(c.metrics().counter_value("net.rdma_atomics"), 3.0);  // 2->2 is local
}

TEST(OneSidedNet, FetchAddPaysRoundTripLatencyAndLocalIsFree) {
  sim::Simulation s;
  net::Cluster c(s, small_cluster(2));

  sim::Time remote_done = 0;
  sim::Time local_done = 0;
  s.spawn([](sim::Simulation& sm, net::Cluster& cl, sim::Time& remote,
             sim::Time& local) -> Co<void> {
    co_await cl.remote_fetch_add(1, 2, 1, 5);
    remote = sm.now();
    co_await cl.remote_fetch_add(2, 2, 1, 5);
    local = sm.now();
  }(s, c, remote_done, local_done));
  s.run();

  // One round trip: request (src + dst verb latency) then response.
  const sim::Duration one_way =
      c.node(1).spec().rdma.latency + c.node(2).spec().rdma.latency;
  EXPECT_EQ(remote_done, 2 * one_way);
  EXPECT_EQ(local_done, remote_done);  // owner-local fetch-add is free
  EXPECT_EQ(c.rdma_counter(2, 1), 10u);
}

TEST(OneSidedNet, RemoteWriteUsesHcaPipesNotTheNic) {
  sim::Simulation s;
  net::Cluster c(s, small_cluster(2));
  const std::uint64_t bytes = 64 * 1024 * 1024;

  sim::Time done = 0;
  s.spawn([](sim::Simulation& sm, net::Cluster& cl, std::uint64_t b, sim::Time& d) -> Co<void> {
    co_await cl.remote_write(1, 2, /*offset=*/0, b, "w");
    co_await cl.remote_write(2, 2, /*offset=*/0, b, "local");  // free
    d = sm.now();
  }(s, c, bytes, done));
  s.run();

  // Store-and-forward through initiator tx then target rx, both unloaded.
  EXPECT_EQ(done, c.node(1).rdma_tx().unloaded_time(bytes) +
                      c.node(2).rdma_rx().unloaded_time(bytes));
  EXPECT_EQ(c.node(1).rdma_tx().bytes_moved(), bytes);
  EXPECT_EQ(c.node(2).rdma_rx().bytes_moved(), bytes);
  EXPECT_EQ(c.node(1).egress().bytes_moved(), 0u);  // the 1 GbE NIC idles
  EXPECT_EQ(c.node(2).ingress().bytes_moved(), 0u);
  EXPECT_EQ(c.metrics().counter_value("net.rdma_bytes"), static_cast<double>(bytes));
  EXPECT_EQ(c.metrics().counter_value("net.rdma_writes"), 1.0);
}

TEST(OneSidedNet, FetchAddReservationsYieldDisjointCoveringOffsets) {
  sim::Simulation s;
  net::Cluster c(s, small_cluster(4));

  // The transport's prefix-sum: concurrent senders reserve [offset,
  // offset+size) slices of one receive region by fetch-adding their
  // histogram sizes. The reservations must tile [0, total) exactly.
  const std::vector<std::uint64_t> sizes = {4096, 128, 65536, 1, 7777, 4096, 300, 65536};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;  // (offset, size)
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const int src = 1 + static_cast<int>(i % 4);
    s.spawn([](net::Cluster& cl, int from, std::uint64_t size,
               std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) -> Co<void> {
      const std::uint64_t off = co_await cl.remote_fetch_add(from, 3, /*counter=*/11, size);
      out.emplace_back(off, size);
    }(c, src, sizes[i], got));
  }
  s.run();

  ASSERT_EQ(got.size(), sizes.size());
  std::sort(got.begin(), got.end());
  std::uint64_t cursor = 0;
  for (const auto& [off, size] : got) {
    EXPECT_EQ(off, cursor) << "reservations must be disjoint and gap-free";
    cursor += size;
  }
  std::uint64_t total = 0;
  for (std::uint64_t b : sizes) total += b;
  EXPECT_EQ(cursor, total);
  EXPECT_EQ(c.rdma_counter(3, 11), total);  // the region cursor ends at the histogram sum
}

// ---- The one-sided shuffle transport ---------------------------------------

struct KV {
  std::uint64_t key;
  std::int64_t value;
};

const mem::StructDesc& kv_desc() {
  static const mem::StructDesc d = mem::StructDescBuilder("KV", 8)
                                       .field("key", mem::FieldType::U64, 1, offsetof(KV, key))
                                       .field("value", mem::FieldType::I64, 1, offsetof(KV, value))
                                       .build();
  return d;
}

mem::RecordBatch make_batch(const std::vector<KV>& rows) {
  mem::RecordBatch b(&kv_desc());
  for (const KV& kv : rows) b.append_raw(&kv);
  return b;
}

KV row_at(const mem::RecordBatch& b, std::size_t i) {
  KV kv;
  std::memcpy(&kv, b.record_ptr(i), sizeof(KV));
  return kv;
}

std::uint64_t shuffle_key(const std::byte* rec) {
  std::uint64_t k;
  std::memcpy(&k, rec, sizeof(k));
  return k;
}

std::vector<KV> skewed_rows(int n) {
  std::vector<KV> rows;
  rows.reserve(static_cast<std::size_t>(n));
  std::uint64_t s = 7;
  for (int i = 0; i < n; ++i) {
    rows.push_back(KV{sim::splitmix64(s) % 37, static_cast<std::int64_t>(i)});
  }
  return rows;
}

sh::ShuffleConfig one_sided_config() {
  sh::ShuffleConfig cfg;
  cfg.mode = sh::ShuffleMode::OneSided;
  return cfg;
}

/// A standalone service over a small cluster; partitions are owned
/// round-robin by workers 1..N.
struct Harness {
  explicit Harness(sh::ShuffleConfig cfg, int workers = 4)
      : cluster(simulation, small_cluster(workers)), gdfs(cluster),
        service(simulation, cluster, gdfs, std::move(cfg),
                [workers](int t) { return 1 + t % workers; }) {}

  sim::Simulation simulation;
  net::Cluster cluster;
  dfs::Gdfs gdfs;
  sh::ShuffleService service;
};

TEST(OneSidedShuffle, ExchangeDeliversExactMultisetOverRdmaOnly) {
  Harness h(one_sided_config(), 2);
  auto session = std::make_unique<sh::ShuffleSession>(h.service, 2, "t");
  const std::vector<KV> rows = skewed_rows(300);

  std::vector<KV> taken;
  h.simulation.spawn([](sh::ShuffleSession& s, const std::vector<KV>& in,
                        std::vector<KV>& out) -> Co<void> {
    auto buckets = s.partition(make_batch(in), &kv_desc(), &shuffle_key, nullptr);
    co_await s.send(2, std::move(buckets));  // worker 2 owns partition 1
    co_await s.finish();
    for (int t = 0; t < 2; ++t) {
      auto batches = co_await s.take(t, 1 + t);
      for (const auto& b : batches) {
        for (std::size_t i = 0; i < b.count(); ++i) out.push_back(row_at(b, i));
      }
    }
  }(*session, rows, taken));
  h.simulation.run();

  // Same multiset out as in: the transport moves the buckets, not the data.
  auto key_of = [](const KV& kv) { return std::make_pair(kv.key, kv.value); };
  std::multiset<std::pair<std::uint64_t, std::int64_t>> in_set, out_set;
  for (const KV& kv : rows) in_set.insert(key_of(kv));
  for (const KV& kv : taken) out_set.insert(key_of(kv));
  EXPECT_EQ(in_set, out_set);

  const auto& m = h.cluster.metrics();
  EXPECT_GT(m.counter_value("shuffle.one_sided_histograms"), 0.0);
  EXPECT_GT(m.counter_value("shuffle.one_sided_writes"), 0.0);
  EXPECT_EQ(m.counter_value("shuffle.one_sided_bytes"), m.counter_value("net.rdma_bytes"));
  EXPECT_EQ(m.counter_value("shuffle.blocks"), 0.0);  // the block path never ran
  EXPECT_EQ(m.counter_value("shuffle.bytes"), 0.0);
  EXPECT_EQ(session->network_bytes(), static_cast<std::uint64_t>(
                                          m.counter_value("net.rdma_bytes")));
}

TEST(OneSidedShuffle, CounterBarrierCompletesUnderInjectedFaults) {
  sh::ShuffleConfig cfg = one_sided_config();
  cfg.retry_backoff = sim::millis(10);
  Harness h(cfg, 2);
  auto session = std::make_unique<sh::ShuffleSession>(h.service, 1, "t");
  h.service.inject_transfer_faults(2);

  h.simulation.spawn([](sh::ShuffleSession& s) -> Co<void> {
    auto buckets = s.partition(make_batch(skewed_rows(50)), &kv_desc(), &shuffle_key, nullptr);
    co_await s.send(2, std::move(buckets));  // partition 0 is owned by worker 1
    co_await s.finish();  // the done-counter barrier must still terminate
  }(*session));
  h.simulation.run();

  EXPECT_EQ(h.service.pending_injected_faults(), 0);
  const auto& m = h.cluster.metrics();
  EXPECT_EQ(m.counter_value("shuffle.transfer_faults"), 2.0);
  EXPECT_EQ(m.counter_value("shuffle.transfer_retries"), 2.0);
  EXPECT_EQ(m.counter_value("shuffle.transfer_aborts"), 0.0);
  // Two consecutive faults on the write: backoff of 10 ms then 20 ms.
  EXPECT_GE(h.simulation.now(), sim::millis(30));
}

// ---- End-to-end through the engine -----------------------------------------

TEST(OneSidedShuffle, TracedRunNamesTheThreePhases) {
  df::EngineConfig cfg;
  cfg.cluster.num_workers = 4;
  cfg.dfs.replication = 2;
  cfg.shuffle.mode = sh::ShuffleMode::OneSided;
  cfg.trace = true;  // retain causal spans
  df::Engine engine(cfg);

  std::int64_t total = 0;
  engine.run([&total](df::Engine& eng) -> Co<void> {
    df::Job job(eng, "one-sided-e2e");
    co_await job.submit();
    auto ds = df::DataSet<KV>::from_generator(
                  eng, &kv_desc(), 8,
                  [](int part, std::vector<KV>& out) {
                    for (std::uint64_t i = static_cast<std::uint64_t>(part); i < 4000; i += 8) {
                      out.push_back(KV{i % 997, static_cast<std::int64_t>(i)});
                    }
                  })
                  .reduce_by_key("sum", df::OpCost{1.0, 16.0},
                                 [](const KV& kv) { return kv.key; },
                                 [](KV& acc, const KV& kv) { acc.value += kv.value; });
    auto rows = co_await ds.collect(job);
    job.finish();
    for (const KV& kv : rows) total += kv.value;
  });
  EXPECT_EQ(total, 4000LL * 3999 / 2);

  // Every one-sided phase shows up in the causal trace, so the critical-path
  // breakdown can attribute exchange time to histogram / write / barrier.
  std::set<std::string> names;
  for (const obs::CausalSpan& span : engine.cluster().spans().spans()) {
    names.insert(span.name);
  }
  EXPECT_TRUE(names.count("shuffle:histogram")) << "histogram phase not traced";
  EXPECT_TRUE(names.count("shuffle:one_sided_write")) << "write phase not traced";
  EXPECT_TRUE(names.count("shuffle:one_sided_barrier")) << "barrier phase not traced";
  EXPECT_TRUE(names.count("net:rdma_tx")) << "HCA pipe spans not traced";
}

}  // namespace
