// Tests for the block-granular shuffle subsystem: deterministic
// partitioning with map-side combine, credit backpressure toward a slow
// receiver, the spill-to-DFS round trip under a tight receiver budget, and
// retry-with-backoff on injected transfer faults — at the service level
// and end-to-end through the engine.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "dataflow/dataset.hpp"
#include "dataflow/engine.hpp"
#include "shuffle/shuffle_service.hpp"
#include "sim/random.hpp"

namespace sim = gflink::sim;
namespace mem = gflink::mem;
namespace net = gflink::net;
namespace dfs = gflink::dfs;
namespace df = gflink::dataflow;
namespace sh = gflink::shuffle;
using sim::Co;

namespace {

struct KV {
  std::uint64_t key;
  std::int64_t value;
};

const mem::StructDesc& kv_desc() {
  static const mem::StructDesc d = mem::StructDescBuilder("KV", 8)
                                       .field("key", mem::FieldType::U64, 1, offsetof(KV, key))
                                       .field("value", mem::FieldType::I64, 1, offsetof(KV, value))
                                       .build();
  return d;
}

mem::RecordBatch make_batch(const std::vector<KV>& rows) {
  mem::RecordBatch b(&kv_desc());
  for (const KV& kv : rows) b.append_raw(&kv);
  return b;
}

KV row_at(const mem::RecordBatch& b, std::size_t i) {
  KV kv;
  std::memcpy(&kv, b.record_ptr(i), sizeof(KV));
  return kv;
}

std::uint64_t shuffle_key(const std::byte* rec) {
  std::uint64_t k;
  std::memcpy(&k, rec, sizeof(k));
  return k;
}

void combine_kv(std::byte* acc, const std::byte* rec) {
  KV a, r;
  std::memcpy(&a, acc, sizeof(KV));
  std::memcpy(&r, rec, sizeof(KV));
  a.value += r.value;
  std::memcpy(acc, &a, sizeof(KV));
}

/// A standalone service over a small cluster; partitions are owned
/// round-robin by workers 1..N.
struct Harness {
  explicit Harness(sh::ShuffleConfig cfg, int workers = 4)
      : cluster(simulation, make_cluster(workers)), gdfs(cluster),
        service(simulation, cluster, gdfs, std::move(cfg),
                [workers](int t) { return 1 + t % workers; }) {}

  static net::ClusterConfig make_cluster(int workers) {
    net::ClusterConfig c;
    c.num_workers = workers;
    return c;
  }

  sim::Simulation simulation;
  net::Cluster cluster;
  dfs::Gdfs gdfs;
  sh::ShuffleService service;
};

std::vector<KV> skewed_rows(int n) {
  std::vector<KV> rows;
  rows.reserve(static_cast<std::size_t>(n));
  std::uint64_t s = 7;
  for (int i = 0; i < n; ++i) {
    rows.push_back(KV{sim::splitmix64(s) % 37, static_cast<std::int64_t>(i)});
  }
  return rows;
}

TEST(Shuffle, PartitionWithCombineIsExactAndDeterministic) {
  Harness h(sh::ShuffleConfig{});
  sh::ShuffleSession session(h.service, 4, "t");
  const std::vector<KV> rows = skewed_rows(500);
  mem::RecordBatch in = make_batch(rows);
  const sh::CombineFn combiner = &combine_kv;

  auto buckets = session.partition(in, &kv_desc(), &shuffle_key, &combiner);
  ASSERT_EQ(buckets.size(), 4u);

  // Combined: every key appears exactly once, in its hash-assigned bucket,
  // carrying the sum of its records' values.
  std::map<std::uint64_t, std::int64_t> expected;
  for (const KV& kv : rows) expected[kv.key] += kv.value;
  std::map<std::uint64_t, std::int64_t> got;
  for (int t = 0; t < 4; ++t) {
    for (std::size_t i = 0; i < buckets[static_cast<std::size_t>(t)].count(); ++i) {
      const KV kv = row_at(buckets[static_cast<std::size_t>(t)], i);
      std::uint64_t s = kv.key;
      EXPECT_EQ(static_cast<int>(sim::splitmix64(s) % 4), t);
      EXPECT_TRUE(got.emplace(kv.key, kv.value).second) << "key duplicated across buckets";
    }
  }
  EXPECT_EQ(got, expected);

  // Bit-identical across calls (first-occurrence order is deterministic).
  auto again = session.partition(in, &kv_desc(), &shuffle_key, &combiner);
  for (std::size_t t = 0; t < 4; ++t) {
    ASSERT_EQ(again[t].count(), buckets[t].count());
    for (std::size_t i = 0; i < again[t].count(); ++i) {
      EXPECT_EQ(0, std::memcmp(again[t].record_ptr(i), buckets[t].record_ptr(i), sizeof(KV)));
    }
  }

  // Without a combiner every record survives.
  auto raw = session.partition(in, &kv_desc(), &shuffle_key, nullptr);
  std::size_t total = 0;
  for (const auto& b : raw) total += b.count();
  EXPECT_EQ(total, rows.size());
}

TEST(Shuffle, CreditWindowBoundsInFlightBlocksAndStallsSenders) {
  sh::ShuffleConfig cfg;
  cfg.mode = sh::ShuffleMode::Pipelined;  // credits are a pipelined-transport mechanism
  cfg.block_bytes = 64;  // a 500-record bucket becomes ~125 blocks
  cfg.credits_per_partition = 2;
  Harness h(cfg, 2);
  auto session = std::make_unique<sh::ShuffleSession>(h.service, 1, "t");

  h.simulation.spawn([](sh::ShuffleSession& s) -> Co<void> {
    auto buckets = s.partition(make_batch(skewed_rows(500)), &kv_desc(), &shuffle_key, nullptr);
    co_await s.send(2, std::move(buckets));  // partition 0 is owned by worker 1
    co_await s.finish();
  }(*session));
  h.simulation.run();

  EXPECT_LE(h.service.max_blocks_in_flight(), 2);
  EXPECT_GE(h.cluster.metrics().counter_value("shuffle.credit_stalls"), 1.0);
  EXPECT_GE(h.cluster.metrics().counter_value("shuffle.blocks"), 60.0);
}

TEST(Shuffle, SpillRoundTripKeepsRecordsIntact) {
  sh::ShuffleConfig cfg;
  cfg.receiver_budget_bytes = 1024;  // force the second deposit to spill
  Harness h(cfg, 2);
  auto session = std::make_unique<sh::ShuffleSession>(h.service, 1, "t");
  const std::vector<KV> rows = skewed_rows(200);  // 3200 B > budget

  std::vector<KV> taken;
  h.simulation.spawn([](sh::ShuffleSession& s, const std::vector<KV>& in,
                        std::vector<KV>& out) -> Co<void> {
    auto buckets = s.partition(make_batch(in), &kv_desc(), &shuffle_key, nullptr);
    co_await s.send(2, std::move(buckets));
    co_await s.finish();
    // Resident bytes stay bounded by the budget plus one in-flight bucket.
    auto batches = co_await s.take(0, 1);
    for (const auto& b : batches) {
      for (std::size_t i = 0; i < b.count(); ++i) out.push_back(row_at(b, i));
    }
    // Checked after take(): under the async offload the byte accounting
    // runs worker-side when a block lands, which may be after finish();
    // take() awaits every in-flight block, so by here it is final.
    EXPECT_GT(s.spilled_bytes(), 0u);
  }(*session, rows, taken));
  h.simulation.run();

  EXPECT_EQ(taken.size(), rows.size());
  // Same multiset of records out as in (order may differ across deposits).
  auto key_of = [](const KV& kv) { return std::make_pair(kv.key, kv.value); };
  std::multiset<std::pair<std::uint64_t, std::int64_t>> in_set, out_set;
  for (const KV& kv : rows) in_set.insert(key_of(kv));
  for (const KV& kv : taken) out_set.insert(key_of(kv));
  EXPECT_EQ(in_set, out_set);

  const auto& m = h.cluster.metrics();
  EXPECT_GT(m.counter_value("shuffle.spill_bytes"), 0.0);
  EXPECT_EQ(m.counter_value("shuffle.spill_bytes"), m.counter_value("shuffle.unspill_bytes"));
  EXPECT_EQ(h.service.resident_bytes(1), 0u);  // all taken
}

TEST(Shuffle, InjectedTransferFaultsRetryWithBackoff) {
  sh::ShuffleConfig cfg;
  cfg.retry_backoff = sim::millis(10);
  Harness h(cfg, 2);
  auto session = std::make_unique<sh::ShuffleSession>(h.service, 1, "t");
  h.service.inject_transfer_faults(2);

  h.simulation.spawn([](sh::ShuffleSession& s) -> Co<void> {
    auto buckets = s.partition(make_batch(skewed_rows(50)), &kv_desc(), &shuffle_key, nullptr);
    co_await s.send(2, std::move(buckets));
    co_await s.finish();
  }(*session));
  h.simulation.run();

  EXPECT_EQ(h.service.pending_injected_faults(), 0);
  const auto& m = h.cluster.metrics();
  EXPECT_EQ(m.counter_value("shuffle.transfer_faults"), 2.0);
  EXPECT_EQ(m.counter_value("shuffle.transfer_retries"), 2.0);
  EXPECT_EQ(m.counter_value("shuffle.transfer_aborts"), 0.0);
  // Two consecutive faults on the first block: backoff of 10 ms then 20 ms.
  EXPECT_GE(h.simulation.now(), sim::millis(30));
}

// ---- End-to-end through the engine -----------------------------------------

df::EngineConfig tiny_engine_config() {
  df::EngineConfig cfg;
  cfg.cluster.num_workers = 4;
  cfg.dfs.replication = 2;
  cfg.job_submit_overhead = 0;
  cfg.job_schedule_overhead = 0;
  cfg.stage_schedule_overhead = 0;
  cfg.task_deploy_overhead = 0;
  return cfg;
}

/// Sum values per key over a shuffled reduce; returns total over all keys.
std::int64_t run_reduce_job(df::Engine& engine) {
  std::int64_t total = 0;
  engine.run([&total](df::Engine& eng) -> Co<void> {
    df::Job job(eng, "shuffle-e2e");
    co_await job.submit();
    auto ds = df::DataSet<KV>::from_generator(
                  eng, &kv_desc(), 8,
                  [](int part, std::vector<KV>& out) {
                    for (std::uint64_t i = static_cast<std::uint64_t>(part); i < 4000; i += 8) {
                      out.push_back(KV{i % 997, static_cast<std::int64_t>(i)});
                    }
                  })
                  .reduce_by_key("sum", df::OpCost{1.0, 16.0},
                                 [](const KV& kv) { return kv.key; },
                                 [](KV& acc, const KV& kv) { acc.value += kv.value; });
    auto rows = co_await ds.collect(job);
    job.finish();
    for (const KV& kv : rows) total += kv.value;
  });
  return total;
}

constexpr std::int64_t kExpectedTotal = 4000LL * 3999 / 2;

TEST(Shuffle, EngineRetriesInjectedFaultsToExactResult) {
  df::Engine engine(tiny_engine_config());
  engine.shuffle_service().inject_transfer_faults(3);
  EXPECT_EQ(run_reduce_job(engine), kExpectedTotal);
  EXPECT_EQ(engine.shuffle_service().pending_injected_faults(), 0);
  const auto& m = engine.metrics();
  EXPECT_EQ(m.counter_value("shuffle.transfer_faults"), 3.0);
  EXPECT_EQ(m.counter_value("shuffle.transfer_aborts"), 0.0);
}

TEST(Shuffle, AllTransportsAgreeSpillOrNot) {
  // The exchange transport is a pure scheduling choice: every mode produces
  // the same reduced result, pipelining is never slower than the barrier,
  // and the one-sided RDMA-style exchange is never slower than pipelined.
  df::EngineConfig barrier_cfg = tiny_engine_config();
  barrier_cfg.shuffle.mode = sh::ShuffleMode::Barrier;
  barrier_cfg.shuffle.spill_enabled = false;
  df::Engine barrier(barrier_cfg);
  EXPECT_EQ(run_reduce_job(barrier), kExpectedTotal);

  df::EngineConfig pipelined_cfg = tiny_engine_config();
  pipelined_cfg.shuffle.mode = sh::ShuffleMode::Pipelined;
  df::Engine pipelined(pipelined_cfg);
  EXPECT_EQ(run_reduce_job(pipelined), kExpectedTotal);
  EXPECT_LE(pipelined.now(), barrier.now());

  // One-sided is the engine default; the explicit mode must agree with it.
  df::Engine one_sided(tiny_engine_config());
  EXPECT_EQ(run_reduce_job(one_sided), kExpectedTotal);
  EXPECT_LE(one_sided.now(), pipelined.now());
  EXPECT_GT(one_sided.metrics().counter_value("shuffle.one_sided_writes"), 0.0);
  EXPECT_GT(one_sided.metrics().counter_value("net.rdma_bytes"), 0.0);
  EXPECT_EQ(one_sided.metrics().counter_value("shuffle.bytes"), 0.0);  // no block path

  df::EngineConfig spill_cfg = tiny_engine_config();
  spill_cfg.shuffle.receiver_budget_bytes = 256;
  df::Engine spilling(spill_cfg);
  EXPECT_EQ(run_reduce_job(spilling), kExpectedTotal);
  EXPECT_GT(spilling.metrics().counter_value("shuffle.spill_bytes"), 0.0);
  EXPECT_GE(spilling.now(), one_sided.now());  // spilling still costs time
}

TEST(Shuffle, AsyncSpillAccountsBytesExactlyOnce) {
  // Regression guard for the detached-offload double-count hazard: the
  // shuffle.spill_bytes counter is bumped at exactly one point (worker-side
  // on land, never at enqueue), so both spill paths see identical volumes,
  // every spilled byte is un-spilled at take(), and the async offload's
  // per-tier byte totals reconcile with the shuffle-level counter.
  auto run_path = [](bool async_path, double* spill_bytes, std::uint64_t* session_bytes,
                     sim::Time* elapsed) {
    sh::ShuffleConfig cfg;
    cfg.receiver_budget_bytes = 1024;
    cfg.spill_async = async_path;
    Harness h(cfg, 2);
    auto session = std::make_unique<sh::ShuffleSession>(h.service, 1, "t");
    std::size_t taken = 0;
    h.simulation.spawn([](sh::ShuffleSession& s, std::size_t& n) -> Co<void> {
      auto buckets = s.partition(make_batch(skewed_rows(200)), &kv_desc(), &shuffle_key, nullptr);
      co_await s.send(2, std::move(buckets));
      co_await s.finish();
      auto batches = co_await s.take(0, 1);
      for (const auto& b : batches) n += b.count();
    }(*session, taken));
    h.simulation.run();
    EXPECT_EQ(taken, 200u);
    const auto& m = h.cluster.metrics();
    *spill_bytes = m.counter_value("shuffle.spill_bytes");
    EXPECT_EQ(*spill_bytes, m.counter_value("shuffle.unspill_bytes"));
    *session_bytes = session->spilled_bytes();
    *elapsed = h.simulation.now();
    if (async_path) {
      double offloaded = 0.0;
      for (const char* tier : {"memory", "disk", "dfs"}) {
        offloaded += m.counter_value("spill_offload_bytes_total", {{"tier", tier}});
      }
      EXPECT_EQ(offloaded, *spill_bytes);
    }
  };
  double sync_bytes = 0.0, async_bytes = 0.0;
  std::uint64_t sync_session = 0, async_session = 0;
  sim::Time sync_t = 0, async_t = 0;
  run_path(false, &sync_bytes, &sync_session, &sync_t);
  run_path(true, &async_bytes, &async_session, &async_t);
  EXPECT_GT(async_bytes, 0.0);
  EXPECT_EQ(async_bytes, sync_bytes);  // same volume, each counted once
  EXPECT_EQ(async_session, static_cast<std::uint64_t>(async_bytes));
  EXPECT_EQ(sync_session, static_cast<std::uint64_t>(sync_bytes));
  EXPECT_LE(async_t, sync_t);  // the offload moved tier I/O off the path
}

}  // namespace
