// Tests for the extended operator set: distinct, sample, take, union,
// coGroup — plus cross-operator composition.
#include <gtest/gtest.h>

#include <set>

#include "dataflow/dataset.hpp"
#include "dataflow/engine.hpp"

namespace sim = gflink::sim;
namespace mem = gflink::mem;
namespace df = gflink::dataflow;
using df::DataSet;
using df::Engine;
using df::Job;
using df::OpCost;
using sim::Co;

namespace {

struct KV {
  std::uint64_t key;
  std::int64_t value;
};

const mem::StructDesc& kv_desc() {
  static const mem::StructDesc d = mem::StructDescBuilder("KV", 8)
                                       .field("key", mem::FieldType::U64, 1, offsetof(KV, key))
                                       .field("value", mem::FieldType::I64, 1, offsetof(KV, value))
                                       .build();
  return d;
}

df::EngineConfig fast_config(int workers = 3) {
  df::EngineConfig cfg;
  cfg.cluster.num_workers = workers;
  cfg.dfs.replication = std::min(2, workers);
  cfg.job_submit_overhead = 0;
  cfg.job_schedule_overhead = 0;
  cfg.stage_schedule_overhead = 0;
  cfg.task_deploy_overhead = 0;
  return cfg;
}

DataSet<KV> iota(Engine& e, int partitions, std::uint64_t n, std::uint64_t key_mod) {
  return DataSet<KV>::from_generator(
      e, &kv_desc(), partitions, [n, key_mod, partitions](int part, std::vector<KV>& out) {
        for (std::uint64_t i = static_cast<std::uint64_t>(part); i < n;
             i += static_cast<std::uint64_t>(partitions)) {
          out.push_back(KV{i % key_mod, static_cast<std::int64_t>(i)});
        }
      });
}

}  // namespace

TEST(Operators, DistinctKeepsOnePerKey) {
  Engine e(fast_config());
  std::vector<KV> rows;
  e.run([&rows](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 6, 1000, 37).distinct("distinct", OpCost{4.0, 16.0},
                                              [](const KV& kv) { return kv.key; });
    rows = co_await ds.collect(job);
    job.finish();
  });
  EXPECT_EQ(rows.size(), 37u);
  std::set<std::uint64_t> keys;
  for (const auto& kv : rows) keys.insert(kv.key);
  EXPECT_EQ(keys.size(), 37u);
}

TEST(Operators, SampleIsDeterministicAndProportional) {
  Engine e(fast_config());
  std::uint64_t n1 = 0, n2 = 0;
  e.run([&](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto src = iota(eng, 6, 50'000, 1ULL << 40);
    auto sampled = src.sample("s", 0.25, [](const KV& kv) { return kv.value * 7919; });
    n1 = co_await sampled.count(job);
    n2 = co_await sampled.count(job);  // same plan, same sample
    job.finish();
  });
  EXPECT_EQ(n1, n2);
  EXPECT_NEAR(static_cast<double>(n1), 12'500.0, 400.0);
}

TEST(Operators, SampleExtremes) {
  Engine e(fast_config());
  std::uint64_t none = 1, all = 0;
  e.run([&](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto src = iota(eng, 4, 1000, 1000);
    none = co_await src.sample("none", 0.0, [](const KV& kv) { return kv.value; }).count(job);
    all = co_await src.sample("all", 1.0, [](const KV& kv) { return kv.value; }).count(job);
    job.finish();
  });
  EXPECT_EQ(none, 0u);
  EXPECT_EQ(all, 1000u);
}

TEST(Operators, TakeReturnsExactlyN) {
  Engine e(fast_config());
  std::vector<KV> rows;
  e.run([&rows](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto src = iota(eng, 5, 10'000, 1ULL << 40);
    rows = co_await src.take(job, 17);
    job.finish();
  });
  EXPECT_EQ(rows.size(), 17u);
}

TEST(Operators, TakeMoreThanAvailableReturnsAll) {
  Engine e(fast_config());
  std::vector<KV> rows;
  e.run([&rows](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    rows = co_await iota(eng, 3, 10, 10).take(job, 100);
    job.finish();
  });
  EXPECT_EQ(rows.size(), 10u);
}

TEST(Operators, UnionConcatenatesWithoutCost) {
  Engine e(fast_config());
  std::uint64_t n = 0;
  double net_before = 0, net_after = 0;
  e.run([&](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto a = co_await iota(eng, 3, 100, 100).materialize(job);
    auto b = co_await iota(eng, 3, 200, 200).materialize(job);
    net_before = eng.cluster().metrics().counter("net.bytes");
    auto u = eng.union_of(a, b);
    net_after = eng.cluster().metrics().counter("net.bytes");
    n = co_await DataSet<KV>::from_handle(eng, u).count(job);
    job.finish();
  });
  EXPECT_EQ(n, 300u);
  EXPECT_DOUBLE_EQ(net_before, net_after);  // union moved nothing
}

TEST(Operators, CoGroupSeesFullGroups) {
  Engine e(fast_config());
  std::vector<KV> rows;
  e.run([&rows](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    // Left: keys 0..9 once. Right: keys 0..9 three times each.
    auto left = co_await iota(eng, 3, 10, 10).materialize(job);
    auto right = co_await iota(eng, 3, 30, 10).materialize(job);
    auto grouped = co_await df::co_group<KV, KV, KV>(
        job, left, right, [](const KV& kv) { return kv.key; },
        [](const KV& kv) { return kv.key; },
        [](const std::vector<const KV*>& l, const std::vector<const KV*>& r,
           df::FlatCollector<KV>& out) {
          // Emit one record per key: count of left in key, sum of right.
          std::int64_t sum = 0;
          for (const KV* kv : r) sum += kv->value;
          out.add(KV{l.empty() ? ~0ULL : l[0]->key,
                     static_cast<std::int64_t>(l.size()) * 1000 + sum});
        },
        &kv_desc(), OpCost{8.0, 32.0}, 3);
    rows = co_await DataSet<KV>::from_handle(eng, grouped).collect(job);
    job.finish();
  });
  ASSERT_EQ(rows.size(), 10u);
  for (const auto& kv : rows) {
    ASSERT_NE(kv.key, ~0ULL);  // every key had left records
    // value = 1*1000 + (k + k+10 + k+20)
    EXPECT_EQ(kv.value, 1000 + static_cast<std::int64_t>(3 * kv.key + 30));
  }
}

TEST(Operators, CoGroupHandlesOneSidedKeys) {
  Engine e(fast_config());
  std::uint64_t left_only = 0, right_only = 0, both = 0;
  e.run([&](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto left = co_await iota(eng, 3, 10, 20).materialize(job);    // keys 0..9
    auto right = co_await iota(eng, 3, 40, 20).materialize(job);   // keys 0..19
    auto grouped = co_await df::co_group<KV, KV, KV>(
        job, left, right, [](const KV& kv) { return kv.key; },
        [](const KV& kv) { return kv.key; },
        [&](const std::vector<const KV*>& l, const std::vector<const KV*>& r,
            df::FlatCollector<KV>& out) {
          if (!l.empty() && !r.empty()) ++both;
          if (!l.empty() && r.empty()) ++left_only;
          if (l.empty() && !r.empty()) ++right_only;
          out.add(KV{0, 0});
        },
        &kv_desc(), OpCost{8.0, 32.0}, 3);
    (void)co_await DataSet<KV>::from_handle(eng, grouped).count(job);
    job.finish();
  });
  EXPECT_EQ(both, 10u);
  EXPECT_EQ(left_only, 0u);
  EXPECT_EQ(right_only, 10u);
}

TEST(Operators, GroupReduceSeesWholeGroups) {
  Engine e(fast_config());
  std::vector<KV> rows;
  e.run([&rows](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    // Median-ish per key: emit the max value of each group (needs the whole
    // group — not expressible as an associative combine of this test's
    // shape on purpose: also emit the group size).
    auto ds = iota(eng, 6, 1000, 10).group_reduce<KV>(
        &kv_desc(), "groupMax", OpCost{8.0, 16.0}, [](const KV& kv) { return kv.key; },
        [](const std::vector<const KV*>& group, df::FlatCollector<KV>& out) {
          std::int64_t max_v = 0;
          for (const KV* kv : group) max_v = std::max(max_v, kv->value);
          out.add(KV{group[0]->key, max_v * 1000 + static_cast<std::int64_t>(group.size())});
        });
    rows = co_await ds.collect(job);
    job.finish();
  });
  ASSERT_EQ(rows.size(), 10u);
  for (const auto& kv : rows) {
    // Key k appears for values k, k+10, ..., k+990: max = 990+k, count 100.
    EXPECT_EQ(kv.value, (990 + static_cast<std::int64_t>(kv.key)) * 1000 + 100);
  }
}

TEST(Operators, GroupReduceCanChangeRecordType) {
  Engine e(fast_config());
  std::uint64_t n = 0;
  e.run([&n](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 4, 500, 25).group_reduce<KV>(
        &kv_desc(), "explode", OpCost{4.0, 16.0}, [](const KV& kv) { return kv.key; },
        [](const std::vector<const KV*>& group, df::FlatCollector<KV>& out) {
          // Emit two records per group.
          out.add(*group.front());
          out.add(*group.back());
        });
    n = co_await ds.count(job);
    job.finish();
  });
  EXPECT_EQ(n, 50u);
}

TEST(Operators, GroupReduceShufflesRawRecords) {
  // Unlike reduceByKey (map-side combine), groupReduce ships every record:
  // shuffle volume must scale with the input, not the key count.
  Engine e(fast_config(4));
  std::uint64_t grp_shuffle = 0, red_shuffle = 0;
  e.run([&](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto src = iota(eng, 8, 20000, 4);
    auto g = src.group_reduce<KV>(
        &kv_desc(), "group", OpCost{2.0, 16.0}, [](const KV& kv) { return kv.key; },
        [](const std::vector<const KV*>& group, df::FlatCollector<KV>& out) {
          out.add(*group.front());
        });
    (void)co_await g.count(job);
    grp_shuffle = job.stats().shuffle_bytes;
    auto r = src.reduce_by_key("reduce", OpCost{2.0, 16.0},
                               [](const KV& kv) { return kv.key; },
                               [](KV& acc, const KV& kv) { acc.value += kv.value; });
    (void)co_await r.count(job);
    red_shuffle = job.stats().shuffle_bytes - grp_shuffle;
    job.finish();
  });
  EXPECT_GT(grp_shuffle, 100 * red_shuffle);
}

TEST(Operators, ComposedPipeline) {
  // union -> distinct -> sample -> reduce: operators compose.
  Engine e(fast_config());
  std::vector<KV> rows;
  e.run([&rows](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto a = co_await iota(eng, 3, 500, 50).materialize(job);
    auto b = co_await iota(eng, 3, 500, 50).materialize(job);  // duplicates of a's keys
    auto u = eng.union_of(a, b);
    auto ds = DataSet<KV>::from_handle(eng, u)
                  .distinct("d", OpCost{2.0, 16.0}, [](const KV& kv) { return kv.key; })
                  .reduce("count", OpCost{1.0, 16.0},
                          [](KV& acc, const KV& kv) { acc.value = acc.value; (void)kv; });
    rows = co_await ds.collect(job);
    job.finish();
  });
  EXPECT_EQ(rows.size(), 1u);
}
