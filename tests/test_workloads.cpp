// Tests for the benchmark workloads: CPU-vs-GPU result equivalence,
// convergence behaviour, generator determinism, and run accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "workloads/concomp.hpp"
#include "workloads/kmeans.hpp"
#include "workloads/linreg.hpp"
#include "workloads/pagerank.hpp"
#include "workloads/pointadd.hpp"
#include "workloads/spmv.hpp"
#include "workloads/wordcount.hpp"

namespace sim = gflink::sim;
namespace df = gflink::dataflow;
namespace core = gflink::core;
namespace wl = gflink::workloads;
using sim::Co;
using wl::Mode;
using wl::Testbed;

namespace {

Testbed small_testbed() {
  Testbed tb;
  tb.workers = 3;
  tb.gpus_per_worker = 2;
  tb.scale = 1e-3;
  return tb;
}

/// Run a workload driver in a freshly built engine (+ runtime in GPU mode).
template <typename ConfigT, typename ResultT>
ResultT run_workload(sim::Co<ResultT> (*driver)(df::Engine&, core::GFlinkRuntime*,
                                                const Testbed&, Mode, const ConfigT&),
                     const Testbed& tb, Mode mode, const ConfigT& config) {
  df::Engine engine(wl::make_engine_config(tb));
  std::unique_ptr<core::GFlinkRuntime> runtime;
  if (mode == Mode::Gpu) {
    wl::ensure_kernels_registered();
    runtime = std::make_unique<core::GFlinkRuntime>(engine, wl::make_gpu_config(tb));
  }
  ResultT result{};
  engine.run([&](df::Engine& eng) -> Co<void> {
    result = co_await driver(eng, runtime.get(), tb, mode, config);
  });
  return result;
}

}  // namespace

// ---- KMeans -----------------------------------------------------------------

TEST(KMeans, CpuAndGpuCentersAgree) {
  auto tb = small_testbed();
  wl::kmeans::Config cfg;
  cfg.points = 4'000'000;  // 4000 scaled
  cfg.iterations = 3;
  cfg.write_output = false;
  auto cpu = run_workload(&wl::kmeans::run, tb, Mode::Cpu, cfg);
  auto gpu = run_workload(&wl::kmeans::run, tb, Mode::Gpu, cfg);
  ASSERT_EQ(cpu.centers.size(), gpu.centers.size());
  for (std::size_t c = 0; c < cpu.centers.size(); ++c) {
    for (int j = 0; j < wl::kDim; ++j) {
      EXPECT_NEAR(cpu.centers[c].x[j], gpu.centers[c].x[j], 1e-2)
          << "center " << c << " dim " << j;
    }
  }
}

TEST(KMeans, CentersConvergeTowardGroundTruth) {
  auto tb = small_testbed();
  wl::kmeans::Config cfg;
  cfg.points = 8'000'000;
  cfg.iterations = 6;
  cfg.write_output = false;
  auto result = run_workload(&wl::kmeans::run, tb, Mode::Cpu, cfg);
  // Ground-truth centers sit near (20c, 20c+eps, ...) per cluster c; after
  // convergence every recovered center must be close to one truth cluster.
  for (const auto& center : result.centers) {
    double best = 1e30;
    for (int truth = 0; truth < wl::kClusters; ++truth) {
      double d = 0;
      for (int j = 0; j < wl::kDim; ++j) {
        const double e = center.x[j] - (truth * 20 + (j % 3));
        d += e * e;
      }
      best = std::min(best, d);
    }
    EXPECT_LT(std::sqrt(best), 2.0);
  }
}

TEST(KMeans, IterationTimesShapeFirstHighMiddleLow) {
  auto tb = small_testbed();
  wl::kmeans::Config cfg;
  cfg.points = 20'000'000;
  cfg.iterations = 5;
  cfg.write_output = true;
  auto result = run_workload(&wl::kmeans::run, tb, Mode::Gpu, cfg);
  ASSERT_EQ(result.run.iterations.size(), 5u);
  // First iteration reads the input: clearly slower than the second.
  EXPECT_GT(result.run.iterations[0], 2 * result.run.iterations[1]);
  // Last iteration writes the clustered output: slower than the middle.
  EXPECT_GT(result.run.iterations[4], result.run.iterations[2]);
}

TEST(KMeans, GpuCacheHitsAfterFirstIteration) {
  auto tb = small_testbed();
  df::Engine engine(wl::make_engine_config(tb));
  wl::ensure_kernels_registered();
  core::GFlinkRuntime runtime(engine, wl::make_gpu_config(tb));
  wl::kmeans::Config cfg;
  cfg.points = 4'000'000;
  cfg.iterations = 3;
  cfg.write_output = false;
  engine.run([&](df::Engine& eng) -> Co<void> {
    (void)co_await wl::kmeans::run(eng, &runtime, tb, Mode::Gpu, cfg);
  });
  EXPECT_GT(runtime.total_cache_hits(), 0u);
}

// ---- LinearRegression ---------------------------------------------------------

TEST(LinReg, CpuAndGpuWeightsAgree) {
  auto tb = small_testbed();
  wl::linreg::Config cfg;
  cfg.samples = 4'000'000;
  cfg.iterations = 3;
  cfg.write_output = false;
  auto cpu = run_workload(&wl::linreg::run, tb, Mode::Cpu, cfg);
  auto gpu = run_workload(&wl::linreg::run, tb, Mode::Gpu, cfg);
  ASSERT_EQ(cpu.weights.size(), gpu.weights.size());
  for (std::size_t j = 0; j < cpu.weights.size(); ++j) {
    EXPECT_NEAR(cpu.weights[j], gpu.weights[j], 1e-9) << "weight " << j;
  }
}

TEST(LinReg, LossDecreasesOverIterations) {
  auto tb = small_testbed();
  wl::linreg::Config cfg;
  cfg.samples = 4'000'000;
  cfg.write_output = false;
  cfg.learning_rate = 0.05;
  // Proxy for loss: distance of learned weights from the generator's
  // ground truth (w_j = (j+1)*0.25, bias 3.0) shrinks with more epochs.
  auto distance = [&](int iters) {
    cfg.iterations = iters;
    auto r = run_workload(&wl::linreg::run, tb, Mode::Cpu, cfg);
    double d = 0;
    for (int j = 0; j < wl::kDim; ++j) {
      const double e = r.weights[static_cast<std::size_t>(j)] - (j + 1) * 0.25;
      d += e * e;
    }
    d += (r.weights[wl::kDim] - 3.0) * (r.weights[wl::kDim] - 3.0);
    return std::sqrt(d);
  };
  EXPECT_LT(distance(8), distance(2));
}

// ---- SpMV ---------------------------------------------------------------------

TEST(Spmv, CpuAndGpuChecksumsAgree) {
  auto tb = small_testbed();
  wl::spmv::Config cfg;
  cfg.matrix_bytes = 64ULL << 20;  // 64 KB scaled
  cfg.iterations = 3;
  cfg.write_output = false;
  auto cpu = run_workload(&wl::spmv::run, tb, Mode::Cpu, cfg);
  auto gpu = run_workload(&wl::spmv::run, tb, Mode::Gpu, cfg);
  EXPECT_EQ(cpu.rows, gpu.rows);
  EXPECT_NEAR(cpu.run.checksum, gpu.run.checksum, 1e-3);
}

TEST(Spmv, MatrixCachedAfterFirstIteration) {
  // The paper's Fig. 7b setup: a single machine (colocated master) with a
  // matrix far larger than the vector.
  auto tb = small_testbed();
  tb.workers = 1;
  df::Engine engine(wl::make_engine_config(tb));
  wl::ensure_kernels_registered();
  core::GFlinkRuntime runtime(engine, wl::make_gpu_config(tb));
  wl::spmv::Config cfg;
  cfg.matrix_bytes = 1ULL << 30;  // the paper's 1.0 GB matrix
  cfg.iterations = 4;
  cfg.write_output = false;
  std::vector<sim::Duration> iters;
  engine.run([&](df::Engine& eng) -> Co<void> {
    auto r = co_await wl::spmv::run(eng, &runtime, tb, Mode::Gpu, cfg);
    iters = r.run.iterations;
  });
  ASSERT_EQ(iters.size(), 4u);
  // Iterations after the first run much faster (matrix cached, no DFS).
  EXPECT_GT(iters[0], 3 * iters[1]);
  EXPECT_GT(runtime.total_cache_hits(), 0u);
}

// ---- PageRank -------------------------------------------------------------------

TEST(PageRank, CpuAndGpuRanksAgree) {
  auto tb = small_testbed();
  wl::pagerank::Config cfg;
  cfg.pages = 2'000'000;
  cfg.iterations = 3;
  cfg.write_output = false;
  auto cpu = run_workload(&wl::pagerank::run, tb, Mode::Cpu, cfg);
  auto gpu = run_workload(&wl::pagerank::run, tb, Mode::Gpu, cfg);
  ASSERT_EQ(cpu.ranks.size(), gpu.ranks.size());
  for (std::size_t i = 0; i < cpu.ranks.size(); ++i) {
    // f32 contributions are summed in different orders by the two paths
    // (different partition counts): bit-exactness is not expected.
    EXPECT_NEAR(cpu.ranks[i], gpu.ranks[i], 1e-8);
  }
}

TEST(PageRank, RanksFormADistribution) {
  auto tb = small_testbed();
  wl::pagerank::Config cfg;
  cfg.pages = 2'000'000;
  cfg.iterations = 5;
  cfg.write_output = false;
  auto r = run_workload(&wl::pagerank::run, tb, Mode::Cpu, cfg);
  for (double rank : r.ranks) {
    EXPECT_GT(rank, 0.0);
    EXPECT_LT(rank, 1.0);
  }
}

TEST(PageRank, ShuffleDominatesNetwork) {
  auto tb = small_testbed();
  wl::pagerank::Config cfg;
  cfg.pages = 2'000'000;
  cfg.iterations = 3;
  cfg.write_output = false;
  auto r = run_workload(&wl::pagerank::run, tb, Mode::Cpu, cfg);
  EXPECT_GT(r.run.stats.shuffle_bytes, 0u);
}

// ---- ConnectedComponents ---------------------------------------------------------

TEST(ConComp, LabelsConvergeToComponents) {
  auto tb = small_testbed();
  wl::concomp::Config cfg;
  cfg.vertices = 2'000'000;
  cfg.components = 16;
  cfg.iterations = 8;
  cfg.write_output = false;
  auto r = run_workload(&wl::concomp::run, tb, Mode::Cpu, cfg);
  EXPECT_EQ(r.distinct_labels, 16u);
}

TEST(ConComp, CpuAndGpuAgree) {
  auto tb = small_testbed();
  wl::concomp::Config cfg;
  cfg.vertices = 2'000'000;
  cfg.components = 8;
  cfg.iterations = 4;
  cfg.write_output = false;
  auto cpu = run_workload(&wl::concomp::run, tb, Mode::Cpu, cfg);
  auto gpu = run_workload(&wl::concomp::run, tb, Mode::Gpu, cfg);
  EXPECT_EQ(cpu.distinct_labels, gpu.distinct_labels);
  EXPECT_EQ(cpu.run.checksum, gpu.run.checksum);
}

// ---- WordCount --------------------------------------------------------------------

TEST(WordCount, CpuAndGpuCountsAgree) {
  auto tb = small_testbed();
  wl::wordcount::Config cfg;
  cfg.text_bytes = 64ULL << 20;  // 64 KB scaled
  cfg.write_output = false;
  auto cpu = run_workload(&wl::wordcount::run, tb, Mode::Cpu, cfg);
  auto gpu = run_workload(&wl::wordcount::run, tb, Mode::Gpu, cfg);
  EXPECT_EQ(cpu.total_words, gpu.total_words);
  EXPECT_EQ(cpu.distinct_words, gpu.distinct_words);
}

TEST(WordCount, CountsEveryGeneratedWord) {
  auto tb = small_testbed();
  wl::wordcount::Config cfg;
  cfg.text_bytes = 64ULL << 20;
  cfg.write_output = false;
  auto r = run_workload(&wl::wordcount::run, tb, Mode::Cpu, cfg);
  const auto bytes = static_cast<std::uint64_t>(static_cast<double>(cfg.text_bytes) * tb.scale);
  EXPECT_EQ(r.total_words, static_cast<std::uint64_t>(bytes / cfg.bytes_per_word));
  EXPECT_GT(r.distinct_words, 100u);
}

TEST(WordCount, ZipfSkewsCounts) {
  auto tb = small_testbed();
  wl::wordcount::Config cfg;
  cfg.text_bytes = 64ULL << 20;
  cfg.write_output = false;
  auto r = run_workload(&wl::wordcount::run, tb, Mode::Cpu, cfg);
  // With Zipf(1.0), the vocabulary is far from exhausted uniformly.
  EXPECT_LT(r.distinct_words, cfg.vocabulary);
}

// ---- PointAdd ---------------------------------------------------------------------

TEST(PointAdd, CpuAndGpuAgree) {
  auto tb = small_testbed();
  wl::pointadd::Config cfg;
  cfg.points = 2'000'000;
  auto cpu = run_workload(&wl::pointadd::run, tb, Mode::Cpu, cfg);
  auto gpu = run_workload(&wl::pointadd::run, tb, Mode::Gpu, cfg);
  EXPECT_EQ(cpu.run.checksum, gpu.run.checksum);
}

// ---- Cross-cutting ----------------------------------------------------------------

TEST(Workloads, GeneratorsAreDeterministic) {
  auto a = wl::kmeans::point_at(123456, 42);
  auto b = wl::kmeans::point_at(123456, 42);
  for (int j = 0; j < wl::kDim; ++j) EXPECT_EQ(a.x[j], b.x[j]);
  auto r1 = wl::spmv::row_at(77, 1000, 5);
  auto r2 = wl::spmv::row_at(77, 1000, 5);
  EXPECT_EQ(r1.col[13], r2.col[13]);
  EXPECT_EQ(r1.val[63], r2.val[63]);
  auto p1 = wl::pagerank::page_at(9, 100, 23);
  auto p2 = wl::pagerank::page_at(9, 100, 23);
  EXPECT_EQ(p1.out[7], p2.out[7]);
}

TEST(Workloads, RunsAreDeterministic) {
  auto tb = small_testbed();
  wl::kmeans::Config cfg;
  cfg.points = 2'000'000;
  cfg.iterations = 2;
  cfg.write_output = false;
  auto a = run_workload(&wl::kmeans::run, tb, Mode::Gpu, cfg);
  auto b = run_workload(&wl::kmeans::run, tb, Mode::Gpu, cfg);
  EXPECT_EQ(a.run.total, b.run.total);
  EXPECT_EQ(a.run.checksum, b.run.checksum);
}

// Property sweep: GPU speedup over CPU is positive for the compute-bound
// iterative workloads at every size in a small grid.
class SpeedupProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpeedupProperty, KmeansGpuBeatsCpu) {
  auto tb = small_testbed();
  wl::kmeans::Config cfg;
  cfg.points = GetParam();
  cfg.iterations = 4;
  cfg.write_output = false;
  auto cpu = run_workload(&wl::kmeans::run, tb, Mode::Cpu, cfg);
  auto gpu = run_workload(&wl::kmeans::run, tb, Mode::Gpu, cfg);
  EXPECT_LT(gpu.run.total, cpu.run.total)
      << "points=" << cfg.points << " cpu=" << sim::format_duration(cpu.run.total)
      << " gpu=" << sim::format_duration(gpu.run.total);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpeedupProperty,
                         ::testing::Values(10'000'000ULL, 40'000'000ULL, 100'000'000ULL));
