// Randomized end-to-end check of the dataflow engine: build a random chain
// of map/filter/flatMap operators ending in a keyed reduction, run it on a
// random cluster configuration, and compare the collected result against a
// straightforward single-threaded reference evaluation of the same chain.
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "dataflow/dataset.hpp"
#include "dataflow/engine.hpp"
#include "service/job_service.hpp"
#include "sim/random.hpp"

namespace sim = gflink::sim;
namespace mem = gflink::mem;
namespace df = gflink::dataflow;
using df::DataSet;
using df::Engine;
using df::Job;
using df::OpCost;
using sim::Co;

namespace {

struct KV {
  std::uint64_t key;
  std::int64_t value;
};

const mem::StructDesc& kv_desc() {
  static const mem::StructDesc d = mem::StructDescBuilder("KV", 8)
                                       .field("key", mem::FieldType::U64, 1, offsetof(KV, key))
                                       .field("value", mem::FieldType::I64, 1, offsetof(KV, value))
                                       .build();
  return d;
}

// The random chain is described by a small op program so the engine build
// and the reference evaluation interpret exactly the same spec.
struct OpSpec {
  enum class Kind { MapAffine, FilterMod, FlatMapDup } kind;
  std::int64_t a = 1;  // parameters, meaning depends on kind
  std::int64_t b = 0;
};

std::vector<OpSpec> random_chain(sim::Rng& rng) {
  std::vector<OpSpec> ops;
  const int n = 1 + static_cast<int>(rng.next_below(5));
  for (int i = 0; i < n; ++i) {
    OpSpec op;
    switch (rng.next_below(3)) {
      case 0:
        op.kind = OpSpec::Kind::MapAffine;  // value = a*value + b
        op.a = 1 + static_cast<std::int64_t>(rng.next_below(4));
        op.b = static_cast<std::int64_t>(rng.next_below(100)) - 50;
        break;
      case 1:
        op.kind = OpSpec::Kind::FilterMod;  // keep if value % a != b
        op.a = 2 + static_cast<std::int64_t>(rng.next_below(5));
        op.b = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(2)));
        break;
      default:
        op.kind = OpSpec::Kind::FlatMapDup;  // emit record a times (1..3)
        op.a = 1 + static_cast<std::int64_t>(rng.next_below(3));
        break;
    }
    ops.push_back(op);
  }
  return ops;
}

std::int64_t safe_mod(std::int64_t v, std::int64_t m) {
  return ((v % m) + m) % m;
}

/// Reference evaluation: the same chain + keyed sum, single threaded.
std::map<std::uint64_t, std::int64_t> reference(const std::vector<KV>& input,
                                                const std::vector<OpSpec>& ops,
                                                std::uint64_t key_mod) {
  std::vector<KV> cur = input;
  for (const auto& op : ops) {
    std::vector<KV> next;
    for (const auto& kv : cur) {
      switch (op.kind) {
        case OpSpec::Kind::MapAffine:
          next.push_back(KV{kv.key, op.a * kv.value + op.b});
          break;
        case OpSpec::Kind::FilterMod:
          if (safe_mod(kv.value, op.a) != op.b) next.push_back(kv);
          break;
        case OpSpec::Kind::FlatMapDup:
          for (std::int64_t d = 0; d < op.a; ++d) next.push_back(kv);
          break;
      }
    }
    cur = std::move(next);
  }
  std::map<std::uint64_t, std::int64_t> sums;
  for (const auto& kv : cur) sums[kv.key % key_mod] += kv.value;
  return sums;
}

/// Random exchange configuration: exercises the pipelined block path with
/// tiny blocks and credit windows, tight spill budgets, the barrier
/// fallback, and the one-sided RDMA-style exchange. Results must be
/// identical in every mode.
gflink::shuffle::ShuffleConfig random_shuffle_config(sim::Rng& rng) {
  using gflink::shuffle::ShuffleMode;
  gflink::shuffle::ShuffleConfig cfg;
  switch (rng.next_below(4)) {
    case 0: cfg.mode = ShuffleMode::Barrier; break;
    case 1: cfg.mode = ShuffleMode::OneSided; break;
    default: cfg.mode = ShuffleMode::Pipelined; break;
  }
  cfg.block_bytes = 1ULL << (4 + rng.next_below(8));
  cfg.credits_per_partition = 1 + static_cast<int>(rng.next_below(4));
  cfg.spill_enabled = rng.next_below(2) == 0;
  if (cfg.spill_enabled && rng.next_below(2) == 0) {
    cfg.receiver_budget_bytes = 1 + rng.next_below(4096);  // force spills
  }
  return cfg;
}

/// Engine evaluation of the same spec.
std::map<std::uint64_t, std::int64_t> run_engine(const std::vector<KV>& input,
                                                 const std::vector<OpSpec>& ops,
                                                 std::uint64_t key_mod, int workers,
                                                 int partitions,
                                                 const gflink::shuffle::ShuffleConfig& shuffle,
                                                 int transfer_faults) {
  df::EngineConfig cfg;
  cfg.cluster.num_workers = workers;
  cfg.dfs.replication = std::min(2, workers);
  cfg.job_submit_overhead = 0;
  cfg.job_schedule_overhead = 0;
  cfg.shuffle = shuffle;
  Engine e(cfg);
  e.shuffle_service().inject_transfer_faults(transfer_faults);
  std::map<std::uint64_t, std::int64_t> sums;
  e.run([&](Engine& eng) -> Co<void> {
    Job job(eng, "fuzz");
    co_await job.submit();
    DataSet<KV> ds = DataSet<KV>::from_generator(
        eng, &kv_desc(), partitions, [&input, partitions](int part, std::vector<KV>& out) {
          for (std::size_t i = static_cast<std::size_t>(part); i < input.size();
               i += static_cast<std::size_t>(partitions)) {
            out.push_back(input[i]);
          }
        });
    for (const auto& op : ops) {
      switch (op.kind) {
        case OpSpec::Kind::MapAffine:
          ds = ds.map<KV>(&kv_desc(), "affine", OpCost{2.0, 16.0},
                          [a = op.a, b = op.b](const KV& kv) {
                            return KV{kv.key, a * kv.value + b};
                          });
          break;
        case OpSpec::Kind::FilterMod:
          ds = ds.filter("mod", OpCost{2.0, 16.0}, [a = op.a, b = op.b](const KV& kv) {
            return safe_mod(kv.value, a) != b;
          });
          break;
        case OpSpec::Kind::FlatMapDup:
          ds = ds.flat_map<KV>(&kv_desc(), "dup", OpCost{2.0, 16.0},
                               [a = op.a](const KV& kv, df::FlatCollector<KV>& out) {
                                 for (std::int64_t d = 0; d < a; ++d) out.add(kv);
                               });
          break;
      }
    }
    auto reduced = ds.reduce_by_key("sum", OpCost{2.0, 16.0},
                                    [key_mod](const KV& kv) { return kv.key % key_mod; },
                                    [](KV& acc, const KV& kv) { acc.value += kv.value; });
    auto rows = co_await reduced.collect(job);
    job.finish();
    for (const auto& kv : rows) sums[kv.key % key_mod] += kv.value;
  });
  return sums;
}

}  // namespace

class PlanFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PlanFuzz, RandomChainsMatchReference) {
  sim::Rng rng(9000 + static_cast<std::uint64_t>(GetParam()));
  const std::uint64_t key_mod = 1 + rng.next_below(16);
  const std::size_t n = 100 + rng.next_below(2000);
  std::vector<KV> input;
  input.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    input.push_back(KV{rng.next_below(1000),
                       static_cast<std::int64_t>(rng.next_below(1000)) - 500});
  }
  const auto ops = random_chain(rng);
  const int workers = 1 + static_cast<int>(rng.next_below(5));
  const int partitions = 1 + static_cast<int>(rng.next_below(12));
  const auto shuffle = random_shuffle_config(rng);
  const int faults = static_cast<int>(rng.next_below(3));  // < max_retries

  const auto expected = reference(input, ops, key_mod);
  const auto actual =
      run_engine(input, ops, key_mod, workers, partitions, shuffle, faults);
  EXPECT_EQ(actual, expected) << "seed " << GetParam() << ", ops " << ops.size() << ", workers "
                              << workers << ", partitions " << partitions << ", mode "
                              << gflink::shuffle::shuffle_mode_name(shuffle.mode) << ", spill "
                              << shuffle.spill_enabled;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanFuzz, ::testing::Range(0, 20));

// ---- Multi-tenant service fuzz ----------------------------------------------
//
// Drive a random tenant mix (weights, in-flight caps, job counts, cancels)
// plus injected transfer faults through the JobService. Every job that the
// service reports Completed must have produced exactly the reference result
// of its own random chain — concurrency, admission control, and fault
// retries must never corrupt or cross-wire job results.

namespace svc = gflink::service;

namespace {

struct FuzzJob {
  std::vector<KV> input;
  std::vector<OpSpec> ops;
  std::uint64_t key_mod = 1;
  std::map<std::uint64_t, std::int64_t> expected;
  std::map<std::uint64_t, std::int64_t> actual;
  svc::TicketPtr ticket;
};

Co<void> run_chain(Engine& eng, Job& job, const FuzzJob& fj,
                   std::map<std::uint64_t, std::int64_t>& out) {
  const int partitions = 1 + static_cast<int>(fj.input.size() % 4);
  DataSet<KV> ds = DataSet<KV>::from_generator(
      eng, &kv_desc(), partitions, [&fj, partitions](int part, std::vector<KV>& rows) {
        for (std::size_t i = static_cast<std::size_t>(part); i < fj.input.size();
             i += static_cast<std::size_t>(partitions)) {
          rows.push_back(fj.input[i]);
        }
      });
  for (const auto& op : fj.ops) {
    switch (op.kind) {
      case OpSpec::Kind::MapAffine:
        ds = ds.map<KV>(&kv_desc(), "affine", OpCost{2.0, 16.0},
                        [a = op.a, b = op.b](const KV& kv) {
                          return KV{kv.key, a * kv.value + b};
                        });
        break;
      case OpSpec::Kind::FilterMod:
        ds = ds.filter("mod", OpCost{2.0, 16.0}, [a = op.a, b = op.b](const KV& kv) {
          return safe_mod(kv.value, a) != b;
        });
        break;
      case OpSpec::Kind::FlatMapDup:
        ds = ds.flat_map<KV>(&kv_desc(), "dup", OpCost{2.0, 16.0},
                             [a = op.a](const KV& kv, df::FlatCollector<KV>& out2) {
                               for (std::int64_t d = 0; d < a; ++d) out2.add(kv);
                             });
        break;
    }
  }
  auto reduced = ds.reduce_by_key("sum", OpCost{2.0, 16.0},
                                  [key_mod = fj.key_mod](const KV& kv) {
                                    return kv.key % key_mod;
                                  },
                                  [](KV& acc, const KV& kv) { acc.value += kv.value; });
  auto rows = co_await reduced.collect(job);
  for (const auto& kv : rows) out[kv.key % fj.key_mod] += kv.value;
}

}  // namespace

class ServiceFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ServiceFuzz, RandomTenantMixesWithFaultsMatchReference) {
  sim::Rng rng(77000 + static_cast<std::uint64_t>(GetParam()));

  df::EngineConfig cfg;
  cfg.cluster.num_workers = 1 + static_cast<int>(rng.next_below(3));
  cfg.dfs.replication = std::min(2, cfg.cluster.num_workers);
  cfg.job_submit_overhead = 0;
  cfg.job_schedule_overhead = 0;
  cfg.shuffle = random_shuffle_config(rng);
  Engine e(cfg);
  e.shuffle_service().inject_transfer_faults(static_cast<int>(rng.next_below(3)));

  svc::ServiceConfig scfg;
  scfg.max_pending = 2 + rng.next_below(12);  // small: overflow rejections happen
  scfg.max_total_in_flight = static_cast<int>(rng.next_below(4));  // 0 = unlimited
  svc::JobService service(e, nullptr, scfg);

  const int num_tenants = 2 + static_cast<int>(rng.next_below(3));
  std::vector<std::string> tenants;
  for (int i = 0; i < num_tenants; ++i) {
    svc::TenantConfig tc;
    tc.name = "t" + std::to_string(i);
    tc.weight = 1.0 + static_cast<double>(rng.next_below(4));
    tc.max_in_flight = static_cast<int>(rng.next_below(3));  // 0 = unlimited
    service.add_tenant(tc);
    tenants.push_back(tc.name);
  }

  // Stable addresses: bodies capture references into this deque.
  std::deque<FuzzJob> jobs;
  e.run([&](Engine& eng) -> Co<void> {
    const int total_jobs = 4 + static_cast<int>(rng.next_below(10));
    for (int j = 0; j < total_jobs; ++j) {
      FuzzJob& fj = jobs.emplace_back();
      fj.key_mod = 1 + rng.next_below(8);
      const std::size_t n = 20 + rng.next_below(200);
      for (std::size_t i = 0; i < n; ++i) {
        fj.input.push_back(KV{rng.next_below(100),
                              static_cast<std::int64_t>(rng.next_below(1000)) - 500});
      }
      fj.ops = random_chain(rng);
      fj.expected = reference(fj.input, fj.ops, fj.key_mod);
      const std::string& tenant = tenants[rng.next_below(tenants.size())];
      fj.ticket = service.submit(tenant, "fuzz-" + std::to_string(j),
                                 1.0 + static_cast<double>(rng.next_below(3)),
                                 [&eng, &fj](Job& job) -> Co<void> {
                                   co_await run_chain(eng, job, fj, fj.actual);
                                 });
      if (rng.next_below(4) == 0) {
        co_await eng.sim().delay(sim::micros(1 + rng.next_below(200)));
      }
    }
    // Withdraw a few still-pending submissions mid-flight.
    for (auto& fj : jobs) {
      if (rng.next_below(8) == 0) service.cancel(fj.ticket);
    }
    co_await service.drain();
  });

  std::uint64_t completed = 0, rejected = 0, cancelled = 0;
  for (const auto& fj : jobs) {
    switch (fj.ticket->state()) {
      case svc::TicketState::Completed:
        ++completed;
        EXPECT_EQ(fj.actual, fj.expected)
            << "seed " << GetParam() << ", tenant " << fj.ticket->tenant() << ", ops "
            << fj.ops.size() << ", key_mod " << fj.key_mod;
        EXPECT_EQ(fj.ticket->stats().state, df::JobState::Finished);
        break;
      case svc::TicketState::Rejected:
      case svc::TicketState::Cancelled:
        if (fj.ticket->state() == svc::TicketState::Rejected) {
          ++rejected;
        } else {
          ++cancelled;
        }
        // Never ran: no result, and the stats must not report a runtime.
        EXPECT_TRUE(fj.actual.empty());
        EXPECT_EQ(fj.ticket->stats().state, df::JobState::Cancelled);
        EXPECT_EQ(fj.ticket->stats().total(), 0);
        break;
      default:
        ADD_FAILURE() << "ticket left in non-terminal state (seed " << GetParam() << ")";
    }
  }
  EXPECT_EQ(completed, service.completed());
  EXPECT_EQ(rejected, service.rejected());
  EXPECT_EQ(cancelled, service.cancelled());
  EXPECT_EQ(completed + rejected + cancelled, jobs.size());
  EXPECT_EQ(service.pending(), 0u);
  EXPECT_EQ(service.in_flight(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceFuzz, ::testing::Range(0, 12));
