// End-to-end integration tests: the paper's headline claims, asserted at a
// reduced simulation scale so they run inside the unit-test budget. These
// are the regression guards for the calibration in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "workloads/concomp.hpp"
#include "workloads/kmeans.hpp"
#include "workloads/linreg.hpp"
#include "workloads/pagerank.hpp"
#include "workloads/spmv.hpp"
#include "workloads/wordcount.hpp"

namespace sim = gflink::sim;
namespace df = gflink::dataflow;
namespace core = gflink::core;
namespace wl = gflink::workloads;
using sim::Co;

namespace {

/// Full paper testbed, quarter-scale data so each run is a few ms real.
template <typename ConfigT, typename ResultT>
double speedup(sim::Co<ResultT> (*driver)(df::Engine&, core::GFlinkRuntime*, const wl::Testbed&,
                                          wl::Mode, const ConfigT&),
               const ConfigT& config) {
  wl::Testbed tb;  // 10 workers x 2 C2050, scale 1e-3
  double seconds[2] = {0, 0};
  for (int m = 0; m < 2; ++m) {
    const auto mode = m == 0 ? wl::Mode::Cpu : wl::Mode::Gpu;
    df::Engine engine(wl::make_engine_config(tb));
    std::unique_ptr<core::GFlinkRuntime> runtime;
    if (mode == wl::Mode::Gpu) {
      wl::ensure_kernels_registered();
      runtime = std::make_unique<core::GFlinkRuntime>(engine, wl::make_gpu_config(tb));
    }
    ResultT result{};
    engine.run([&](df::Engine& eng) -> Co<void> {
      result = co_await driver(eng, runtime.get(), tb, mode, config);
    });
    seconds[m] = sim::to_seconds(result.run.total);
  }
  return seconds[0] / seconds[1];
}

}  // namespace

// Each workload's overall GFlink speedup must stay in a band around the
// paper's reported factor (paper value, +-40% tolerance: the band is wide
// enough to survive small model changes but catches broken calibration).
TEST(PaperHeadlines, KMeansSpeedupBand) {
  wl::kmeans::Config cfg;  // defaults = the paper's setup at 210 M points
  const double s = speedup(&wl::kmeans::run, cfg);
  EXPECT_GT(s, 3.5) << "paper: ~5x";
  EXPECT_LT(s, 7.0);
}

TEST(PaperHeadlines, LinRegSpeedupBand) {
  wl::linreg::Config cfg;
  const double s = speedup(&wl::linreg::run, cfg);
  EXPECT_GT(s, 6.5) << "paper: ~9.2x";
  EXPECT_LT(s, 13.0);
}

TEST(PaperHeadlines, SpmvSpeedupBand) {
  wl::spmv::Config cfg;
  cfg.matrix_bytes = 8ULL << 30;
  const double s = speedup(&wl::spmv::run, cfg);
  EXPECT_GT(s, 4.5) << "paper: ~6.3x";
  EXPECT_LT(s, 9.0);
}

TEST(PaperHeadlines, PageRankSpeedupBand) {
  wl::pagerank::Config cfg;
  cfg.pages = 15'000'000;
  const double s = speedup(&wl::pagerank::run, cfg);
  EXPECT_GT(s, 2.4) << "paper: ~3.5x";
  EXPECT_LT(s, 5.0);
}

TEST(PaperHeadlines, ConComponentsSpeedupBand) {
  wl::concomp::Config cfg;
  cfg.vertices = 15'000'000;
  const double s = speedup(&wl::concomp::run, cfg);
  EXPECT_GT(s, 3.4) << "paper: ~4.8x";
  EXPECT_LT(s, 6.7);
}

TEST(PaperHeadlines, WordCountSpeedupBand) {
  wl::wordcount::Config cfg;
  cfg.text_bytes = 40ULL << 30;
  const double s = speedup(&wl::wordcount::run, cfg);
  EXPECT_GT(s, 0.95) << "paper: ~1.1x";
  EXPECT_LT(s, 1.6);
}

TEST(PaperHeadlines, SpeedupOrderingMatchesPaper) {
  // LinReg > SpMV > KMeans > ConComp > PageRank > WordCount.
  wl::kmeans::Config km;
  wl::linreg::Config lr;
  wl::spmv::Config sp;
  sp.matrix_bytes = 8ULL << 30;
  wl::pagerank::Config pr;
  pr.pages = 15'000'000;
  wl::concomp::Config cc;
  cc.vertices = 15'000'000;
  wl::wordcount::Config wc;
  wc.text_bytes = 40ULL << 30;

  const double s_km = speedup(&wl::kmeans::run, km);
  const double s_lr = speedup(&wl::linreg::run, lr);
  const double s_sp = speedup(&wl::spmv::run, sp);
  const double s_pr = speedup(&wl::pagerank::run, pr);
  const double s_cc = speedup(&wl::concomp::run, cc);
  const double s_wc = speedup(&wl::wordcount::run, wc);

  EXPECT_GT(s_lr, s_sp);
  EXPECT_GT(s_sp, s_km);
  EXPECT_GT(s_km, s_cc);
  EXPECT_GT(s_cc, s_pr);
  EXPECT_GT(s_pr, s_wc);
}
