// Tests for the fault-tolerance layer: worker-failure injection, heartbeat
// detection latency, task retry on healthy nodes, and end-to-end recovery
// of iterative workloads — the Flink reliability properties the paper
// names as the reason for building GFlink on Flink (§1.1).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "dataflow/dataset.hpp"
#include "dataflow/engine.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "workloads/kmeans.hpp"

namespace sim = gflink::sim;
namespace mem = gflink::mem;
namespace df = gflink::dataflow;
namespace core = gflink::core;
namespace wl = gflink::workloads;
using df::DataSet;
using df::Engine;
using df::Job;
using df::OpCost;
using sim::Co;

namespace {

struct KV {
  std::uint64_t key;
  std::int64_t value;
};

const mem::StructDesc& kv_desc() {
  static const mem::StructDesc d = mem::StructDescBuilder("KV", 8)
                                       .field("key", mem::FieldType::U64, 1, offsetof(KV, key))
                                       .field("value", mem::FieldType::I64, 1, offsetof(KV, value))
                                       .build();
  return d;
}

df::EngineConfig fault_config(int workers = 4) {
  df::EngineConfig cfg;
  cfg.cluster.num_workers = workers;
  cfg.dfs.replication = 2;
  cfg.job_submit_overhead = 0;
  cfg.job_schedule_overhead = 0;
  cfg.stage_schedule_overhead = 0;
  cfg.task_deploy_overhead = 0;
  cfg.failure_detection_delay = sim::millis(5);
  // Per-record cost high enough that tasks are mid-flight when we kill
  // their worker.
  cfg.cluster.worker.cpu.record_overhead = 1000;
  return cfg;
}

DataSet<KV> iota(Engine& e, int partitions, std::uint64_t n) {
  return DataSet<KV>::from_generator(
      e, &kv_desc(), partitions, [n, partitions](int part, std::vector<KV>& out) {
        for (std::uint64_t i = static_cast<std::uint64_t>(part); i < n;
             i += static_cast<std::uint64_t>(partitions)) {
          out.push_back(KV{i % 10, static_cast<std::int64_t>(i)});
        }
      });
}

/// Sum all values through map+reduce; returns (sum, makespan).
std::pair<std::int64_t, sim::Time> run_sum_job(Engine& e) {
  std::int64_t sum = 0;
  e.run([&sum](Engine& eng) -> Co<void> {
    Job job(eng, "fault");
    co_await job.submit();
    auto ds = iota(eng, 8, 20000)
                  .map<KV>(&kv_desc(), "work", OpCost{400.0, 16.0},
                           [](const KV& kv) { return kv; })
                  .reduce("sum", OpCost{1.0, 16.0},
                          [](KV& acc, const KV& kv) { acc.value += kv.value; });
    auto rows = co_await ds.collect(job);
    job.finish();
    sum = rows.empty() ? 0 : rows[0].value;
  });
  return {sum, e.now()};
}

constexpr std::int64_t kExpectedSum = 20000LL * 19999 / 2;

}  // namespace

TEST(Fault, NoFailureBaseline) {
  Engine e(fault_config());
  auto [sum, t] = run_sum_job(e);
  EXPECT_EQ(sum, kExpectedSum);
  EXPECT_EQ(e.tasks_failed(), 0u);
  EXPECT_EQ(e.tasks_retried(), 0u);
}

TEST(Fault, WorkerAliveBookkeeping) {
  Engine e(fault_config(3));
  EXPECT_EQ(e.alive_workers(), 3);
  e.schedule_worker_failure(2, sim::millis(1));
  e.sim().run_until(sim::millis(2));
  EXPECT_FALSE(e.worker_alive(2));
  EXPECT_TRUE(e.worker_alive(1));
  EXPECT_EQ(e.alive_workers(), 2);
}

TEST(Fault, WorkerRejoinsAfterDowntime) {
  Engine e(fault_config(3));
  e.schedule_worker_failure(2, sim::millis(1), sim::millis(10));
  e.sim().run_until(sim::millis(2));
  EXPECT_FALSE(e.worker_alive(2));
  e.sim().run_until(sim::millis(20));
  EXPECT_TRUE(e.worker_alive(2));
}

TEST(Fault, MidStageFailureIsRetriedAndResultExact) {
  Engine healthy(fault_config());
  auto [sum_ok, t_ok] = run_sum_job(healthy);

  Engine e(fault_config());
  // Kill worker 2 while the map stage is in flight.
  e.schedule_worker_failure(2, sim::millis(2));
  auto [sum, t] = run_sum_job(e);
  EXPECT_EQ(sum, sum_ok);           // recovery is exact
  EXPECT_GT(e.tasks_failed(), 0u);  // something actually failed
  EXPECT_EQ(e.tasks_retried(), e.tasks_failed());
  EXPECT_GT(t, t_ok);               // and recovery cost time
}

TEST(Fault, FailureBeforeStageRoutesAroundDeadWorker) {
  Engine e(fault_config());
  e.schedule_worker_failure(3, 0);  // dead from the start
  auto [sum, t] = run_sum_job(e);
  EXPECT_EQ(sum, kExpectedSum);
  // Partitions assigned to worker 3 failed instantly and were retried.
  EXPECT_GT(e.tasks_retried(), 0u);
}

TEST(Fault, MultipleFailuresStillRecover) {
  Engine e(fault_config(5));
  e.schedule_worker_failure(1, sim::millis(1));
  e.schedule_worker_failure(4, sim::millis(3));
  auto [sum, t] = run_sum_job(e);
  EXPECT_EQ(sum, kExpectedSum);
  EXPECT_GE(e.tasks_retried(), 2u);
}

TEST(Fault, DetectionDelayIsCharged) {
  auto run_with_delay = [](sim::Duration detect) {
    auto cfg = fault_config();
    cfg.failure_detection_delay = detect;
    Engine e(cfg);
    e.schedule_worker_failure(2, sim::millis(2));
    return run_sum_job(e).second;
  };
  // A slower failure detector must lengthen recovery by about the delta.
  auto fast = run_with_delay(sim::millis(1));
  auto slow = run_with_delay(sim::millis(200));
  EXPECT_GT(slow, fast + sim::millis(150));
}

TEST(Fault, ShuffleStageRetriesAreIdempotent) {
  // Kill a worker during the reduce stage: retried tasks must not deposit
  // duplicate shuffle buckets (the sum would be wrong if they did).
  Engine healthy(fault_config());
  auto [sum_ok, t_ok] = run_sum_job(healthy);
  for (sim::Time kill_at = sim::millis(1); kill_at <= sim::millis(40);
       kill_at += sim::millis(7)) {
    Engine e(fault_config());
    e.schedule_worker_failure(1, kill_at);
    auto [sum, t] = run_sum_job(e);
    EXPECT_EQ(sum, sum_ok) << "kill at " << sim::format_duration(kill_at);
  }
}

TEST(Fault, DfsBackedSourceSurvivesFailure) {
  auto cfg = fault_config();
  cfg.dfs.block_size = 16384;
  Engine e(cfg);
  e.dfs().create_file("/in", 8 * 16384);
  e.schedule_worker_failure(2, sim::micros(100));
  std::uint64_t count = 0;
  e.run([&count](Engine& eng) -> Co<void> {
    Job job(eng, "src");
    co_await job.submit();
    auto ds = DataSet<KV>::from_generator(
        eng, &kv_desc(), 8,
        [](int part, std::vector<KV>& out) {
          for (int i = 0; i < 50; ++i) out.push_back(KV{static_cast<std::uint64_t>(part), i});
        },
        df::OpCost{5000.0, 16.0}, "/in");
    count = co_await ds.count(job);
    job.finish();
  });
  EXPECT_EQ(count, 400u);
}

TEST(Fault, IterativeWorkloadRecoversWithSameChecksum) {
  wl::Testbed tb;
  tb.workers = 4;
  wl::kmeans::Config cfg;
  cfg.points = 80'000'000;
  cfg.iterations = 4;
  cfg.write_output = false;

  auto run_with_failure = [&](bool fail) {
    df::Engine engine(wl::make_engine_config(tb));
    if (fail) {
      // Kill worker 2 mid-run (between iterations 1 and 2 in virtual time).
      engine.schedule_worker_failure(2, sim::millis(10));
    }
    wl::kmeans::Result r;
    engine.run([&](df::Engine& eng) -> Co<void> {
      r = co_await wl::kmeans::run(eng, nullptr, tb, wl::Mode::Cpu, cfg);
    });
    return std::pair<double, std::uint64_t>(r.run.checksum, engine.tasks_retried());
  };
  auto [checksum_ok, retried_ok] = run_with_failure(false);
  auto [checksum_f, retried_f] = run_with_failure(true);
  EXPECT_EQ(checksum_f, checksum_ok);
  EXPECT_GT(retried_f, 0u);
  EXPECT_EQ(retried_ok, 0u);
}

TEST(Fault, CheckpointsWriteReplicatedSnapshots) {
  wl::Testbed tb;
  tb.workers = 3;
  wl::kmeans::Config cfg;
  cfg.points = 4'000'000;
  cfg.iterations = 6;
  cfg.checkpoint_interval = 2;
  cfg.write_output = false;
  df::Engine engine(wl::make_engine_config(tb));
  wl::kmeans::Result r;
  engine.run([&](df::Engine& eng) -> Co<void> {
    r = co_await wl::kmeans::run(eng, nullptr, tb, wl::Mode::Cpu, cfg);
  });
  EXPECT_DOUBLE_EQ(engine.cluster().metrics().counter("fault.checkpoints"), 3.0);
  // Checkpoint paths are keyed by "<name>-<job id>" so concurrent jobs
  // running the same program cannot clobber each other's snapshots.
  const std::string ckpt = "/checkpoints/kmeans-" + std::to_string(r.run.stats.job_id);
  EXPECT_TRUE(engine.dfs().exists(ckpt + "/iter-1"));
  EXPECT_TRUE(engine.dfs().exists(ckpt + "/iter-3"));
  EXPECT_TRUE(engine.dfs().exists(ckpt + "/iter-5"));
  EXPECT_GT(r.run.stats.io_bytes_written, 0u);
}

TEST(Fault, DfsReadsRouteAroundDeadReplica) {
  auto cfg = fault_config(4);
  cfg.dfs.replication = 2;
  cfg.dfs.block_size = 4096;
  df::Engine e(cfg);
  const auto& info = e.dfs().create_file("/r", 4096);
  const int primary = info.blocks[0].replicas[0];
  const int secondary = info.blocks[0].replicas[1];
  e.schedule_worker_failure(primary, 0);
  e.sim().run_until(1);
  // A reader elsewhere must now be routed to the live secondary.
  int reader = 1;
  while (reader == primary || reader == secondary) ++reader;
  EXPECT_EQ(e.dfs().preferred_replica(reader, info.blocks[0]), secondary);
}

TEST(Fault, InjectedShuffleFaultWritesFlightDump) {
  const std::string path = ::testing::TempDir() + "shuffle_fault_flight.json";
  std::remove(path.c_str());
  Engine e(fault_config());
  e.cluster().flight().set_dump_path(path);
  e.shuffle_service().inject_transfer_faults(2);
  auto [sum, t] = run_sum_job(e);
  EXPECT_EQ(sum, kExpectedSum);  // retries absorb the injected faults

  // The first fault auto-snapshotted the rings mid-run.
  EXPECT_EQ(e.cluster().flight().dumps(), 1u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = gflink::obs::Json::parse(buf.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("schema")->as_string(), "gflink.flight_dump/v1");

  // The dump names the injected fault and carries the spans surrounding it
  // — even though the run is untraced (the rings are always on).
  bool saw_fault = false;
  std::size_t ring_spans = 0;
  for (const auto& n : parsed->find("nodes")->items()) {
    ring_spans += n.find("spans")->size();
    for (const auto& ev : n.find("events")->items()) {
      if (ev.find("kind")->as_string() == "shuffle_transfer_fault") saw_fault = true;
    }
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_GT(ring_spans, 0u);
  std::remove(path.c_str());
}

TEST(Fault, WorkerFailureLandsInFlightRing) {
  Engine e(fault_config());
  e.schedule_worker_failure(2, sim::millis(2));
  run_sum_job(e);
  // No dump path was set: nothing is written, but the fault still counts
  // and task failures are in the event rings for a later dump_now().
  EXPECT_GE(e.cluster().flight().faults(), 1u);
  EXPECT_EQ(e.cluster().flight().dumps(), 0u);
}

// Property sweep: for any single-failure time, the job completes with the
// exact result.
class FaultInjectionSweep : public ::testing::TestWithParam<int> {};

TEST_P(FaultInjectionSweep, ExactResultUnderFailure) {
  Engine e(fault_config());
  e.schedule_worker_failure(1 + GetParam() % 4, sim::millis(GetParam()));
  auto [sum, t] = run_sum_job(e);
  EXPECT_EQ(sum, kExpectedSum);
}

INSTANTIATE_TEST_SUITE_P(KillTimes, FaultInjectionSweep, ::testing::Range(0, 12));
