#pragma once

// Fixture: Foo is checked, Bar is not; foo.cpp also checks a struct that
// records.hpp never declares.
struct Foo {
  double x;
};

struct Bar {
  long y;
};
