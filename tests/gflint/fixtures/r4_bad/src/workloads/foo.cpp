#include "workloads/records.hpp"

GSTRUCT_MIRROR_CHECK(Foo, foo_desc);
GSTRUCT_MIRROR_CHECK(Baz, baz_desc);
