// Fixture: the fixed form — the detached frame owns a shared_ptr to the
// worker, so `this` cannot die while the loop is parked.

#include <memory>

namespace gflink::spill {

class Worker : public std::enable_shared_from_this<Worker> {
 public:
  void start();
  sim::Co<void> worker_loop(std::shared_ptr<Worker> self);

 private:
  sim::Simulation* sim_ = nullptr;
};

void Worker::start() {
  sim_->spawn(worker_loop(shared_from_this()));  // keep-alive in the spawn
}

sim::Co<void> Worker::worker_loop(std::shared_ptr<Worker> self) {
  co_await sim_->delay(1);
  (void)self;
}

}  // namespace gflink::spill
