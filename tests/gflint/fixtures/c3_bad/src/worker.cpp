// Fixture: a member-function coroutine spawned detached with nothing tying
// the object's lifetime to the frame. If the Worker is destroyed while the
// loop is parked, the frame resumes on a dead `this`.

namespace gflink::spill {

class Worker {
 public:
  void start();
  sim::Co<void> worker_loop();

 private:
  sim::Simulation* sim_ = nullptr;
};

void Worker::start() {
  sim_->spawn(worker_loop());  // finding: no keep-alive of `this`
}

sim::Co<void> Worker::worker_loop() {
  for (;;) {
    co_await sim_->delay(1);
  }
}

}  // namespace gflink::spill
