// Fixture: the PR-8 dangling-parameter bug verbatim. A coroutine spawned
// detached must own its strings by value: the temporary `name + "/x"` dies
// with the spawn full-expression, and the frame resumes holding a dangling
// reference.

#include <string>

namespace gflink::net {

sim::Co<void> pinger(sim::Simulation& sim, const std::string& name) {
  co_await sim.delay(10);
  (void)name.size();
}

void start(sim::Simulation& sim, const std::string& name) {
  // finding: pinger's `const std::string&` borrows from a temporary
  sim.spawn(pinger(sim, name + "/x"));
  // finding: detached lambda coroutine with a borrowing string_view param
  sim.spawn([](std::string_view tag) -> sim::Co<void> {
    co_await sim::yield();
    (void)tag.size();
  }(name + "/y"));
}

}  // namespace gflink::net
