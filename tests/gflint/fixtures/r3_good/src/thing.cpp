// Fixture: emitted names and the catalog agree exactly.
void report(Registry& metrics) {
  metrics.counter("widgets_total").inc();
  metrics.gauge("widget_backlog").set(1);
}
