// Fixture: the PR-8 bug verbatim. A capturing lambda whose body contains
// co_await is a coroutine; its closure object dies with the enclosing scope
// while the frame lives on, so every capture is a dangling pointer at resume.

namespace gflink::core {

struct Inner {
  int value = 0;
};

sim::Co<void> run(sim::Simulation& sim) {
  Inner inner;
  auto flush = [&inner]() -> sim::Co<void> {  // finding: [&inner] coroutine
    co_await sim.delay(1);
    inner.value += 1;
  };
  co_await flush();
}

class Engine {
 public:
  sim::Co<void> tick() {
    auto step = [this]() -> sim::Co<void> {  // finding: [this] coroutine
      co_await sim_->delay(1);
      ++ticks_;
    };
    co_await step();
  }

 private:
  sim::Simulation* sim_ = nullptr;
  int ticks_ = 0;
};

}  // namespace gflink::core
