// Fixture: service metrics/spans WITHOUT tenant attribution (2 findings:
// the counter and the span record; the histogram below is labelled).
#include "service/job_service.hpp"

void emit(gflink::obs::MetricsRegistry& metrics, gflink::obs::SpanStore& spans,
          const std::string& tenant) {
  metrics.counter("service_submitted_total").inc();  // BAD: no tenant label
  spans().record("service_queue_wait", gflink::obs::SpanCategory::Wait, 0, 0, 1,
                 "service", 0);  // BAD: lane is not tenant-derived
  metrics.histogram("service_latency_ns", 0.0, 1e9, 10, {{"tenant", tenant}})
      .add(1.0);  // ok
}
