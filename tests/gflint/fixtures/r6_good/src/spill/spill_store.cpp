// Fixture: every spill metric/span carries a tier attribution.
#include "spill/spill_store.hpp"

void emit(gflink::obs::MetricsRegistry& metrics, gflink::net::Cluster& cluster,
          const char* tier) {
  metrics.counter("spill_offload_blocks_total", {{"tier", tier}}).inc();
  cluster.spans().record(std::string("spill:write:") + tier,
                         gflink::obs::SpanCategory::Spill, 0, 0, 1, "node1/spill", 1);
  cluster.spans().open(std::string("spill:fetch:") + tier,
                       gflink::obs::SpanCategory::Spill, 0, 0, "node1/spill", 1);
  metrics.counter("spill_landed_blocks_total", {{"tier", tier}}).inc();
}
