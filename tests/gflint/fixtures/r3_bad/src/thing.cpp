// Fixture: R3 must flag metrics emitted but undocumented, and catalog
// entries nothing emits.
void report(Registry& metrics) {
  metrics.counter("widgets_total").inc();  // documented: ok
  metrics.gauge("unlisted_gauge").set(1);  // finding: not in the catalog
}
