#pragma once
#include <mutex>

// Fixture: a real R2 finding suppressed by an allow comment *with* a written
// justification — the scan must come back clean.
class LegacyCache {
 private:
  // gflint: allow(R2): wraps a third-party pool that hands out std::mutex;
  // migrating it is tracked as part of the pool rewrite.
  std::mutex raw_mu_;
  int entries_ = 0;
};
