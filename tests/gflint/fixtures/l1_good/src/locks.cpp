// Fixture: the same lock set acquired legally — ranks strictly ascending,
// and the leaf lock acquired last (or held alone).

namespace gflink::core {

class Mgr {
 public:
  void audit(class Stats& st);
  core::Mutex mu_;
};

class Alloc {
 public:
  core::Mutex mu_;
};

class Stats {
 public:
  void flush();
  core::Mutex mu_;
  int total_ = 0;
};

void rebalance(Mgr& mgr, Alloc& alloc) {
  core::MutexLock a(mgr.mu_);    // rank 1
  core::MutexLock b(alloc.mu_);  // rank 2 — ascending, fine
}

void Stats::flush() {
  core::MutexLock lock(mu_);  // leaf, held alone
  total_ += 1;
}

void Mgr::audit(Stats& st) {
  core::MutexLock lock(mu_);  // rank 1
  st.flush();                 // ranked -> leaf is always fine
}

}  // namespace gflink::core
