// Fixture: the fixed form of the PR-8 dangling-parameter bug. A detached
// coroutine takes strings by value (the frame owns the copy); long-lived
// references (the Simulation itself) are passed as lvalues.

#include <string>

namespace gflink::net {

sim::Co<void> pinger(sim::Simulation& sim, std::string name) {
  co_await sim.delay(10);
  (void)name.size();
}

void start(sim::Simulation& sim, const std::string& name) {
  sim.spawn(pinger(sim, name + "/x"));  // by-value param owns the string
  sim.spawn([](std::string tag) -> sim::Co<void> {
    co_await sim::yield();
    (void)tag.size();
  }(name + "/y"));
}

}  // namespace gflink::net
