// Fixture: the fixed forms of the PR-8 capturing-lambda bug. State travels
// as parameters of a named coroutine (or a non-capturing lambda), so the
// frame owns everything it touches.

namespace gflink::core {

struct Inner {
  int value = 0;
};

sim::Co<void> bump(sim::Simulation& sim, Inner& inner) {
  co_await sim.delay(1);
  inner.value += 1;
}

sim::Co<void> run(sim::Simulation& sim) {
  Inner inner;
  // Named coroutine, state as parameters; awaited in-scope.
  co_await bump(sim, inner);
  // Non-capturing immediately-invoked lambda coroutine is also fine.
  co_await [](sim::Simulation& s) -> sim::Co<void> {
    co_await s.delay(1);
  }(sim);
}

// A capturing lambda that merely *returns* another coroutine's Co<T> from a
// plain `return` is not itself a coroutine: the closure finishes the moment
// the call returns, so nothing dangles.
inline auto make_task(sim::Simulation& sim, Inner& inner) {
  return [&sim, &inner] { return bump(sim, inner); };
}

}  // namespace gflink::core
