#pragma once

// Fixture: annotated core::Mutex members pass R2 — one referenced by
// GUARDED_BY, one only ever taken through MutexLock.
class Cache {
 public:
  int entries() const {
    core::MutexLock lock(stats_mu_);
    return entries_;
  }

 private:
  mutable core::Mutex mu_;
  mutable core::Mutex stats_mu_;
  int entries_ GFLINK_GUARDED_BY(mu_) = 0;
};
