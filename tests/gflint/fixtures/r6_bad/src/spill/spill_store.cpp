// Fixture: spill metrics/spans WITHOUT tier attribution (3 findings: the
// counter, the span record and the span open; the labelled counter below
// is fine).
#include "spill/spill_store.hpp"

void emit(gflink::obs::MetricsRegistry& metrics, gflink::net::Cluster& cluster) {
  metrics.counter("spill_offload_blocks_total").inc();  // BAD: no tier label
  cluster.spans().record("spill:write", gflink::obs::SpanCategory::Spill, 0, 0, 1,
                         "node1/spill", 1);  // BAD: name carries no tier
  cluster.spans().open("spill:fetch", gflink::obs::SpanCategory::Spill, 0, 0,
                       "node1/spill", 1);  // BAD: name carries no tier
  metrics.counter("spill_landed_blocks_total", {{"tier", "dfs"}}).inc();  // ok
}
