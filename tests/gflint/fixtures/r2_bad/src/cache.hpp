#pragma once
#include <mutex>

// Fixture: both R2 failure modes — a raw std::mutex member, and a
// core::Mutex that no annotation or MutexLock ever references.
class Cache {
 private:
  std::mutex raw_mu_;       // finding: raw std::mutex
  core::Mutex unused_mu_;   // finding: never annotated or locked
  int entries_ = 0;
};
