// Fixture: token-stream regression corpus. Every pattern below that used to
// trip the regex-era R1/R2/R3 lives inside a comment, a string literal, or a
// raw string — the token-aware engine must report nothing.
//
//   mgr.memory().allocate(bytes);
//   cuda_malloc(dev, n);
//   std::mutex legacy_mu_;
//   core::Mutex ghost_mu_;
//   metrics.counter("ghost_metric_total").inc(1);

/* Block comment with more of the same:
   pool.memory().free(buf);
   std::recursive_mutex nested_mu_;
   registry.gauge("block_comment_metric").set(2.0);
*/

namespace gflink::core {

const char* kDoc =
    "call mgr.memory().allocate(1) then metrics.counter(\"str_metric\")";

const char* kRaw = R"doc(
  std::shared_mutex table_mu_;
  cuda_free(ptr);
  registry.histogram("raw_string_metric", 0, 1, 8).add(0.5);
)doc";

int widget_count() { return 2; }

}  // namespace gflink::core
