// Fixture: the CUDA wrapper layer defines and forwards cuda_malloc/cuda_free.
inline void* cuda_malloc(Device& dev, unsigned long bytes) {
  return dev.memory().allocate(bytes);
}
inline void cuda_free(Device& dev, void* p) { dev.memory().free(p); }
