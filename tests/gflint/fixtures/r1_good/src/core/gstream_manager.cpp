// Fixture: the GStream engine is the one consumer allowed to call
// cuda_malloc/cuda_free (automatic per-GWork allocation).
void run(Device& dev) {
  void* p = cuda_malloc(dev, 64);
  cuda_free(dev, p);
}
