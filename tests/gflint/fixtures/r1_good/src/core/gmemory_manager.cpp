// Fixture: the cache manager itself may call the raw device allocator.
void GMemoryManager::grow(Device& dev) {
  auto alloc = dev.memory().allocate(1024);
  dev.memory().free(alloc);
}
