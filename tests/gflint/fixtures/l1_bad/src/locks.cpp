// Fixture: two lock-order violations against the hierarchy documented in
// docs/ARCHITECTURE.md — a rank inversion through direct MutexLock pairs,
// and a leaf lock held (via GFLINK_REQUIRES) across a call that acquires a
// ranked lock.

namespace gflink::core {

class Mgr {
 public:
  void reserve();
  core::Mutex mu_;
};

class Alloc {
 public:
  core::Mutex mu_;
};

class Stats {
 public:
  void flush(Mgr& mgr) GFLINK_REQUIRES(mu_);
  core::Mutex mu_;
};

void Mgr::reserve() {
  core::MutexLock lock(mu_);
}

void rebalance(Alloc& alloc, Mgr& mgr) {
  core::MutexLock a(alloc.mu_);  // rank 2
  core::MutexLock b(mgr.mu_);    // finding: rank 1 acquired under rank 2
}

void Stats::flush(Mgr& mgr) {
  mgr.reserve();  // finding: acquires Mgr::mu_ while leaf Stats::mu_ is held
}

}  // namespace gflink::core
