#pragma once
#include <mutex>

// Fixture: a bare allow with no justification. The suppression is void (the
// R2 finding stands) and the allow itself is an A1 hygiene finding.
class LegacyCache {
 private:
  // gflint: allow(R2):
  std::mutex raw_mu_;
  int entries_ = 0;
};
