// Fixture: every device-allocation idiom gflint R1 must reject when it
// appears outside the allowlisted GMemoryManager / CudaWrapper files.
void leaky(Device& dev) {
  auto alloc = dev.memory().allocate(1024);  // finding: raw allocator call
  dev.memory().free(alloc);                  // finding: raw allocator call
  void* p = cuda_malloc(dev, 64);            // finding: engine-owned API
  cuda_free(dev, p);                         // finding: engine-owned API
}
