// Fixture: telemetry series without units suffixes and a HealthEvent
// emission without a node attribution (3 findings: the unsuffixed
// counter, the unsuffixed add_gauge series, and the node-less event; the
// suffixed sites and the struct definition below are fine).
#include "obs/telemetry/telemetry.hpp"

namespace gflink::obs::telemetry {

struct HealthEvent {  // ok: the type's own definition, not an emission
  long at = 0;
  int node = -1;
};

void emit(MetricsRegistry& metrics, NodeSampler& sampler,
          std::vector<HealthEvent>& events, long at) {
  metrics.counter("telemetry_samples").inc();  // BAD: no units suffix
  sampler.add_gauge("telemetry_queue_depth", {}, [] { return 0.0; });  // BAD
  events.push_back(HealthEvent{.at = at});  // BAD: no node attribution
  metrics.counter("telemetry_periods_total").inc();            // ok
  sampler.add_gauge("telemetry_gpu_cache_used_bytes", {},      // ok
                    [] { return 0.0; });
  events.push_back(HealthEvent{.at = at, .node = 3});          // ok
}

}  // namespace gflink::obs::telemetry
