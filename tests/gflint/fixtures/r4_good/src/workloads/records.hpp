#pragma once

// Fixture: every declared mirror struct has a matching check.
struct Foo {
  double x;
};

struct Bar {
  long y;
};
