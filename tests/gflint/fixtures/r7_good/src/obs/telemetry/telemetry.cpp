// Fixture: every telemetry series carries a units suffix and every
// HealthEvent emission carries a node attribution.
#include "obs/telemetry/telemetry.hpp"

namespace gflink::obs::telemetry {

struct HealthEvent {
  long at = 0;
  int node = -1;
};

void emit(MetricsRegistry& metrics, NodeSampler& sampler,
          std::vector<HealthEvent>& events, long at, int node) {
  metrics.counter("telemetry_samples_total").inc();
  metrics.gauge("telemetry_snapshot_bytes").set(64.0);
  sampler.add_gauge("telemetry_gstream_queue_depth_total", {}, [] { return 0.0; });
  sampler.add_counter("telemetry_task_busy_ns", {}, [] { return 0.0; });
  sampler.add_gauge("telemetry_tenant_quota_used_ratio", {{"tenant", "prod"}},
                    [] { return 0.0; });
  events.push_back(HealthEvent{.at = at, .node = node});
}

}  // namespace gflink::obs::telemetry
