// Fixture: every service metric/span carries a tenant attribution.
#include "service/job_service.hpp"

void emit(gflink::obs::MetricsRegistry& metrics, gflink::obs::SpanStore& spans,
          const std::string& tenant) {
  metrics.counter("service_submitted_total", {{"tenant", tenant}}).inc();
  spans().record("service_queue_wait", gflink::obs::SpanCategory::Wait, 0, 0, 1,
                 tenant_lane(tenant), 0);
  metrics.histogram("service_latency_ns", 0.0, 1e9, 10, {{"tenant", tenant}})
      .add(1.0);
}
