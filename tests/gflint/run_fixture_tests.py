#!/usr/bin/env python3
"""Golden-fixture tests for tools/gflint.py.

Each fixture under fixtures/ is a miniature repo root. For every rule there
is a *_bad tree that must produce an exact set of findings and a *_good
tree that must be clean. Run directly or via ctest (test name
`gflint_fixtures`).
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
GFLINT = HERE.parent.parent / "tools" / "gflint.py"
FINDING_RE = re.compile(r"\[(R\d)\]")

# (fixture, rules to run, expected exit, expected finding count per rule)
CASES = [
    ("r1_bad", "R1", 1, {"R1": 4}),
    ("r1_good", "R1", 0, {}),
    ("r2_bad", "R2", 1, {"R2": 2}),
    ("r2_good", "R2", 0, {}),
    ("r3_bad", "R3", 1, {"R3": 2}),
    ("r3_good", "R3", 0, {}),
    ("r4_bad", "R4", 1, {"R4": 2}),
    ("r4_good", "R4", 0, {}),
    ("r5_bad", "R5", 1, {"R5": 2}),
    ("r5_good", "R5", 0, {}),
    ("r6_bad", "R6", 1, {"R6": 3}),
    ("r6_good", "R6", 0, {}),
]


def main() -> int:
    failures = []
    for fixture, rules, want_exit, want_counts in CASES:
        root = HERE / "fixtures" / fixture
        proc = subprocess.run(
            [sys.executable, str(GFLINT), "--root", str(root), "--rules", rules],
            capture_output=True, text=True)
        counts = {}
        for rule in FINDING_RE.findall(proc.stdout):
            counts[rule] = counts.get(rule, 0) + 1
        problems = []
        if proc.returncode != want_exit:
            problems.append(f"exit {proc.returncode}, want {want_exit}")
        if counts != want_counts:
            problems.append(f"findings {counts or '{}'}, want {want_counts or '{}'}")
        if problems:
            failures.append(fixture)
            print(f"FAIL {fixture} ({rules}): {'; '.join(problems)}")
            for line in (proc.stdout + proc.stderr).splitlines():
                print(f"  | {line}")
        else:
            print(f"ok   {fixture} ({rules})")

    if failures:
        print(f"{len(failures)}/{len(CASES)} fixture case(s) failed", file=sys.stderr)
        return 1
    print(f"all {len(CASES)} fixture cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
