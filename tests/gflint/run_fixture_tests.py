#!/usr/bin/env python3
"""Golden-fixture tests for tools/gflint.py.

Each fixture under fixtures/ is a miniature repo root. For every rule there
is a *_bad tree that must produce an exact set of findings and a *_good
tree that must be clean. The C-family (coroutine lifetime) bad fixtures
reproduce the exact PR-8 bug shapes; tokens_good proves the token-stream
engine never matches inside comments or string literals. Run directly or
via ctest (test name `gflint_fixtures`).
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
GFLINT = HERE.parent.parent / "tools" / "gflint.py"
FINDING_RE = re.compile(r"\[([A-Z]\d+)\]")

# (fixture, rules to run, expected exit, expected finding count per rule)
CASES = [
    ("r1_bad", "R1", 1, {"R1": 4}),
    ("r1_good", "R1", 0, {}),
    ("r2_bad", "R2", 1, {"R2": 2}),
    ("r2_good", "R2", 0, {}),
    ("r3_bad", "R3", 1, {"R3": 2}),
    ("r3_good", "R3", 0, {}),
    ("r4_bad", "R4", 1, {"R4": 2}),
    ("r4_good", "R4", 0, {}),
    ("r5_bad", "R5", 1, {"R5": 2}),
    ("r5_good", "R5", 0, {}),
    ("r6_bad", "R6", 1, {"R6": 3}),
    ("r6_good", "R6", 0, {}),
    ("r7_bad", "R7", 1, {"R7": 3}),
    ("r7_good", "R7", 0, {}),
    # Coroutine-lifetime family (PR-8 bug shapes).
    ("c1_bad", "C1", 1, {"C1": 2}),
    ("c1_good", "C1", 0, {}),
    ("c2_bad", "C2", 1, {"C2": 2}),
    ("c2_good", "C2", 0, {}),
    ("c3_bad", "C3", 1, {"C3": 1}),
    ("c3_good", "C3", 0, {}),
    # Lock order against the hierarchy parsed from docs/ARCHITECTURE.md.
    ("l1_bad", "L1", 1, {"L1": 2}),
    ("l1_good", "L1", 0, {}),
    # Token-stream regression: R-rule patterns inside comments/strings.
    ("tokens_good", "R1,R2,R3", 0, {}),
    # Suppression hygiene.
    ("allow_good", "R2", 0, {}),
    ("allow_bad", "R2", 1, {"R2": 1, "A1": 1}),
]


def run_case(fixture, rules, want_exit, want_counts):
    root = HERE / "fixtures" / fixture
    proc = subprocess.run(
        [sys.executable, str(GFLINT), "--root", str(root), "--rules", rules],
        capture_output=True, text=True)
    counts = {}
    for rule in FINDING_RE.findall(proc.stdout):
        counts[rule] = counts.get(rule, 0) + 1
    problems = []
    if proc.returncode != want_exit:
        problems.append(f"exit {proc.returncode}, want {want_exit}")
    if counts != want_counts:
        problems.append(f"findings {counts or '{}'}, want {want_counts or '{}'}")
    return proc, problems


def sarif_smoke():
    """--sarif must emit a loadable SARIF 2.1.0 log mirroring the findings."""
    root = HERE / "fixtures" / "r1_bad"
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "gflint.sarif"
        proc = subprocess.run(
            [sys.executable, str(GFLINT), "--root", str(root), "--rules", "R1",
             "--sarif", str(out)],
            capture_output=True, text=True)
        problems = []
        if proc.returncode != 1:
            problems.append(f"exit {proc.returncode}, want 1")
        try:
            doc = json.loads(out.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            return proc, [f"sarif unreadable: {exc}"]
        if doc.get("version") != "2.1.0":
            problems.append(f"sarif version {doc.get('version')!r}, want '2.1.0'")
        runs = doc.get("runs") or [{}]
        results = runs[0].get("results", [])
        if len(results) != 4:
            problems.append(f"{len(results)} sarif results, want 4")
        if results and results[0].get("ruleId") != "R1":
            problems.append(f"ruleId {results[0].get('ruleId')!r}, want 'R1'")
        rules = (runs[0].get("tool", {}).get("driver", {}).get("rules", []))
        if not any(r.get("id") == "R1" for r in rules):
            problems.append("rule R1 missing from tool.driver.rules")
        return proc, problems


def main() -> int:
    failures = []
    total = 0

    def report(name, proc, problems):
        nonlocal total
        total += 1
        if problems:
            failures.append(name)
            print(f"FAIL {name}: {'; '.join(problems)}")
            for line in (proc.stdout + proc.stderr).splitlines():
                print(f"  | {line}")
        else:
            print(f"ok   {name}")

    for fixture, rules, want_exit, want_counts in CASES:
        proc, problems = run_case(fixture, rules, want_exit, want_counts)
        report(f"{fixture} ({rules})", proc, problems)

    proc, problems = sarif_smoke()
    report("sarif_smoke (r1_bad)", proc, problems)

    if failures:
        print(f"{len(failures)}/{total} fixture case(s) failed", file=sys.stderr)
        return 1
    print(f"all {total} fixture cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
