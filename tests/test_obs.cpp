// Tests for the observability subsystem: JSON tree + parser, the labeled
// metrics registry, Chrome-trace export (validated by parsing the emitted
// document), lane utilization rollups, and run reports.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/span.hpp"
#include "sim/trace.hpp"

namespace obs = gflink::obs;
namespace sim = gflink::sim;
using obs::Json;

// ---- Json ------------------------------------------------------------------

TEST(Json, BuildAndDump) {
  Json root = Json::object();
  root["name"] = "run";
  root["count"] = 3;
  root["ratio"] = 0.5;
  root["ok"] = true;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  root["items"] = std::move(arr);
  EXPECT_EQ(root.dump(),
            "{\"name\":\"run\",\"count\":3,\"ratio\":0.5,\"ok\":true,\"items\":[1,\"two\"]}");
}

TEST(Json, ParseRoundTrip) {
  const std::string doc =
      R"({"a": 1, "b": [true, null, -2.5, "x\n\"y\""], "c": {"nested": 1e3}})";
  auto parsed = Json::parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("a")->as_int(), 1);
  const Json& b = *parsed->find("b");
  ASSERT_EQ(b.size(), 4u);
  EXPECT_TRUE(b.items()[0].as_bool());
  EXPECT_TRUE(b.items()[1].is_null());
  EXPECT_DOUBLE_EQ(b.items()[2].as_double(), -2.5);
  EXPECT_EQ(b.items()[3].as_string(), "x\n\"y\"");
  EXPECT_DOUBLE_EQ(parsed->find("c")->find("nested")->as_double(), 1000.0);

  // A dump of the parse must itself parse (round-trip stability).
  auto reparsed = Json::parse(parsed->dump(2));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->dump(), parsed->dump());
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(Json::parse("'single'").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
}

// ---- MetricsRegistry -------------------------------------------------------

TEST(Metrics, LabelSemantics) {
  obs::MetricsRegistry m;
  // Same name, different labels: distinct series.
  m.counter("bytes", {{"pipe", "a"}}).inc(10);
  m.counter("bytes", {{"pipe", "b"}}).inc(5);
  m.counter("bytes").inc(1);
  EXPECT_DOUBLE_EQ((m.counter_value("bytes", {{"pipe", "a"}})), 10.0);
  EXPECT_DOUBLE_EQ((m.counter_value("bytes", {{"pipe", "b"}})), 5.0);
  EXPECT_DOUBLE_EQ(m.counter_value("bytes"), 1.0);
  EXPECT_DOUBLE_EQ(m.counter_sum("bytes"), 16.0);
  // Label order must not matter: std::map canonicalizes.
  m.counter("multi", {{"x", "1"}, {"y", "2"}}).inc(1);
  m.counter("multi", {{"y", "2"}, {"x", "1"}}).inc(1);
  EXPECT_DOUBLE_EQ((m.counter_value("multi", {{"y", "2"}, {"x", "1"}})), 2.0);
  // Absent series read as zero.
  EXPECT_DOUBLE_EQ((m.counter_value("bytes", {{"pipe", "zzz"}})), 0.0);

  obs::MetricId id{"bytes", {{"pipe", "a"}}};
  EXPECT_EQ(id.to_string(), "bytes{pipe=\"a\"}");
  EXPECT_EQ((obs::MetricId{"plain"}.to_string()), "plain");
}

TEST(Metrics, HandlesAreStable) {
  obs::MetricsRegistry m;
  obs::Counter& c = m.counter("hot");
  for (int i = 0; i < 100; ++i) m.counter("other" + std::to_string(i));
  c.inc(7);
  EXPECT_DOUBLE_EQ(m.counter_value("hot"), 7.0);
}

TEST(Metrics, HistogramRegistrationAndQuantiles) {
  obs::MetricsRegistry m;
  sim::Histogram& h = m.histogram("lat", 0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  // Re-registration with the same layout returns the same histogram.
  sim::Histogram& again = m.histogram("lat", 0.0, 100.0, 10);
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.summary().count(), 100u);
  EXPECT_DOUBLE_EQ(again.quantile(0.5), 50.0);
}

TEST(MetricsDeathTest, HistogramLayoutMismatchAborts) {
  // A layout change on re-registration would silently reinterpret every
  // recorded sample — it must abort instead of handing back the old series.
  obs::MetricsRegistry m;
  m.histogram("lat", 0.0, 100.0, 10);
  EXPECT_DEATH(m.histogram("lat", 0.0, 1.0, 1), "different");
  EXPECT_DEATH(m.histogram("lat", 0.0, 100.0, 20), "different");
  EXPECT_DEATH(m.histogram("lat", 5.0, 100.0, 10), "different");
}

TEST(Metrics, MergeFrom) {
  obs::MetricsRegistry a, b;
  a.counter("c").inc(1);
  b.counter("c").inc(2);
  b.counter("only_b").inc(4);
  a.gauge("g").set(1.0);
  b.gauge("g").set(9.0);
  a.histogram("h", 0.0, 10.0, 5).add(1.0);
  b.histogram("h", 0.0, 10.0, 5).add(2.0);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.counter_value("c"), 3.0);        // counters add
  EXPECT_DOUBLE_EQ(a.counter_value("only_b"), 4.0);   // new series appear
  EXPECT_DOUBLE_EQ(a.gauge_value("g"), 9.0);          // gauges overwrite
  ASSERT_NE(a.find_histogram("h"), nullptr);
  EXPECT_EQ(a.find_histogram("h")->summary().count(), 2u);  // histograms merge
}

TEST(Metrics, ToJsonCarriesQuantiles) {
  obs::MetricsRegistry m;
  m.counter("n", {{"k", "v"}}).inc(2);
  m.gauge("r").set(0.25);
  sim::Histogram& h = m.histogram("lat", 0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  Json j = m.to_json();
  ASSERT_NE(j.find("counters"), nullptr);
  ASSERT_NE(j.find("gauges"), nullptr);
  ASSERT_NE(j.find("histograms"), nullptr);
  const Json& hist = j.find("histograms")->items().at(0);
  EXPECT_EQ(hist.find("count")->as_int(), 100);
  EXPECT_DOUBLE_EQ(hist.find("p50")->as_double(), 50.0);
  EXPECT_NEAR(hist.find("p95")->as_double(), 95.0, 1.0);
  EXPECT_NEAR(hist.find("p99")->as_double(), 99.0, 1.0);
}

// ---- Chrome trace ----------------------------------------------------------

TEST(ChromeTrace, EmittedJsonParsesBack) {
  sim::Tracer t(true);
  t.record("node1.gpu0/h2d", "copyA", sim::micros(0), sim::micros(10));
  t.record("node1.gpu0/kernel", "k", sim::micros(5), sim::micros(25));
  t.record("node0/egress", "shuffle", sim::micros(10), sim::micros(30));
  t.record("loose_lane", "x", sim::micros(0), sim::micros(1));

  obs::MetricsRegistry m;
  m.counter("net.bytes").inc(4096);

  const std::string doc = obs::chrome_trace_json(t, &m, sim::micros(40));
  auto parsed = Json::parse(doc);
  ASSERT_TRUE(parsed.has_value()) << doc;

  const Json* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int meta = 0, complete = 0, counter = 0;
  for (const Json& e : events->items()) {
    const std::string ph = e.find("ph")->as_string();
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (ph == "M") {
      ++meta;
      const std::string name = e.find("name")->as_string();
      EXPECT_TRUE(name == "process_name" || name == "thread_name");
    } else if (ph == "X") {
      ++complete;
      EXPECT_GE(e.find("dur")->as_double(), 0.0);
      ASSERT_NE(e.find("ts"), nullptr);
    } else if (ph == "C") {
      ++counter;
      EXPECT_DOUBLE_EQ(e.find("args")->find("value")->as_double(), 4096.0);
    } else {
      FAIL() << "unexpected event phase " << ph;
    }
  }
  // 3 processes (node1.gpu0, node0, sim) + 4 threads of metadata; then the
  // 4 spans and 1 counter sample.
  EXPECT_EQ(meta, 3 + 4);
  EXPECT_EQ(complete, 4);
  EXPECT_EQ(counter, 1);

  // The kernel span keeps its microsecond timing through the export.
  bool found_kernel = false;
  for (const Json& e : events->items()) {
    if (e.find("ph")->as_string() == "X" && e.find("name")->as_string() == "k") {
      found_kernel = true;
      EXPECT_DOUBLE_EQ(e.find("ts")->as_double(), 5.0);
      EXPECT_DOUBLE_EQ(e.find("dur")->as_double(), 20.0);
    }
  }
  EXPECT_TRUE(found_kernel);

  // Utilization rollup rides along and is keyed by lane.
  const Json* util = parsed->find("laneUtilization");
  ASSERT_NE(util, nullptr);
  const Json* kernel_lane = util->find("node1.gpu0/kernel");
  ASSERT_NE(kernel_lane, nullptr);
  EXPECT_EQ(kernel_lane->find("busy_ns")->as_int(), sim::micros(20));
  EXPECT_DOUBLE_EQ(kernel_lane->find("utilization")->as_double(), 0.5);
}

TEST(ChromeTrace, LaneUtilizationUnionsOverlaps) {
  sim::Tracer t(true);
  // Overlapping spans on one lane: busy time is the union, not the sum
  // (mirrors sim::Tracer::busy_time's span-merge semantics).
  t.record("l", "a", 0, 100);
  t.record("l", "b", 50, 150);
  t.record("l", "c", 300, 400);
  auto util = obs::lane_utilization(t, 400);
  ASSERT_EQ(util.count("l"), 1u);
  EXPECT_EQ(util["l"].busy_ns, 250);
  EXPECT_EQ(util["l"].spans, 3u);
  EXPECT_DOUBLE_EQ(util["l"].utilization, 250.0 / 400.0);
}

// ---- RunReport -------------------------------------------------------------

TEST(RunReport, ToJsonCarriesHeadlineKeys) {
  obs::RunReport rep;
  rep.name = "unit";
  rep.set_config("workers", Json(4));
  rep.virtual_ns = sim::seconds(2);
  rep.metrics.counter("gpu_cache_hits_total").inc(3);
  rep.metrics.counter("gpu_cache_misses_total").inc(1);
  rep.metrics.counter("gstream_locality_hits_total").inc(1);
  rep.metrics.counter("gstream_locality_misses_total").inc(3);
  obs::add_derived_gflink_metrics(rep.metrics);

  EXPECT_DOUBLE_EQ(rep.metrics.gauge_value("cache_hit_ratio"), 0.75);
  EXPECT_DOUBLE_EQ(rep.metrics.gauge_value("locality_hit_ratio"), 0.25);

  Json j = rep.to_json();
  EXPECT_EQ(j.find("schema")->as_string(), "gflink.run_report/v3");
  EXPECT_EQ(j.find("name")->as_string(), "unit");
  EXPECT_EQ(j.find("config")->find("workers")->as_int(), 4);
  EXPECT_DOUBLE_EQ(j.find("virtual_seconds")->as_double(), 2.0);
  ASSERT_NE(j.find("metrics"), nullptr);

  // The acceptance keys must exist even in a run that never touched GPUs:
  // the three stage counters and both ratio gauges.
  const Json* counters = j.find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  int stage_keys = 0;
  for (const Json& c : counters->items()) {
    if (c.find("name")->as_string() == "gpu_stage_busy_ns") ++stage_keys;
  }
  EXPECT_EQ(stage_keys, 3);

  // And the whole document survives a parse round-trip.
  auto parsed = Json::parse(j.dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("name")->as_string(), "unit");
}

// ---- Causal spans ----------------------------------------------------------

namespace {

// Golden span DAG used by the critical-path and flow-event tests:
//
//   job (Control)            [0 ....................................... 1000]
//     stage:map (Control)        [100 ............ 600]
//       task:map (Kernel)            [200 .. 500]
//     stage:reduce (Shuffle)                      [600 ......... 900]
//       wait:credit (Wait)                             [700 800]
//
// Last-finisher attribution: control 400 (job [0,100]+[900,1000],
// stage:map [100,200]+[500,600]), kernel 300, shuffle 200 ([600,700] +
// [800,900]), wait 100 — summing to the 1000 ns makespan exactly.
obs::SpanId build_golden_dag(obs::SpanStore& s) {
  s.set_retain(true);
  const obs::SpanId job =
      s.open("job", obs::SpanCategory::Control, 0, 0, "master/job", 0, /*trace_id=*/7);
  const obs::SpanId map = s.open("stage:map", obs::SpanCategory::Control, job, 100);
  s.record("task:map", obs::SpanCategory::Kernel, map, 200, 500, "node1/gpu0", 1);
  s.close(map, 600);
  const obs::SpanId reduce = s.open("stage:reduce", obs::SpanCategory::Shuffle, job, 600);
  s.record("wait:credit", obs::SpanCategory::Wait, reduce, 700, 800, "node2/shuffle", 2);
  s.close(reduce, 900);
  s.close(job, 1000);
  return job;
}

sim::Duration category_ns(const obs::CriticalPath& cp, obs::SpanCategory c) {
  return cp.by_category[static_cast<std::size_t>(c)];
}

}  // namespace

TEST(Spans, TraceIdInheritsAndAggregatesCount) {
  obs::SpanStore s;
  build_golden_dag(s);
  ASSERT_EQ(s.spans().size(), 5u);
  for (const auto& span : s.spans()) {
    EXPECT_EQ(span.trace_id, 7u) << span.name;
  }
  EXPECT_EQ(s.recorded(), 5u);

  obs::MetricsRegistry m;
  s.export_metrics(m);
  EXPECT_DOUBLE_EQ(m.counter_value("trace_spans_total"), 5.0);
  EXPECT_DOUBLE_EQ((m.counter_value("trace_span_ns_total", {{"category", "kernel"}})), 300.0);
  EXPECT_DOUBLE_EQ((m.counter_value("trace_span_ns_total", {{"category", "wait"}})), 100.0);
}

TEST(Spans, GoldenDagCriticalPathBreakdown) {
  obs::SpanStore s;
  build_golden_dag(s);
  const obs::CriticalPath cp = obs::extract_critical_path(s);

  EXPECT_EQ(cp.total, 1000);
  EXPECT_EQ(category_ns(cp, obs::SpanCategory::Control), 400);
  EXPECT_EQ(category_ns(cp, obs::SpanCategory::Kernel), 300);
  EXPECT_EQ(category_ns(cp, obs::SpanCategory::Shuffle), 200);
  EXPECT_EQ(category_ns(cp, obs::SpanCategory::Wait), 100);
  EXPECT_EQ(category_ns(cp, obs::SpanCategory::H2D), 0);

  // Every instant of the makespan lands in exactly one category.
  sim::Duration sum = 0;
  for (auto d : cp.by_category) sum += d;
  EXPECT_EQ(sum, cp.total);

  // Chronological segments walk the known longest path through the DAG.
  ASSERT_EQ(cp.segments.size(), 8u);
  const char* expected[] = {"job",          "stage:map",   "task:map",    "stage:map",
                            "stage:reduce", "wait:credit", "stage:reduce", "job"};
  sim::Time cursor = 0;
  for (std::size_t i = 0; i < cp.segments.size(); ++i) {
    EXPECT_EQ(cp.segments[i].name, expected[i]) << "segment " << i;
    EXPECT_EQ(cp.segments[i].begin, cursor) << "segment " << i;  // gap-free
    cursor = cp.segments[i].end;
  }
  EXPECT_EQ(cursor, 1000);
}

TEST(Spans, CriticalPathGaugesExport) {
  obs::SpanStore s;
  build_golden_dag(s);
  obs::MetricsRegistry m;
  obs::export_critical_path_metrics(obs::extract_critical_path(s), m);
  EXPECT_DOUBLE_EQ(m.gauge_value("trace_critical_path_seconds"), 1000e-9);
  EXPECT_DOUBLE_EQ((m.gauge_value("trace_critical_path_seconds", {{"category", "kernel"}})),
                   300e-9);
}

TEST(Spans, StragglerFlagsKnownOutlierAndNamesWaitedResource) {
  obs::SpanStore s;
  s.set_retain(true);
  // Peer group "task:rank" of ten members: nine take 100 ns, one takes
  // 1000 ns. Nearest-rank p95 over the sorted durations is 100 ns, so only
  // the outlier is strictly slower.
  for (int i = 0; i < 9; ++i) {
    s.record("task:rank", obs::SpanCategory::Control, 0, 0, 100, "node1/tasks", 1);
  }
  const obs::SpanId slow =
      s.open("task:rank", obs::SpanCategory::Control, 0, 0, "node3/tasks", 3);
  s.record("wait:slot", obs::SpanCategory::Wait, slow, 0, 700, "node3/slots", 3);
  s.record("wait:credit", obs::SpanCategory::Wait, slow, 700, 900, "node3/shuffle", 3);
  s.close(slow, 1000);
  // A group too small to have meaningful percentiles is never flagged.
  s.record("task:tiny", obs::SpanCategory::Control, 0, 0, 5000);
  s.record("task:tiny", obs::SpanCategory::Control, 0, 0, 1);

  const std::vector<obs::Straggler> out = obs::find_stragglers(s);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].span, slow);
  EXPECT_EQ(out[0].name, "task:rank");
  EXPECT_EQ(out[0].lane, "node3/tasks");
  EXPECT_EQ(out[0].duration, 1000);
  EXPECT_EQ(out[0].p95, 100);
  // Attribution names the longest Wait descendant and its lane.
  EXPECT_EQ(out[0].waited_on, "wait:slot on node3/slots");

  obs::MetricsRegistry m;
  obs::export_straggler_metrics(out, m);
  EXPECT_DOUBLE_EQ(m.gauge_value("trace_stragglers_total"), 1.0);
}

TEST(Spans, UntracedStoreStaysEmptyButCounts) {
  obs::SpanStore s;  // retain off: the default for untraced runs
  const obs::SpanId id = s.open("task:x", obs::SpanCategory::Control, 0, 0);
  s.close(id, 10);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.recorded(), 1u);
  EXPECT_EQ(obs::extract_critical_path(s).total, 0);
  // Id 0 is the "no span" sentinel everywhere.
  s.annotate(0, "k", "v");
  s.close(0, 99);
}

TEST(ChromeTrace, FlowEventsFollowSpanLinks) {
  sim::Tracer t(true);
  t.record("node1/cpu", "work", 0, 1000);
  obs::SpanStore s;
  build_golden_dag(s);

  const std::string doc = obs::chrome_trace_json(t, nullptr, 1000, &s);
  auto parsed = Json::parse(doc);
  ASSERT_TRUE(parsed.has_value()) << doc;

  // Four parent/child links -> four "s"/"f" pairs, ids matching pairwise.
  std::map<std::int64_t, int> starts, finishes;
  int causal_slices = 0;
  for (const Json& e : parsed->find("traceEvents")->items()) {
    const std::string ph = e.find("ph")->as_string();
    if (ph == "s") ++starts[e.find("id")->as_int()];
    if (ph == "f") {
      ++finishes[e.find("id")->as_int()];
      EXPECT_EQ(e.find("bp")->as_string(), "e");
    }
    if (ph == "X" && e.find("cat")->as_string() == "causal") ++causal_slices;
  }
  EXPECT_EQ(causal_slices, 5);
  EXPECT_EQ(starts.size(), 4u);
  EXPECT_EQ(finishes.size(), 4u);
  for (const auto& [id, n] : starts) {
    EXPECT_EQ(n, 1) << "flow id " << id;
    EXPECT_EQ(finishes[id], 1) << "flow id " << id;
  }
}

// ---- Flight recorder -------------------------------------------------------

TEST(FlightRecorder, RingsAreBoundedAndDumpRoundTrips) {
  obs::FlightRecorder fr(/*ring_capacity=*/4);
  obs::SpanStore s;
  s.attach_flight_recorder(&fr);
  // Ten closed spans on one node: the ring keeps only the last four even
  // though the store itself retains nothing (untraced run).
  for (int i = 0; i < 10; ++i) {
    s.record("task:t", obs::SpanCategory::Control, 0, i * 10, i * 10 + 5, "node1/tasks", 1);
  }
  fr.note_event(100, 1, "cache_evict", "gpu0 4096 bytes");
  fr.note_fault(110, 2, "shuffle_transfer_fault", "block to node3");
  EXPECT_EQ(fr.faults(), 1u);

  const std::string path = ::testing::TempDir() + "flight_dump_test.json";
  ASSERT_TRUE(fr.dump_now(path));

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = Json::parse(buf.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("schema")->as_string(), "gflink.flight_dump/v1");
  const Json* nodes = parsed->find("nodes");
  ASSERT_NE(nodes, nullptr);
  bool saw_node1 = false, saw_fault = false;
  for (const Json& n : nodes->items()) {
    if (n.find("node")->as_int() == 1) {
      saw_node1 = true;
      ASSERT_EQ(n.find("spans")->size(), 4u);  // bounded ring, oldest dropped
      // Oldest-first: the retained spans are the last four recorded.
      EXPECT_EQ(n.find("spans")->items()[0].find("begin_ns")->as_int(), 60);
      EXPECT_EQ(n.find("events")->items()[0].find("kind")->as_string(), "cache_evict");
    }
    for (const Json& ev : n.find("events")->items()) {
      if (ev.find("kind")->as_string() == "shuffle_transfer_fault") saw_fault = true;
    }
  }
  EXPECT_TRUE(saw_node1);
  EXPECT_TRUE(saw_fault);
  std::remove(path.c_str());
}

TEST(FlightRecorder, FirstFaultAutoDumps) {
  obs::FlightRecorder fr;
  const std::string path = ::testing::TempDir() + "flight_auto_dump.json";
  fr.set_dump_path(path);
  fr.note_event(1, 0, "benign", "not a fault");
  EXPECT_EQ(fr.dumps(), 0u);
  fr.note_fault(2, 1, "worker_failure", "worker 1 died");
  EXPECT_EQ(fr.dumps(), 1u);
  fr.note_fault(3, 2, "worker_failure", "worker 2 died");
  EXPECT_EQ(fr.dumps(), 1u);  // only the first fault snapshots
  EXPECT_EQ(fr.faults(), 2u);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

TEST(RunReport, DerivedMetricsHandleEmptyRegistry) {
  obs::MetricsRegistry m;
  obs::add_derived_gflink_metrics(m);
  EXPECT_DOUBLE_EQ(m.gauge_value("cache_hit_ratio"), 0.0);
  EXPECT_DOUBLE_EQ(m.gauge_value("locality_hit_ratio"), 0.0);
  EXPECT_DOUBLE_EQ((m.counter_value("gpu_stage_busy_ns", {{"stage", "kernel"}})), 0.0);
}
