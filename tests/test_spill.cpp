// Tests for the tiered, asynchronously-offloaded spill store: enqueue
// semantics (non-blocking fast path, bounded-queue backpressure), the
// memory -> disk -> DFS tier ladder, write-behind consistency, the codec
// accounting, promotion back into the memory tier on re-read, and the
// exactly-once landing hook.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dfs/gdfs.hpp"
#include "spill/spill_store.hpp"

namespace sim = gflink::sim;
namespace net = gflink::net;
namespace dfs = gflink::dfs;
namespace spill = gflink::spill;
namespace obs = gflink::obs;
using sim::Co;
using spill::BlockHandle;
using spill::SpillCodec;
using spill::SpillTier;

namespace {

struct Fixture {
  sim::Simulation s;
  net::Cluster cluster;
  dfs::Gdfs fs;
  spill::SpillStore store;

  explicit Fixture(spill::SpillConfig cfg = {}, int workers = 2)
      : cluster(s, make_cluster_cfg(workers)), fs(cluster), store(s, cluster, fs, cfg) {}

  static net::ClusterConfig make_cluster_cfg(int workers) {
    net::ClusterConfig c;
    c.num_workers = workers;
    return c;
  }

  double counter(const std::string& name, const char* tier) const {
    return cluster.metrics().counter_value(name, {{"tier", tier}});
  }
};

// Offload a block destined for every tier and count landing hooks.
TEST(SpillStore, OffloadReturnsWithoutPayingTierIo) {
  spill::SpillConfig cfg;
  cfg.memory_tier_bytes = 0;  // force the DFS backstop: the priciest write
  cfg.disk_tier_bytes = 0;
  Fixture f(cfg);
  int landed = 0;
  sim::Time at_return = 0;
  BlockHandle handle;
  f.s.spawn([](Fixture& fx, int& n, sim::Time& t, BlockHandle& out) -> Co<void> {
    out = co_await fx.store.offload(1, 64 * 1024, "t", {}, [&n] { ++n; });
    t = fx.s.now();
  }(f, landed, at_return, handle));
  f.s.run();
  // The enqueue itself is free: no queue contention, so no virtual time
  // passes before offload() hands the handle back.
  EXPECT_EQ(at_return, 0u);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->tier, SpillTier::Dfs);
  EXPECT_TRUE(handle->landed);  // the drain worker finished during run()
  EXPECT_EQ(landed, 1);
  EXPECT_EQ(f.counter("spill_offload_blocks_total", "dfs"), 1.0);
  EXPECT_EQ(f.counter("spill_landed_blocks_total", "dfs"), 1.0);
  EXPECT_GT(f.s.now(), 0u);  // the DFS write itself cost time, off-path
}

// A full queue is the only producer-visible stall: with one worker and a
// one-slot queue, the third offload must park until the worker frees a
// slot, and the stall is metered against the block's destination tier.
TEST(SpillStore, BoundedQueueBackpressure) {
  spill::SpillConfig cfg;
  cfg.memory_tier_bytes = 0;
  cfg.disk_tier_bytes = 0;
  cfg.workers_per_node = 1;
  cfg.queue_capacity = 1;
  Fixture f(cfg);
  sim::Time third_enqueued = 0;
  f.s.spawn([](Fixture& fx, sim::Time& t3) -> Co<void> {
    co_await fx.store.offload(1, 64 * 1024, "a", {});
    co_await fx.store.offload(1, 64 * 1024, "b", {});
    co_await fx.store.offload(1, 64 * 1024, "c", {});
    t3 = fx.s.now();
  }(f, third_enqueued));
  f.s.run();
  EXPECT_GT(third_enqueued, 0u);  // parked while the worker wrote block "a"
  EXPECT_GE(f.counter("spill_producer_stalls_total", "dfs"), 1.0);
  EXPECT_GT(f.counter("spill_producer_stall_ns_total", "dfs"), 0.0);
  EXPECT_EQ(f.counter("spill_landed_blocks_total", "dfs"), 3.0);
}

// Blocks walk the ladder cheapest-first, and each tier's reservation uses
// the bytes that tier actually stores (raw in memory, post-codec on disk).
TEST(SpillStore, TierLadderReservesCheapestFit) {
  spill::SpillConfig cfg;
  cfg.codec = SpillCodec::Lz;
  cfg.lz_ratio = 0.5;
  cfg.memory_tier_bytes = 1000;
  cfg.disk_tier_bytes = 600;
  Fixture f(cfg);
  std::vector<BlockHandle> handles;
  f.s.spawn([](Fixture& fx, std::vector<BlockHandle>& out) -> Co<void> {
    out.push_back(co_await fx.store.offload(1, 1000, "m", {}));  // fills memory
    out.push_back(co_await fx.store.offload(1, 1200, "d", {}));  // 600 stored, fills disk
    out.push_back(co_await fx.store.offload(1, 100, "f", {}));   // overflows to DFS
  }(f, handles));
  f.s.run();
  ASSERT_EQ(handles.size(), 3u);
  EXPECT_EQ(handles[0]->tier, SpillTier::Memory);
  EXPECT_EQ(handles[0]->stored_bytes, 1000u);  // memory keeps blocks raw
  EXPECT_EQ(handles[1]->tier, SpillTier::Disk);
  EXPECT_EQ(handles[1]->stored_bytes, 600u);  // codec applies on disk
  EXPECT_EQ(handles[2]->tier, SpillTier::Dfs);
  EXPECT_EQ(f.store.tier_used_bytes(1, SpillTier::Memory), 1000u);
  EXPECT_EQ(f.store.tier_used_bytes(1, SpillTier::Disk), 600u);
  // release() hands each tier's reservation back.
  f.store.release(handles[0]);
  f.store.release(handles[1]);
  f.store.release(handles[2]);
  EXPECT_EQ(f.store.tier_used_bytes(1, SpillTier::Memory), 0u);
  EXPECT_EQ(f.store.tier_used_bytes(1, SpillTier::Disk), 0u);
  EXPECT_EQ(f.store.tier_used_bytes(1, SpillTier::Dfs), 0u);
}

// Write-behind consistency: a fetch that outruns the spill worker waits
// for the block to land instead of reading a torn block.
TEST(SpillStore, FetchWaitsForInFlightBlock) {
  spill::SpillConfig cfg;
  cfg.memory_tier_bytes = 0;
  cfg.disk_tier_bytes = 0;
  Fixture f(cfg);
  bool fetched_after_land = false;
  f.s.spawn([](Fixture& fx, bool& ok) -> Co<void> {
    BlockHandle h = co_await fx.store.offload(1, 256 * 1024, "t", {});
    EXPECT_FALSE(h->landed);  // the worker has not had a chance to run
    co_await fx.store.fetch(h, 1);
    ok = h->landed;
  }(f, fetched_after_land));
  f.s.run();
  EXPECT_TRUE(fetched_after_land);
  EXPECT_GT(f.counter("spill_fetch_wait_ns_total", "dfs"), 0.0);
  EXPECT_EQ(f.counter("spill_tier_hits_total", "dfs"), 1.0);
}

// The codec charges bandwidth-shaped costs and saves deterministic bytes;
// SpillCodec::None stores raw and pays nothing.
TEST(SpillStore, CodecAccounting) {
  spill::SpillConfig lz;
  lz.codec = SpillCodec::Lz;
  lz.lz_ratio = 0.45;
  {
    Fixture f(lz);
    EXPECT_EQ(f.store.stored_size(1000, SpillTier::Memory), 1000u);
    EXPECT_EQ(f.store.stored_size(1000, SpillTier::Disk), 450u);
    EXPECT_EQ(f.store.stored_size(1000, SpillTier::Dfs), 450u);
  }
  spill::SpillConfig none = lz;
  none.codec = SpillCodec::None;
  none.memory_tier_bytes = 0;
  none.disk_tier_bytes = 0;
  lz.memory_tier_bytes = 0;
  lz.disk_tier_bytes = 0;
  Fixture fl(lz);
  Fixture fn(none);
  for (Fixture* f : {&fl, &fn}) {
    f->s.spawn([](Fixture& fx) -> Co<void> {
      BlockHandle h = co_await fx.store.offload(1, 100000, "t", {});
      co_await fx.store.fetch(h, 1);
    }(*f));
    f->s.run();
  }
  EXPECT_EQ(fl.counter("codec_saved_bytes_total", "dfs"), 55000.0);
  EXPECT_GT(fl.counter("codec_compress_ns_total", "dfs"), 0.0);
  EXPECT_GT(fl.counter("codec_decompress_ns_total", "dfs"), 0.0);
  EXPECT_EQ(fn.counter("codec_saved_bytes_total", "dfs"), 0.0);
  EXPECT_EQ(fn.counter("codec_compress_ns_total", "dfs"), 0.0);
  // Compressed DFS blocks move fewer bytes: the LZ run finishes sooner
  // even after paying the codec.
  EXPECT_LT(fl.s.now(), fn.s.now());
}

// A re-read disk block is promoted into the memory tier once room exists,
// so the second fetch is a memory hit — counted, spanned, and reflected
// in the tier accounting.
TEST(SpillStore, FetchPromotesReReadBlockToMemory) {
  spill::SpillConfig cfg;
  cfg.codec = SpillCodec::None;
  cfg.memory_tier_bytes = 1000;
  cfg.disk_tier_bytes = 10000;
  Fixture f(cfg);
  f.cluster.spans().set_retain(true);
  std::vector<BlockHandle> handles;
  f.s.spawn([](Fixture& fx, std::vector<BlockHandle>& out) -> Co<void> {
    out.push_back(co_await fx.store.offload(1, 1000, "fill", {}));  // fills memory
    out.push_back(co_await fx.store.offload(1, 500, "hot", {}));    // lands on disk
  }(f, handles));
  f.s.run();
  ASSERT_EQ(handles.size(), 2u);
  ASSERT_EQ(handles[1]->tier, SpillTier::Disk);
  // Free the memory tier, then re-read the disk block twice.
  f.store.release(handles[0]);
  f.s.spawn([](Fixture& fx, BlockHandle& h) -> Co<void> {
    co_await fx.store.fetch(h, 1);  // disk hit, then promotion
    EXPECT_EQ(h->tier, SpillTier::Memory);
    co_await fx.store.fetch(h, 1);  // served from memory
  }(f, handles[1]));
  f.s.run();
  EXPECT_EQ(f.counter("spill_tier_hits_total", "disk"), 1.0);
  EXPECT_EQ(f.counter("spill_tier_hits_total", "memory"), 1.0);
  EXPECT_EQ(f.counter("spill_promotions_total", "memory"), 1.0);
  EXPECT_EQ(f.store.tier_used_bytes(1, SpillTier::Disk), 0u);
  EXPECT_EQ(f.store.tier_used_bytes(1, SpillTier::Memory), 500u);
  bool saw_promote = false, saw_mem_fetch = false;
  for (const obs::CausalSpan& sp : f.cluster.spans().spans()) {
    if (sp.name == "spill:promote:memory") saw_promote = true;
    if (sp.name == "spill:fetch:memory") saw_mem_fetch = true;
  }
  EXPECT_TRUE(saw_promote);
  EXPECT_TRUE(saw_mem_fetch);
}

// The landing hook fires exactly once per block even when a reader is
// already parked on the land trigger.
TEST(SpillStore, LandingHookRunsExactlyOnce) {
  spill::SpillConfig cfg;
  cfg.memory_tier_bytes = 0;
  cfg.disk_tier_bytes = 0;
  Fixture f(cfg);
  int landed = 0;
  f.s.spawn([](Fixture& fx, int& n) -> Co<void> {
    BlockHandle h = co_await fx.store.offload(1, 4096, "t", {}, [&n] { ++n; });
    co_await fx.store.fetch(h, 2);  // remote reader parks on the trigger
    co_await fx.store.fetch(h, 2);  // second read: no second landing
    fx.store.release(h);
  }(f, landed));
  f.s.run();
  EXPECT_EQ(landed, 1);
  EXPECT_EQ(f.counter("spill_landed_blocks_total", "dfs"), 1.0);
}

}  // namespace
