// Tests for the cluster topology and network model.
#include <gtest/gtest.h>

#include "net/cluster.hpp"

namespace sim = gflink::sim;
namespace net = gflink::net;
using sim::Co;
using sim::Simulation;
using sim::Time;

namespace {

net::ClusterConfig small_cluster(int workers = 2) {
  net::ClusterConfig cfg;
  cfg.num_workers = workers;
  return cfg;
}

}  // namespace

TEST(Cluster, TopologyAndIds) {
  Simulation s;
  net::Cluster c(s, small_cluster(3));
  EXPECT_EQ(c.num_workers(), 3);
  EXPECT_EQ(c.master().id(), 0);
  EXPECT_EQ(c.worker(0).id(), 1);
  EXPECT_EQ(c.worker(2).id(), 3);
  EXPECT_EQ(&c.node(1), &c.worker(0));
}

TEST(Pipe, UnloadedTimeIsLatencyPlusBandwidth) {
  Simulation s;
  net::Pipe p(s, "p", 100e6, sim::micros(10));  // 100 MB/s, 10 us
  // 1 MB at 100 MB/s = 10 ms (+10 us latency).
  EXPECT_EQ(p.unloaded_time(1'000'000), sim::micros(10) + sim::millis(10));
}

TEST(Pipe, SerializesTransfersFifo) {
  Simulation s;
  net::Pipe p(s, "p", 1e9, 0);  // 1 GB/s, no latency
  std::vector<Time> done;
  for (int i = 0; i < 3; ++i) {
    s.spawn([](Simulation& sm, net::Pipe& pipe, std::vector<Time>& d) -> Co<void> {
      co_await pipe.transfer(1'000'000);  // 1 ms each
      d.push_back(sm.now());
    }(s, p, done));
  }
  s.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], sim::millis(1));
  EXPECT_EQ(done[1], sim::millis(2));
  EXPECT_EQ(done[2], sim::millis(3));
  EXPECT_EQ(p.bytes_moved(), 3'000'000u);
  EXPECT_EQ(p.transfers(), 3u);
}

TEST(Cluster, TransferUsesBothNics) {
  Simulation s;
  auto cfg = small_cluster();
  cfg.worker.nic.bandwidth = 100e6;
  cfg.worker.nic.latency = 0;
  net::Cluster c(s, cfg);
  Time done = -1;
  s.spawn([](Simulation& sm, net::Cluster& cl, Time& d) -> Co<void> {
    co_await cl.transfer(1, 2, 100'000'000);  // 100 MB at 100 MB/s
    d = sm.now();
  }(s, c, done));
  s.run();
  // Store-and-forward through egress then ingress: 1 s + 1 s.
  EXPECT_EQ(done, sim::seconds(2));
  EXPECT_DOUBLE_EQ(c.metrics().counter("net.bytes"), 100e6);
}

TEST(Cluster, LocalTransferIsFree) {
  Simulation s;
  net::Cluster c(s, small_cluster());
  Time done = -1;
  s.spawn([](Simulation& sm, net::Cluster& cl, Time& d) -> Co<void> {
    co_await cl.transfer(1, 1, 1'000'000'000);
    d = sm.now();
  }(s, c, done));
  s.run();
  EXPECT_EQ(done, 0);
  EXPECT_EQ(c.node(1).egress().bytes_moved(), 0u);
}

TEST(Cluster, ConcurrentTransfersToOneNodeQueueOnIngress) {
  Simulation s;
  auto cfg = small_cluster(3);
  cfg.worker.nic.bandwidth = 100e6;
  cfg.worker.nic.latency = 0;
  net::Cluster c(s, cfg);
  std::vector<Time> done;
  // Workers 1 and 2 both send 100 MB to worker 3.
  for (int src = 1; src <= 2; ++src) {
    s.spawn([](Simulation& sm, net::Cluster& cl, int from, std::vector<Time>& d) -> Co<void> {
      co_await cl.transfer(from, 3, 100'000'000);
      d.push_back(sm.now());
    }(s, c, src, done));
  }
  s.run();
  ASSERT_EQ(done.size(), 2u);
  // Egress legs run in parallel (1 s each); the shared ingress serializes:
  // first finishes at 2 s, second at 3 s.
  EXPECT_EQ(done[0], sim::seconds(2));
  EXPECT_EQ(done[1], sim::seconds(3));
}

TEST(Cluster, MessageLatencyOnly) {
  Simulation s;
  auto cfg = small_cluster();
  cfg.worker.nic.latency = sim::micros(50);
  cfg.master.nic.latency = sim::micros(50);
  net::Cluster c(s, cfg);
  Time done = -1;
  s.spawn([](Simulation& sm, net::Cluster& cl, Time& d) -> Co<void> {
    co_await cl.message(0, 1);
    d = sm.now();
  }(s, c, done));
  s.run();
  EXPECT_EQ(done, sim::micros(100));
}

TEST(Node, RecordTimeRoofline) {
  Simulation s;
  net::NodeSpec spec;
  spec.cpu.effective_flops = 1e9;
  spec.cpu.mem_bandwidth = 1e9;
  spec.cpu.record_overhead = 10;
  net::Node n(s, 7, spec, nullptr);
  // Compute-bound: 1000 flops at 1 GF/s = 1 us.
  EXPECT_EQ(n.record_time(1000.0, 8.0), 10 + 1000);
  // Memory-bound: 4000 bytes at 1 GB/s = 4 us.
  EXPECT_EQ(n.record_time(100.0, 4000.0), 10 + 4000);
}

TEST(Cluster, TracerSeesNicSpans) {
  Simulation s;
  net::Cluster c(s, small_cluster());
  c.tracer().set_enabled(true);
  s.spawn([](net::Cluster& cl) -> Co<void> {
    co_await cl.transfer(1, 2, 1'000'000, "blockA");
  }(c));
  s.run();
  EXPECT_EQ(c.tracer().lane("node1/egress").size(), 1u);
  EXPECT_EQ(c.tracer().lane("node2/ingress").size(), 1u);
  EXPECT_EQ(c.tracer().lane("node1/egress")[0].label, "blockA");
}
