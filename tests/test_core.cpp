// Tests for the GFlink core: GWork, GMemoryManager (cache scheme),
// GStreamManager (Algorithms 5.1/5.2, pipelining), GpuManager and the GDST
// block-processing layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "core/gdst.hpp"
#include "core/gmemory_manager.hpp"
#include "core/gpu_manager.hpp"
#include "core/gstream_manager.hpp"
#include "core/gwork.hpp"
#include "dataflow/dataset.hpp"

namespace sim = gflink::sim;
namespace mem = gflink::mem;
namespace gpu = gflink::gpu;
namespace df = gflink::dataflow;
namespace core = gflink::core;
using core::GBuffer;
using core::GWork;
using core::GWorkPtr;
using sim::Co;
using sim::Simulation;

namespace {

struct KV {
  std::uint64_t key;
  std::int64_t value;
};

const mem::StructDesc& kv_desc() {
  static const mem::StructDesc d = mem::StructDescBuilder("KV", 8)
                                       .field("key", mem::FieldType::U64, 1, offsetof(KV, key))
                                       .field("value", mem::FieldType::I64, 1, offsetof(KV, value))
                                       .build();
  return d;
}

// Kernel: out[i] = {in[i].key, 2 * in[i].value}. Buffers: [in, out].
void register_test_kernels() {
  static bool done = false;
  if (done) return;
  done = true;
  gpu::Kernel k;
  k.name = "core_double_kv";
  k.cost = {4.0, 32.0, 0.0};
  k.fn = [](gpu::KernelLaunch& launch) {
    const KV* in = reinterpret_cast<const KV*>(launch.buffers[0].data());
    KV* out = reinterpret_cast<KV*>(launch.buffers.back().data());
    for (std::size_t i = 0; i < launch.items; ++i) out[i] = KV{in[i].key, 2 * in[i].value};
  };
  gpu::KernelRegistry::global().register_kernel(k);

  // Kernel with an aux buffer: out[i] = in[i].value + aux[0].value.
  gpu::Kernel k2;
  k2.name = "core_add_aux";
  k2.cost = {2.0, 32.0, 0.0};
  k2.fn = [](gpu::KernelLaunch& launch) {
    const KV* in = reinterpret_cast<const KV*>(launch.buffers[0].data());
    const KV* aux = reinterpret_cast<const KV*>(launch.buffers[1].data());
    KV* out = reinterpret_cast<KV*>(launch.buffers.back().data());
    for (std::size_t i = 0; i < launch.items; ++i) {
      out[i] = KV{in[i].key, in[i].value + aux[0].value};
    }
  };
  gpu::KernelRegistry::global().register_kernel(k2);

  // Block reducer: one output record holding the sum of the block.
  gpu::Kernel k3;
  k3.name = "core_block_sum";
  k3.cost = {1.0, 16.0, 0.0};
  k3.fn = [](gpu::KernelLaunch& launch) {
    const KV* in = reinterpret_cast<const KV*>(launch.buffers[0].data());
    KV* out = reinterpret_cast<KV*>(launch.buffers.back().data());
    KV acc{0, 0};
    for (std::size_t i = 0; i < launch.items; ++i) acc.value += in[i].value;
    out[0] = acc;
  };
  gpu::KernelRegistry::global().register_kernel(k3);
}

/// Standalone GPU fixture: two devices + wrappers + cache manager + streams.
struct StreamFixture {
  Simulation s;
  sim::Tracer tracer{true};
  gpu::GpuDevice dev0, dev1;
  gpu::CudaStub stub0, stub1;
  gpu::CudaWrapper wrap0, wrap1;
  core::GMemoryManager memory;
  core::GStreamManager streams;
  mem::AddressSpace addresses;

  explicit StreamFixture(core::GStreamConfig cfg = {}, gpu::DeviceSpec spec0 = test_spec(),
                         gpu::DeviceSpec spec1 = test_spec())
      : dev0(s, "gpu0", spec0, &tracer),
        dev1(s, "gpu1", spec1, &tracer),
        stub0(dev0),
        stub1(dev1),
        wrap0(stub0),
        wrap1(stub1),
        memory({&dev0, &dev1}, 1 << 20, core::CachePolicy::Fifo),
        streams(s, {&wrap0, &wrap1}, memory, cfg) {
    register_test_kernels();
  }

  static gpu::DeviceSpec test_spec() {
    gpu::DeviceSpec spec;
    spec.name = "t";
    spec.peak_flops = 1e12;
    spec.kernel_efficiency = 0.5;
    spec.mem_bandwidth = 100e9;
    spec.device_memory = 256 << 20;
    spec.copy_engines = 2;
    spec.pcie_bandwidth = 1e9;
    spec.pcie_latency = 0;
    spec.kernel_launch_overhead = 0;
    return spec;
  }

  /// Build a GWork doubling `n` KVs.
  GWorkPtr make_work(std::size_t n, bool cache = false, std::uint64_t key = 0,
                     std::uint64_t job = 1) {
    auto in = std::make_shared<mem::HBuffer>(n * sizeof(KV), addresses.allocate(n * sizeof(KV)));
    in->set_pinned(true);
    auto* vals = reinterpret_cast<KV*>(in->data());
    for (std::size_t i = 0; i < n; ++i) vals[i] = KV{i, static_cast<std::int64_t>(i)};
    auto out =
        std::make_shared<mem::HBuffer>(n * sizeof(KV), addresses.allocate(n * sizeof(KV)));
    out->set_pinned(true);
    auto work = std::make_shared<GWork>();
    work->execute_name = "core_double_kv";
    work->size = n;
    work->job_id = job;
    GBuffer ib;
    ib.host = in;
    ib.bytes = n * sizeof(KV);
    ib.cache = cache;
    ib.cache_key = key;
    work->inputs.push_back(ib);
    GBuffer ob;
    ob.host = out;
    ob.bytes = n * sizeof(KV);
    work->outputs.push_back(ob);
    return work;
  }
};

}  // namespace

// ---- GMemoryManager ---------------------------------------------------------

TEST(GMemoryManager, MissThenHit) {
  Simulation s;
  gpu::GpuDevice dev(s, "g", StreamFixture::test_spec());
  core::GMemoryManager m({&dev}, 1024, core::CachePolicy::Fifo);
  EXPECT_FALSE(m.lookup(0, 1, 42).has_value());
  auto slot = m.insert(0, 1, 42, 256);
  ASSERT_TRUE(slot.has_value());
  EXPECT_NE(slot->ptr, 0u);
  auto hit = m.lookup(0, 1, 42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->ptr, slot->ptr);
  EXPECT_EQ(m.hits(), 1u);
  EXPECT_EQ(m.misses(), 1u);
}

TEST(GMemoryManager, JobsAreIsolated) {
  Simulation s;
  gpu::GpuDevice dev(s, "g", StreamFixture::test_spec());
  core::GMemoryManager m({&dev}, 1024, core::CachePolicy::Fifo);
  m.insert(0, 1, 42, 128);
  EXPECT_FALSE(m.lookup(0, 2, 42).has_value());
}

TEST(GMemoryManager, FifoEvictsOldestFirst) {
  Simulation s;
  gpu::GpuDevice dev(s, "g", StreamFixture::test_spec());
  core::GMemoryManager m({&dev}, 1024, core::CachePolicy::Fifo);
  ASSERT_TRUE(m.insert(0, 1, 1, 400).has_value());
  m.unpin(0, 1, 1);
  ASSERT_TRUE(m.insert(0, 1, 2, 400).has_value());
  m.unpin(0, 1, 2);
  // 400 more does not fit: key 1 (oldest) must be evicted, key 2 kept.
  ASSERT_TRUE(m.insert(0, 1, 3, 400).has_value());
  m.unpin(0, 1, 3);
  EXPECT_FALSE(m.lookup(0, 1, 1).has_value());
  EXPECT_TRUE(m.lookup(0, 1, 2).has_value());
  EXPECT_TRUE(m.lookup(0, 1, 3).has_value());
  EXPECT_EQ(m.evictions(), 1u);
}

TEST(GMemoryManager, NoEvictPolicyDeclinesWhenFull) {
  Simulation s;
  gpu::GpuDevice dev(s, "g", StreamFixture::test_spec());
  core::GMemoryManager m({&dev}, 1024, core::CachePolicy::NoEvict);
  ASSERT_TRUE(m.insert(0, 1, 1, 600).has_value());
  EXPECT_FALSE(m.insert(0, 1, 2, 600).has_value());
  EXPECT_TRUE(m.lookup(0, 1, 1).has_value());
  EXPECT_EQ(m.evictions(), 0u);
}

TEST(GMemoryManager, OversizedObjectNeverCached) {
  Simulation s;
  gpu::GpuDevice dev(s, "g", StreamFixture::test_spec());
  core::GMemoryManager m({&dev}, 1024, core::CachePolicy::Fifo);
  EXPECT_FALSE(m.insert(0, 1, 1, 2048).has_value());
}

TEST(GMemoryManager, ReleaseJobFreesDeviceMemory) {
  Simulation s;
  gpu::GpuDevice dev(s, "g", StreamFixture::test_spec());
  core::GMemoryManager m({&dev}, 1 << 20, core::CachePolicy::Fifo);
  m.insert(0, 7, 1, 1000);
  m.insert(0, 7, 2, 1000);
  EXPECT_GT(dev.memory().allocated(), 0u);
  m.release_job(7);
  EXPECT_EQ(dev.memory().allocated(), 0u);
  EXPECT_FALSE(m.lookup(0, 7, 1).has_value());
}

TEST(GMemoryManager, BestDeviceTracksCachedInputBytes) {
  Simulation s;
  gpu::GpuDevice d0(s, "g0", StreamFixture::test_spec());
  gpu::GpuDevice d1(s, "g1", StreamFixture::test_spec());
  core::GMemoryManager m({&d0, &d1}, 1 << 20, core::CachePolicy::Fifo);
  GWork work;
  work.job_id = 1;
  GBuffer in;
  in.cache = true;
  in.cache_key = 99;
  in.bytes = 4096;
  work.inputs.push_back(in);
  EXPECT_EQ(m.best_device_for(work), -1);
  m.insert(1, 1, 99, 4096);
  EXPECT_EQ(m.best_device_for(work), 1);
  EXPECT_EQ(m.cached_input_bytes(1, work), 4096u);
  EXPECT_EQ(m.cached_input_bytes(0, work), 0u);
}

// ---- Multi-tenant cache quotas (JobService) ---------------------------------

TEST(GMemoryManager, TenantQuotaEnforcedBySelfEviction) {
  Simulation s;
  gpu::GpuDevice dev(s, "g", StreamFixture::test_spec());
  core::GMemoryManager m({&dev}, 1024, core::CachePolicy::Fifo);
  m.set_job_tenant(1, "t");
  m.set_job_tenant(2, "t");
  m.set_tenant_quota("t", 512);
  ASSERT_TRUE(m.insert(0, 1, 1, 300).has_value());
  m.unpin(0, 1, 1);
  // Job 2 of the same tenant: 300 + 300 > 512, so the tenant's own oldest
  // entry (job 1's) is evicted to stay under quota — cross-job, same tenant.
  ASSERT_TRUE(m.insert(0, 2, 2, 300).has_value());
  m.unpin(0, 2, 2);
  EXPECT_FALSE(m.lookup(0, 1, 1).has_value());
  EXPECT_TRUE(m.lookup(0, 2, 2).has_value());
  EXPECT_EQ(m.tenant_cached_bytes(0, "t"), 300u);
  EXPECT_EQ(m.tenant_inserted_bytes("t"), 600u);
  EXPECT_EQ(m.cross_tenant_evictions(), 0u);  // self-eviction is not cross-tenant
}

TEST(GMemoryManager, TenantQuotaDeclinesOversizedAndPinnedWorkingSet) {
  Simulation s;
  gpu::GpuDevice dev(s, "g", StreamFixture::test_spec());
  core::GMemoryManager m({&dev}, 4096, core::CachePolicy::Fifo);
  m.set_job_tenant(1, "t");
  m.set_tenant_quota("t", 512);
  EXPECT_FALSE(m.insert(0, 1, 1, 600).has_value());  // larger than the quota
  ASSERT_TRUE(m.insert(0, 1, 2, 400).has_value());   // pinned by insert
  // 400 pinned + 200 would exceed the quota and nothing is evictable.
  EXPECT_FALSE(m.insert(0, 1, 3, 200).has_value());
  m.unpin(0, 1, 2);
  EXPECT_TRUE(m.insert(0, 1, 3, 200).has_value());  // now key 2 can yield
}

TEST(GMemoryManager, DevicePressureEvictsOverQuotaTenantFirst) {
  Simulation s;
  auto spec = StreamFixture::test_spec();
  spec.device_memory = 1024;  // tiny device: cache regions contend for it
  gpu::GpuDevice dev(s, "g", spec);
  core::GMemoryManager m({&dev}, 4096, core::CachePolicy::Fifo);
  m.set_job_tenant(1, "over");
  m.set_job_tenant(2, "under");
  // "over" fills the device while unconstrained, then its quota shrinks.
  ASSERT_TRUE(m.insert(0, 1, 1, 300).has_value());
  m.unpin(0, 1, 1);
  ASSERT_TRUE(m.insert(0, 1, 2, 300).has_value());
  m.unpin(0, 1, 2);
  m.set_tenant_quota("over", 256);   // now 600 used > 256: over quota
  m.set_tenant_quota("under", 512);
  ASSERT_TRUE(m.insert(0, 2, 3, 200).has_value());
  m.unpin(0, 2, 3);
  // Device full (600 + 200 = 800 of 1024): "under" needs 300 more; the
  // victim must be "over"'s oldest entry, not anything of "under".
  ASSERT_TRUE(m.insert(0, 2, 4, 300).has_value());
  m.unpin(0, 2, 4);
  EXPECT_GE(m.cross_tenant_evictions(), 1u);
  EXPECT_FALSE(m.lookup(0, 1, 1).has_value());  // over's oldest evicted
  EXPECT_TRUE(m.lookup(0, 2, 3).has_value());   // under's entry untouched
  EXPECT_TRUE(m.lookup(0, 2, 4).has_value());
}

TEST(GMemoryManager, UnderQuotaTenantNeverEvictedCrossTenant) {
  Simulation s;
  auto spec = StreamFixture::test_spec();
  spec.device_memory = 1024;
  gpu::GpuDevice dev(s, "g", spec);
  core::GMemoryManager m({&dev}, 4096, core::CachePolicy::Fifo);
  m.set_job_tenant(1, "u");
  m.set_tenant_quota("u", 512);
  // Sizes are multiples of the 256 B device allocation granule.
  ASSERT_TRUE(m.insert(0, 1, 1, 256).has_value());  // "u": well under quota
  m.unpin(0, 1, 1);
  // Default tenant (no quota) fills the rest and keeps its entry pinned, so
  // it has nothing of its own to give back.
  ASSERT_TRUE(m.insert(0, 2, 2, 512).has_value());  // pinned by insert
  // 768 of 1024 used. No over-quota victim exists and the requester's own
  // entries are pinned: the insert must decline rather than evict "u".
  EXPECT_FALSE(m.insert(0, 2, 3, 512).has_value());
  EXPECT_EQ(m.cross_tenant_evictions(), 0u);
  EXPECT_TRUE(m.lookup(0, 1, 1).has_value());  // under-quota tenant untouched
}

TEST(GMemoryManager, ReleaseJobForgetsTenantMapping) {
  Simulation s;
  gpu::GpuDevice dev(s, "g", StreamFixture::test_spec());
  core::GMemoryManager m({&dev}, 1024, core::CachePolicy::Fifo);
  m.set_job_tenant(5, "t");
  m.set_tenant_quota("t", 256);
  ASSERT_TRUE(m.insert(0, 5, 1, 200).has_value());
  m.release_job(5);
  // Job 5's next incarnation (ids are unique, but defensively) and any job
  // without a mapping belong to the default tenant again: no quota applies.
  ASSERT_TRUE(m.insert(0, 5, 2, 600).has_value());
  EXPECT_EQ(m.tenant_cached_bytes(0, "t"), 0u);
}

// ---- GStreamManager ---------------------------------------------------------

TEST(GStreamManager, ExecutesWorkEndToEnd) {
  StreamFixture f;
  auto work = f.make_work(100);
  f.s.spawn([](core::GStreamManager& gs, GWorkPtr w) -> Co<void> {
    co_await gs.run(w);
  }(f.streams, work));
  f.s.run();
  EXPECT_TRUE(work->done->fired());
  EXPECT_GE(work->executed_on_gpu, 0);
  const KV* out = reinterpret_cast<const KV*>(work->outputs[0].host->data());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i].value, static_cast<std::int64_t>(2 * i));
  }
}

TEST(GStreamManager, ManyWorksBalanceAcrossGpus) {
  StreamFixture f;
  sim::WaitGroup wg(f.s);
  for (int i = 0; i < 40; ++i) {
    wg.add();
    auto work = f.make_work(50000);
    f.s.spawn([](core::GStreamManager& gs, GWorkPtr w, sim::WaitGroup& join) -> Co<void> {
      co_await gs.run(w);
      join.done();
    }(f.streams, work, wg));
  }
  f.s.run();
  const auto g0 = f.streams.executed_on(0);
  const auto g1 = f.streams.executed_on(1);
  EXPECT_EQ(g0 + g1, 40u);
  EXPECT_GT(g0, 10u);
  EXPECT_GT(g1, 10u);
}

TEST(GStreamManager, LocalityRoutesToCachedGpu) {
  StreamFixture f;
  // Warm the cache on GPU 1 for key 5 of job 9.
  f.memory.insert(1, 9, 5, 1600);
  std::vector<GWorkPtr> works;
  sim::WaitGroup wg(f.s);
  for (int i = 0; i < 4; ++i) {
    auto work = f.make_work(100, /*cache=*/true, /*key=*/5, /*job=*/9);
    works.push_back(work);
    wg.add();
    f.s.spawn([](core::GStreamManager& gs, GWorkPtr w, sim::WaitGroup& join) -> Co<void> {
      co_await gs.run(w);
      join.done();
    }(f.streams, work, wg));
  }
  f.s.run();
  for (const auto& w : works) {
    EXPECT_EQ(w->executed_on_gpu, 1) << "locality-aware scheduling must honour the cache";
  }
  // The cached transfers were skipped: only the outputs moved D2H on gpu1.
  EXPECT_EQ(f.dev1.bytes_h2d(), 0u);
}

TEST(GStreamManager, WorkStealingDrainsForeignQueue) {
  // One stream per GPU; flood with works all preferring GPU 0 via cache.
  core::GStreamConfig cfg;
  cfg.streams_per_gpu = 1;
  StreamFixture f(cfg);
  f.memory.insert(0, 9, 5, 20000 * sizeof(KV));
  sim::WaitGroup wg(f.s);
  for (int i = 0; i < 20; ++i) {
    auto work = f.make_work(20000, true, 5, 9);
    wg.add();
    f.s.spawn([](core::GStreamManager& gs, GWorkPtr w, sim::WaitGroup& join) -> Co<void> {
      co_await gs.run(w);
      join.done();
    }(f.streams, work, wg));
  }
  f.s.run();
  EXPECT_GT(f.streams.steals(), 0u);
  EXPECT_GT(f.streams.executed_on(1), 0u);
}

TEST(GStreamManager, IdleStreamsAreFreedAndRevived) {
  core::GStreamConfig cfg;
  cfg.idle_timeout = sim::millis(1);
  StreamFixture f(cfg);
  auto first = f.make_work(100);
  auto second = f.make_work(100);
  f.s.spawn([](Simulation& s, core::GStreamManager& gs, GWorkPtr a, GWorkPtr b) -> Co<void> {
    co_await gs.run(a);
    co_await s.delay(sim::millis(50));  // all streams time out and free
    co_await gs.run(b);                 // must revive a stream
  }(f.s, f.streams, first, second));
  f.s.run();
  EXPECT_TRUE(second->done->fired());
  EXPECT_GT(f.streams.freed_streams(), 0u);
}

TEST(GStreamManager, MultiStreamPipelineOverlapsCopiesAndKernels) {
  core::GStreamConfig cfg;
  cfg.streams_per_gpu = 4;
  StreamFixture f(cfg);
  sim::WaitGroup wg(f.s);
  for (int i = 0; i < 12; ++i) {
    auto work = f.make_work(400000);  // ~6.4 MB in, ~6.4 ms H2D at 1 GB/s
    wg.add();
    f.s.spawn([](core::GStreamManager& gs, GWorkPtr w, sim::WaitGroup& join) -> Co<void> {
      co_await gs.run(w);
      join.done();
    }(f.streams, work, wg));
  }
  f.s.run();
  EXPECT_TRUE(f.tracer.lanes_overlap("gpu0/h2d", "gpu0/kernel"));
}

TEST(GStreamManager, SingleStreamSerializesNoOverlap) {
  core::GStreamConfig cfg;
  cfg.streams_per_gpu = 1;
  StreamFixture f(cfg);
  sim::WaitGroup wg(f.s);
  for (int i = 0; i < 6; ++i) {
    auto work = f.make_work(400000);
    wg.add();
    f.s.spawn([](core::GStreamManager& gs, GWorkPtr w, sim::WaitGroup& join) -> Co<void> {
      co_await gs.run(w);
      join.done();
    }(f.streams, work, wg));
  }
  f.s.run();
  EXPECT_FALSE(f.tracer.lanes_overlap("gpu0/h2d", "gpu0/kernel"));
  EXPECT_FALSE(f.tracer.lanes_overlap("gpu1/h2d", "gpu1/kernel"));
}

TEST(GStreamManager, PipeliningIsFasterThanSerial) {
  auto run_with_streams = [](int streams) {
    core::GStreamConfig cfg;
    cfg.streams_per_gpu = streams;
    StreamFixture f(cfg);
    sim::WaitGroup wg(f.s);
    for (int i = 0; i < 16; ++i) {
      auto work = f.make_work(400000);
      wg.add();
      f.s.spawn([](core::GStreamManager& gs, GWorkPtr w, sim::WaitGroup& join) -> Co<void> {
        co_await gs.run(w);
        join.done();
      }(f.streams, work, wg));
    }
    return f.s.run();
  };
  auto serial = run_with_streams(1);
  auto pipelined = run_with_streams(4);
  EXPECT_LT(pipelined, serial);
}

TEST(GStreamManager, RoundRobinPolicyAlternates) {
  core::GStreamConfig cfg;
  cfg.policy = core::SchedulingPolicy::RoundRobin;
  StreamFixture f(cfg);
  std::vector<GWorkPtr> works;
  sim::WaitGroup wg(f.s);
  for (int i = 0; i < 8; ++i) {
    auto work = f.make_work(100);
    works.push_back(work);
    wg.add();
    f.s.spawn([](Simulation& s, core::GStreamManager& gs, GWorkPtr w, int idx,
                 sim::WaitGroup& join) -> Co<void> {
      co_await s.delay(sim::millis(idx));  // submit one at a time
      co_await gs.run(w);
      join.done();
    }(f.s, f.streams, work, i, wg));
  }
  f.s.run();
  for (std::size_t i = 0; i < works.size(); ++i) {
    EXPECT_EQ(works[i]->executed_on_gpu, static_cast<int>(i % 2));
  }
}

TEST(GStreamManager, MappedMemoryGWorkSkipsCopyEngines) {
  StreamFixture f;
  auto work = f.make_work(1000);
  work->use_mapped_memory = true;
  work->inputs[0].cache = false;
  f.s.spawn([](core::GStreamManager& gs, GWorkPtr w) -> Co<void> {
    co_await gs.run(w);
  }(f.streams, work));
  f.s.run();
  EXPECT_TRUE(work->done->fired());
  // Results are correct...
  const KV* out = reinterpret_cast<const KV*>(work->outputs[0].host->data());
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(out[i].value, static_cast<std::int64_t>(2 * i));
  }
  // ...and no DMA engine moved a byte (the kernel streamed host memory).
  EXPECT_EQ(f.dev0.bytes_h2d() + f.dev1.bytes_h2d(), 0u);
  EXPECT_EQ(f.dev0.bytes_d2h() + f.dev1.bytes_d2h(), 0u);
}

TEST(GStreamManager, MappedMemoryCostsPcieBandwidth) {
  // For a memory-bound kernel the mapped path is bounded by PCIe, the copy
  // path by device DRAM after the transfer: run both and compare the
  // kernel-only durations through virtual time.
  auto run_once = [](bool mapped) {
    StreamFixture f;
    auto work = f.make_work(200000);  // 3.2 MB
    work->use_mapped_memory = mapped;
    work->inputs[0].cache = false;
    f.s.spawn([](core::GStreamManager& gs, GWorkPtr w) -> Co<void> {
      co_await gs.run(w);
    }(f.streams, work));
    f.s.run();
    return work->finished_at - work->submitted_at;
  };
  auto mapped = run_once(true);
  auto copied = run_once(false);
  // Copy path: H2D 3.2MB at 1 GB/s + kernel at 100 GB/s + D2H + overheads.
  // Mapped path: one kernel at PCIe speed (1 GB/s) on 8 B/item = 1.6 ms.
  EXPECT_GT(mapped, sim::millis(1));
  // Both complete; the copy path pays transfers both ways so it is slower
  // for this single one-shot work.
  EXPECT_LT(mapped, copied);
}

TEST(GStreamManager, TenantPriorityJumpsTheQueue) {
  // One stream per GPU and heavy works so the pool backlogs; a high-priority
  // tenant submitted *after* the background works must be popped first.
  core::GStreamConfig cfg;
  cfg.streams_per_gpu = 1;
  StreamFixture f(cfg);
  f.streams.set_tenant_priority("vip", 10);
  sim::WaitGroup wg(f.s);
  std::vector<std::pair<std::string, sim::Time>> done;  // (tenant, finish time)
  auto submit = [&](const std::string& tenant) {
    auto work = f.make_work(400000);  // ~6.4 ms H2D each: queues build up
    work->tenant = tenant;
    wg.add();
    f.s.spawn([](core::GStreamManager& gs, GWorkPtr w, sim::WaitGroup& join, Simulation& s,
                 std::vector<std::pair<std::string, sim::Time>>& log,
                 std::string t) -> Co<void> {
      co_await gs.run(w);
      log.emplace_back(std::move(t), s.now());
      join.done();
    }(f.streams, work, wg, f.s, done, tenant));
  };
  for (int i = 0; i < 8; ++i) submit("bg");
  for (int i = 0; i < 4; ++i) submit("vip");
  f.s.run();
  ASSERT_EQ(done.size(), 12u);
  sim::Time vip_last = 0, bg_last = 0;
  for (const auto& [tenant, at] : done) {
    if (tenant == "vip") {
      vip_last = std::max(vip_last, at);
    } else {
      bg_last = std::max(bg_last, at);
    }
  }
  // Every queued vip work overtook the queued bg backlog.
  EXPECT_LT(vip_last, bg_last);
  EXPECT_GT(f.streams.priority_bypasses(), 0u);
}

// ---- Chunked transfer/compute pipeline --------------------------------------

namespace {

/// Opt a make_work() GWork into the chunked pipeline: core_double_kv is
/// element-wise and both buffers are arrays of KV records.
void make_chunkable(GWork& work) {
  work.chunkable = true;
  work.inputs[0].item_stride = sizeof(KV);
  work.outputs[0].item_stride = sizeof(KV);
}

/// Single-GPU rig with direct control over the device spec, JNI overhead
/// and stream config — the StreamFixture's second device and fixed wrapper
/// overheads get in the way of exact-makespan and memory-layout tests.
struct SingleGpuFixture {
  Simulation s;
  gpu::GpuDevice dev;
  gpu::CudaStub stub;
  gpu::CudaWrapper wrap;
  core::GMemoryManager memory;
  core::GStreamManager streams;
  mem::AddressSpace addresses;

  SingleGpuFixture(core::GStreamConfig cfg, gpu::DeviceSpec spec, sim::Duration jni)
      : dev(s, "gpu0", spec),
        stub(dev),
        wrap(stub, jni),
        memory({&dev}, 1 << 20, core::CachePolicy::Fifo),
        streams(s, {&wrap}, memory, cfg) {
    register_test_kernels();
  }
};

/// Run one GWork to completion and return its makespan.
sim::Duration run_work(Simulation& s, core::GStreamManager& streams, const GWorkPtr& work) {
  s.spawn([](core::GStreamManager& gs, GWorkPtr w) -> Co<void> {
    co_await gs.run(w);
  }(streams, work));
  s.run();
  EXPECT_TRUE(work->done->fired());
  return work->finished_at - work->submitted_at;
}

}  // namespace

TEST(ChunkedPipeline, OutputsMatchMonolithic) {
  constexpr std::size_t kN = 4096;
  core::GStreamConfig mono_cfg;
  mono_cfg.chunk_bytes = 0;
  StreamFixture mono(mono_cfg);
  auto mono_work = mono.make_work(kN);
  make_chunkable(*mono_work);  // eligible, but chunk_bytes = 0 disables it
  run_work(mono.s, mono.streams, mono_work);
  EXPECT_EQ(mono.streams.chunked_works(), 0u);
  EXPECT_EQ(mono_work->executed_chunks, 1u);

  core::GStreamConfig chunk_cfg;
  chunk_cfg.chunk_bytes = 16 << 10;  // 512 KV records in + out per chunk
  StreamFixture chunked(chunk_cfg);
  auto chunk_work = chunked.make_work(kN);
  make_chunkable(*chunk_work);
  run_work(chunked.s, chunked.streams, chunk_work);
  EXPECT_EQ(chunked.streams.chunked_works(), 1u);
  EXPECT_EQ(chunk_work->executed_chunks, 8u);
  EXPECT_EQ(chunked.streams.chunks_total(), 8u);
  EXPECT_EQ(chunked.streams.chunk_fallbacks(), 0u);

  // Bit-identical results: chunking changes the schedule, not the data.
  EXPECT_EQ(std::memcmp(mono_work->outputs[0].host->data(),
                        chunk_work->outputs[0].host->data(), kN * sizeof(KV)),
            0);
  // The ring was returned in full.
  EXPECT_EQ(chunked.memory.staging_bytes(0) + chunked.memory.staging_bytes(1), 0u);
}

TEST(ChunkedPipeline, BeatsMonolithicMakespan) {
  constexpr std::size_t kN = 4096;
  core::GStreamConfig mono_cfg;
  mono_cfg.chunk_bytes = 0;
  StreamFixture mono(mono_cfg);
  auto mono_work = mono.make_work(kN);
  make_chunkable(*mono_work);
  const sim::Duration serial = run_work(mono.s, mono.streams, mono_work);

  core::GStreamConfig chunk_cfg;
  chunk_cfg.chunk_bytes = 16 << 10;
  StreamFixture chunked(chunk_cfg);
  auto chunk_work = chunked.make_work(kN);
  make_chunkable(*chunk_work);
  const sim::Duration pipelined = run_work(chunked.s, chunked.streams, chunk_work);

  // Chunk i+1's H2D hides behind chunk i's kernel and chunk i-1's D2H, and
  // one ring reservation replaces two cudaMalloc/cudaFree pairs.
  EXPECT_LT(pipelined, serial);
  // The device observed genuine copy-compute overlap; the monolithic run,
  // a single serial H2D -> K -> D2H chain, observed none.
  const sim::Duration overlap =
      chunked.dev0.copy_compute_overlap() + chunked.dev1.copy_compute_overlap();
  EXPECT_GT(overlap, 0);
  EXPECT_EQ(mono.dev0.copy_compute_overlap() + mono.dev1.copy_compute_overlap(), 0);
}

TEST(ChunkedPipeline, MakespanMatchesClosedForm) {
  // With zero JNI/PCIe-latency/launch overheads and an evenly divisible
  // chunk count, every chunk's three stages take constant durations d_h,
  // d_k, d_d, and a depth-3 ring gives the textbook pipeline makespan:
  //   d_h + d_k + d_d + (C-1) * max(d_h, d_k, d_d)
  // plus the one-off ring reserve/release driver costs.
  constexpr std::size_t kN = 4096;
  constexpr std::size_t kItemsPerChunk = 512;
  constexpr std::size_t kChunks = kN / kItemsPerChunk;
  core::GStreamConfig cfg;
  cfg.chunk_bytes = kItemsPerChunk * 2 * sizeof(KV);  // in + out per item
  cfg.staging_slots = 3;
  SingleGpuFixture f(cfg, StreamFixture::test_spec(), /*jni=*/0);

  auto in = std::make_shared<mem::HBuffer>(kN * sizeof(KV), f.addresses.allocate(kN * sizeof(KV)));
  in->set_pinned(true);
  auto* vals = reinterpret_cast<KV*>(in->data());
  for (std::size_t i = 0; i < kN; ++i) vals[i] = KV{i, static_cast<std::int64_t>(i)};
  auto out =
      std::make_shared<mem::HBuffer>(kN * sizeof(KV), f.addresses.allocate(kN * sizeof(KV)));
  out->set_pinned(true);
  auto work = std::make_shared<GWork>();
  work->execute_name = "core_double_kv";
  work->size = kN;
  GBuffer ib;
  ib.host = in;
  ib.bytes = kN * sizeof(KV);
  ib.item_stride = sizeof(KV);
  work->inputs.push_back(ib);
  GBuffer ob;
  ob.host = out;
  ob.bytes = kN * sizeof(KV);
  ob.item_stride = sizeof(KV);
  work->outputs.push_back(ob);
  work->chunkable = true;

  const sim::Duration makespan = run_work(f.s, f.streams, work);
  ASSERT_EQ(work->executed_chunks, kChunks);

  const sim::Duration d_h = f.dev.dma_time(kItemsPerChunk * sizeof(KV), /*pinned=*/true);
  const sim::Duration d_d = d_h;  // symmetric transfer
  const sim::Duration d_k =
      gpu::kernel_duration(gpu::KernelRegistry::global().lookup("core_double_kv"),
                           f.dev.spec(), kItemsPerChunk, work->layout);
  const sim::Duration bottleneck = std::max({d_h, d_k, d_d});
  const sim::Duration pipeline =
      d_h + d_k + d_d + static_cast<sim::Duration>(kChunks - 1) * bottleneck;
  const auto& oh = f.stub.overheads();
  EXPECT_EQ(makespan, oh.malloc_cost + pipeline + oh.free_cost);

  const KV* result = reinterpret_cast<const KV*>(out->data());
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(result[i].value, static_cast<std::int64_t>(2 * i));
  }
}

TEST(ChunkedPipeline, IndivisibleAuxBufferTransfersWhole) {
  // core_add_aux reads aux[0] from every chunk: the aux input is declared
  // indivisible (item_stride 0), transferred whole before the pipeline
  // starts, and bound in full to every chunk kernel.
  constexpr std::size_t kN = 2048;
  core::GStreamConfig cfg;
  cfg.chunk_bytes = 16 << 10;
  StreamFixture f(cfg);
  auto work = f.make_work(kN);
  work->execute_name = "core_add_aux";
  make_chunkable(*work);
  auto aux = std::make_shared<mem::HBuffer>(sizeof(KV), f.addresses.allocate(sizeof(KV)));
  aux->set_pinned(true);
  reinterpret_cast<KV*>(aux->data())[0] = KV{0, 1000};
  GBuffer ab;
  ab.host = aux;
  ab.bytes = sizeof(KV);
  work->inputs.push_back(ab);  // buffers bind [in, aux, out]

  run_work(f.s, f.streams, work);
  EXPECT_EQ(f.streams.chunked_works(), 1u);
  EXPECT_GT(work->executed_chunks, 1u);
  const KV* result = reinterpret_cast<const KV*>(work->outputs[0].host->data());
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(result[i].value, static_cast<std::int64_t>(i) + 1000);
  }
}

TEST(ChunkedPipeline, StagingFailureFallsBackWithoutDeadlock) {
  // Device layout: a pinned cache entry the ring must NOT evict, and two
  // non-adjacent 64 KB holes. The depth-3 ring needs 96 KB contiguous and
  // cannot get it; the monolithic fallback fits its input and output into
  // the two holes and completes. No blocking, no eviction of pinned data.
  constexpr std::size_t kN = 4096;  // 64 KB in + 64 KB out
  core::GStreamConfig cfg;
  cfg.chunk_bytes = 32 << 10;  // 1024 items/chunk -> 4 chunks, 32 KB slots
  cfg.staging_slots = 3;
  gpu::DeviceSpec spec = StreamFixture::test_spec();
  spec.device_memory = 512 << 10;
  SingleGpuFixture f(cfg, spec, sim::nanos(200));

  auto a = f.dev.memory().allocate(128 << 10);
  ASSERT_TRUE(f.memory.insert(0, /*job=*/1, /*key=*/77, 64 << 10).has_value());  // stays pinned
  auto b = f.dev.memory().allocate(64 << 10);
  auto c = f.dev.memory().allocate(128 << 10);
  auto d = f.dev.memory().allocate(64 << 10);
  auto e = f.dev.memory().allocate(64 << 10);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  ASSERT_NE(c, 0u);
  ASSERT_NE(d, 0u);
  ASSERT_NE(e, 0u);
  f.dev.memory().free(b);
  f.dev.memory().free(d);

  auto in = std::make_shared<mem::HBuffer>(kN * sizeof(KV), f.addresses.allocate(kN * sizeof(KV)));
  in->set_pinned(true);
  auto* vals = reinterpret_cast<KV*>(in->data());
  for (std::size_t i = 0; i < kN; ++i) vals[i] = KV{i, static_cast<std::int64_t>(i)};
  auto out =
      std::make_shared<mem::HBuffer>(kN * sizeof(KV), f.addresses.allocate(kN * sizeof(KV)));
  out->set_pinned(true);
  auto work = std::make_shared<GWork>();
  work->execute_name = "core_double_kv";
  work->size = kN;
  work->job_id = 1;
  GBuffer ib;
  ib.host = in;
  ib.bytes = kN * sizeof(KV);
  ib.item_stride = sizeof(KV);
  work->inputs.push_back(ib);
  GBuffer ob;
  ob.host = out;
  ob.bytes = kN * sizeof(KV);
  ob.item_stride = sizeof(KV);
  work->outputs.push_back(ob);
  work->chunkable = true;

  run_work(f.s, f.streams, work);

  EXPECT_EQ(f.streams.chunk_fallbacks(), 1u);
  EXPECT_EQ(f.streams.chunked_works(), 0u);
  EXPECT_EQ(work->executed_chunks, 1u);
  EXPECT_GE(f.memory.staging_failures(), 1u);
  EXPECT_EQ(f.memory.staging_bytes(0), 0u);
  // The pinned cache entry survived the failed reservation attempt.
  EXPECT_TRUE(f.memory.lookup(0, 1, 77).has_value());
  const KV* result = reinterpret_cast<const KV*>(out->data());
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(result[i].value, static_cast<std::int64_t>(2 * i));
  }
}

// ---- GDST / GpuManager end-to-end -------------------------------------------

namespace {

df::EngineConfig engine_config(int workers) {
  df::EngineConfig cfg;
  cfg.cluster.num_workers = workers;
  cfg.dfs.replication = workers >= 2 ? 2 : 1;
  cfg.job_submit_overhead = sim::micros(10);
  cfg.job_schedule_overhead = sim::micros(10);
  cfg.stage_schedule_overhead = 0;
  cfg.task_deploy_overhead = 0;
  return cfg;
}

core::GpuManagerConfig gpu_config() {
  core::GpuManagerConfig cfg;
  cfg.devices = {StreamFixture::test_spec(), StreamFixture::test_spec()};
  return cfg;
}

df::DataSet<KV> iota(df::Engine& e, int partitions, std::uint64_t n) {
  return df::DataSet<KV>::from_generator(
      e, &kv_desc(), partitions, [n, partitions](int part, std::vector<KV>& out) {
        for (std::uint64_t i = part; i < n; i += static_cast<std::uint64_t>(partitions)) {
          out.push_back(KV{i, static_cast<std::int64_t>(i)});
        }
      });
}

}  // namespace

TEST(Gdst, GpuMapPartitionMatchesCpuResult) {
  register_test_kernels();
  df::Engine e(engine_config(2));
  core::GFlinkRuntime runtime(e, gpu_config());
  std::vector<KV> gpu_rows, cpu_rows;
  e.run([&](df::Engine& eng) -> Co<void> {
    df::Job job(eng, "t");
    co_await job.submit();
    core::GpuOpSpec spec;
    spec.kernel = "core_double_kv";
    auto src = iota(eng, 4, 1000);
    auto on_gpu = core::gpu_dataset_op<KV, KV>(src, &kv_desc(), "gpuDouble", spec);
    gpu_rows = co_await on_gpu.collect(job);
    auto on_cpu = src.map<KV>(&kv_desc(), "cpuDouble", df::OpCost{4.0, 32.0},
                              [](const KV& kv) { return KV{kv.key, 2 * kv.value}; });
    cpu_rows = co_await on_cpu.collect(job);
    job.finish();
  });
  ASSERT_EQ(gpu_rows.size(), cpu_rows.size());
  auto by_key = [](std::vector<KV>& v) {
    std::sort(v.begin(), v.end(), [](const KV& a, const KV& b) { return a.key < b.key; });
  };
  by_key(gpu_rows);
  by_key(cpu_rows);
  for (std::size_t i = 0; i < gpu_rows.size(); ++i) {
    EXPECT_EQ(gpu_rows[i].key, cpu_rows[i].key);
    EXPECT_EQ(gpu_rows[i].value, cpu_rows[i].value);
  }
}

TEST(Gdst, BlocksArePageSized) {
  register_test_kernels();
  auto ecfg = engine_config(1);
  ecfg.page_size = 1024;  // 64 KVs per block
  df::Engine e(ecfg);
  core::GFlinkRuntime runtime(e, gpu_config());
  e.run([&](df::Engine& eng) -> Co<void> {
    df::Job job(eng, "t");
    co_await job.submit();
    core::GpuOpSpec spec;
    spec.kernel = "core_double_kv";
    auto ds = core::gpu_dataset_op<KV, KV>(iota(eng, 1, 1000), &kv_desc(), "g", spec);
    auto n = co_await ds.count(job);
    EXPECT_EQ(n, 1000u);
    job.finish();
  });
  // 1000 records / 64 per block = 16 blocks = 16 kernels.
  EXPECT_EQ(runtime.total_kernels(), 16u);
}

TEST(Gdst, CacheEliminatesRepeatTransfers) {
  register_test_kernels();
  df::Engine e(engine_config(2));
  core::GFlinkRuntime runtime(e, gpu_config());
  std::uint64_t h2d_first = 0, h2d_second = 0;
  e.run([&](df::Engine& eng) -> Co<void> {
    df::Job job(eng, "t");
    co_await job.submit();
    core::GpuOpSpec spec;
    spec.kernel = "core_double_kv";
    spec.cache_input = true;
    auto src = co_await iota(eng, 4, 20000).materialize(job);
    for (int iter = 0; iter < 2; ++iter) {
      auto ds = core::gpu_dataset_op<KV, KV>(df::DataSet<KV>::from_handle(eng, src), &kv_desc(),
                                             "g", spec);
      (void)co_await ds.count(job);
      if (iter == 0) h2d_first = runtime.total_bytes_h2d();
    }
    h2d_second = runtime.total_bytes_h2d() - h2d_first;
    runtime.release_job(job.id());
    job.finish();
  });
  EXPECT_GT(h2d_first, 0u);
  // Second iteration: all input blocks cached, no H2D traffic at all.
  EXPECT_EQ(h2d_second, 0u);
  EXPECT_GT(runtime.total_cache_hits(), 0u);
}

TEST(Gdst, AuxBuffersReachTheKernel) {
  register_test_kernels();
  df::Engine e(engine_config(1));
  core::GFlinkRuntime runtime(e, gpu_config());
  std::vector<KV> rows;
  e.run([&](df::Engine& eng) -> Co<void> {
    df::Job job(eng, "t");
    co_await job.submit();
    core::GpuOpSpec spec;
    spec.kernel = "core_add_aux";
    spec.make_aux = [](df::TaskContext& ctx) {
      auto buf = ctx.worker_state().memory().allocate_unbudgeted(sizeof(KV));
      buf->set_pinned(true);
      KV aux{0, 1000};
      buf->write(0, &aux, sizeof(aux));
      std::vector<GBuffer> v(1);
      v[0].host = buf;
      v[0].bytes = sizeof(KV);
      return v;
    };
    auto ds = core::gpu_dataset_op<KV, KV>(iota(eng, 2, 100), &kv_desc(), "g", spec);
    rows = co_await ds.collect(job);
    job.finish();
  });
  ASSERT_EQ(rows.size(), 100u);
  for (const auto& kv : rows) {
    EXPECT_EQ(kv.value, static_cast<std::int64_t>(kv.key) + 1000);
  }
}

TEST(Gdst, BlockReducerEmitsOneRecordPerBlock) {
  register_test_kernels();
  auto ecfg = engine_config(1);
  ecfg.page_size = 1600;  // 100 KVs per block
  df::Engine e(ecfg);
  core::GFlinkRuntime runtime(e, gpu_config());
  std::vector<KV> rows;
  e.run([&](df::Engine& eng) -> Co<void> {
    df::Job job(eng, "t");
    co_await job.submit();
    core::GpuOpSpec spec;
    spec.kernel = "core_block_sum";
    spec.out_items = [](std::size_t) { return std::size_t{1}; };
    auto ds = core::gpu_dataset_op<KV, KV>(iota(eng, 1, 1000), &kv_desc(), "g", spec);
    rows = co_await ds.collect(job);
    job.finish();
  });
  ASSERT_EQ(rows.size(), 10u);  // 1000 records / 100 per block
  std::int64_t total = 0;
  for (const auto& kv : rows) total += kv.value;
  EXPECT_EQ(total, 999 * 1000 / 2);
}

TEST(Gdst, DeterministicEndToEnd) {
  register_test_kernels();
  auto run_once = [] {
    df::Engine e(engine_config(2));
    core::GFlinkRuntime runtime(e, gpu_config());
    sim::Time end = 0;
    e.run([&](df::Engine& eng) -> Co<void> {
      df::Job job(eng, "t");
      co_await job.submit();
      core::GpuOpSpec spec;
      spec.kernel = "core_double_kv";
      auto ds = core::gpu_dataset_op<KV, KV>(iota(eng, 4, 5000), &kv_desc(), "g", spec);
      (void)co_await ds.count(job);
      job.finish();
      end = eng.now();
    });
    return end;
  };
  EXPECT_EQ(run_once(), run_once());
}

// Property sweep: the GPU path conserves record counts for any block size
// and partition count.
class GdstProperty : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(GdstProperty, CountConserved) {
  register_test_kernels();
  auto [page, partitions] = GetParam();
  auto ecfg = engine_config(2);
  ecfg.page_size = page;
  df::Engine e(ecfg);
  core::GFlinkRuntime runtime(e, gpu_config());
  std::uint64_t n = 0;
  e.run([&, partitions = partitions](df::Engine& eng) -> Co<void> {
    df::Job job(eng, "t");
    co_await job.submit();
    core::GpuOpSpec spec;
    spec.kernel = "core_double_kv";
    auto ds = core::gpu_dataset_op<KV, KV>(iota(eng, partitions, 777), &kv_desc(), "g", spec);
    n = co_await ds.count(job);
    job.finish();
  });
  EXPECT_EQ(n, 777u);
}

INSTANTIATE_TEST_SUITE_P(Grid, GdstProperty,
                         ::testing::Combine(::testing::Values(64, 1024, 32768),
                                            ::testing::Values(1, 3, 8)));
