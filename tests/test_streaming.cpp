// Tests for the streaming extension: event-level pipelines, back-pressure,
// GPU micro-batching, tumbling windows, latency/throughput accounting.
#include <gtest/gtest.h>

#include "core/streaming.hpp"
#include "gpu/kernel.hpp"
#include "workloads/common.hpp"
#include "workloads/records.hpp"

namespace sim = gflink::sim;
namespace mem = gflink::mem;
namespace df = gflink::dataflow;
namespace core = gflink::core;
namespace gpu = gflink::gpu;
namespace wl = gflink::workloads;
using sim::Co;

namespace {

struct Ev {
  std::uint64_t key;
  std::int64_t value;
};

const mem::StructDesc& ev_desc() {
  static const mem::StructDesc d = mem::StructDescBuilder("Ev", 8)
                                       .field("key", mem::FieldType::U64, 1, offsetof(Ev, key))
                                       .field("value", mem::FieldType::I64, 1, offsetof(Ev, value))
                                       .build();
  return d;
}

void register_stream_kernel() {
  static const bool once = [] {
    gpu::Kernel k;
    k.name = "streamDouble";
    k.cost.flops_per_item = 4.0;
    k.cost.dram_bytes_per_item = 2.0 * sizeof(Ev);
    k.fn = [](gpu::KernelLaunch& launch) {
      const auto* in = reinterpret_cast<const Ev*>(launch.buffers[0].data());
      auto* out = reinterpret_cast<Ev*>(launch.buffers.back().data());
      for (std::size_t i = 0; i < launch.items; ++i) out[i] = Ev{in[i].key, 2 * in[i].value};
    };
    gpu::KernelRegistry::global().register_kernel(k);
    return true;
  }();
  (void)once;
}

df::EngineConfig stream_config(int workers = 2) {
  df::EngineConfig cfg;
  cfg.cluster.num_workers = workers;
  cfg.dfs.replication = std::min(2, workers);
  cfg.job_submit_overhead = 0;
  cfg.job_schedule_overhead = 0;
  return cfg;
}

core::EventGenerator ev_generator() {
  return [](std::uint64_t i, std::byte* record) {
    Ev ev{i % 8, static_cast<std::int64_t>(i)};
    std::memcpy(record, &ev, sizeof(ev));
  };
}

core::StreamOp identity_map(double flops = 100.0) {
  core::StreamOp op;
  op.kind = core::StreamOp::Kind::Map;
  op.name = "identity";
  op.out_desc = &ev_desc();
  op.cost = df::OpCost{flops, 2.0 * sizeof(Ev)};
  op.map_fn = [](const std::byte* rec, df::Emitter& out) { out.emit_raw(rec); };
  return op;
}

core::StreamingResult run_pipeline(df::Engine& engine, std::vector<core::StreamOp> ops,
                                   core::StreamingConfig cfg) {
  core::StreamingResult result;
  engine.run([&](df::Engine& eng) -> Co<void> {
    df::Job job(eng, "stream");
    co_await job.submit();
    result = co_await core::run_streaming(eng, job, &ev_desc(), ev_generator(),
                                          std::move(ops), cfg);
    job.finish();
  });
  return result;
}

}  // namespace

TEST(Streaming, AllEventsReachTheSink) {
  df::Engine e(stream_config());
  core::StreamingConfig cfg;
  cfg.total_events = 10'000;
  cfg.events_per_second = 1e7;
  auto r = run_pipeline(e, {identity_map()}, cfg);
  EXPECT_EQ(r.events_in, 10'000u);
  EXPECT_EQ(r.events_out, 10'000u);
  EXPECT_GT(r.throughput_eps, 0.0);
}

TEST(Streaming, UnderloadedThroughputTracksSourceRate) {
  df::Engine e(stream_config());
  core::StreamingConfig cfg;
  cfg.total_events = 20'000;
  cfg.events_per_second = 1e6;  // far below pipeline capacity
  auto r = run_pipeline(e, {identity_map(10.0)}, cfg);
  EXPECT_NEAR(r.throughput_eps, 1e6, 1e5);
  // No backlog: latency stays near the per-event service time.
  EXPECT_LT(r.latency_p99, sim::micros(10));
}

TEST(Streaming, OverloadSaturatesAtServiceRate) {
  df::Engine e(stream_config(1));
  core::StreamingConfig cfg;
  cfg.total_events = 20'000;
  cfg.parallelism = 1;
  cfg.events_per_second = 1e9;  // absurd offered load
  // Service time per event: 25 ns overhead + 5000 flops at the default
  // 4 GFLOP/s = 1.275 us -> saturation at ~784k events/s.
  auto r = run_pipeline(e, {identity_map(5000.0)}, cfg);
  EXPECT_NEAR(r.throughput_eps, 1e9 / 1'275.0, 5e3);
  // Back-pressure, not loss.
  EXPECT_EQ(r.events_out, 20'000u);
  // Saturation: later events queue behind earlier ones -> large latency.
  EXPECT_GT(r.latency_p99, sim::millis(10));
}

TEST(Streaming, GpuMicroBatchComputesCorrectSums) {
  register_stream_kernel();
  df::Engine e(stream_config());
  core::GpuManagerConfig gcfg;
  core::GFlinkRuntime runtime(e, gcfg);

  core::StreamOp gpu_op;
  gpu_op.kind = core::StreamOp::Kind::GpuBatch;
  gpu_op.name = "gpuDouble";
  gpu_op.out_desc = &ev_desc();
  gpu_op.kernel = "streamDouble";
  gpu_op.batch_size = 128;

  core::StreamOp window;
  window.kind = core::StreamOp::Kind::WindowSum;
  window.name = "sum";
  window.out_desc = &ev_desc();
  window.cost = df::OpCost{4.0, 16.0};
  window.key_fn = [](const std::byte* rec) { return reinterpret_cast<const Ev*>(rec)->key; };
  window.combine_fn = [](std::byte* acc, const std::byte* rec) {
    reinterpret_cast<Ev*>(acc)->value += reinterpret_cast<const Ev*>(rec)->value;
  };
  window.window = 1 << 30;  // one window per key: flushes at end of stream

  core::StreamingConfig cfg;
  cfg.total_events = 8'000;
  cfg.events_per_second = 1e7;
  auto r = run_pipeline(e, {gpu_op, window}, cfg);
  EXPECT_EQ(r.events_in, 8'000u);
  EXPECT_GT(r.gpu_batches, 0u);
  // 8 keys x parallelism pipelines worth of window flushes.
  EXPECT_GE(r.events_out, 8u);
  EXPECT_LE(r.events_out, 16u);
}

TEST(Streaming, BatchSizeTradesLatencyForBatches) {
  register_stream_kernel();
  auto run_with_batch = [](std::size_t batch) {
    df::Engine e(stream_config(1));
    core::GpuManagerConfig gcfg;
    core::GFlinkRuntime runtime(e, gcfg);
    core::StreamOp op;
    op.kind = core::StreamOp::Kind::GpuBatch;
    op.name = "gpu";
    op.out_desc = &ev_desc();
    op.kernel = "streamDouble";
    op.batch_size = batch;
    core::StreamingConfig cfg;
    // Low offered rate so both batch sizes keep up: the remaining latency
    // difference is purely the time an event waits for its batch to fill.
    cfg.total_events = 4'000;
    cfg.parallelism = 1;
    cfg.events_per_second = 5e4;
    df::Engine* ep = &e;
    core::StreamingResult r;
    std::vector<core::StreamOp> ops{op};
    ep->run([&](df::Engine& eng) -> Co<void> {
      df::Job job(eng, "s");
      co_await job.submit();
      r = co_await core::run_streaming(eng, job, &ev_desc(), ev_generator(), ops, cfg);
    });
    return r;
  };
  auto small = run_with_batch(32);
  auto large = run_with_batch(1024);
  // Bigger micro-batches: fewer GWork submissions but worse median latency
  // (events wait for their batch to fill).
  EXPECT_GT(small.gpu_batches, large.gpu_batches * 10);
  EXPECT_LT(small.latency_p50, large.latency_p50);
}

TEST(Streaming, WindowSumsAreExact) {
  df::Engine e(stream_config());
  core::StreamOp window;
  window.kind = core::StreamOp::Kind::WindowSum;
  window.name = "sum";
  window.out_desc = &ev_desc();
  window.cost = df::OpCost{4.0, 16.0};
  window.key_fn = [](const std::byte* rec) { return reinterpret_cast<const Ev*>(rec)->key; };
  window.combine_fn = [](std::byte* acc, const std::byte* rec) {
    reinterpret_cast<Ev*>(acc)->value += reinterpret_cast<const Ev*>(rec)->value;
  };
  window.window = 1 << 30;

  core::StreamingConfig cfg;
  cfg.total_events = 10'000;
  cfg.events_per_second = 1e7;

  // Validate the total: sum over all emitted window records must equal the
  // sum of all event values. Capture via a trailing map that accumulates.
  auto total = std::make_shared<std::int64_t>(0);
  core::StreamOp probe = identity_map(1.0);
  probe.name = "probe";
  probe.map_fn = [total](const std::byte* rec, df::Emitter& out) {
    *total += reinterpret_cast<const Ev*>(rec)->value;
    out.emit_raw(rec);
  };

  auto r = run_pipeline(e, {window, probe}, cfg);
  EXPECT_EQ(*total, 10'000LL * 9'999 / 2);
  EXPECT_GT(r.events_out, 0u);
}

TEST(Streaming, DeterministicAcrossRuns) {
  auto run_once = [] {
    df::Engine e(stream_config());
    core::StreamingConfig cfg;
    cfg.total_events = 5'000;
    cfg.events_per_second = 5e6;
    auto r = run_pipeline(e, {identity_map(500.0)}, cfg);
    return std::tuple<std::uint64_t, sim::Duration, double>(r.events_out, r.makespan,
                                                            r.latency_p99);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Streaming, ParallelismSplitsTheStream) {
  df::Engine e(stream_config(4));
  core::StreamingConfig cfg;
  cfg.total_events = 10'001;  // deliberately not divisible
  cfg.events_per_second = 1e7;
  auto r = run_pipeline(e, {identity_map()}, cfg);
  EXPECT_EQ(r.events_out, 10'001u);
}
