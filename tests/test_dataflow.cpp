// Tests for the dataflow engine: sources, operator chains, shuffles,
// actions, joins, locality, slots and job accounting.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <numeric>

#include "dataflow/dataset.hpp"
#include "dataflow/engine.hpp"

namespace sim = gflink::sim;
namespace mem = gflink::mem;
namespace df = gflink::dataflow;
using df::DataSet;
using df::Engine;
using df::Job;
using df::OpCost;
using sim::Co;

namespace {

struct KV {
  std::uint64_t key;
  std::int64_t value;
};

const mem::StructDesc& kv_desc() {
  static const mem::StructDesc d = mem::StructDescBuilder("KV", 8)
                                       .field("key", mem::FieldType::U64, 1, offsetof(KV, key))
                                       .field("value", mem::FieldType::I64, 1, offsetof(KV, value))
                                       .build();
  return d;
}

df::EngineConfig fast_config(int workers = 3) {
  df::EngineConfig cfg;
  cfg.cluster.num_workers = workers;
  cfg.dfs.replication = workers >= 2 ? 2 : 1;
  // Keep control-plane overheads tiny so arithmetic-oriented tests can
  // reason about data-plane costs.
  cfg.job_submit_overhead = sim::micros(10);
  cfg.job_schedule_overhead = sim::micros(10);
  cfg.stage_schedule_overhead = 0;
  cfg.task_deploy_overhead = 0;
  return cfg;
}

/// Source of KVs 0..n-1 (key = i % key_mod, value = i), spread over parts.
DataSet<KV> iota(Engine& e, int partitions, std::uint64_t n, std::uint64_t key_mod) {
  return DataSet<KV>::from_generator(
      e, &kv_desc(), partitions,
      [n, key_mod, partitions](int part, std::vector<KV>& out) {
        for (std::uint64_t i = part; i < n; i += static_cast<std::uint64_t>(partitions)) {
          out.push_back(KV{i % key_mod, static_cast<std::int64_t>(i)});
        }
      });
}

}  // namespace

TEST(Engine, DefaultParallelismIsWorkersTimesSlots) {
  auto cfg = fast_config(3);
  cfg.slots_per_worker = 2;
  Engine e(cfg);
  EXPECT_EQ(e.default_parallelism(), 6);
  cfg.slots_per_worker = 0;  // falls back to CPU cores (4)
  Engine e2(cfg);
  EXPECT_EQ(e2.default_parallelism(), 12);
}

TEST(Engine, SourceGeneratesAllRecordsAcrossPartitions) {
  Engine e(fast_config());
  std::uint64_t count = 0;
  e.run([&count](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 6, 1000, 1000);
    count = co_await ds.count(job);
    job.finish();
  });
  EXPECT_EQ(count, 1000u);
}

TEST(Engine, MapTransformsEveryRecord) {
  Engine e(fast_config());
  std::vector<KV> rows;
  e.run([&rows](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 4, 100, 100).map<KV>(
        &kv_desc(), "double", OpCost{2.0, 16.0},
        [](const KV& kv) { return KV{kv.key, kv.value * 2}; });
    rows = co_await ds.collect(job);
    job.finish();
  });
  ASSERT_EQ(rows.size(), 100u);
  std::map<std::uint64_t, std::int64_t> by_key;
  for (const auto& kv : rows) by_key[kv.key] = kv.value;
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(by_key[i], static_cast<std::int64_t>(2 * i));
}

TEST(Engine, FilterDropsRecords) {
  Engine e(fast_config());
  std::uint64_t n = 0;
  e.run([&n](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 4, 1000, 1000).filter("evens", OpCost{1.0, 8.0}, [](const KV& kv) {
      return kv.value % 2 == 0;
    });
    n = co_await ds.count(job);
    job.finish();
  });
  EXPECT_EQ(n, 500u);
}

TEST(Engine, FlatMapEmitsZeroToMany) {
  Engine e(fast_config());
  std::uint64_t n = 0;
  e.run([&n](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 4, 100, 100).flat_map<KV>(
        &kv_desc(), "explode", OpCost{1.0, 8.0},
        [](const KV& kv, df::FlatCollector<KV>& out) {
          for (std::int64_t j = 0; j < kv.value % 3; ++j) out.add(kv);
        });
    n = co_await ds.count(job);
    job.finish();
  });
  // Sum over i in [0,100) of (i % 3) = 33*(0+1+2) + 0 = 99.
  EXPECT_EQ(n, 99u);
}

TEST(Engine, ReduceByKeyAggregatesCorrectly) {
  Engine e(fast_config());
  std::vector<KV> rows;
  e.run([&rows](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 6, 1000, 10).reduce_by_key(
        "sum", OpCost{4.0, 16.0}, [](const KV& kv) { return kv.key; },
        [](KV& acc, const KV& kv) { acc.value += kv.value; });
    rows = co_await ds.collect(job);
    job.finish();
  });
  ASSERT_EQ(rows.size(), 10u);
  std::map<std::uint64_t, std::int64_t> by_key;
  for (const auto& kv : rows) by_key[kv.key] = kv.value;
  // Key k holds sum of k, k+10, ..., k+990 = 100*k + 10*(0+..+99)*... check
  // directly against a reference computation.
  std::map<std::uint64_t, std::int64_t> expect;
  for (std::uint64_t i = 0; i < 1000; ++i) expect[i % 10] += static_cast<std::int64_t>(i);
  EXPECT_EQ(by_key, expect);
}

TEST(Engine, GlobalReduceProducesOneRecord) {
  Engine e(fast_config());
  std::vector<KV> rows;
  e.run([&rows](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 6, 100, 100).reduce("total", OpCost{1.0, 8.0},
                                            [](KV& acc, const KV& kv) { acc.value += kv.value; });
    rows = co_await ds.collect(job);
    job.finish();
  });
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].value, 99 * 100 / 2);
}

TEST(Engine, ChainedOperatorsStayInOneStage) {
  Engine e(fast_config());
  df::JobStats stats;
  e.run([&stats](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 4, 100, 100)
                  .map<KV>(&kv_desc(), "m1", OpCost{}, [](const KV& kv) { return kv; })
                  .filter("f1", OpCost{}, [](const KV&) { return true; })
                  .map<KV>(&kv_desc(), "m2", OpCost{}, [](const KV& kv) { return kv; });
    (void)co_await ds.count(job);
    job.finish();
    stats = job.stats();
  });
  // One source stage + one chained record stage.
  ASSERT_EQ(stats.stages.size(), 2u);
  EXPECT_EQ(stats.stages[0].name, "source");
  EXPECT_EQ(stats.stages[1].name, "m2");
}

TEST(Engine, MapPartitionSeesWholeBlocks) {
  Engine e(fast_config());
  std::vector<KV> rows;
  e.run([&rows](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    // Partition-local count: each partition emits one record.
    auto ds = iota(eng, 5, 100, 100).map_partition<KV>(
        &kv_desc(), "pcount", OpCost{1.0, 8.0},
        [](std::span<const KV> part, std::vector<KV>& out) {
          out.push_back(KV{0, static_cast<std::int64_t>(part.size())});
        });
    rows = co_await ds.collect(job);
    job.finish();
  });
  ASSERT_EQ(rows.size(), 5u);
  std::int64_t total = 0;
  for (const auto& kv : rows) total += kv.value;
  EXPECT_EQ(total, 100);
}

TEST(Engine, AsyncMapPartitionGetsContext) {
  Engine e(fast_config());
  int seen_workers = 0;
  bool extension_seen = false;
  int sentinel = 42;
  e.set_extension(1, &sentinel);
  e.set_extension(2, &sentinel);
  e.set_extension(3, &sentinel);
  e.run([&](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 3, 30, 30).async_map_partition<KV>(
        &kv_desc(), "gpuish",
        [&](df::TaskContext& ctx, const mem::RecordBatch& in,
            mem::RecordBatch& out) -> Co<void> {
          ++seen_workers;
          extension_seen = extension_seen || (ctx.extension() == &sentinel);
          co_await ctx.sim().delay(sim::millis(1));
          for (std::size_t i = 0; i < in.count(); ++i) out.append_raw(in.record_ptr(i));
        });
    auto n = co_await ds.count(job);
    EXPECT_EQ(n, 30u);
    job.finish();
  });
  EXPECT_EQ(seen_workers, 3);
  EXPECT_TRUE(extension_seen);
}

TEST(Engine, ShuffleMovesBytesOverNetwork) {
  Engine e(fast_config(4));
  double net_bytes = 0;
  e.run([&net_bytes](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 8, 10000, 1000).reduce_by_key(
        "sum", OpCost{1.0, 16.0}, [](const KV& kv) { return kv.key; },
        [](KV& acc, const KV& kv) { acc.value += kv.value; });
    (void)co_await ds.count(job);
    job.finish();
    // The default one-sided transport moves shuffle payloads over the
    // RDMA pipes, which account separately from the message-passing NIC.
    net_bytes = eng.cluster().metrics().counter("net.bytes") +
                eng.cluster().metrics().counter("net.rdma_bytes");
    EXPECT_GT(job.stats().shuffle_bytes, 0u);
  });
  EXPECT_GT(net_bytes, 0.0);
}

TEST(Engine, MapSideCombineShrinksShuffle) {
  // With few keys, local combine should make shuffle bytes proportional to
  // keys*partitions, far below total records.
  Engine e(fast_config(4));
  std::uint64_t shuffle_bytes = 0;
  e.run([&shuffle_bytes](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 8, 100000, 4).reduce_by_key(
        "sum", OpCost{1.0, 16.0}, [](const KV& kv) { return kv.key; },
        [](KV& acc, const KV& kv) { acc.value += kv.value; });
    (void)co_await ds.count(job);
    job.finish();
    shuffle_bytes = job.stats().shuffle_bytes;
  });
  // 4 keys * 8 partitions * 16 bytes = 512 max (only remote buckets count).
  EXPECT_LE(shuffle_bytes, 512u);
  EXPECT_GT(shuffle_bytes, 0u);
}

TEST(Engine, DfsBackedSourceChargesIoAndPrefersLocality) {
  auto cfg = fast_config(4);
  cfg.dfs.block_size = 1 << 20;
  Engine e(cfg);
  std::uint64_t io_read = 0;
  double remote = 0, local = 0;
  e.dfs().create_file("/input", 8 << 20);  // 8 blocks over 4 workers
  e.run([&](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = DataSet<KV>::from_generator(
        eng, &kv_desc(), 8,
        [](int part, std::vector<KV>& out) {
          out.push_back(KV{static_cast<std::uint64_t>(part), 1});
        },
        OpCost{8.0, 0.0}, "/input");
    (void)co_await ds.count(job);
    job.finish();
    io_read = job.stats().io_bytes_read;
    local = eng.cluster().metrics().counter("dfs.local_reads");
    remote = eng.cluster().metrics().counter("dfs.remote_reads");
  });
  EXPECT_EQ(io_read, 8u << 20);
  // Splits are assigned to primary-replica holders: all reads local.
  EXPECT_EQ(local, 8.0);
  EXPECT_EQ(remote, 0.0);
}

TEST(Engine, SlotsLimitTaskConcurrency) {
  // One worker, one slot, 4 partitions each costing ~1 ms of CPU: the stage
  // must take ~4 ms. With 4 slots it takes ~1 ms.
  auto run_with_slots = [](int slots) {
    auto cfg = fast_config(1);
    cfg.dfs.replication = 1;
    cfg.slots_per_worker = slots;
    cfg.cluster.worker.cpu.record_overhead = 1000;  // 1 us per record
    Engine e(cfg);
    sim::Time total = 0;
    e.run([&total](Engine& eng) -> Co<void> {
      Job job(eng, "t");
      co_await job.submit();
      auto ds = iota(eng, 4, 4000, 4000).map<KV>(&kv_desc(), "work", OpCost{0.0, 0.0},
                                                 [](const KV& kv) { return kv; });
      (void)co_await ds.count(job);
      job.finish();
      total = job.stats().finished_at - job.stats().running_at;
    });
    return total;
  };
  auto serial = run_with_slots(1);
  auto parallel = run_with_slots(4);
  EXPECT_GT(serial, parallel * 3);
}

TEST(Engine, RecordCostsScaleStageTime) {
  auto run_with_flops = [](double flops) {
    Engine e(fast_config(2));
    sim::Time t = 0;
    e.run([&t, flops](Engine& eng) -> Co<void> {
      Job job(eng, "t");
      co_await job.submit();
      auto ds = iota(eng, 2, 20000, 20000)
                    .map<KV>(&kv_desc(), "work", OpCost{flops, 0.0},
                             [](const KV& kv) { return kv; });
      (void)co_await ds.count(job);
      job.finish();
      t = job.stats().finished_at - job.stats().running_at;
    });
    return t;
  };
  // 100x the flops per record should dominate and scale stage time.
  EXPECT_GT(run_with_flops(400000.0), 10 * run_with_flops(400.0));
}

TEST(Engine, WriteDfsReplicates) {
  Engine e(fast_config(3));
  std::uint64_t written = 0;
  double dfs_written = 0;
  e.run([&](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 3, 3000, 3000);
    co_await ds.write_dfs(job, "/out");
    job.finish();
    written = job.stats().io_bytes_written;
    dfs_written = eng.cluster().metrics().counter("dfs.bytes_written");
  });
  EXPECT_EQ(written, 3000u * 16u);
  EXPECT_DOUBLE_EQ(dfs_written, 3000.0 * 16.0);
}

TEST(Engine, JoinMatchesKeys) {
  Engine e(fast_config(3));
  std::vector<KV> rows;
  e.run([&rows](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto left = co_await iota(eng, 3, 10, 10).materialize(job);
    auto right = co_await iota(eng, 3, 20, 10).materialize(job);  // keys repeat twice
    auto joined = co_await df::join<KV, KV, KV>(
        job, left, right, [](const KV& kv) { return kv.key; },
        [](const KV& kv) { return kv.key; },
        [](const KV& l, const KV& r, df::FlatCollector<KV>& out) {
          out.add(KV{l.key, l.value + r.value});
        },
        &kv_desc(), OpCost{8.0, 32.0}, 3);
    auto ds = DataSet<KV>::from_handle(eng, joined);
    rows = co_await ds.collect(job);
    job.finish();
  });
  // Every left key matches exactly two right records.
  EXPECT_EQ(rows.size(), 20u);
}

TEST(Engine, MaterializedHandleReusedWithoutIo) {
  auto cfg = fast_config(3);
  cfg.dfs.block_size = 1 << 20;
  Engine e(cfg);
  e.dfs().create_file("/in", 3 << 20);
  double reads_after_first = -1;
  e.run([&](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto src = DataSet<KV>::from_generator(
        eng, &kv_desc(), 3,
        [](int part, std::vector<KV>& out) {
          for (int i = 0; i < 100; ++i) out.push_back(KV{static_cast<std::uint64_t>(part), i});
        },
        OpCost{8.0, 0.0}, "/in");
    auto handle = co_await src.materialize(job);
    double reads0 = eng.cluster().metrics().counter("dfs.blocks_read");
    // Iterate on the cached handle: no further DFS traffic.
    for (int iter = 0; iter < 3; ++iter) {
      auto ds = DataSet<KV>::from_handle(eng, handle)
                    .map<KV>(&kv_desc(), "it", OpCost{4.0, 16.0},
                             [](const KV& kv) { return kv; });
      handle = co_await ds.materialize(job);
    }
    reads_after_first = eng.cluster().metrics().counter("dfs.blocks_read") - reads0;
    job.finish();
  });
  EXPECT_EQ(reads_after_first, 0.0);
}

TEST(Engine, BroadcastAndGatherChargeNetwork) {
  Engine e(fast_config(4));
  double bytes = 0;
  e.run([&bytes](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    co_await eng.broadcast(job, 1 << 20);
    co_await eng.gather(job, 1 << 10);
    job.finish();
    bytes = eng.cluster().metrics().counter("net.bytes");
  });
  EXPECT_DOUBLE_EQ(bytes, 4.0 * (1 << 20) + 4.0 * (1 << 10));
}

TEST(Engine, JobStatsDecomposeSubmissionAndStages) {
  auto cfg = fast_config(2);
  cfg.job_submit_overhead = sim::millis(900);
  cfg.job_schedule_overhead = sim::millis(400);
  Engine e(cfg);
  df::JobStats stats;
  e.run([&stats](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, 2, 100, 10).reduce_by_key(
        "sum", OpCost{1.0, 16.0}, [](const KV& kv) { return kv.key; },
        [](KV& acc, const KV& kv) { acc.value += kv.value; });
    (void)co_await ds.count(job);
    job.finish();
    stats = job.stats();
  });
  EXPECT_EQ(stats.running_at - stats.submitted_at, sim::millis(1300));
  ASSERT_EQ(stats.stages.size(), 2u);
  EXPECT_EQ(stats.stages[1].name, "sum");
  EXPECT_GE(stats.stages[1].begin, stats.stages[0].end);
  EXPECT_GT(stats.stages[0].records_out, 0u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e(fast_config(3));
    sim::Time end = 0;
    std::uint64_t n = 0;
    e.run([&](Engine& eng) -> Co<void> {
      Job job(eng, "t");
      co_await job.submit();
      auto ds = iota(eng, 6, 5000, 97).reduce_by_key(
          "sum", OpCost{3.0, 16.0}, [](const KV& kv) { return kv.key; },
          [](KV& acc, const KV& kv) { acc.value += kv.value; });
      n = co_await ds.count(job);
      job.finish();
      end = eng.now();
    });
    return std::pair<sim::Time, std::uint64_t>(end, n);
  };
  EXPECT_EQ(run_once(), run_once());
}

// Property sweep: reduce_by_key conserves the value sum for any
// (partitions, records, keys) combination.
class ReducePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, std::uint64_t>> {};

TEST_P(ReducePropertyTest, SumConserved) {
  auto [partitions, records, keys] = GetParam();
  Engine e(fast_config(3));
  std::vector<KV> rows;
  e.run([&, partitions = partitions, records = records, keys = keys](Engine& eng) -> Co<void> {
    Job job(eng, "t");
    co_await job.submit();
    auto ds = iota(eng, partitions, records, keys)
                  .reduce_by_key("sum", OpCost{1.0, 16.0},
                                 [](const KV& kv) { return kv.key; },
                                 [](KV& acc, const KV& kv) { acc.value += kv.value; });
    rows = co_await ds.collect(job);
    job.finish();
  });
  std::int64_t total = 0;
  for (const auto& kv : rows) total += kv.value;
  const auto n = static_cast<std::int64_t>(records);
  EXPECT_EQ(total, n * (n - 1) / 2);
  EXPECT_EQ(rows.size(), std::min<std::uint64_t>(records, keys));
}

INSTANTIATE_TEST_SUITE_P(Grid, ReducePropertyTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(100ULL, 5000ULL),
                                            ::testing::Values(1ULL, 7ULL, 1000ULL)));
